//! Shared harness utilities for the table/figure reproduction binaries.
//!
//! Every binary in `src/bin/` regenerates one artifact of the paper's
//! evaluation (see DESIGN.md §5 for the index). The harness standardizes:
//!
//! * the **evaluation scale** — the paper trains on 14 days of 30-second
//!   telemetry and forecasts 1200 steps; the default harness scale is 3–4
//!   days and a 240–1200-step horizon so every figure regenerates in minutes
//!   on a laptop. `IP_BENCH_FULL=1` switches to paper scale.
//! * the **model zoo** — one constructor per Table 1 model with
//!   hyper-parameters scaled consistently.
//! * plain-text table rendering.

use ip_models::inception::InceptionConfig;
use ip_models::ssa_plus::SsaPlusConfig;
use ip_models::tst::TstConfig;
use ip_models::{
    BaselineForecaster, DeepConfig, Forecaster, InceptionTime, Mwdn, SsaModel, SsaPlus, Tst,
};
use ip_saa::SaaConfig;
use ip_ssa::RankSelection;

/// Scale of an experiment run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Scale {
    /// Laptop scale: ~3 days of history, shorter horizons, fewer epochs.
    Quick,
    /// Paper scale: 14 days, window 150, horizon 1200, 15 epochs.
    Full,
}

impl Scale {
    /// Reads `IP_BENCH_FULL` from the environment.
    pub fn from_env() -> Self {
        if std::env::var("IP_BENCH_FULL")
            .map(|v| v == "1")
            .unwrap_or(false)
        {
            Scale::Full
        } else {
            Scale::Quick
        }
    }

    /// Days of demand history to generate.
    pub fn history_days(&self) -> u32 {
        match self {
            Scale::Quick => 3,
            Scale::Full => 14,
        }
    }

    /// Forecast horizon in 30-second intervals.
    pub fn horizon(&self) -> usize {
        match self {
            Scale::Quick => 240,
            Scale::Full => 1200,
        }
    }

    /// Deep-model training configuration at this scale.
    pub fn deep_config(&self) -> DeepConfig {
        match self {
            Scale::Quick => DeepConfig {
                window: 96,
                horizon: 96,
                epochs: 6,
                batch_size: 32,
                stride: 8,
                ..Default::default()
            },
            Scale::Full => DeepConfig {
                window: 150,
                horizon: 1200,
                epochs: 15,
                batch_size: 768,
                stride: 4,
                ..Default::default()
            },
        }
    }

    /// SSA window at this scale.
    pub fn ssa_window(&self) -> usize {
        150
    }
}

/// The Table 1 model lineup, in the table's column order.
pub fn model_names() -> [&'static str; 5] {
    ["SSA+", "SSA", "mWDN", "TST", "IncpT"]
}

/// Builds a model from the lineup by name. `alpha_prime` feeds the
/// asymmetric loss of the trainable models (SSA has no such knob — that is
/// the point of §5.3).
pub fn build_model(name: &str, scale: Scale, alpha_prime: f32) -> Box<dyn Forecaster> {
    let deep = DeepConfig {
        alpha_prime,
        ..scale.deep_config()
    };
    match name {
        "SSA+" => Box::new(SsaPlus::new(SsaPlusConfig {
            window: scale.ssa_window(),
            alpha_prime,
            ..Default::default()
        })),
        "SSA" => Box::new(SsaModel::new(
            scale.ssa_window(),
            RankSelection::EnergyThreshold(0.9),
        )),
        "mWDN" => Box::new(Mwdn::model(deep, 3, 16)),
        "TST" => Box::new(Tst::model(deep, TstConfig::default())),
        "IncpT" => Box::new(InceptionTime::model(deep, InceptionConfig::default())),
        "baseline" => Box::new(BaselineForecaster::new(f64::from(alpha_prime) + 0.5)),
        other => panic!("unknown model {other}"),
    }
}

/// The SAA configuration used across figures (τ = 90 s on 30 s intervals,
/// 5-minute stableness, as in §7).
pub fn default_saa() -> SaaConfig {
    SaaConfig {
        tau_intervals: 3,
        stableness: 10,
        min_pool: 0,
        max_pool: 500,
        max_new_per_block: 500,
        alpha_prime: 0.5,
    }
}

/// Renders a plain-text table with a header row.
pub fn print_table(headers: &[&str], rows: &[Vec<String>]) {
    let mut widths: Vec<usize> = headers.iter().map(|h| h.len()).collect();
    for row in rows {
        for (i, cell) in row.iter().enumerate() {
            if i < widths.len() {
                widths[i] = widths[i].max(cell.len());
            }
        }
    }
    let line = |cells: Vec<String>| {
        let mut out = String::new();
        for (i, c) in cells.iter().enumerate() {
            out.push_str(&format!("{:>width$}  ", c, width = widths[i]));
        }
        println!("{}", out.trim_end());
    };
    line(headers.iter().map(|s| s.to_string()).collect());
    line(widths.iter().map(|w| "-".repeat(*w)).collect());
    for row in rows {
        line(row.clone());
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scale_parameters_ordered() {
        assert!(Scale::Quick.history_days() < Scale::Full.history_days());
        assert!(Scale::Quick.horizon() < Scale::Full.horizon());
    }

    #[test]
    fn all_models_constructible() {
        for name in model_names() {
            let _ = build_model(name, Scale::Quick, 0.5);
        }
        let _ = build_model("baseline", Scale::Quick, 0.5);
    }

    #[test]
    #[should_panic(expected = "unknown model")]
    fn unknown_model_panics() {
        let _ = build_model("nope", Scale::Quick, 0.5);
    }
}
