//! Production replay: the deployed system's cadence (§7.4–7.5) — retrain
//! every 30 minutes, recommend the next hour — rolled over a multi-day
//! trace, against the static pool a realistic operator would run.
//!
//! This is the fairest out-of-sample version of the headline comparison:
//! both policies see only the past; the replay harness stitches the
//! rolling recommendations exactly as the Pooling Worker would apply them.
//!
//! `cargo run --release -p ip-bench --bin production_replay`

use ip_bench::{default_saa, print_table, Scale};
use ip_core::{replay_pipeline, ReplayConfig, TwoStepEngine};
use ip_models::ssa_plus::SsaPlusConfig;
use ip_models::{SeasonalNaive, SsaModel, SsaPlus};
use ip_saa::static_pool::static_schedule;
use ip_saa::{evaluate_schedule, optimal_static_for_hit_rate, SaaConfig};
use ip_ssa::RankSelection;
use ip_workload::{preset, PresetId};

fn main() {
    let _span = ip_obs::span("bench.production_replay");
    let scale = Scale::from_env();
    let mut model = preset(PresetId::EastUs2Small, 61);
    model.days = scale.history_days() + 1;
    let demand = model.generate();
    let warmup = 2880; // first day: warm-up / static sizing window
    let saa = SaaConfig {
        alpha_prime: 0.25,
        ..default_saa()
    };
    let replay_cfg = ReplayConfig {
        warmup,
        cadence: 60,  // 30 min
        horizon: 120, // 1 h
        default_target: 5,
        tau_intervals: saa.tau_intervals,
    };

    // Static reference: sized on the warm-up day for a 99% hit rate, then
    // held for the remaining days (what a careful operator without ML does).
    let sizing_window = demand.slice(0, warmup).expect("slice");
    let (static_n, _) = optimal_static_for_hit_rate(&sizing_window, saa.tau_intervals, 0.99, 2000)
        .expect("static sizing");
    let eval_demand = demand.slice(warmup, demand.len()).expect("slice");
    let static_mech = evaluate_schedule(
        &eval_demand,
        &static_schedule(eval_demand.len(), static_n),
        saa.tau_intervals,
    )
    .expect("static eval");

    println!(
        "Production replay over {} days (after a 1-day warm-up), cadence 30 min,\nhorizon 1 h; static reference N = {static_n} sized on the warm-up day\n",
        model.days - 1
    );

    let mut rows = vec![vec![
        format!("static (N = {static_n})"),
        format!("{:.2}%", static_mech.hit_rate * 100.0),
        format!("{:.2}", static_mech.mean_wait_per_request_secs),
        format!("{:.0}", static_mech.idle_cluster_seconds),
        "-".into(),
        "-".into(),
    ]];

    let engines: Vec<(&str, Box<dyn ip_core::RecommendationEngine>)> = vec![
        (
            "SSA+ 2-step (deployed)",
            Box::new(TwoStepEngine::new(
                SsaPlus::new(SsaPlusConfig {
                    alpha_prime: 0.85,
                    ..Default::default()
                }),
                saa,
            )),
        ),
        (
            "SSA 2-step",
            Box::new(TwoStepEngine::new(
                SsaModel::new(150, RankSelection::EnergyThreshold(0.9)),
                saa,
            )),
        ),
        (
            "seasonal-naive 2-step",
            Box::new(TwoStepEngine::new(SeasonalNaive::daily(30), saa)),
        ),
    ];

    for (label, mut engine) in engines {
        match replay_pipeline(engine.as_mut(), &demand, &replay_cfg) {
            Ok(out) => {
                let saved =
                    1.0 - out.mechanics.idle_cluster_seconds / static_mech.idle_cluster_seconds;
                rows.push(vec![
                    label.to_string(),
                    format!("{:.2}%", out.mechanics.hit_rate * 100.0),
                    format!("{:.2}", out.mechanics.mean_wait_per_request_secs),
                    format!("{:.0}", out.mechanics.idle_cluster_seconds),
                    format!("{:.0}%", saved * 100.0),
                    format!("{}/{}", out.runs - out.failed_runs, out.runs),
                ]);
            }
            Err(e) => rows.push(vec![
                label.to_string(),
                format!("error: {e}"),
                String::new(),
                String::new(),
                String::new(),
                String::new(),
            ]),
        }
    }

    print_table(
        &[
            "policy",
            "hit rate",
            "mean wait (s)",
            "idle (cl-sec)",
            "idle saved",
            "runs ok",
        ],
        &rows,
    );
    println!("\nThe paper's deployed result (43% idle reduction at 99% hit, and >60%");
    println!("in some regions) corresponds to the SSA+ row: rolling retraining lets");
    println!("the pool track the diurnal shape the static reference must over-buy.");
}
