//! Fig. 6: training time vs input data size per model. The paper's finding:
//! SSA/SSA+ train ~200× faster than the deep models, which is what makes
//! the minutes-cadence retraining loop (§7.4) possible.
//!
//! `cargo run --release -p ip-bench --bin fig6_training_time`

use ip_bench::{build_model, model_names, print_table, Scale};
use ip_timeseries::TimeSeries;
use ip_workload::{preset, PresetId};

fn main() {
    let _span = ip_obs::span("bench.fig6_training_time");
    let scale = Scale::from_env();
    let mut model = preset(PresetId::EastUs2Small, 8);
    model.days = scale.history_days();
    let full = model.generate();

    // Input sizes (intervals): quarter-day steps up to the full trace.
    let sizes: Vec<usize> = match scale {
        Scale::Quick => vec![720, 1440, 2880, 5760],
        Scale::Full => vec![1800, 3600, 7200, 14400, 28800],
    };

    println!("Fig. 6: training time (seconds) vs input size (intervals)\n");
    let mut rows = Vec::new();
    for &size in &sizes {
        if size > full.len() {
            continue;
        }
        let train = TimeSeries::new(
            full.interval_secs(),
            full.values()[full.len() - size..].to_vec(),
        )
        .expect("series");
        let mut row = vec![size.to_string()];
        for name in model_names() {
            let mut forecaster = build_model(name, scale, 0.5);
            match forecaster.fit(&train) {
                Ok(report) => row.push(format!("{:.3}", report.fit_time.as_secs_f64())),
                Err(e) => row.push(format!("err({e})")),
            }
        }
        rows.push(row);
    }
    let headers: Vec<&str> = std::iter::once("intervals").chain(model_names()).collect();
    print_table(&headers, &rows);
    println!();
    println!("Expected shape (paper): SSA and SSA+ two orders of magnitude faster");
    println!("than mWDN/TST/InceptionTime, with TST the slowest.");
}
