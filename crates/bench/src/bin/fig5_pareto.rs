//! Fig. 5: wait-time vs idle-time trade-off curves for the ML models under
//! (a) the 2-step pipeline and (b) the E2E pipeline, with the
//! no-intelligence baseline of Eq. 17.
//!
//! `cargo run --release -p ip-bench --bin fig5_pareto -- two-step`
//! `cargo run --release -p ip-bench --bin fig5_pareto -- e2e`
//!
//! Models: baseline (γ sweep), SSA (α' sweep affects only the optimizer —
//! the §5.3 limitation), SSA+ and mWDN (α' shapes both the loss and the
//! optimizer). Planned on history, evaluated on the following held-out
//! stretch (out of sample, like the paper).

use ip_bench::{default_saa, print_table, Scale};
use ip_core::{EndToEndEngine, RecommendationEngine, TwoStepEngine};
use ip_models::ssa_plus::SsaPlusConfig;
use ip_models::{BaselineForecaster, DeepConfig, Mwdn, SsaModel, SsaPlus};
use ip_saa::{evaluate_schedule, PoolMechanics, SaaConfig};
use ip_ssa::RankSelection;
use ip_timeseries::TimeSeries;
use ip_workload::{preset, PresetId};

fn build_engine(
    pipeline: &str,
    model: &str,
    alpha: f64,
    scale: Scale,
    saa: SaaConfig,
) -> Box<dyn RecommendationEngine> {
    let saa = SaaConfig {
        alpha_prime: alpha,
        ..saa
    };
    let deep = DeepConfig {
        alpha_prime: alpha as f32,
        ..scale.deep_config()
    };
    macro_rules! wrap {
        ($f:expr) => {
            if pipeline == "two-step" {
                Box::new(TwoStepEngine::new($f, saa)) as Box<dyn RecommendationEngine>
            } else {
                Box::new(EndToEndEngine::new($f, saa))
            }
        };
    }
    match model {
        "baseline" => wrap!(BaselineForecaster::new(1.2 * (1.0 - alpha))),
        "SSA" => wrap!(SsaModel::new(
            scale.ssa_window(),
            RankSelection::EnergyThreshold(0.9)
        )),
        "SSA+" => wrap!(SsaPlus::new(SsaPlusConfig {
            window: scale.ssa_window(),
            alpha_prime: 1.0 - alpha as f32, // overshoot when the optimizer is wait-averse
            ..Default::default()
        })),
        "mWDN" => wrap!(Mwdn::model(deep, 3, 16)),
        other => panic!("unknown model {other}"),
    }
}

fn evaluate(targets: &[u32], future: &TimeSeries, saa: &SaaConfig) -> PoolMechanics {
    // Extend a short recommendation with its last value clamped into the
    // configured pool bounds — bare padding could sit below MIN POOL SIZE
    // (same invariant as the pareto sweep's per-block extension).
    let fill = targets
        .last()
        .copied()
        .unwrap_or(saa.min_pool)
        .clamp(saa.min_pool, saa.max_pool);
    let schedule: Vec<f64> = (0..future.len())
        .map(|t| f64::from(targets.get(t).copied().unwrap_or(fill)))
        .collect();
    evaluate_schedule(future, &schedule, saa.tau_intervals).expect("evaluation")
}

fn main() {
    let _span = ip_obs::span("bench.fig5_pareto");
    let pipeline = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "two-step".to_string());
    assert!(
        pipeline == "two-step" || pipeline == "e2e",
        "usage: fig5_pareto [two-step|e2e]"
    );
    let scale = Scale::from_env();
    let saa = default_saa();

    let mut model = preset(PresetId::EastUs2Small, 3);
    model.days = scale.history_days() + 1;
    let full = model.generate();
    let cut = full.len() - 2880; // hold out the last day
    let history = full.slice(0, cut).expect("slice");
    let horizon = scale.horizon();
    let future = full.slice(cut, cut + horizon).expect("slice");

    let alphas = [0.05, 0.2, 0.5, 0.8, 0.95];
    println!(
        "Fig. 5{}: wait vs idle Pareto points, {} pipeline, horizon {} intervals\n",
        if pipeline == "two-step" { "a" } else { "b" },
        pipeline,
        horizon
    );

    // Every (model, α') curve point is independent: fan the grid out across
    // threads. par_map preserves the grid order, so the table is identical
    // to the serial run's.
    let grid: Vec<(&str, f64)> = ["baseline", "SSA", "SSA+", "mWDN"]
        .into_iter()
        .flat_map(|m| alphas.iter().map(move |&a| (m, a)))
        .collect();
    let rows: Vec<Vec<String>> = ip_par::par_map(&grid, |&(model_name, alpha)| {
        let mut engine = build_engine(&pipeline, model_name, alpha, scale, saa);
        match engine.recommend(&history, horizon) {
            Ok(targets) => {
                let mech = evaluate(&targets, &future, &saa);
                vec![
                    model_name.to_string(),
                    format!("{alpha:.2}"),
                    format!("{:.0}", mech.idle_cluster_seconds),
                    format!("{:.1}", mech.mean_wait_per_request_secs),
                    format!("{:.1}%", mech.hit_rate * 100.0),
                ]
            }
            Err(e) => vec![
                model_name.to_string(),
                format!("{alpha:.2}"),
                format!("error: {e}"),
                String::new(),
                String::new(),
            ],
        }
    });
    print_table(
        &[
            "model",
            "alpha'",
            "idle (cl-sec)",
            "mean wait (s)",
            "hit rate",
        ],
        &rows,
    );
    println!();
    println!("Expected shape (paper): SSA cannot reach very low wait times; SSA+ and");
    println!("mWDN can, via the asymmetric loss; 2-step dominates E2E at low waits.");
}
