//! Fleet fan-out bench for the fleet-of-pools refactor: how the stack
//! scales from one pool to N first-class pools.
//!
//! Two measurements, each at 1 / 4 / 16 pools and `IP_THREADS` ∈ {1, 4}:
//!
//! * **recommend_all** — `ip_core::Fleet::recommend_all` sizing every
//!   pool from one day of history. Pools are independent, so this is the
//!   layer where the parallel fan-out (ip-par over pools) should pay;
//!   on a single-core host the 4-thread rows measure overhead only.
//! * **fleet_sim** — `ip_sim::FleetSim::run_to_end` interleaving every
//!   pool's events in one logical-time order. The interleave is
//!   inherently sequential (that is the determinism contract), so this
//!   row quantifies the per-pool cost of the shared event loop.
//!
//! Demand is Table-1 presets round-robined across pools with per-pool
//! seeds derived from the pool name, exactly as `FleetTrace` derives
//! them, so every (pool-count, thread-count) cell sees identical traces.
//!
//! `cargo run --release -p ip-bench --bin bench_pr5`
//!
//! Writes the machine-readable artifact `BENCH_pr5.json` at the workspace
//! root, recording `available_parallelism` of the measuring host.

use ip_bench::print_table;
use ip_core::{Fleet, PoolSpec};
use ip_saa::SaaConfig;
use ip_sim::{FleetPool, FleetSim, PoolId, SimConfig};
use ip_timeseries::TimeSeries;
use ip_workload::{pool_seed, preset, PresetId};
use std::collections::BTreeMap;
use std::time::Instant;

const POOL_COUNTS: [usize; 3] = [1, 4, 16];
const THREAD_COUNTS: [usize; 2] = [1, 4];
const PRESETS: [PresetId; 4] = [
    PresetId::EastUs2Medium,
    PresetId::EastUs2Small,
    PresetId::WestUs2Medium,
    PresetId::EastUs2Large,
];

/// One day of demand per pool, preset round-robined by index, seed
/// derived from the pool name (stable across pool counts: pool `i` sees
/// the same trace whether the fleet has 4 or 16 members).
fn fleet_demands(pools: usize) -> Vec<(String, TimeSeries)> {
    (0..pools)
        .map(|i| {
            let name = format!("pool-{i:02}");
            let mut model = preset(PRESETS[i % PRESETS.len()], pool_seed(7, &name));
            model.days = 1;
            let trace = model.generate();
            (name, trace)
        })
        .collect()
}

fn saa() -> SaaConfig {
    SaaConfig {
        tau_intervals: 3,
        stableness: 10,
        max_pool: 120,
        ..Default::default()
    }
}

fn bench_recommend_all(pools: usize, samples: usize) -> f64 {
    let mut fleet = Fleet::new();
    let mut demands = BTreeMap::new();
    for (name, trace) in fleet_demands(pools) {
        fleet.register(
            name.as_str(),
            PoolSpec {
                saa: saa(),
                ..Default::default()
            },
        );
        demands.insert(PoolId::new(name), trace);
    }
    let mut times: Vec<f64> = (0..samples)
        .map(|_| {
            let start = Instant::now();
            let recs = fleet.recommend_all(&demands);
            assert!(recs.iter().all(|(_, r)| r.is_ok()));
            start.elapsed().as_secs_f64()
        })
        .collect();
    times.sort_by(|a, b| a.partial_cmp(b).unwrap());
    times[times.len() / 2]
}

fn bench_fleet_sim(pools: usize, samples: usize) -> f64 {
    let mut times: Vec<f64> = (0..samples)
        .map(|_| {
            let members = fleet_demands(pools)
                .into_iter()
                .map(|(name, trace)| {
                    let cfg = SimConfig {
                        interval_secs: trace.interval_secs(),
                        default_pool_target: 4,
                        seed: 11,
                        ..Default::default()
                    };
                    FleetPool::new(name, cfg, trace)
                })
                .collect();
            let mut sim = FleetSim::new(members).expect("fleet");
            let start = Instant::now();
            sim.run_to_end();
            let elapsed = start.elapsed().as_secs_f64();
            let report = sim.finalize();
            assert_eq!(report.pools.len(), pools);
            elapsed
        })
        .collect();
    times.sort_by(|a, b| a.partial_cmp(b).unwrap());
    times[times.len() / 2]
}

struct Record {
    measurement: &'static str,
    pools: usize,
    threads: usize,
    median_secs: f64,
    per_pool_secs: f64,
}

fn write_json(records: &[Record], samples: usize) {
    let avail = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    let mut body = String::from("{\n");
    body.push_str("  \"artifact\": \"BENCH_pr5\",\n");
    body.push_str(
        "  \"description\": \"fleet fan-out scaling: Fleet::recommend_all over N pools (parallel across pools) and FleetSim::run_to_end (sequential logical-time interleave)\",\n",
    );
    body.push_str(&format!("  \"available_parallelism\": {avail},\n"));
    body.push_str(&format!("  \"samples_per_measurement\": {samples},\n"));
    body.push_str(
        "  \"workload\": {\"days\": 1, \"interval_secs\": 30, \"intervals_per_pool\": 2880},\n",
    );
    body.push_str("  \"measurements\": [\n");
    for (i, r) in records.iter().enumerate() {
        body.push_str(&format!(
            "    {{\"measurement\": \"{}\", \"pools\": {}, \"threads\": {}, \"median_secs\": {:.6e}, \"per_pool_secs\": {:.6e}}}{}\n",
            r.measurement,
            r.pools,
            r.threads,
            r.median_secs,
            r.per_pool_secs,
            if i + 1 < records.len() { "," } else { "" },
        ));
    }
    body.push_str("  ]\n}\n");
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_pr5.json");
    std::fs::write(path, body).expect("write BENCH_pr5.json");
    println!("\nwrote {path}");
}

fn main() {
    let _span = ip_obs::span("bench.bench_pr5");
    let samples: usize = std::env::var("IP_BENCH_SAMPLES")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(3)
        .max(1);
    let mut records = Vec::new();

    println!("fleet fan-out, one day of demand per pool, median of {samples}\n");
    for threads in THREAD_COUNTS {
        // ip-par reads IP_THREADS per call, so the override applies to
        // every parallel region issued below.
        std::env::set_var("IP_THREADS", threads.to_string());
        for pools in POOL_COUNTS {
            let secs = bench_recommend_all(pools, samples);
            records.push(Record {
                measurement: "recommend_all",
                pools,
                threads,
                median_secs: secs,
                per_pool_secs: secs / pools as f64,
            });
            let secs = bench_fleet_sim(pools, samples);
            records.push(Record {
                measurement: "fleet_sim",
                pools,
                threads,
                median_secs: secs,
                per_pool_secs: secs / pools as f64,
            });
        }
    }
    std::env::remove_var("IP_THREADS");

    let rows: Vec<Vec<String>> = records
        .iter()
        .map(|r| {
            vec![
                r.measurement.to_string(),
                r.pools.to_string(),
                r.threads.to_string(),
                format!("{:.3}", r.median_secs),
                format!("{:.4}", r.per_pool_secs),
            ]
        })
        .collect();
    print_table(
        &["measurement", "pools", "threads", "median_s", "per_pool_s"],
        &rows,
    );
    write_json(&records, samples);
}
