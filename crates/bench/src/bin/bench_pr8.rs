//! Observability-overhead bench (PR 8): the same closed-loop keep-alive
//! batch-inject load as `bench_serve`, with request-scoped tracing as the
//! only variable.
//!
//! Three modes, identical workers/clients/batch so instrumentation is the
//! only difference:
//!
//! * **obs_off** — `IP_OBS` gate closed (the production default): every
//!   per-request trace/metric call site must collapse to one relaxed
//!   atomic load. The SLO trackers and the flight recorder still run —
//!   they are controller-tick-granularity and always on by design.
//! * **obs_on** — gate open: trace ids, `http.*` phase spans, per-endpoint
//!   latency/phase/body histograms, and per-shard worker metrics all
//!   record on every request.
//! * **obs_on_scrape** — `obs_on` plus one concurrent keep-alive client
//!   alternating `GET /slo` and `GET /debug/flight`; comparing inject p99
//!   against `obs_on` checks the new endpoints build their documents
//!   outside the hot path (controller lock held only for tree-building).
//!
//! `cargo run --release -p ip-bench --bin bench_pr8`
//!
//! Writes `BENCH_pr8.json` at the workspace root with the on/off
//! throughput ratio. The bench host has 1 CPU (ROADMAP standing
//! constraint): clients, workers, and the controller share one core, so
//! absolute rates are conservative and the ratio is what matters. Run with
//! `--smoke` for a short run asserting nonzero injects and zero failures
//! without touching the artifact.

use ip_serve::{Daemon, ServeConfig};
use ip_sim::SimConfig;
use ip_timeseries::TimeSeries;
use std::io::{ErrorKind, Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::time::{Duration, Instant};

/// Injection entries per `POST /requests`.
const BATCH: usize = 16;
/// Closed-loop inject clients per mode.
const CLIENTS: usize = 4;
/// HTTP worker threads (= queue shards) for every mode.
const WORKERS: usize = 4;

struct ModeResult {
    mode: &'static str,
    requests: u64,
    injects: u64,
    failures: u64,
    duration_secs: f64,
    p50_ms: f64,
    p99_ms: f64,
    scrapes: u64,
}

impl ModeResult {
    fn injects_per_sec(&self) -> f64 {
        self.injects as f64 / self.duration_secs
    }

    fn requests_per_sec(&self) -> f64 {
        self.requests as f64 / self.duration_secs
    }
}

/// A keep-alive HTTP/1.1 client over one socket; responses framed by
/// `Content-Length`.
struct Client {
    stream: TcpStream,
    buf: Vec<u8>,
    /// Set when the last response carried `Connection: close` (the server
    /// caps requests per connection); the caller must reconnect before the
    /// next request — that is protocol, not a failure.
    closed: bool,
}

impl Client {
    fn connect(addr: SocketAddr) -> std::io::Result<Self> {
        let stream = TcpStream::connect(addr)?;
        stream.set_read_timeout(Some(Duration::from_secs(10)))?;
        stream.set_nodelay(true)?;
        Ok(Self {
            stream,
            buf: Vec::with_capacity(4096),
            closed: false,
        })
    }

    /// Sends one request and reads one framed response; returns the
    /// status code.
    fn request(&mut self, method: &str, path: &str, body: &str) -> std::io::Result<u16> {
        let request = format!(
            "{method} {path} HTTP/1.1\r\nHost: bench\r\nContent-Length: {}\r\n\r\n{body}",
            body.len()
        );
        self.stream.write_all(request.as_bytes())?;
        let mut chunk = [0u8; 4096];
        let head_end = loop {
            if let Some(pos) = self.buf.windows(4).position(|w| w == b"\r\n\r\n") {
                break pos;
            }
            match self.stream.read(&mut chunk) {
                Ok(0) => {
                    return Err(std::io::Error::new(
                        ErrorKind::UnexpectedEof,
                        "closed mid-head",
                    ))
                }
                Ok(n) => self.buf.extend_from_slice(&chunk[..n]),
                Err(e) if e.kind() == ErrorKind::Interrupted => continue,
                Err(e) => return Err(e),
            }
        };
        let head = String::from_utf8_lossy(&self.buf[..head_end]).to_string();
        let status: u16 = head
            .split_whitespace()
            .nth(1)
            .and_then(|s| s.parse().ok())
            .ok_or_else(|| std::io::Error::new(ErrorKind::InvalidData, "bad status line"))?;
        self.closed = head.lines().any(|line| {
            line.split_once(':').is_some_and(|(key, value)| {
                key.trim().eq_ignore_ascii_case("connection")
                    && value.trim().eq_ignore_ascii_case("close")
            })
        });
        let content_length: usize = head
            .lines()
            .find_map(|line| {
                let (key, value) = line.split_once(':')?;
                if key.trim().eq_ignore_ascii_case("content-length") {
                    value.trim().parse().ok()
                } else {
                    None
                }
            })
            .ok_or_else(|| std::io::Error::new(ErrorKind::InvalidData, "no Content-Length"))?;
        let body_start = head_end + 4;
        while self.buf.len() < body_start + content_length {
            match self.stream.read(&mut chunk) {
                Ok(0) => {
                    return Err(std::io::Error::new(
                        ErrorKind::UnexpectedEof,
                        "closed mid-body",
                    ))
                }
                Ok(n) => self.buf.extend_from_slice(&chunk[..n]),
                Err(e) if e.kind() == ErrorKind::Interrupted => continue,
                Err(e) => return Err(e),
            }
        }
        self.buf.drain(..body_start + content_length);
        Ok(status)
    }
}

struct ClientTally {
    requests: u64,
    injects: u64,
    failures: u64,
    latencies_ms: Vec<f64>,
}

fn percentile(sorted: &[f64], p: f64) -> f64 {
    if sorted.is_empty() {
        return 0.0;
    }
    let idx = ((sorted.len() as f64 - 1.0) * p).round() as usize;
    sorted[idx.min(sorted.len() - 1)]
}

fn batch_body() -> String {
    let entries: Vec<&str> = std::iter::repeat_n("{\"count\":1}", BATCH).collect();
    format!("[{}]", entries.join(","))
}

/// Runs one mode: boots a fresh daemon with the gate set for the mode,
/// hammers it with `CLIENTS` keep-alive batch-inject clients (optionally
/// plus an `/slo` + `/debug/flight` scraper), shuts it down.
fn run_mode(mode: &'static str, duration: Duration) -> ModeResult {
    let obs = mode != "obs_off";
    let scrape = mode.ends_with("scrape");
    ip_obs::set_enabled(obs);
    ip_obs::reset();
    ip_obs::flight::reset();

    // A trace far too long to complete during the bench: the injection
    // frontier never catches up, so every inject stays valid.
    let mut config = ServeConfig::new(TimeSeries::new(30, vec![1.0; 100_000]).unwrap());
    config.sim = SimConfig {
        default_pool_target: 2,
        tau_jitter_secs: 0,
        ..Default::default()
    };
    config.speedup = 1.0;
    config.workers = WORKERS;
    config.keep_alive = true;
    let daemon = Daemon::start(config).expect("daemon starts");
    let addr = daemon.addr();
    let body = batch_body();

    let stop = AtomicBool::new(false);
    let started = Instant::now();
    let (tallies, scrapes) = std::thread::scope(|scope| {
        let inject_handles: Vec<_> = (0..CLIENTS)
            .map(|_| {
                let stop = &stop;
                let body = body.as_str();
                scope.spawn(move || {
                    let mut tally = ClientTally {
                        requests: 0,
                        injects: 0,
                        failures: 0,
                        latencies_ms: Vec::with_capacity(4096),
                    };
                    let mut client = Client::connect(addr).ok();
                    while !stop.load(Ordering::Relaxed) {
                        if client.as_ref().is_none_or(|c| c.closed) {
                            client = Client::connect(addr).ok();
                            if client.is_none() {
                                continue;
                            }
                        }
                        let t0 = Instant::now();
                        let status = client.as_mut().expect("reconnected above").request(
                            "POST",
                            "/requests",
                            body,
                        );
                        let ms = t0.elapsed().as_secs_f64() * 1_000.0;
                        tally.requests += 1;
                        match status {
                            Ok(200) => {
                                tally.injects += BATCH as u64;
                                tally.latencies_ms.push(ms);
                            }
                            Ok(_) | Err(_) => {
                                tally.failures += 1;
                                client = Client::connect(addr).ok();
                            }
                        }
                    }
                    tally
                })
            })
            .collect();
        let scrape_handle = scrape.then(|| {
            let stop = &stop;
            scope.spawn(move || {
                let mut scrapes = 0u64;
                let mut client = Client::connect(addr).ok();
                while !stop.load(Ordering::Relaxed) {
                    if client.as_ref().is_none_or(|c| c.closed) {
                        client = Client::connect(addr).ok();
                        if client.is_none() {
                            continue;
                        }
                    }
                    let path = if scrapes.is_multiple_of(2) {
                        "/slo"
                    } else {
                        "/debug/flight"
                    };
                    match client.as_mut().map(|c| c.request("GET", path, "")) {
                        Some(Ok(200)) => scrapes += 1,
                        _ => client = Client::connect(addr).ok(),
                    }
                }
                scrapes
            })
        });
        std::thread::sleep(duration);
        stop.store(true, Ordering::Relaxed);
        let tallies: Vec<ClientTally> = inject_handles
            .into_iter()
            .map(|h| h.join().expect("inject client panicked"))
            .collect();
        let scrapes = scrape_handle
            .map(|h| h.join().expect("scraper panicked"))
            .unwrap_or(0);
        (tallies, scrapes)
    });
    let elapsed = started.elapsed().as_secs_f64();
    daemon.request_shutdown();
    let outcome = daemon.join();
    ip_obs::set_enabled(false);

    let mut latencies: Vec<f64> = tallies
        .iter()
        .flat_map(|t| t.latencies_ms.clone())
        .collect();
    latencies.sort_by(|a, b| a.partial_cmp(b).unwrap());
    let injects: u64 = tallies.iter().map(|t| t.injects).sum();
    assert_eq!(
        outcome.injected, injects,
        "{mode}: daemon-side inject count must match client-side"
    );
    ModeResult {
        mode,
        requests: tallies.iter().map(|t| t.requests).sum(),
        injects,
        failures: tallies.iter().map(|t| t.failures).sum(),
        duration_secs: elapsed,
        p50_ms: percentile(&latencies, 0.50),
        p99_ms: percentile(&latencies, 0.99),
        scrapes,
    }
}

fn write_json(results: &[ModeResult], duration_secs: f64, on_over_off: f64) {
    let avail = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    let mut body = String::from("{\n");
    body.push_str("  \"artifact\": \"BENCH_pr8\",\n");
    body.push_str(
        "  \"description\": \"request-scoped tracing overhead: keep-alive 16-entry-batch POST /requests load with the IP_OBS gate as the only variable, plus a concurrent /slo + /debug/flight scraper\",\n",
    );
    body.push_str(&format!("  \"available_parallelism\": {avail},\n"));
    body.push_str(
        "  \"caveat\": \"bench host has 1 CPU (ROADMAP standing constraint): clients, workers, and the controller share one core, so absolute rates are conservative; the obs_on/obs_off ratio is the signal\",\n",
    );
    body.push_str(&format!(
        "  \"config\": {{\"workers\": {WORKERS}, \"clients\": {CLIENTS}, \"batch\": {BATCH}, \"duration_secs\": {duration_secs}}},\n"
    ));
    body.push_str(&format!(
        "  \"obs_on_injects_per_sec_over_obs_off\": {on_over_off:.3},\n"
    ));
    body.push_str("  \"measurements\": [\n");
    for (i, r) in results.iter().enumerate() {
        body.push_str(&format!(
            "    {{\"mode\": \"{}\", \"requests\": {}, \"injects\": {}, \"failures\": {}, \"requests_per_sec\": {:.1}, \"injects_per_sec\": {:.1}, \"p50_ms\": {:.3}, \"p99_ms\": {:.3}, \"slo_flight_scrapes\": {}}}{}\n",
            r.mode,
            r.requests,
            r.injects,
            r.failures,
            r.requests_per_sec(),
            r.injects_per_sec(),
            r.p50_ms,
            r.p99_ms,
            r.scrapes,
            if i + 1 < results.len() { "," } else { "" },
        ));
    }
    body.push_str("  ]\n}\n");
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_pr8.json");
    std::fs::write(path, body).expect("write BENCH_pr8.json");
    println!("\nwrote {path}");
}

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");
    let duration_secs: f64 = std::env::var("IP_BENCH_PR8_SECS")
        .ok()
        .and_then(|v| v.parse::<f64>().ok())
        .unwrap_or(if smoke { 0.5 } else { 3.0 })
        .max(0.1);
    let duration = Duration::from_secs_f64(duration_secs);

    let modes: &[&'static str] = if smoke {
        &["obs_off", "obs_on"]
    } else {
        &["obs_off", "obs_on", "obs_on_scrape"]
    };
    println!(
        "tracing overhead: {CLIENTS} clients x {duration_secs}s per mode, {WORKERS} workers\n"
    );
    let results: Vec<ModeResult> = modes.iter().map(|m| run_mode(m, duration)).collect();

    let rows: Vec<Vec<String>> = results
        .iter()
        .map(|r| {
            vec![
                r.mode.to_string(),
                format!("{:.1}", r.requests_per_sec()),
                format!("{:.1}", r.injects_per_sec()),
                format!("{:.3}", r.p50_ms),
                format!("{:.3}", r.p99_ms),
                r.failures.to_string(),
                r.scrapes.to_string(),
            ]
        })
        .collect();
    ip_bench::print_table(
        &[
            "mode",
            "req_per_s",
            "inj_per_s",
            "p50_ms",
            "p99_ms",
            "failures",
            "scrapes",
        ],
        &rows,
    );

    let by_mode = |name: &str| results.iter().find(|r| r.mode == name);
    let off = by_mode("obs_off").expect("baseline ran");
    let on = by_mode("obs_on").expect("instrumented mode ran");
    let ratio = on.injects_per_sec() / off.injects_per_sec().max(1e-9);
    println!("\nobs_on vs obs_off: {ratio:.3}x injects/sec");

    if smoke {
        let mut ok = true;
        for r in &results {
            if r.injects == 0 {
                eprintln!("SMOKE FAIL: mode {} injected nothing", r.mode);
                ok = false;
            }
            if r.failures > 0 {
                eprintln!(
                    "SMOKE FAIL: mode {} had {} failed requests",
                    r.mode, r.failures
                );
                ok = false;
            }
        }
        if !ok {
            std::process::exit(1);
        }
        println!("smoke ok: all modes injected with zero failures");
        return;
    }

    write_json(&results, duration_secs, ratio);
}
