//! Policy spectrum ablation (§4.2): the paper notes one can constrain the
//! LP so "the pool size for the same day of week or time of day is the same
//! as for a more static controlling policy". This binary compares the full
//! spectrum on the same trace:
//!
//!   static pool  ⊂  time-of-day profile  ⊂  fully dynamic schedule
//!
//! plus the §2 hedged-request mitigation as the no-pooling reference.
//!
//! `cargo run --release -p ip-bench --bin ablation_policy`

use ip_bench::{default_saa, print_table, Scale};
use ip_saa::static_pool::static_schedule;
use ip_saa::{evaluate_schedule, optimize_dp, optimize_periodic_profile};
use ip_sim::{SimConfig, Simulation};
use ip_workload::{preset, PresetId};

fn main() {
    let scale = Scale::from_env();
    let mut model = preset(PresetId::EastUs2Small, 27);
    model.days = scale.history_days().min(3);
    let demand = model.generate();
    let cfg = default_saa();
    let blocks_per_day = 2880 / cfg.stableness;

    println!(
        "§4.2 policy spectrum on {} days of East US 2 / Small demand\n",
        model.days
    );
    let mut rows = Vec::new();

    // Fully dynamic (free DP).
    let free = optimize_dp(&demand, &cfg).expect("DP");
    let m = evaluate_schedule(&demand, &free.schedule, cfg.tau_intervals).expect("eval");
    rows.push(vec![
        "fully dynamic".into(),
        format!("{:.0}", free.objective),
        format!("{:.1}%", m.hit_rate * 100.0),
        format!("{:.0}", m.idle_cluster_seconds),
        format!("{:.2}", m.mean_wait_per_request_secs),
    ]);

    // Time-of-day profile (one day of blocks, repeated).
    let profile = optimize_periodic_profile(&demand, &cfg, blocks_per_day).expect("periodic");
    let m = evaluate_schedule(&demand, &profile.schedule, cfg.tau_intervals).expect("eval");
    rows.push(vec![
        "time-of-day profile".into(),
        format!("{:.0}", profile.objective),
        format!("{:.1}%", m.hit_rate * 100.0),
        format!("{:.0}", m.idle_cluster_seconds),
        format!("{:.2}", m.mean_wait_per_request_secs),
    ]);

    // Static pool (period-1 profile).
    let static_opt = optimize_periodic_profile(&demand, &cfg, 1).expect("static");
    let static_n = static_opt.per_block[0] as u32;
    let m = evaluate_schedule(
        &demand,
        &static_schedule(demand.len(), static_n),
        cfg.tau_intervals,
    )
    .expect("eval");
    rows.push(vec![
        format!("static pool (N = {static_n})"),
        format!("{:.0}", static_opt.objective),
        format!("{:.1}%", m.hit_rate * 100.0),
        format!("{:.0}", m.idle_cluster_seconds),
        format!("{:.2}", m.mean_wait_per_request_secs),
    ]);

    print_table(
        &[
            "policy",
            "objective",
            "hit rate",
            "idle (cl-sec)",
            "mean wait (s)",
        ],
        &rows,
    );

    // No pooling at all, with and without hedged on-demand requests (§2).
    println!("\nno-pool reference (every request on-demand), jittered creation latency:");
    let mut rows2 = Vec::new();
    for hedging in [1u32, 2, 3] {
        let sim_cfg = SimConfig {
            interval_secs: 30,
            tau_secs: 90,
            tau_jitter_secs: 60,
            default_pool_target: 0,
            on_demand_hedging: hedging,
            seed: 5,
            ..Default::default()
        };
        let r = Simulation::new(sim_cfg, None).run(&demand).expect("sim");
        rows2.push(vec![
            format!("hedging x{hedging}"),
            format!("{:.2}", r.mean_wait_secs),
            format!("{}", r.on_demand_created),
            format!("{}", r.hedges_discarded),
        ]);
    }
    print_table(
        &["strategy", "mean wait (s)", "creations", "discarded"],
        &rows2,
    );
    println!("\nHedging trims the creation-latency tail (the pre-pooling mitigation the");
    println!("paper cites) but cannot reach zero wait — only pooling does that, and the");
    println!("policy table shows what each pooling flexibility level buys.");
}
