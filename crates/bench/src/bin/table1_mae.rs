//! Table 1: MAE of the five models ({SSA+, SSA, mWDN, TST, IncpT}) across
//! the six region × node-size datasets, 2-step pipeline protocol: fit on
//! the 80% training prefix, forecast the test horizon, measure MAE (and
//! RMSE) against ground truth.
//!
//! `cargo run --release -p ip-bench --bin table1_mae`
//! (`IP_BENCH_FULL=1` for the paper's 14-day / 1200-step scale)

use ip_bench::{build_model, model_names, print_table, Scale};
use ip_timeseries::{mae, rmse, train_test_split};
use ip_workload::{preset, table1_presets};

fn main() {
    let scale = Scale::from_env();
    let horizon = scale.horizon();

    println!(
        "Table 1: forecast MAE, 2-step pipeline, {}-day datasets, {}-step horizon\n",
        scale.history_days(),
        horizon
    );

    let mut rows = Vec::new();
    let mut sums = vec![0.0f64; model_names().len()];
    let mut counts = vec![0usize; model_names().len()];

    for preset_id in table1_presets() {
        let mut model = preset(preset_id, 21);
        model.days = scale.history_days();
        let full = model.generate();
        let (train, test) = train_test_split(&full, 0.8).expect("split");
        let h = horizon.min(test.len());
        let truth = &test.values()[..h];

        // The five models fit the same split independently — fan them out.
        // par_map keeps the column order; the accumulators are updated from
        // the ordered results, so the averages don't depend on thread count.
        let names: Vec<&str> = model_names().to_vec();
        let cells: Vec<(String, Option<f64>)> = ip_par::par_map(&names, |name| {
            let mut forecaster = build_model(name, scale, 0.5);
            forecaster
                .fit(&train)
                .and_then(|_| forecaster.predict(h))
                .map(|pred| {
                    let m = mae(truth, &pred).expect("same length");
                    let r = rmse(truth, &pred).expect("same length");
                    (format!("{m:.2} ({r:.2})"), Some(m))
                })
                .unwrap_or_else(|e| (format!("err({e})"), None))
        });
        let mut row = vec![preset_id.label().to_string()];
        for (i, (cell, m)) in cells.into_iter().enumerate() {
            if let Some(m) = m {
                sums[i] += m;
                counts[i] += 1;
            }
            row.push(cell);
        }
        rows.push(row);
        eprintln!("  finished {}", preset_id.label());
    }

    // Average row, as in the paper.
    let mut avg_row = vec!["Average".to_string()];
    for (s, c) in sums.iter().zip(&counts) {
        avg_row.push(if *c > 0 {
            format!("{:.2}", s / *c as f64)
        } else {
            "-".into()
        });
    }
    rows.push(avg_row);

    let headers: Vec<&str> = std::iter::once("dataset").chain(model_names()).collect();
    print_table(&headers, &rows);
    println!("\ncells: MAE (RMSE). Paper reference values (MAE, avg): SSA+ 4.91,");
    println!("SSA 5.78, mWDN 4.59, TST 4.79, IncpT 4.73 — mWDN best on average,");
    println!("SSA worst, SSA+ close behind the deep models at a fraction of the cost.");
}
