//! Cross-pool borrowing bench (PR 10): the same fleet at the same pool
//! budget, isolated vs wired into one resource cluster by a permissive
//! compatibility matrix, under the composed `diurnal-ramp+flash-crowd`
//! spike scenario.
//!
//! Two phases per mode:
//!
//! 1. **Offline quality** (deterministic, no wall clock): a 3-pool
//!    [`ip_sim::FleetSim`] replay of the scenario-shaped traces. Recorded:
//!    fleet hit rate, mean wait, idle-time COGS, and borrow count. The
//!    borrowing fleet must be **strictly better** than the isolated one at
//!    equal budget — higher hit rate *and* lower mean wait — which this
//!    bench asserts.
//! 2. **Serve throughput**: the keep-alive batch-inject load from
//!    `bench_pr8/9` against a live fleet daemon replaying the same
//!    scenario, matrix off vs on. The borrow resolution path rides the
//!    controller's epoch loop, so the inject throughput ratio
//!    (borrowing / isolated) is the control-plane cost of borrowing; the
//!    budget is a ≤5 % regression.
//!
//! `cargo run --release -p ip-bench --bin bench_pr10`
//!
//! Writes `BENCH_pr10.json` at the workspace root. The bench host has
//! 1 CPU (ROADMAP standing constraint), so absolute rates are
//! conservative and the on/off ratio is the signal. Run with `--smoke`
//! for a short run asserting nonzero injects, zero failures, and that the
//! borrowing mode really borrowed, without touching the artifact.

use ip_chaos::ScenarioSpec;
use ip_core::CostModel;
use ip_serve::{Daemon, PoolServeConfig, ServeConfig};
use ip_sim::{CompatibilityMatrix, FleetPool, FleetSim, SimConfig};
use ip_timeseries::TimeSeries;
use serde::Content;
use std::io::{ErrorKind, Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::time::{Duration, Instant};

/// Injection entries per `POST /requests`.
const BATCH: usize = 16;
/// Closed-loop inject clients per mode.
const CLIENTS: usize = 2;
/// HTTP worker threads (= queue shards) for every mode.
const WORKERS: usize = 4;
/// Intervals per pool trace for the serve phase (30 s each).
const TRACE_LEN: usize = 96;
/// Intervals per pool trace for the offline quality phase (one day).
const QUALITY_LEN: usize = 2880;
/// The composed spike scenario both phases replay.
const SCENARIO: &str = "diurnal-ramp+flash-crowd";
const SCENARIO_SEED: u64 = 42;
/// Warm-transfer latency on every matrix edge, seconds (vs τ = 90 s).
const EDGE_LATENCY: u64 = 10;

/// `(name, target, demand seed, demand amplitude)` — one entry per pool.
/// The budget (Σ targets) is identical in both modes; "west" runs far
/// under its target, so it is the natural donor when a sibling spikes.
const POOLS: [(&str, u32, u64, f64); 3] = [
    ("east", 3, 3, 5.0),
    ("west", 8, 8, 1.0),
    ("spare", 2, 5, 3.0),
];

/// A deterministic bursty trace (no process RNG).
fn demand(seed: u64, len: usize, amplitude: f64) -> TimeSeries {
    let values = (0..len)
        .map(|i| {
            let x = (i as u64).wrapping_mul(2654435761).wrapping_add(seed * 131);
            (f64::from((x % 5) as u32) / 4.0 * amplitude).round()
        })
        .collect();
    TimeSeries::new(30, values).unwrap()
}

/// Every ordered pool pair may borrow at [`EDGE_LATENCY`].
fn permissive_matrix() -> CompatibilityMatrix {
    let mut m = CompatibilityMatrix::new();
    for (from, ..) in POOLS {
        for (to, ..) in POOLS {
            if from != to {
                m = m.edge(from, to, EDGE_LATENCY);
            }
        }
    }
    m
}

/// The scenario-shaped traces plus each pool's fault schedule.
fn shaped_pools(len: usize) -> Vec<(String, TimeSeries, Vec<ip_sim::FaultEntry>)> {
    let raw = POOLS
        .iter()
        .map(|(name, _, seed, amp)| (name.to_string(), demand(*seed, len, *amp)))
        .collect();
    let plan = ScenarioSpec::by_name(SCENARIO, SCENARIO_SEED)
        .and_then(ScenarioSpec::compile)
        .and_then(|s| s.apply(raw))
        .expect("composed scenario applies");
    plan.demand
        .iter()
        .map(|(id, d)| (id.clone(), d.clone(), plan.faults_for(id).to_vec()))
        .collect()
}

fn sim_config(name: &str, faults: Vec<ip_sim::FaultEntry>) -> SimConfig {
    let target = POOLS
        .iter()
        .find(|(n, ..)| *n == name)
        .map(|(_, t, ..)| *t)
        .expect("known pool");
    SimConfig {
        default_pool_target: target,
        tau_jitter_secs: 0,
        seed: 7,
        faults,
        ..Default::default()
    }
}

/// One mode's offline fleet economics.
struct Quality {
    requests: u64,
    hit_rate: f64,
    mean_wait_secs: f64,
    cogs_dollars: f64,
    borrows: u64,
}

/// Replays the scenario offline at the shared budget, matrix off or on.
fn offline_quality(borrowing: bool) -> Quality {
    let pools: Vec<FleetPool> = shaped_pools(QUALITY_LEN)
        .into_iter()
        .map(|(id, d, faults)| {
            let cfg = sim_config(&id, faults);
            FleetPool::new(id, cfg, d)
        })
        .collect();
    let mut fleet = FleetSim::new(pools).expect("fleet builds");
    if borrowing {
        fleet.set_matrix(permissive_matrix()).expect("matrix set");
    }
    fleet.run_to_end();
    let agg = fleet.finalize().aggregate();
    Quality {
        requests: agg.total_requests,
        hit_rate: agg.hit_rate,
        mean_wait_secs: agg.mean_wait_secs,
        cogs_dollars: CostModel::default().cost_of_idle(agg.idle_cluster_seconds),
        borrows: agg.borrowed_in,
    }
}

struct ModeResult {
    mode: &'static str,
    requests: u64,
    injects: u64,
    failures: u64,
    duration_secs: f64,
    p50_ms: f64,
    p99_ms: f64,
    borrows: u64,
    fleet_cogs_dollars: f64,
}

impl ModeResult {
    fn injects_per_sec(&self) -> f64 {
        self.injects as f64 / self.duration_secs
    }

    fn requests_per_sec(&self) -> f64 {
        self.requests as f64 / self.duration_secs
    }
}

/// A keep-alive HTTP/1.1 client over one socket; responses framed by
/// `Content-Length`.
struct Client {
    stream: TcpStream,
    buf: Vec<u8>,
    closed: bool,
}

impl Client {
    fn connect(addr: SocketAddr) -> std::io::Result<Self> {
        let stream = TcpStream::connect(addr)?;
        stream.set_read_timeout(Some(Duration::from_secs(10)))?;
        stream.set_nodelay(true)?;
        Ok(Self {
            stream,
            buf: Vec::with_capacity(4096),
            closed: false,
        })
    }

    /// Sends one request and reads one framed response; returns the
    /// status code and body.
    fn request(&mut self, method: &str, path: &str, body: &str) -> std::io::Result<(u16, String)> {
        let request = format!(
            "{method} {path} HTTP/1.1\r\nHost: bench\r\nContent-Length: {}\r\n\r\n{body}",
            body.len()
        );
        self.stream.write_all(request.as_bytes())?;
        let mut chunk = [0u8; 4096];
        let head_end = loop {
            if let Some(pos) = self.buf.windows(4).position(|w| w == b"\r\n\r\n") {
                break pos;
            }
            match self.stream.read(&mut chunk) {
                Ok(0) => {
                    return Err(std::io::Error::new(
                        ErrorKind::UnexpectedEof,
                        "closed mid-head",
                    ))
                }
                Ok(n) => self.buf.extend_from_slice(&chunk[..n]),
                Err(e) if e.kind() == ErrorKind::Interrupted => continue,
                Err(e) => return Err(e),
            }
        };
        let head = String::from_utf8_lossy(&self.buf[..head_end]).to_string();
        let status: u16 = head
            .split_whitespace()
            .nth(1)
            .and_then(|s| s.parse().ok())
            .ok_or_else(|| std::io::Error::new(ErrorKind::InvalidData, "bad status line"))?;
        self.closed = head.lines().any(|line| {
            line.split_once(':').is_some_and(|(key, value)| {
                key.trim().eq_ignore_ascii_case("connection")
                    && value.trim().eq_ignore_ascii_case("close")
            })
        });
        let content_length: usize = head
            .lines()
            .find_map(|line| {
                let (key, value) = line.split_once(':')?;
                if key.trim().eq_ignore_ascii_case("content-length") {
                    value.trim().parse().ok()
                } else {
                    None
                }
            })
            .ok_or_else(|| std::io::Error::new(ErrorKind::InvalidData, "no Content-Length"))?;
        let body_start = head_end + 4;
        while self.buf.len() < body_start + content_length {
            match self.stream.read(&mut chunk) {
                Ok(0) => {
                    return Err(std::io::Error::new(
                        ErrorKind::UnexpectedEof,
                        "closed mid-body",
                    ))
                }
                Ok(n) => self.buf.extend_from_slice(&chunk[..n]),
                Err(e) if e.kind() == ErrorKind::Interrupted => continue,
                Err(e) => return Err(e),
            }
        }
        let payload = String::from_utf8_lossy(&self.buf[body_start..body_start + content_length])
            .into_owned();
        self.buf.drain(..body_start + content_length);
        Ok((status, payload))
    }
}

struct ClientTally {
    requests: u64,
    injects: u64,
    failures: u64,
    latencies_ms: Vec<f64>,
}

fn percentile(sorted: &[f64], p: f64) -> f64 {
    if sorted.is_empty() {
        return 0.0;
    }
    let idx = ((sorted.len() as f64 - 1.0) * p).round() as usize;
    sorted[idx.min(sorted.len() - 1)]
}

/// A batch aimed at early intervals of one pool, so injects stay behind
/// the advancing replay frontier as long as possible.
fn batch_body(pool: &str) -> String {
    let entry = format!("{{\"count\":1,\"pool\":\"{pool}\"}}");
    let entries: Vec<String> = std::iter::repeat_n(entry, BATCH).collect();
    format!("[{}]", entries.join(","))
}

/// Runs one serve mode: boots the scenario-shaped fleet daemon (matrix
/// off or on) whose replay spans `duration`, hammers it with batch-inject
/// clients until the trace completes, then scrapes `/fleet` before
/// draining.
fn run_mode(mode: &'static str, borrowing: bool, duration: Duration) -> ModeResult {
    ip_obs::set_enabled(true);
    ip_obs::reset();
    ip_obs::flight::reset();

    let pools: Vec<PoolServeConfig> = shaped_pools(TRACE_LEN)
        .into_iter()
        .map(|(id, d, faults)| {
            let cfg = sim_config(&id, faults);
            let mut p = PoolServeConfig::named(id, d);
            p.sim = cfg;
            p
        })
        .collect();
    let logical_span = pools
        .iter()
        .map(|p| p.demand.duration_secs())
        .max()
        .unwrap_or(1) as f64;
    let mut config = ServeConfig::fleet(pools).expect("fleet config");
    config.matrix = borrowing.then(permissive_matrix);
    config.speedup = logical_span / duration.as_secs_f64();
    config.workers = WORKERS;
    config.keep_alive = true;
    let daemon = Daemon::start(config).expect("daemon starts");
    let addr = daemon.addr();

    let stop = AtomicBool::new(false);
    let started = Instant::now();
    let tallies = std::thread::scope(|scope| {
        let inject_handles: Vec<_> = (0..CLIENTS)
            .map(|k| {
                let stop = &stop;
                let body = batch_body(if k % 2 == 0 { "east" } else { "west" });
                scope.spawn(move || {
                    let mut tally = ClientTally {
                        requests: 0,
                        injects: 0,
                        failures: 0,
                        latencies_ms: Vec::with_capacity(4096),
                    };
                    let mut client = Client::connect(addr).ok();
                    while !stop.load(Ordering::Relaxed) {
                        if client.as_ref().is_none_or(|c| c.closed) {
                            client = Client::connect(addr).ok();
                            if client.is_none() {
                                continue;
                            }
                        }
                        let t0 = Instant::now();
                        let status = client.as_mut().expect("reconnected above").request(
                            "POST",
                            "/requests",
                            &body,
                        );
                        let ms = t0.elapsed().as_secs_f64() * 1_000.0;
                        tally.requests += 1;
                        match status {
                            Ok((200, _)) => {
                                tally.injects += BATCH as u64;
                                tally.latencies_ms.push(ms);
                            }
                            // 409: the replay finalized under us — the
                            // trace is done, so this client's work is too.
                            Ok((409, _)) => break,
                            Ok(_) | Err(_) => {
                                tally.failures += 1;
                                client = Client::connect(addr).ok();
                            }
                        }
                    }
                    tally
                })
            })
            .collect();
        // Stop the clients once the replay completes or the window plus
        // slack elapses, whichever comes first.
        let deadline = started + duration + Duration::from_secs(30);
        let mut poll = Client::connect(addr).ok();
        loop {
            std::thread::sleep(Duration::from_millis(25));
            if Instant::now() >= deadline {
                break;
            }
            if poll.as_ref().is_none_or(|c| c.closed) {
                poll = Client::connect(addr).ok();
            }
            match poll.as_mut().map(|c| c.request("GET", "/status", "")) {
                Some(Ok((200, body))) if body.contains("\"state\":\"completed\"") => break,
                Some(Ok(_)) => {}
                _ => poll = Client::connect(addr).ok(),
            }
        }
        stop.store(true, Ordering::Relaxed);
        inject_handles
            .into_iter()
            .map(|h| h.join().expect("inject client panicked"))
            .collect::<Vec<ClientTally>>()
    });
    let elapsed = started.elapsed().as_secs_f64();

    // Post-mortem scrape before the drain: the fleet economics document.
    let mut post = Client::connect(addr).expect("post-mortem connect");
    let (code, fleet_body) = post.request("GET", "/fleet", "").expect("GET /fleet");
    assert_eq!(code, 200, "{mode}: /fleet failed: {fleet_body}");
    let fleet_doc: Content = serde_json::from_str(&fleet_body).expect("parse /fleet");
    let rollup = fleet_doc.field("fleet").expect("fleet roll-up");
    let borrows = rollup
        .field("borrows")
        .and_then(Content::as_u64)
        .expect("fleet.borrows");
    let fleet_cogs_dollars = rollup
        .field("cogs_dollars")
        .and_then(Content::as_f64)
        .expect("fleet.cogs_dollars");

    daemon.request_shutdown();
    let outcome = daemon.join();
    ip_obs::set_enabled(false);

    let mut latencies: Vec<f64> = tallies
        .iter()
        .flat_map(|t| t.latencies_ms.clone())
        .collect();
    latencies.sort_by(|a, b| a.partial_cmp(b).unwrap());
    let injects: u64 = tallies.iter().map(|t| t.injects).sum();
    assert_eq!(
        outcome.injected, injects,
        "{mode}: daemon-side inject count must match client-side"
    );
    ModeResult {
        mode,
        requests: tallies.iter().map(|t| t.requests).sum(),
        injects,
        failures: tallies.iter().map(|t| t.failures).sum(),
        duration_secs: elapsed,
        p50_ms: percentile(&latencies, 0.50),
        p99_ms: percentile(&latencies, 0.99),
        borrows,
        fleet_cogs_dollars,
    }
}

fn quality_json(q: &Quality) -> String {
    format!(
        "{{\"requests\": {}, \"hit_rate\": {:.6}, \"mean_wait_secs\": {:.3}, \"cogs_dollars\": {:.4}, \"borrows\": {}}}",
        q.requests, q.hit_rate, q.mean_wait_secs, q.cogs_dollars, q.borrows
    )
}

fn write_json(
    isolated_q: &Quality,
    borrowing_q: &Quality,
    results: &[ModeResult],
    duration_secs: f64,
    inject_ratio: f64,
) {
    let avail = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    let mut body = String::from("{\n");
    body.push_str("  \"artifact\": \"BENCH_pr10\",\n");
    body.push_str(
        "  \"description\": \"cross-pool borrowing: the same 3-pool fleet at the same budget under the composed diurnal-ramp+flash-crowd scenario, isolated vs wired into one cluster by a permissive compatibility matrix; offline fleet economics plus keep-alive batch-inject throughput against the live daemon\",\n",
    );
    body.push_str(&format!("  \"available_parallelism\": {avail},\n"));
    body.push_str(
        "  \"caveat\": \"bench host has 1 CPU (ROADMAP standing constraint): clients, workers, and the controller share one core, so absolute rates are conservative; the borrowing/isolated ratios are the signal\",\n",
    );
    body.push_str(&format!(
        "  \"config\": {{\"workers\": {WORKERS}, \"clients\": {CLIENTS}, \"batch\": {BATCH}, \"serve_trace_intervals\": {TRACE_LEN}, \"quality_trace_intervals\": {QUALITY_LEN}, \"scenario\": \"{SCENARIO}\", \"scenario_seed\": {SCENARIO_SEED}, \"edge_latency_secs\": {EDGE_LATENCY}, \"duration_secs\": {duration_secs}}},\n"
    ));
    body.push_str("  \"offline_quality\": {\n");
    body.push_str(&format!(
        "    \"isolated\": {},\n",
        quality_json(isolated_q)
    ));
    body.push_str(&format!(
        "    \"borrowing\": {},\n",
        quality_json(borrowing_q)
    ));
    body.push_str(&format!(
        "    \"strictly_better\": {}\n  }},\n",
        borrowing_q.hit_rate > isolated_q.hit_rate
            && borrowing_q.mean_wait_secs < isolated_q.mean_wait_secs
    ));
    body.push_str(&format!(
        "  \"borrowing_injects_per_sec_over_isolated\": {inject_ratio:.3},\n"
    ));
    body.push_str("  \"regression_budget\": \"borrowing inject throughput >= 0.95x isolated\",\n");
    body.push_str("  \"measurements\": [\n");
    for (i, r) in results.iter().enumerate() {
        body.push_str(&format!(
            "    {{\"mode\": \"{}\", \"requests\": {}, \"injects\": {}, \"failures\": {}, \"requests_per_sec\": {:.1}, \"injects_per_sec\": {:.1}, \"p50_ms\": {:.3}, \"p99_ms\": {:.3}, \"borrows\": {}, \"fleet_cogs_dollars\": {:.4}}}{}\n",
            r.mode,
            r.requests,
            r.injects,
            r.failures,
            r.requests_per_sec(),
            r.injects_per_sec(),
            r.p50_ms,
            r.p99_ms,
            r.borrows,
            r.fleet_cogs_dollars,
            if i + 1 < results.len() { "," } else { "" },
        ));
    }
    body.push_str("  ]\n}\n");
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_pr10.json");
    std::fs::write(path, body).expect("write BENCH_pr10.json");
    println!("\nwrote {path}");
}

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");
    let duration_secs: f64 = std::env::var("IP_BENCH_PR10_SECS")
        .ok()
        .and_then(|v| v.parse::<f64>().ok())
        .unwrap_or(if smoke { 0.5 } else { 3.0 })
        .max(0.1);
    let duration = Duration::from_secs_f64(duration_secs);

    // Phase 1: deterministic offline economics at equal budget.
    let isolated_q = offline_quality(false);
    let borrowing_q = offline_quality(true);
    println!("offline fleet economics ({SCENARIO}, seed {SCENARIO_SEED}, equal budget):");
    let quality_rows = vec![
        vec![
            "isolated".to_string(),
            format!("{:.4}", isolated_q.hit_rate),
            format!("{:.2}", isolated_q.mean_wait_secs),
            format!("{:.4}", isolated_q.cogs_dollars),
            isolated_q.borrows.to_string(),
        ],
        vec![
            "borrowing".to_string(),
            format!("{:.4}", borrowing_q.hit_rate),
            format!("{:.2}", borrowing_q.mean_wait_secs),
            format!("{:.4}", borrowing_q.cogs_dollars),
            borrowing_q.borrows.to_string(),
        ],
    ];
    ip_bench::print_table(
        &["mode", "hit_rate", "mean_wait_s", "cogs_$", "borrows"],
        &quality_rows,
    );
    assert!(
        borrowing_q.borrows > 0,
        "the permissive matrix must resolve borrows under the spike scenario"
    );
    assert!(
        borrowing_q.hit_rate > isolated_q.hit_rate,
        "borrowing must beat isolation on hit rate at equal budget ({:.4} vs {:.4})",
        borrowing_q.hit_rate,
        isolated_q.hit_rate
    );
    assert!(
        borrowing_q.mean_wait_secs < isolated_q.mean_wait_secs,
        "borrowing must beat isolation on mean wait at equal budget ({:.2} vs {:.2})",
        borrowing_q.mean_wait_secs,
        isolated_q.mean_wait_secs
    );

    // Phase 2: control-plane throughput with the matrix off vs on.
    println!(
        "\nserve throughput: {CLIENTS} clients x {duration_secs}s per mode, {WORKERS} workers\n"
    );
    let results = vec![
        run_mode("isolated", false, duration),
        run_mode("borrowing", true, duration),
    ];
    let rows: Vec<Vec<String>> = results
        .iter()
        .map(|r| {
            vec![
                r.mode.to_string(),
                format!("{:.1}", r.requests_per_sec()),
                format!("{:.1}", r.injects_per_sec()),
                format!("{:.3}", r.p50_ms),
                format!("{:.3}", r.p99_ms),
                r.failures.to_string(),
                r.borrows.to_string(),
                format!("{:.4}", r.fleet_cogs_dollars),
            ]
        })
        .collect();
    ip_bench::print_table(
        &[
            "mode",
            "req_per_s",
            "inj_per_s",
            "p50_ms",
            "p99_ms",
            "failures",
            "borrows",
            "cogs_$",
        ],
        &rows,
    );

    let isolated = &results[0];
    let borrowing = &results[1];
    let ratio = borrowing.injects_per_sec() / isolated.injects_per_sec().max(1e-9);
    println!("\nborrowing vs isolated: {ratio:.3}x injects/sec (budget: >= 0.95x)");

    if smoke {
        let mut ok = true;
        for r in &results {
            if r.injects == 0 {
                eprintln!("SMOKE FAIL: mode {} injected nothing", r.mode);
                ok = false;
            }
            if r.failures > 0 {
                eprintln!(
                    "SMOKE FAIL: mode {} had {} failed requests",
                    r.mode, r.failures
                );
                ok = false;
            }
        }
        if borrowing.borrows == 0 {
            eprintln!("SMOKE FAIL: borrowing mode resolved no borrows");
            ok = false;
        }
        if isolated.borrows != 0 {
            eprintln!("SMOKE FAIL: isolated mode reported borrows");
            ok = false;
        }
        if !ok {
            std::process::exit(1);
        }
        println!("smoke ok: both modes injected with zero failures; borrowing borrowed");
        return;
    }

    write_json(&isolated_q, &borrowing_q, &results, duration_secs, ratio);
}
