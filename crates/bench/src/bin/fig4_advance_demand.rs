//! Fig. 4: "the pool size increases 5 minutes before the start of every
//! hour … The optimization proactively prepares for this surge."
//!
//! Protocol: a workload with scheduled jobs at the top of each hour is fed
//! to the SAA optimizer; the output pool size around each hour boundary is
//! printed, showing the rise *before* the surge (by ~τ).
//!
//! `cargo run --release -p ip-bench --bin fig4_advance_demand`

use ip_bench::print_table;
use ip_saa::{optimize_dp, SaaConfig};
use ip_workload::{DemandModel, HourlySpikes, WeeklyProfile};

fn main() {
    let model = DemandModel {
        days: 1,
        interval_secs: 30,
        base_rate: 0.5,
        diurnal_amplitude: 0.0,
        weekly: WeeklyProfile::flat(),
        hourly_spikes: Some(HourlySpikes {
            magnitude: 25.0,
            duration_secs: 120,
            hours: vec![], // every hour, like the 6AM/7AM schedules of §7.1
        }),
        sporadic_spikes: None,
        poisson_noise: true,
        seed: 4,
    };
    let demand = model.generate();
    let config = SaaConfig {
        tau_intervals: 10, // 5 minutes of creation latency, matching the figure's lead
        stableness: 10,    // 5-minute blocks
        min_pool: 0,
        max_pool: 500,
        max_new_per_block: 500,
        alpha_prime: 0.3,
    };
    let opt = optimize_dp(&demand, &config).expect("DP solve");

    // Show the window around three representative hours: minute offsets
    // −15 … +10 relative to the top of the hour.
    let per_hour = 120usize;
    println!("Fig. 4: optimal pool size around top-of-hour demand surges");
    println!("(tau = 5 min; demand spikes for the first 2 min of each hour)\n");
    let mut rows = Vec::new();
    for minute_offset in (-15i64..=10).step_by(5) {
        let mut row = vec![format!("{:+} min", minute_offset)];
        for hour in [6usize, 12, 18] {
            let t = (hour * per_hour) as i64 + minute_offset * 2; // 2 intervals/min
            let t = t.clamp(0, (demand.len() - 1) as i64) as usize;
            row.push(format!("{:.0}", opt.schedule[t]));
        }
        // Demand at that offset (averaged across the three hours).
        let avg_demand: f64 = [6usize, 12, 18]
            .iter()
            .map(|h| {
                let t = ((h * per_hour) as i64 + minute_offset * 2)
                    .clamp(0, (demand.len() - 1) as i64) as usize;
                demand.get(t)
            })
            .sum::<f64>()
            / 3.0;
        row.push(format!("{avg_demand:.1}"));
        rows.push(row);
    }
    print_table(
        &[
            "offset",
            "pool @6:00",
            "pool @12:00",
            "pool @18:00",
            "avg demand",
        ],
        &rows,
    );

    // Quantify the anticipation across all 23 interior hours.
    let mut anticipated = 0;
    for k in 1..24 {
        let surge = k * per_hour;
        let before = opt.schedule[surge - config.tau_intervals];
        let quiet = opt.schedule[surge - per_hour / 2];
        if before > quiet {
            anticipated += 1;
        }
    }
    println!("\npool size rose ahead of the surge in {anticipated}/23 hours");
    println!("(the paper observes the rise at :55 for 6:00/7:00/... scheduled jobs)");
}
