//! Before/after bench for the deep-forecaster training rewrite: shared f32
//! GEMM kernels, im2col conv1d, arena-reused graph buffers, and the
//! deterministic data-parallel trainer.
//!
//! Drives the Fig. 6 workload (EastUs2Small demand, sliding-window training
//! of the deep models) in two configurations:
//!
//! * **before**: `IP_NN_NAIVE=1` — reference matmul/conv kernels, buffer
//!   pool disabled — on one thread; this is the pre-rewrite arithmetic path.
//! * **after**: the GEMM/im2col/arena kernels, on 1 thread (isolating the
//!   kernel + allocation wins) and on 2/4 worker threads (the data-parallel
//!   trainer; on a single-core host these rows measure overhead only — the
//!   trained parameters stay bit-identical by construction either way).
//!
//! `cargo run --release -p ip-bench --bin bench_pr2`
//!
//! Writes the machine-readable artifact `BENCH_pr2.json` at the workspace
//! root, recording `available_parallelism` of the measuring host.

use ip_bench::print_table;
use ip_models::deep::DeepConfig;
use ip_models::inception::{InceptionConfig, InceptionTime};
use ip_models::mwdn::Mwdn;
use ip_models::tst::{Tst, TstConfig};
use ip_models::Forecaster;
use ip_timeseries::TimeSeries;
use ip_workload::{preset, PresetId};

const INTERVALS: usize = 2880; // one day of 30 s intervals
const MODELS: [&str; 3] = ["mWDN", "IncpT", "TST"];

fn demand() -> TimeSeries {
    let mut model = preset(PresetId::EastUs2Small, 8);
    model.days = 2;
    let full = model.generate();
    TimeSeries::new(full.interval_secs(), full.values()[..INTERVALS].to_vec()).expect("series")
}

fn env_usize(key: &str, default: usize) -> usize {
    std::env::var(key)
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
        .max(1)
}

fn deep_config(threads: usize) -> DeepConfig {
    DeepConfig {
        window: env_usize("IP_BENCH_WINDOW", 96),
        horizon: env_usize("IP_BENCH_HORIZON", 48),
        epochs: 2,
        batch_size: env_usize("IP_BENCH_BATCH", 32),
        microbatch: env_usize("IP_BENCH_MICRO", 8),
        stride: 4,
        patience: 3,
        threads: Some(threads),
        ..Default::default()
    }
}

fn build(name: &str, threads: usize) -> Box<dyn Forecaster> {
    let cfg = deep_config(threads);
    match name {
        "mWDN" => Box::new(Mwdn::model(cfg, 3, 32)),
        // The original InceptionTime scale ({9,19,39} × 32 filters, depth 3)
        // rather than the repo's laptop scale-down: Fig. 6 measures the
        // cited architectures, and the conv/GEMM work is the point here.
        "IncpT" => Box::new(InceptionTime::model(
            cfg,
            InceptionConfig {
                kernels: vec![9, 19, 39],
                filters: 32,
                depth: 3,
                bottleneck: 32,
            },
        )),
        "TST" => Box::new(Tst::model(cfg, TstConfig::default())),
        other => panic!("unknown model {other}"),
    }
}

/// Median fit time over `samples` freshly built models (the naive/kernel
/// mode is latched per graph at construction, so each sample rebuilds).
fn median_fit_secs(samples: usize, name: &str, threads: usize, train: &TimeSeries) -> f64 {
    let mut times: Vec<f64> = (0..samples)
        .map(|_| {
            let mut m = build(name, threads);
            m.fit(train).expect("fit").fit_time.as_secs_f64()
        })
        .collect();
    times.sort_by(|a, b| a.partial_cmp(b).unwrap());
    times[times.len() / 2]
}

struct Record {
    model: &'static str,
    variant: &'static str,
    threads: usize,
    median_secs: f64,
    speedup_vs_naive: Option<f64>,
}

fn write_json(records: &[Record], samples: usize) {
    let avail = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    let mut body = String::from("{\n");
    body.push_str("  \"artifact\": \"BENCH_pr2\",\n");
    body.push_str(
        "  \"description\": \"deep-forecaster training before/after: shared f32 GEMM + im2col conv1d + arena buffer reuse, plus data-parallel worker scaling\",\n",
    );
    body.push_str(&format!("  \"available_parallelism\": {avail},\n"));
    body.push_str(&format!("  \"samples_per_measurement\": {samples},\n"));
    body.push_str(&format!(
        "  \"workload\": {{\"intervals\": {INTERVALS}, \"window\": 96, \"horizon\": 48, \"epochs\": 2, \"batch_size\": 32, \"stride\": 4}},\n",
    ));
    body.push_str("  \"measurements\": [\n");
    for (i, r) in records.iter().enumerate() {
        let speedup = r
            .speedup_vs_naive
            .map(|s| format!("{s:.3}"))
            .unwrap_or_else(|| "null".to_string());
        body.push_str(&format!(
            "    {{\"model\": \"{}\", \"variant\": \"{}\", \"threads\": {}, \"median_secs\": {:.6e}, \"per_sec\": {:.3}, \"speedup_vs_naive\": {}}}{}\n",
            r.model,
            r.variant,
            r.threads,
            r.median_secs,
            1.0 / r.median_secs,
            speedup,
            if i + 1 < records.len() { "," } else { "" },
        ));
    }
    body.push_str("  ]\n}\n");
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_pr2.json");
    std::fs::write(path, body).expect("write BENCH_pr2.json");
    println!("\nwrote {path}");
}

fn main() {
    let _span = ip_obs::span("bench.bench_pr2");
    let samples: usize = std::env::var("IP_BENCH_SAMPLES")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(3)
        .max(1);
    let train = demand();
    let mut records: Vec<Record> = Vec::new();

    println!("deep-forecaster training time, {INTERVALS} intervals, median of {samples}\n");
    for name in MODELS {
        // Before: reference kernels, no buffer pool, one thread.
        std::env::set_var("IP_NN_NAIVE", "1");
        let before = median_fit_secs(samples, name, 1, &train);
        std::env::remove_var("IP_NN_NAIVE");
        records.push(Record {
            model: name,
            variant: "before_naive",
            threads: 1,
            median_secs: before,
            speedup_vs_naive: None,
        });
        // After: GEMM/im2col/arena kernels at 1 worker, then worker scaling.
        for threads in [1usize, 2, 4] {
            let secs = median_fit_secs(samples, name, threads, &train);
            records.push(Record {
                model: name,
                variant: "after_kernels",
                threads,
                median_secs: secs,
                speedup_vs_naive: Some(before / secs),
            });
        }
    }

    let rows: Vec<Vec<String>> = records
        .iter()
        .map(|r| {
            vec![
                r.model.to_string(),
                r.variant.to_string(),
                r.threads.to_string(),
                format!("{:.3}", r.median_secs),
                r.speedup_vs_naive
                    .map(|s| format!("{s:.2}x"))
                    .unwrap_or_else(|| "-".to_string()),
            ]
        })
        .collect();
    print_table(
        &["model", "variant", "threads", "median_s", "vs_naive"],
        &rows,
    );
    write_json(&records, samples);
}
