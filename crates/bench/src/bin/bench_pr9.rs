//! Chaos-resilience bench (PR 9): the keep-alive batch-inject load from
//! `bench_pr8`, replayed against a two-pool fleet daemon while a catalog
//! scenario's demand transform **and** fault schedule run, versus the
//! same fleet with no chaos.
//!
//! Each mode boots a fresh daemon whose replay spans the whole measurement
//! window (speedup sized so the trace finishes just as the clients stop),
//! so every scheduled fault actually fires mid-load. Recorded per mode:
//! control-plane throughput and latency under load, the number of faults
//! injected, and the end-of-run SLO state (worst severity and the peak
//! short-window burn rate across pools) scraped from `/slo`.
//!
//! `cargo run --release -p ip-bench --bin bench_pr9`
//!
//! Writes `BENCH_pr9.json` at the workspace root. The bench host has
//! 1 CPU (ROADMAP standing constraint): clients, workers, and the
//! controller share one core, so absolute rates are conservative and the
//! chaos/baseline ratio is the signal. Run with `--smoke` for a short run
//! asserting nonzero injects, zero failures, and that the chaos mode
//! really injected faults, without touching the artifact.

use ip_chaos::ScenarioSpec;
use ip_serve::{Daemon, PoolServeConfig, ServeConfig};
use ip_sim::{FaultEntry, SimConfig};
use ip_timeseries::TimeSeries;
use serde::Content;
use std::io::{ErrorKind, Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::time::{Duration, Instant};

/// Injection entries per `POST /requests`.
const BATCH: usize = 16;
/// Closed-loop inject clients per mode.
const CLIENTS: usize = 2;
/// HTTP worker threads (= queue shards) for every mode.
const WORKERS: usize = 4;
/// Intervals per pool trace (30 s each → 2880 logical seconds).
const TRACE_LEN: usize = 96;

struct ModeResult {
    mode: &'static str,
    requests: u64,
    injects: u64,
    failures: u64,
    duration_secs: f64,
    p50_ms: f64,
    p99_ms: f64,
    faults_injected: u64,
    worst_severity: String,
    peak_short_burn: f64,
}

impl ModeResult {
    fn injects_per_sec(&self) -> f64 {
        self.injects as f64 / self.duration_secs
    }

    fn requests_per_sec(&self) -> f64 {
        self.requests as f64 / self.duration_secs
    }
}

/// A keep-alive HTTP/1.1 client over one socket; responses framed by
/// `Content-Length`.
struct Client {
    stream: TcpStream,
    buf: Vec<u8>,
    closed: bool,
}

impl Client {
    fn connect(addr: SocketAddr) -> std::io::Result<Self> {
        let stream = TcpStream::connect(addr)?;
        stream.set_read_timeout(Some(Duration::from_secs(10)))?;
        stream.set_nodelay(true)?;
        Ok(Self {
            stream,
            buf: Vec::with_capacity(4096),
            closed: false,
        })
    }

    /// Sends one request and reads one framed response; returns the
    /// status code and body.
    fn request(&mut self, method: &str, path: &str, body: &str) -> std::io::Result<(u16, String)> {
        let request = format!(
            "{method} {path} HTTP/1.1\r\nHost: bench\r\nContent-Length: {}\r\n\r\n{body}",
            body.len()
        );
        self.stream.write_all(request.as_bytes())?;
        let mut chunk = [0u8; 4096];
        let head_end = loop {
            if let Some(pos) = self.buf.windows(4).position(|w| w == b"\r\n\r\n") {
                break pos;
            }
            match self.stream.read(&mut chunk) {
                Ok(0) => {
                    return Err(std::io::Error::new(
                        ErrorKind::UnexpectedEof,
                        "closed mid-head",
                    ))
                }
                Ok(n) => self.buf.extend_from_slice(&chunk[..n]),
                Err(e) if e.kind() == ErrorKind::Interrupted => continue,
                Err(e) => return Err(e),
            }
        };
        let head = String::from_utf8_lossy(&self.buf[..head_end]).to_string();
        let status: u16 = head
            .split_whitespace()
            .nth(1)
            .and_then(|s| s.parse().ok())
            .ok_or_else(|| std::io::Error::new(ErrorKind::InvalidData, "bad status line"))?;
        self.closed = head.lines().any(|line| {
            line.split_once(':').is_some_and(|(key, value)| {
                key.trim().eq_ignore_ascii_case("connection")
                    && value.trim().eq_ignore_ascii_case("close")
            })
        });
        let content_length: usize = head
            .lines()
            .find_map(|line| {
                let (key, value) = line.split_once(':')?;
                if key.trim().eq_ignore_ascii_case("content-length") {
                    value.trim().parse().ok()
                } else {
                    None
                }
            })
            .ok_or_else(|| std::io::Error::new(ErrorKind::InvalidData, "no Content-Length"))?;
        let body_start = head_end + 4;
        while self.buf.len() < body_start + content_length {
            match self.stream.read(&mut chunk) {
                Ok(0) => {
                    return Err(std::io::Error::new(
                        ErrorKind::UnexpectedEof,
                        "closed mid-body",
                    ))
                }
                Ok(n) => self.buf.extend_from_slice(&chunk[..n]),
                Err(e) if e.kind() == ErrorKind::Interrupted => continue,
                Err(e) => return Err(e),
            }
        }
        let payload = String::from_utf8_lossy(&self.buf[body_start..body_start + content_length])
            .into_owned();
        self.buf.drain(..body_start + content_length);
        Ok((status, payload))
    }
}

struct ClientTally {
    requests: u64,
    injects: u64,
    failures: u64,
    latencies_ms: Vec<f64>,
}

fn percentile(sorted: &[f64], p: f64) -> f64 {
    if sorted.is_empty() {
        return 0.0;
    }
    let idx = ((sorted.len() as f64 - 1.0) * p).round() as usize;
    sorted[idx.min(sorted.len() - 1)]
}

/// A batch aimed at early intervals of one pool, so injects stay behind
/// the advancing replay frontier as long as possible.
fn batch_body(pool: &str) -> String {
    let entry = format!("{{\"count\":1,\"pool\":\"{pool}\"}}");
    let entries: Vec<String> = std::iter::repeat_n(entry, BATCH).collect();
    format!("[{}]", entries.join(","))
}

/// A deterministic bursty trace (no process RNG).
fn demand(seed: u64) -> TimeSeries {
    let values = (0..TRACE_LEN)
        .map(|i| {
            let x = (i as u64).wrapping_mul(2654435761).wrapping_add(seed * 131);
            f64::from((x % 5) as u32) + 1.0
        })
        .collect();
    TimeSeries::new(30, values).unwrap()
}

/// The fleet for one mode: the plain two-pool traces, or the same traces
/// pushed through `scenario` (with its fault schedule attached).
fn fleet_pools(scenario: Option<&str>) -> (Vec<PoolServeConfig>, usize) {
    let raw = vec![
        ("east".to_string(), demand(3)),
        ("west".to_string(), demand(8)),
    ];
    let (planned, fault_count): (Vec<(String, TimeSeries, Vec<FaultEntry>)>, usize) = match scenario
    {
        Some(name) => {
            let plan = ScenarioSpec::by_name(name, 42)
                .and_then(ScenarioSpec::compile)
                .and_then(|s| s.apply(raw))
                .expect("catalog scenario applies");
            let count = plan.fault_count();
            let pools = plan
                .demand
                .iter()
                .map(|(id, d)| (id.clone(), d.clone(), plan.faults_for(id).to_vec()))
                .collect();
            (pools, count)
        }
        None => (
            raw.into_iter().map(|(id, d)| (id, d, Vec::new())).collect(),
            0,
        ),
    };
    let pools = planned
        .into_iter()
        .map(|(id, d, faults)| {
            let mut p = PoolServeConfig::named(id, d);
            p.sim = SimConfig {
                default_pool_target: 2,
                tau_jitter_secs: 0,
                seed: 7,
                faults,
                ..Default::default()
            };
            p
        })
        .collect();
    (pools, fault_count)
}

/// Walks the `/slo` document for the worst pool severity and the largest
/// short-window burn rate across both objectives of every pool.
fn slo_summary(doc: &Content) -> (String, f64) {
    let rank = |s: &str| match s {
        "page" => 2,
        "warning" => 1,
        _ => 0,
    };
    let mut worst = "ok".to_string();
    let mut peak = 0.0f64;
    if let Some(Content::Seq(pools)) = doc.field("pools") {
        for p in pools {
            if let Some(Content::Str(s)) = p.field("severity") {
                if rank(s) > rank(&worst) {
                    worst = s.clone();
                }
            }
            for objective in ["hit", "wait"] {
                if let Some(burn) = p
                    .field(objective)
                    .and_then(|o| o.field("short"))
                    .and_then(|w| w.field("burn_rate"))
                    .and_then(Content::as_f64)
                {
                    peak = peak.max(burn);
                }
            }
        }
    }
    (worst, peak)
}

/// Runs one mode: boots a fleet daemon whose replay spans `duration`,
/// hammers it with batch-inject clients until the trace completes, then
/// scrapes the SLO and fault post-mortem before draining.
fn run_mode(mode: &'static str, scenario: Option<&str>, duration: Duration) -> ModeResult {
    ip_obs::set_enabled(true);
    ip_obs::reset();
    ip_obs::flight::reset();

    let (pools, expected_faults) = fleet_pools(scenario);
    let logical_span = pools
        .iter()
        .map(|p| p.demand.duration_secs())
        .max()
        .unwrap_or(1) as f64;
    let mut config = ServeConfig::fleet(pools).expect("fleet config");
    // The replay finishes right as the measurement window closes, so the
    // whole fault schedule fires under load.
    config.speedup = logical_span / duration.as_secs_f64();
    config.workers = WORKERS;
    config.keep_alive = true;
    let daemon = Daemon::start(config).expect("daemon starts");
    let addr = daemon.addr();

    let stop = AtomicBool::new(false);
    let started = Instant::now();
    let tallies = std::thread::scope(|scope| {
        let inject_handles: Vec<_> = (0..CLIENTS)
            .map(|k| {
                let stop = &stop;
                let body = batch_body(if k % 2 == 0 { "east" } else { "west" });
                scope.spawn(move || {
                    let mut tally = ClientTally {
                        requests: 0,
                        injects: 0,
                        failures: 0,
                        latencies_ms: Vec::with_capacity(4096),
                    };
                    let mut client = Client::connect(addr).ok();
                    while !stop.load(Ordering::Relaxed) {
                        if client.as_ref().is_none_or(|c| c.closed) {
                            client = Client::connect(addr).ok();
                            if client.is_none() {
                                continue;
                            }
                        }
                        let t0 = Instant::now();
                        let status = client.as_mut().expect("reconnected above").request(
                            "POST",
                            "/requests",
                            &body,
                        );
                        let ms = t0.elapsed().as_secs_f64() * 1_000.0;
                        tally.requests += 1;
                        match status {
                            Ok((200, _)) => {
                                tally.injects += BATCH as u64;
                                tally.latencies_ms.push(ms);
                            }
                            // 409: the replay finalized under us — the
                            // trace is done, so this client's work is too.
                            Ok((409, _)) => break,
                            Ok(_) | Err(_) => {
                                tally.failures += 1;
                                client = Client::connect(addr).ok();
                            }
                        }
                    }
                    tally
                })
            })
            .collect();
        // Stop the clients once the replay completes (all faults fired) or
        // the window plus slack elapses, whichever comes first.
        let deadline = started + duration + Duration::from_secs(30);
        let mut poll = Client::connect(addr).ok();
        loop {
            std::thread::sleep(Duration::from_millis(25));
            if Instant::now() >= deadline {
                break;
            }
            if poll.as_ref().is_none_or(|c| c.closed) {
                poll = Client::connect(addr).ok();
            }
            match poll.as_mut().map(|c| c.request("GET", "/status", "")) {
                Some(Ok((200, body))) if body.contains("\"state\":\"completed\"") => break,
                Some(Ok(_)) => {}
                _ => poll = Client::connect(addr).ok(),
            }
        }
        stop.store(true, Ordering::Relaxed);
        inject_handles
            .into_iter()
            .map(|h| h.join().expect("inject client panicked"))
            .collect::<Vec<ClientTally>>()
    });
    let elapsed = started.elapsed().as_secs_f64();

    // Post-mortem scrapes before the drain: SLO state + injected faults.
    let mut post = Client::connect(addr).expect("post-mortem connect");
    let (code, slo_body) = post.request("GET", "/slo", "").expect("GET /slo");
    assert_eq!(code, 200, "{mode}: /slo failed: {slo_body}");
    let slo_doc: Content = serde_json::from_str(&slo_body).expect("parse /slo");
    let (worst_severity, peak_short_burn) = slo_summary(&slo_doc);
    let (code, flight_body) = post
        .request("GET", "/debug/flight", "")
        .expect("GET /debug/flight");
    assert_eq!(code, 200, "{mode}: /debug/flight failed");
    let flight: Content = serde_json::from_str(&flight_body).expect("parse flight dump");
    let faults_injected = flight
        .field("sections")
        .and_then(|s| s.field("faults"))
        .and_then(|f| f.field("total"))
        .and_then(Content::as_u64)
        .expect("flight dump carries a faults section");
    assert_eq!(
        faults_injected, expected_faults as u64,
        "{mode}: every scheduled fault must have fired before completion"
    );

    daemon.request_shutdown();
    let outcome = daemon.join();
    ip_obs::set_enabled(false);

    let mut latencies: Vec<f64> = tallies
        .iter()
        .flat_map(|t| t.latencies_ms.clone())
        .collect();
    latencies.sort_by(|a, b| a.partial_cmp(b).unwrap());
    let injects: u64 = tallies.iter().map(|t| t.injects).sum();
    assert_eq!(
        outcome.injected, injects,
        "{mode}: daemon-side inject count must match client-side"
    );
    ModeResult {
        mode,
        requests: tallies.iter().map(|t| t.requests).sum(),
        injects,
        failures: tallies.iter().map(|t| t.failures).sum(),
        duration_secs: elapsed,
        p50_ms: percentile(&latencies, 0.50),
        p99_ms: percentile(&latencies, 0.99),
        faults_injected,
        worst_severity,
        peak_short_burn,
    }
}

fn write_json(results: &[ModeResult], duration_secs: f64, chaos_over_baseline: f64) {
    let avail = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    let mut body = String::from("{\n");
    body.push_str("  \"artifact\": \"BENCH_pr9\",\n");
    body.push_str(
        "  \"description\": \"chaos resilience: keep-alive 16-entry-batch POST /requests load against a two-pool fleet daemon while a catalog scenario's demand transform and fault schedule replay, vs the same fleet with no chaos\",\n",
    );
    body.push_str(&format!("  \"available_parallelism\": {avail},\n"));
    body.push_str(
        "  \"caveat\": \"bench host has 1 CPU (ROADMAP standing constraint): clients, workers, and the controller share one core, so absolute rates are conservative; the chaos/baseline ratio is the signal\",\n",
    );
    body.push_str(&format!(
        "  \"config\": {{\"workers\": {WORKERS}, \"clients\": {CLIENTS}, \"batch\": {BATCH}, \"trace_intervals\": {TRACE_LEN}, \"duration_secs\": {duration_secs}}},\n"
    ));
    body.push_str(&format!(
        "  \"worst_chaos_injects_per_sec_over_baseline\": {chaos_over_baseline:.3},\n"
    ));
    body.push_str("  \"measurements\": [\n");
    for (i, r) in results.iter().enumerate() {
        body.push_str(&format!(
            "    {{\"mode\": \"{}\", \"requests\": {}, \"injects\": {}, \"failures\": {}, \"requests_per_sec\": {:.1}, \"injects_per_sec\": {:.1}, \"p50_ms\": {:.3}, \"p99_ms\": {:.3}, \"faults_injected\": {}, \"worst_severity\": \"{}\", \"peak_short_burn\": {:.3}}}{}\n",
            r.mode,
            r.requests,
            r.injects,
            r.failures,
            r.requests_per_sec(),
            r.injects_per_sec(),
            r.p50_ms,
            r.p99_ms,
            r.faults_injected,
            r.worst_severity,
            r.peak_short_burn,
            if i + 1 < results.len() { "," } else { "" },
        ));
    }
    body.push_str("  ]\n}\n");
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_pr9.json");
    std::fs::write(path, body).expect("write BENCH_pr9.json");
    println!("\nwrote {path}");
}

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");
    let duration_secs: f64 = std::env::var("IP_BENCH_PR9_SECS")
        .ok()
        .and_then(|v| v.parse::<f64>().ok())
        .unwrap_or(if smoke { 0.5 } else { 3.0 })
        .max(0.1);
    let duration = Duration::from_secs_f64(duration_secs);

    let modes: &[(&'static str, Option<&'static str>)] = if smoke {
        &[("baseline", None), ("flash-crowd", Some("flash-crowd"))]
    } else {
        &[
            ("baseline", None),
            ("flash-crowd", Some("flash-crowd")),
            ("regional-failover", Some("regional-failover")),
            ("flapping-demand", Some("flapping-demand")),
        ]
    };
    println!(
        "chaos resilience: {CLIENTS} clients x {duration_secs}s per mode, {WORKERS} workers\n"
    );
    let results: Vec<ModeResult> = modes
        .iter()
        .map(|(m, s)| run_mode(m, *s, duration))
        .collect();

    let rows: Vec<Vec<String>> = results
        .iter()
        .map(|r| {
            vec![
                r.mode.to_string(),
                format!("{:.1}", r.requests_per_sec()),
                format!("{:.1}", r.injects_per_sec()),
                format!("{:.3}", r.p50_ms),
                format!("{:.3}", r.p99_ms),
                r.failures.to_string(),
                r.faults_injected.to_string(),
                r.worst_severity.clone(),
                format!("{:.3}", r.peak_short_burn),
            ]
        })
        .collect();
    ip_bench::print_table(
        &[
            "mode",
            "req_per_s",
            "inj_per_s",
            "p50_ms",
            "p99_ms",
            "failures",
            "faults",
            "worst_slo",
            "burn_short",
        ],
        &rows,
    );

    let baseline = results
        .iter()
        .find(|r| r.mode == "baseline")
        .expect("baseline ran");
    let worst_chaos = results
        .iter()
        .filter(|r| r.mode != "baseline")
        .map(ModeResult::injects_per_sec)
        .fold(f64::INFINITY, f64::min);
    let ratio = worst_chaos / baseline.injects_per_sec().max(1e-9);
    println!("\nworst chaos mode vs baseline: {ratio:.3}x injects/sec");

    if smoke {
        let mut ok = true;
        for r in &results {
            if r.injects == 0 {
                eprintln!("SMOKE FAIL: mode {} injected nothing", r.mode);
                ok = false;
            }
            if r.failures > 0 {
                eprintln!(
                    "SMOKE FAIL: mode {} had {} failed requests",
                    r.mode, r.failures
                );
                ok = false;
            }
            if r.mode != "baseline" && r.faults_injected == 0 {
                eprintln!("SMOKE FAIL: chaos mode {} fired no faults", r.mode);
                ok = false;
            }
        }
        if !ok {
            std::process::exit(1);
        }
        println!("smoke ok: all modes injected with zero failures; chaos fired");
        return;
    }

    write_json(&results, duration_secs, ratio);
}
