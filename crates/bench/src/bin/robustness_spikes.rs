//! §7.5: the production hardening that lifted COGS savings from 18% to 64%
//! on the spiky region while holding the hit rate.
//!
//! Protocol: plan on one realization of the sporadic-spike workload and
//! evaluate on another (spike timings shift between seeds — the "albeit not
//! precisely timed" failure mode). Compare the no-hardening optimizer, the
//! individual strategies, the full stack, and the static pool that the
//! savings are measured against.
//!
//! `cargo run --release -p ip-bench --bin robustness_spikes`

use ip_bench::{print_table, Scale};
use ip_saa::{
    evaluate_schedule, optimal_static_for_hit_rate, robust_optimize, RobustnessStrategies,
    SaaConfig,
};
use ip_workload::spiky_region;

fn main() {
    let scale = Scale::from_env();
    let mut plan_model = spiky_region(41);
    plan_model.days = scale.history_days().min(4);
    let mut eval_model = spiky_region(42);
    eval_model.days = plan_model.days;
    let plan = plan_model.generate();
    let eval = eval_model.generate();

    let saa = SaaConfig {
        tau_intervals: 3,
        stableness: 10,
        min_pool: 0,
        max_pool: 100,
        max_new_per_block: 100,
        alpha_prime: 0.4,
    };

    // Static reference sized for a high hit rate on the plan trace.
    let (static_n, _) =
        optimal_static_for_hit_rate(&plan, saa.tau_intervals, 0.99, 1000).expect("static sizing");
    let static_mech = evaluate_schedule(
        &eval,
        &vec![f64::from(static_n); eval.len()],
        saa.tau_intervals,
    )
    .expect("static eval");

    let variants: Vec<(String, RobustnessStrategies)> = vec![
        ("none".into(), RobustnessStrategies::none()),
        (
            "smoothing (SF=2tau)".into(),
            RobustnessStrategies {
                demand_smoothing_factor: 2 * saa.tau_intervals,
                extended_stableness: None,
                output_max_filter: false,
            },
        ),
        (
            "stability 10min".into(),
            RobustnessStrategies {
                demand_smoothing_factor: 0,
                extended_stableness: Some(20),
                output_max_filter: false,
            },
        ),
        (
            "output filter (SF=tau)".into(),
            RobustnessStrategies {
                demand_smoothing_factor: 0,
                extended_stableness: None,
                output_max_filter: true,
            },
        ),
        ("all (paper §7.5)".into(), RobustnessStrategies::all(&saa)),
        (
            "all + SF sized to jitter".into(),
            RobustnessStrategies {
                demand_smoothing_factor: 90, // spikes wander by up to ±20 min
                extended_stableness: Some(20),
                output_max_filter: true,
            },
        ),
    ];

    println!(
        "§7.5 hardening on the spiky region (plan seed != eval seed; static pool N = {static_n})\n"
    );
    let mut rows = vec![vec![
        "static pool".to_string(),
        format!("{:.1}%", static_mech.hit_rate * 100.0),
        format!("{:.0}", static_mech.idle_cluster_seconds),
        "0%".into(),
    ]];
    for (label, strategies) in variants {
        let opt = robust_optimize(&plan, &saa, &strategies).expect("optimize");
        let mech = evaluate_schedule(&eval, &opt.schedule, saa.tau_intervals).expect("evaluate");
        let savings = 1.0 - mech.idle_cluster_seconds / static_mech.idle_cluster_seconds;
        rows.push(vec![
            label,
            format!("{:.1}%", mech.hit_rate * 100.0),
            format!("{:.0}", mech.idle_cluster_seconds),
            format!("{:.0}%", savings * 100.0),
        ]);
    }
    print_table(
        &[
            "strategy",
            "hit rate",
            "idle (cl-sec)",
            "idle saved vs static",
        ],
        &rows,
    );
    println!("\nPaper reference: the strategies raised COGS savings from 18% to 64%");
    println!("while keeping the hit rate at 100% — the reproduction preserves the");
    println!("ordering (each strategy helps; the full stack dominates).");
}
