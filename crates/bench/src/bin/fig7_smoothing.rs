//! Fig. 7: raw versus max-filtered demand (Eq. 18). The filter "fattens"
//! spikes so imprecisely-timed forecasts still land inside the provisioned
//! window (§7.5).
//!
//! `cargo run --release -p ip-bench --bin fig7_smoothing`

use ip_bench::print_table;
use ip_timeseries::max_filter;
use ip_workload::spiky_region;

fn main() {
    let mut model = spiky_region(2);
    model.days = 1;
    let demand = model.generate();

    println!("Fig. 7: raw vs max-filtered demand on the spiky-region workload\n");

    // Find the first spike and print a window around it for several SF.
    let spike_at = demand
        .values()
        .iter()
        .position(|&v| v >= 5.0)
        .expect("workload contains a spike");
    let window_start = spike_at.saturating_sub(12);
    let window_end = (spike_at + 20).min(demand.len());

    let sfs = [0usize, 6, 12, 24];
    let filtered: Vec<_> = sfs.iter().map(|&sf| max_filter(&demand, sf)).collect();

    let mut rows = Vec::new();
    for t in (window_start..window_end).step_by(2) {
        let mut row = vec![format!("{}", (t as i64 - spike_at as i64) / 2)];
        for f in &filtered {
            row.push(format!("{:.0}", f.get(t)));
        }
        rows.push(row);
    }
    print_table(
        &["t-spike (min)", "raw (SF=0)", "SF=6", "SF=12", "SF=24"],
        &rows,
    );

    println!();
    let mut rows2 = Vec::new();
    for (sf, f) in sfs.iter().zip(&filtered) {
        let active = f.values().iter().filter(|&&v| v >= 5.0).count();
        rows2.push(vec![
            sf.to_string(),
            format!("{:.0}", f.sum()),
            active.to_string(),
            format!("{:.1}%", active as f64 / f.len() as f64 * 100.0),
        ]);
    }
    print_table(
        &["SF", "total mass", "spike-level intervals", "coverage"],
        &rows2,
    );
    println!();
    println!("Larger SF widens each spike's footprint (the 'fatter spikes' of the");
    println!("paper) at the price of extra provisioned mass between spikes.");
}
