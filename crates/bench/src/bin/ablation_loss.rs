//! Ablation: the asymmetric loss (Eq. 12) as the overshoot knob. Sweeping
//! α' in SSA+'s error head shifts the forecast's coverage of demand, which
//! is what lets the hybrid model reach wait times plain SSA cannot (§5.3).
//!
//! `cargo run --release -p ip-bench --bin ablation_loss`

use ip_bench::{print_table, Scale};
use ip_models::ssa_plus::SsaPlusConfig;
use ip_models::{Forecaster, SsaModel, SsaPlus};
use ip_ssa::RankSelection;
use ip_timeseries::metrics::coverage;
use ip_timeseries::{mae, train_test_split};
use ip_workload::{preset, PresetId};

fn main() {
    let scale = Scale::from_env();
    let mut model = preset(PresetId::EastUs2Small, 19);
    model.days = scale.history_days();
    let full = model.generate();
    let (train, test) = train_test_split(&full, 0.8).expect("split");
    let h = scale.horizon().min(test.len());
    let truth = &test.values()[..h];

    println!("Eq. 12 ablation: SSA+ error-head alpha' vs forecast bias\n");
    let mut rows = Vec::new();

    // Plain SSA reference: no knob at all.
    let mut ssa = SsaModel::new(scale.ssa_window(), RankSelection::EnergyThreshold(0.9));
    ssa.fit(&train).expect("fit");
    let pred = ssa.predict(h).expect("predict");
    rows.push(vec![
        "SSA (no knob)".into(),
        format!("{:.2}", mae(truth, &pred).expect("mae")),
        format!("{:.1}%", coverage(truth, &pred).expect("coverage") * 100.0),
        format!("{:.2}", pred.iter().sum::<f64>() / h as f64),
    ]);

    for alpha in [0.05f32, 0.25, 0.5, 0.75, 0.95] {
        let mut plus = SsaPlus::new(SsaPlusConfig {
            window: scale.ssa_window(),
            alpha_prime: alpha,
            ..Default::default()
        });
        plus.fit(&train).expect("fit");
        let pred = plus.predict(h).expect("predict");
        rows.push(vec![
            format!("SSA+ alpha'={alpha:.2}"),
            format!("{:.2}", mae(truth, &pred).expect("mae")),
            format!("{:.1}%", coverage(truth, &pred).expect("coverage") * 100.0),
            format!("{:.2}", pred.iter().sum::<f64>() / h as f64),
        ]);
    }
    print_table(&["model", "MAE", "demand coverage", "mean forecast"], &rows);
    println!("\ncoverage = fraction of intervals with forecast >= demand (a pool");
    println!("sized from the forecast can only hit when the forecast covers).");
    println!("Expected: coverage and mean forecast increase monotonically with");
    println!("alpha'; MAE is best near 0.5 (the symmetric point).");
}
