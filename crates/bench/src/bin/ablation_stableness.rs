//! §7.1 finding 3: "by decreasing the STABLENESS … the Pareto curve shifts
//! towards the lower left, indicating better perf-cost trade-offs."
//!
//! Protocol: the same demand optimized at several stableness settings, each
//! swept over α'; for each setting report the idle time needed to reach a
//! fixed wait level.
//!
//! `cargo run --release -p ip-bench --bin ablation_stableness`

use ip_bench::{default_saa, print_table, Scale};
use ip_saa::{pareto_sweep, SaaConfig};
use ip_workload::{preset, PresetId};

fn main() {
    let scale = Scale::from_env();
    let mut model = preset(PresetId::EastUs2Small, 14);
    model.days = scale.history_days().min(3); // the sweep is O(days · alphas)
    let demand = model.generate();

    let alphas = [0.02, 0.05, 0.1, 0.2, 0.3, 0.5, 0.7, 0.9];
    // 30 s (1 interval), 5 min (paper default), 10 min (hardened §7.5), 30 min.
    let stableness_settings = [1usize, 10, 20, 60];

    println!("§7.1 ablation: Pareto points per STABLENESS (same demand, alpha' sweep)\n");
    let mut rows = Vec::new();
    for &stab in &stableness_settings {
        let cfg = SaaConfig {
            stableness: stab,
            ..default_saa()
        };
        let points = pareto_sweep(&demand, &demand, &cfg, &alphas).expect("sweep");
        // Idle needed to reach (near-)zero wait, and at a mid wait level.
        let at_zero = points
            .iter()
            .filter(|p| p.mean_wait_secs <= 0.5)
            .map(|p| p.idle_cluster_seconds)
            .fold(f64::INFINITY, f64::min);
        let at_mid = points
            .iter()
            .filter(|p| p.mean_wait_secs <= 5.0)
            .map(|p| p.idle_cluster_seconds)
            .fold(f64::INFINITY, f64::min);
        let best_hit = points.iter().map(|p| p.hit_rate).fold(0.0f64, f64::max);
        rows.push(vec![
            format!("{} s", stab * 30),
            if at_zero.is_finite() {
                format!("{at_zero:.0}")
            } else {
                "unreached".into()
            },
            if at_mid.is_finite() {
                format!("{at_mid:.0}")
            } else {
                "unreached".into()
            },
            format!("{:.2}%", best_hit * 100.0),
        ]);
    }
    print_table(
        &[
            "stableness",
            "idle @ wait<=0.5s",
            "idle @ wait<=5s",
            "best hit rate",
        ],
        &rows,
    );
    println!("\nExpected: smaller stableness → less idle time at every wait level");
    println!("(the curve shifts lower-left), at the cost of more frequent resizing.");
}
