//! Headline claim (abstract / Fig. 1): dynamic pooling achieves up to a
//! **43% reduction in cluster idle time** compared to static pooling when
//! targeting a **99% pool hit rate**.
//!
//! Protocol: optimal static pool (smallest constant size hitting ≥ 99% on
//! the trace) versus the SAA-optimized dynamic schedule whose `α'` is swept
//! until its hit rate clears 99%; both evaluated on the same trace.
//!
//! `cargo run --release -p ip-bench --bin fig1_headline`

use ip_bench::{default_saa, print_table, Scale};
use ip_saa::{evaluate_schedule, optimal_static_for_hit_rate, optimize_dp, SaaConfig};
use ip_workload::{preset, table1_presets};

fn main() {
    let _span = ip_obs::span("bench.fig1_headline");
    let scale = Scale::from_env();
    let base = default_saa();
    let mut rows = Vec::new();

    for preset_id in table1_presets() {
        let mut model = preset(preset_id, 1);
        model.days = scale.history_days();
        let demand = model.generate();

        let (static_n, static_mech) =
            optimal_static_for_hit_rate(&demand, base.tau_intervals, 0.99, 2000)
                .expect("static pool reachable");

        // Sweep alpha' toward the wait-averse end until the dynamic schedule
        // clears the same hit-rate bar.
        let mut dynamic = None;
        for alpha in [0.5, 0.3, 0.2, 0.1, 0.05, 0.02, 0.01, 0.005] {
            let cfg = SaaConfig {
                alpha_prime: alpha,
                ..base
            };
            let opt = optimize_dp(&demand, &cfg).expect("DP solve");
            let mech =
                evaluate_schedule(&demand, &opt.schedule, cfg.tau_intervals).expect("evaluate");
            if mech.hit_rate >= 0.99 {
                dynamic = Some((alpha, mech));
                break;
            }
        }
        let Some((alpha, dyn_mech)) = dynamic else {
            eprintln!("{}: no alpha' reached 99% hit rate", preset_id.label());
            continue;
        };
        let reduction = 1.0 - dyn_mech.idle_cluster_seconds / static_mech.idle_cluster_seconds;
        rows.push(vec![
            preset_id.label().to_string(),
            static_n.to_string(),
            format!("{:.0}", static_mech.idle_cluster_seconds),
            format!("{:.0}", dyn_mech.idle_cluster_seconds),
            format!("{:.3}", alpha),
            format!("{:.1}%", dyn_mech.hit_rate * 100.0),
            format!("{:.1}%", reduction * 100.0),
        ]);
    }

    println!("Fig. 1 / headline: idle-time reduction of dynamic vs static pooling");
    println!(
        "(both at >= 99% pool hit rate, {} days of demand)\n",
        scale.history_days()
    );
    print_table(
        &[
            "dataset",
            "static N",
            "static idle",
            "dynamic idle",
            "alpha'",
            "dyn hit",
            "idle reduction",
        ],
        &rows,
    );
    println!("\nPaper reference: \"up to 43% reduction in cluster idle time compared");
    println!("to static pooling when targeting 99% pool hit rate\".");
}
