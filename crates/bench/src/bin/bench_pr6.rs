//! Parallel-fleet scaling bench: per-pool `FleetSim` cost from 1 to 256
//! pools under the three PR-6 execution paths.
//!
//! Three measurements, each at pools ∈ {1, 4, 16, 64, 256} and
//! `IP_THREADS` ∈ {1, 4}:
//!
//! * **fleet_sim** — `FleetStrategy::Auto`, what callers get by default:
//!   the heap-scheduled serial interleave when `IP_THREADS=1`, pool-major
//!   parallel epochs otherwise.
//! * **fleet_sim_serial** — forced `FleetStrategy::Serial`: the binary-heap
//!   schedule, O(log N) per event pick (PR 5's O(N)-scan baseline is what
//!   made 16 pools cost ~8× per pool).
//! * **fleet_sim_pool_major** — forced `FleetStrategy::Parallel(threads)`:
//!   every pool's whole trace in one tight loop per epoch; at `threads=1`
//!   this runs inline with no worker machinery, so the row isolates the
//!   algorithmic win from thread-level speedup (the bench container has
//!   one CPU — see `available_parallelism` in the artifact).
//!
//! Demand is one day of the Table-1 EastUS2-medium preset per pool with
//! per-pool seeds derived from the pool name. Unlike `bench_pr5`, every
//! pool draws the *same* preset: round-robining presets of different
//! demand volume (as PR 5 did) changes the average per-pool workload as
//! the fleet grows, which confounds the per-pool scaling read this
//! artifact exists to make. The 1-pool rows remain comparable to
//! `BENCH_pr5.json` (its pool-00 used the same preset and seed scheme).
//!
//! `cargo run --release -p ip-bench --bin bench_pr6`
//!
//! Writes the machine-readable artifact `BENCH_pr6.json` at the workspace
//! root, recording `available_parallelism` of the measuring host.

use ip_bench::print_table;
use ip_sim::{FleetPool, FleetSim, FleetStrategy, SimConfig};
use ip_timeseries::TimeSeries;
use ip_workload::{pool_seed, preset, PresetId};
use std::time::Instant;

const POOL_COUNTS: [usize; 5] = [1, 4, 16, 64, 256];
const THREAD_COUNTS: [usize; 2] = [1, 4];

/// One day of demand per pool, all from the same preset, seed derived
/// from the pool name (stable across pool counts: pool `i` sees the same
/// trace whether the fleet has 4 or 256 members).
fn fleet_demands(pools: usize) -> Vec<(String, TimeSeries)> {
    (0..pools)
        .map(|i| {
            let name = format!("pool-{i:02}");
            let mut model = preset(PresetId::EastUs2Medium, pool_seed(7, &name));
            model.days = 1;
            let trace = model.generate();
            (name, trace)
        })
        .collect()
}

fn build_fleet(pools: usize, strategy: Option<FleetStrategy>) -> FleetSim {
    let members = fleet_demands(pools)
        .into_iter()
        .map(|(name, trace)| {
            let cfg = SimConfig {
                interval_secs: trace.interval_secs(),
                default_pool_target: 4,
                seed: 11,
                ..Default::default()
            };
            FleetPool::new(name, cfg, trace)
        })
        .collect();
    let mut sim = FleetSim::new(members).expect("fleet");
    if let Some(s) = strategy {
        sim.set_strategy(s);
    }
    sim
}

fn bench_fleet_sim(pools: usize, strategy: Option<FleetStrategy>, samples: usize) -> f64 {
    let mut times: Vec<f64> = (0..samples)
        .map(|_| {
            let mut sim = build_fleet(pools, strategy);
            let start = Instant::now();
            sim.run_to_end();
            let elapsed = start.elapsed().as_secs_f64();
            let report = sim.finalize();
            assert_eq!(report.pools.len(), pools);
            elapsed
        })
        .collect();
    times.sort_by(|a, b| a.partial_cmp(b).unwrap());
    times[times.len() / 2]
}

struct Record {
    measurement: &'static str,
    pools: usize,
    threads: usize,
    median_secs: f64,
    per_pool_secs: f64,
}

fn write_json(records: &[Record], samples: usize) {
    let avail = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    let mut body = String::from("{\n");
    body.push_str("  \"artifact\": \"BENCH_pr6\",\n");
    body.push_str(
        "  \"description\": \"parallel FleetSim scaling: Auto (default dispatch), forced serial heap interleave, and forced pool-major epochs, per pool count and IP_THREADS\",\n",
    );
    body.push_str(&format!("  \"available_parallelism\": {avail},\n"));
    body.push_str(&format!("  \"samples_per_measurement\": {samples},\n"));
    body.push_str(
        "  \"workload\": {\"days\": 1, \"interval_secs\": 30, \"intervals_per_pool\": 2880},\n",
    );
    body.push_str("  \"measurements\": [\n");
    for (i, r) in records.iter().enumerate() {
        body.push_str(&format!(
            "    {{\"measurement\": \"{}\", \"pools\": {}, \"threads\": {}, \"median_secs\": {:.6e}, \"per_pool_secs\": {:.6e}}}{}\n",
            r.measurement,
            r.pools,
            r.threads,
            r.median_secs,
            r.per_pool_secs,
            if i + 1 < records.len() { "," } else { "" },
        ));
    }
    body.push_str("  ]\n}\n");
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_pr6.json");
    std::fs::write(path, body).expect("write BENCH_pr6.json");
    println!("\nwrote {path}");
}

fn main() {
    let _span = ip_obs::span("bench.bench_pr6");
    let samples: usize = std::env::var("IP_BENCH_SAMPLES")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(3)
        .max(1);
    let mut records = Vec::new();

    println!("parallel fleet scaling, one day of demand per pool, median of {samples}\n");
    for threads in THREAD_COUNTS {
        // ip-par reads IP_THREADS per call, so the override applies to
        // every Auto-dispatched epoch below.
        std::env::set_var("IP_THREADS", threads.to_string());
        for pools in POOL_COUNTS {
            let cells: [(&'static str, Option<FleetStrategy>); 3] = [
                ("fleet_sim", None),
                ("fleet_sim_serial", Some(FleetStrategy::Serial)),
                (
                    "fleet_sim_pool_major",
                    Some(FleetStrategy::Parallel(threads)),
                ),
            ];
            for (measurement, strategy) in cells {
                let secs = bench_fleet_sim(pools, strategy, samples);
                records.push(Record {
                    measurement,
                    pools,
                    threads,
                    median_secs: secs,
                    per_pool_secs: secs / pools as f64,
                });
            }
        }
    }
    std::env::remove_var("IP_THREADS");

    let rows: Vec<Vec<String>> = records
        .iter()
        .map(|r| {
            vec![
                r.measurement.to_string(),
                r.pools.to_string(),
                r.threads.to_string(),
                format!("{:.3}", r.median_secs),
                format!("{:.5}", r.per_pool_secs),
            ]
        })
        .collect();
    print_table(
        &["measurement", "pools", "threads", "median_s", "per_pool_s"],
        &rows,
    );
    write_json(&records, samples);
}
