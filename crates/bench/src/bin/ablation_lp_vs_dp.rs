//! Ablation: the paper's LP relaxation (solved by our simplex) versus the
//! exact integer DP over stableness blocks — optimality gap and latency.
//! The §7.4 latency claim ("end-to-end … in mere seconds") rests on the
//! optimizer being cheap at the one-hour production horizon.
//!
//! `cargo run --release -p ip-bench --bin ablation_lp_vs_dp`

use ip_bench::{default_saa, print_table};
use ip_saa::{optimize_dp, optimize_lp};
use ip_timeseries::TimeSeries;
use ip_workload::{preset, PresetId};
use std::time::Instant;

fn main() {
    let mut model = preset(PresetId::EastUs2Small, 6);
    model.days = 2;
    let full = model.generate();
    let cfg = default_saa();

    // Horizon sizes in intervals: 30 min, 1 h (production), 2 h, 6 h, 1 day.
    let sizes = [60usize, 120, 240, 720, 2880];
    println!("LP (simplex) vs DP (exact integer) on the SAA problem\n");
    let mut rows = Vec::new();
    for &t_len in &sizes {
        let demand =
            TimeSeries::new(full.interval_secs(), full.values()[..t_len].to_vec()).expect("series");

        let t0 = Instant::now();
        let lp = optimize_lp(&demand, &cfg);
        let lp_time = t0.elapsed().as_secs_f64();

        let t1 = Instant::now();
        let dp = optimize_dp(&demand, &cfg).expect("DP solve");
        let dp_time = t1.elapsed().as_secs_f64();

        match lp {
            Ok(lp) => {
                let gap = (dp.objective - lp.objective) / lp.objective.max(1e-9) * 100.0;
                rows.push(vec![
                    t_len.to_string(),
                    format!("{:.3}", lp_time),
                    format!("{:.3}", dp_time),
                    format!("{:.2}", lp.objective),
                    format!("{:.2}", dp.objective),
                    format!("{gap:.2}%"),
                ]);
            }
            Err(e) => rows.push(vec![
                t_len.to_string(),
                format!("err({e})"),
                format!("{:.3}", dp_time),
                String::new(),
                format!("{:.2}", dp.objective),
                String::new(),
            ]),
        }
    }
    print_table(
        &[
            "intervals",
            "LP time (s)",
            "DP time (s)",
            "LP obj",
            "DP obj (int)",
            "int. gap",
        ],
        &rows,
    );
    println!("\nThe LP lower-bounds the integer optimum; the gap is the rounding");
    println!("cost production pays. At the 1-hour horizon both run in well under a");
    println!("second, supporting the continuous retraining loop of §7.4.");
}
