//! Fig. 3: the cumulative curves of the live-pool mechanism — D(t), A(t),
//! A'(t), the pool size, and the idle/wait areas — on a small worked
//! example matching the figure's narrative (pool of 4, τ = 2 intervals).
//!
//! `cargo run --release -p ip-bench --bin fig3_mechanism`

use ip_bench::print_table;
use ip_saa::evaluate_schedule;
use ip_timeseries::TimeSeries;

fn main() {
    // One request arrives in each of the first 8 intervals.
    let demand = TimeSeries::new(
        30,
        vec![1.0, 1.0, 1.0, 1.0, 1.0, 1.0, 1.0, 1.0, 0.0, 0.0, 0.0, 0.0],
    )
    .expect("series");
    let n = 4.0f64;
    let tau = 2usize;
    let schedule = vec![n; demand.len()];

    let d_cum = demand.cumulative();
    let mech = evaluate_schedule(&demand, &schedule, tau).expect("mechanism");

    let mut rows = Vec::new();
    for t in 0..demand.len() {
        let d = d_cum.get(t);
        let a = d + n; // Eq. 1: A(t) = D(t) + N(t)
        let a_ready = if t < tau { n } else { d_cum.get(t - tau) + n }; // Eq. 2–3
        rows.push(vec![
            t.to_string(),
            format!("{:.0}", d),
            format!("{:.0}", a),
            format!("{:.0}", a_ready),
            format!("{:.0}", mech.idle_per_interval[t]),
            format!("{:.0}", mech.queued_per_interval[t]),
        ]);
    }

    println!("Fig. 3: cumulative mechanism with N = 4, tau = 2 intervals\n");
    print_table(
        &["t", "D(t)", "A(t)", "A'(t)", "idle Δ+", "queued Δ-"],
        &rows,
    );
    println!();
    println!(
        "grey area (idle)  = {:.0} cluster-seconds",
        mech.idle_cluster_seconds
    );
    println!("red area  (wait)  = {:.0} seconds", mech.wait_seconds);
    println!("pool hit rate     = {:.0}%", mech.hit_rate * 100.0);
}
