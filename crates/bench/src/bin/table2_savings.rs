//! Table 2: estimated annual COGS savings of Intelligent Pooling over
//! static pooling for US regions, at target-wait SLAs of 0.5 s (~99.9%
//! hit), 1 s (~99%) and 5 s (~95%).
//!
//! Protocol per SLA row: size the static pool to the target mean wait on
//! each region's trace; run the dynamic optimizer with `α'` swept to the
//! same wait level; convert both idle totals to annualized dollars with the
//! cost model; aggregate over the regional datasets (stand-ins for the
//! paper's 7 US regions).
//!
//! `cargo run --release -p ip-bench --bin table2_savings`

use ip_bench::{default_saa, print_table, Scale};
use ip_core::CostModel;
use ip_saa::static_pool::static_schedule;
use ip_saa::{evaluate_schedule, PoolMechanics, SaaConfig, SweepCache};
use ip_workload::{preset, table1_presets};

/// Smallest static pool whose mean wait meets the target.
fn static_for_wait(
    demand: &ip_timeseries::TimeSeries,
    tau: usize,
    target: f64,
) -> (u32, PoolMechanics) {
    let mut lo = 0u32;
    let mut hi = 2000u32;
    while lo < hi {
        let mid = lo + (hi - lo) / 2;
        let m = evaluate_schedule(demand, &static_schedule(demand.len(), mid), tau)
            .expect("evaluation");
        if m.mean_wait_per_request_secs <= target {
            hi = mid;
        } else {
            lo = mid + 1;
        }
    }
    let m = evaluate_schedule(demand, &static_schedule(demand.len(), lo), tau).expect("evaluation");
    (lo, m)
}

/// Dynamic schedule with `α'` swept until mean wait meets the target. The
/// α-independent DP sums are built once and warm-start every step of the
/// sweep, so each additional α costs only the block-level DP.
fn dynamic_for_wait(
    demand: &ip_timeseries::TimeSeries,
    base: &SaaConfig,
    target: f64,
) -> Option<PoolMechanics> {
    let cache = SweepCache::build(demand, base).ok()?;
    for alpha in [
        0.8, 0.5, 0.3, 0.2, 0.1, 0.05, 0.02, 0.01, 0.005, 0.002, 0.001,
    ] {
        let opt = cache.solve(alpha);
        let m = evaluate_schedule(demand, &opt.schedule, base.tau_intervals).ok()?;
        if m.mean_wait_per_request_secs <= target {
            return Some(m);
        }
    }
    None
}

fn main() {
    let _span = ip_obs::span("bench.table2_savings");
    let scale = Scale::from_env();
    let base = default_saa();
    let cost = CostModel::default();

    let slas = [(0.5f64, "~99.9%"), (1.0, "~99%"), (5.0, "~95%")];
    println!(
        "Table 2: estimated annual cost savings, {} regional datasets, {} days each\n",
        table1_presets().len(),
        scale.history_days()
    );

    let mut rows = Vec::new();
    for (target_wait, hit_label) in slas {
        let mut static_total = 0.0;
        let mut dynamic_total = 0.0;
        let mut static_hits = Vec::new();
        let mut dynamic_hits = Vec::new();
        // Regions are independent: fan the datasets out across threads and
        // aggregate the ordered results, so the totals accumulate in the
        // same order as the serial loop.
        let presets: Vec<_> = table1_presets().to_vec();
        let per_region = ip_par::par_map(&presets, |&preset_id| {
            let mut model = preset(preset_id, 33);
            model.days = scale.history_days();
            let demand = model.generate();
            let window = demand.duration_secs() as f64;
            let (_, static_mech) = static_for_wait(&demand, base.tau_intervals, target_wait);
            let dynamic_mech = dynamic_for_wait(&demand, &base, target_wait);
            (preset_id, window, static_mech, dynamic_mech)
        });
        for (preset_id, window, static_mech, dynamic_mech) in per_region {
            let Some(dynamic_mech) = dynamic_mech else {
                eprintln!(
                    "  {}: dynamic sweep missed the {target_wait}s target",
                    preset_id.label()
                );
                continue;
            };
            static_total += cost
                .annualize(static_mech.idle_cluster_seconds, window)
                .expect("window");
            dynamic_total += cost
                .annualize(dynamic_mech.idle_cluster_seconds, window)
                .expect("window");
            static_hits.push(static_mech.hit_rate);
            dynamic_hits.push(dynamic_mech.hit_rate);
        }
        let savings = static_total - dynamic_total;
        let mean = |v: &[f64]| v.iter().sum::<f64>() / v.len().max(1) as f64;
        rows.push(vec![
            format!("{target_wait}s ({hit_label})"),
            format!("${:.2}M", static_total / 1e6),
            format!("${:.2}M", dynamic_total / 1e6),
            format!("${:.2}M", savings / 1e6),
            format!("{:.0}%", savings / static_total.max(1.0) * 100.0),
            format!(
                "{:.1}% / {:.1}%",
                mean(&static_hits) * 100.0,
                mean(&dynamic_hits) * 100.0
            ),
        ]);
    }

    print_table(
        &[
            "target wait (hit)",
            "static cost",
            "dynamic cost",
            "savings",
            "rel.",
            "hit static/dyn",
        ],
        &rows,
    );
    println!("\nPaper reference (7 US regions): static >$20M/>$15M/>$5M and savings");
    println!(">$5M/>$5M/>$2M at 0.5s/1s/5s — absolute dollars depend on demand volume;");
    println!("the reproduction preserves the shape: savings grow as the SLA tightens,");
    println!("and the savings fraction compresses at the loosest target.");
}
