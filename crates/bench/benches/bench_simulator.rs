//! Criterion microbenches for the platform simulator: events/second over a
//! day of demand with and without the Intelligent Pooling worker loop.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use ip_sim::{IpWorkerConfig, SimConfig, Simulation, StaticProvider};
use ip_timeseries::TimeSeries;
use ip_workload::{preset, PresetId};
use std::hint::black_box;

fn day_demand() -> TimeSeries {
    let mut model = preset(PresetId::EastUs2Small, 12);
    model.days = 1;
    model.generate()
}

fn bench_simulation(c: &mut Criterion) {
    let demand = day_demand();
    let mut group = c.benchmark_group("simulator");
    group.sample_size(10);

    group.bench_with_input(BenchmarkId::new("static_pool", "1day"), &demand, |b, d| {
        b.iter(|| {
            let cfg = SimConfig {
                default_pool_target: 20,
                ..Default::default()
            };
            Simulation::new(cfg, None).run(black_box(d)).expect("sim")
        })
    });

    group.bench_with_input(
        BenchmarkId::new("with_ip_worker", "1day"),
        &demand,
        |b, d| {
            b.iter(|| {
                let cfg = SimConfig {
                    default_pool_target: 20,
                    ip_worker: Some(IpWorkerConfig {
                        run_every_secs: 1800,
                        horizon_secs: 3600,
                        failing_runs: vec![],
                    }),
                    ..Default::default()
                };
                let mut provider = StaticProvider(20);
                Simulation::new(cfg, Some(&mut provider))
                    .run(black_box(d))
                    .expect("sim")
            })
        },
    );
    group.finish();
}

criterion_group!(benches, bench_simulation);
criterion_main!(benches);
