//! Criterion microbenches for the forecasters: SSA / SSA+ fit+predict
//! against one epoch of each deep model — the latency structure behind
//! Fig. 6 and the production decision to train SSA+ "in an infinite loop".

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use ip_bench::{build_model, Scale};
use ip_timeseries::TimeSeries;
use ip_workload::{preset, PresetId};
use std::hint::black_box;

fn history(intervals: usize) -> TimeSeries {
    let mut model = preset(PresetId::EastUs2Small, 8);
    model.days = 2;
    let full = model.generate();
    TimeSeries::new(full.interval_secs(), full.values()[..intervals].to_vec()).expect("series")
}

fn bench_fit(c: &mut Criterion) {
    let mut group = c.benchmark_group("forecaster_fit");
    group.sample_size(10);
    let train = history(2880);
    for name in ["SSA", "SSA+"] {
        group.bench_with_input(BenchmarkId::new("fit_2880", name), &train, |b, train| {
            b.iter(|| {
                let mut m = build_model(name, Scale::Quick, 0.5);
                m.fit(black_box(train)).expect("fit")
            })
        });
    }
    // Deep models: a single epoch on a shorter series keeps the bench honest
    // about per-epoch cost without taking minutes.
    let short = history(1440);
    for name in ["mWDN", "TST", "IncpT"] {
        group.bench_with_input(
            BenchmarkId::new("fit_1440_1epoch", name),
            &short,
            |b, short| {
                b.iter(|| {
                    let mut m = build_model(name, Scale::Quick, 0.5);
                    // One epoch via the shared config is not reachable from the
                    // trait; the Quick scale already runs few epochs with early
                    // stopping, so this measures a realistic short fit.
                    m.fit(black_box(short)).expect("fit")
                })
            },
        );
    }
    group.finish();
}

fn bench_predict(c: &mut Criterion) {
    let mut group = c.benchmark_group("forecaster_predict");
    let train = history(2880);
    for name in ["SSA", "SSA+"] {
        let mut m = build_model(name, Scale::Quick, 0.5);
        m.fit(&train).expect("fit");
        group.bench_function(BenchmarkId::new("predict_240", name), |b| {
            b.iter(|| m.predict(black_box(240)).expect("predict"))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_fit, bench_predict);
criterion_main!(benches);
