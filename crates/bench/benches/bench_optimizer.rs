//! Criterion microbenches for the SAA optimizer: LP simplex vs integer DP
//! across horizon sizes. Backs the §7.4 claim that optimization runs "in a
//! few seconds" at the production one-hour horizon.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use ip_bench::default_saa;
use ip_saa::{optimize_dp, optimize_lp};
use ip_timeseries::TimeSeries;
use ip_workload::{preset, PresetId};
use std::hint::black_box;

fn demand(intervals: usize) -> TimeSeries {
    let mut model = preset(PresetId::EastUs2Small, 6);
    model.days = 2;
    let full = model.generate();
    TimeSeries::new(full.interval_secs(), full.values()[..intervals].to_vec()).expect("series")
}

fn bench_optimizers(c: &mut Criterion) {
    let cfg = default_saa();
    let mut group = c.benchmark_group("saa_optimizer");
    for intervals in [60usize, 120, 240] {
        let d = demand(intervals);
        group.bench_with_input(BenchmarkId::new("lp_simplex", intervals), &d, |b, d| {
            b.iter(|| optimize_lp(black_box(d), black_box(&cfg)).expect("lp"))
        });
        group.bench_with_input(BenchmarkId::new("dp_exact", intervals), &d, |b, d| {
            b.iter(|| optimize_dp(black_box(d), black_box(&cfg)).expect("dp"))
        });
    }
    // The DP scales to multi-day SAA runs; the LP is horizon-scale only.
    let intervals = 2880usize;
    let d = demand(intervals);
    group.sample_size(10);
    group.bench_with_input(BenchmarkId::new("dp_exact", intervals), &d, |b, d| {
        b.iter(|| optimize_dp(black_box(d), black_box(&cfg)).expect("dp"))
    });
    group.finish();
}

criterion_group!(benches, bench_optimizers);
criterion_main!(benches);
