//! The §7.4 end-to-end latency claim: "an end-to-end run time (training,
//! inferencing, and optimizing) reduced to mere seconds" for the deployed
//! SSA+ pipeline. This bench measures exactly that loop — fit SSA+ on two
//! days of history, forecast one hour, optimize the forecast — as one unit.

use criterion::{criterion_group, criterion_main, Criterion};
use ip_bench::default_saa;
use ip_core::{RecommendationEngine, TwoStepEngine};
use ip_models::ssa_plus::SsaPlusConfig;
use ip_models::SsaPlus;
use ip_workload::{preset, PresetId};
use std::hint::black_box;

fn bench_e2e(c: &mut Criterion) {
    let mut model = preset(PresetId::EastUs2Small, 3);
    model.days = 2;
    let history = model.generate();
    let saa = default_saa();

    let mut group = c.benchmark_group("e2e_pipeline");
    group.sample_size(10);
    group.bench_function("ssa_plus_2step_train_infer_optimize_1h", |b| {
        b.iter(|| {
            let forecaster = SsaPlus::new(SsaPlusConfig::default());
            let mut engine = TwoStepEngine::new(forecaster, saa);
            engine
                .recommend(black_box(&history), black_box(120))
                .expect("recommendation")
        })
    });
    group.finish();
}

criterion_group!(benches, bench_e2e);
criterion_main!(benches);
