//! Thread-scaling bench for the PR's hot-kernel rewrites: `pareto_sweep`
//! (warm-started α' sweep) and `Matrix::matmul` (blocked kernel) at 1/2/4/8
//! threads, plus before/after comparisons against the pre-rewrite serial
//! kernels (naive per-α DP, naive ikj matmul, O(L²·K) lag covariance).
//!
//! `cargo bench -p ip-bench --bench bench_parallel_scaling`
//!
//! Besides the criterion report, writes the machine-readable artifact
//! `BENCH_pr1.json` at the workspace root. The JSON records
//! `available_parallelism` of the measuring host — on a single-core
//! container the thread-scaling rows measure overhead (they stay
//! bit-identical, the contract the proptests pin down), and the wall-clock
//! wins come from the algorithmic before/after rows.

use criterion::{criterion_group, Criterion};
use ip_bench::default_saa;
use ip_linalg::Matrix;
use ip_saa::{optimize_dp, pareto_sweep_with_threads, SaaConfig};
use ip_timeseries::TimeSeries;
use ip_workload::{preset, PresetId};
use std::hint::black_box;
use std::time::Instant;

const THREADS: [usize; 4] = [1, 2, 4, 8];
const MATMUL_DIMS: [usize; 2] = [160, 448];
const PARETO_INTERVALS: usize = 2880; // one day of 30 s intervals
const SSA_WINDOW: usize = 240;

fn demand(intervals: usize) -> TimeSeries {
    let mut model = preset(PresetId::EastUs2Small, 6);
    model.days = 2;
    let full = model.generate();
    TimeSeries::new(full.interval_secs(), full.values()[..intervals].to_vec()).expect("series")
}

fn alpha_grid() -> Vec<f64> {
    ip_saa::pareto::default_alpha_grid()
}

/// The pre-rewrite sweep: one full `optimize_dp` (cost-matrix scan
/// included) per α, serially.
fn pareto_cold(demand: &TimeSeries, cfg: &SaaConfig, alphas: &[f64]) -> Vec<f64> {
    alphas
        .iter()
        .map(|&a| {
            optimize_dp(
                demand,
                &SaaConfig {
                    alpha_prime: a,
                    ..*cfg
                },
            )
            .expect("dp")
            .objective
        })
        .collect()
}

/// The pre-rewrite matmul: naive ikj with zero-skip.
fn naive_matmul(a: &Matrix, b: &Matrix) -> Matrix {
    let (m, k, n) = (a.rows(), a.cols(), b.cols());
    let mut out = vec![0.0f64; m * n];
    for i in 0..m {
        for kk in 0..k {
            let av = a.get(i, kk);
            if av == 0.0 {
                continue;
            }
            let row = b.row(kk);
            for (o, &r) in out[i * n..(i + 1) * n].iter_mut().zip(row) {
                *o += av * r;
            }
        }
    }
    Matrix::from_vec(m, n, out).expect("shape")
}

/// The pre-rewrite lag covariance: direct O(L²·K) sums.
fn naive_lag_covariance(values: &[f64], window: usize) -> Matrix {
    let k = values.len() - window + 1;
    let mut s = Matrix::zeros(window, window);
    for i in 0..window {
        for j in i..window {
            let acc: f64 = (0..k).map(|t| values[i + t] * values[j + t]).sum();
            s.set(i, j, acc);
            s.set(j, i, acc);
        }
    }
    s
}

/// Median wall-clock seconds of `f` over `samples` runs.
fn median_secs<F: FnMut()>(samples: usize, mut f: F) -> f64 {
    let mut times: Vec<f64> = (0..samples.max(3))
        .map(|_| {
            let start = Instant::now();
            f();
            start.elapsed().as_secs_f64()
        })
        .collect();
    times.sort_by(|a, b| a.partial_cmp(b).unwrap());
    times[times.len() / 2]
}

struct Record {
    kernel: &'static str,
    variant: String,
    threads: Option<usize>,
    median_secs: f64,
}

fn json_escape_free(s: &str) -> &str {
    debug_assert!(!s.contains(['"', '\\']));
    s
}

fn write_json(records: &[Record], samples: usize) {
    let avail = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    let mut body = String::from("{\n");
    body.push_str("  \"artifact\": \"BENCH_pr1\",\n");
    body.push_str(
        "  \"description\": \"thread scaling + before/after of the parallel execution layer and hot-kernel rewrites\",\n",
    );
    body.push_str(&format!("  \"available_parallelism\": {avail},\n"));
    body.push_str(&format!("  \"samples_per_measurement\": {samples},\n"));
    body.push_str(&format!(
        "  \"workload\": {{\"matmul_dims\": [{}, {}], \"pareto_intervals\": {PARETO_INTERVALS}, \"alpha_grid_len\": {}, \"ssa_window\": {SSA_WINDOW}}},\n",
        MATMUL_DIMS[0],
        MATMUL_DIMS[1],
        alpha_grid().len()
    ));
    body.push_str("  \"measurements\": [\n");
    for (i, r) in records.iter().enumerate() {
        let threads = r
            .threads
            .map(|t| t.to_string())
            .unwrap_or_else(|| "null".to_string());
        body.push_str(&format!(
            "    {{\"kernel\": \"{}\", \"variant\": \"{}\", \"threads\": {}, \"median_secs\": {:.6e}, \"per_sec\": {:.3}}}{}\n",
            json_escape_free(r.kernel),
            json_escape_free(&r.variant),
            threads,
            r.median_secs,
            1.0 / r.median_secs,
            if i + 1 < records.len() { "," } else { "" },
        ));
    }
    body.push_str("  ]\n}\n");
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_pr1.json");
    std::fs::write(path, body).expect("write BENCH_pr1.json");
    println!("wrote {path}");
}

fn bench_scaling(c: &mut Criterion) {
    let samples: usize = std::env::var("IP_BENCH_SAMPLES")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(7);
    let mut records = Vec::new();

    // --- pareto_sweep: cold (pre-rewrite) vs warm-started, then threads ---
    let d = demand(PARETO_INTERVALS);
    let cfg = default_saa();
    let grid = alpha_grid();
    let mut group = c.benchmark_group("pareto_sweep");
    group.sample_size(samples);

    let serial_points = pareto_sweep_with_threads(1, &d, &d, &cfg, &grid).expect("sweep");
    group.bench_function("cold_per_alpha_dp", |b| {
        b.iter(|| pareto_cold(black_box(&d), black_box(&cfg), black_box(&grid)))
    });
    records.push(Record {
        kernel: "pareto_sweep",
        variant: "before_cold_per_alpha_dp".into(),
        threads: Some(1),
        median_secs: median_secs(samples, || {
            black_box(pareto_cold(&d, &cfg, &grid));
        }),
    });
    for threads in THREADS {
        let points = pareto_sweep_with_threads(threads, &d, &d, &cfg, &grid).expect("sweep");
        // Acceptance contract: Pareto points bit-identical at every count.
        assert_eq!(points.len(), serial_points.len());
        for (a, b) in serial_points.iter().zip(&points) {
            assert_eq!(
                a.idle_cluster_seconds.to_bits(),
                b.idle_cluster_seconds.to_bits()
            );
            assert_eq!(a.wait_seconds.to_bits(), b.wait_seconds.to_bits());
        }
        group.bench_function(format!("warm_threads_{threads}"), |b| {
            b.iter(|| {
                pareto_sweep_with_threads(
                    black_box(threads),
                    black_box(&d),
                    black_box(&d),
                    black_box(&cfg),
                    black_box(&grid),
                )
                .expect("sweep")
            })
        });
        records.push(Record {
            kernel: "pareto_sweep",
            variant: "after_warm_started".into(),
            threads: Some(threads),
            median_secs: median_secs(samples, || {
                black_box(pareto_sweep_with_threads(threads, &d, &d, &cfg, &grid).expect("sweep"));
            }),
        });
    }
    group.finish();

    // --- matmul: naive ikj vs blocked, then threads. The small dim fits L2;
    // the large one doesn't, which is where the tiled panel earns its keep. ---
    let mut group = c.benchmark_group("matmul");
    group.sample_size(samples);
    for dim in MATMUL_DIMS {
        let a = Matrix::from_fn(dim, dim, |i, j| ((i * 31 + j * 7) % 23) as f64 - 11.0);
        let b_m = Matrix::from_fn(dim, dim, |i, j| ((i * 13 + j * 17) % 19) as f64 - 9.0);
        group.bench_function(format!("naive_ikj_{dim}"), |b| {
            b.iter(|| naive_matmul(black_box(&a), black_box(&b_m)))
        });
        records.push(Record {
            kernel: "matmul",
            variant: format!("before_naive_ikj_{dim}"),
            threads: Some(1),
            median_secs: median_secs(samples, || {
                black_box(naive_matmul(&a, &b_m));
            }),
        });
        let serial_prod = a.matmul_with_threads(1, &b_m).expect("matmul");
        for threads in THREADS {
            let prod = a.matmul_with_threads(threads, &b_m).expect("matmul");
            assert!(serial_prod
                .as_slice()
                .iter()
                .zip(prod.as_slice())
                .all(|(x, y)| x.to_bits() == y.to_bits()));
            group.bench_function(format!("blocked_{dim}_threads_{threads}"), |b| {
                b.iter(|| {
                    a.matmul_with_threads(black_box(threads), black_box(&b_m))
                        .expect("matmul")
                })
            });
            records.push(Record {
                kernel: "matmul",
                variant: format!("after_blocked_{dim}"),
                threads: Some(threads),
                median_secs: median_secs(samples, || {
                    black_box(a.matmul_with_threads(threads, &b_m).expect("matmul"));
                }),
            });
        }
    }
    group.finish();

    // --- lag covariance: O(L²·K) vs sliding O(L·N) ---
    let series = demand(PARETO_INTERVALS).into_values();
    let mut group = c.benchmark_group("lag_covariance");
    group.sample_size(samples);
    let fast = ip_ssa::lag_covariance(&series, SSA_WINDOW).expect("lagcov");
    let slow = naive_lag_covariance(&series, SSA_WINDOW);
    let worst = fast.sub(&slow).expect("shape").max_abs();
    assert!(
        worst <= 1e-6 * slow.max_abs().max(1.0),
        "recurrence drifted: {worst}"
    );
    group.bench_function("naive_l2k", |b| {
        b.iter(|| naive_lag_covariance(black_box(&series), black_box(SSA_WINDOW)))
    });
    records.push(Record {
        kernel: "lag_covariance",
        variant: "before_naive_l2k".into(),
        threads: None,
        median_secs: median_secs(samples, || {
            black_box(naive_lag_covariance(&series, SSA_WINDOW));
        }),
    });
    group.bench_function("sliding_ln", |b| {
        b.iter(|| {
            ip_ssa::lag_covariance(black_box(&series), black_box(SSA_WINDOW)).expect("lagcov")
        })
    });
    records.push(Record {
        kernel: "lag_covariance",
        variant: "after_sliding_ln".into(),
        threads: None,
        median_secs: median_secs(samples, || {
            black_box(ip_ssa::lag_covariance(&series, SSA_WINDOW).expect("lagcov"));
        }),
    });
    group.finish();

    write_json(&records, samples);
}

criterion_group!(benches, bench_scaling);

fn main() {
    benches();
}
