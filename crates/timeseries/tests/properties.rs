//! Property-based invariants of the time-series primitives.

use ip_timeseries::{asymmetric_loss, mae, max_filter, rmse, train_test_split, TimeSeries};
use proptest::prelude::*;

fn series_strategy() -> impl Strategy<Value = TimeSeries> {
    proptest::collection::vec(-100.0f64..100.0, 1..200)
        .prop_map(|v| TimeSeries::new(30, v).unwrap())
}

fn nonneg_series_strategy() -> impl Strategy<Value = TimeSeries> {
    proptest::collection::vec(0.0f64..100.0, 1..200).prop_map(|v| TimeSeries::new(30, v).unwrap())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn cumulative_differences_roundtrip(s in series_strategy()) {
        let back = s.cumulative().differences();
        for (a, b) in back.values().iter().zip(s.values()) {
            prop_assert!((a - b).abs() < 1e-6, "{a} vs {b}");
        }
    }

    #[test]
    fn aggregate_preserves_sum(s in series_strategy(), factor in 1usize..12) {
        let agg = s.aggregate(factor).unwrap();
        prop_assert!((agg.sum() - s.sum()).abs() < 1e-6);
        prop_assert_eq!(agg.interval_secs(), 30 * factor as u64);
    }

    #[test]
    fn max_filter_invariants(s in series_strategy(), sf in 0usize..20) {
        let f = max_filter(&s, sf);
        prop_assert_eq!(f.len(), s.len());
        // Dominates the input.
        for (a, b) in f.values().iter().zip(s.values()) {
            prop_assert!(a >= b);
        }
        // Bounded by the global max.
        let global = s.max().unwrap();
        prop_assert!(f.values().iter().all(|&v| v <= global));
        // SF = 0 is the identity.
        if sf == 0 {
            prop_assert_eq!(f.values(), s.values());
        }
    }

    #[test]
    fn max_filter_monotone_in_sf(s in series_strategy(), sf in 0usize..15) {
        let small = max_filter(&s, sf);
        let big = max_filter(&s, sf + 1);
        for (a, b) in big.values().iter().zip(small.values()) {
            prop_assert!(a >= b);
        }
    }

    #[test]
    fn split_partitions_exactly(s in series_strategy(), frac in 0.0f64..1.0) {
        let (train, test) = train_test_split(&s, frac).unwrap();
        prop_assert_eq!(train.len() + test.len(), s.len());
        let mut rejoined = train.values().to_vec();
        rejoined.extend_from_slice(test.values());
        prop_assert_eq!(rejoined.as_slice(), s.values());
    }

    #[test]
    fn metric_relations(a in nonneg_series_strategy()) {
        prop_assume!(a.len() >= 2);
        let t = a.values();
        let p: Vec<f64> = t.iter().map(|v| v + 1.0).collect();
        // Constant offset of +1: MAE = 1, RMSE = 1.
        prop_assert!((mae(t, &p).unwrap() - 1.0).abs() < 1e-9);
        prop_assert!((rmse(t, &p).unwrap() - 1.0).abs() < 1e-9);
        // Pure over-prediction: the alpha'-weighted loss is (1−α')·1.
        let l = asymmetric_loss(t, &p, 0.3).unwrap();
        prop_assert!((l - 0.7).abs() < 1e-9);
    }

    #[test]
    fn rmse_dominates_mae(s in series_strategy()) {
        prop_assume!(s.len() >= 2);
        let t = s.values();
        let p: Vec<f64> = t.iter().rev().copied().collect();
        let m = mae(t, &p).unwrap();
        let r = rmse(t, &p).unwrap();
        prop_assert!(r >= m - 1e-9);
    }
}
