//! Train/test and train/validation splits following the §5.1 protocol.

use crate::series::TimeSeries;
use crate::{Result, TsError};

/// Splits chronologically: the first `train_fraction` of intervals become
/// the training series, the rest the test series. The paper uses an 80-20
/// split (`train_fraction = 0.8`).
pub fn train_test_split(
    series: &TimeSeries,
    train_fraction: f64,
) -> Result<(TimeSeries, TimeSeries)> {
    if !(0.0..=1.0).contains(&train_fraction) {
        return Err(TsError::InvalidParameter(format!(
            "train_fraction must be in [0,1], got {train_fraction}"
        )));
    }
    if series.is_empty() {
        return Err(TsError::Empty);
    }
    let cut = ((series.len() as f64) * train_fraction).round() as usize;
    let cut = cut.min(series.len());
    Ok((series.slice(0, cut)?, series.slice(cut, series.len())?))
}

/// Splits a training series into train/validation chronologically; the paper
/// uses 90-10 for the deep models' early stopping.
pub fn train_val_split(
    series: &TimeSeries,
    train_fraction: f64,
) -> Result<(TimeSeries, TimeSeries)> {
    train_test_split(series, train_fraction)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ts(n: usize) -> TimeSeries {
        TimeSeries::new(30, (0..n).map(|i| i as f64).collect()).unwrap()
    }

    #[test]
    fn eighty_twenty() {
        let s = ts(10);
        let (train, test) = train_test_split(&s, 0.8).unwrap();
        assert_eq!(train.len(), 8);
        assert_eq!(test.len(), 2);
        assert_eq!(train.values()[7], 7.0);
        assert_eq!(test.values()[0], 8.0);
    }

    #[test]
    fn chronological_order_preserved() {
        let s = ts(100);
        let (train, test) = train_test_split(&s, 0.8).unwrap();
        // No shuffling: train is the prefix, test the suffix.
        assert!(train.values().iter().zip(test.values()).all(|(a, b)| a < b));
    }

    #[test]
    fn degenerate_fractions() {
        let s = ts(5);
        let (train, test) = train_test_split(&s, 1.0).unwrap();
        assert_eq!(train.len(), 5);
        assert!(test.is_empty());
        let (train, test) = train_test_split(&s, 0.0).unwrap();
        assert!(train.is_empty());
        assert_eq!(test.len(), 5);
    }

    #[test]
    fn invalid_inputs() {
        let s = ts(5);
        assert!(train_test_split(&s, 1.2).is_err());
        assert!(train_test_split(&s, -0.1).is_err());
        assert!(train_test_split(&TimeSeries::zeros(30, 0), 0.5).is_err());
    }

    #[test]
    fn nested_split_matches_paper_protocol() {
        // 80-20 then 90-10 of the training part.
        let s = ts(100);
        let (train, test) = train_test_split(&s, 0.8).unwrap();
        let (fit, val) = train_val_split(&train, 0.9).unwrap();
        assert_eq!(test.len(), 20);
        assert_eq!(fit.len(), 72);
        assert_eq!(val.len(), 8);
    }
}
