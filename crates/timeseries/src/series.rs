//! Interval-indexed time series.

use crate::{Result, TsError};
use serde::{Deserialize, Serialize};

/// A time series sampled at a fixed interval.
///
/// `values[t]` is the measurement for the half-open interval
/// `[t·interval, (t+1)·interval)` seconds from the series origin. For the
/// pooling workload this is typically "number of cluster requests in the
/// 30-second interval `t`" (the paper's consolidation granularity, §7).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TimeSeries {
    /// Interval width in seconds.
    interval_secs: u64,
    /// One value per interval.
    values: Vec<f64>,
}

impl TimeSeries {
    /// Creates a series from raw interval values.
    pub fn new(interval_secs: u64, values: Vec<f64>) -> Result<Self> {
        if interval_secs == 0 {
            return Err(TsError::InvalidParameter(
                "interval_secs must be > 0".into(),
            ));
        }
        Ok(Self {
            interval_secs,
            values,
        })
    }

    /// A series of zeros.
    pub fn zeros(interval_secs: u64, len: usize) -> Self {
        Self {
            interval_secs,
            values: vec![0.0; len],
        }
    }

    /// Interval width in seconds.
    #[inline]
    pub fn interval_secs(&self) -> u64 {
        self.interval_secs
    }

    /// Number of intervals.
    #[inline]
    pub fn len(&self) -> usize {
        self.values.len()
    }

    /// `true` when there are no intervals.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.values.is_empty()
    }

    /// Total covered duration in seconds.
    pub fn duration_secs(&self) -> u64 {
        self.interval_secs * self.values.len() as u64
    }

    /// Immutable view of the values.
    #[inline]
    pub fn values(&self) -> &[f64] {
        &self.values
    }

    /// Mutable view of the values.
    #[inline]
    pub fn values_mut(&mut self) -> &mut [f64] {
        &mut self.values
    }

    /// Consumes the series, returning its values.
    pub fn into_values(self) -> Vec<f64> {
        self.values
    }

    /// Value at interval `t`.
    #[inline]
    pub fn get(&self, t: usize) -> f64 {
        self.values[t]
    }

    /// Returns the sub-series covering `[start, end)` intervals.
    pub fn slice(&self, start: usize, end: usize) -> Result<TimeSeries> {
        if start > end || end > self.values.len() {
            return Err(TsError::InvalidParameter(format!(
                "slice [{start}, {end}) out of range for length {}",
                self.values.len()
            )));
        }
        Ok(TimeSeries {
            interval_secs: self.interval_secs,
            values: self.values[start..end].to_vec(),
        })
    }

    /// Sum of all values.
    pub fn sum(&self) -> f64 {
        self.values.iter().sum()
    }

    /// Arithmetic mean; `None` when empty.
    pub fn mean(&self) -> Option<f64> {
        if self.values.is_empty() {
            None
        } else {
            Some(self.sum() / self.values.len() as f64)
        }
    }

    /// Maximum value; `None` when empty.
    pub fn max(&self) -> Option<f64> {
        self.values.iter().copied().reduce(f64::max)
    }

    /// Minimum value; `None` when empty.
    pub fn min(&self) -> Option<f64> {
        self.values.iter().copied().reduce(f64::min)
    }

    /// Sample standard deviation; `None` for fewer than two points.
    pub fn std_dev(&self) -> Option<f64> {
        if self.values.len() < 2 {
            return None;
        }
        let mean = self.mean()?;
        let var = self.values.iter().map(|v| (v - mean).powi(2)).sum::<f64>()
            / (self.values.len() - 1) as f64;
        Some(var.sqrt())
    }

    /// Re-buckets into coarser intervals of `factor` original intervals,
    /// summing values (request *counts* aggregate by summation). A trailing
    /// partial bucket is kept and contains the remaining sum.
    pub fn aggregate(&self, factor: usize) -> Result<TimeSeries> {
        if factor == 0 {
            return Err(TsError::InvalidParameter(
                "aggregate factor must be > 0".into(),
            ));
        }
        let values = self
            .values
            .chunks(factor)
            .map(|chunk| chunk.iter().sum())
            .collect();
        Ok(TimeSeries {
            interval_secs: self.interval_secs * factor as u64,
            values,
        })
    }

    /// Cumulative series: `out[t] = Σ_{s ≤ t} values[s]` — the `D(t)` of the
    /// paper's Fig. 3 when `self` holds per-interval request counts.
    pub fn cumulative(&self) -> TimeSeries {
        let mut acc = 0.0;
        let values = self
            .values
            .iter()
            .map(|v| {
                acc += v;
                acc
            })
            .collect();
        TimeSeries {
            interval_secs: self.interval_secs,
            values,
        }
    }

    /// Inverse of [`cumulative`](Self::cumulative): first differences with
    /// `out[0] = values[0]`.
    pub fn differences(&self) -> TimeSeries {
        let mut prev = 0.0;
        let values = self
            .values
            .iter()
            .map(|&v| {
                let d = v - prev;
                prev = v;
                d
            })
            .collect();
        TimeSeries {
            interval_secs: self.interval_secs,
            values,
        }
    }

    /// Appends another series with the same interval width.
    pub fn extend(&mut self, other: &TimeSeries) -> Result<()> {
        if other.interval_secs != self.interval_secs {
            return Err(TsError::InvalidParameter(format!(
                "interval mismatch: {} vs {}",
                self.interval_secs, other.interval_secs
            )));
        }
        self.values.extend_from_slice(&other.values);
        Ok(())
    }

    /// Element-wise map into a new series.
    pub fn map(&self, f: impl FnMut(f64) -> f64) -> TimeSeries {
        TimeSeries {
            interval_secs: self.interval_secs,
            values: self.values.iter().copied().map(f).collect(),
        }
    }

    /// Clamps every value to be ≥ 0 (useful after subtracting forecasts).
    pub fn clamp_non_negative(&self) -> TimeSeries {
        self.map(|v| v.max(0.0))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ts(vals: &[f64]) -> TimeSeries {
        TimeSeries::new(30, vals.to_vec()).unwrap()
    }

    #[test]
    fn constructor_rejects_zero_interval() {
        assert!(TimeSeries::new(0, vec![1.0]).is_err());
    }

    #[test]
    fn basic_stats() {
        let s = ts(&[1.0, 2.0, 3.0, 4.0]);
        assert_eq!(s.len(), 4);
        assert_eq!(s.sum(), 10.0);
        assert_eq!(s.mean(), Some(2.5));
        assert_eq!(s.max(), Some(4.0));
        assert_eq!(s.min(), Some(1.0));
        assert_eq!(s.duration_secs(), 120);
        let sd = s.std_dev().unwrap();
        assert!((sd - (5.0f64 / 3.0).sqrt()).abs() < 1e-12);
    }

    #[test]
    fn empty_stats_are_none() {
        let s = TimeSeries::zeros(30, 0);
        assert!(s.is_empty());
        assert_eq!(s.mean(), None);
        assert_eq!(s.max(), None);
        assert_eq!(s.std_dev(), None);
    }

    #[test]
    fn cumulative_and_differences_roundtrip() {
        let s = ts(&[2.0, 0.0, 5.0, 1.0]);
        let c = s.cumulative();
        assert_eq!(c.values(), &[2.0, 2.0, 7.0, 8.0]);
        assert_eq!(c.differences().values(), s.values());
    }

    #[test]
    fn aggregate_sums_buckets() {
        let s = ts(&[1.0, 2.0, 3.0, 4.0, 5.0]);
        let a = s.aggregate(2).unwrap();
        assert_eq!(a.values(), &[3.0, 7.0, 5.0]); // trailing partial bucket kept
        assert_eq!(a.interval_secs(), 60);
        assert!(s.aggregate(0).is_err());
    }

    #[test]
    fn aggregate_preserves_total() {
        let s = ts(&[1.0, 2.0, 3.0, 4.0, 5.0, 6.0, 7.0]);
        for f in 1..=8 {
            assert_eq!(s.aggregate(f).unwrap().sum(), s.sum());
        }
    }

    #[test]
    fn slicing() {
        let s = ts(&[1.0, 2.0, 3.0, 4.0]);
        assert_eq!(s.slice(1, 3).unwrap().values(), &[2.0, 3.0]);
        assert!(s.slice(3, 2).is_err());
        assert!(s.slice(0, 5).is_err());
    }

    #[test]
    fn extend_checks_interval() {
        let mut a = ts(&[1.0]);
        let b = ts(&[2.0]);
        a.extend(&b).unwrap();
        assert_eq!(a.values(), &[1.0, 2.0]);
        let c = TimeSeries::new(60, vec![3.0]).unwrap();
        assert!(a.extend(&c).is_err());
    }

    #[test]
    fn clamp_non_negative() {
        let s = ts(&[-1.0, 0.5, -0.2]);
        assert_eq!(s.clamp_non_negative().values(), &[0.0, 0.5, 0.0]);
    }
}
