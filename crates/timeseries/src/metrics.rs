//! Forecast accuracy metrics, including the paper's asymmetric loss.

use crate::{Result, TsError};

fn check_lengths(y_true: &[f64], y_pred: &[f64]) -> Result<()> {
    if y_true.is_empty() {
        return Err(TsError::Empty);
    }
    if y_true.len() != y_pred.len() {
        return Err(TsError::LengthMismatch {
            left: y_true.len(),
            right: y_pred.len(),
        });
    }
    Ok(())
}

/// Mean absolute error (the Table 1 metric).
pub fn mae(y_true: &[f64], y_pred: &[f64]) -> Result<f64> {
    check_lengths(y_true, y_pred)?;
    Ok(y_true
        .iter()
        .zip(y_pred)
        .map(|(t, p)| (t - p).abs())
        .sum::<f64>()
        / y_true.len() as f64)
}

/// Root mean squared error.
pub fn rmse(y_true: &[f64], y_pred: &[f64]) -> Result<f64> {
    check_lengths(y_true, y_pred)?;
    let mse = y_true
        .iter()
        .zip(y_pred)
        .map(|(t, p)| (t - p).powi(2))
        .sum::<f64>()
        / y_true.len() as f64;
    Ok(mse.sqrt())
}

/// Mean absolute percentage error over intervals with nonzero ground truth.
/// Returns an error when every ground-truth value is zero.
pub fn mape(y_true: &[f64], y_pred: &[f64]) -> Result<f64> {
    check_lengths(y_true, y_pred)?;
    let mut sum = 0.0;
    let mut n = 0usize;
    for (t, p) in y_true.iter().zip(y_pred) {
        if t.abs() > f64::EPSILON {
            sum += ((t - p) / t).abs();
            n += 1;
        }
    }
    if n == 0 {
        return Err(TsError::InvalidParameter(
            "MAPE undefined: all ground truth zero".into(),
        ));
    }
    Ok(sum / n as f64 * 100.0)
}

/// The asymmetric loss of Eq. 12–15:
///
/// ```text
/// δ = y − ŷ;  δ⁺ = max(δ, 0);  δ⁻ = max(−δ, 0)
/// L = α'·mean(δ⁺) + (1 − α')·mean(δ⁻)
/// ```
///
/// With the paper's sign convention, `δ⁺` (under-prediction, `ŷ < y`) maps to
/// customer *wait* risk and `δ⁻` (over-prediction) to *idle* cost; `α'`
/// trades them off. `α' = 0.5` recovers half the MAE.
pub fn asymmetric_loss(y_true: &[f64], y_pred: &[f64], alpha_prime: f64) -> Result<f64> {
    check_lengths(y_true, y_pred)?;
    if !(0.0..=1.0).contains(&alpha_prime) {
        return Err(TsError::InvalidParameter(format!(
            "alpha' must be in [0,1], got {alpha_prime}"
        )));
    }
    let n = y_true.len() as f64;
    let mut pos = 0.0;
    let mut neg = 0.0;
    for (t, p) in y_true.iter().zip(y_pred) {
        let delta = t - p;
        if delta > 0.0 {
            pos += delta;
        } else {
            neg -= delta;
        }
    }
    Ok(alpha_prime * pos / n + (1.0 - alpha_prime) * neg / n)
}

/// Fraction of intervals where the prediction covers the demand
/// (`ŷ ≥ y`) — a proxy for the pool hit rate a forecast would sustain.
pub fn coverage(y_true: &[f64], y_pred: &[f64]) -> Result<f64> {
    check_lengths(y_true, y_pred)?;
    let covered = y_true.iter().zip(y_pred).filter(|(t, p)| p >= t).count();
    Ok(covered as f64 / y_true.len() as f64)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mae_known() {
        let t = [1.0, 2.0, 3.0];
        let p = [1.0, 3.0, 1.0];
        assert_eq!(mae(&t, &p).unwrap(), 1.0);
    }

    #[test]
    fn rmse_known() {
        let t = [0.0, 0.0];
        let p = [3.0, 4.0];
        assert!((rmse(&t, &p).unwrap() - (12.5f64).sqrt()).abs() < 1e-12);
    }

    #[test]
    fn rmse_at_least_mae() {
        let t = [1.0, 5.0, -2.0, 0.3];
        let p = [0.0, 7.0, 1.0, 0.0];
        assert!(rmse(&t, &p).unwrap() >= mae(&t, &p).unwrap());
    }

    #[test]
    fn mape_skips_zeros() {
        let t = [0.0, 2.0];
        let p = [5.0, 1.0];
        assert!((mape(&t, &p).unwrap() - 50.0).abs() < 1e-12);
        assert!(mape(&[0.0], &[1.0]).is_err());
    }

    #[test]
    fn perfect_prediction_zero_everywhere() {
        let t = [1.0, 2.0, 3.0];
        assert_eq!(mae(&t, &t).unwrap(), 0.0);
        assert_eq!(rmse(&t, &t).unwrap(), 0.0);
        assert_eq!(asymmetric_loss(&t, &t, 0.3).unwrap(), 0.0);
        assert_eq!(coverage(&t, &t).unwrap(), 1.0);
    }

    #[test]
    fn asymmetric_loss_direction() {
        let t = [10.0, 10.0];
        let under = [8.0, 8.0]; // ŷ < y → δ⁺, weighted by α'
        let over = [12.0, 12.0]; // ŷ > y → δ⁻, weighted by 1−α'
                                 // α' near 1 punishes under-prediction hard.
        let lu = asymmetric_loss(&t, &under, 0.9).unwrap();
        let lo = asymmetric_loss(&t, &over, 0.9).unwrap();
        assert!(lu > lo, "under {lu} should exceed over {lo} at alpha'=0.9");
        // And near 0 the opposite.
        let lu0 = asymmetric_loss(&t, &under, 0.1).unwrap();
        let lo0 = asymmetric_loss(&t, &over, 0.1).unwrap();
        assert!(lo0 > lu0);
    }

    #[test]
    fn asymmetric_loss_half_is_half_mae() {
        let t = [1.0, 4.0, -1.0];
        let p = [2.0, 2.0, 0.0];
        let l = asymmetric_loss(&t, &p, 0.5).unwrap();
        assert!((l - 0.5 * mae(&t, &p).unwrap()).abs() < 1e-12);
    }

    #[test]
    fn alpha_range_validated() {
        assert!(asymmetric_loss(&[1.0], &[1.0], 1.5).is_err());
        assert!(asymmetric_loss(&[1.0], &[1.0], -0.1).is_err());
    }

    #[test]
    fn length_mismatch_rejected() {
        assert!(mae(&[1.0], &[1.0, 2.0]).is_err());
        assert!(mae(&[], &[]).is_err());
    }

    #[test]
    fn coverage_counts() {
        let t = [1.0, 2.0, 3.0, 4.0];
        let p = [1.0, 1.0, 5.0, 4.0];
        assert_eq!(coverage(&t, &p).unwrap(), 0.75);
    }
}
