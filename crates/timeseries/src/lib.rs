#![warn(missing_docs)]
//! Time-series primitives for the Intelligent Pooling reproduction.
//!
//! The paper consolidates cluster-request telemetry into fixed 30-second
//! intervals (§7) and manipulates it in a handful of ways this crate
//! implements from scratch:
//!
//! * [`TimeSeries`] — an interval-indexed series of request counts/rates,
//!   with resampling, cumulative↔rate conversion, and slicing.
//! * [`metrics`] — MAE / RMSE / MAPE and the asymmetric loss of Eq. 12–15.
//! * [`filters`] — the max filter of Eq. 18 used to "fatten" demand spikes
//!   (§7.5), plus moving-average and EWMA smoothers.
//! * [`split`] — the 80-20 train/test and 90-10 train/validation protocol
//!   of §5.1.
//! * [`windowing`] — sliding (window → horizon) supervised pairs for the
//!   forecasting models.
//!
//! ```
//! use ip_timeseries::{max_filter, TimeSeries};
//!
//! // Request counts per 30-second interval.
//! let demand = TimeSeries::new(30, vec![0.0, 0.0, 9.0, 0.0, 0.0]).unwrap();
//! assert_eq!(demand.cumulative().values(), &[0.0, 0.0, 9.0, 9.0, 9.0]);
//!
//! // Eq. 18: "fatten" the spike so a mistimed forecast still covers it.
//! let fat = max_filter(&demand, 2);
//! assert_eq!(fat.values(), &[0.0, 9.0, 9.0, 9.0, 0.0]);
//! ```

pub mod decompose;
pub mod filters;
pub mod metrics;
pub mod series;
pub mod split;
pub mod windowing;

pub use decompose::{decompose, Decomposition};
pub use filters::{ewma, max_filter, moving_average};
pub use metrics::{asymmetric_loss, mae, mape, rmse};
pub use series::TimeSeries;
pub use split::{train_test_split, train_val_split};
pub use windowing::{sliding_windows, WindowPair};

/// Errors for time-series operations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TsError {
    /// Series is empty where data is required.
    Empty,
    /// Two series have different lengths where equality is required.
    LengthMismatch {
        /// Left length.
        left: usize,
        /// Right length.
        right: usize,
    },
    /// A parameter is out of its valid range.
    InvalidParameter(String),
}

impl std::fmt::Display for TsError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TsError::Empty => write!(f, "empty time series"),
            TsError::LengthMismatch { left, right } => {
                write!(f, "length mismatch: {left} vs {right}")
            }
            TsError::InvalidParameter(msg) => write!(f, "invalid parameter: {msg}"),
        }
    }
}

impl std::error::Error for TsError {}

/// Result alias for this crate.
pub type Result<T> = std::result::Result<T, TsError>;
