//! Classical seasonal decomposition: `series = trend + seasonal + residual`.
//!
//! A moving-average trend, seasonal means of the detrended series, and the
//! leftover residual — the standard additive decomposition. The workload
//! analyses use it to separate the diurnal shape (which the optimizer can
//! pre-provision for) from the noise (which only overshoot can absorb).

use crate::series::TimeSeries;
use crate::{Result, TsError};

/// An additive decomposition of a series.
#[derive(Debug, Clone, PartialEq)]
pub struct Decomposition {
    /// Centered moving-average trend (window = one season).
    pub trend: Vec<f64>,
    /// Seasonal component, one value per phase, tiled over the series.
    pub seasonal: Vec<f64>,
    /// `series − trend − seasonal`.
    pub residual: Vec<f64>,
    /// Season length used.
    pub season: usize,
}

impl Decomposition {
    /// The seasonal profile (one value per phase, mean-centered).
    pub fn seasonal_profile(&self) -> &[f64] {
        &self.seasonal[..self.season.min(self.seasonal.len())]
    }

    /// Fraction of total variance explained by trend + seasonality
    /// (1 − var(residual)/var(series)); clamped to `[0, 1]`.
    pub fn explained_variance(&self, original: &[f64]) -> f64 {
        let var = |v: &[f64]| {
            let n = v.len() as f64;
            if n < 2.0 {
                return 0.0;
            }
            let mean = v.iter().sum::<f64>() / n;
            v.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / n
        };
        let total = var(original);
        if total <= 0.0 {
            return 1.0;
        }
        (1.0 - var(&self.residual) / total).clamp(0.0, 1.0)
    }
}

/// Decomposes a series additively with the given season length.
///
/// Requires at least two full seasons. The trend at the boundaries (where
/// the centered window is clipped) uses the partial-window average.
pub fn decompose(series: &TimeSeries, season: usize) -> Result<Decomposition> {
    if season < 2 {
        return Err(TsError::InvalidParameter("season must be >= 2".into()));
    }
    let v = series.values();
    let n = v.len();
    if n < 2 * season {
        return Err(TsError::InvalidParameter(format!(
            "need at least two seasons ({} points), got {n}",
            2 * season
        )));
    }

    // Centered moving average of one season. For even season lengths the
    // classical 2×m MA is used (endpoints half-weighted) so every phase is
    // weighted equally; edges renormalize over the clipped window.
    let half = season / 2;
    let trend: Vec<f64> = (0..n)
        .map(|t| {
            let mut acc = 0.0;
            let mut weight_sum = 0.0;
            let lo = t as i64 - half as i64;
            let hi = t + half;
            for (k, pos) in (lo..=hi as i64).enumerate() {
                if pos < 0 || pos >= n as i64 {
                    continue;
                }
                let w = if season.is_multiple_of(2) && (k == 0 || k == (hi as i64 - lo) as usize) {
                    0.5
                } else {
                    1.0
                };
                acc += w * v[pos as usize];
                weight_sum += w;
            }
            acc / weight_sum
        })
        .collect();

    // Seasonal means of the detrended series, centered to sum to zero.
    let mut phase_sum = vec![0.0f64; season];
    let mut phase_count = vec![0usize; season];
    for t in 0..n {
        phase_sum[t % season] += v[t] - trend[t];
        phase_count[t % season] += 1;
    }
    let mut phase_mean: Vec<f64> = phase_sum
        .iter()
        .zip(&phase_count)
        .map(|(s, &c)| if c > 0 { s / c as f64 } else { 0.0 })
        .collect();
    let grand = phase_mean.iter().sum::<f64>() / season as f64;
    for p in phase_mean.iter_mut() {
        *p -= grand;
    }

    let seasonal: Vec<f64> = (0..n).map(|t| phase_mean[t % season]).collect();
    let residual: Vec<f64> = (0..n).map(|t| v[t] - trend[t] - seasonal[t]).collect();
    Ok(Decomposition {
        trend,
        seasonal,
        residual,
        season,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ts(vals: Vec<f64>) -> TimeSeries {
        TimeSeries::new(30, vals).unwrap()
    }

    #[test]
    fn components_sum_back_to_series() {
        let vals: Vec<f64> = (0..60)
            .map(|t| 5.0 + [0.0, 3.0, -1.0, 1.0][t % 4] + 0.05 * t as f64)
            .collect();
        let s = ts(vals.clone());
        let d = decompose(&s, 4).unwrap();
        for (t, &v) in vals.iter().enumerate() {
            let rebuilt = d.trend[t] + d.seasonal[t] + d.residual[t];
            assert!((rebuilt - v).abs() < 1e-9);
        }
    }

    #[test]
    fn pure_seasonal_signal_fully_explained() {
        let vals: Vec<f64> = (0..80).map(|t| 10.0 + [2.0, -2.0][t % 2]).collect();
        let s = ts(vals.clone());
        let d = decompose(&s, 2).unwrap();
        assert!(d.explained_variance(&vals) > 0.95);
        // Profile recovers the alternation (centered).
        let profile = d.seasonal_profile();
        assert!((profile[0] - 2.0).abs() < 0.2, "{profile:?}");
        assert!((profile[1] + 2.0).abs() < 0.2);
    }

    #[test]
    fn seasonal_component_is_centered_and_tiled() {
        let vals: Vec<f64> = (0..48).map(|t| [1.0, 5.0, 3.0][t % 3]).collect();
        let d = decompose(&ts(vals), 3).unwrap();
        let profile_sum: f64 = d.seasonal_profile().iter().sum();
        assert!(profile_sum.abs() < 1e-9);
        // Tiling: seasonal[t] == seasonal[t + season].
        for t in 0..45 {
            assert_eq!(d.seasonal[t], d.seasonal[t + 3]);
        }
    }

    #[test]
    fn trend_follows_drift() {
        let vals: Vec<f64> = (0..100).map(|t| t as f64 * 0.5).collect();
        let d = decompose(&ts(vals), 4).unwrap();
        // Interior trend tracks the line closely.
        for t in 10..90 {
            assert!(
                (d.trend[t] - t as f64 * 0.5).abs() < 0.6,
                "t={t}: {}",
                d.trend[t]
            );
        }
    }

    #[test]
    fn validation() {
        let s = ts(vec![1.0; 10]);
        assert!(decompose(&s, 1).is_err());
        assert!(decompose(&s, 6).is_err()); // < two seasons
        assert!(decompose(&s, 5).is_ok());
    }
}
