//! Smoothing filters, centered on the paper's max filter (Eq. 18).

use crate::series::TimeSeries;
use crate::{Result, TsError};

/// The max filter of Eq. 18: replaces each point with the maximum over a
/// window of `smoothing_factor + 1` points centered (half-rounded) on it,
/// "fattening" demand spikes so the forecaster and optimizer cannot miss
/// them (§7.5, Fig. 7).
///
/// With `SF = 0` this is the identity. Near the boundaries the window is
/// clipped to the series, matching the second branch of Eq. 18 at the start.
pub fn max_filter(series: &TimeSeries, smoothing_factor: usize) -> TimeSeries {
    let half = smoothing_factor / 2 + usize::from(smoothing_factor % 2 == 1);
    let v = series.values();
    let n = v.len();
    let out: Vec<f64> = (0..n)
        .map(|t| {
            let lo = t.saturating_sub(half);
            let hi = (t + half + 1).min(n);
            v[lo..hi].iter().copied().fold(f64::NEG_INFINITY, f64::max)
        })
        .collect();
    TimeSeries::new(series.interval_secs(), out).expect("interval preserved")
}

/// Centered moving average with clipped boundaries; window of
/// `2·half_window + 1` points.
pub fn moving_average(series: &TimeSeries, half_window: usize) -> TimeSeries {
    let v = series.values();
    let n = v.len();
    let out: Vec<f64> = (0..n)
        .map(|t| {
            let lo = t.saturating_sub(half_window);
            let hi = (t + half_window + 1).min(n);
            v[lo..hi].iter().sum::<f64>() / (hi - lo) as f64
        })
        .collect();
    TimeSeries::new(series.interval_secs(), out).expect("interval preserved")
}

/// Exponentially weighted moving average with smoothing factor
/// `alpha ∈ (0, 1]` (`alpha = 1` is the identity).
pub fn ewma(series: &TimeSeries, alpha: f64) -> Result<TimeSeries> {
    if !(0.0..=1.0).contains(&alpha) || alpha == 0.0 {
        return Err(TsError::InvalidParameter(format!(
            "alpha must be in (0,1], got {alpha}"
        )));
    }
    let mut out = Vec::with_capacity(series.len());
    let mut state: Option<f64> = None;
    for &v in series.values() {
        let next = match state {
            None => v,
            Some(s) => alpha * v + (1.0 - alpha) * s,
        };
        out.push(next);
        state = Some(next);
    }
    TimeSeries::new(series.interval_secs(), out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ts(vals: &[f64]) -> TimeSeries {
        TimeSeries::new(30, vals.to_vec()).unwrap()
    }

    #[test]
    fn max_filter_zero_sf_is_identity() {
        let s = ts(&[1.0, 5.0, 2.0, 0.0]);
        assert_eq!(max_filter(&s, 0).values(), s.values());
    }

    #[test]
    fn max_filter_fattens_spike() {
        let s = ts(&[0.0, 0.0, 10.0, 0.0, 0.0]);
        let f = max_filter(&s, 2);
        assert_eq!(f.values(), &[0.0, 10.0, 10.0, 10.0, 0.0]);
        let f2 = max_filter(&s, 4);
        assert_eq!(f2.values(), &[10.0, 10.0, 10.0, 10.0, 10.0]);
    }

    #[test]
    fn max_filter_dominates_input() {
        let s = ts(&[3.0, 1.0, 4.0, 1.0, 5.0, 9.0, 2.0, 6.0]);
        for sf in 0..6 {
            let f = max_filter(&s, sf);
            for (a, b) in f.values().iter().zip(s.values()) {
                assert!(a >= b, "filtered {a} below raw {b} at SF={sf}");
            }
        }
    }

    #[test]
    fn max_filter_monotone_in_sf() {
        let s = ts(&[3.0, 1.0, 4.0, 1.0, 5.0, 9.0, 2.0, 6.0]);
        for sf in 0..5 {
            let small = max_filter(&s, sf);
            let big = max_filter(&s, sf + 1);
            for (a, b) in big.values().iter().zip(small.values()) {
                assert!(a >= b);
            }
        }
    }

    #[test]
    fn max_filter_bounded_by_global_max() {
        let s = ts(&[3.0, 1.0, 4.0]);
        let f = max_filter(&s, 10);
        assert!(f.values().iter().all(|&v| v == 4.0));
    }

    #[test]
    fn moving_average_constant_series_unchanged() {
        let s = ts(&[2.0; 6]);
        assert_eq!(moving_average(&s, 2).values(), s.values());
    }

    #[test]
    fn moving_average_smooths() {
        let s = ts(&[0.0, 10.0, 0.0]);
        let f = moving_average(&s, 1);
        assert_eq!(f.values(), &[5.0, 10.0 / 3.0, 5.0]);
    }

    #[test]
    fn ewma_smooths_and_validates() {
        let s = ts(&[0.0, 10.0]);
        let f = ewma(&s, 0.5).unwrap();
        assert_eq!(f.values(), &[0.0, 5.0]);
        assert!(ewma(&s, 0.0).is_err());
        assert!(ewma(&s, 1.5).is_err());
        // alpha = 1 is the identity.
        assert_eq!(ewma(&s, 1.0).unwrap().values(), s.values());
    }
}
