//! Sliding-window construction of supervised (input, target) pairs.
//!
//! The deep forecasting models of §5 are trained on pairs of a
//! `window`-length input slice and the following `horizon`-length target
//! slice, slid across the training series.

use crate::series::TimeSeries;
use crate::{Result, TsError};

/// One supervised pair: `input` covers `[start, start+window)` and `target`
/// covers `[start+window, start+window+horizon)`.
#[derive(Debug, Clone, PartialEq)]
pub struct WindowPair {
    /// Interval index of the first input point in the source series.
    pub start: usize,
    /// Input slice of length `window`.
    pub input: Vec<f64>,
    /// Target slice of length `horizon`.
    pub target: Vec<f64>,
}

/// Produces all (input, target) pairs with the given stride.
///
/// Returns an error when the series is shorter than `window + horizon`, or
/// any size parameter is zero.
pub fn sliding_windows(
    series: &TimeSeries,
    window: usize,
    horizon: usize,
    stride: usize,
) -> Result<Vec<WindowPair>> {
    if window == 0 || horizon == 0 || stride == 0 {
        return Err(TsError::InvalidParameter(
            "window, horizon and stride must all be > 0".into(),
        ));
    }
    let needed = window + horizon;
    if series.len() < needed {
        return Err(TsError::InvalidParameter(format!(
            "series length {} < window {} + horizon {}",
            series.len(),
            window,
            horizon
        )));
    }
    let v = series.values();
    let mut out = Vec::new();
    let mut start = 0usize;
    while start + needed <= v.len() {
        out.push(WindowPair {
            start,
            input: v[start..start + window].to_vec(),
            target: v[start + window..start + needed].to_vec(),
        });
        start += stride;
    }
    Ok(out)
}

/// Normalization statistics computed on training inputs and applied at
/// inference (plain z-score; the models' convention).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Normalizer {
    /// Mean of the fitted data.
    pub mean: f64,
    /// Standard deviation of the fitted data (floored to avoid division by
    /// zero on constant series).
    pub std: f64,
}

impl Normalizer {
    /// Fits mean/std on the given values.
    pub fn fit(values: &[f64]) -> Result<Self> {
        if values.is_empty() {
            return Err(TsError::Empty);
        }
        let n = values.len() as f64;
        let mean = values.iter().sum::<f64>() / n;
        let var = values.iter().map(|v| (v - mean).powi(2)).sum::<f64>() / n;
        Ok(Self {
            mean,
            std: var.sqrt().max(1e-9),
        })
    }

    /// Applies the transform `(v − mean) / std`.
    pub fn transform(&self, values: &[f64]) -> Vec<f64> {
        values.iter().map(|v| (v - self.mean) / self.std).collect()
    }

    /// Inverts the transform.
    pub fn inverse(&self, values: &[f64]) -> Vec<f64> {
        values.iter().map(|v| v * self.std + self.mean).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ts(n: usize) -> TimeSeries {
        TimeSeries::new(30, (0..n).map(|i| i as f64).collect()).unwrap()
    }

    #[test]
    fn windows_cover_series() {
        let s = ts(10);
        let pairs = sliding_windows(&s, 3, 2, 1).unwrap();
        assert_eq!(pairs.len(), 6);
        assert_eq!(pairs[0].input, vec![0.0, 1.0, 2.0]);
        assert_eq!(pairs[0].target, vec![3.0, 4.0]);
        assert_eq!(pairs[5].input, vec![5.0, 6.0, 7.0]);
        assert_eq!(pairs[5].target, vec![8.0, 9.0]);
    }

    #[test]
    fn stride_skips() {
        let s = ts(10);
        let pairs = sliding_windows(&s, 3, 2, 3).unwrap();
        assert_eq!(pairs.len(), 2);
        assert_eq!(pairs[1].start, 3);
    }

    #[test]
    fn too_short_rejected() {
        let s = ts(4);
        assert!(sliding_windows(&s, 3, 2, 1).is_err());
        // Exactly fitting yields one pair.
        let s = ts(5);
        assert_eq!(sliding_windows(&s, 3, 2, 1).unwrap().len(), 1);
    }

    #[test]
    fn zero_parameters_rejected() {
        let s = ts(10);
        assert!(sliding_windows(&s, 0, 2, 1).is_err());
        assert!(sliding_windows(&s, 3, 0, 1).is_err());
        assert!(sliding_windows(&s, 3, 2, 0).is_err());
    }

    #[test]
    fn normalizer_roundtrip() {
        let vals = [1.0, 2.0, 3.0, 4.0];
        let nz = Normalizer::fit(&vals).unwrap();
        let t = nz.transform(&vals);
        // Zero mean after transform.
        assert!(t.iter().sum::<f64>().abs() < 1e-12);
        let back = nz.inverse(&t);
        for (a, b) in back.iter().zip(&vals) {
            assert!((a - b).abs() < 1e-12);
        }
    }

    #[test]
    fn normalizer_constant_series_safe() {
        let nz = Normalizer::fit(&[5.0, 5.0, 5.0]).unwrap();
        let t = nz.transform(&[5.0]);
        assert!(t[0].abs() < 1e-6);
        assert!(Normalizer::fit(&[]).is_err());
    }
}
