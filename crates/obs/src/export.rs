//! Exporters: Prometheus text exposition format (plus the small parser the
//! round-trip tests and CI smoke use) and JSONL trace streams.

use crate::metrics::{MetricValue, Registry};
use crate::trace::Trace;
use std::fmt::Write as _;

// ---------------------------------------------------------------------------
// Prometheus text exposition
// ---------------------------------------------------------------------------

/// Renders every series of `registry` in the Prometheus text exposition
/// format (v0.0.4): `# HELP`/`# TYPE` headers, label sets, histograms
/// expanded into cumulative `_bucket{le=…}` samples plus `_sum` and
/// `_count`.
///
/// The registry is lock-sharded; [`Registry::snapshot`] merges the shards
/// back into full key order before any byte is written, so rendered output
/// is deterministic (and identical to a single-map registry) no matter how
/// series hash across shards. Rendering itself holds **no** registry lock
/// — the snapshot is taken shard by shard up front and formatted after,
/// so a slow scrape reader never stalls hot-path writers.
pub fn render_prometheus(registry: &Registry) -> String {
    render_snapshot(&registry.snapshot(), &registry.help_snapshot())
}

/// Renders an already-taken snapshot (key-ordered, as
/// [`Registry::snapshot`] returns) with the given `(family, help)` pairs.
/// Split out of [`render_prometheus`] so callers holding a snapshot —
/// bench reporters, merge pipelines — can format without re-locking.
pub fn render_snapshot(
    snapshot: &[(crate::metrics::SeriesKey, MetricValue)],
    help_pairs: &[(String, String)],
) -> String {
    let helps: std::collections::BTreeMap<&str, &str> = help_pairs
        .iter()
        .map(|(k, v)| (k.as_str(), v.as_str()))
        .collect();
    // ~96 bytes/sample line is the observed steady state; preallocating
    // keeps a large scrape from repeatedly doubling the buffer.
    let mut out = String::with_capacity(128 + snapshot.len() * 96);
    let mut last_family = String::new();
    for (key, value) in snapshot {
        if key.name != last_family {
            let kind = match &value {
                MetricValue::Counter(_) => "counter",
                MetricValue::Gauge(_) => "gauge",
                MetricValue::Histogram(_) => "histogram",
            };
            if let Some(help) = helps.get(key.name.as_str()) {
                let _ = writeln!(out, "# HELP {} {}", key.name, escape_help(help));
            }
            let _ = writeln!(out, "# TYPE {} {kind}", key.name);
            last_family = key.name.clone();
        }
        match value {
            MetricValue::Counter(v) | MetricValue::Gauge(v) => {
                let _ = writeln!(
                    out,
                    "{}{} {}",
                    key.name,
                    format_labels(&key.labels, None),
                    format_value(*v)
                );
            }
            MetricValue::Histogram(h) => {
                let cumulative = h.cumulative();
                for (i, &cum) in cumulative.iter().enumerate() {
                    let le = h
                        .bounds
                        .get(i)
                        .map(|b| format_value(*b))
                        .unwrap_or_else(|| "+Inf".to_string());
                    let _ = writeln!(
                        out,
                        "{}_bucket{} {cum}",
                        key.name,
                        format_labels(&key.labels, Some(&le))
                    );
                }
                let _ = writeln!(
                    out,
                    "{}_sum{} {}",
                    key.name,
                    format_labels(&key.labels, None),
                    format_value(h.sum)
                );
                let _ = writeln!(
                    out,
                    "{}_count{} {}",
                    key.name,
                    format_labels(&key.labels, None),
                    h.count
                );
            }
        }
    }
    out
}

fn format_value(v: f64) -> String {
    if v.is_nan() {
        "NaN".to_string()
    } else if v == f64::INFINITY {
        "+Inf".to_string()
    } else if v == f64::NEG_INFINITY {
        "-Inf".to_string()
    } else {
        format!("{v}")
    }
}

fn format_labels(labels: &[(String, String)], le: Option<&str>) -> String {
    if labels.is_empty() && le.is_none() {
        return String::new();
    }
    let mut out = String::from("{");
    let mut first = true;
    for (k, v) in labels {
        if !first {
            out.push(',');
        }
        first = false;
        let _ = write!(out, "{k}=\"{}\"", escape_label(v));
    }
    if let Some(le) = le {
        if !first {
            out.push(',');
        }
        let _ = write!(out, "le=\"{le}\"");
    }
    out.push('}');
    out
}

fn escape_label(v: &str) -> String {
    v.replace('\\', "\\\\")
        .replace('"', "\\\"")
        .replace('\n', "\\n")
}

/// `# HELP` text escapes only backslash and line feed (the exposition spec
/// — quotes stay literal, unlike label values).
fn escape_help(v: &str) -> String {
    v.replace('\\', "\\\\").replace('\n', "\\n")
}

fn unescape_help(v: &str) -> String {
    let mut out = String::with_capacity(v.len());
    let mut chars = v.chars();
    while let Some(c) = chars.next() {
        if c == '\\' {
            match chars.next() {
                Some('n') => out.push('\n'),
                Some(other) => out.push(other),
                None => out.push('\\'),
            }
        } else {
            out.push(c);
        }
    }
    out
}

/// One sample parsed back out of the text format.
#[derive(Debug, Clone, PartialEq)]
pub struct ParsedSample {
    /// Sample name as written (histograms appear as `*_bucket`, `*_sum`,
    /// `*_count`).
    pub name: String,
    /// Label pairs in written order (`le` included).
    pub labels: Vec<(String, String)>,
    /// Sample value.
    pub value: f64,
}

/// A fully parsed exposition: samples plus the `# HELP` text per family
/// (unescaped).
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Exposition {
    /// Sample lines in file order.
    pub samples: Vec<ParsedSample>,
    /// `(family name, help text)` pairs in file order.
    pub helps: Vec<(String, String)>,
}

/// Parses the Prometheus text format produced by [`render_prometheus`]
/// (and by real exporters): `# TYPE` comments are skipped, `# HELP` lines
/// are collected and unescaped, every sample line must be
/// `name[{labels}] value`.
pub fn parse_exposition(text: &str) -> Result<Exposition, String> {
    let mut exposition = Exposition::default();
    for (lineno, raw) in text.lines().enumerate() {
        let line = raw.trim();
        if line.is_empty() {
            continue;
        }
        if let Some(rest) = line.strip_prefix('#') {
            let rest = rest.trim_start();
            if let Some(body) = rest.strip_prefix("HELP") {
                let body = body.trim_start();
                let (name, help) = body.split_once(char::is_whitespace).unwrap_or((body, ""));
                if !name.is_empty() {
                    exposition
                        .helps
                        .push((name.to_string(), unescape_help(help)));
                }
            }
            continue;
        }
        let err = |msg: &str| format!("line {}: {msg}: {raw:?}", lineno + 1);
        let (name_and_labels, value_text) = line
            .rsplit_once(|c: char| c.is_whitespace())
            .ok_or_else(|| err("expected `name value`"))?;
        let value = match value_text {
            "+Inf" => f64::INFINITY,
            "-Inf" => f64::NEG_INFINITY,
            "NaN" => f64::NAN,
            other => other.parse::<f64>().map_err(|_| err("unparseable value"))?,
        };
        let name_and_labels = name_and_labels.trim();
        let (name, labels) = match name_and_labels.split_once('{') {
            None => (name_and_labels.to_string(), Vec::new()),
            Some((name, rest)) => {
                let body = rest
                    .strip_suffix('}')
                    .ok_or_else(|| err("unterminated label set"))?;
                (name.to_string(), parse_labels(body).map_err(|m| err(&m))?)
            }
        };
        if name.is_empty()
            || !name
                .chars()
                .all(|c| c.is_alphanumeric() || c == '_' || c == ':')
        {
            return Err(err("bad metric name"));
        }
        exposition.samples.push(ParsedSample {
            name,
            labels,
            value,
        });
    }
    Ok(exposition)
}

/// [`parse_exposition`] returning only the samples — the original API the
/// round-trip tests and CI smoke were written against.
pub fn parse_prometheus(text: &str) -> Result<Vec<ParsedSample>, String> {
    parse_exposition(text).map(|e| e.samples)
}

fn parse_labels(body: &str) -> Result<Vec<(String, String)>, String> {
    let mut labels = Vec::new();
    let mut rest = body.trim();
    while !rest.is_empty() {
        let eq = rest.find('=').ok_or("label without `=`")?;
        let key = rest[..eq].trim().to_string();
        rest = rest[eq + 1..].trim_start();
        let mut chars = rest.char_indices();
        if chars.next().map(|(_, c)| c) != Some('"') {
            return Err("label value not quoted".into());
        }
        let mut value = String::new();
        let mut end = None;
        let mut escaped = false;
        for (i, c) in chars {
            if escaped {
                value.push(match c {
                    'n' => '\n',
                    other => other,
                });
                escaped = false;
            } else if c == '\\' {
                escaped = true;
            } else if c == '"' {
                end = Some(i);
                break;
            } else {
                value.push(c);
            }
        }
        let end = end.ok_or("unterminated label value")?;
        labels.push((key, value));
        rest = rest[end + 1..].trim_start();
        rest = rest.strip_prefix(',').unwrap_or(rest).trim_start();
    }
    Ok(labels)
}

// ---------------------------------------------------------------------------
// JSONL traces
// ---------------------------------------------------------------------------

/// Renders a trace as JSONL: one JSON object per line, spans first (close
/// order), then events (emission order), then a final `summary` line.
///
/// Span lines: `{"type":"span","id":…,"parent":…|null,"name":…,
/// "thread":…,"start_us":…,"dur_us":…}`. Event lines: `{"type":"event",
/// "name":…,"t":…,"fields":{…}}` with `t` in logical (simulator) seconds.
pub fn trace_to_jsonl(trace: &Trace) -> String {
    let mut out = String::new();
    for s in &trace.spans {
        let _ = write!(out, "{{\"type\":\"span\",\"id\":{},\"parent\":", s.id);
        match s.parent {
            Some(p) => {
                let _ = write!(out, "{p}");
            }
            None => out.push_str("null"),
        }
        let _ = writeln!(
            out,
            ",\"name\":{},\"thread\":{},\"start_us\":{},\"dur_us\":{}}}",
            json_string(&s.name),
            json_string(&s.thread),
            s.start_ns / 1_000,
            s.dur_ns / 1_000
        );
    }
    for e in &trace.events {
        let _ = write!(
            out,
            "{{\"type\":\"event\",\"name\":{},\"t\":{},\"fields\":{{",
            json_string(&e.name),
            e.t
        );
        for (i, (k, v)) in e.fields.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(out, "{}:{}", json_string(k), json_number(*v));
        }
        out.push_str("}}\n");
    }
    let _ = writeln!(
        out,
        "{{\"type\":\"summary\",\"spans\":{},\"events\":{},\"dropped\":{}}}",
        trace.spans.len(),
        trace.events.len(),
        trace.dropped
    );
    out
}

// ---------------------------------------------------------------------------
// Chrome trace_event traces
// ---------------------------------------------------------------------------

/// Renders a trace in the Chrome `trace_event` JSON-array format, loadable
/// by `chrome://tracing` and Perfetto.
///
/// Wall-clock spans become `ph:"X"` complete events under `pid` 1, one
/// `tid` per OS thread (first-appearance order) with `ph:"M"` `thread_name`
/// metadata. Logical-clock simulator events become `ph:"i"` instants under
/// `pid` 2 with `ts` scaled so one logical second reads as one microsecond
/// on the timeline; their numeric fields ride along in `args`.
pub fn trace_to_chrome(trace: &Trace) -> String {
    let mut out = String::from("[");
    let mut first = true;
    let push = |out: &mut String, first: &mut bool, record: String| {
        if !*first {
            out.push(',');
        }
        *first = false;
        out.push('\n');
        out.push_str(&record);
    };

    push(
        &mut out,
        &mut first,
        format!(
            "{{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":1,\"tid\":0,\"args\":{{\"name\":{}}}}}",
            json_string("wall-clock spans")
        ),
    );
    if !trace.events.is_empty() {
        push(
            &mut out,
            &mut first,
            format!(
                "{{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":2,\"tid\":0,\"args\":{{\"name\":{}}}}}",
                json_string("logical events")
            ),
        );
    }

    let mut tids: Vec<String> = Vec::new();
    for s in &trace.spans {
        let tid = match tids.iter().position(|t| *t == s.thread) {
            Some(i) => i + 1,
            None => {
                tids.push(s.thread.clone());
                let tid = tids.len();
                push(
                    &mut out,
                    &mut first,
                    format!(
                        "{{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":1,\"tid\":{tid},\
                         \"args\":{{\"name\":{}}}}}",
                        json_string(&s.thread)
                    ),
                );
                tid
            }
        };
        push(
            &mut out,
            &mut first,
            format!(
                "{{\"name\":{},\"ph\":\"X\",\"pid\":1,\"tid\":{tid},\"ts\":{},\"dur\":{},\
                 \"args\":{{\"id\":{}}}}}",
                json_string(&s.name),
                s.start_ns / 1_000,
                s.dur_ns / 1_000,
                s.id
            ),
        );
    }

    for e in &trace.events {
        let mut args = String::from("{");
        for (i, (k, v)) in e.fields.iter().enumerate() {
            if i > 0 {
                args.push(',');
            }
            let _ = write!(args, "{}:{}", json_string(k), json_number(*v));
        }
        args.push('}');
        push(
            &mut out,
            &mut first,
            format!(
                "{{\"name\":{},\"ph\":\"i\",\"pid\":2,\"tid\":1,\"ts\":{},\"s\":\"g\",\
                 \"args\":{args}}}",
                json_string(&e.name),
                e.t.saturating_mul(1_000_000)
            ),
        );
    }

    out.push_str("\n]\n");
    out
}

pub(crate) fn json_string(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// JSON has no NaN/Inf; emit them as null (matching serde_json) and keep a
/// fraction marker on integral floats so typed parsers see a float.
pub(crate) fn json_number(v: f64) -> String {
    if !v.is_finite() {
        "null".to_string()
    } else if v.fract() == 0.0 && v.abs() < 1e15 {
        format!("{v:.1}")
    } else {
        format!("{v}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::trace::{EventRecord, SpanRecord};

    fn sample_registry() -> Registry {
        let reg = Registry::new();
        reg.counter_add("pool_hits_total", &[("pool", "east")], 12.0);
        reg.counter_add("pool_hits_total", &[("pool", "west")], 3.0);
        reg.gauge_set("pool_size", &[], 8.0);
        reg.observe_with("wait_seconds", &[], &[1.0, 30.0], 0.0);
        reg.observe_with("wait_seconds", &[], &[1.0, 30.0], 17.0);
        reg.observe_with("wait_seconds", &[], &[1.0, 30.0], 95.0);
        reg
    }

    #[test]
    fn render_produces_expected_lines() {
        let text = render_prometheus(&sample_registry());
        assert!(text.contains("# TYPE pool_hits_total counter"));
        assert!(text.contains("pool_hits_total{pool=\"east\"} 12"));
        assert!(text.contains("# TYPE pool_size gauge"));
        assert!(text.contains("pool_size 8"));
        assert!(text.contains("wait_seconds_bucket{le=\"1\"} 1"));
        assert!(text.contains("wait_seconds_bucket{le=\"30\"} 2"));
        assert!(text.contains("wait_seconds_bucket{le=\"+Inf\"} 3"));
        assert!(text.contains("wait_seconds_sum 112"));
        assert!(text.contains("wait_seconds_count 3"));
    }

    #[test]
    fn rendered_text_parses_back() {
        let text = render_prometheus(&sample_registry());
        let samples = parse_prometheus(&text).unwrap();
        // 2 counters + 1 gauge + (3 buckets + sum + count) = 8 samples.
        assert_eq!(samples.len(), 8);
        let east = samples
            .iter()
            .find(|s| s.name == "pool_hits_total" && s.labels == [("pool".into(), "east".into())])
            .unwrap();
        assert_eq!(east.value, 12.0);
        let inf_bucket = samples
            .iter()
            .find(|s| s.name == "wait_seconds_bucket" && s.labels[0].1 == "+Inf")
            .unwrap();
        assert_eq!(inf_bucket.value, 3.0);
    }

    #[test]
    fn label_escaping_round_trips() {
        let reg = Registry::new();
        reg.counter_add("c_total", &[("path", "a\"b\\c\nd")], 1.0);
        let text = render_prometheus(&reg);
        let samples = parse_prometheus(&text).unwrap();
        assert_eq!(samples[0].labels[0].1, "a\"b\\c\nd");
    }

    #[test]
    fn parser_rejects_malformed_lines() {
        assert!(parse_prometheus("no_value\n").is_err());
        assert!(parse_prometheus("name{unclosed=\"x\" 1\n").is_err());
        assert!(parse_prometheus("bad name 1\n").is_err());
        assert!(parse_prometheus("name abc\n").is_err());
    }

    #[test]
    fn jsonl_escapes_and_structures() {
        let trace = Trace {
            spans: vec![SpanRecord {
                id: 1,
                parent: None,
                name: "a\"b".into(),
                thread: "main".into(),
                start_ns: 1_500,
                dur_ns: 2_000,
            }],
            events: vec![EventRecord {
                name: "tick".into(),
                t: 30,
                fields: vec![("hits".into(), 2.0), ("rate".into(), f64::NAN)],
            }],
            dropped: 0,
        };
        let jsonl = trace_to_jsonl(&trace);
        let lines: Vec<&str> = jsonl.lines().collect();
        assert_eq!(lines.len(), 3);
        assert!(lines[0].contains("\"name\":\"a\\\"b\""));
        assert!(lines[0].contains("\"start_us\":1"));
        assert!(lines[1].contains("\"hits\":2.0"));
        assert!(lines[1].contains("\"rate\":null"));
        assert!(lines[2].contains("\"spans\":1"));
    }
}
