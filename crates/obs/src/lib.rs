#![warn(missing_docs)]
//! Workspace-wide observability: metrics, traces, and exporters (§7.5).
//!
//! The paper's production system "tracks the Intelligent Pooling status …
//! in real-time" on dashboards backed by a telemetry store; this crate is
//! the reproduction's measurement substrate. It is deliberately std-only
//! (the build environment is offline) and splits into three layers:
//!
//! * [`metrics`] — a thread-safe registry of counters, gauges, and
//!   fixed-bucket mergeable histograms, all with label support.
//! * [`trace`] — hierarchical wall-clock spans (guard objects recording
//!   durations into a parent/child tree, one stack per thread) plus a
//!   logical-clock event log for simulator time, so simulation traces stay
//!   deterministic under any host load.
//! * [`export`] — the Prometheus text exposition format (with an in-repo
//!   parser used by the round-trip tests and CI smoke), and JSONL event
//!   streams for spans and events.
//!
//! Three service-observability layers sit on top (PR 8):
//!
//! * [`log`] — structured leveled JSONL logging, gated by `IP_LOG`
//!   (default `warn`), rate-limited per `(target, level)`.
//! * [`slo`] — multi-window multi-burn-rate SLO evaluation over logical
//!   time (hit-rate and wait objectives per pool).
//! * [`flight`] — a bounded flight recorder of snapshots, notes, and
//!   recent logs, dumped as schema-stable `ip-flight/1` JSON.
//!
//! # Gating
//!
//! Everything is off by default. The `IP_OBS` environment variable (read
//! once, overridable with [`set_enabled`]) turns recording on; when off,
//! every entry point is a single relaxed atomic load followed by an early
//! return, so instrumented hot paths cost nothing measurable. The
//! workspace's inertness tests assert bit-identical simulation reports and
//! trained network parameters with observability on and off — recording
//! never touches RNG streams or numeric state.
//!
//! ```
//! ip_obs::set_enabled(true);
//! {
//!     let _outer = ip_obs::span("optimizer");
//!     let _inner = ip_obs::span("dp_solve");
//!     ip_obs::counter_inc("solves_total", &[("kind", "dp")]);
//!     ip_obs::observe("solve_seconds", &[], 0.004);
//! }
//! let prom = ip_obs::export::render_prometheus(ip_obs::global());
//! assert!(prom.contains("solves_total{kind=\"dp\"} 1"));
//! let trace = ip_obs::take_trace();
//! assert_eq!(trace.spans.len(), 2);
//! ip_obs::set_enabled(false);
//! ```

pub mod capture;
pub mod export;
pub mod flight;
pub mod log;
pub mod metrics;
pub mod slo;
pub mod trace;

pub use capture::{capture, fold_ordered, CaptureGuard, LocalObs};
pub use metrics::{Histogram, MetricValue, Registry, SeriesKey, DEFAULT_BUCKETS};
pub use slo::{ObjectiveStatus, Severity, SloSample, SloSpec, SloStatus, SloTracker, WindowBurn};
pub use trace::{EventRecord, SpanGuard, SpanRecord, Trace};

use std::sync::atomic::{AtomicU8, Ordering};
use std::sync::OnceLock;

/// 0 = uninitialised, 1 = off, 2 = on.
static STATE: AtomicU8 = AtomicU8::new(0);

/// Whether observability is recording. First call reads `IP_OBS` (`1` or
/// `true` enables); afterwards it is one relaxed atomic load.
#[inline]
pub fn enabled() -> bool {
    match STATE.load(Ordering::Relaxed) {
        2 => true,
        1 => false,
        _ => init_from_env(),
    }
}

#[cold]
fn init_from_env() -> bool {
    let on = std::env::var("IP_OBS")
        .map(|v| matches!(v.trim(), "1" | "true" | "on"))
        .unwrap_or(false);
    STATE.store(if on { 2 } else { 1 }, Ordering::Relaxed);
    on
}

/// Overrides the `IP_OBS` gate (used by the CLI's `--metrics-out` /
/// `--trace-out` flags and by tests).
pub fn set_enabled(on: bool) {
    STATE.store(if on { 2 } else { 1 }, Ordering::Relaxed);
}

/// The process-wide metric registry.
pub fn global() -> &'static Registry {
    static GLOBAL: OnceLock<Registry> = OnceLock::new();
    GLOBAL.get_or_init(Registry::new)
}

/// Adds `v` to a counter in the global registry — or the thread's active
/// [`capture`] window, if any (no-op when disabled).
#[inline]
pub fn counter_add(name: &str, labels: &[(&str, &str)], v: f64) {
    if enabled() && !capture::try_counter_add(name, labels, v) {
        global().counter_add(name, labels, v);
    }
}

/// Increments a counter by one (no-op when disabled).
#[inline]
pub fn counter_inc(name: &str, labels: &[(&str, &str)]) {
    counter_add(name, labels, 1.0);
}

/// Attaches `# HELP` text to a metric family in the global registry (no-op
/// when disabled).
#[inline]
pub fn describe(name: &str, help: &str) {
    if enabled() && !capture::try_describe(name, help) {
        global().describe(name, help);
    }
}

/// Sets a gauge in the global registry (no-op when disabled).
#[inline]
pub fn gauge_set(name: &str, labels: &[(&str, &str)], v: f64) {
    if enabled() && !capture::try_gauge_set(name, labels, v) {
        global().gauge_set(name, labels, v);
    }
}

/// Records `v` into a histogram with [`DEFAULT_BUCKETS`] (no-op when
/// disabled).
#[inline]
pub fn observe(name: &str, labels: &[(&str, &str)], v: f64) {
    observe_with(name, labels, &DEFAULT_BUCKETS, v);
}

/// Records `v` into a histogram with explicit bucket bounds (no-op when
/// disabled).
#[inline]
pub fn observe_with(name: &str, labels: &[(&str, &str)], bounds: &[f64], v: f64) {
    if enabled() && !capture::try_observe(name, labels, bounds, v) {
        global().observe_with(name, labels, bounds, v);
    }
}

/// Creates an empty histogram series if absent (no-op when disabled).
#[inline]
pub fn declare_histogram(name: &str, labels: &[(&str, &str)], bounds: &[f64]) {
    if enabled() && !capture::try_declare(name, labels, bounds) {
        global().declare_histogram(name, labels, bounds);
    }
}

/// Opens a wall-clock span; the returned guard records the duration (and
/// its position in the per-thread span tree) when dropped. Inert when
/// disabled.
#[inline]
pub fn span(name: &'static str) -> SpanGuard {
    if enabled() {
        trace::begin_span(name)
    } else {
        SpanGuard::inert()
    }
}

/// Records an already-measured span — explicit start instant + duration —
/// parented to the current thread's innermost open span. For phases whose
/// extent is only known after the fact (a request's queue wait, its parse
/// time). No-op when disabled or inside a [`capture`] window (captured
/// fleet work replays spans through its own id space).
#[inline]
pub fn span_timed(name: &'static str, start: std::time::Instant, dur: std::time::Duration) {
    if enabled() && !capture::active() {
        trace::record_span_timed(name, start, dur.as_nanos() as u64);
    }
}

/// Appends a logical-clock event (simulator time `t`, numeric fields) to
/// the trace. No-op when disabled.
#[inline]
pub fn event(name: &str, t: u64, fields: &[(&str, f64)]) {
    if enabled() && !capture::try_event(name, t, fields) {
        trace::record_event(name, t, fields);
    }
}

/// Drains the accumulated trace (spans + events), leaving the sink empty.
pub fn take_trace() -> Trace {
    trace::take()
}

/// Clears the global registry and trace sink (tests, repeated CLI runs).
pub fn reset() {
    global().clear();
    let _ = trace::take();
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Mutex;

    /// Tests toggling the global gate must not interleave.
    pub(crate) static GATE: Mutex<()> = Mutex::new(());

    #[test]
    fn disabled_paths_record_nothing() {
        let _g = GATE.lock().unwrap();
        set_enabled(false);
        reset();
        counter_inc("c_total", &[]);
        gauge_set("g", &[], 1.0);
        observe("h_seconds", &[], 0.5);
        event("e", 30, &[("x", 1.0)]);
        {
            let _s = span("s");
        }
        assert!(global().snapshot().is_empty());
        let trace = take_trace();
        assert!(trace.spans.is_empty() && trace.events.is_empty());
    }

    #[test]
    fn enabled_paths_record_everything() {
        let _g = GATE.lock().unwrap();
        set_enabled(true);
        reset();
        counter_inc("c_total", &[("k", "v")]);
        counter_add("c_total", &[("k", "v")], 2.0);
        gauge_set("g", &[], 7.5);
        observe("h_seconds", &[], 0.003);
        event("tick", 60, &[("hits", 2.0)]);
        {
            let _outer = span("outer");
            let _inner = span("inner");
        }
        let snap = global().snapshot();
        assert_eq!(snap.len(), 3);
        let trace = take_trace();
        assert_eq!(trace.spans.len(), 2);
        assert_eq!(trace.events.len(), 1);
        // Inner closed first and points at outer.
        let inner = trace.spans.iter().find(|s| s.name == "inner").unwrap();
        let outer = trace.spans.iter().find(|s| s.name == "outer").unwrap();
        assert_eq!(inner.parent, Some(outer.id));
        assert_eq!(outer.parent, None);
        set_enabled(false);
        reset();
    }
}
