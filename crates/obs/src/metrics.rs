//! The metric registry: counters, gauges, and fixed-bucket mergeable
//! histograms, all addressed by `(name, sorted labels)`.
//!
//! The registry is **lock-sharded**: series are distributed over
//! [`SHARD_COUNT`] independent `Mutex<BTreeMap>` shards by an FNV-1a hash
//! of the series key, so hot-path updates from concurrent threads (the
//! daemon's HTTP workers, the controller tick, `/metrics` scrapes) only
//! contend when they touch the *same* shard. A full-registry `/metrics`
//! scrape locks shards one at a time — never all at once — so a scrape in
//! flight stalls at most one shard's writers for one clone.
//!
//! Determinism is unchanged: one series always lives on one shard, so its
//! f64 accumulation order is exactly the caller's op order, and
//! [`Registry::snapshot`] merges the shard maps back into one key-ordered
//! sequence — rendered Prometheus bytes are identical to the pre-sharding
//! single-map registry.

use std::collections::BTreeMap;
use std::sync::Mutex;

/// Number of registry shards. A power of two comfortably above the
/// daemon's worker-thread count; at the workspace's series cardinality
/// (tens to a few hundred) the per-shard maps stay tiny.
pub const SHARD_COUNT: usize = 16;

/// FNV-1a over the canonical series identity (name + *sorted* label
/// pairs), the same hash family the workload layer uses for pool seeds.
/// Hashing the [`SeriesKey`] — not the caller's raw label slice — keeps
/// label order irrelevant to shard placement.
fn shard_index(key: &SeriesKey) -> usize {
    const OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
    const PRIME: u64 = 0x0000_0100_0000_01b3;
    let mut h = OFFSET;
    let mut eat = |bytes: &[u8]| {
        for &b in bytes {
            h ^= u64::from(b);
            h = h.wrapping_mul(PRIME);
        }
        h ^= 0xff; // separator so ("ab","c") and ("a","bc") differ
        h = h.wrapping_mul(PRIME);
    };
    eat(key.name.as_bytes());
    for (k, v) in &key.labels {
        eat(k.as_bytes());
        eat(v.as_bytes());
    }
    (h % SHARD_COUNT as u64) as usize
}

/// Default histogram bucket upper bounds (seconds-flavoured, log-spaced).
pub const DEFAULT_BUCKETS: [f64; 11] = [
    0.001, 0.005, 0.01, 0.05, 0.1, 0.5, 1.0, 5.0, 10.0, 50.0, 100.0,
];

/// A metric series identity: name plus sorted label pairs.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
pub struct SeriesKey {
    /// Metric family name (Prometheus conventions: `*_total` for counters,
    /// `*_seconds` for timing histograms).
    pub name: String,
    /// Label pairs, sorted by key.
    pub labels: Vec<(String, String)>,
}

impl SeriesKey {
    /// Builds a key, sorting the labels.
    pub fn new(name: &str, labels: &[(&str, &str)]) -> Self {
        let mut labels: Vec<(String, String)> = labels
            .iter()
            .map(|(k, v)| (k.to_string(), v.to_string()))
            .collect();
        labels.sort();
        Self {
            name: name.to_string(),
            labels,
        }
    }
}

/// A fixed-bucket histogram. `counts[i]` counts observations `<= bounds[i]`
/// exclusively of earlier buckets; the final slot counts the `+Inf`
/// overflow. Two histograms with identical bounds merge by adding counts.
#[derive(Debug, Clone, PartialEq)]
pub struct Histogram {
    /// Ascending bucket upper bounds (`+Inf` is implicit).
    pub bounds: Vec<f64>,
    /// Per-bucket counts; `len == bounds.len() + 1`.
    pub counts: Vec<u64>,
    /// Sum of all observations.
    pub sum: f64,
    /// Total number of observations.
    pub count: u64,
}

impl Histogram {
    /// An empty histogram over the given bounds.
    pub fn new(bounds: &[f64]) -> Self {
        Self {
            bounds: bounds.to_vec(),
            counts: vec![0; bounds.len() + 1],
            sum: 0.0,
            count: 0,
        }
    }

    /// Records one observation.
    pub fn observe(&mut self, v: f64) {
        let slot = self
            .bounds
            .iter()
            .position(|&b| v <= b)
            .unwrap_or(self.bounds.len());
        self.counts[slot] += 1;
        self.sum += v;
        self.count += 1;
    }

    /// Merges another histogram's observations into this one. Returns
    /// `Err` when the bucket bounds differ.
    pub fn merge(&mut self, other: &Histogram) -> Result<(), String> {
        if self.bounds != other.bounds {
            return Err(format!(
                "histogram bounds mismatch: {:?} vs {:?}",
                self.bounds, other.bounds
            ));
        }
        for (a, b) in self.counts.iter_mut().zip(&other.counts) {
            *a += b;
        }
        self.sum += other.sum;
        self.count += other.count;
        Ok(())
    }

    /// Cumulative count at or below `bounds[i]` (Prometheus `_bucket` a la
    /// `le`).
    pub fn cumulative(&self) -> Vec<u64> {
        let mut acc = 0u64;
        self.counts
            .iter()
            .map(|&c| {
                acc += c;
                acc
            })
            .collect()
    }
}

/// One metric's current value.
#[derive(Debug, Clone, PartialEq)]
pub enum MetricValue {
    /// Monotone accumulator (`f64` so fractional quantities like
    /// cluster-seconds can accumulate).
    Counter(f64),
    /// Last-write-wins instantaneous value.
    Gauge(f64),
    /// Fixed-bucket histogram.
    Histogram(Histogram),
}

/// Thread-safe metric store, lock-sharded by series-key hash (see the
/// module docs for the determinism argument).
#[derive(Debug)]
pub struct Registry {
    shards: Vec<Mutex<BTreeMap<SeriesKey, MetricValue>>>,
    /// `# HELP` text per metric family name. Described once at startup and
    /// read only at render time, so one lock is plenty.
    helps: Mutex<BTreeMap<String, String>>,
}

impl Default for Registry {
    fn default() -> Self {
        Self {
            shards: (0..SHARD_COUNT)
                .map(|_| Mutex::new(BTreeMap::new()))
                .collect(),
            helps: Mutex::new(BTreeMap::new()),
        }
    }
}

impl Registry {
    /// An empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// The shard holding `key`, locked.
    fn shard(
        &self,
        key: &SeriesKey,
    ) -> std::sync::MutexGuard<'_, BTreeMap<SeriesKey, MetricValue>> {
        self.shards[shard_index(key)]
            .lock()
            .expect("obs registry poisoned")
    }

    /// Attaches `# HELP` text to a metric family (rendered by the
    /// Prometheus exporter; last write wins).
    pub fn describe(&self, name: &str, help: &str) {
        self.helps
            .lock()
            .expect("obs registry poisoned")
            .insert(name.to_string(), help.to_string());
    }

    /// The registered help text, name-ordered.
    pub fn help_snapshot(&self) -> Vec<(String, String)> {
        self.helps
            .lock()
            .expect("obs registry poisoned")
            .iter()
            .map(|(k, v)| (k.clone(), v.clone()))
            .collect()
    }

    /// Adds `v` to the named counter, creating it at zero first.
    pub fn counter_add(&self, name: &str, labels: &[(&str, &str)], v: f64) {
        let key = SeriesKey::new(name, labels);
        let mut map = self.shard(&key);
        match map.entry(key).or_insert(MetricValue::Counter(0.0)) {
            MetricValue::Counter(c) => *c += v,
            other => debug_assert!(false, "{name}: counter_add on {other:?}"),
        }
    }

    /// Sets the named gauge.
    pub fn gauge_set(&self, name: &str, labels: &[(&str, &str)], v: f64) {
        let key = SeriesKey::new(name, labels);
        let mut map = self.shard(&key);
        match map.entry(key).or_insert(MetricValue::Gauge(v)) {
            MetricValue::Gauge(g) => *g = v,
            other => debug_assert!(false, "{name}: gauge_set on {other:?}"),
        }
    }

    /// Records `v` into the named histogram, created with `bounds` on first
    /// use (later calls keep the original bounds).
    pub fn observe_with(&self, name: &str, labels: &[(&str, &str)], bounds: &[f64], v: f64) {
        let key = SeriesKey::new(name, labels);
        let mut map = self.shard(&key);
        match map
            .entry(key)
            .or_insert_with(|| MetricValue::Histogram(Histogram::new(bounds)))
        {
            MetricValue::Histogram(h) => h.observe(v),
            other => debug_assert!(false, "{name}: observe on {other:?}"),
        }
    }

    /// Creates an empty histogram series if absent (so exporters expose
    /// the family even before the first observation).
    pub fn declare_histogram(&self, name: &str, labels: &[(&str, &str)], bounds: &[f64]) {
        let key = SeriesKey::new(name, labels);
        let mut map = self.shard(&key);
        map.entry(key)
            .or_insert_with(|| MetricValue::Histogram(Histogram::new(bounds)));
    }

    /// A deterministic (key-ordered) copy of every series: shard maps are
    /// cloned one lock at a time and merged back into full key order, so
    /// the result is byte-for-byte what a single-map registry would
    /// produce. Each shard is internally consistent; a write landing on a
    /// not-yet-visited shard during a concurrent scrape simply appears (or
    /// not) whole — exactly the point-in-time semantics scrapes need.
    pub fn snapshot(&self) -> Vec<(SeriesKey, MetricValue)> {
        let mut all: Vec<(SeriesKey, MetricValue)> = Vec::new();
        for shard in &self.shards {
            let map = shard.lock().expect("obs registry poisoned");
            all.extend(map.iter().map(|(k, v)| (k.clone(), v.clone())));
        }
        all.sort_by(|a, b| a.0.cmp(&b.0));
        all
    }

    /// Merges a snapshot (e.g. from another registry or process) into this
    /// one: counters add, gauges overwrite, histograms merge bucket-wise.
    /// Series with mismatched types or bounds are skipped and counted in
    /// the returned value.
    pub fn merge_from(&self, snapshot: &[(SeriesKey, MetricValue)]) -> usize {
        let mut skipped = 0usize;
        for (key, value) in snapshot {
            let mut map = self.shard(key);
            match map.get_mut(key) {
                None => {
                    map.insert(key.clone(), value.clone());
                }
                Some(existing) => match (existing, value) {
                    (MetricValue::Counter(a), MetricValue::Counter(b)) => *a += b,
                    (MetricValue::Gauge(a), MetricValue::Gauge(b)) => *a = *b,
                    (MetricValue::Histogram(a), MetricValue::Histogram(b)) => {
                        if a.merge(b).is_err() {
                            skipped += 1;
                        }
                    }
                    _ => skipped += 1,
                },
            }
        }
        skipped
    }

    /// Removes every series and help entry.
    pub fn clear(&self) {
        for shard in &self.shards {
            shard.lock().expect("obs registry poisoned").clear();
        }
        self.helps.lock().expect("obs registry poisoned").clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate_per_label_set() {
        let reg = Registry::new();
        reg.counter_add("hits_total", &[("pool", "a")], 1.0);
        reg.counter_add("hits_total", &[("pool", "a")], 2.0);
        reg.counter_add("hits_total", &[("pool", "b")], 5.0);
        let snap = reg.snapshot();
        assert_eq!(snap.len(), 2);
        assert_eq!(snap[0].1, MetricValue::Counter(3.0));
        assert_eq!(snap[1].1, MetricValue::Counter(5.0));
    }

    #[test]
    fn label_order_is_canonical() {
        let reg = Registry::new();
        reg.counter_add("c_total", &[("b", "2"), ("a", "1")], 1.0);
        reg.counter_add("c_total", &[("a", "1"), ("b", "2")], 1.0);
        assert_eq!(reg.snapshot().len(), 1);
    }

    #[test]
    fn gauge_last_write_wins() {
        let reg = Registry::new();
        reg.gauge_set("g", &[], 1.0);
        reg.gauge_set("g", &[], -2.5);
        assert_eq!(reg.snapshot()[0].1, MetricValue::Gauge(-2.5));
    }

    #[test]
    fn histogram_buckets_and_overflow() {
        let mut h = Histogram::new(&[1.0, 5.0]);
        for v in [0.5, 1.0, 3.0, 100.0] {
            h.observe(v);
        }
        assert_eq!(h.counts, vec![2, 1, 1]); // <=1, <=5, +Inf
        assert_eq!(h.cumulative(), vec![2, 3, 4]);
        assert_eq!(h.count, 4);
        assert!((h.sum - 104.5).abs() < 1e-12);
    }

    #[test]
    fn histograms_merge_bucketwise() {
        let mut a = Histogram::new(&[1.0, 5.0]);
        a.observe(0.5);
        let mut b = Histogram::new(&[1.0, 5.0]);
        b.observe(2.0);
        b.observe(9.0);
        a.merge(&b).unwrap();
        assert_eq!(a.counts, vec![1, 1, 1]);
        assert_eq!(a.count, 3);
        let bad = Histogram::new(&[2.0]);
        assert!(a.merge(&bad).is_err());
    }

    #[test]
    fn sharded_snapshot_is_globally_key_ordered() {
        // Many series scattered across shards must come back in exactly
        // the order a single BTreeMap would produce — the Prometheus
        // byte-identity contract hangs on this.
        let reg = Registry::new();
        for i in (0..100).rev() {
            reg.counter_add(
                &format!("m{i:03}_total"),
                &[("pool", &format!("p{i}"))],
                1.0,
            );
        }
        let snap = reg.snapshot();
        assert_eq!(snap.len(), 100);
        let mut sorted = snap.clone();
        sorted.sort_by(|a, b| a.0.cmp(&b.0));
        assert!(snap
            .iter()
            .map(|(k, _)| k)
            .eq(sorted.iter().map(|(k, _)| k)));
    }

    #[test]
    fn shard_placement_ignores_label_order() {
        // The same series addressed with labels in either order must land
        // on the same shard (and therefore accumulate into one entry).
        let reg = Registry::new();
        reg.counter_add("c_total", &[("b", "2"), ("a", "1"), ("z", "9")], 1.0);
        reg.counter_add("c_total", &[("z", "9"), ("a", "1"), ("b", "2")], 2.0);
        let snap = reg.snapshot();
        assert_eq!(snap.len(), 1);
        assert_eq!(snap[0].1, MetricValue::Counter(3.0));
    }

    #[test]
    fn concurrent_writers_and_scrapers_never_lose_updates() {
        use std::sync::Arc;
        let reg = Arc::new(Registry::new());
        let writers: Vec<_> = (0..4)
            .map(|w| {
                let reg = Arc::clone(&reg);
                std::thread::spawn(move || {
                    for i in 0..500 {
                        reg.counter_add("hot_total", &[("w", &w.to_string())], 1.0);
                        if i % 50 == 0 {
                            reg.observe_with("lat_seconds", &[], &[1.0], 0.5);
                        }
                    }
                })
            })
            .collect();
        let scraper = {
            let reg = Arc::clone(&reg);
            std::thread::spawn(move || {
                for _ in 0..50 {
                    let _ = reg.snapshot();
                }
            })
        };
        for w in writers {
            w.join().unwrap();
        }
        scraper.join().unwrap();
        let total: f64 = reg
            .snapshot()
            .iter()
            .filter_map(|(k, v)| match v {
                MetricValue::Counter(c) if k.name == "hot_total" => Some(*c),
                _ => None,
            })
            .sum();
        assert_eq!(total, 2_000.0);
    }

    #[test]
    fn merge_from_combines_registries() {
        let a = Registry::new();
        a.counter_add("c_total", &[], 1.0);
        a.observe_with("h", &[], &[1.0], 0.5);
        let b = Registry::new();
        b.counter_add("c_total", &[], 2.0);
        b.observe_with("h", &[], &[1.0], 3.0);
        b.gauge_set("g", &[], 4.0);
        assert_eq!(a.merge_from(&b.snapshot()), 0);
        let snap = a.snapshot();
        assert_eq!(snap[0].1, MetricValue::Counter(3.0));
        assert_eq!(snap[1].1, MetricValue::Gauge(4.0));
        match &snap[2].1 {
            MetricValue::Histogram(h) => assert_eq!(h.count, 2),
            other => panic!("{other:?}"),
        }
    }
}
