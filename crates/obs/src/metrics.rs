//! The metric registry: counters, gauges, and fixed-bucket mergeable
//! histograms, all addressed by `(name, sorted labels)`.
//!
//! The registry is a `Mutex<BTreeMap>` — metric updates are stage-level
//! (per interval, per training step, per solve), not per-element, so a
//! straightforward lock beats sharded atomics on simplicity and is nowhere
//! near contention at the workspace's update rates. The `BTreeMap` keeps
//! every snapshot and export deterministically ordered.

use std::collections::BTreeMap;
use std::sync::Mutex;

/// Default histogram bucket upper bounds (seconds-flavoured, log-spaced).
pub const DEFAULT_BUCKETS: [f64; 11] = [
    0.001, 0.005, 0.01, 0.05, 0.1, 0.5, 1.0, 5.0, 10.0, 50.0, 100.0,
];

/// A metric series identity: name plus sorted label pairs.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
pub struct SeriesKey {
    /// Metric family name (Prometheus conventions: `*_total` for counters,
    /// `*_seconds` for timing histograms).
    pub name: String,
    /// Label pairs, sorted by key.
    pub labels: Vec<(String, String)>,
}

impl SeriesKey {
    /// Builds a key, sorting the labels.
    pub fn new(name: &str, labels: &[(&str, &str)]) -> Self {
        let mut labels: Vec<(String, String)> = labels
            .iter()
            .map(|(k, v)| (k.to_string(), v.to_string()))
            .collect();
        labels.sort();
        Self {
            name: name.to_string(),
            labels,
        }
    }
}

/// A fixed-bucket histogram. `counts[i]` counts observations `<= bounds[i]`
/// exclusively of earlier buckets; the final slot counts the `+Inf`
/// overflow. Two histograms with identical bounds merge by adding counts.
#[derive(Debug, Clone, PartialEq)]
pub struct Histogram {
    /// Ascending bucket upper bounds (`+Inf` is implicit).
    pub bounds: Vec<f64>,
    /// Per-bucket counts; `len == bounds.len() + 1`.
    pub counts: Vec<u64>,
    /// Sum of all observations.
    pub sum: f64,
    /// Total number of observations.
    pub count: u64,
}

impl Histogram {
    /// An empty histogram over the given bounds.
    pub fn new(bounds: &[f64]) -> Self {
        Self {
            bounds: bounds.to_vec(),
            counts: vec![0; bounds.len() + 1],
            sum: 0.0,
            count: 0,
        }
    }

    /// Records one observation.
    pub fn observe(&mut self, v: f64) {
        let slot = self
            .bounds
            .iter()
            .position(|&b| v <= b)
            .unwrap_or(self.bounds.len());
        self.counts[slot] += 1;
        self.sum += v;
        self.count += 1;
    }

    /// Merges another histogram's observations into this one. Returns
    /// `Err` when the bucket bounds differ.
    pub fn merge(&mut self, other: &Histogram) -> Result<(), String> {
        if self.bounds != other.bounds {
            return Err(format!(
                "histogram bounds mismatch: {:?} vs {:?}",
                self.bounds, other.bounds
            ));
        }
        for (a, b) in self.counts.iter_mut().zip(&other.counts) {
            *a += b;
        }
        self.sum += other.sum;
        self.count += other.count;
        Ok(())
    }

    /// Cumulative count at or below `bounds[i]` (Prometheus `_bucket` a la
    /// `le`).
    pub fn cumulative(&self) -> Vec<u64> {
        let mut acc = 0u64;
        self.counts
            .iter()
            .map(|&c| {
                acc += c;
                acc
            })
            .collect()
    }
}

/// One metric's current value.
#[derive(Debug, Clone, PartialEq)]
pub enum MetricValue {
    /// Monotone accumulator (`f64` so fractional quantities like
    /// cluster-seconds can accumulate).
    Counter(f64),
    /// Last-write-wins instantaneous value.
    Gauge(f64),
    /// Fixed-bucket histogram.
    Histogram(Histogram),
}

/// Thread-safe metric store.
#[derive(Debug, Default)]
pub struct Registry {
    inner: Mutex<BTreeMap<SeriesKey, MetricValue>>,
    /// `# HELP` text per metric family name.
    helps: Mutex<BTreeMap<String, String>>,
}

impl Registry {
    /// An empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Attaches `# HELP` text to a metric family (rendered by the
    /// Prometheus exporter; last write wins).
    pub fn describe(&self, name: &str, help: &str) {
        self.helps
            .lock()
            .expect("obs registry poisoned")
            .insert(name.to_string(), help.to_string());
    }

    /// The registered help text, name-ordered.
    pub fn help_snapshot(&self) -> Vec<(String, String)> {
        self.helps
            .lock()
            .expect("obs registry poisoned")
            .iter()
            .map(|(k, v)| (k.clone(), v.clone()))
            .collect()
    }

    /// Adds `v` to the named counter, creating it at zero first.
    pub fn counter_add(&self, name: &str, labels: &[(&str, &str)], v: f64) {
        let key = SeriesKey::new(name, labels);
        let mut map = self.inner.lock().expect("obs registry poisoned");
        match map.entry(key).or_insert(MetricValue::Counter(0.0)) {
            MetricValue::Counter(c) => *c += v,
            other => debug_assert!(false, "{name}: counter_add on {other:?}"),
        }
    }

    /// Sets the named gauge.
    pub fn gauge_set(&self, name: &str, labels: &[(&str, &str)], v: f64) {
        let key = SeriesKey::new(name, labels);
        let mut map = self.inner.lock().expect("obs registry poisoned");
        match map.entry(key).or_insert(MetricValue::Gauge(v)) {
            MetricValue::Gauge(g) => *g = v,
            other => debug_assert!(false, "{name}: gauge_set on {other:?}"),
        }
    }

    /// Records `v` into the named histogram, created with `bounds` on first
    /// use (later calls keep the original bounds).
    pub fn observe_with(&self, name: &str, labels: &[(&str, &str)], bounds: &[f64], v: f64) {
        let key = SeriesKey::new(name, labels);
        let mut map = self.inner.lock().expect("obs registry poisoned");
        match map
            .entry(key)
            .or_insert_with(|| MetricValue::Histogram(Histogram::new(bounds)))
        {
            MetricValue::Histogram(h) => h.observe(v),
            other => debug_assert!(false, "{name}: observe on {other:?}"),
        }
    }

    /// Creates an empty histogram series if absent (so exporters expose
    /// the family even before the first observation).
    pub fn declare_histogram(&self, name: &str, labels: &[(&str, &str)], bounds: &[f64]) {
        let key = SeriesKey::new(name, labels);
        let mut map = self.inner.lock().expect("obs registry poisoned");
        map.entry(key)
            .or_insert_with(|| MetricValue::Histogram(Histogram::new(bounds)));
    }

    /// A deterministic (key-ordered) copy of every series.
    pub fn snapshot(&self) -> Vec<(SeriesKey, MetricValue)> {
        self.inner
            .lock()
            .expect("obs registry poisoned")
            .iter()
            .map(|(k, v)| (k.clone(), v.clone()))
            .collect()
    }

    /// Merges a snapshot (e.g. from another registry or process) into this
    /// one: counters add, gauges overwrite, histograms merge bucket-wise.
    /// Series with mismatched types or bounds are skipped and counted in
    /// the returned value.
    pub fn merge_from(&self, snapshot: &[(SeriesKey, MetricValue)]) -> usize {
        let mut skipped = 0usize;
        let mut map = self.inner.lock().expect("obs registry poisoned");
        for (key, value) in snapshot {
            match map.get_mut(key) {
                None => {
                    map.insert(key.clone(), value.clone());
                }
                Some(existing) => match (existing, value) {
                    (MetricValue::Counter(a), MetricValue::Counter(b)) => *a += b,
                    (MetricValue::Gauge(a), MetricValue::Gauge(b)) => *a = *b,
                    (MetricValue::Histogram(a), MetricValue::Histogram(b)) => {
                        if a.merge(b).is_err() {
                            skipped += 1;
                        }
                    }
                    _ => skipped += 1,
                },
            }
        }
        skipped
    }

    /// Removes every series and help entry.
    pub fn clear(&self) {
        self.inner.lock().expect("obs registry poisoned").clear();
        self.helps.lock().expect("obs registry poisoned").clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate_per_label_set() {
        let reg = Registry::new();
        reg.counter_add("hits_total", &[("pool", "a")], 1.0);
        reg.counter_add("hits_total", &[("pool", "a")], 2.0);
        reg.counter_add("hits_total", &[("pool", "b")], 5.0);
        let snap = reg.snapshot();
        assert_eq!(snap.len(), 2);
        assert_eq!(snap[0].1, MetricValue::Counter(3.0));
        assert_eq!(snap[1].1, MetricValue::Counter(5.0));
    }

    #[test]
    fn label_order_is_canonical() {
        let reg = Registry::new();
        reg.counter_add("c_total", &[("b", "2"), ("a", "1")], 1.0);
        reg.counter_add("c_total", &[("a", "1"), ("b", "2")], 1.0);
        assert_eq!(reg.snapshot().len(), 1);
    }

    #[test]
    fn gauge_last_write_wins() {
        let reg = Registry::new();
        reg.gauge_set("g", &[], 1.0);
        reg.gauge_set("g", &[], -2.5);
        assert_eq!(reg.snapshot()[0].1, MetricValue::Gauge(-2.5));
    }

    #[test]
    fn histogram_buckets_and_overflow() {
        let mut h = Histogram::new(&[1.0, 5.0]);
        for v in [0.5, 1.0, 3.0, 100.0] {
            h.observe(v);
        }
        assert_eq!(h.counts, vec![2, 1, 1]); // <=1, <=5, +Inf
        assert_eq!(h.cumulative(), vec![2, 3, 4]);
        assert_eq!(h.count, 4);
        assert!((h.sum - 104.5).abs() < 1e-12);
    }

    #[test]
    fn histograms_merge_bucketwise() {
        let mut a = Histogram::new(&[1.0, 5.0]);
        a.observe(0.5);
        let mut b = Histogram::new(&[1.0, 5.0]);
        b.observe(2.0);
        b.observe(9.0);
        a.merge(&b).unwrap();
        assert_eq!(a.counts, vec![1, 1, 1]);
        assert_eq!(a.count, 3);
        let bad = Histogram::new(&[2.0]);
        assert!(a.merge(&bad).is_err());
    }

    #[test]
    fn merge_from_combines_registries() {
        let a = Registry::new();
        a.counter_add("c_total", &[], 1.0);
        a.observe_with("h", &[], &[1.0], 0.5);
        let b = Registry::new();
        b.counter_add("c_total", &[], 2.0);
        b.observe_with("h", &[], &[1.0], 3.0);
        b.gauge_set("g", &[], 4.0);
        assert_eq!(a.merge_from(&b.snapshot()), 0);
        let snap = a.snapshot();
        assert_eq!(snap[0].1, MetricValue::Counter(3.0));
        assert_eq!(snap[1].1, MetricValue::Gauge(4.0));
        match &snap[2].1 {
            MetricValue::Histogram(h) => assert_eq!(h.count, 2),
            other => panic!("{other:?}"),
        }
    }
}
