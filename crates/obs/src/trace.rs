//! Hierarchical wall-clock spans and logical-clock events.
//!
//! Each thread keeps its own stack of open spans, so nesting is correct
//! under `ip-par`'s scoped threads without any cross-thread coordination;
//! closed spans are appended to one process-wide sink. Span timestamps are
//! wall-clock (nanoseconds since the first span of the process) and exist
//! for profiling; *events* carry the simulator's logical clock instead, so
//! a simulation trace is bit-identical run to run regardless of host load.
//!
//! The sink caps itself at [`MAX_RECORDS`] spans + events; past that,
//! records are dropped and counted (`Trace::dropped`), so a pathological
//! span in a tight loop degrades the trace instead of exhausting memory.

use std::cell::RefCell;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;
use std::time::Instant;

/// Upper bound on retained spans + events.
pub const MAX_RECORDS: usize = 200_000;

/// One closed span.
#[derive(Debug, Clone, PartialEq)]
pub struct SpanRecord {
    /// Unique id (process-wide, allocation order).
    pub id: u64,
    /// Enclosing span on the same thread, if any.
    pub parent: Option<u64>,
    /// Span name (dotted taxonomy, e.g. `sim.ip_run`).
    pub name: String,
    /// OS thread the span ran on (name if set, else an index).
    pub thread: String,
    /// Start, nanoseconds since the trace epoch.
    pub start_ns: u64,
    /// Wall-clock duration in nanoseconds.
    pub dur_ns: u64,
}

/// One logical-clock event.
#[derive(Debug, Clone, PartialEq)]
pub struct EventRecord {
    /// Event name (e.g. `sim.interval`).
    pub name: String,
    /// Logical time (simulator seconds) — deterministic.
    pub t: u64,
    /// Numeric payload fields, in emission order.
    pub fields: Vec<(String, f64)>,
}

/// A drained trace.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Trace {
    /// Closed spans, in close order.
    pub spans: Vec<SpanRecord>,
    /// Events, in emission order.
    pub events: Vec<EventRecord>,
    /// Records discarded after [`MAX_RECORDS`] was reached.
    pub dropped: u64,
}

impl Trace {
    /// Direct children of `parent` (or roots for `None`), in close order.
    pub fn children_of(&self, parent: Option<u64>) -> Vec<&SpanRecord> {
        self.spans.iter().filter(|s| s.parent == parent).collect()
    }

    /// Renders the trace as JSONL (see [`crate::export::trace_to_jsonl`]).
    pub fn to_jsonl(&self) -> String {
        crate::export::trace_to_jsonl(self)
    }

    /// Renders the trace in the Chrome `trace_event` format (see
    /// [`crate::export::trace_to_chrome`]).
    pub fn to_chrome(&self) -> String {
        crate::export::trace_to_chrome(self)
    }
}

#[derive(Default)]
struct Sink {
    epoch: Option<Instant>,
    spans: Vec<SpanRecord>,
    events: Vec<EventRecord>,
    dropped: u64,
}

static SINK: Mutex<Sink> = Mutex::new(Sink {
    epoch: None,
    spans: Vec::new(),
    events: Vec::new(),
    dropped: 0,
});

static NEXT_ID: AtomicU64 = AtomicU64::new(1);

thread_local! {
    static SPAN_STACK: RefCell<Vec<u64>> = const { RefCell::new(Vec::new()) };
}

fn epoch() -> Instant {
    let mut sink = SINK.lock().expect("obs trace sink poisoned");
    *sink.epoch.get_or_insert_with(Instant::now)
}

/// The process trace epoch (initialising it if needed), so capture windows
/// can stamp span starts on the same clock as direct-to-sink spans.
pub(crate) fn trace_epoch() -> Instant {
    epoch()
}

pub(crate) fn thread_label() -> String {
    std::thread::current()
        .name()
        .map(str::to_string)
        .unwrap_or_else(|| format!("{:?}", std::thread::current().id()))
}

/// An open span; records itself into the sink (or, inside a
/// [`crate::capture`] window, into the thread's local buffer) when dropped.
#[derive(Debug)]
pub struct SpanGuard {
    inner: SpanInner,
}

#[derive(Debug)]
enum SpanInner {
    Inert,
    Global(ActiveSpan),
    Local(LocalActive),
}

#[derive(Debug)]
struct ActiveSpan {
    id: u64,
    parent: Option<u64>,
    name: &'static str,
    start: Instant,
    start_ns: u64,
}

#[derive(Debug)]
struct LocalActive {
    local_id: u64,
    name: &'static str,
    start: Instant,
    start_ns: u64,
}

impl SpanGuard {
    /// A guard that records nothing (the disabled path).
    pub fn inert() -> Self {
        Self {
            inner: SpanInner::Inert,
        }
    }
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        let span = match std::mem::replace(&mut self.inner, SpanInner::Inert) {
            SpanInner::Inert => return,
            SpanInner::Local(local) => {
                let dur_ns = local.start.elapsed().as_nanos() as u64;
                crate::capture::end_span(local.local_id, local.name, local.start_ns, dur_ns);
                return;
            }
            SpanInner::Global(span) => span,
        };
        let dur_ns = span.start.elapsed().as_nanos() as u64;
        SPAN_STACK.with(|stack| {
            let mut stack = stack.borrow_mut();
            debug_assert_eq!(stack.last(), Some(&span.id), "span drop out of order");
            stack.pop();
        });
        let mut sink = SINK.lock().expect("obs trace sink poisoned");
        if sink.spans.len() + sink.events.len() >= MAX_RECORDS {
            sink.dropped += 1;
            return;
        }
        sink.spans.push(SpanRecord {
            id: span.id,
            parent: span.parent,
            name: span.name.to_string(),
            thread: thread_label(),
            start_ns: span.start_ns,
            dur_ns,
        });
    }
}

/// Opens a span on the current thread (callers go through
/// [`crate::span`], which applies the enabled gate). Inside a capture
/// window the span is window-local: it never touches the global id counter
/// or the shared sink until the window is folded.
pub(crate) fn begin_span(name: &'static str) -> SpanGuard {
    let start = Instant::now();
    if let Some((local_id, start_ns)) = crate::capture::try_begin_span(start) {
        return SpanGuard {
            inner: SpanInner::Local(LocalActive {
                local_id,
                name,
                start,
                start_ns,
            }),
        };
    }
    let epoch = epoch();
    let id = NEXT_ID.fetch_add(1, Ordering::Relaxed);
    let parent = SPAN_STACK.with(|stack| {
        let mut stack = stack.borrow_mut();
        let parent = stack.last().copied();
        stack.push(id);
        parent
    });
    SpanGuard {
        inner: SpanInner::Global(ActiveSpan {
            id,
            parent,
            name,
            start,
            start_ns: start.duration_since(epoch).as_nanos() as u64,
        }),
    }
}

/// Records an already-measured span (callers go through
/// [`crate::span_timed`]): explicit start instant + duration, parented to
/// the current thread's innermost *open* span. Used for phases whose
/// extent is only known after the fact — a request's queue wait or parse
/// time — so they can appear as children of the request span.
pub(crate) fn record_span_timed(name: &'static str, start: Instant, dur_ns: u64) {
    let epoch = epoch();
    let id = NEXT_ID.fetch_add(1, Ordering::Relaxed);
    let parent = SPAN_STACK.with(|stack| stack.borrow().last().copied());
    // A start predating the trace epoch (the first-ever record) clamps
    // to 0 rather than panicking on the unsigned subtraction.
    let start_ns = start
        .checked_duration_since(epoch)
        .map_or(0, |d| d.as_nanos() as u64);
    let mut sink = SINK.lock().expect("obs trace sink poisoned");
    if sink.spans.len() + sink.events.len() >= MAX_RECORDS {
        sink.dropped += 1;
        return;
    }
    sink.spans.push(SpanRecord {
        id,
        parent,
        name: name.to_string(),
        thread: thread_label(),
        start_ns,
        dur_ns,
    });
}

/// Appends an event (callers go through [`crate::event`]).
pub(crate) fn record_event(name: &str, t: u64, fields: &[(&str, f64)]) {
    let mut sink = SINK.lock().expect("obs trace sink poisoned");
    if sink.spans.len() + sink.events.len() >= MAX_RECORDS {
        sink.dropped += 1;
        return;
    }
    sink.events.push(EventRecord {
        name: name.to_string(),
        t,
        fields: fields.iter().map(|(k, v)| (k.to_string(), *v)).collect(),
    });
}

/// Appends already-merged events from capture buffers (callers go through
/// [`crate::capture::fold_ordered`]). Applies the [`MAX_RECORDS`] cap per
/// record, exactly like the direct path.
pub(crate) fn append_events(events: Vec<EventRecord>) {
    if events.is_empty() {
        return;
    }
    let mut sink = SINK.lock().expect("obs trace sink poisoned");
    for ev in events {
        if sink.spans.len() + sink.events.len() >= MAX_RECORDS {
            sink.dropped += 1;
            continue;
        }
        sink.events.push(ev);
    }
}

/// Appends one capture window's closed spans, mapping window-local ids
/// (and parent links) onto freshly allocated global ids. Spans arrive in
/// close order, so children precede parents — ids are allocated in a first
/// pass to keep parent links resolvable.
pub(crate) fn append_local_spans(spans: &[crate::capture::LocalSpanRecord]) {
    if spans.is_empty() {
        return;
    }
    let mut ids = std::collections::HashMap::with_capacity(spans.len());
    for s in spans {
        ids.insert(s.local_id, NEXT_ID.fetch_add(1, Ordering::Relaxed));
    }
    let mut sink = SINK.lock().expect("obs trace sink poisoned");
    for s in spans {
        if sink.spans.len() + sink.events.len() >= MAX_RECORDS {
            sink.dropped += 1;
            continue;
        }
        sink.spans.push(SpanRecord {
            id: ids[&s.local_id],
            parent: s.parent.and_then(|p| ids.get(&p).copied()),
            name: s.name.clone(),
            thread: s.thread.clone(),
            start_ns: s.start_ns,
            dur_ns: s.dur_ns,
        });
    }
}

/// Drains the sink.
pub(crate) fn take() -> Trace {
    let mut sink = SINK.lock().expect("obs trace sink poisoned");
    let trace = Trace {
        spans: std::mem::take(&mut sink.spans),
        events: std::mem::take(&mut sink.events),
        dropped: sink.dropped,
    };
    sink.dropped = 0;
    trace
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn nesting_is_per_thread() {
        let _g = crate::tests::GATE.lock().unwrap();
        crate::set_enabled(true);
        let _ = take();
        let t1 = std::thread::spawn(|| {
            let _a = crate::span("worker_outer");
            let _b = crate::span("worker_inner");
        });
        t1.join().unwrap();
        {
            let _c = crate::span("main_only");
        }
        let trace = take();
        assert_eq!(trace.spans.len(), 3);
        let inner = trace
            .spans
            .iter()
            .find(|s| s.name == "worker_inner")
            .unwrap();
        let outer = trace
            .spans
            .iter()
            .find(|s| s.name == "worker_outer")
            .unwrap();
        let main = trace.spans.iter().find(|s| s.name == "main_only").unwrap();
        assert_eq!(inner.parent, Some(outer.id));
        assert_eq!(main.parent, None, "threads must not inherit spans");
        assert_eq!(trace.children_of(Some(outer.id)).len(), 1);
        crate::set_enabled(false);
    }

    #[test]
    fn events_are_ordered_and_logical() {
        let _g = crate::tests::GATE.lock().unwrap();
        crate::set_enabled(true);
        let _ = take();
        crate::event("tick", 30, &[("hits", 1.0), ("misses", 0.0)]);
        crate::event("tick", 60, &[("hits", 0.0)]);
        let trace = take();
        assert_eq!(trace.events.len(), 2);
        assert_eq!(trace.events[0].t, 30);
        assert_eq!(trace.events[1].t, 60);
        assert_eq!(trace.events[0].fields[0], ("hits".to_string(), 1.0));
        crate::set_enabled(false);
    }
}
