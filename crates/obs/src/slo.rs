//! Multi-window, multi-burn-rate SLO evaluation over logical time.
//!
//! The paper's production deployment (§7.5) alerts on pool hit rate and
//! customer wait time. This module turns those targets into *service level
//! objectives* with an error budget, and evaluates **burn rate** — how
//! fast the budget is being consumed relative to its sustainable rate — in
//! two windows simultaneously (default 5 minutes and 1 hour of *logical*
//! simulator time). An alert pages only when **both** windows burn hot:
//! the long window proves the problem is material, the short window proves
//! it is still happening. This is the standard multi-window multi-burn-rate
//! construction from the SRE workbook, transplanted onto logical time so
//! results are deterministic under any host load or `--speedup`.
//!
//! Two objectives are tracked per pool:
//!
//! * **hit rate** — an interval's misses are its "bad events"; the error
//!   budget is `1 - hit_rate_objective` of all requests.
//! * **wait time** — an interval is bad when its mean wait exceeds
//!   `wait_objective_secs`; the budget is `1 - wait_compliance` of
//!   intervals.
//!
//! Inputs are per-interval [`SloSample`]s derived from the simulator's
//! interval stats; the tracker retains one long window of samples and
//! evaluates both windows from that ring. Idle windows (no requests / no
//! intervals) have zero error rate and never alert, matching the
//! zero-traffic behaviour of the §7.5 alert rules.

use std::collections::VecDeque;

/// One interval's SLO-relevant outcomes, on the logical clock.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SloSample {
    /// Logical end time of the interval, in simulator seconds.
    pub t: u64,
    /// Requests arriving in the interval.
    pub requests: u64,
    /// Requests served from the pool (hits).
    pub hits: u64,
    /// Total seconds callers waited for requests in this interval (the
    /// delta of the run-to-date cumulative wait).
    pub wait_secs: f64,
}

impl SloSample {
    /// Misses (bad events for the hit-rate objective).
    pub fn misses(&self) -> u64 {
        self.requests.saturating_sub(self.hits)
    }

    /// Mean wait per request, or 0 for an idle interval.
    pub fn mean_wait(&self) -> f64 {
        if self.requests == 0 {
            0.0
        } else {
            self.wait_secs / self.requests as f64
        }
    }
}

/// Objectives and window/burn thresholds for one pool.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SloSpec {
    /// Target fraction of requests served from the pool (e.g. `0.90`).
    pub hit_rate_objective: f64,
    /// An interval whose mean wait exceeds this is a bad interval.
    pub wait_objective_secs: f64,
    /// Target fraction of intervals meeting the wait objective.
    pub wait_compliance: f64,
    /// Short evaluation window, logical seconds.
    pub short_window_secs: u64,
    /// Long evaluation window, logical seconds.
    pub long_window_secs: u64,
    /// Page when both windows burn at ≥ this rate.
    pub page_burn_rate: f64,
    /// Warn when both windows burn at ≥ this rate.
    pub warn_burn_rate: f64,
}

impl Default for SloSpec {
    /// Paper-flavoured defaults: 90% hit rate (the reported production
    /// figure), 60 s mean wait at 95% compliance, 5 m/1 h windows, and the
    /// SRE-workbook 14.4×/6× burn thresholds.
    fn default() -> Self {
        Self {
            hit_rate_objective: 0.90,
            wait_objective_secs: 60.0,
            wait_compliance: 0.95,
            short_window_secs: 300,
            long_window_secs: 3600,
            page_burn_rate: 14.4,
            warn_burn_rate: 6.0,
        }
    }
}

/// Alert severity for an objective or a whole pool.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Severity {
    /// Burn rate below the warning threshold in at least one window.
    Ok,
    /// Both windows burning at ≥ the warn threshold.
    Warning,
    /// Both windows burning at ≥ the page threshold.
    Page,
}

impl Severity {
    /// Lower-case name for JSON/docs.
    pub fn as_str(self) -> &'static str {
        match self {
            Severity::Ok => "ok",
            Severity::Warning => "warning",
            Severity::Page => "page",
        }
    }
}

/// Burn-rate measurement in one window.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct WindowBurn {
    /// Window length, logical seconds.
    pub window_secs: u64,
    /// Bad events in the window.
    pub bad: u64,
    /// Total events in the window.
    pub total: u64,
    /// `bad / total` (0 when idle).
    pub error_rate: f64,
    /// `error_rate / error_budget`; `inf` when the budget is zero and
    /// errors occurred.
    pub burn_rate: f64,
}

/// One objective's evaluation across both windows.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ObjectiveStatus {
    /// The objective (fraction of good events).
    pub objective: f64,
    /// Error budget, `1 - objective`.
    pub budget: f64,
    /// Short-window burn.
    pub short: WindowBurn,
    /// Long-window burn.
    pub long: WindowBurn,
    /// Severity; requires *both* windows over a threshold.
    pub severity: Severity,
}

/// A pool's full SLO evaluation at one instant.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SloStatus {
    /// Logical evaluation time.
    pub t: u64,
    /// Hit-rate objective status.
    pub hit: ObjectiveStatus,
    /// Wait-time objective status.
    pub wait: ObjectiveStatus,
    /// `max` of the two objective severities.
    pub severity: Severity,
}

/// Per-pool tracker: retains a long window of samples, evaluates on
/// demand.
#[derive(Debug, Clone)]
pub struct SloTracker {
    spec: SloSpec,
    samples: VecDeque<SloSample>,
    last_t: u64,
}

impl SloTracker {
    /// A tracker with no samples.
    pub fn new(spec: SloSpec) -> Self {
        Self {
            spec,
            samples: VecDeque::new(),
            last_t: 0,
        }
    }

    /// The spec this tracker evaluates against.
    pub fn spec(&self) -> &SloSpec {
        &self.spec
    }

    /// Records one interval sample (non-decreasing `t`) and evicts samples
    /// that have aged out of the long window.
    pub fn record(&mut self, sample: SloSample) {
        self.last_t = self.last_t.max(sample.t);
        self.samples.push_back(sample);
        let horizon = self.last_t.saturating_sub(self.spec.long_window_secs);
        while self
            .samples
            .front()
            .is_some_and(|s| s.t <= horizon && self.samples.len() > 1)
        {
            self.samples.pop_front();
        }
    }

    /// Number of retained samples.
    pub fn len(&self) -> usize {
        self.samples.len()
    }

    /// `true` when no samples have been recorded.
    pub fn is_empty(&self) -> bool {
        self.samples.is_empty()
    }

    fn burn<F>(&self, window_secs: u64, budget: f64, mut tally: F) -> WindowBurn
    where
        F: FnMut(&SloSample) -> (u64, u64),
    {
        let horizon = self.last_t.saturating_sub(window_secs);
        let (mut bad, mut total) = (0u64, 0u64);
        for s in self.samples.iter().rev() {
            if s.t <= horizon {
                break;
            }
            let (b, n) = tally(s);
            bad += b;
            total += n;
        }
        let error_rate = if total == 0 {
            0.0
        } else {
            bad as f64 / total as f64
        };
        let burn_rate = if error_rate == 0.0 {
            0.0
        } else if budget <= 0.0 {
            f64::INFINITY
        } else {
            error_rate / budget
        };
        WindowBurn {
            window_secs,
            bad,
            total,
            error_rate,
            burn_rate,
        }
    }

    fn objective<F>(&self, objective: f64, tally: F) -> ObjectiveStatus
    where
        F: FnMut(&SloSample) -> (u64, u64) + Copy,
    {
        let budget = (1.0 - objective).max(0.0);
        let short = self.burn(self.spec.short_window_secs, budget, tally);
        let long = self.burn(self.spec.long_window_secs, budget, tally);
        let both_at_least = |rate: f64| short.burn_rate >= rate && long.burn_rate >= rate;
        let severity = if both_at_least(self.spec.page_burn_rate) {
            Severity::Page
        } else if both_at_least(self.spec.warn_burn_rate) {
            Severity::Warning
        } else {
            Severity::Ok
        };
        ObjectiveStatus {
            objective,
            budget,
            short,
            long,
            severity,
        }
    }

    /// Evaluates both objectives over both windows as of the latest
    /// recorded sample.
    pub fn status(&self) -> SloStatus {
        let spec = self.spec;
        let hit = self.objective(spec.hit_rate_objective, |s: &SloSample| {
            (s.misses(), s.requests)
        });
        let wait = self.objective(spec.wait_compliance, |s: &SloSample| {
            if s.requests == 0 {
                (0, 0)
            } else {
                (u64::from(s.mean_wait() > spec.wait_objective_secs), 1)
            }
        });
        SloStatus {
            t: self.last_t,
            hit,
            wait,
            severity: hit.severity.max(wait.severity),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spec() -> SloSpec {
        SloSpec::default()
    }

    fn sample(t: u64, requests: u64, hits: u64, wait: f64) -> SloSample {
        SloSample {
            t,
            requests,
            hits,
            wait_secs: wait,
        }
    }

    #[test]
    fn healthy_pool_is_ok() {
        let mut tr = SloTracker::new(spec());
        for i in 1..=60 {
            tr.record(sample(i * 60, 100, 98, 100.0));
        }
        let status = tr.status();
        assert_eq!(status.severity, Severity::Ok);
        // 2% misses against a 10% budget → burn 0.2.
        assert!((status.hit.long.burn_rate - 0.2).abs() < 1e-9);
        assert_eq!(status.wait.long.bad, 0);
    }

    #[test]
    fn total_miss_pages_on_both_windows() {
        let mut tr = SloTracker::new(spec());
        for i in 1..=60 {
            tr.record(sample(i * 60, 100, 0, 0.0));
        }
        let status = tr.status();
        // 100% error rate / 10% budget = burn 10 → below 14.4 page bar…
        assert!((status.hit.short.burn_rate - 10.0).abs() < 1e-9);
        assert_eq!(status.hit.severity, Severity::Warning);

        // …but a tighter objective (98%) pages: burn = 1.0 / 0.02 = 50.
        let mut tight = SloTracker::new(SloSpec {
            hit_rate_objective: 0.98,
            ..spec()
        });
        for i in 1..=60 {
            tight.record(sample(i * 60, 100, 0, 0.0));
        }
        let status = tight.status();
        assert_eq!(status.hit.severity, Severity::Page);
        assert_eq!(status.severity, Severity::Page);
    }

    #[test]
    fn recovered_pool_stops_paging_when_short_window_clears() {
        let mut tr = SloTracker::new(SloSpec {
            hit_rate_objective: 0.98,
            ..spec()
        });
        // 30 minutes of disaster, then 30 minutes of health: the long
        // window still shows a material burn, but the short window is
        // clean — no page (the condition requires both).
        for i in 1..=30 {
            tr.record(sample(i * 60, 100, 0, 0.0));
        }
        for i in 31..=60 {
            tr.record(sample(i * 60, 100, 100, 0.0));
        }
        let status = tr.status();
        assert!(status.hit.long.burn_rate > SloSpec::default().page_burn_rate);
        assert_eq!(status.hit.short.bad, 0);
        assert_eq!(status.hit.severity, Severity::Ok);
    }

    #[test]
    fn wait_objective_counts_bad_intervals() {
        let mut tr = SloTracker::new(SloSpec {
            wait_objective_secs: 10.0,
            wait_compliance: 0.9,
            ..spec()
        });
        // All intervals blow the wait objective: error rate 1.0 against a
        // 0.1 budget → burn 10 ≥ warn (6) but < page (14.4).
        for i in 1..=60 {
            tr.record(sample(i * 60, 10, 10, 200.0));
        }
        let status = tr.status();
        assert_eq!(status.wait.long.bad, 60);
        assert_eq!(status.wait.severity, Severity::Warning);
        assert_eq!(status.severity, Severity::Warning);
    }

    #[test]
    fn idle_pool_never_alerts() {
        let mut tr = SloTracker::new(spec());
        for i in 1..=60 {
            tr.record(sample(i * 60, 0, 0, 0.0));
        }
        let status = tr.status();
        assert_eq!(status.severity, Severity::Ok);
        assert_eq!(status.hit.long.total, 0);
        assert_eq!(status.hit.long.burn_rate, 0.0);
        assert_eq!(status.wait.long.total, 0);
    }

    #[test]
    fn samples_age_out_of_the_long_window() {
        let mut tr = SloTracker::new(spec());
        for i in 1..=200 {
            tr.record(sample(i * 60, 1, 1, 0.0));
        }
        // 1 h window at 60 s intervals keeps ~60 samples.
        assert!(tr.len() <= 61);
        let status = tr.status();
        assert_eq!(status.hit.long.total, 60);
        assert_eq!(status.hit.short.total, 5);
    }

    #[test]
    fn zero_budget_with_errors_burns_infinitely() {
        let mut tr = SloTracker::new(SloSpec {
            hit_rate_objective: 1.0,
            ..spec()
        });
        tr.record(sample(60, 10, 9, 0.0));
        let status = tr.status();
        assert!(status.hit.short.burn_rate.is_infinite());
        assert_eq!(status.hit.severity, Severity::Page);
    }
}
