//! Structured, leveled, rate-limited JSONL logging for the serve stack.
//!
//! The daemon's worker shards used to drop errors on the floor (or would
//! have interleaved bytes had they written to stderr from many threads).
//! This layer gives them one process-wide sink: each record is rendered as
//! a single JSON line and written with one `write_all`, so concurrent
//! threads can never interleave bytes mid-line. Records are also retained
//! in a bounded ring for the [`crate::flight`] recorder.
//!
//! # Gating
//!
//! Logging is gated by *level* (the `IP_LOG` environment variable, default
//! `warn`), not by the `IP_OBS` metrics gate — an operator running with
//! `IP_OBS=0` still wants to see errors. The level check is one relaxed
//! atomic load, so `debug!`-grade call sites in hot paths cost nothing
//! when filtered.
//!
//! # Rate limiting
//!
//! A hot error path (e.g. a flapping client socket) could otherwise log
//! per request. Each `(target, level)` pair gets a token budget of
//! [`RATE_LIMIT_PER_WINDOW`] records per wall-clock second; excess records
//! are counted, and the next record that passes carries the `suppressed`
//! count so the drop is visible in the stream.
//!
//! Line schema (one object per line):
//!
//! ```json
//! {"type":"log","seq":3,"t_ms":152,"level":"warn","target":"serve.accept",
//!  "msg":"accept failed","fields":{"errno":11.0},"suppressed":0}
//! ```

use crate::export::{json_number, json_string};
use std::collections::VecDeque;
use std::fmt::Write as _;
use std::fs::File;
use std::io::Write as _;
use std::sync::atomic::{AtomicU8, Ordering};
use std::sync::Mutex;
use std::time::Instant;

/// Retained records for the flight recorder.
pub const RING_CAP: usize = 2048;

/// Per-`(target, level)` records allowed per wall-clock second.
pub const RATE_LIMIT_PER_WINDOW: u64 = 50;

/// Log severity, ordered `Debug < Info < Warn < Error`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Level {
    /// Diagnostic detail, off by default.
    Debug = 0,
    /// Routine lifecycle messages.
    Info = 1,
    /// Recoverable anomalies (default threshold).
    Warn = 2,
    /// Failures that lost work or degraded service.
    Error = 3,
}

impl Level {
    /// Lower-case name used in the JSONL `level` field and `IP_LOG`.
    pub fn as_str(self) -> &'static str {
        match self {
            Level::Debug => "debug",
            Level::Info => "info",
            Level::Warn => "warn",
            Level::Error => "error",
        }
    }

    /// Parses an `IP_LOG` value (`debug|info|warn|error`, plus `off` which
    /// maps above every level).
    pub fn parse(s: &str) -> Option<Level> {
        match s.trim().to_ascii_lowercase().as_str() {
            "debug" => Some(Level::Debug),
            "info" => Some(Level::Info),
            "warn" | "warning" => Some(Level::Warn),
            "error" => Some(Level::Error),
            _ => None,
        }
    }
}

/// 0 = uninitialised; otherwise threshold + 1 (5 = off).
static THRESHOLD: AtomicU8 = AtomicU8::new(0);
const OFF: u8 = 5;

/// The active threshold: records below it are filtered. First call reads
/// `IP_LOG` (default `warn`; `off`/`none` disables logging entirely);
/// afterwards it is one relaxed atomic load.
#[inline]
pub fn threshold() -> Option<Level> {
    match THRESHOLD.load(Ordering::Relaxed) {
        0 => init_from_env(),
        OFF => None,
        n => Some(level_from(n - 1)),
    }
}

fn level_from(n: u8) -> Level {
    match n {
        0 => Level::Debug,
        1 => Level::Info,
        2 => Level::Warn,
        _ => Level::Error,
    }
}

#[cold]
fn init_from_env() -> Option<Level> {
    let level = match std::env::var("IP_LOG") {
        Ok(v) if matches!(v.trim().to_ascii_lowercase().as_str(), "off" | "none" | "0") => None,
        Ok(v) => Some(Level::parse(&v).unwrap_or(Level::Warn)),
        Err(_) => Some(Level::Warn),
    };
    THRESHOLD.store(level.map_or(OFF, |l| l as u8 + 1), Ordering::Relaxed);
    level
}

/// Overrides the `IP_LOG` threshold (`None` disables logging). Used by the
/// CLI's `--log-out` flag and by tests.
pub fn set_threshold(level: Option<Level>) {
    THRESHOLD.store(level.map_or(OFF, |l| l as u8 + 1), Ordering::Relaxed);
}

/// Whether a record at `level` would currently be emitted.
#[inline]
pub fn enabled_at(level: Level) -> bool {
    threshold().is_some_and(|t| level >= t)
}

struct Limiter {
    window_start_ms: u64,
    emitted: u64,
    suppressed: u64,
}

struct LogSink {
    epoch: Option<Instant>,
    seq: u64,
    ring: VecDeque<String>,
    // (target, level) → budget state. Target cardinality is a handful of
    // static call sites, so a linear scan beats hashing.
    limiters: Vec<(String, Level, Limiter)>,
    out: Option<File>,
    dropped: u64,
}

static SINK: Mutex<LogSink> = Mutex::new(LogSink {
    epoch: None,
    seq: 0,
    ring: VecDeque::new(),
    limiters: Vec::new(),
    out: None,
    dropped: 0,
});

/// Directs emitted lines to `path` (created or truncated) in addition to
/// the in-memory ring. Pass-through errors come from `File::create`.
pub fn set_output(path: &str) -> std::io::Result<()> {
    let file = File::create(path)?;
    let mut sink = SINK.lock().expect("obs log sink poisoned");
    sink.out = Some(file);
    Ok(())
}

/// Detaches the file output, if any (the ring keeps recording).
pub fn clear_output() {
    let mut sink = SINK.lock().expect("obs log sink poisoned");
    sink.out = None;
}

/// Appends a record. Filtered records cost one atomic load; rate-limited
/// records are counted (the count rides on the next emitted record for the
/// same `(target, level)`). `fields` are numeric, like trace events.
pub fn log(level: Level, target: &str, msg: &str, fields: &[(&str, f64)]) {
    if !enabled_at(level) {
        return;
    }
    let mut sink = SINK.lock().expect("obs log sink poisoned");
    let sink = &mut *sink;
    let epoch = *sink.epoch.get_or_insert_with(Instant::now);
    let t_ms = epoch.elapsed().as_millis() as u64;

    let idx = match sink
        .limiters
        .iter()
        .position(|(t, l, _)| *l == level && t == target)
    {
        Some(i) => i,
        None => {
            sink.limiters.push((
                target.to_string(),
                level,
                Limiter {
                    window_start_ms: t_ms,
                    emitted: 0,
                    suppressed: 0,
                },
            ));
            sink.limiters.len() - 1
        }
    };
    let limiter = &mut sink.limiters[idx].2;
    if t_ms.saturating_sub(limiter.window_start_ms) >= 1000 {
        limiter.window_start_ms = t_ms;
        limiter.emitted = 0;
    }
    if limiter.emitted >= RATE_LIMIT_PER_WINDOW {
        limiter.suppressed += 1;
        sink.dropped += 1;
        return;
    }
    limiter.emitted += 1;
    let suppressed = std::mem::take(&mut limiter.suppressed);

    sink.seq += 1;
    let mut line = String::with_capacity(96);
    let _ = write!(
        line,
        "{{\"type\":\"log\",\"seq\":{},\"t_ms\":{},\"level\":{},\"target\":{},\"msg\":{},\"fields\":{{",
        sink.seq,
        t_ms,
        json_string(level.as_str()),
        json_string(target),
        json_string(msg)
    );
    for (i, (k, v)) in fields.iter().enumerate() {
        if i > 0 {
            line.push(',');
        }
        let _ = write!(line, "{}:{}", json_string(k), json_number(*v));
    }
    let _ = write!(line, "}},\"suppressed\":{suppressed}}}");

    if let Some(out) = sink.out.as_mut() {
        // One write per line: concurrent threads serialize on the sink
        // lock, so bytes can never interleave mid-record.
        let _ = out.write_all(line.as_bytes());
        let _ = out.write_all(b"\n");
    }
    if sink.ring.len() >= RING_CAP {
        sink.ring.pop_front();
        sink.dropped += 1;
    }
    sink.ring.push_back(line);
}

/// Shorthand for [`log`] at [`Level::Debug`].
#[inline]
pub fn debug(target: &str, msg: &str, fields: &[(&str, f64)]) {
    log(Level::Debug, target, msg, fields);
}

/// Shorthand for [`log`] at [`Level::Info`].
#[inline]
pub fn info(target: &str, msg: &str, fields: &[(&str, f64)]) {
    log(Level::Info, target, msg, fields);
}

/// Shorthand for [`log`] at [`Level::Warn`].
#[inline]
pub fn warn(target: &str, msg: &str, fields: &[(&str, f64)]) {
    log(Level::Warn, target, msg, fields);
}

/// Shorthand for [`log`] at [`Level::Error`].
#[inline]
pub fn error(target: &str, msg: &str, fields: &[(&str, f64)]) {
    log(Level::Error, target, msg, fields);
}

/// The most recent `n` rendered lines (oldest first), for the flight
/// recorder and tests.
pub fn recent(n: usize) -> Vec<String> {
    let sink = SINK.lock().expect("obs log sink poisoned");
    let skip = sink.ring.len().saturating_sub(n);
    sink.ring.iter().skip(skip).cloned().collect()
}

/// Records filtered out by rate limiting or evicted from the ring.
pub fn dropped() -> u64 {
    SINK.lock().expect("obs log sink poisoned").dropped
}

/// Clears the ring, limiters, sequence, and file output (tests, repeated
/// CLI runs).
pub fn reset() {
    let mut sink = SINK.lock().expect("obs log sink poisoned");
    sink.seq = 0;
    sink.ring.clear();
    sink.limiters.clear();
    sink.out = None;
    sink.dropped = 0;
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn levels_filter_and_render() {
        let _g = crate::tests::GATE.lock().unwrap();
        set_threshold(Some(Level::Warn));
        reset();
        debug("t", "hidden", &[]);
        info("t", "hidden", &[]);
        warn("serve.accept", "accept failed", &[("errno", 11.0)]);
        error("serve.worker", "respond failed", &[]);
        let lines = recent(10);
        assert_eq!(lines.len(), 2);
        assert!(lines[0].contains("\"level\":\"warn\""));
        assert!(lines[0].contains("\"target\":\"serve.accept\""));
        assert!(lines[0].contains("\"errno\":11.0"));
        assert!(lines[1].contains("\"level\":\"error\""));
        assert!(lines[1].contains("\"seq\":2"));
        set_threshold(None);
        reset();
    }

    #[test]
    fn rate_limit_suppresses_and_reports() {
        let _g = crate::tests::GATE.lock().unwrap();
        set_threshold(Some(Level::Warn));
        reset();
        for _ in 0..RATE_LIMIT_PER_WINDOW + 7 {
            warn("hot", "flap", &[]);
        }
        let lines = recent(usize::MAX);
        assert_eq!(lines.len(), RATE_LIMIT_PER_WINDOW as usize);
        assert_eq!(dropped(), 7);
        // Other targets are unaffected.
        error("cold", "one-off", &[]);
        assert_eq!(recent(usize::MAX).len() as u64, RATE_LIMIT_PER_WINDOW + 1);
        set_threshold(None);
        reset();
    }

    #[test]
    fn off_threshold_disables_everything() {
        let _g = crate::tests::GATE.lock().unwrap();
        set_threshold(None);
        reset();
        error("t", "lost", &[]);
        assert!(recent(10).is_empty());
        assert!(!enabled_at(Level::Error));
        reset();
    }

    #[test]
    fn ring_is_bounded() {
        let _g = crate::tests::GATE.lock().unwrap();
        set_threshold(Some(Level::Debug));
        reset();
        // Spread across targets to dodge the per-target limiter.
        for i in 0..RING_CAP + 10 {
            let target = format!("t{}", i % 97);
            // Burn through limiter windows by using many targets; the ring
            // cap is what we're testing, so use debug level and accept
            // limiter drops for repeated targets — emit enough to overflow.
            debug(&target, "fill", &[("i", i as f64)]);
        }
        assert!(recent(usize::MAX).len() <= RING_CAP);
        set_threshold(None);
        reset();
    }
}
