//! Per-thread buffering of observability output, with a deterministic
//! ordered fold into the shared registry and trace sink.
//!
//! The fleet simulator runs each pool's event loop on its own worker
//! thread; if those loops wrote straight into the process-wide registry
//! and trace sink, the interleaving — and therefore the exported bytes —
//! would depend on scheduling. Instead a worker installs a [`capture`]
//! window around each pool's epoch: every metric mutation, logical-clock
//! event, and span the pool emits lands in a thread-local [`LocalObs`]
//! buffer. After the epoch the caller hands all buffers, in pool
//! *registration order*, to [`fold_ordered`], which replays them into the
//! shared sinks in exactly the order the serial interleave would have
//! produced:
//!
//! * **metric ops** replay buffer-by-buffer, op-by-op. Pools never share a
//!   metric series (the fleet rejects duplicate `pool` labels), so each
//!   series sees precisely its serial op sequence — counter and histogram
//!   float accumulation is bit-identical, not merely equal-up-to-rounding.
//! * **events** are k-way merged on `(logical time, buffer index)`, stable
//!   within a buffer. Each buffer's events are emitted by a time-ordered
//!   event loop, so the merge reconstructs the global logical-time order
//!   with registration-order tie-breaks — the serial interleave's order.
//! * **spans** replay buffer-by-buffer with freshly allocated ids and
//!   their local parent structure preserved. Span *durations* are
//!   wall-clock and never byte-stable; only counts and nesting are.
//!
//! The only observable divergence from a serial run is at the trace-sink
//! record cap: when a run overflows [`crate::trace::MAX_RECORDS`], the
//! serial and folded paths may retain different span records (events and
//! metrics are unaffected below ~the cap's event share).

use crate::trace::EventRecord;
use std::cell::RefCell;
use std::time::Instant;

/// One buffered metric mutation, replayed verbatim at fold time.
#[derive(Debug, Clone)]
pub(crate) enum MetricOp {
    /// `counter_add`.
    CounterAdd {
        name: String,
        labels: Vec<(String, String)>,
        v: f64,
    },
    /// `gauge_set`.
    GaugeSet {
        name: String,
        labels: Vec<(String, String)>,
        v: f64,
    },
    /// `observe_with`.
    Observe {
        name: String,
        labels: Vec<(String, String)>,
        bounds: Vec<f64>,
        v: f64,
    },
    /// `declare_histogram`.
    Declare {
        name: String,
        labels: Vec<(String, String)>,
        bounds: Vec<f64>,
    },
    /// `describe`.
    Describe { name: String, help: String },
}

/// A closed span recorded inside a capture window. Ids are local to the
/// window; [`fold_ordered`] maps them onto fresh global ids.
#[derive(Debug, Clone)]
pub(crate) struct LocalSpanRecord {
    pub(crate) local_id: u64,
    pub(crate) parent: Option<u64>,
    pub(crate) name: String,
    pub(crate) thread: String,
    pub(crate) start_ns: u64,
    pub(crate) dur_ns: u64,
}

/// Everything one capture window recorded, in emission order.
#[derive(Debug, Default)]
pub struct LocalObs {
    pub(crate) ops: Vec<MetricOp>,
    pub(crate) events: Vec<EventRecord>,
    pub(crate) spans: Vec<LocalSpanRecord>,
}

impl LocalObs {
    /// `true` when the window recorded nothing.
    pub fn is_empty(&self) -> bool {
        self.ops.is_empty() && self.events.is_empty() && self.spans.is_empty()
    }

    /// Number of buffered logical-clock events.
    pub fn event_count(&self) -> usize {
        self.events.len()
    }
}

struct CaptureState {
    buf: LocalObs,
    next_span_id: u64,
    span_stack: Vec<u64>,
    epoch: Instant,
}

thread_local! {
    static CAPTURE: RefCell<Option<CaptureState>> = const { RefCell::new(None) };
}

/// An active capture window on the current thread. Obtain with
/// [`capture`]; call [`CaptureGuard::finish`] to uninstall it and take the
/// buffer. Dropping the guard without finishing (an unwind) uninstalls and
/// discards.
#[derive(Debug)]
pub struct CaptureGuard {
    installed: bool,
    // Thread-local state: the guard must not leave its thread.
    _not_send: std::marker::PhantomData<*const ()>,
}

/// Begins buffering this thread's observability output. Panics if a
/// capture window is already active on this thread (capture does not
/// nest). When observability is disabled the guard is inert and
/// [`CaptureGuard::finish`] returns an empty buffer.
pub fn capture() -> CaptureGuard {
    if !crate::enabled() {
        return CaptureGuard {
            installed: false,
            _not_send: std::marker::PhantomData,
        };
    }
    let epoch = crate::trace::trace_epoch();
    CAPTURE.with(|slot| {
        let mut slot = slot.borrow_mut();
        assert!(slot.is_none(), "ip-obs capture windows do not nest");
        *slot = Some(CaptureState {
            buf: LocalObs::default(),
            next_span_id: 1,
            span_stack: Vec::new(),
            epoch,
        });
    });
    CaptureGuard {
        installed: true,
        _not_send: std::marker::PhantomData,
    }
}

impl CaptureGuard {
    /// Uninstalls the window and returns everything it buffered.
    pub fn finish(mut self) -> LocalObs {
        if !self.installed {
            return LocalObs::default();
        }
        self.installed = false;
        CAPTURE.with(|slot| {
            slot.borrow_mut()
                .take()
                .map(|state| state.buf)
                .unwrap_or_default()
        })
    }
}

impl Drop for CaptureGuard {
    fn drop(&mut self) {
        if self.installed {
            CAPTURE.with(|slot| slot.take());
        }
    }
}

/// Whether a capture window is active on the current thread.
pub(crate) fn active() -> bool {
    CAPTURE.with(|slot| slot.borrow().is_some())
}

fn with_active<R>(f: impl FnOnce(&mut CaptureState) -> R) -> Option<R> {
    CAPTURE.with(|slot| slot.borrow_mut().as_mut().map(f))
}

fn owned(labels: &[(&str, &str)]) -> Vec<(String, String)> {
    labels
        .iter()
        .map(|(k, v)| (k.to_string(), v.to_string()))
        .collect()
}

/// Buffers a counter add if a window is active. Returns `true` when
/// captured (the caller must then skip the global registry).
pub(crate) fn try_counter_add(name: &str, labels: &[(&str, &str)], v: f64) -> bool {
    with_active(|s| {
        s.buf.ops.push(MetricOp::CounterAdd {
            name: name.to_string(),
            labels: owned(labels),
            v,
        });
    })
    .is_some()
}

/// Buffers a gauge set if a window is active.
pub(crate) fn try_gauge_set(name: &str, labels: &[(&str, &str)], v: f64) -> bool {
    with_active(|s| {
        s.buf.ops.push(MetricOp::GaugeSet {
            name: name.to_string(),
            labels: owned(labels),
            v,
        });
    })
    .is_some()
}

/// Buffers a histogram observation if a window is active.
pub(crate) fn try_observe(name: &str, labels: &[(&str, &str)], bounds: &[f64], v: f64) -> bool {
    with_active(|s| {
        s.buf.ops.push(MetricOp::Observe {
            name: name.to_string(),
            labels: owned(labels),
            bounds: bounds.to_vec(),
            v,
        });
    })
    .is_some()
}

/// Buffers a histogram declaration if a window is active.
pub(crate) fn try_declare(name: &str, labels: &[(&str, &str)], bounds: &[f64]) -> bool {
    with_active(|s| {
        s.buf.ops.push(MetricOp::Declare {
            name: name.to_string(),
            labels: owned(labels),
            bounds: bounds.to_vec(),
        });
    })
    .is_some()
}

/// Buffers a `# HELP` registration if a window is active.
pub(crate) fn try_describe(name: &str, help: &str) -> bool {
    with_active(|s| {
        s.buf.ops.push(MetricOp::Describe {
            name: name.to_string(),
            help: help.to_string(),
        });
    })
    .is_some()
}

/// Buffers a logical-clock event if a window is active.
pub(crate) fn try_event(name: &str, t: u64, fields: &[(&str, f64)]) -> bool {
    with_active(|s| {
        s.buf.events.push(EventRecord {
            name: name.to_string(),
            t,
            fields: fields.iter().map(|(k, v)| (k.to_string(), *v)).collect(),
        });
    })
    .is_some()
}

/// Opens a span inside the active window, if any: allocates a window-local
/// id, pushes it on the local stack, and returns `(local_id, start_ns)`
/// relative to the process trace epoch.
pub(crate) fn try_begin_span(start: Instant) -> Option<(u64, u64)> {
    with_active(|s| {
        let id = s.next_span_id;
        s.next_span_id += 1;
        s.span_stack.push(id);
        let start_ns = start.duration_since(s.epoch).as_nanos() as u64;
        (id, start_ns)
    })
}

/// Closes the window-local span `local_id`, recording its parent from the
/// local stack.
pub(crate) fn end_span(local_id: u64, name: &'static str, start_ns: u64, dur_ns: u64) {
    let recorded = with_active(|s| {
        debug_assert_eq!(
            s.span_stack.last(),
            Some(&local_id),
            "captured span drop out of order"
        );
        s.span_stack.pop();
        let parent = s.span_stack.last().copied();
        s.buf.spans.push(LocalSpanRecord {
            local_id,
            parent,
            name: name.to_string(),
            thread: crate::trace::thread_label(),
            start_ns,
            dur_ns,
        });
    });
    // A span that outlives its capture window (guard leaked across
    // `finish`) is dropped on the floor rather than corrupting the global
    // stack it was never part of.
    debug_assert!(recorded.is_some(), "captured span closed after finish()");
}

/// Replays captured buffers into the global registry and trace, in the
/// deterministic order described in the module docs. `buffers` must be in
/// source registration order — the merge breaks logical-time ties by
/// buffer index — and each buffer's events must be non-decreasing in `t`
/// (true for any time-ordered event loop). No-op when observability is
/// disabled.
pub fn fold_ordered(buffers: Vec<LocalObs>) {
    if !crate::enabled() {
        return;
    }
    // Metrics: buffer-by-buffer, op-by-op. Series are disjoint across
    // sources, so this is each series' exact serial op sequence.
    let registry = crate::global();
    fn l(labels: &[(String, String)]) -> Vec<(&str, &str)> {
        labels
            .iter()
            .map(|(k, v)| (k.as_str(), v.as_str()))
            .collect()
    }
    for buf in &buffers {
        for op in &buf.ops {
            match op {
                MetricOp::CounterAdd { name, labels, v } => {
                    registry.counter_add(name, &l(labels), *v);
                }
                MetricOp::GaugeSet { name, labels, v } => {
                    registry.gauge_set(name, &l(labels), *v);
                }
                MetricOp::Observe {
                    name,
                    labels,
                    bounds,
                    v,
                } => registry.observe_with(name, &l(labels), bounds, *v),
                MetricOp::Declare {
                    name,
                    labels,
                    bounds,
                } => registry.declare_histogram(name, &l(labels), bounds),
                MetricOp::Describe { name, help } => registry.describe(name, help),
            }
        }
    }

    // Events: k-way merge on (t, buffer index), stable within a buffer.
    let total: usize = buffers.iter().map(|b| b.events.len()).sum();
    let mut merged = Vec::with_capacity(total);
    let mut cursors: Vec<std::iter::Peekable<std::vec::IntoIter<EventRecord>>> = Vec::new();
    let mut spans_by_buffer = Vec::with_capacity(buffers.len());
    for buf in buffers {
        cursors.push(buf.events.into_iter().peekable());
        spans_by_buffer.push(buf.spans);
    }
    use std::cmp::Reverse;
    use std::collections::BinaryHeap;
    let mut heap: BinaryHeap<Reverse<(u64, usize)>> = cursors
        .iter_mut()
        .enumerate()
        .filter_map(|(i, c)| c.peek().map(|e| Reverse((e.t, i))))
        .collect();
    while let Some(Reverse((_, i))) = heap.pop() {
        let ev = cursors[i].next().expect("heap entry implies an event");
        merged.push(ev);
        if let Some(next) = cursors[i].peek() {
            heap.push(Reverse((next.t, i)));
        }
    }
    crate::trace::append_events(merged);

    // Spans: buffer-by-buffer with fresh global ids, structure preserved.
    for spans in spans_by_buffer {
        crate::trace::append_local_spans(&spans);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn capture_buffers_and_fold_replays() {
        let _g = crate::tests::GATE.lock().unwrap();
        crate::set_enabled(true);
        crate::reset();

        // Two "pools" captured back to back on this thread, then folded.
        let cap = capture();
        crate::counter_add("c_total", &[("pool", "a")], 1.5);
        crate::event("tick", 60, &[("x", 1.0)]);
        crate::event("tick", 120, &[("x", 2.0)]);
        {
            let _s = crate::span("pool_a_work");
        }
        let a = cap.finish();
        let cap = capture();
        crate::counter_add("c_total", &[("pool", "b")], 2.0);
        crate::event("tick", 60, &[("x", 10.0)]);
        crate::event("tick", 90, &[("x", 11.0)]);
        let b = cap.finish();

        // Nothing reached the shared sinks while buffering.
        assert!(crate::global().snapshot().is_empty());
        assert_eq!(a.event_count(), 2);
        assert!(!b.is_empty());

        fold_ordered(vec![a, b]);
        let snap = crate::global().snapshot();
        assert_eq!(snap.len(), 2);
        let trace = crate::take_trace();
        // Merged on (t, buffer index): a@60, b@60, b@90, a@120.
        let order: Vec<(u64, f64)> = trace.events.iter().map(|e| (e.t, e.fields[0].1)).collect();
        assert_eq!(order, vec![(60, 1.0), (60, 10.0), (90, 11.0), (120, 2.0)]);
        assert_eq!(trace.spans.len(), 1);
        assert_eq!(trace.spans[0].name, "pool_a_work");
        crate::set_enabled(false);
        crate::reset();
    }

    #[test]
    fn captured_span_nesting_survives_the_fold() {
        let _g = crate::tests::GATE.lock().unwrap();
        crate::set_enabled(true);
        crate::reset();
        let cap = capture();
        {
            let _outer = crate::span("outer");
            let _inner = crate::span("inner");
        }
        fold_ordered(vec![cap.finish()]);
        let trace = crate::take_trace();
        assert_eq!(trace.spans.len(), 2);
        let inner = trace.spans.iter().find(|s| s.name == "inner").unwrap();
        let outer = trace.spans.iter().find(|s| s.name == "outer").unwrap();
        assert_eq!(inner.parent, Some(outer.id));
        assert_eq!(outer.parent, None);
        crate::set_enabled(false);
        crate::reset();
    }

    /// The lock-sharded registry (PR 7) must produce the same Prometheus
    /// bytes whether ops arrive serially or through concurrent capture
    /// windows replayed with [`fold_ordered`]. Each worker writes several
    /// series chosen to land on *shared* shards across workers, so the
    /// test exercises cross-thread shard contention, not just disjoint
    /// maps.
    #[test]
    fn sharded_registry_is_byte_identical_under_concurrent_capture() {
        let _g = crate::tests::GATE.lock().unwrap();
        crate::set_enabled(true);
        crate::reset();

        const WORKERS: usize = 8;
        const OPS: usize = 200;

        // Worker w's op k, replayed identically by the serial reference.
        fn emit(w: usize, k: usize) {
            let pool = ["east", "west", "north", "south"][w % 4];
            let v = (w * 31 + k) as f64 * 0.37;
            crate::counter_add("cap_hits_total", &[("pool", pool)], v);
            crate::gauge_set("cap_size", &[("pool", pool), ("w", "x")], v);
            crate::observe("cap_wait_seconds", &[("pool", pool)], v % 120.0);
        }

        // Concurrent: one capture window per worker thread.
        let buffers: Vec<LocalObs> = std::thread::scope(|scope| {
            let handles: Vec<_> = (0..WORKERS)
                .map(|w| {
                    scope.spawn(move || {
                        let cap = capture();
                        for k in 0..OPS {
                            emit(w, k);
                        }
                        cap.finish()
                    })
                })
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().expect("capture worker panicked"))
                .collect()
        });
        assert!(crate::global().snapshot().is_empty());
        fold_ordered(buffers);
        let folded = crate::export::render_prometheus(crate::global());

        // Serial reference: same ops, same registration order, fresh
        // registry — no capture, no threads.
        crate::reset();
        for w in 0..WORKERS {
            for k in 0..OPS {
                emit(w, k);
            }
        }
        let serial = crate::export::render_prometheus(crate::global());

        assert!(!folded.is_empty() && folded.contains("cap_hits_total"));
        assert_eq!(
            folded, serial,
            "folded capture replay must match the serial interleave byte-for-byte"
        );
        crate::set_enabled(false);
        crate::reset();
    }

    #[test]
    fn disabled_capture_is_inert() {
        let _g = crate::tests::GATE.lock().unwrap();
        crate::set_enabled(false);
        let cap = capture();
        crate::counter_add("c_total", &[], 1.0);
        assert!(cap.finish().is_empty());
    }
}
