//! A flight recorder: bounded rings of recent state, dumped as
//! schema-stable JSON for post-mortems.
//!
//! The daemon samples its dashboards once per controller tick and appends
//! a compact numeric snapshot here; notable lifecycle moments (reloads,
//! drains, alert transitions) land as *notes*. Everything is bounded —
//! [`SNAPSHOT_CAP`] snapshots and [`NOTE_CAP`] notes, oldest evicted first
//! — so the recorder costs O(ring) memory no matter how long the process
//! runs, exactly like an aircraft FDR. [`dump`]/[`dump_with`] render the
//! rings (plus the [`crate::log`] ring and any caller-supplied
//! pre-serialized sections, e.g. the serve stack's slow-request ring and
//! SLO statuses) as one `ip-flight/1` JSON document. The daemon serves it
//! at `GET /debug/flight` and writes it to disk on drain.
//!
//! Recording is tick-granularity, not per-request, so it stays outside the
//! hot path's `IP_OBS=0` budget and is always on: a crash after a quiet
//! night still leaves evidence.
//!
//! Schema (`"schema":"ip-flight/1"`):
//!
//! ```json
//! {"schema":"ip-flight/1",
//!  "snapshots":[{"t":120,"metrics":{"pool.east.hit_rate":98.0}}],
//!  "dropped_snapshots":0,
//!  "notes":[{"t":240,"kind":"reload","detail":"pool east model=mlp"}],
//!  "dropped_notes":0,
//!  "logs":[{"type":"log","seq":1,...}],
//!  "sections":{"slow_requests":[...],"slo":{...}}}
//! ```

use crate::export::{json_number, json_string};
use std::collections::VecDeque;
use std::fmt::Write as _;
use std::sync::Mutex;

/// Retained periodic snapshots.
pub const SNAPSHOT_CAP: usize = 360;

/// Retained notes.
pub const NOTE_CAP: usize = 512;

/// Log lines included in a dump.
pub const LOG_LINES_IN_DUMP: usize = 256;

/// One periodic numeric snapshot on the logical clock.
#[derive(Debug, Clone, PartialEq)]
pub struct Snapshot {
    /// Logical time (simulator seconds) of the sample.
    pub t: u64,
    /// Named values, in emission order.
    pub entries: Vec<(String, f64)>,
}

/// One notable moment.
#[derive(Debug, Clone, PartialEq)]
pub struct Note {
    /// Logical time of the moment.
    pub t: u64,
    /// Short machine-readable kind (`reload`, `drain`, `slo_page`, …).
    pub kind: String,
    /// Free-form human detail.
    pub detail: String,
}

#[derive(Default)]
struct FlightState {
    snapshots: VecDeque<Snapshot>,
    notes: VecDeque<Note>,
    dropped_snapshots: u64,
    dropped_notes: u64,
}

static STATE: Mutex<FlightState> = Mutex::new(FlightState {
    snapshots: VecDeque::new(),
    notes: VecDeque::new(),
    dropped_snapshots: 0,
    dropped_notes: 0,
});

/// Appends a periodic snapshot, evicting the oldest past [`SNAPSHOT_CAP`].
pub fn record_snapshot(t: u64, entries: &[(&str, f64)]) {
    let mut state = STATE.lock().expect("obs flight state poisoned");
    if state.snapshots.len() >= SNAPSHOT_CAP {
        state.snapshots.pop_front();
        state.dropped_snapshots += 1;
    }
    state.snapshots.push_back(Snapshot {
        t,
        entries: entries.iter().map(|(k, v)| (k.to_string(), *v)).collect(),
    });
}

/// Appends a note, evicting the oldest past [`NOTE_CAP`].
pub fn note(t: u64, kind: &str, detail: &str) {
    let mut state = STATE.lock().expect("obs flight state poisoned");
    if state.notes.len() >= NOTE_CAP {
        state.notes.pop_front();
        state.dropped_notes += 1;
    }
    state.notes.push_back(Note {
        t,
        kind: kind.to_string(),
        detail: detail.to_string(),
    });
}

/// Number of retained snapshots (tests).
pub fn snapshot_count() -> usize {
    STATE
        .lock()
        .expect("obs flight state poisoned")
        .snapshots
        .len()
}

/// Renders the recorder with no extra sections.
pub fn dump() -> String {
    dump_with(&[])
}

/// Renders the recorder as an `ip-flight/1` JSON document. Each entry in
/// `sections` is a `(name, pre-serialized JSON value)` pair embedded
/// verbatim under `"sections"` — callers with richer state (the serve
/// stack's slow-request ring, SLO statuses) serialize it themselves and
/// hand it in, keeping this crate dependency-free.
pub fn dump_with(sections: &[(&str, String)]) -> String {
    let state = STATE.lock().expect("obs flight state poisoned");
    let mut out = String::with_capacity(4096);
    out.push_str("{\"schema\":\"ip-flight/1\",\"snapshots\":[");
    for (i, snap) in state.snapshots.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let _ = write!(out, "{{\"t\":{},\"metrics\":{{", snap.t);
        for (j, (k, v)) in snap.entries.iter().enumerate() {
            if j > 0 {
                out.push(',');
            }
            let _ = write!(out, "{}:{}", json_string(k), json_number(*v));
        }
        out.push_str("}}");
    }
    let _ = write!(
        out,
        "],\"dropped_snapshots\":{},\"notes\":[",
        state.dropped_snapshots
    );
    for (i, note) in state.notes.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let _ = write!(
            out,
            "{{\"t\":{},\"kind\":{},\"detail\":{}}}",
            note.t,
            json_string(&note.kind),
            json_string(&note.detail)
        );
    }
    let _ = write!(
        out,
        "],\"dropped_notes\":{},\"logs\":[",
        state.dropped_notes
    );
    drop(state);
    for (i, line) in crate::log::recent(LOG_LINES_IN_DUMP).iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(line);
    }
    out.push_str("],\"sections\":{");
    for (i, (name, body)) in sections.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let _ = write!(out, "{}:{}", json_string(name), body);
    }
    out.push_str("}}");
    out
}

/// Clears both rings (tests, repeated CLI runs).
pub fn reset() {
    let mut state = STATE.lock().expect("obs flight state poisoned");
    state.snapshots.clear();
    state.notes.clear();
    state.dropped_snapshots = 0;
    state.dropped_notes = 0;
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dump_renders_rings_and_sections() {
        let _g = crate::tests::GATE.lock().unwrap();
        reset();
        crate::log::reset();
        crate::log::set_threshold(Some(crate::log::Level::Warn));
        record_snapshot(60, &[("pool.east.hit_rate", 98.5), ("pool.east.size", 3.0)]);
        record_snapshot(120, &[("pool.east.hit_rate", 97.0)]);
        note(90, "reload", "pool east model=mlp");
        crate::log::warn("serve.accept", "accept failed", &[]);
        let dump = dump_with(&[("slo", "{\"severity\":\"ok\"}".to_string())]);
        assert!(dump.starts_with("{\"schema\":\"ip-flight/1\""));
        assert!(dump.contains("\"t\":60,\"metrics\":{\"pool.east.hit_rate\":98.5"));
        assert!(dump.contains("\"kind\":\"reload\""));
        assert!(dump.contains("\"msg\":\"accept failed\""));
        assert!(dump.contains("\"sections\":{\"slo\":{\"severity\":\"ok\"}}"));
        crate::log::set_threshold(None);
        crate::log::reset();
        reset();
    }

    #[test]
    fn rings_are_bounded() {
        let _g = crate::tests::GATE.lock().unwrap();
        reset();
        for i in 0..SNAPSHOT_CAP as u64 + 5 {
            record_snapshot(i, &[("x", i as f64)]);
        }
        for i in 0..NOTE_CAP as u64 + 3 {
            note(i, "k", "d");
        }
        let dump = dump();
        assert!(dump.contains("\"dropped_snapshots\":5"));
        assert!(dump.contains("\"dropped_notes\":3"));
        assert_eq!(snapshot_count(), SNAPSHOT_CAP);
        reset();
    }
}
