//! Exposition round-trips under hostile inputs, and Chrome-trace schema
//! validity.
//!
//! The vendored proptest has no string strategies, so hostile strings are
//! generated as index vectors mapped into an alphabet stacked with the
//! characters the Prometheus escapers must handle (`\`, `"`, newline,
//! multi-byte, separators).

use ip_obs::export::{parse_exposition, parse_prometheus, render_prometheus, trace_to_chrome};
use ip_obs::{EventRecord, Registry, SpanRecord, Trace};
use proptest::prelude::*;
use serde::Content;

const LABEL_ALPHABET: &[char] = &[
    '\\', '"', '\n', 'a', 'B', '0', 'é', ' ', '{', '}', ',', '=', '_',
];

// No space: the parser trims sample lines, so trailing spaces in HELP text
// are not representable (matching real scrapers).
const HELP_ALPHABET: &[char] = &['\\', '"', '\n', 'a', 'B', '0', 'é', '{', ',', '='];

fn hostile_string(alphabet: &'static [char]) -> impl Strategy<Value = String> {
    proptest::collection::vec(0usize..alphabet.len(), 0..24)
        .prop_map(move |idx| idx.into_iter().map(|i| alphabet[i]).collect())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn hostile_label_values_round_trip(value in hostile_string(LABEL_ALPHABET)) {
        let reg = Registry::new();
        reg.counter_add("series_total", &[("path", &value)], 2.0);
        reg.gauge_set("level", &[("path", &value), ("zone", "a b")], -1.5);
        let text = render_prometheus(&reg);
        let samples = parse_prometheus(&text).unwrap();
        prop_assert_eq!(samples.len(), 2);
        let gauge = samples.iter().find(|s| s.name == "level").unwrap();
        prop_assert_eq!(&gauge.labels[0].1, &value);
        prop_assert_eq!(&gauge.labels[1].1, "a b");
        prop_assert_eq!(gauge.value, -1.5);
        let counter = samples.iter().find(|s| s.name == "series_total").unwrap();
        prop_assert_eq!(&counter.labels[0].1, &value);
    }

    #[test]
    fn hostile_help_text_round_trips(help in hostile_string(HELP_ALPHABET)) {
        let reg = Registry::new();
        reg.describe("series_total", &help);
        reg.counter_add("series_total", &[], 1.0);
        let text = render_prometheus(&reg);
        let parsed = parse_exposition(&text).unwrap();
        prop_assert_eq!(parsed.helps.len(), 1);
        prop_assert_eq!(&parsed.helps[0].0, "series_total");
        prop_assert_eq!(&parsed.helps[0].1, &help);
        prop_assert_eq!(parsed.samples.len(), 1);
    }
}

#[test]
fn help_lines_render_before_type_and_unescape() {
    let reg = Registry::new();
    reg.describe(
        "pool_hits_total",
        "Requests served from the pool.\nOne \\ two",
    );
    reg.describe("ghost_metric", "described but never recorded");
    reg.counter_add("pool_hits_total", &[("pool", "east")], 4.0);
    let text = render_prometheus(&reg);
    let help_at = text.find("# HELP pool_hits_total").unwrap();
    let type_at = text.find("# TYPE pool_hits_total").unwrap();
    assert!(help_at < type_at);
    // Escaped on the wire: a single line containing \n and \\ sequences.
    assert!(text.contains("Requests served from the pool.\\nOne \\\\ two"));
    // Families with help but no samples are not rendered.
    assert!(!text.contains("ghost_metric"));
    let parsed = parse_exposition(&text).unwrap();
    assert_eq!(
        parsed.helps,
        vec![(
            "pool_hits_total".to_string(),
            "Requests served from the pool.\nOne \\ two".to_string()
        )]
    );
}

#[test]
fn clear_drops_help_text() {
    let reg = Registry::new();
    reg.describe("c_total", "help");
    reg.counter_add("c_total", &[], 1.0);
    reg.clear();
    reg.counter_add("c_total", &[], 1.0);
    assert!(!render_prometheus(&reg).contains("# HELP"));
}

fn sample_trace() -> Trace {
    Trace {
        spans: vec![
            SpanRecord {
                id: 1,
                parent: None,
                name: "sim.run".into(),
                thread: "main".into(),
                start_ns: 1_000,
                dur_ns: 5_000_000,
            },
            SpanRecord {
                id: 2,
                parent: Some(1),
                name: "saa.solve \"q\"".into(),
                thread: "ip-par-0".into(),
                start_ns: 2_000,
                dur_ns: 1_000_000,
            },
        ],
        events: vec![EventRecord {
            name: "sim.interval".into(),
            t: 30,
            fields: vec![("hits".into(), 2.0), ("rate".into(), f64::NAN)],
        }],
        dropped: 0,
    }
}

/// The Chrome exporter must produce a JSON array of `trace_event` objects:
/// every element has `name`/`ph`/`pid`/`tid`, `ph:"X"` spans carry
/// numeric `ts`/`dur`, instants carry a scope, and metadata names each
/// thread. Parsed with the workspace JSON parser, not string matching.
#[test]
fn chrome_trace_is_valid_trace_event_json() {
    let json = trace_to_chrome(&sample_trace());
    let doc: Content = serde_json::from_str(&json).unwrap();
    let Content::Seq(records) = doc else {
        panic!("chrome trace must be a JSON array, got {doc:?}");
    };
    let mut complete = 0;
    let mut instants = 0;
    let mut thread_names = Vec::new();
    for rec in &records {
        let ph = match rec.field("ph") {
            Some(Content::Str(ph)) => ph.as_str(),
            other => panic!("record without ph: {other:?}"),
        };
        assert!(matches!(rec.field("name"), Some(Content::Str(_))));
        assert!(rec.field("pid").and_then(Content::as_u64).is_some());
        assert!(rec.field("tid").and_then(Content::as_u64).is_some());
        match ph {
            "X" => {
                complete += 1;
                assert!(rec.field("ts").and_then(Content::as_u64).is_some());
                assert!(rec.field("dur").and_then(Content::as_u64).is_some());
            }
            "i" => {
                instants += 1;
                assert_eq!(rec.field("s"), Some(&Content::Str("g".into())));
                // ts scaling: one logical second per microsecond.
                assert_eq!(rec.field("ts").and_then(Content::as_u64), Some(30_000_000));
                let args = rec.field("args").unwrap();
                assert_eq!(args.field("hits").and_then(Content::as_f64), Some(2.0));
                // NaN is unrepresentable in JSON and becomes null.
                assert_eq!(args.field("rate"), Some(&Content::Null));
            }
            "M" => {
                if let (Some(Content::Str(n)), Some(args)) = (rec.field("name"), rec.field("args"))
                {
                    if n == "thread_name" {
                        if let Some(Content::Str(t)) = args.field("name") {
                            thread_names.push(t.clone());
                        }
                    }
                }
            }
            other => panic!("unexpected phase {other:?}"),
        }
    }
    assert_eq!(complete, 2);
    assert_eq!(instants, 1);
    assert_eq!(thread_names, vec!["main".to_string(), "ip-par-0".into()]);
}

/// `Trace::to_chrome` and the free function agree, and an empty trace is
/// still a valid (metadata-only) array.
#[test]
fn chrome_trace_empty_and_method_parity() {
    let trace = sample_trace();
    assert_eq!(trace.to_chrome(), trace_to_chrome(&trace));
    let empty = trace_to_chrome(&Trace::default());
    let doc: Content = serde_json::from_str(&empty).unwrap();
    assert!(matches!(doc, Content::Seq(_)));
}
