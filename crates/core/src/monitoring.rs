//! Production monitoring (§7.5): "we track the Intelligent Pooling status
//! (succeeded, failed), metrics of average idle time, recommended pool
//! size, demand request rate, pool miss/hit count/percentage, COGS saved,
//! hydration status … in real-time. This comprehensive monitoring system is
//! an essential part of the Intelligent Pooling."
//!
//! [`Dashboard`] distills a simulation run (or live telemetry shaped like
//! one) into exactly that metric set, and [`AlertRule`]s turn threshold
//! breaches into actionable alerts — the paper's "alerting system for
//! pipeline failures".

use crate::cogs::CostModel;
use ip_sim::{IntervalStat, SimReport};
use serde::{Deserialize, Serialize};

/// One snapshot of the §7.5 metric set.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MetricsSnapshot {
    /// Pipeline runs attempted / failed.
    pub ip_runs: u64,
    /// Failed pipeline runs.
    pub ip_failures: u64,
    /// Pool hits.
    pub hit_count: u64,
    /// Pool misses.
    pub miss_count: u64,
    /// Hit percentage (0–100).
    pub hit_percentage: f64,
    /// Mean demand request rate per interval.
    pub demand_rate_per_interval: f64,
    /// Average idle time per pooled cluster-interval, in cluster-seconds.
    pub idle_cluster_seconds: f64,
    /// Mean recommended/applied pool size.
    pub mean_pool_size: f64,
    /// Intervals served from default config (stale/missing recommendation).
    pub fallback_intervals: u64,
    /// Workers replaced by the Arbitrator.
    pub worker_replacements: u64,
    /// Dollars of idle cost over the window.
    pub idle_cost_dollars: f64,
    /// Dollars saved vs a given static reference (None when no reference).
    pub cogs_saved_dollars: Option<f64>,
    /// Hydration status: clusters created / cancelled / expired.
    pub clusters_created: u64,
    /// Re-hydrations cancelled by downsizing.
    pub cancelled_provisioning: u64,
    /// Pooled clusters lost to expiry/failure.
    pub expired: u64,
}

/// Builds snapshots and evaluates alert rules.
#[derive(Debug, Clone)]
pub struct Dashboard {
    cost: CostModel,
    /// Idle cost of the static reference deployment over the same window
    /// (for the "COGS saved" metric), if known.
    pub static_reference_idle_seconds: Option<f64>,
}

impl Dashboard {
    /// Creates a dashboard with the given cost model.
    pub fn new(cost: CostModel) -> Self {
        Self {
            cost,
            static_reference_idle_seconds: None,
        }
    }

    /// Distills a simulation report into the metric snapshot.
    pub fn snapshot(&self, report: &SimReport, window_secs: f64) -> MetricsSnapshot {
        let intervals = report.applied_target_timeline.len().max(1) as f64;
        let mean_pool_size = report
            .applied_target_timeline
            .iter()
            .map(|&t| f64::from(t))
            .sum::<f64>()
            / intervals;
        let idle_cost = self.cost.cost_of_idle(report.idle_cluster_seconds);
        let cogs_saved = self
            .static_reference_idle_seconds
            .map(|static_idle| self.cost.cost_of_idle(static_idle) - idle_cost);
        let _ = window_secs;
        MetricsSnapshot {
            ip_runs: report.ip_runs,
            ip_failures: report.ip_failures,
            hit_count: report.hits,
            miss_count: report.misses,
            hit_percentage: hit_percentage(report.hits, report.misses),
            demand_rate_per_interval: report.total_requests as f64 / intervals,
            idle_cluster_seconds: report.idle_cluster_seconds,
            mean_pool_size,
            fallback_intervals: report.fallback_intervals,
            worker_replacements: report.worker_replacements,
            idle_cost_dollars: idle_cost,
            cogs_saved_dollars: cogs_saved,
            clusters_created: report.clusters_created,
            cancelled_provisioning: report.cancelled_provisioning,
            expired: report.expired,
        }
    }

    /// Opens an incremental consumer of the simulator's per-interval
    /// telemetry stream ([`IntervalStat`]): feed records as they arrive and
    /// read a live [`MetricsSnapshot`] at any point. After the final record
    /// of a run, the snapshot equals [`Dashboard::snapshot`] on that run's
    /// report exactly.
    pub fn stream(&self) -> DashboardStream<'_> {
        DashboardStream {
            dashboard: self,
            intervals: 0,
            requests: 0,
            hits: 0,
            misses: 0,
            target_sum: 0.0,
            fallback_intervals: 0,
            last: None,
        }
    }
}

/// Hit percentage from raw counts; 100% on zero traffic (no request was
/// made to wait), never NaN.
fn hit_percentage(hits: u64, misses: u64) -> f64 {
    let total = hits + misses;
    if total == 0 {
        100.0
    } else {
        hits as f64 / total as f64 * 100.0
    }
}

/// Folds per-pool snapshots into one fleet-wide snapshot: counters and
/// dollar figures sum, rates are recomputed from the summed counts, and
/// `mean_pool_size` / `demand_rate_per_interval` sum across pools (fleet
/// capacity and fleet demand per interval). `cogs_saved_dollars` is `Some`
/// only when at least one pool reports it. A single snapshot merges to an
/// exact clone of itself — the property the one-pool daemon's bit-identity
/// contract relies on.
pub fn merge_snapshots(snapshots: &[MetricsSnapshot]) -> MetricsSnapshot {
    if snapshots.len() == 1 {
        return snapshots[0].clone();
    }
    let mut merged = MetricsSnapshot {
        ip_runs: 0,
        ip_failures: 0,
        hit_count: 0,
        miss_count: 0,
        hit_percentage: 100.0,
        demand_rate_per_interval: 0.0,
        idle_cluster_seconds: 0.0,
        mean_pool_size: 0.0,
        fallback_intervals: 0,
        worker_replacements: 0,
        idle_cost_dollars: 0.0,
        cogs_saved_dollars: None,
        clusters_created: 0,
        cancelled_provisioning: 0,
        expired: 0,
    };
    for s in snapshots {
        merged.ip_runs += s.ip_runs;
        merged.ip_failures += s.ip_failures;
        merged.hit_count += s.hit_count;
        merged.miss_count += s.miss_count;
        merged.demand_rate_per_interval += s.demand_rate_per_interval;
        merged.idle_cluster_seconds += s.idle_cluster_seconds;
        merged.mean_pool_size += s.mean_pool_size;
        merged.fallback_intervals += s.fallback_intervals;
        merged.worker_replacements += s.worker_replacements;
        merged.idle_cost_dollars += s.idle_cost_dollars;
        if let Some(saved) = s.cogs_saved_dollars {
            *merged.cogs_saved_dollars.get_or_insert(0.0) += saved;
        }
        merged.clusters_created += s.clusters_created;
        merged.cancelled_provisioning += s.cancelled_provisioning;
        merged.expired += s.expired;
    }
    merged.hit_percentage = hit_percentage(merged.hit_count, merged.miss_count);
    merged
}

/// Incremental dashboard state over a stream of [`IntervalStat`] records
/// (see [`Dashboard::stream`]).
#[derive(Debug, Clone)]
pub struct DashboardStream<'d> {
    dashboard: &'d Dashboard,
    intervals: u64,
    requests: u64,
    hits: u64,
    misses: u64,
    target_sum: f64,
    fallback_intervals: u64,
    last: Option<IntervalStat>,
}

impl DashboardStream<'_> {
    /// Folds one interval record into the running state.
    pub fn observe(&mut self, stat: &IntervalStat) {
        self.intervals += 1;
        self.requests += stat.requests;
        self.hits += stat.hits;
        self.misses += stat.misses;
        self.target_sum += f64::from(stat.applied_target);
        self.fallback_intervals += u64::from(stat.fallback);
        self.last = Some(stat.clone());
    }

    /// Number of interval records observed so far.
    pub fn intervals_observed(&self) -> u64 {
        self.intervals
    }

    /// The §7.5 metric set as of the last observed interval.
    pub fn snapshot(&self) -> MetricsSnapshot {
        let intervals = self.intervals.max(1) as f64;
        let idle = self
            .last
            .as_ref()
            .map_or(0.0, |s| s.cum_idle_cluster_seconds);
        let idle_cost = self.dashboard.cost.cost_of_idle(idle);
        let cogs_saved = self
            .dashboard
            .static_reference_idle_seconds
            .map(|static_idle| self.dashboard.cost.cost_of_idle(static_idle) - idle_cost);
        let last = self.last.as_ref();
        MetricsSnapshot {
            ip_runs: last.map_or(0, |s| s.cum_ip_runs),
            ip_failures: last.map_or(0, |s| s.cum_ip_failures),
            hit_count: self.hits,
            miss_count: self.misses,
            hit_percentage: hit_percentage(self.hits, self.misses),
            demand_rate_per_interval: self.requests as f64 / intervals,
            idle_cluster_seconds: idle,
            mean_pool_size: self.target_sum / intervals,
            fallback_intervals: self.fallback_intervals,
            worker_replacements: last.map_or(0, |s| s.cum_worker_replacements),
            idle_cost_dollars: idle_cost,
            cogs_saved_dollars: cogs_saved,
            clusters_created: last.map_or(0, |s| s.cum_clusters_created),
            cancelled_provisioning: last.map_or(0, |s| s.cum_cancelled_provisioning),
            expired: last.map_or(0, |s| s.cum_expired),
        }
    }
}

/// A threshold alert over a snapshot.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum AlertRule {
    /// Fire when the hit percentage drops below this value.
    HitRateBelow(f64),
    /// Fire when more than this fraction of pipeline runs failed.
    PipelineFailureRateAbove(f64),
    /// Fire when more than this many intervals ran on default config.
    FallbackIntervalsAbove(u64),
    /// Fire when any pooling worker had to be replaced.
    WorkerReplaced,
    /// An SLO burn-rate breach (`ip_obs::slo`). The payload names the
    /// objective (e.g. `"hit_rate"`, `"wait"`). Never fired by
    /// [`evaluate_alerts`] — snapshots are cumulative and carry no
    /// windowed burn data; the serve controller raises it from its
    /// multi-window trackers and merges it into the same alert list.
    SloBurnRate(String),
}

/// A fired alert.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Alert {
    /// The rule that fired.
    pub rule: AlertRule,
    /// Human-readable description with the observed value.
    pub message: String,
}

/// Evaluates rules against a snapshot; returns the alerts that fired.
pub fn evaluate_alerts(snapshot: &MetricsSnapshot, rules: &[AlertRule]) -> Vec<Alert> {
    let mut alerts = Vec::new();
    for rule in rules {
        let fired = match rule {
            AlertRule::HitRateBelow(threshold) => {
                // With zero traffic there is no hit rate to alert on; a NaN
                // percentage (from hand-built snapshots) must not fire
                // either, and `<` on NaN is already false for that case.
                let had_traffic = snapshot.hit_count + snapshot.miss_count > 0;
                if had_traffic && snapshot.hit_percentage < *threshold {
                    Some(format!(
                        "hit rate {:.2}% below threshold {threshold}%",
                        snapshot.hit_percentage
                    ))
                } else {
                    None
                }
            }
            AlertRule::PipelineFailureRateAbove(threshold) => {
                let rate = if snapshot.ip_runs == 0 {
                    0.0
                } else {
                    snapshot.ip_failures as f64 / snapshot.ip_runs as f64
                };
                if rate > *threshold {
                    Some(format!(
                        "pipeline failure rate {:.0}% above {:.0}%",
                        rate * 100.0,
                        threshold * 100.0
                    ))
                } else {
                    None
                }
            }
            AlertRule::FallbackIntervalsAbove(limit) => {
                if snapshot.fallback_intervals > *limit {
                    Some(format!(
                        "{} intervals on default config (limit {limit})",
                        snapshot.fallback_intervals
                    ))
                } else {
                    None
                }
            }
            AlertRule::WorkerReplaced => {
                if snapshot.worker_replacements > 0 {
                    Some(format!(
                        "{} worker replacement(s)",
                        snapshot.worker_replacements
                    ))
                } else {
                    None
                }
            }
            // Burn rates need windowed history a cumulative snapshot does
            // not have; the serve controller evaluates these.
            AlertRule::SloBurnRate(_) => None,
        };
        if let Some(message) = fired {
            alerts.push(Alert {
                rule: rule.clone(),
                message,
            });
        }
    }
    alerts
}

#[cfg(test)]
mod tests {
    use super::*;
    use ip_sim::{SimConfig, Simulation};
    use ip_timeseries::TimeSeries;

    fn run_report() -> SimReport {
        let demand = TimeSeries::new(30, vec![1.0; 40]).unwrap();
        let cfg = SimConfig {
            default_pool_target: 6,
            tau_jitter_secs: 0,
            ..Default::default()
        };
        Simulation::new(cfg, None).run(&demand).unwrap()
    }

    #[test]
    fn merge_of_one_snapshot_is_identity() {
        let dash = Dashboard::new(CostModel::default());
        let snap = dash.snapshot(&run_report(), 1200.0);
        assert_eq!(merge_snapshots(std::slice::from_ref(&snap)), snap);
    }

    #[test]
    fn merge_sums_counters_and_recomputes_rates() {
        let a = MetricsSnapshot {
            ip_runs: 2,
            ip_failures: 1,
            hit_count: 30,
            miss_count: 10,
            hit_percentage: 75.0,
            demand_rate_per_interval: 2.0,
            idle_cluster_seconds: 100.0,
            mean_pool_size: 3.0,
            fallback_intervals: 1,
            worker_replacements: 0,
            idle_cost_dollars: 5.0,
            cogs_saved_dollars: Some(2.0),
            clusters_created: 40,
            cancelled_provisioning: 1,
            expired: 2,
        };
        let b = MetricsSnapshot {
            hit_count: 10,
            miss_count: 10,
            hit_percentage: 50.0,
            cogs_saved_dollars: None,
            ..a.clone()
        };
        let merged = merge_snapshots(&[a, b]);
        assert_eq!(merged.hit_count, 40);
        assert_eq!(merged.miss_count, 20);
        assert!((merged.hit_percentage - 40.0 / 60.0 * 100.0).abs() < 1e-12);
        assert_eq!(merged.mean_pool_size, 6.0); // fleet capacity sums
        assert_eq!(merged.cogs_saved_dollars, Some(2.0));
        assert_eq!(merged.ip_runs, 4);
    }

    #[test]
    fn snapshot_matches_report() {
        let report = run_report();
        let dash = Dashboard::new(CostModel::default());
        let snap = dash.snapshot(&report, 1200.0);
        assert_eq!(snap.hit_count, report.hits);
        assert_eq!(snap.miss_count, report.misses);
        assert!((snap.hit_percentage - report.hit_rate * 100.0).abs() < 1e-12);
        assert!((snap.demand_rate_per_interval - 1.0).abs() < 1e-12);
        assert!((snap.mean_pool_size - 6.0).abs() < 1e-12);
        assert!(snap.idle_cost_dollars > 0.0);
        assert_eq!(snap.cogs_saved_dollars, None);
    }

    #[test]
    fn cogs_saved_against_reference() {
        let report = run_report();
        let mut dash = Dashboard::new(CostModel::default());
        dash.static_reference_idle_seconds = Some(report.idle_cluster_seconds * 2.0);
        let snap = dash.snapshot(&report, 1200.0);
        let saved = snap.cogs_saved_dollars.unwrap();
        assert!((saved - snap.idle_cost_dollars).abs() < 1e-9);
    }

    #[test]
    fn alerts_fire_on_breach() {
        let report = run_report();
        let dash = Dashboard::new(CostModel::default());
        let mut snap = dash.snapshot(&report, 1200.0);
        snap.hit_percentage = 80.0;
        snap.ip_runs = 10;
        snap.ip_failures = 5;
        snap.fallback_intervals = 100;
        snap.worker_replacements = 1;
        let rules = vec![
            AlertRule::HitRateBelow(99.0),
            AlertRule::PipelineFailureRateAbove(0.2),
            AlertRule::FallbackIntervalsAbove(10),
            AlertRule::WorkerReplaced,
        ];
        let alerts = evaluate_alerts(&snap, &rules);
        assert_eq!(alerts.len(), 4);
        assert!(alerts[0].message.contains("80.00%"));
    }

    #[test]
    fn slo_burn_rate_rule_is_inert_in_snapshot_evaluation() {
        // The rule exists so controller-raised SLO alerts share the Alert
        // type; cumulative snapshots carry no windowed burn data, so
        // evaluate_alerts must never fire it — even on a terrible run.
        let report = run_report();
        let dash = Dashboard::new(CostModel::default());
        let mut snap = dash.snapshot(&report, 1200.0);
        snap.hit_percentage = 0.0;
        snap.hit_count = 0;
        snap.miss_count = 100;
        let rules = vec![AlertRule::SloBurnRate("hit_rate".to_string())];
        assert!(evaluate_alerts(&snap, &rules).is_empty());
        // The variant must survive the vendored serde round-trip (tuple
        // variants are the ceiling of the in-repo derive).
        let json = serde_json::to_string(&rules[0]).unwrap();
        let back: AlertRule = serde_json::from_str(&json).unwrap();
        assert_eq!(back, rules[0]);
    }

    #[test]
    fn zero_interval_window_yields_finite_metrics() {
        // A demand trace shorter than one recommendation horizon still ends
        // the run with zero applied intervals in the degenerate case of an
        // empty timeline; every ratio must stay finite.
        let report = SimReport {
            applied_target_timeline: Vec::new(),
            ..run_report()
        };
        let dash = Dashboard::new(CostModel::default());
        let snap = dash.snapshot(&report, 0.0);
        assert!(snap.demand_rate_per_interval.is_finite());
        assert!(snap.mean_pool_size.is_finite());
        assert_eq!(snap.mean_pool_size, 0.0);
    }

    #[test]
    fn zero_traffic_hit_rate_is_100_and_never_alerts() {
        let demand = TimeSeries::new(30, vec![0.0; 10]).unwrap();
        let cfg = SimConfig {
            default_pool_target: 2,
            tau_jitter_secs: 0,
            ..Default::default()
        };
        let report = Simulation::new(cfg, None).run(&demand).unwrap();
        assert_eq!(report.hits + report.misses, 0);
        let dash = Dashboard::new(CostModel::default());
        let snap = dash.snapshot(&report, 300.0);
        assert_eq!(snap.hit_percentage, 100.0);
        assert!(!snap.hit_percentage.is_nan());
        // Even an absurdly high threshold must not fire without traffic.
        let alerts = evaluate_alerts(&snap, &[AlertRule::HitRateBelow(200.0)]);
        assert!(alerts.is_empty());
    }

    #[test]
    fn nan_hit_percentage_does_not_fire() {
        let report = run_report();
        let dash = Dashboard::new(CostModel::default());
        let mut snap = dash.snapshot(&report, 1200.0);
        snap.hit_count = 0;
        snap.miss_count = 0;
        snap.hit_percentage = f64::NAN;
        let alerts = evaluate_alerts(&snap, &[AlertRule::HitRateBelow(99.0)]);
        assert!(alerts.is_empty());
    }

    #[test]
    fn hit_rate_boundary_is_exclusive() {
        let report = run_report();
        let dash = Dashboard::new(CostModel::default());
        let mut snap = dash.snapshot(&report, 1200.0);
        snap.hit_count = 99;
        snap.miss_count = 1;
        snap.hit_percentage = 99.0;
        // Exactly at the threshold: no alert ("below" is strict).
        assert!(evaluate_alerts(&snap, &[AlertRule::HitRateBelow(99.0)]).is_empty());
        snap.hit_percentage = 98.999;
        assert_eq!(
            evaluate_alerts(&snap, &[AlertRule::HitRateBelow(99.0)]).len(),
            1
        );
    }

    #[test]
    fn stream_reproduces_posthoc_snapshot() {
        // Use a config that exercises misses, fallbacks, expiry, and an IP
        // worker so every cumulative field in the stream is non-trivial.
        let demand = TimeSeries::new(30, (0..60).map(|i| f64::from(i % 7)).collect()).unwrap();
        let cfg = SimConfig {
            default_pool_target: 3,
            tau_jitter_secs: 0,
            ..Default::default()
        };
        let report = Simulation::new(cfg, None).run(&demand).unwrap();
        assert!(!report.interval_stats.is_empty());
        let mut dash = Dashboard::new(CostModel::default());
        dash.static_reference_idle_seconds = Some(report.idle_cluster_seconds * 2.0);
        let mut stream = dash.stream();
        for stat in &report.interval_stats {
            stream.observe(stat);
            // Every intermediate snapshot must already be well-formed.
            let mid = stream.snapshot();
            assert!(mid.hit_percentage.is_finite());
            assert!(mid.demand_rate_per_interval.is_finite());
        }
        assert_eq!(
            stream.intervals_observed() as usize,
            report.interval_stats.len()
        );
        assert_eq!(stream.snapshot(), dash.snapshot(&report, 1800.0));
    }

    #[test]
    fn empty_stream_snapshot_is_quiet() {
        let dash = Dashboard::new(CostModel::default());
        let stream = dash.stream();
        let snap = stream.snapshot();
        assert_eq!(snap.hit_percentage, 100.0);
        assert_eq!(snap.mean_pool_size, 0.0);
        assert!(evaluate_alerts(&snap, &[AlertRule::HitRateBelow(99.0)]).is_empty());
    }

    #[test]
    fn quiet_system_fires_nothing() {
        let report = run_report();
        let dash = Dashboard::new(CostModel::default());
        let snap = dash.snapshot(&report, 1200.0);
        let rules = vec![
            AlertRule::HitRateBelow(50.0),
            AlertRule::PipelineFailureRateAbove(0.5),
            AlertRule::FallbackIntervalsAbove(1000),
            AlertRule::WorkerReplaced,
        ];
        assert!(evaluate_alerts(&snap, &rules).is_empty());
    }
}
