//! The production wrapper: guardrails, fallback chain and the simulator
//! integration.
//!
//! §7.5: "set up a guardrail to validate the ML model's prediction accuracy
//! before running the downstream optimization". §7.6: a failed run leaves
//! the previous recommendation in place; consecutive failures degrade to
//! defaults. This module implements the guardrail and exposes the whole
//! engine as an [`ip_sim::RecommendationProvider`] so the platform simulator
//! can run it in-loop.

use crate::pipeline::RecommendationEngine;
use crate::{CoreError, Result};
use ip_models::Forecaster;
use ip_saa::robustness::RobustnessStrategies;
use ip_saa::{robust_optimize, SaaConfig};
use ip_timeseries::{mae, TimeSeries};

/// Guardrail on prediction accuracy: before trusting a forecaster for the
/// next hour, backtest it on the most recent `holdout` intervals and reject
/// it when its MAE exceeds `max_relative_mae × mean(demand)`.
#[derive(Debug, Clone, Copy)]
pub struct Guardrail {
    /// Holdout length in intervals.
    pub holdout: usize,
    /// MAE ceiling relative to the mean demand level.
    pub max_relative_mae: f64,
}

impl Default for Guardrail {
    fn default() -> Self {
        Self {
            holdout: 120,
            max_relative_mae: 1.5,
        }
    }
}

/// Engine configuration.
#[derive(Debug, Clone)]
pub struct EngineConfig {
    /// SAA optimizer settings (τ, stableness, bounds, `α'`).
    pub saa: SaaConfig,
    /// §7.5 hardening strategies.
    pub robustness: RobustnessStrategies,
    /// Optional accuracy guardrail; `None` disables backtesting.
    pub guardrail: Option<Guardrail>,
    /// Minimum history required before recommending.
    pub min_history: usize,
}

impl Default for EngineConfig {
    fn default() -> Self {
        Self {
            saa: SaaConfig::default(),
            robustness: RobustnessStrategies::none(),
            guardrail: Some(Guardrail::default()),
            min_history: 480,
        }
    }
}

/// How a recommendation was produced — surfaced for monitoring (§7.5 lists
/// the status metrics tracked in production).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RecommendationOutcome {
    /// The ML pipeline ran and passed the guardrail.
    MlAccepted,
    /// The guardrail rejected the forecast; SAA over recent history was used
    /// instead.
    GuardrailFallback,
}

/// The assembled Intelligent Pooling engine: a recommendation pipeline, the
/// robustness wrapper, and the guardrail fallback.
pub struct IntelligentPooling<E: RecommendationEngine, F: Forecaster> {
    engine: E,
    /// A fresh forecaster factory for guardrail backtests (fitting mutates
    /// forecaster state, so backtests use their own instance).
    backtest_factory: Box<dyn FnMut() -> F>,
    config: EngineConfig,
    /// Outcome of the most recent run.
    pub last_outcome: Option<RecommendationOutcome>,
}

impl<E: RecommendationEngine, F: Forecaster> IntelligentPooling<E, F> {
    /// Creates the engine. `backtest_factory` builds the forecaster used by
    /// guardrail backtests (same family as the pipeline's).
    pub fn new(
        engine: E,
        backtest_factory: impl FnMut() -> F + 'static,
        config: EngineConfig,
    ) -> Self {
        Self {
            engine,
            backtest_factory: Box::new(backtest_factory),
            config,
            last_outcome: None,
        }
    }

    /// Mutable access to the engine configuration (auto-tuner hook).
    pub fn config_mut(&mut self) -> &mut EngineConfig {
        &mut self.config
    }

    /// Mutable access to the inner recommendation engine (auto-tuner hook —
    /// the inner pipeline holds its own SAA `α'`, separate from the
    /// fallback's copy in [`EngineConfig`]).
    pub fn engine_mut(&mut self) -> &mut E {
        &mut self.engine
    }

    /// Runs one pipeline iteration: guardrail backtest, then either the ML
    /// recommendation or the SAA-on-history fallback.
    pub fn run_once(&mut self, history: &TimeSeries, horizon: usize) -> Result<Vec<u32>> {
        if history.len() < self.config.min_history {
            return Err(CoreError::InsufficientHistory {
                needed: self.config.min_history,
                got: history.len(),
            });
        }

        let guardrail_ok = match self.config.guardrail {
            None => true,
            Some(g) => self.backtest_passes(history, g)?,
        };

        if guardrail_ok {
            match self.engine.recommend(history, horizon) {
                Ok(rec) => {
                    self.last_outcome = Some(RecommendationOutcome::MlAccepted);
                    return Ok(rec);
                }
                Err(_) => { /* fall through to the SAA fallback */ }
            }
        }

        // Fallback: optimize the recent history directly (no forecast) and
        // reuse its last-block level for the horizon — robust, explainable,
        // and exactly what "reverting to a more static controlling policy"
        // looks like.
        let opt = robust_optimize(history, &self.config.saa, &self.config.robustness)
            .map_err(|e| CoreError::Optimizer(e.to_string()))?;
        let tail = opt.schedule.last().copied().unwrap_or(0.0).round().max(0.0) as u32;
        self.last_outcome = Some(RecommendationOutcome::GuardrailFallback);
        Ok(vec![tail; horizon])
    }

    /// Backtests a fresh forecaster on the trailing holdout; `true` when the
    /// MAE is acceptable.
    fn backtest_passes(&mut self, history: &TimeSeries, g: Guardrail) -> Result<bool> {
        let holdout = g.holdout.min(history.len() / 4);
        if holdout == 0 {
            return Ok(true);
        }
        let cut = history.len() - holdout;
        let train = history
            .slice(0, cut)
            .map_err(|e| CoreError::Model(e.to_string()))?;
        let actual = &history.values()[cut..];
        let mut forecaster = (self.backtest_factory)();
        if forecaster.fit(&train).is_err() {
            return Ok(false);
        }
        let Ok(pred) = forecaster.predict(holdout) else {
            return Ok(false);
        };
        let err = mae(actual, &pred).map_err(|e| CoreError::Model(e.to_string()))?;
        let mean_level = actual.iter().sum::<f64>() / holdout as f64;
        Ok(err <= g.max_relative_mae * mean_level.max(1.0))
    }
}

/// Provider adapter: lets the assembled engine drive the platform simulator
/// as its Intelligent Pooling Worker.
impl<E: RecommendationEngine, F: Forecaster> ip_sim::RecommendationProvider
    for IntelligentPooling<E, F>
{
    fn recommend(
        &mut self,
        _now_secs: u64,
        observed_demand: &TimeSeries,
        horizon: usize,
    ) -> Option<Vec<u32>> {
        self.run_once(observed_demand, horizon).ok()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pipeline::TwoStepEngine;
    use ip_models::SsaModel;
    use ip_ssa::RankSelection;

    fn history(n: usize) -> TimeSeries {
        let vals: Vec<f64> = (0..n)
            .map(|t| (4.0 + 3.0 * (2.0 * std::f64::consts::PI * t as f64 / 96.0).sin()).round())
            .collect();
        TimeSeries::new(30, vals).unwrap()
    }

    fn make_engine(
        guardrail: Option<Guardrail>,
    ) -> IntelligentPooling<TwoStepEngine<SsaModel>, SsaModel> {
        let saa = SaaConfig {
            tau_intervals: 3,
            stableness: 8,
            max_pool: 40,
            ..Default::default()
        };
        let pipeline = TwoStepEngine::new(SsaModel::new(96, RankSelection::Fixed(3)), saa);
        let config = EngineConfig {
            saa,
            robustness: RobustnessStrategies::none(),
            guardrail,
            min_history: 300,
        };
        IntelligentPooling::new(
            pipeline,
            || SsaModel::new(96, RankSelection::Fixed(3)),
            config,
        )
    }

    #[test]
    fn accepts_ml_on_predictable_demand() {
        let mut engine = make_engine(Some(Guardrail {
            holdout: 60,
            max_relative_mae: 1.5,
        }));
        let rec = engine.run_once(&history(600), 60).unwrap();
        assert_eq!(rec.len(), 60);
        assert_eq!(engine.last_outcome, Some(RecommendationOutcome::MlAccepted));
    }

    #[test]
    fn impossible_guardrail_forces_fallback() {
        let mut engine = make_engine(Some(Guardrail {
            holdout: 60,
            max_relative_mae: 0.0,
        }));
        let rec = engine.run_once(&history(600), 60).unwrap();
        assert_eq!(rec.len(), 60);
        assert_eq!(
            engine.last_outcome,
            Some(RecommendationOutcome::GuardrailFallback)
        );
        // Fallback is a constant (static-like) schedule.
        assert!(rec.windows(2).all(|w| w[0] == w[1]));
    }

    #[test]
    fn insufficient_history_rejected() {
        let mut engine = make_engine(None);
        assert!(matches!(
            engine.run_once(&history(100), 10),
            Err(CoreError::InsufficientHistory { .. })
        ));
    }

    #[test]
    fn provider_adapter_works() {
        use ip_sim::RecommendationProvider as _;
        let mut engine = make_engine(None);
        let rec = engine.recommend(0, &history(600), 30);
        assert_eq!(rec.map(|r| r.len()), Some(30));
        // Short history through the provider returns None (pipeline failure
        // semantics for the simulator).
        let mut engine2 = make_engine(None);
        assert!(engine2.recommend(0, &history(50), 30).is_none());
    }
}
