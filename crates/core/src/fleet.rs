//! The fleet: N first-class pools with per-pool optimizer configs,
//! per-pool recommendation providers (each with its own §6 α′ feedback
//! loop), and failure-isolated fan-out.
//!
//! This absorbs the earlier `MultiPoolManager`, which only fanned the
//! optimizer out and returned all-or-nothing. A [`Fleet`] owns the full
//! per-pool control surface the daemon and CLI build on:
//!
//! * [`Fleet::recommend_all`] runs the robust optimizer for every pool in
//!   parallel (via `ip-par`, so `IP_THREADS` bounds the fan-out) and
//!   returns one `Result` **per pool** — one pool's optimizer error never
//!   discards the other pools' recommendations;
//! * [`Fleet::provider_for`] / [`Fleet::providers_all`] build each pool's
//!   recommendation pipeline from its spec, wrapping it in its own
//!   [`AlphaTuner`](crate::AlphaTuner) when `autotune` is set — the α′
//!   loops are fully independent across pools;
//! * [`Fleet::simulate_all`] replays every pool through the platform
//!   simulator side by side (again via `ip-par`).

use crate::cogs::CostModel;
use crate::providers::{autotuned_provider, named_provider, DynProvider};
use crate::{CoreError, Result};
use ip_saa::robustness::RobustnessStrategies;
use ip_saa::{robust_optimize, SaaConfig};
use ip_sim::{SimConfig, SimReport, Simulation};
use ip_timeseries::TimeSeries;
use std::collections::BTreeMap;

pub use ip_sim::PoolId;

/// Per-pool settings: optimizer, hardening, cost model, and the
/// recommendation pipeline driving the pool.
#[derive(Debug, Clone)]
pub struct PoolSpec {
    /// Optimizer settings for this pool.
    pub saa: SaaConfig,
    /// Hardening strategies for this pool.
    pub robustness: RobustnessStrategies,
    /// Cost model (node size differs per pool).
    pub cost: CostModel,
    /// Named recommendation pipeline (`ssa`, `ssa+`, `baseline`,
    /// `e2e-ssa`, `e2e-baseline`); `None` = static pooling, no provider.
    pub model: Option<String>,
    /// Seed `α'` for the pool's optimizer/pipeline.
    pub alpha: f64,
    /// Wrap the pipeline in this pool's own §6 α′ feedback loop.
    pub autotune: bool,
    /// Wait SLA the per-pool tuner steers toward, seconds.
    pub target_wait_secs: f64,
}

impl Default for PoolSpec {
    fn default() -> Self {
        Self {
            saa: SaaConfig::default(),
            robustness: RobustnessStrategies::none(),
            cost: CostModel::default(),
            model: None,
            alpha: 0.3,
            autotune: false,
            target_wait_secs: 10.0,
        }
    }
}

/// One pool's recommendation plus its objective value.
#[derive(Debug, Clone)]
pub struct PoolRecommendation {
    /// Pool identity.
    pub pool: PoolId,
    /// Target sizes per interval.
    pub schedule: Vec<u32>,
    /// Objective value reported by the optimizer.
    pub objective: f64,
}

/// N pools managed side by side, keyed by [`PoolId`] in deterministic
/// (`BTreeMap`) order.
#[derive(Debug, Default)]
pub struct Fleet {
    pools: BTreeMap<PoolId, PoolSpec>,
}

impl Fleet {
    /// Creates an empty fleet.
    pub fn new() -> Self {
        Self::default()
    }

    /// Registers (or replaces) a pool.
    pub fn register(&mut self, id: impl Into<PoolId>, spec: PoolSpec) {
        self.pools.insert(id.into(), spec);
    }

    /// Number of managed pools.
    pub fn len(&self) -> usize {
        self.pools.len()
    }

    /// `true` when no pools are registered.
    pub fn is_empty(&self) -> bool {
        self.pools.is_empty()
    }

    /// The spec of the pool named `id`.
    pub fn get(&self, id: &str) -> Option<&PoolSpec> {
        self.pools.get(&PoolId::new(id))
    }

    /// `(id, spec)` pairs in deterministic id order.
    pub fn iter(&self) -> impl Iterator<Item = (&PoolId, &PoolSpec)> {
        self.pools.iter()
    }

    /// Builds one pool's recommendation provider from its spec: the named
    /// pipeline seeded with the pool's `α'`, wrapped in the pool's own
    /// auto-tuner when `autotune` is set. `Ok(None)` when the pool has no
    /// model (static pooling).
    pub fn provider_for(&self, id: &str) -> Result<Option<DynProvider>> {
        let spec = self
            .get(id)
            .ok_or_else(|| CoreError::InvalidConfig(format!("unknown pool {id:?}")))?;
        Self::build_provider(spec)
    }

    fn build_provider(spec: &PoolSpec) -> Result<Option<DynProvider>> {
        let Some(model) = spec.model.as_deref() else {
            return Ok(None);
        };
        let mut saa = spec.saa;
        saa.alpha_prime = spec.alpha;
        let provider = if spec.autotune {
            autotuned_provider(model, spec.alpha, saa, spec.target_wait_secs)?
        } else {
            named_provider(model, spec.alpha, saa)?
        };
        Ok(Some(provider))
    }

    /// Builds every pool's provider, one `Result` per pool.
    pub fn providers_all(&self) -> Vec<(PoolId, Result<Option<DynProvider>>)> {
        self.pools
            .iter()
            .map(|(id, spec)| (id.clone(), Self::build_provider(spec)))
            .collect()
    }

    /// Runs the robust optimizer for every pool against its demand
    /// stream, pools in parallel via `ip-par` (deterministic output order
    /// regardless of thread count).
    ///
    /// Failure isolation: each pool gets its own `Result` — a missing
    /// demand stream or optimizer error in one pool leaves every other
    /// pool's recommendation intact. An empty fleet yields an empty vec.
    pub fn recommend_all(
        &self,
        demands: &BTreeMap<PoolId, TimeSeries>,
    ) -> Vec<(PoolId, Result<PoolRecommendation>)> {
        let pools: Vec<(&PoolId, &PoolSpec)> = self.pools.iter().collect();
        let results = ip_par::par_map(&pools, |&(id, spec)| -> Result<PoolRecommendation> {
            let demand = demands.get(id).ok_or_else(|| {
                CoreError::InvalidConfig(format!("no demand stream for pool {id}"))
            })?;
            let mut saa = spec.saa;
            saa.alpha_prime = spec.alpha;
            let opt = robust_optimize(demand, &saa, &spec.robustness)
                .map_err(|e| CoreError::Optimizer(e.to_string()))?;
            Ok(PoolRecommendation {
                pool: id.clone(),
                schedule: opt
                    .schedule
                    .iter()
                    .map(|&n| n.round().max(0.0) as u32)
                    .collect(),
                objective: opt.objective,
            })
        });
        pools
            .into_iter()
            .map(|(id, _)| id.clone())
            .zip(results)
            .collect()
    }

    /// Replays every pool through the platform simulator in parallel,
    /// each with its own provider built from its spec and `sim` as the
    /// shared base config (the pool's id is stamped into `SimConfig::pool`
    /// so metrics come out labeled). Per-pool failure isolation as in
    /// [`Fleet::recommend_all`].
    pub fn simulate_all(
        &self,
        demands: &BTreeMap<PoolId, TimeSeries>,
        sim: &SimConfig,
    ) -> Vec<(PoolId, Result<SimReport>)> {
        let pools: Vec<(&PoolId, &PoolSpec)> = self.pools.iter().collect();
        let results = ip_par::par_map(&pools, |&(id, spec)| -> Result<SimReport> {
            let demand = demands.get(id).ok_or_else(|| {
                CoreError::InvalidConfig(format!("no demand stream for pool {id}"))
            })?;
            let mut provider = Self::build_provider(spec)?;
            let mut cfg = sim.clone();
            cfg.pool = Some(id.clone());
            cfg.interval_secs = demand.interval_secs();
            Simulation::new(cfg, provider.as_mut().map(|p| p.as_mut() as _))
                .run(demand)
                .map_err(|e| CoreError::InvalidConfig(e.to_string()))
        });
        pools
            .into_iter()
            .map(|(id, _)| id.clone())
            .zip(results)
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cogs::NodeSize;

    fn spec(alpha: f64, node: NodeSize) -> PoolSpec {
        PoolSpec {
            saa: SaaConfig {
                tau_intervals: 2,
                stableness: 4,
                max_pool: 30,
                ..Default::default()
            },
            cost: CostModel {
                node_size: node,
                ..Default::default()
            },
            alpha,
            ..Default::default()
        }
    }

    fn demand(scale: f64) -> TimeSeries {
        let vals: Vec<f64> = (0..40)
            .map(|t| (scale * (1.0 + ((t % 8) as f64))).round())
            .collect();
        TimeSeries::new(30, vals).unwrap()
    }

    #[test]
    fn manages_independent_pools() {
        let mut fleet = Fleet::new();
        fleet.register("session/small", spec(0.3, NodeSize::Small));
        fleet.register("cluster/large", spec(0.3, NodeSize::Large));
        assert_eq!(fleet.len(), 2);

        let mut demands = BTreeMap::new();
        demands.insert(PoolId::new("session/small"), demand(2.0));
        demands.insert(PoolId::new("cluster/large"), demand(0.5));
        let recs = fleet.recommend_all(&demands);
        assert_eq!(recs.len(), 2);
        let total: BTreeMap<&str, u64> = recs
            .iter()
            .map(|(id, r)| {
                let r = r.as_ref().unwrap();
                (id.as_str(), r.schedule.iter().map(|&n| u64::from(n)).sum())
            })
            .collect();
        // The busier pool gets at least as much capacity in aggregate.
        assert!(total["session/small"] >= total["cluster/large"]);
    }

    #[test]
    fn empty_fleet_recommends_nothing() {
        let fleet = Fleet::new();
        assert!(fleet.is_empty());
        assert!(fleet.recommend_all(&BTreeMap::new()).is_empty());
        assert!(fleet
            .simulate_all(&BTreeMap::new(), &SimConfig::default())
            .is_empty());
    }

    #[test]
    fn one_bad_pool_does_not_discard_the_others() {
        let mut fleet = Fleet::new();
        fleet.register("good/a", spec(0.3, NodeSize::Small));
        fleet.register("starved", spec(0.3, NodeSize::Medium));
        fleet.register("good/b", spec(0.3, NodeSize::Large));

        // "starved" has no demand stream → its optimization fails; the
        // other two pools must still come back with recommendations.
        let mut demands = BTreeMap::new();
        demands.insert(PoolId::new("good/a"), demand(1.0));
        demands.insert(PoolId::new("good/b"), demand(2.0));
        let recs = fleet.recommend_all(&demands);
        assert_eq!(recs.len(), 3);
        let by_id: BTreeMap<&str, &Result<PoolRecommendation>> =
            recs.iter().map(|(id, r)| (id.as_str(), r)).collect();
        assert!(by_id["good/a"].is_ok());
        assert!(by_id["good/b"].is_ok());
        let err = by_id["starved"].as_ref().err().unwrap();
        assert!(err.to_string().contains("starved"), "{err}");
        assert!(!by_id["good/a"].as_ref().unwrap().schedule.is_empty());
    }

    #[test]
    fn per_pool_providers_and_alpha_loops_are_independent() {
        let mut fleet = Fleet::new();
        fleet.register(
            "tuned",
            PoolSpec {
                model: Some("baseline".into()),
                autotune: true,
                alpha: 0.5,
                ..spec(0.5, NodeSize::Medium)
            },
        );
        fleet.register(
            "static",
            PoolSpec {
                model: None,
                ..spec(0.3, NodeSize::Medium)
            },
        );
        fleet.register(
            "broken",
            PoolSpec {
                model: Some("nope".into()),
                ..spec(0.3, NodeSize::Medium)
            },
        );

        let providers = fleet.providers_all();
        let by_id: BTreeMap<&str, &Result<Option<DynProvider>>> =
            providers.iter().map(|(id, p)| (id.as_str(), p)).collect();
        assert!(matches!(by_id["tuned"], Ok(Some(_))));
        assert!(matches!(by_id["static"], Ok(None)));
        assert!(by_id["broken"].is_err());

        // Steering one pool's α′ loop must not touch another's: two tuned
        // providers observing opposite wait streams recommend differently
        // even though they share a spec template.
        let mut a = fleet.provider_for("tuned").unwrap().unwrap();
        let mut b = fleet.provider_for("tuned").unwrap().unwrap();
        for _ in 0..8 {
            a.observe_wait(0, 500.0); // persistent SLA breach → α′ down
            b.observe_wait(0, 0.0); // all-idle → α′ up
        }
        let vals: Vec<f64> = (0..40)
            .map(|t| if t % 8 == 0 { 24.0 } else { 1.0 })
            .collect();
        let d = TimeSeries::new(30, vals).unwrap();
        let ra = a.recommend(1200, &d, 8);
        let rb = b.recommend(1200, &d, 8);
        assert!(ra.is_some() && rb.is_some());
        assert_ne!(ra, rb, "independent α′ loops should diverge");
    }

    #[test]
    fn simulate_all_isolates_failures_and_labels_pools() {
        let mut fleet = Fleet::new();
        fleet.register(
            "ok",
            PoolSpec {
                model: Some("baseline".into()),
                ..spec(0.3, NodeSize::Medium)
            },
        );
        fleet.register(
            "bad-model",
            PoolSpec {
                model: Some("nope".into()),
                ..spec(0.3, NodeSize::Medium)
            },
        );
        let mut demands = BTreeMap::new();
        demands.insert(PoolId::new("ok"), demand(1.0));
        demands.insert(PoolId::new("bad-model"), demand(1.0));
        let sim = SimConfig {
            ip_worker: Some(ip_sim::IpWorkerConfig::default()),
            ..Default::default()
        };
        let reports = fleet.simulate_all(&demands, &sim);
        assert_eq!(reports.len(), 2);
        let by_id: BTreeMap<&str, &Result<SimReport>> =
            reports.iter().map(|(id, r)| (id.as_str(), r)).collect();
        assert!(by_id["ok"].is_ok());
        assert!(by_id["bad-model"].is_err());
        assert!(by_id["ok"].as_ref().unwrap().total_requests > 0);
    }
}
