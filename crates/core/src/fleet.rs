//! The fleet: N first-class pools with per-pool optimizer configs,
//! per-pool recommendation providers (each with its own §6 α′ feedback
//! loop), and failure-isolated fan-out.
//!
//! This absorbs the earlier `MultiPoolManager`, which only fanned the
//! optimizer out and returned all-or-nothing. A [`Fleet`] owns the full
//! per-pool control surface the daemon and CLI build on:
//!
//! * [`Fleet::recommend_all`] runs the robust optimizer for every pool in
//!   parallel (via `ip-par`, so `IP_THREADS` bounds the fan-out) and
//!   returns one `Result` **per pool** — one pool's optimizer error never
//!   discards the other pools' recommendations;
//! * [`Fleet::provider_for`] / [`Fleet::providers_all`] build each pool's
//!   recommendation pipeline from its spec, wrapping it in its own
//!   [`AlphaTuner`](crate::AlphaTuner) when `autotune` is set — the α′
//!   loops are fully independent across pools;
//! * [`Fleet::simulate_all`] replays every pool through the platform
//!   simulator side by side (again via `ip-par`).

use crate::cogs::CostModel;
use crate::providers::{autotuned_provider, named_provider, DynProvider};
use crate::{CoreError, Result};
use ip_saa::robustness::RobustnessStrategies;
use ip_saa::{robust_optimize, SaaConfig, SweepCache};
use ip_sim::{SimConfig, SimReport, Simulation};
use ip_timeseries::{max_filter, TimeSeries};
use std::collections::BTreeMap;

pub use ip_sim::PoolId;

/// Per-pool settings: optimizer, hardening, cost model, and the
/// recommendation pipeline driving the pool.
#[derive(Debug, Clone)]
pub struct PoolSpec {
    /// Optimizer settings for this pool.
    pub saa: SaaConfig,
    /// Hardening strategies for this pool.
    pub robustness: RobustnessStrategies,
    /// Cost model (node size differs per pool).
    pub cost: CostModel,
    /// Named recommendation pipeline (`ssa`, `ssa+`, `baseline`,
    /// `e2e-ssa`, `e2e-baseline`); `None` = static pooling, no provider.
    pub model: Option<String>,
    /// Seed `α'` for the pool's optimizer/pipeline.
    pub alpha: f64,
    /// Wrap the pipeline in this pool's own §6 α′ feedback loop.
    pub autotune: bool,
    /// Wait SLA the per-pool tuner steers toward, seconds.
    pub target_wait_secs: f64,
}

impl Default for PoolSpec {
    fn default() -> Self {
        Self {
            saa: SaaConfig::default(),
            robustness: RobustnessStrategies::none(),
            cost: CostModel::default(),
            model: None,
            alpha: 0.3,
            autotune: false,
            target_wait_secs: 10.0,
        }
    }
}

/// One pool's recommendation plus its objective value.
#[derive(Debug, Clone)]
pub struct PoolRecommendation {
    /// Pool identity.
    pub pool: PoolId,
    /// Target sizes per interval.
    pub schedule: Vec<u32>,
    /// Objective value reported by the optimizer.
    pub objective: f64,
}

/// A fleet-wide capacity ceiling for [`Fleet::recommend_all_budgeted`],
/// expressed in cluster·intervals: the sum over all pools and all
/// intervals of the recommended target sizes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FleetBudget {
    /// Maximum total cluster·intervals across the whole fleet.
    pub max_cluster_intervals: u64,
}

/// What [`Fleet::recommend_all_budgeted`] decided.
#[derive(Debug)]
pub struct BudgetedOutcome {
    /// Per-pool recommendations, failure-isolated as in
    /// [`Fleet::recommend_all`].
    pub pools: Vec<(PoolId, Result<PoolRecommendation>)>,
    /// Total cluster·intervals the unconstrained optimizer asked for.
    pub unconstrained_cluster_intervals: u64,
    /// Total cluster·intervals actually granted (≤ the budget when it
    /// binds; equal to the unconstrained total otherwise).
    pub granted_cluster_intervals: u64,
    /// The shared capacity price λ that achieved feasibility (0 when the
    /// budget did not bind).
    pub lambda: f64,
    /// `true` when the budget forced the schedules below the
    /// unconstrained optimum.
    pub binding: bool,
}

/// N pools managed side by side, keyed by [`PoolId`] in deterministic
/// (`BTreeMap`) order.
#[derive(Debug, Default)]
pub struct Fleet {
    pools: BTreeMap<PoolId, PoolSpec>,
}

impl Fleet {
    /// Creates an empty fleet.
    pub fn new() -> Self {
        Self::default()
    }

    /// Registers (or replaces) a pool.
    pub fn register(&mut self, id: impl Into<PoolId>, spec: PoolSpec) {
        self.pools.insert(id.into(), spec);
    }

    /// Number of managed pools.
    pub fn len(&self) -> usize {
        self.pools.len()
    }

    /// `true` when no pools are registered.
    pub fn is_empty(&self) -> bool {
        self.pools.is_empty()
    }

    /// The spec of the pool named `id`.
    pub fn get(&self, id: &str) -> Option<&PoolSpec> {
        self.pools.get(&PoolId::new(id))
    }

    /// `(id, spec)` pairs in deterministic id order.
    pub fn iter(&self) -> impl Iterator<Item = (&PoolId, &PoolSpec)> {
        self.pools.iter()
    }

    /// Builds one pool's recommendation provider from its spec: the named
    /// pipeline seeded with the pool's `α'`, wrapped in the pool's own
    /// auto-tuner when `autotune` is set. `Ok(None)` when the pool has no
    /// model (static pooling).
    pub fn provider_for(&self, id: &str) -> Result<Option<DynProvider>> {
        let spec = self
            .get(id)
            .ok_or_else(|| CoreError::InvalidConfig(format!("unknown pool {id:?}")))?;
        Self::build_provider(spec)
    }

    fn build_provider(spec: &PoolSpec) -> Result<Option<DynProvider>> {
        let Some(model) = spec.model.as_deref() else {
            return Ok(None);
        };
        let mut saa = spec.saa;
        saa.alpha_prime = spec.alpha;
        let provider = if spec.autotune {
            autotuned_provider(model, spec.alpha, saa, spec.target_wait_secs)?
        } else {
            named_provider(model, spec.alpha, saa)?
        };
        Ok(Some(provider))
    }

    /// Builds every pool's provider, one `Result` per pool.
    pub fn providers_all(&self) -> Vec<(PoolId, Result<Option<DynProvider>>)> {
        self.pools
            .iter()
            .map(|(id, spec)| (id.clone(), Self::build_provider(spec)))
            .collect()
    }

    /// Runs the robust optimizer for every pool against its demand
    /// stream, pools in parallel via `ip-par` (deterministic output order
    /// regardless of thread count).
    ///
    /// Failure isolation: each pool gets its own `Result` — a missing
    /// demand stream or optimizer error in one pool leaves every other
    /// pool's recommendation intact. An empty fleet yields an empty vec.
    pub fn recommend_all(
        &self,
        demands: &BTreeMap<PoolId, TimeSeries>,
    ) -> Vec<(PoolId, Result<PoolRecommendation>)> {
        let pools: Vec<(&PoolId, &PoolSpec)> = self.pools.iter().collect();
        let results = ip_par::par_map(&pools, |&(id, spec)| -> Result<PoolRecommendation> {
            let demand = demands.get(id).ok_or_else(|| {
                CoreError::InvalidConfig(format!("no demand stream for pool {id}"))
            })?;
            let mut saa = spec.saa;
            saa.alpha_prime = spec.alpha;
            let opt = robust_optimize(demand, &saa, &spec.robustness)
                .map_err(|e| CoreError::Optimizer(e.to_string()))?;
            Ok(PoolRecommendation {
                pool: id.clone(),
                schedule: opt
                    .schedule
                    .iter()
                    .map(|&n| n.round().max(0.0) as u32)
                    .collect(),
                objective: opt.objective,
            })
        });
        pools
            .into_iter()
            .map(|(id, _)| id.clone())
            .zip(results)
            .collect()
    }

    /// Like [`Fleet::recommend_all`], but enforces an optional fleet-wide
    /// capacity budget (DESIGN.md §17).
    ///
    /// With `budget: None`, or when the unconstrained recommendations
    /// already fit, the result wraps [`Fleet::recommend_all`]'s output
    /// verbatim — bit-identical schedules, `lambda = 0`, `binding = false`.
    ///
    /// When the budget binds, every healthy pool's sweep cache is built
    /// once (on its robustness-transformed demand) and a single shared
    /// capacity price λ is searched — doubling to bracket, then bisection —
    /// until the fleet's total cluster·intervals fit the budget. One λ for
    /// all pools means capacity is shaved where it buys the least quality,
    /// not pro-rata. Per-pool failure isolation is preserved: a pool whose
    /// base optimization failed keeps its error and costs no budget.
    pub fn recommend_all_budgeted(
        &self,
        demands: &BTreeMap<PoolId, TimeSeries>,
        budget: Option<FleetBudget>,
    ) -> BudgetedOutcome {
        let base = self.recommend_all(demands);
        let unconstrained = Self::total_cluster_intervals(&base);
        let fits = match budget {
            None => true,
            Some(b) => unconstrained <= b.max_cluster_intervals,
        };
        if fits {
            return BudgetedOutcome {
                pools: base,
                unconstrained_cluster_intervals: unconstrained,
                granted_cluster_intervals: unconstrained,
                lambda: 0.0,
                binding: false,
            };
        }
        let budget = budget.expect("binding budget").max_cluster_intervals;

        // One prepared entry per healthy pool: the α-independent sweep
        // cache plus everything `robust_optimize` would apply around it.
        struct Prepared {
            at: usize, // index into `base`
            cache: SweepCache,
            alpha: f64,
            interval_secs: u64,
            tau_intervals: usize,
            output_max_filter: bool,
        }
        let mut prepared = Vec::new();
        for (at, (id, rec)) in base.iter().enumerate() {
            if rec.is_err() {
                continue;
            }
            let (spec, demand) = match (self.pools.get(id), demands.get(id)) {
                (Some(s), Some(d)) => (s, d),
                _ => continue,
            };
            let smoothed;
            let demand_ref = if spec.robustness.demand_smoothing_factor > 0 {
                smoothed = max_filter(demand, spec.robustness.demand_smoothing_factor);
                &smoothed
            } else {
                demand
            };
            let mut saa = spec.saa;
            saa.alpha_prime = spec.alpha;
            if let Some(s) = spec.robustness.extended_stableness {
                saa.stableness = s;
            }
            let Ok(cache) = SweepCache::build(demand_ref, &saa) else {
                continue; // keep the (already Ok) base recommendation
            };
            prepared.push(Prepared {
                at,
                cache,
                alpha: spec.alpha,
                interval_secs: demand.interval_secs(),
                tau_intervals: saa.tau_intervals,
                output_max_filter: spec.robustness.output_max_filter,
            });
        }

        // Solve every prepared pool at one λ; returns the rounded
        // schedules (with the output max filter applied, as in
        // `robust_optimize`) and their fleet-wide cluster·interval total.
        let solve_at = |lambda: f64| -> (Vec<(usize, Vec<u32>, f64)>, u64) {
            let mut out = Vec::with_capacity(prepared.len());
            let mut total = 0u64;
            for p in &prepared {
                let opt = p.cache.solve_penalized(p.alpha, lambda);
                let mut schedule = opt.schedule;
                if p.output_max_filter {
                    let as_series =
                        TimeSeries::new(p.interval_secs, schedule).expect("interval preserved");
                    schedule = max_filter(&as_series, p.tau_intervals).into_values();
                }
                let rounded: Vec<u32> = schedule
                    .iter()
                    .map(|&n| n.round().max(0.0) as u32)
                    .collect();
                total += rounded.iter().map(|&n| u64::from(n)).sum::<u64>();
                out.push((p.at, rounded, opt.objective));
            }
            (out, total)
        };

        // Bracket: double λ until the fleet fits (or give up and take the
        // cheapest schedules reachable — min_pool floors can make any
        // budget infeasible).
        let mut hi = 1.0f64;
        let mut feasible = false;
        for _ in 0..60 {
            if solve_at(hi).1 <= budget {
                feasible = true;
                break;
            }
            hi *= 2.0;
        }
        if feasible {
            // Bisect down to the smallest feasible price: λ ∈ (lo, hi],
            // `hi` always feasible.
            let mut lo = 0.0f64;
            for _ in 0..50 {
                let mid = 0.5 * (lo + hi);
                if solve_at(mid).1 <= budget {
                    hi = mid;
                } else {
                    lo = mid;
                }
            }
        }
        let (solutions, granted) = solve_at(hi);

        let mut pools = base;
        for (at, schedule, objective) in solutions {
            if let (_, Ok(rec)) = &mut pools[at] {
                rec.schedule = schedule;
                rec.objective = objective;
            }
        }
        BudgetedOutcome {
            pools,
            unconstrained_cluster_intervals: unconstrained,
            granted_cluster_intervals: granted,
            lambda: hi,
            binding: true,
        }
    }

    /// Total cluster·intervals across the healthy pools of a
    /// recommendation set — the quantity a [`FleetBudget`] bounds.
    pub fn total_cluster_intervals(recs: &[(PoolId, Result<PoolRecommendation>)]) -> u64 {
        recs.iter()
            .filter_map(|(_, r)| r.as_ref().ok())
            .map(|r| r.schedule.iter().map(|&n| u64::from(n)).sum::<u64>())
            .sum()
    }

    /// Replays every pool through the platform simulator in parallel,
    /// each with its own provider built from its spec and `sim` as the
    /// shared base config (the pool's id is stamped into `SimConfig::pool`
    /// so metrics come out labeled). Per-pool failure isolation as in
    /// [`Fleet::recommend_all`].
    pub fn simulate_all(
        &self,
        demands: &BTreeMap<PoolId, TimeSeries>,
        sim: &SimConfig,
    ) -> Vec<(PoolId, Result<SimReport>)> {
        let pools: Vec<(&PoolId, &PoolSpec)> = self.pools.iter().collect();
        let results = ip_par::par_map(&pools, |&(id, spec)| -> Result<SimReport> {
            let demand = demands.get(id).ok_or_else(|| {
                CoreError::InvalidConfig(format!("no demand stream for pool {id}"))
            })?;
            let mut provider = Self::build_provider(spec)?;
            let mut cfg = sim.clone();
            cfg.pool = Some(id.clone());
            cfg.interval_secs = demand.interval_secs();
            Simulation::new(cfg, provider.as_mut().map(|p| p.as_mut() as _))
                .run(demand)
                .map_err(|e| CoreError::InvalidConfig(e.to_string()))
        });
        pools
            .into_iter()
            .map(|(id, _)| id.clone())
            .zip(results)
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cogs::NodeSize;

    fn spec(alpha: f64, node: NodeSize) -> PoolSpec {
        PoolSpec {
            saa: SaaConfig {
                tau_intervals: 2,
                stableness: 4,
                max_pool: 30,
                ..Default::default()
            },
            cost: CostModel {
                node_size: node,
                ..Default::default()
            },
            alpha,
            ..Default::default()
        }
    }

    fn demand(scale: f64) -> TimeSeries {
        let vals: Vec<f64> = (0..40)
            .map(|t| (scale * (1.0 + ((t % 8) as f64))).round())
            .collect();
        TimeSeries::new(30, vals).unwrap()
    }

    #[test]
    fn manages_independent_pools() {
        let mut fleet = Fleet::new();
        fleet.register("session/small", spec(0.3, NodeSize::Small));
        fleet.register("cluster/large", spec(0.3, NodeSize::Large));
        assert_eq!(fleet.len(), 2);

        let mut demands = BTreeMap::new();
        demands.insert(PoolId::new("session/small"), demand(2.0));
        demands.insert(PoolId::new("cluster/large"), demand(0.5));
        let recs = fleet.recommend_all(&demands);
        assert_eq!(recs.len(), 2);
        let total: BTreeMap<&str, u64> = recs
            .iter()
            .map(|(id, r)| {
                let r = r.as_ref().unwrap();
                (id.as_str(), r.schedule.iter().map(|&n| u64::from(n)).sum())
            })
            .collect();
        // The busier pool gets at least as much capacity in aggregate.
        assert!(total["session/small"] >= total["cluster/large"]);
    }

    #[test]
    fn empty_fleet_recommends_nothing() {
        let fleet = Fleet::new();
        assert!(fleet.is_empty());
        assert!(fleet.recommend_all(&BTreeMap::new()).is_empty());
        assert!(fleet
            .simulate_all(&BTreeMap::new(), &SimConfig::default())
            .is_empty());
    }

    #[test]
    fn one_bad_pool_does_not_discard_the_others() {
        let mut fleet = Fleet::new();
        fleet.register("good/a", spec(0.3, NodeSize::Small));
        fleet.register("starved", spec(0.3, NodeSize::Medium));
        fleet.register("good/b", spec(0.3, NodeSize::Large));

        // "starved" has no demand stream → its optimization fails; the
        // other two pools must still come back with recommendations.
        let mut demands = BTreeMap::new();
        demands.insert(PoolId::new("good/a"), demand(1.0));
        demands.insert(PoolId::new("good/b"), demand(2.0));
        let recs = fleet.recommend_all(&demands);
        assert_eq!(recs.len(), 3);
        let by_id: BTreeMap<&str, &Result<PoolRecommendation>> =
            recs.iter().map(|(id, r)| (id.as_str(), r)).collect();
        assert!(by_id["good/a"].is_ok());
        assert!(by_id["good/b"].is_ok());
        let err = by_id["starved"].as_ref().err().unwrap();
        assert!(err.to_string().contains("starved"), "{err}");
        assert!(!by_id["good/a"].as_ref().unwrap().schedule.is_empty());
    }

    #[test]
    fn per_pool_providers_and_alpha_loops_are_independent() {
        let mut fleet = Fleet::new();
        fleet.register(
            "tuned",
            PoolSpec {
                model: Some("baseline".into()),
                autotune: true,
                alpha: 0.5,
                ..spec(0.5, NodeSize::Medium)
            },
        );
        fleet.register(
            "static",
            PoolSpec {
                model: None,
                ..spec(0.3, NodeSize::Medium)
            },
        );
        fleet.register(
            "broken",
            PoolSpec {
                model: Some("nope".into()),
                ..spec(0.3, NodeSize::Medium)
            },
        );

        let providers = fleet.providers_all();
        let by_id: BTreeMap<&str, &Result<Option<DynProvider>>> =
            providers.iter().map(|(id, p)| (id.as_str(), p)).collect();
        assert!(matches!(by_id["tuned"], Ok(Some(_))));
        assert!(matches!(by_id["static"], Ok(None)));
        assert!(by_id["broken"].is_err());

        // Steering one pool's α′ loop must not touch another's: two tuned
        // providers observing opposite wait streams recommend differently
        // even though they share a spec template.
        let mut a = fleet.provider_for("tuned").unwrap().unwrap();
        let mut b = fleet.provider_for("tuned").unwrap().unwrap();
        for _ in 0..8 {
            a.observe_wait(0, 500.0); // persistent SLA breach → α′ down
            b.observe_wait(0, 0.0); // all-idle → α′ up
        }
        let vals: Vec<f64> = (0..40)
            .map(|t| if t % 8 == 0 { 24.0 } else { 1.0 })
            .collect();
        let d = TimeSeries::new(30, vals).unwrap();
        let ra = a.recommend(1200, &d, 8);
        let rb = b.recommend(1200, &d, 8);
        assert!(ra.is_some() && rb.is_some());
        assert_ne!(ra, rb, "independent α′ loops should diverge");
    }

    #[test]
    fn non_binding_budget_is_bit_identical_to_unbudgeted() {
        let mut fleet = Fleet::new();
        fleet.register("a", spec(0.3, NodeSize::Small));
        fleet.register("b", spec(0.5, NodeSize::Large));
        let mut demands = BTreeMap::new();
        demands.insert(PoolId::new("a"), demand(1.0));
        demands.insert(PoolId::new("b"), demand(2.0));

        let base = fleet.recommend_all(&demands);
        let usage = Fleet::total_cluster_intervals(&base);
        assert!(usage > 0);

        for budget in [
            None,
            Some(FleetBudget {
                max_cluster_intervals: usage,
            }),
        ] {
            let out = fleet.recommend_all_budgeted(&demands, budget);
            assert!(!out.binding);
            assert_eq!(out.lambda, 0.0);
            assert_eq!(out.unconstrained_cluster_intervals, usage);
            assert_eq!(out.granted_cluster_intervals, usage);
            for ((id, r), (bid, br)) in out.pools.iter().zip(&base) {
                assert_eq!(id, bid);
                let (r, br) = (r.as_ref().unwrap(), br.as_ref().unwrap());
                assert_eq!(r.schedule, br.schedule);
                assert_eq!(r.objective.to_bits(), br.objective.to_bits());
            }
        }
    }

    #[test]
    fn binding_budget_shrinks_the_fleet_under_the_cap() {
        let mut fleet = Fleet::new();
        fleet.register("busy", spec(0.3, NodeSize::Small));
        fleet.register("busier", spec(0.3, NodeSize::Large));
        let mut demands = BTreeMap::new();
        demands.insert(PoolId::new("busy"), demand(2.0));
        demands.insert(PoolId::new("busier"), demand(3.0));

        let usage = Fleet::total_cluster_intervals(&fleet.recommend_all(&demands));
        assert!(usage > 4);
        let cap = usage / 2;
        let out = fleet.recommend_all_budgeted(
            &demands,
            Some(FleetBudget {
                max_cluster_intervals: cap,
            }),
        );
        assert!(out.binding);
        assert!(out.lambda > 0.0);
        assert_eq!(out.unconstrained_cluster_intervals, usage);
        assert!(out.granted_cluster_intervals <= cap, "{out:?}");
        assert_eq!(
            out.granted_cluster_intervals,
            Fleet::total_cluster_intervals(&out.pools)
        );
        // Failure isolation survives the budgeted path.
        demands.remove(&PoolId::new("busier"));
        let out = fleet.recommend_all_budgeted(
            &demands,
            Some(FleetBudget {
                max_cluster_intervals: 1,
            }),
        );
        let by_id: BTreeMap<&str, &Result<PoolRecommendation>> =
            out.pools.iter().map(|(id, r)| (id.as_str(), r)).collect();
        assert!(by_id["busier"].is_err());
        assert!(by_id["busy"].is_ok());
    }

    #[test]
    fn budget_respects_robustness_transforms() {
        // An output-max-filtered pool must stay max-filtered (plateau
        // shaped) even when the budget squeezes it.
        let mut fleet = Fleet::new();
        let mut s = spec(0.6, NodeSize::Medium);
        s.robustness = RobustnessStrategies {
            demand_smoothing_factor: 0,
            extended_stableness: None,
            output_max_filter: true,
        };
        fleet.register("spiky", s);
        let mut vals = vec![1.0; 40];
        vals[20] = 12.0;
        let mut demands = BTreeMap::new();
        demands.insert(PoolId::new("spiky"), TimeSeries::new(30, vals).unwrap());

        let usage = Fleet::total_cluster_intervals(&fleet.recommend_all(&demands));
        assert!(usage > 2);
        let out = fleet.recommend_all_budgeted(
            &demands,
            Some(FleetBudget {
                max_cluster_intervals: usage / 2,
            }),
        );
        assert!(out.binding);
        let rec = out.pools[0].1.as_ref().unwrap();
        // Output max filter with SF = tau_intervals = 2 ⇒ every raised
        // value persists for at least SF+1 intervals.
        let peak = *rec.schedule.iter().max().unwrap();
        if peak > 0 {
            let run = rec
                .schedule
                .windows(3)
                .filter(|w| w.iter().all(|&v| v == peak))
                .count();
            assert!(
                run > 0,
                "peak must persist ≥ 3 intervals: {:?}",
                rec.schedule
            );
        }
    }

    #[test]
    fn simulate_all_isolates_failures_and_labels_pools() {
        let mut fleet = Fleet::new();
        fleet.register(
            "ok",
            PoolSpec {
                model: Some("baseline".into()),
                ..spec(0.3, NodeSize::Medium)
            },
        );
        fleet.register(
            "bad-model",
            PoolSpec {
                model: Some("nope".into()),
                ..spec(0.3, NodeSize::Medium)
            },
        );
        let mut demands = BTreeMap::new();
        demands.insert(PoolId::new("ok"), demand(1.0));
        demands.insert(PoolId::new("bad-model"), demand(1.0));
        let sim = SimConfig {
            ip_worker: Some(ip_sim::IpWorkerConfig::default()),
            ..Default::default()
        };
        let reports = fleet.simulate_all(&demands, &sim);
        assert_eq!(reports.len(), 2);
        let by_id: BTreeMap<&str, &Result<SimReport>> =
            reports.iter().map(|(id, r)| (id.as_str(), r)).collect();
        assert!(by_id["ok"].is_ok());
        assert!(by_id["bad-model"].is_err());
        assert!(by_id["ok"].as_ref().unwrap().total_requests > 0);
    }
}
