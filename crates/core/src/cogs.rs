//! Cost-of-goods-sold model: cluster idle time → dollars (Table 2).

use crate::{CoreError, Result};
use serde::{Deserialize, Serialize};

/// Node sizes used by the Fabric pools (Table 1 / §2: "a fixed cluster
/// size, e.g., 3-median nodes").
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum NodeSize {
    /// Small nodes.
    Small,
    /// Medium nodes.
    Medium,
    /// Large nodes.
    Large,
}

impl NodeSize {
    /// vCores per node (Azure-typical 4/8/16 laddering).
    pub fn cores(&self) -> u32 {
        match self {
            NodeSize::Small => 4,
            NodeSize::Medium => 8,
            NodeSize::Large => 16,
        }
    }
}

/// Converts cluster idle time into COGS dollars.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct CostModel {
    /// Dollar price per vCore-hour.
    pub dollars_per_core_hour: f64,
    /// Nodes per pooled cluster (paper: e.g. 3).
    pub nodes_per_cluster: u32,
    /// Node size of the pool.
    pub node_size: NodeSize,
}

impl Default for CostModel {
    fn default() -> Self {
        Self {
            dollars_per_core_hour: 0.091,
            nodes_per_cluster: 3,
            node_size: NodeSize::Medium,
        }
    }
}

impl CostModel {
    /// Dollar cost of a quantity of idle cluster time.
    pub fn cost_of_idle(&self, idle_cluster_seconds: f64) -> f64 {
        let core_hours = idle_cluster_seconds / 3600.0
            * f64::from(self.nodes_per_cluster)
            * f64::from(self.node_size.cores());
        core_hours * self.dollars_per_core_hour
    }

    /// Extrapolates a measurement window to an annual dollar figure.
    pub fn annualize(&self, idle_cluster_seconds: f64, window_seconds: f64) -> Result<f64> {
        if window_seconds <= 0.0 {
            return Err(CoreError::InvalidConfig("window must be positive".into()));
        }
        const SECONDS_PER_YEAR: f64 = 365.25 * 86_400.0;
        Ok(self.cost_of_idle(idle_cluster_seconds) * SECONDS_PER_YEAR / window_seconds)
    }
}

/// Comparison of a dynamic policy against the static baseline (one Table 2
/// row).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SavingsReport {
    /// Target wait SLA, seconds.
    pub target_wait_secs: f64,
    /// Hit rate achieved by the static baseline.
    pub static_hit_rate: f64,
    /// Hit rate achieved by the dynamic policy.
    pub dynamic_hit_rate: f64,
    /// Annualized static-pool idle cost, dollars.
    pub static_annual_cost: f64,
    /// Annualized dynamic-pool idle cost, dollars.
    pub dynamic_annual_cost: f64,
}

impl SavingsReport {
    /// Absolute annual savings.
    pub fn annual_savings(&self) -> f64 {
        self.static_annual_cost - self.dynamic_annual_cost
    }

    /// Relative idle-cost reduction (the paper's headline 43% figure shape).
    pub fn relative_savings(&self) -> f64 {
        if self.static_annual_cost == 0.0 {
            0.0
        } else {
            self.annual_savings() / self.static_annual_cost
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn core_ladder() {
        assert!(NodeSize::Small.cores() < NodeSize::Medium.cores());
        assert!(NodeSize::Medium.cores() < NodeSize::Large.cores());
    }

    #[test]
    fn cost_of_idle_known_value() {
        let m = CostModel {
            dollars_per_core_hour: 0.10,
            nodes_per_cluster: 3,
            node_size: NodeSize::Medium,
        };
        // 1 cluster idle for 1 hour = 3 nodes × 8 cores × $0.10 = $2.40.
        assert!((m.cost_of_idle(3600.0) - 2.4).abs() < 1e-12);
    }

    #[test]
    fn annualize_scales_window() {
        let m = CostModel::default();
        // A day of measurement extrapolates ×365.25.
        let day = m.cost_of_idle(1000.0);
        let annual = m.annualize(1000.0, 86_400.0).unwrap();
        assert!((annual / day - 365.25).abs() < 1e-9);
        assert!(m.annualize(100.0, 0.0).is_err());
    }

    #[test]
    fn savings_arithmetic() {
        let r = SavingsReport {
            target_wait_secs: 1.0,
            static_hit_rate: 0.99,
            dynamic_hit_rate: 0.99,
            static_annual_cost: 20.0e6,
            dynamic_annual_cost: 12.0e6,
        };
        assert_eq!(r.annual_savings(), 8.0e6);
        assert!((r.relative_savings() - 0.4).abs() < 1e-12);
    }

    #[test]
    fn zero_static_cost_safe() {
        let r = SavingsReport {
            target_wait_secs: 1.0,
            static_hit_rate: 1.0,
            dynamic_hit_rate: 1.0,
            static_annual_cost: 0.0,
            dynamic_annual_cost: 0.0,
        };
        assert_eq!(r.relative_savings(), 0.0);
    }
}
