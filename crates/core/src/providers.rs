//! Named recommendation providers — the shared factory behind the CLI's
//! `--ip <model>` flag and the daemon's `POST /reload`.
//!
//! Both front ends must build *exactly* the same provider from the same
//! `(model, α', SaaConfig)` triple, or the daemon's live decisions drift
//! from the offline oracle. Centralizing construction here is what makes
//! the bit-identity guarantee checkable: the integration tests build their
//! oracle through this same function.
//!
//! [`AutoTuned`] adds the §6 feedback loop on top of any steerable
//! provider: the platform reports the realized mean wait before each
//! pipeline run (via [`RecommendationProvider::observe_wait`]), the
//! [`AlphaTuner`] turns it into a new `α'`, and the wrapper pushes that
//! into the inner engine before it recommends. Because the wait stream is
//! itself deterministic, the tuned `α'` sequence is too.

use crate::engine::IntelligentPooling;
use crate::pipeline::{EndToEndEngine, RecommendationEngine, TwoStepEngine};
use crate::{AlphaTuner, CoreError, Result};
use ip_models::{BaselineForecaster, Forecaster, SsaModel, SsaPlus};
use ip_saa::SaaConfig;
use ip_sim::RecommendationProvider;
use ip_ssa::RankSelection;
use ip_timeseries::TimeSeries;

/// A boxed provider ready to move into the simulator or the daemon's
/// controller thread.
pub type DynProvider = Box<dyn RecommendationProvider + Send>;

/// An engine whose SAA wait-vs-idle knob `α'` can be steered at runtime —
/// the hook the §6 auto-tuner drives.
pub trait AlphaSteerable {
    /// Sets the optimizer's `α'` for subsequent recommendations.
    fn set_alpha_prime(&mut self, alpha_prime: f64);
}

impl<F: Forecaster> AlphaSteerable for TwoStepEngine<F> {
    fn set_alpha_prime(&mut self, alpha_prime: f64) {
        self.config_mut().alpha_prime = alpha_prime;
    }
}

impl<F: Forecaster> AlphaSteerable for EndToEndEngine<F> {
    fn set_alpha_prime(&mut self, alpha_prime: f64) {
        self.config_mut().alpha_prime = alpha_prime;
    }
}

impl<E, F> AlphaSteerable for IntelligentPooling<E, F>
where
    E: RecommendationEngine + AlphaSteerable,
    F: Forecaster,
{
    fn set_alpha_prime(&mut self, alpha_prime: f64) {
        // Both the ML path (inner engine) and the guardrail fallback's SAA
        // run share the knob.
        self.engine_mut().set_alpha_prime(alpha_prime);
        self.config_mut().saa.alpha_prime = alpha_prime;
    }
}

/// Provider adapter for the bare 2-step pipeline (`None` on any pipeline
/// error, exercising the §7.6 fallback chain).
impl<F: Forecaster> RecommendationProvider for TwoStepEngine<F> {
    fn recommend(&mut self, _now: u64, observed: &TimeSeries, horizon: usize) -> Option<Vec<u32>> {
        RecommendationEngine::recommend(self, observed, horizon).ok()
    }
}

/// Provider adapter for the bare E2E pipeline.
impl<F: Forecaster> RecommendationProvider for EndToEndEngine<F> {
    fn recommend(&mut self, _now: u64, observed: &TimeSeries, horizon: usize) -> Option<Vec<u32>> {
        RecommendationEngine::recommend(self, observed, horizon).ok()
    }
}

/// The §6 feedback loop wrapped around a steerable provider: every
/// [`observe_wait`](RecommendationProvider::observe_wait) feeds the tuner
/// and re-steers the inner engine's `α'` before the next recommendation.
pub struct AutoTuned<P> {
    inner: P,
    tuner: AlphaTuner,
}

impl<P: RecommendationProvider + AlphaSteerable> AutoTuned<P> {
    /// Wraps `inner`, steering toward `tuner`'s wait target. The inner
    /// engine is immediately aligned to the tuner's starting `α'`.
    pub fn new(mut inner: P, tuner: AlphaTuner) -> Self {
        inner.set_alpha_prime(tuner.alpha());
        Self { inner, tuner }
    }

    /// The current `α'` recommendation.
    pub fn alpha(&self) -> f64 {
        self.tuner.alpha()
    }

    /// The tuner (observation count, target).
    pub fn tuner(&self) -> &AlphaTuner {
        &self.tuner
    }
}

impl<P: RecommendationProvider + AlphaSteerable> RecommendationProvider for AutoTuned<P> {
    fn recommend(&mut self, now: u64, observed: &TimeSeries, horizon: usize) -> Option<Vec<u32>> {
        self.inner.recommend(now, observed, horizon)
    }

    fn observe_wait(&mut self, _now_secs: u64, mean_wait_secs: f64) {
        let alpha = self.tuner.observe(mean_wait_secs);
        self.inner.set_alpha_prime(alpha);
    }
}

fn unknown_model(name: &str) -> CoreError {
    CoreError::InvalidConfig(format!(
        "unknown model {name:?} (expected ssa, ssa+, baseline, e2e-ssa or e2e-baseline)"
    ))
}

/// Builds the named recommendation pipeline as a boxed provider.
///
/// Names: `ssa` (2-step over plain SSA), `ssa+` (2-step over the §5.2
/// low-rank variant, rank energy steered by `1 - α'`), `baseline` (2-step
/// over a constant forecaster), `e2e-ssa` / `e2e-baseline` (the §5.4 E2E
/// shape). `alpha` seeds both the SAA `α'` (when the caller left
/// `saa.alpha_prime` at its default this is what lands there) and the
/// SSA+ energy threshold.
pub fn named_provider(name: &str, alpha: f64, saa: SaaConfig) -> Result<DynProvider> {
    let provider: DynProvider = match name {
        "ssa" => Box::new(TwoStepEngine::new(
            SsaModel::new(150, RankSelection::EnergyThreshold(0.9)),
            saa,
        )),
        "ssa+" => Box::new(TwoStepEngine::new(
            SsaPlus::with_alpha(1.0 - alpha as f32),
            saa,
        )),
        "baseline" => Box::new(TwoStepEngine::new(BaselineForecaster::new(1.0), saa)),
        "e2e-ssa" => Box::new(EndToEndEngine::new(
            SsaModel::new(150, RankSelection::EnergyThreshold(0.9)),
            saa,
        )),
        "e2e-baseline" => Box::new(EndToEndEngine::new(BaselineForecaster::new(1.0), saa)),
        other => return Err(unknown_model(other)),
    };
    Ok(provider)
}

/// [`named_provider`] wrapped in the §6 auto-tuner steering toward
/// `target_wait_secs`, starting from `alpha`.
pub fn autotuned_provider(
    name: &str,
    alpha: f64,
    saa: SaaConfig,
    target_wait_secs: f64,
) -> Result<DynProvider> {
    let tuner = AlphaTuner::new(target_wait_secs, alpha)?;
    let provider: DynProvider = match name {
        "ssa" => Box::new(AutoTuned::new(
            TwoStepEngine::new(SsaModel::new(150, RankSelection::EnergyThreshold(0.9)), saa),
            tuner,
        )),
        "ssa+" => Box::new(AutoTuned::new(
            TwoStepEngine::new(SsaPlus::with_alpha(1.0 - alpha as f32), saa),
            tuner,
        )),
        "baseline" => Box::new(AutoTuned::new(
            TwoStepEngine::new(BaselineForecaster::new(1.0), saa),
            tuner,
        )),
        "e2e-ssa" => Box::new(AutoTuned::new(
            EndToEndEngine::new(SsaModel::new(150, RankSelection::EnergyThreshold(0.9)), saa),
            tuner,
        )),
        "e2e-baseline" => Box::new(AutoTuned::new(
            EndToEndEngine::new(BaselineForecaster::new(1.0), saa),
            tuner,
        )),
        other => return Err(unknown_model(other)),
    };
    Ok(provider)
}

#[cfg(test)]
mod tests {
    use super::*;
    use ip_sim::{SimConfig, Simulation};

    fn demand(n: usize) -> TimeSeries {
        let vals: Vec<f64> = (0..n).map(|i| f64::from(i as u32 % 6)).collect();
        TimeSeries::new(30, vals).unwrap()
    }

    #[test]
    fn named_providers_build_and_unknown_rejected() {
        for name in ["ssa", "ssa+", "baseline", "e2e-ssa", "e2e-baseline"] {
            assert!(named_provider(name, 0.3, SaaConfig::default()).is_ok());
            assert!(autotuned_provider(name, 0.3, SaaConfig::default(), 10.0).is_ok());
        }
        assert!(named_provider("nope", 0.3, SaaConfig::default()).is_err());
        assert!(autotuned_provider("nope", 0.3, SaaConfig::default(), 10.0).is_err());
    }

    #[test]
    fn named_provider_matches_direct_engine() {
        // The factory's "baseline" must equal a hand-built TwoStepEngine —
        // the equivalence the CLI and daemon both lean on.
        let d = demand(480);
        let saa = SaaConfig::default();
        let mut boxed = named_provider("baseline", 0.3, saa).unwrap();
        let mut direct = TwoStepEngine::new(BaselineForecaster::new(1.0), saa);
        let a = boxed.recommend(0, &d, 60);
        let b = RecommendationEngine::recommend(&mut direct, &d, 60).ok();
        assert_eq!(a, b);
        assert!(a.is_some());
    }

    #[test]
    fn observe_wait_steers_alpha() {
        let saa = SaaConfig::default();
        let engine = TwoStepEngine::new(BaselineForecaster::new(1.0), saa);
        let mut tuned = AutoTuned::new(engine, AlphaTuner::new(10.0, 0.5).unwrap());
        // A huge observed wait must push α' down (wait-averse).
        tuned.observe_wait(0, 500.0);
        assert!(tuned.alpha() < 0.5);
        // A zero wait pushes it back up (idle-averse).
        let before = tuned.alpha();
        tuned.observe_wait(0, 0.0);
        assert!(tuned.alpha() > before);
    }

    #[test]
    fn autotuned_run_is_deterministic_and_differs_from_untuned() {
        // Two identical autotuned sims agree bit-for-bit; the tuned α'
        // track actually moves (observe_wait is being called).
        let d = demand(480);
        let cfg = SimConfig {
            ip_worker: Some(ip_sim::IpWorkerConfig {
                run_every_secs: 600,
                horizon_secs: 1200,
                failing_runs: vec![],
            }),
            default_pool_target: 2,
            seed: 3,
            ..Default::default()
        };
        let run = |target_wait: f64| {
            let mut p =
                autotuned_provider("baseline", 0.5, SaaConfig::default(), target_wait).unwrap();
            Simulation::new(cfg.clone(), Some(p.as_mut()))
                .run(&d)
                .unwrap()
        };
        let a = run(5.0);
        let b = run(5.0);
        assert_eq!(a.applied_target_timeline, b.applied_target_timeline);
        assert_eq!(a.total_wait_secs, b.total_wait_secs);
    }
}
