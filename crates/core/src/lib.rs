#![warn(missing_docs)]
//! The Intelligent Pooling system assembled — the paper's contribution on
//! top of the substrate crates.
//!
//! * [`pipeline`] — the two end-to-end recommendation engines of §5.4:
//!   **2-step** (forecast demand → SAA-optimize the forecast) and **E2E**
//!   (SAA-optimize history → forecast the optimal pool size directly).
//! * [`autotune`] — the §6 feedback loop: fit `α' = f(t_wait)` piecewise
//!   linearly over the last 10 observations and steer `α'` toward the wait
//!   SLA.
//! * [`engine`] — the production wrapper: guardrail validation of the ML
//!   prediction, the fallback chain (fresh recommendation → stale file →
//!   defaults, §7.6), robustness strategies (§7.5), and an
//!   [`ip_sim::RecommendationProvider`] implementation so the whole system
//!   can be dropped into the platform simulator.
//! * [`cogs`] — the cost model converting idle cluster time into dollar
//!   figures (Table 2) for the paper's node sizes.
//! * [`fleet`] — the paper's stated future work: N first-class pools with
//!   per-pool specs, providers and α′ loops, fanned out via `ip-par` with
//!   per-pool failure isolation.
//! * [`monitoring`] — the §7.5 production metric set and alert rules.
//!
//! ```
//! use ip_core::AlphaTuner;
//!
//! // The §6 loop: each observation of the measured wait updates alpha'.
//! // Here the environment responds linearly (wait = 100·alpha'); the tuner
//! // walks alpha' until the wait sits at the 10 s target.
//! let mut tuner = AlphaTuner::new(10.0, 0.8).unwrap();
//! let mut alpha = tuner.alpha();
//! for _ in 0..20 {
//!     alpha = tuner.observe(100.0 * alpha);
//! }
//! assert!((100.0 * alpha - 10.0).abs() < 5.0);
//! ```

pub mod autotune;
pub mod cogs;
pub mod engine;
pub mod fleet;
pub mod monitoring;
pub mod pipeline;
pub mod providers;
pub mod replay;

pub use autotune::AlphaTuner;
pub use cogs::{CostModel, NodeSize, SavingsReport};
pub use engine::{EngineConfig, Guardrail, IntelligentPooling, RecommendationOutcome};
pub use fleet::{BudgetedOutcome, Fleet, FleetBudget, PoolId, PoolRecommendation, PoolSpec};
pub use monitoring::{
    evaluate_alerts, merge_snapshots, Alert, AlertRule, Dashboard, MetricsSnapshot,
};
pub use pipeline::{EndToEndEngine, RecommendationEngine, TwoStepEngine};
pub use providers::{autotuned_provider, named_provider, AlphaSteerable, AutoTuned, DynProvider};
pub use replay::{replay_pipeline, ReplayConfig, ReplayOutcome};

/// Errors from the core engine.
#[derive(Debug, Clone, PartialEq)]
pub enum CoreError {
    /// The underlying forecaster failed.
    Model(String),
    /// The optimizer failed.
    Optimizer(String),
    /// Invalid configuration.
    InvalidConfig(String),
    /// Not enough history to operate.
    InsufficientHistory {
        /// Required intervals.
        needed: usize,
        /// Available intervals.
        got: usize,
    },
}

impl std::fmt::Display for CoreError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CoreError::Model(m) => write!(f, "model failure: {m}"),
            CoreError::Optimizer(m) => write!(f, "optimizer failure: {m}"),
            CoreError::InvalidConfig(m) => write!(f, "invalid config: {m}"),
            CoreError::InsufficientHistory { needed, got } => {
                write!(f, "insufficient history: need {needed}, got {got}")
            }
        }
    }
}

impl std::error::Error for CoreError {}

/// Result alias for this crate.
pub type Result<T> = std::result::Result<T, CoreError>;
