//! The §6 hyper-parameter feedback loop.
//!
//! With the Eq. 16 reformulation there is a single knob `α'`; the tuner
//! models the observed relation `α' = f(t_wait)` as piecewise linear, fits
//! the best line through the last 10 `(wait, α')` observations, and solves
//! it for the SLA target. Monitoring of pool hits/misses feeds the observed
//! wait.

use crate::{CoreError, Result};
use std::collections::VecDeque;

/// Self-adaptive tuner for the idle-vs-wait penalty `α'`.
#[derive(Debug, Clone)]
pub struct AlphaTuner {
    /// The wait-time SLA to steer toward, in seconds.
    pub target_wait_secs: f64,
    /// Window of recent `(observed_wait_secs, alpha_prime)` pairs.
    history: VecDeque<(f64, f64)>,
    /// Number of observations retained (paper: 10).
    window: usize,
    /// Current recommendation.
    alpha: f64,
    /// Multiplicative step used before enough data exists for a line fit.
    bootstrap_step: f64,
}

impl AlphaTuner {
    /// Creates a tuner steering toward `target_wait_secs`, starting at
    /// `initial_alpha`.
    pub fn new(target_wait_secs: f64, initial_alpha: f64) -> Result<Self> {
        if !(0.0..=1.0).contains(&initial_alpha) {
            return Err(CoreError::InvalidConfig(format!(
                "alpha must be in [0,1], got {initial_alpha}"
            )));
        }
        if target_wait_secs < 0.0 {
            return Err(CoreError::InvalidConfig("target wait must be >= 0".into()));
        }
        Ok(Self {
            target_wait_secs,
            history: VecDeque::new(),
            window: 10,
            alpha: initial_alpha,
            bootstrap_step: 0.05,
        })
    }

    /// Current `α'` recommendation.
    pub fn alpha(&self) -> f64 {
        self.alpha
    }

    /// Number of observations currently held.
    pub fn observations(&self) -> usize {
        self.history.len()
    }

    /// Records the wait observed while running at the current `α'` and
    /// returns the updated recommendation.
    ///
    /// Mechanics: higher `α'` penalizes idle more → smaller pools → more
    /// wait. With ≥ 3 observations spanning distinct waits, a least-squares
    /// line `α' = a + b·wait` is fit over the retained window and evaluated
    /// at the target; otherwise a conservative multiplicative step moves
    /// `α'` in the correct direction.
    pub fn observe(&mut self, observed_wait_secs: f64) -> f64 {
        self.history.push_back((observed_wait_secs, self.alpha));
        while self.history.len() > self.window {
            self.history.pop_front();
        }

        let fitted = self.fit_line().map(|(a, b)| a + b * self.target_wait_secs);
        self.alpha = match fitted {
            Some(candidate) if candidate.is_finite() => candidate.clamp(0.0, 1.0),
            _ => {
                // Bootstrap: move against the error sign.
                let step = if observed_wait_secs > self.target_wait_secs {
                    -self.bootstrap_step // too much waiting → grow the pool
                } else {
                    self.bootstrap_step // under target → can save idle cost
                };
                (self.alpha + step).clamp(0.0, 1.0)
            }
        };
        self.alpha
    }

    /// Least-squares fit of `α' = a + b·wait` over the window; `None` when
    /// the waits are (nearly) collinear in a single point.
    fn fit_line(&self) -> Option<(f64, f64)> {
        let n = self.history.len();
        if n < 3 {
            return None;
        }
        let nf = n as f64;
        let sum_w: f64 = self.history.iter().map(|(w, _)| w).sum();
        let sum_a: f64 = self.history.iter().map(|(_, a)| a).sum();
        let mean_w = sum_w / nf;
        let mean_a = sum_a / nf;
        let sxx: f64 = self.history.iter().map(|(w, _)| (w - mean_w).powi(2)).sum();
        if sxx < 1e-9 {
            return None;
        }
        let sxy: f64 = self
            .history
            .iter()
            .map(|(w, a)| (w - mean_w) * (a - mean_a))
            .sum();
        let b = sxy / sxx;
        let a = mean_a - b * mean_w;
        Some((a, b))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_validated() {
        assert!(AlphaTuner::new(1.0, 0.5).is_ok());
        assert!(AlphaTuner::new(1.0, 1.5).is_err());
        assert!(AlphaTuner::new(-1.0, 0.5).is_err());
    }

    #[test]
    fn bootstrap_moves_against_error() {
        let mut t = AlphaTuner::new(10.0, 0.5).unwrap();
        // Waiting far above target → alpha must drop (bigger pool).
        let a1 = t.observe(100.0);
        assert!(a1 < 0.5);
        // Waiting at zero → alpha can rise (save idle cost).
        let mut t2 = AlphaTuner::new(10.0, 0.5).unwrap();
        let a2 = t2.observe(0.0);
        assert!(a2 > 0.5);
    }

    #[test]
    fn converges_on_linear_system() {
        // Synthetic environment: wait = 200·α' (monotone increasing). The
        // tuner should find α' ≈ target/200.
        let mut t = AlphaTuner::new(20.0, 0.9).unwrap();
        let mut alpha = t.alpha();
        for _ in 0..25 {
            let wait = 200.0 * alpha;
            alpha = t.observe(wait);
        }
        let final_wait = 200.0 * alpha;
        assert!(
            (final_wait - 20.0).abs() < 4.0,
            "converged to wait {final_wait}, alpha {alpha}"
        );
    }

    #[test]
    fn window_caps_history() {
        let mut t = AlphaTuner::new(5.0, 0.5).unwrap();
        for i in 0..30 {
            t.observe(i as f64);
        }
        assert_eq!(t.observations(), 10);
    }

    #[test]
    fn alpha_stays_in_unit_interval() {
        let mut t = AlphaTuner::new(0.0, 0.95).unwrap();
        for _ in 0..50 {
            let a = t.observe(0.0);
            assert!((0.0..=1.0).contains(&a));
        }
        let mut t = AlphaTuner::new(1000.0, 0.05).unwrap();
        for _ in 0..50 {
            let a = t.observe(10_000.0);
            assert!((0.0..=1.0).contains(&a));
        }
    }

    #[test]
    fn degenerate_identical_waits_fall_back_to_steps() {
        let mut t = AlphaTuner::new(10.0, 0.5).unwrap();
        // Identical waits make the line fit singular; tuner keeps stepping.
        let a1 = t.observe(50.0);
        let a2 = t.observe(50.0);
        let a3 = t.observe(50.0);
        let a4 = t.observe(50.0);
        assert!(a4 < a3 && a3 < a2 && a2 < a1, "{a1} {a2} {a3} {a4}");
    }
}
