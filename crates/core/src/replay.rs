//! Rolling-origin production replay.
//!
//! The deployed system (§7.4–7.5) does not forecast once: it runs "in a
//! continuous loop", retraining and re-recommending every ~30 minutes, each
//! run covering the next hour. Single-shot evaluation understates such a
//! system (errors compound over a long horizon that production never uses).
//! [`replay_pipeline`] reproduces the production cadence over a historical
//! trace: at every cadence point the engine sees exactly the demand observed
//! so far, its recommendation covers `[t, t + horizon)`, later runs override
//! earlier ones, and the stitched schedule is finally evaluated against the
//! realized demand.

use crate::pipeline::RecommendationEngine;
use crate::{CoreError, Result};
use ip_saa::{evaluate_schedule, PoolMechanics};
use ip_timeseries::TimeSeries;

/// Configuration of a replay run.
#[derive(Debug, Clone, Copy)]
pub struct ReplayConfig {
    /// Intervals of history required before the first recommendation
    /// (earlier intervals run on `default_target`).
    pub warmup: usize,
    /// Cadence between pipeline runs, in intervals (paper: 30 min = 60).
    pub cadence: usize,
    /// Horizon covered by each recommendation, in intervals (paper: 1 h =
    /// 120). Must be ≥ `cadence` or gaps would fall back to the default.
    pub horizon: usize,
    /// Pool size applied where no recommendation covers (warm-up, failures).
    pub default_target: u32,
    /// Creation latency in intervals, for the final evaluation.
    pub tau_intervals: usize,
}

impl Default for ReplayConfig {
    fn default() -> Self {
        Self {
            warmup: 2880,
            cadence: 60,
            horizon: 120,
            default_target: 3,
            tau_intervals: 3,
        }
    }
}

/// Result of a replay: the stitched schedule and its evaluation.
#[derive(Debug, Clone)]
pub struct ReplayOutcome {
    /// The pool-size schedule actually applied at every interval.
    pub schedule: Vec<f64>,
    /// Mechanism evaluation over the post-warm-up window.
    pub mechanics: PoolMechanics,
    /// Pipeline runs executed.
    pub runs: usize,
    /// Runs whose recommendation failed (their window ran on the previous
    /// file or the default — the §7.6 degradation).
    pub failed_runs: usize,
}

/// Replays an engine over `demand` at the production cadence and evaluates
/// the stitched schedule on the post-warm-up portion of the trace.
pub fn replay_pipeline<E: RecommendationEngine + ?Sized>(
    engine: &mut E,
    demand: &TimeSeries,
    config: &ReplayConfig,
) -> Result<ReplayOutcome> {
    if config.cadence == 0 || config.horizon < config.cadence {
        return Err(CoreError::InvalidConfig(
            "cadence must be > 0 and horizon >= cadence".into(),
        ));
    }
    if demand.len() <= config.warmup + config.cadence {
        return Err(CoreError::InsufficientHistory {
            needed: config.warmup + config.cadence + 1,
            got: demand.len(),
        });
    }

    let mut schedule: Vec<f64> = vec![f64::from(config.default_target); demand.len()];
    let mut runs = 0usize;
    let mut failed_runs = 0usize;
    let mut origin = config.warmup;
    while origin < demand.len() {
        runs += 1;
        let history = demand
            .slice(0, origin)
            .map_err(|e| CoreError::InvalidConfig(e.to_string()))?;
        let span = config.horizon.min(demand.len() - origin);
        match engine.recommend(&history, span) {
            Ok(targets) => {
                for (i, &t) in targets.iter().take(span).enumerate() {
                    schedule[origin + i] = f64::from(t);
                }
            }
            Err(_) => {
                failed_runs += 1;
                // Previous file (already written into `schedule`) or the
                // default covers this window — nothing to do.
            }
        }
        origin += config.cadence;
    }

    // Evaluate only the replayed region (the warm-up ran on defaults).
    let eval_demand = demand
        .slice(config.warmup, demand.len())
        .map_err(|e| CoreError::InvalidConfig(e.to_string()))?;
    let eval_schedule = schedule[config.warmup..].to_vec();
    let mechanics = evaluate_schedule(&eval_demand, &eval_schedule, config.tau_intervals)
        .map_err(|e| CoreError::Optimizer(e.to_string()))?;

    Ok(ReplayOutcome {
        schedule,
        mechanics,
        runs,
        failed_runs,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pipeline::TwoStepEngine;
    use ip_models::{BaselineForecaster, SeasonalNaive};
    use ip_saa::SaaConfig;

    fn seasonal_demand(days: usize) -> TimeSeries {
        // A 12-interval "day" with a clear pattern, repeated.
        let day = [0.0, 0.0, 4.0, 4.0, 1.0, 1.0, 6.0, 6.0, 0.0, 0.0, 2.0, 2.0];
        let vals: Vec<f64> = (0..days * 12).map(|t| day[t % 12]).collect();
        TimeSeries::new(30, vals).unwrap()
    }

    fn saa() -> SaaConfig {
        SaaConfig {
            tau_intervals: 1,
            stableness: 2,
            min_pool: 0,
            max_pool: 30,
            max_new_per_block: 30,
            alpha_prime: 0.2,
        }
    }

    #[test]
    fn replay_covers_trace_and_counts_runs() {
        let demand = seasonal_demand(20);
        let mut engine = TwoStepEngine::new(SeasonalNaive::new(12), saa());
        let cfg = ReplayConfig {
            warmup: 60,
            cadence: 12,
            horizon: 24,
            default_target: 1,
            tau_intervals: 1,
        };
        let out = replay_pipeline(&mut engine, &demand, &cfg).unwrap();
        assert_eq!(out.schedule.len(), demand.len());
        // Warm-up runs on the default.
        assert!(out.schedule[..60].iter().all(|&v| v == 1.0));
        let expected_runs = (demand.len() - 60).div_ceil(12);
        assert_eq!(out.runs, expected_runs);
        assert_eq!(out.failed_runs, 0);
        // A seasonal-naive forecast on a perfectly seasonal trace plus a
        // wait-averse optimizer delivers a high hit rate.
        assert!(
            out.mechanics.hit_rate > 0.9,
            "hit rate {}",
            out.mechanics.hit_rate
        );
    }

    #[test]
    fn failed_runs_fall_back() {
        // The engine fails on every run (seasonal-naive with an impossible
        // season); the schedule stays at the default everywhere.
        let demand = seasonal_demand(10);
        let mut engine = TwoStepEngine::new(SeasonalNaive::new(100_000), saa());
        let cfg = ReplayConfig {
            warmup: 24,
            cadence: 12,
            horizon: 24,
            default_target: 2,
            tau_intervals: 1,
        };
        let out = replay_pipeline(&mut engine, &demand, &cfg).unwrap();
        assert_eq!(out.failed_runs, out.runs);
        assert!(out.schedule.iter().all(|&v| v == 2.0));
    }

    #[test]
    fn config_validation() {
        let demand = seasonal_demand(10);
        let mut engine = TwoStepEngine::new(BaselineForecaster::new(1.0), saa());
        let bad_cadence = ReplayConfig {
            cadence: 0,
            ..Default::default()
        };
        assert!(replay_pipeline(&mut engine, &demand, &bad_cadence).is_err());
        let gap = ReplayConfig {
            cadence: 10,
            horizon: 5,
            warmup: 10,
            ..Default::default()
        };
        assert!(replay_pipeline(&mut engine, &demand, &gap).is_err());
        let too_short = ReplayConfig {
            warmup: 1_000_000,
            ..Default::default()
        };
        assert!(matches!(
            replay_pipeline(&mut engine, &demand, &too_short),
            Err(CoreError::InsufficientHistory { .. })
        ));
    }

    #[test]
    fn later_runs_override_earlier_windows() {
        // horizon 3× cadence: each window is overwritten twice; the final
        // schedule must come from the most recent covering run. We detect
        // this by an engine that recommends its call count.
        struct Counting(u32);
        impl RecommendationEngine for Counting {
            fn name(&self) -> &'static str {
                "counting"
            }
            fn recommend(&mut self, _h: &TimeSeries, horizon: usize) -> crate::Result<Vec<u32>> {
                self.0 += 1;
                Ok(vec![self.0; horizon])
            }
        }
        let demand = seasonal_demand(10);
        let cfg = ReplayConfig {
            warmup: 24,
            cadence: 6,
            horizon: 18,
            default_target: 0,
            tau_intervals: 1,
        };
        let mut engine = Counting(0);
        let out = replay_pipeline(&mut engine, &demand, &cfg).unwrap();
        // Interval 24 + 13 lies in run 3's cadence window (runs at 24, 30,
        // 36 → covered by run 3's value except where a later run overrode).
        // Every interval must carry the value of the *latest* run whose
        // window covers it: schedule[t] == run index of floor((t−24)/6)+1.
        for t in 24..demand.len() {
            let expected = ((t - 24) / 6 + 1) as f64;
            assert_eq!(out.schedule[t], expected, "interval {t}");
        }
    }
}
