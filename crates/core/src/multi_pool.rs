//! Multiple pools with different configurations — the paper's stated future
//! work ("operation of multiple pools with different configurations
//! (cluster size, etc.)"), implemented as an extension.
//!
//! Each pool (e.g. session vs. cluster pool, or per node size) has its own
//! demand stream, SAA configuration and cost model; the manager runs the
//! optimizer per pool and aggregates reporting.

use crate::cogs::CostModel;
use crate::{CoreError, Result};
use ip_saa::robustness::RobustnessStrategies;
use ip_saa::{robust_optimize, SaaConfig};
use ip_timeseries::TimeSeries;
use std::collections::BTreeMap;

/// Identifier of a managed pool (e.g. `"eastus2/session/medium"`).
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct PoolId(pub String);

impl std::fmt::Display for PoolId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.0)
    }
}

/// Per-pool settings.
#[derive(Debug, Clone)]
pub struct PoolSpec {
    /// Optimizer settings for this pool.
    pub saa: SaaConfig,
    /// Hardening strategies for this pool.
    pub robustness: RobustnessStrategies,
    /// Cost model (node size differs per pool).
    pub cost: CostModel,
}

/// One pool's recommendation plus its projected idle cost.
#[derive(Debug, Clone)]
pub struct PoolRecommendation {
    /// Pool identity.
    pub pool: PoolId,
    /// Target sizes per interval.
    pub schedule: Vec<u32>,
    /// Objective value reported by the optimizer.
    pub objective: f64,
}

/// Manages several pools side by side.
#[derive(Debug, Default)]
pub struct MultiPoolManager {
    pools: BTreeMap<PoolId, PoolSpec>,
}

impl MultiPoolManager {
    /// Creates an empty manager.
    pub fn new() -> Self {
        Self::default()
    }

    /// Registers (or replaces) a pool.
    pub fn register(&mut self, id: PoolId, spec: PoolSpec) {
        self.pools.insert(id, spec);
    }

    /// Number of managed pools.
    pub fn len(&self) -> usize {
        self.pools.len()
    }

    /// `true` when no pools are registered.
    pub fn is_empty(&self) -> bool {
        self.pools.is_empty()
    }

    /// Runs the optimizer for every pool against its demand stream, pools in
    /// parallel (each pool's optimization is independent; the output keeps
    /// the manager's deterministic `BTreeMap` ordering regardless of thread
    /// count). Pools missing from `demands` produce an error (every managed
    /// pool must be monitored).
    pub fn recommend_all(
        &self,
        demands: &BTreeMap<PoolId, TimeSeries>,
    ) -> Result<Vec<PoolRecommendation>> {
        let pools: Vec<(&PoolId, &PoolSpec)> = self.pools.iter().collect();
        let results = ip_par::par_map(&pools, |&(id, spec)| -> Result<PoolRecommendation> {
            let demand = demands.get(id).ok_or_else(|| {
                CoreError::InvalidConfig(format!("no demand stream for pool {id}"))
            })?;
            let opt = robust_optimize(demand, &spec.saa, &spec.robustness)
                .map_err(|e| CoreError::Optimizer(e.to_string()))?;
            Ok(PoolRecommendation {
                pool: id.clone(),
                schedule: opt
                    .schedule
                    .iter()
                    .map(|&n| n.round().max(0.0) as u32)
                    .collect(),
                objective: opt.objective,
            })
        });
        results.into_iter().collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cogs::NodeSize;

    fn spec(alpha: f64, node: NodeSize) -> PoolSpec {
        PoolSpec {
            saa: SaaConfig {
                tau_intervals: 2,
                stableness: 4,
                max_pool: 30,
                alpha_prime: alpha,
                ..Default::default()
            },
            robustness: RobustnessStrategies::none(),
            cost: CostModel {
                node_size: node,
                ..Default::default()
            },
        }
    }

    fn demand(scale: f64) -> TimeSeries {
        let vals: Vec<f64> = (0..40)
            .map(|t| (scale * (1.0 + ((t % 8) as f64))).round())
            .collect();
        TimeSeries::new(30, vals).unwrap()
    }

    #[test]
    fn manages_independent_pools() {
        let mut mgr = MultiPoolManager::new();
        mgr.register(PoolId("session/small".into()), spec(0.3, NodeSize::Small));
        mgr.register(PoolId("cluster/large".into()), spec(0.3, NodeSize::Large));
        assert_eq!(mgr.len(), 2);

        let mut demands = BTreeMap::new();
        demands.insert(PoolId("session/small".into()), demand(2.0));
        demands.insert(PoolId("cluster/large".into()), demand(0.5));
        let recs = mgr.recommend_all(&demands).unwrap();
        assert_eq!(recs.len(), 2);
        // The busier pool gets at least as much capacity in aggregate.
        let total: BTreeMap<&str, u64> = recs
            .iter()
            .map(|r| {
                (
                    r.pool.0.as_str(),
                    r.schedule.iter().map(|&n| u64::from(n)).sum(),
                )
            })
            .collect();
        assert!(total["session/small"] >= total["cluster/large"]);
    }

    #[test]
    fn missing_demand_stream_errors() {
        let mut mgr = MultiPoolManager::new();
        mgr.register(PoolId("p1".into()), spec(0.5, NodeSize::Medium));
        let demands = BTreeMap::new();
        assert!(matches!(
            mgr.recommend_all(&demands),
            Err(CoreError::InvalidConfig(_))
        ));
    }

    #[test]
    fn empty_manager_is_trivially_fine() {
        let mgr = MultiPoolManager::new();
        assert!(mgr.is_empty());
        assert!(mgr.recommend_all(&BTreeMap::new()).unwrap().is_empty());
    }
}
