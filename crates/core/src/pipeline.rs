//! The two end-to-end recommendation pipelines of §5.4.
//!
//! * **2-step**: the ML model is trained on request-rate history and
//!   predicts future demand; the SAA optimizer turns the predicted demand
//!   into a pool-size schedule. The paper finds this shape has the better
//!   Pareto curve at low wait times.
//! * **E2E**: the SAA optimizer is applied to *history* to produce the
//!   historically optimal pool size; the ML model is trained on that series
//!   and forecasts the optimal pool size directly — no optimizer after the
//!   model, so optimizer constraints are only implicit.

use crate::{CoreError, Result};
use ip_models::Forecaster;
use ip_saa::{optimize_dp, SaaConfig};
use ip_timeseries::TimeSeries;

/// A recommendation engine: history in, pool-size targets out.
pub trait RecommendationEngine {
    /// Short name for reports ("2-step", "E2E").
    fn name(&self) -> &'static str;

    /// Produces a target pool size for each of the next `horizon` intervals
    /// following the end of `history`.
    fn recommend(&mut self, history: &TimeSeries, horizon: usize) -> Result<Vec<u32>>;
}

/// The 2-step pipeline: forecast demand, then optimize the forecast.
pub struct TwoStepEngine<F: Forecaster> {
    forecaster: F,
    config: SaaConfig,
}

impl<F: Forecaster> TwoStepEngine<F> {
    /// Creates the pipeline with the given forecaster and SAA settings.
    pub fn new(forecaster: F, config: SaaConfig) -> Self {
        Self { forecaster, config }
    }

    /// Access to the SAA configuration (for the auto-tuner to steer `α'`).
    pub fn config_mut(&mut self) -> &mut SaaConfig {
        &mut self.config
    }
}

impl<F: Forecaster> RecommendationEngine for TwoStepEngine<F> {
    fn name(&self) -> &'static str {
        "2-step"
    }

    fn recommend(&mut self, history: &TimeSeries, horizon: usize) -> Result<Vec<u32>> {
        let _span = ip_obs::span("pipeline.two_step");
        let predicted = {
            let _span = ip_obs::span("pipeline.forecast");
            self.forecaster
                .fit(history)
                .map_err(|e| CoreError::Model(e.to_string()))?;
            self.forecaster
                .predict(horizon)
                .map_err(|e| CoreError::Model(e.to_string()))?
        };
        let demand = TimeSeries::new(history.interval_secs(), predicted)
            .map_err(|e| CoreError::Model(e.to_string()))?;
        let opt = {
            let _span = ip_obs::span("pipeline.optimize");
            optimize_dp(&demand, &self.config).map_err(|e| CoreError::Optimizer(e.to_string()))?
        };
        Ok(opt
            .schedule
            .iter()
            .map(|&n| n.round().max(0.0) as u32)
            .collect())
    }
}

/// The E2E pipeline: optimize history, then forecast the optimal pool size.
pub struct EndToEndEngine<F: Forecaster> {
    forecaster: F,
    config: SaaConfig,
}

impl<F: Forecaster> EndToEndEngine<F> {
    /// Creates the pipeline.
    pub fn new(forecaster: F, config: SaaConfig) -> Self {
        Self { forecaster, config }
    }

    /// Access to the SAA configuration.
    pub fn config_mut(&mut self) -> &mut SaaConfig {
        &mut self.config
    }
}

impl<F: Forecaster> RecommendationEngine for EndToEndEngine<F> {
    fn name(&self) -> &'static str {
        "E2E"
    }

    fn recommend(&mut self, history: &TimeSeries, horizon: usize) -> Result<Vec<u32>> {
        let _span = ip_obs::span("pipeline.e2e");
        // Historically optimal pool sizes become the training series.
        let opt = {
            let _span = ip_obs::span("pipeline.optimize");
            optimize_dp(history, &self.config).map_err(|e| CoreError::Optimizer(e.to_string()))?
        };
        let historic_optimal = TimeSeries::new(history.interval_secs(), opt.schedule)
            .map_err(|e| CoreError::Optimizer(e.to_string()))?;
        let predicted = {
            let _span = ip_obs::span("pipeline.forecast");
            self.forecaster
                .fit(&historic_optimal)
                .map_err(|e| CoreError::Model(e.to_string()))?;
            self.forecaster
                .predict(horizon)
                .map_err(|e| CoreError::Model(e.to_string()))?
        };
        // Clamp into the configured pool bounds (the optimizer would have
        // enforced these; the forecaster cannot).
        Ok(predicted
            .iter()
            .map(|&n| {
                (n.round().max(f64::from(self.config.min_pool)) as u32).min(self.config.max_pool)
            })
            .collect())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ip_models::BaselineForecaster;
    use ip_models::SsaModel;
    use ip_ssa::RankSelection;

    fn periodic_history() -> TimeSeries {
        let vals: Vec<f64> = (0..480)
            .map(|t| {
                let base = 4.0 + 3.0 * (2.0 * std::f64::consts::PI * t as f64 / 96.0).sin();
                base.max(0.0).round()
            })
            .collect();
        TimeSeries::new(30, vals).unwrap()
    }

    fn cfg() -> SaaConfig {
        SaaConfig {
            tau_intervals: 3,
            stableness: 8,
            min_pool: 0,
            max_pool: 40,
            max_new_per_block: 40,
            alpha_prime: 0.4,
        }
    }

    #[test]
    fn two_step_produces_bounded_schedule() {
        let mut engine = TwoStepEngine::new(SsaModel::new(96, RankSelection::Fixed(3)), cfg());
        let rec = engine.recommend(&periodic_history(), 96).unwrap();
        assert_eq!(rec.len(), 96);
        assert!(rec.iter().all(|&n| n <= 40));
        // Demand is nontrivial; a wait-averse config must provision something.
        assert!(rec.iter().any(|&n| n > 0), "{rec:?}");
    }

    #[test]
    fn e2e_produces_bounded_schedule() {
        let mut engine = EndToEndEngine::new(SsaModel::new(96, RankSelection::Fixed(3)), cfg());
        let rec = engine.recommend(&periodic_history(), 96).unwrap();
        assert_eq!(rec.len(), 96);
        assert!(rec.iter().all(|&n| n <= 40));
    }

    #[test]
    fn two_step_with_baseline_matches_static_sizing() {
        // A constant forecaster should yield a (nearly) constant schedule.
        let mut engine = TwoStepEngine::new(BaselineForecaster::new(1.0), cfg());
        let rec = engine.recommend(&periodic_history(), 48).unwrap();
        // After the warm-up blocks the schedule settles to one value.
        let tail = &rec[16..];
        assert!(tail.windows(2).all(|w| w[0] == w[1]), "{rec:?}");
    }

    #[test]
    fn engine_names() {
        let two = TwoStepEngine::new(BaselineForecaster::new(1.0), cfg());
        let e2e = EndToEndEngine::new(BaselineForecaster::new(1.0), cfg());
        assert_eq!(two.name(), "2-step");
        assert_eq!(e2e.name(), "E2E");
    }

    #[test]
    fn short_history_errors_cleanly() {
        let short = TimeSeries::new(30, vec![1.0; 20]).unwrap();
        let mut engine = TwoStepEngine::new(SsaModel::new(96, RankSelection::Fixed(3)), cfg());
        assert!(matches!(
            engine.recommend(&short, 10),
            Err(CoreError::Model(_))
        ));
    }
}
