//! The data-parallel trainer's headline guarantee: the worker thread count
//! changes wall-clock time only — the trained parameters (and batch-norm
//! running statistics) are bit-identical for any `DeepConfig::threads`.

use ip_models::deep::DeepConfig;
use ip_models::inception::{InceptionConfig, InceptionTime};
use ip_models::mwdn::Mwdn;
use ip_models::Forecaster;
use ip_timeseries::TimeSeries;

fn series(n: usize) -> TimeSeries {
    let vals: Vec<f64> = (0..n)
        .map(|t| {
            8.0 + 4.0 * (2.0 * std::f64::consts::PI * t as f64 / 24.0).sin()
                + 1.5 * (2.0 * std::f64::consts::PI * t as f64 / 7.0).cos()
        })
        .collect();
    TimeSeries::new(30, vals).unwrap()
}

fn config(threads: usize) -> DeepConfig {
    DeepConfig {
        window: 32,
        horizon: 8,
        epochs: 3,
        batch_size: 16,
        microbatch: 4,
        stride: 2,
        threads: Some(threads),
        ..Default::default()
    }
}

fn assert_bits_equal(a: &[f32], b: &[f32], what: &str) {
    assert_eq!(a.len(), b.len(), "{what}: parameter count differs");
    for (i, (x, y)) in a.iter().zip(b).enumerate() {
        assert_eq!(
            x.to_bits(),
            y.to_bits(),
            "{what}: parameter {i} differs ({x} vs {y})"
        );
    }
}

#[test]
fn mwdn_training_is_bit_identical_across_thread_counts() {
    let ts = series(260);
    let mut params = Vec::new();
    let mut preds = Vec::new();
    for threads in [1usize, 2, 4] {
        let mut m = Mwdn::model(config(threads), 2, 4);
        m.fit(&ts).unwrap();
        params.push(m.param_values());
        preds.push(m.predict(8).unwrap());
    }
    assert_bits_equal(&params[0], &params[1], "mWDN threads 1 vs 2");
    assert_bits_equal(&params[0], &params[2], "mWDN threads 1 vs 4");
    assert_eq!(preds[0], preds[1]);
    assert_eq!(preds[0], preds[2]);
}

#[test]
fn inception_training_is_bit_identical_across_thread_counts() {
    // InceptionTime exercises the batch-norm snapshot/fold path: running
    // statistics are part of param_values() and must match too.
    let ts = series(220);
    let arch = InceptionConfig {
        kernels: vec![3, 5],
        filters: 4,
        depth: 2,
        bottleneck: 4,
    };
    let mut params = Vec::new();
    for threads in [1usize, 2, 4] {
        let mut m = InceptionTime::model(config(threads), arch.clone());
        m.fit(&ts).unwrap();
        params.push(m.param_values());
    }
    assert_bits_equal(&params[0], &params[1], "Inception threads 1 vs 2");
    assert_bits_equal(&params[0], &params[2], "Inception threads 1 vs 4");
}

#[test]
fn microbatch_shards_leave_training_effective() {
    // Guard against a reduction bug that would still be "deterministic":
    // sharded training must actually learn (loss decreases over epochs).
    let ts = series(300);
    let mut one = Mwdn::model(
        DeepConfig {
            epochs: 1,
            ..config(4)
        },
        2,
        4,
    );
    let l1 = one.fit(&ts).unwrap().final_loss;
    let mut many = Mwdn::model(
        DeepConfig {
            epochs: 10,
            ..config(4)
        },
        2,
        4,
    );
    let l10 = many.fit(&ts).unwrap().final_loss;
    assert!(l10 < l1, "10-epoch {l10} !< 1-epoch {l1}");
}
