//! Shared training plumbing for the deep forecasting models.
//!
//! All three deep architectures (mWDN, TST, InceptionTime) are direct
//! multi-horizon regressors: a `window`-length input slice maps to a
//! `horizon`-length output in one forward pass. This module provides the
//! paper's training protocol around any such network:
//!
//! * sliding-window supervision over the training series,
//! * z-normalization fit on the training inputs,
//! * the asymmetric loss of Eq. 12 with configurable `α'`,
//! * Adam, mini-batches, and validation-based early stopping (90-10 split),
//! * autoregressive tiling when the requested forecast exceeds the trained
//!   horizon.
//!
//! # Deterministic data parallelism
//!
//! Training shards every mini-batch into fixed-size micro-batches and
//! evaluates the shards on per-thread graph replicas (built by replaying the
//! same constructor with the same seed, so node numbering is identical).
//! Three invariants make the result bit-identical for any worker count:
//!
//! 1. the shard decomposition depends only on `microbatch`, never on the
//!    thread count;
//! 2. each shard's dropout stream is seeded by `(seed, step, shard)` rather
//!    than by whichever replica happens to run it; and
//! 3. shard gradients are reduced on the primary graph in shard order with
//!    fixed `mᵢ/M` weights (losses accumulate in `f64` the same way), and
//!    batch-norm running statistics are restored to their pre-step snapshot
//!    and re-folded in shard order.
//!
//! Together with the `ip-nn` kernels being bit-identical across their own
//! thread counts, `IP_THREADS` (or [`DeepConfig::threads`]) changes only the
//! wall-clock time, never a single bit of the trained parameters.

use crate::{FitReport, Forecaster, ModelError, Result};
use ip_nn::graph::{Graph, NodeId};
use ip_nn::loss::asymmetric;
use ip_nn::tensor::Tensor;
use ip_nn::train::{BatchSampler, EarlyStopping, StepTimer};
use ip_timeseries::windowing::{sliding_windows, Normalizer, WindowPair};
use ip_timeseries::TimeSeries;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::time::Instant;

/// Hyper-parameters shared by the deep models.
///
/// Defaults follow §7.2 where practical: 15 epochs, learning rate 0.001,
/// asymmetric-loss `α' = 0.5`. Window/horizon default to a laptop-scale
/// 96 → 48 (the paper's production 150 → 1200 is reachable by raising them;
/// the bench harness documents the scaling).
#[derive(Debug, Clone)]
pub struct DeepConfig {
    /// Input window length.
    pub window: usize,
    /// Direct forecast horizon.
    pub horizon: usize,
    /// Maximum training epochs.
    pub epochs: usize,
    /// Mini-batch size.
    pub batch_size: usize,
    /// Adam learning rate.
    pub lr: f32,
    /// Asymmetric-loss α' (0.5 = symmetric MAE).
    pub alpha_prime: f32,
    /// Early-stopping patience in epochs.
    pub patience: usize,
    /// Stride between supervision windows (1 = dense; larger strides keep
    /// training cheap on long series).
    pub stride: usize,
    /// Fraction of windows used for training vs. validation.
    pub train_fraction: f64,
    /// RNG seed (weights, shuffling, dropout).
    pub seed: u64,
    /// Micro-batch shard size for data-parallel gradient evaluation. Every
    /// mini-batch splits into `microbatch`-sized shards regardless of the
    /// thread count, so the arithmetic — and therefore the trained model —
    /// is independent of how many workers run the shards.
    pub microbatch: usize,
    /// Worker thread count for training (`None` → `IP_THREADS` /
    /// available parallelism). Affects speed only, never results.
    pub threads: Option<usize>,
}

impl Default for DeepConfig {
    fn default() -> Self {
        Self {
            window: 96,
            horizon: 48,
            epochs: 15,
            batch_size: 32,
            lr: 1e-3,
            alpha_prime: 0.5,
            patience: 3,
            stride: 4,
            train_fraction: 0.9,
            seed: 0,
            microbatch: 8,
            threads: None,
        }
    }
}

/// A network architecture trainable by [`DeepModel`]: build parameters on
/// the graph at construction, then map `[B, window] → [B, horizon]`.
///
/// The four state hooks default to no-ops; architectures that keep
/// non-parameter state updated by training forwards (batch-norm running
/// statistics) override them so the data-parallel trainer can snapshot,
/// transfer, and deterministically re-fold that state across shards.
pub trait Net: Send {
    /// Architecture display name.
    fn name(&self) -> &'static str;
    /// Forward pass; `train` toggles dropout/batch-norm behaviour.
    fn forward(&mut self, g: &mut Graph, x: NodeId, batch: usize, train: bool) -> NodeId;
    /// Exports all non-parameter running state (e.g. batch-norm running
    /// mean/variance) as a flat vector.
    fn running_state(&self) -> Vec<f32> {
        Vec::new()
    }
    /// Restores state captured by [`running_state`](Self::running_state).
    fn set_running_state(&mut self, _state: &[f32]) {}
    /// Exports the batch statistics observed by the most recent
    /// training-mode forward.
    fn batch_stats(&self) -> Vec<f32> {
        Vec::new()
    }
    /// Applies one EMA update from another replica's
    /// [`batch_stats`](Self::batch_stats) export.
    fn fold_batch_stats(&mut self, _stats: &[f32]) {}
}

/// Stored network constructor, replayable to build worker replicas whose
/// node numbering matches the primary graph exactly.
type BuildFn<N> = Box<dyn Fn(&mut Graph, &DeepConfig, &mut StdRng) -> N + Send + Sync>;

/// A deep forecaster: an architecture plus the shared training protocol.
pub struct DeepModel<N: Net> {
    /// Training hyper-parameters.
    pub config: DeepConfig,
    net: N,
    graph: Graph,
    build: BuildFn<N>,
    normalizer: Option<Normalizer>,
    last_window: Vec<f64>,
    param_count: usize,
}

/// Per-shard result carried back from a worker replica to the reducer.
struct ShardResult {
    len: usize,
    loss: f64,
    grads: Vec<Option<Tensor>>,
    stats: Vec<f32>,
}

/// Mixes `(seed, step, shard)` into a dropout seed (splitmix64 finalizer),
/// so a shard's RNG stream is a function of its position in the schedule —
/// not of which worker replica happens to execute it.
fn shard_seed(seed: u64, step: u64, shard: u64) -> u64 {
    let mut z =
        seed ^ step.wrapping_mul(0x9E37_79B9_7F4A_7C15) ^ shard.wrapping_mul(0xD1B5_4A32_D192_ED03);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Builds the `[B, window]` input and `[B, horizon]` target tensors for one
/// index set (free function so worker closures can call it while the model's
/// graph is mutably borrowed as a worker).
fn shard_tensors(
    pairs: &[WindowPair],
    idx: &[usize],
    nz: &Normalizer,
    window: usize,
    horizon: usize,
) -> (Tensor, Tensor) {
    let mut xs = Vec::with_capacity(idx.len() * window);
    let mut ys = Vec::with_capacity(idx.len() * horizon);
    for &i in idx {
        xs.extend(nz.transform(&pairs[i].input).iter().map(|&v| v as f32));
        ys.extend(nz.transform(&pairs[i].target).iter().map(|&v| v as f32));
    }
    (
        Tensor::new(&[idx.len(), window], xs).expect("window batch"),
        Tensor::new(&[idx.len(), horizon], ys).expect("horizon batch"),
    )
}

impl<N: Net> DeepModel<N> {
    /// Builds a model from a constructor that registers the net's parameters
    /// on the provided graph. The constructor is retained so training can
    /// replay it (same seed, fresh graph) to create worker replicas.
    pub fn new(
        config: DeepConfig,
        build: impl Fn(&mut Graph, &DeepConfig, &mut StdRng) -> N + Send + Sync + 'static,
    ) -> Self {
        let build: BuildFn<N> = Box::new(build);
        let mut graph = Graph::new(config.seed);
        let mut rng = StdRng::seed_from_u64(config.seed);
        let net = build(&mut graph, &config, &mut rng);
        graph.freeze();
        let param_count = graph.params().iter().map(|&p| graph.value(p).numel()).sum();
        Self {
            config,
            net,
            graph,
            build,
            normalizer: None,
            last_window: Vec::new(),
            param_count,
        }
    }

    /// Number of trainable parameters.
    pub fn param_count(&self) -> usize {
        self.param_count
    }

    /// Flattened parameter values in registration order (plus the net's
    /// running state); the determinism tests compare this bitwise across
    /// thread counts.
    pub fn param_values(&self) -> Vec<f32> {
        let mut out = Vec::with_capacity(self.param_count);
        for &p in self.graph.params() {
            out.extend_from_slice(self.graph.value(p).data());
        }
        out.extend_from_slice(&self.net.running_state());
        out
    }

    /// Replays the stored constructor into a fresh single-threaded replica.
    fn build_replica(&self) -> (Graph, N) {
        let mut g = Graph::new(self.config.seed);
        let mut rng = StdRng::seed_from_u64(self.config.seed);
        let net = (self.build)(&mut g, &self.config, &mut rng);
        g.freeze();
        g.set_threads(Some(1));
        (g, net)
    }

    fn eval_loss(&mut self, pairs: &[WindowPair], idx: &[usize], nz: &Normalizer) -> f64 {
        if idx.is_empty() {
            return 0.0;
        }
        self.graph.set_threads(self.config.threads);
        let (x, y) = shard_tensors(pairs, idx, nz, self.config.window, self.config.horizon);
        self.graph.reset();
        let xb = self.graph.constant(x);
        let yb = self.graph.constant(y);
        let pred = self.net.forward(&mut self.graph, xb, idx.len(), false);
        let loss = asymmetric(&mut self.graph, pred, yb, self.config.alpha_prime);
        f64::from(self.graph.value(loss).item().expect("scalar loss"))
    }
}

impl<N: Net> Forecaster for DeepModel<N> {
    fn name(&self) -> &'static str {
        self.net.name()
    }

    #[allow(clippy::too_many_lines)]
    fn fit(&mut self, train: &TimeSeries) -> Result<FitReport> {
        let start = Instant::now();
        let _fit_span = ip_obs::span("nn.fit");
        let cfg = self.config.clone();
        let needed = cfg.window + cfg.horizon + 1;
        if train.len() < needed {
            return Err(ModelError::SeriesTooShort {
                needed,
                got: train.len(),
            });
        }
        let nz =
            Normalizer::fit(train.values()).map_err(|e| ModelError::Internal(e.to_string()))?;
        let pairs = sliding_windows(train, cfg.window, cfg.horizon, cfg.stride)
            .map_err(|e| ModelError::Internal(e.to_string()))?;
        // Chronological train/val split of the windows (paper: 90-10).
        let cut = ((pairs.len() as f64) * cfg.train_fraction).round() as usize;
        let cut = cut.clamp(1, pairs.len());
        let train_idx: Vec<usize> = (0..cut).collect();
        let val_idx: Vec<usize> = (cut..pairs.len()).collect();

        let mut rng = StdRng::seed_from_u64(cfg.seed.wrapping_add(1));
        let mut sampler = BatchSampler::new(train_idx.len(), cfg.batch_size);
        let mut adam = ip_nn::optim::Adam::new(cfg.lr);
        let mut stopper = EarlyStopping::new(cfg.patience, 1e-5);
        let mut final_loss = f64::NAN;
        let mut epochs_run = 0;

        // Worker setup: the shard count per batch bounds how many replicas
        // can ever be busy, so don't build more than that.
        let threads = cfg.threads.unwrap_or_else(ip_par::num_threads).max(1);
        let micro = cfg.microbatch.max(1);
        let max_shards = cfg.batch_size.max(1).div_ceil(micro);
        let workers_wanted = threads.min(max_shards).max(1);
        let mut extras: Vec<(Graph, N)> =
            (1..workers_wanted).map(|_| self.build_replica()).collect();
        // With several workers each runs its kernels single-threaded (the
        // parallelism is across shards); alone, the primary graph keeps the
        // whole thread budget for its kernels.
        let train_kernel_threads = if workers_wanted > 1 {
            Some(1)
        } else {
            Some(threads)
        };
        let param_ids: Vec<NodeId> = self.graph.params().to_vec();
        let mut step_no: u64 = 0;

        for _epoch in 0..cfg.epochs {
            epochs_run += 1;
            let mut epoch_loss = 0.0;
            let mut batches = 0usize;
            for batch in sampler.epoch(&mut rng) {
                // Fixed-size shards: the decomposition depends only on the
                // micro-batch size, never on the worker count.
                let shards: Vec<(u64, Vec<usize>)> = batch
                    .chunks(micro)
                    .enumerate()
                    .map(|(si, c)| (si as u64, c.iter().map(|&b| train_idx[b]).collect()))
                    .collect();
                let total: usize = shards.iter().map(|(_, s)| s.len()).sum();
                let pre_state = self.net.running_state();

                // Replicas start every step with the primary's parameters.
                for (g, _) in extras.iter_mut() {
                    for &p in &param_ids {
                        g.value_mut(p)
                            .data_mut()
                            .copy_from_slice(self.graph.value(p).data());
                    }
                }
                self.graph.set_threads(train_kernel_threads);

                // Workers carry their index so shard metrics can be
                // attributed per worker (`worker="0"` is the primary).
                let model_name = self.net.name();
                let mut workers: Vec<(usize, &mut Graph, &mut N)> =
                    Vec::with_capacity(1 + extras.len());
                workers.push((0, &mut self.graph, &mut self.net));
                for (wi, (g, n)) in extras.iter_mut().enumerate() {
                    workers.push((wi + 1, g, n));
                }

                let (pairs_ref, nz_ref, ids_ref) = (&pairs, &nz, &param_ids);
                let _shards_span = ip_obs::span("nn.step.shards");
                let results: Vec<ShardResult> =
                    ip_par::par_map_workers(&mut workers, &shards, |(wid, g, n), (si, idx)| {
                        let _shard_span = ip_obs::span("nn.shard");
                        let obs_on = ip_obs::enabled();
                        let tally0 = ip_nn::gemm::gemm_tally();
                        let mut timer = StepTimer::start();
                        let wid_label = if obs_on {
                            format!("{wid}")
                        } else {
                            String::new()
                        };
                        g.reseed(shard_seed(cfg.seed, step_no, *si));
                        g.reset();
                        let (x, y) = shard_tensors(pairs_ref, idx, nz_ref, cfg.window, cfg.horizon);
                        let xb = g.constant(x);
                        let yb = g.constant(y);
                        let pred = n.forward(g, xb, idx.len(), true);
                        let loss = asymmetric(g, pred, yb, cfg.alpha_prime);
                        let loss_v = f64::from(g.value(loss).item().expect("scalar loss"));
                        timer.lap(
                            "ip_nn_forward_seconds",
                            &[("model", model_name), ("worker", &wid_label)],
                        );
                        g.backward(loss);
                        timer.lap(
                            "ip_nn_backward_seconds",
                            &[("model", model_name), ("worker", &wid_label)],
                        );
                        if obs_on {
                            let tally = ip_nn::gemm::gemm_tally();
                            let labels = [("model", model_name), ("worker", wid_label.as_str())];
                            ip_obs::counter_add(
                                "ip_nn_gemm_calls_total",
                                &labels,
                                (tally.calls - tally0.calls) as f64,
                            );
                            ip_obs::counter_add(
                                "ip_nn_gemm_flops_total",
                                &labels,
                                (tally.flops - tally0.flops) as f64,
                            );
                        }
                        ShardResult {
                            len: idx.len(),
                            loss: loss_v,
                            grads: ids_ref.iter().map(|&p| g.grad(p).cloned()).collect(),
                            stats: n.batch_stats(),
                        }
                    });
                drop(workers);
                drop(_shards_span);

                // Ordered reduction: Σ (mᵢ/M)·gᵢ on the primary, shard order.
                let _reduce_span = ip_obs::span("nn.step.reduce");
                let mut reduce_timer = StepTimer::start();
                self.graph.clear_grads();
                let mut batch_loss = 0.0f64;
                for r in &results {
                    let weight = r.len as f32 / total as f32;
                    batch_loss += f64::from(weight) * r.loss;
                    for (&p, grad) in param_ids.iter().zip(&r.grads) {
                        if let Some(grad) = grad {
                            self.graph.add_scaled_grad(p, weight, grad);
                        }
                    }
                }
                adam.step(&mut self.graph);
                // Batch-norm running stats: rewind to the pre-step snapshot
                // (the primary's own shard forwards advanced them out of
                // order) and fold every shard's batch stats in shard order.
                self.net.set_running_state(&pre_state);
                for r in &results {
                    self.net.fold_batch_stats(&r.stats);
                }
                reduce_timer.lap("ip_nn_reduce_seconds", &[("model", model_name)]);
                drop(_reduce_span);

                epoch_loss += batch_loss;
                batches += 1;
                step_no += 1;
            }
            final_loss = epoch_loss / batches.max(1) as f64;
            let val_loss = if val_idx.is_empty() {
                final_loss
            } else {
                self.eval_loss(&pairs, &val_idx, &nz)
            };
            if stopper.update(val_loss) {
                break;
            }
        }

        self.last_window = train.values()[train.len() - cfg.window..].to_vec();
        self.normalizer = Some(nz);
        Ok(FitReport {
            fit_time: start.elapsed(),
            epochs_run,
            final_loss,
            parameters: self.param_count,
        })
    }

    /// Predicts `horizon` values, tiling autoregressively past the trained
    /// horizon: each forward pass emits `config.horizon` values which are
    /// fed back as the next window.
    fn predict(&mut self, horizon: usize) -> Result<Vec<f64>> {
        let nz = *self.normalizer.as_ref().ok_or(ModelError::NotFitted)?;
        let w = self.config.window;
        let h = self.config.horizon;
        self.graph.set_threads(self.config.threads);
        let mut window = self.last_window.clone();
        let mut out: Vec<f64> = Vec::with_capacity(horizon);
        while out.len() < horizon {
            let xin: Vec<f32> = nz.transform(&window).iter().map(|&v| v as f32).collect();
            let x = Tensor::new(&[1, w], xin).expect("window tensor");
            self.graph.reset();
            let xb = self.graph.constant(x);
            let pred = self.net.forward(&mut self.graph, xb, 1, false);
            let raw: Vec<f64> = self
                .graph
                .value(pred)
                .data()
                .iter()
                .map(|&v| f64::from(v))
                .collect();
            let denorm = nz.inverse(&raw);
            for v in &denorm {
                out.push(v.max(0.0));
            }
            // Slide the window forward over the new predictions.
            window.extend_from_slice(&denorm);
            window.drain(..window.len() - w);
            debug_assert_eq!(window.len(), w);
            if denorm.len() < h {
                break;
            }
        }
        out.truncate(horizon);
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shard_seed_distinguishes_all_coordinates() {
        let base = shard_seed(7, 3, 1);
        assert_ne!(base, shard_seed(8, 3, 1));
        assert_ne!(base, shard_seed(7, 4, 1));
        assert_ne!(base, shard_seed(7, 3, 2));
        // And it is a pure function.
        assert_eq!(base, shard_seed(7, 3, 1));
    }
}
