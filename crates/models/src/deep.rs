//! Shared training plumbing for the deep forecasting models.
//!
//! All three deep architectures (mWDN, TST, InceptionTime) are direct
//! multi-horizon regressors: a `window`-length input slice maps to a
//! `horizon`-length output in one forward pass. This module provides the
//! paper's training protocol around any such network:
//!
//! * sliding-window supervision over the training series,
//! * z-normalization fit on the training inputs,
//! * the asymmetric loss of Eq. 12 with configurable `α'`,
//! * Adam, mini-batches, and validation-based early stopping (90-10 split),
//! * autoregressive tiling when the requested forecast exceeds the trained
//!   horizon.

use crate::{FitReport, Forecaster, ModelError, Result};
use ip_nn::graph::{Graph, NodeId};
use ip_nn::loss::asymmetric;
use ip_nn::tensor::Tensor;
use ip_nn::train::{BatchSampler, EarlyStopping};
use ip_timeseries::windowing::{sliding_windows, Normalizer};
use ip_timeseries::TimeSeries;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::time::Instant;

/// Hyper-parameters shared by the deep models.
///
/// Defaults follow §7.2 where practical: 15 epochs, learning rate 0.001,
/// asymmetric-loss `α' = 0.5`. Window/horizon default to a laptop-scale
/// 96 → 48 (the paper's production 150 → 1200 is reachable by raising them;
/// the bench harness documents the scaling).
#[derive(Debug, Clone)]
pub struct DeepConfig {
    /// Input window length.
    pub window: usize,
    /// Direct forecast horizon.
    pub horizon: usize,
    /// Maximum training epochs.
    pub epochs: usize,
    /// Mini-batch size.
    pub batch_size: usize,
    /// Adam learning rate.
    pub lr: f32,
    /// Asymmetric-loss α' (0.5 = symmetric MAE).
    pub alpha_prime: f32,
    /// Early-stopping patience in epochs.
    pub patience: usize,
    /// Stride between supervision windows (1 = dense; larger strides keep
    /// training cheap on long series).
    pub stride: usize,
    /// Fraction of windows used for training vs. validation.
    pub train_fraction: f64,
    /// RNG seed (weights, shuffling, dropout).
    pub seed: u64,
}

impl Default for DeepConfig {
    fn default() -> Self {
        Self {
            window: 96,
            horizon: 48,
            epochs: 15,
            batch_size: 32,
            lr: 1e-3,
            alpha_prime: 0.5,
            patience: 3,
            stride: 4,
            train_fraction: 0.9,
            seed: 0,
        }
    }
}

/// A network architecture trainable by [`DeepModel`]: build parameters on
/// the graph at construction, then map `[B, window] → [B, horizon]`.
pub trait Net {
    /// Architecture display name.
    fn name(&self) -> &'static str;
    /// Forward pass; `train` toggles dropout/batch-norm behaviour.
    fn forward(&mut self, g: &mut Graph, x: NodeId, batch: usize, train: bool) -> NodeId;
}

/// A deep forecaster: an architecture plus the shared training protocol.
pub struct DeepModel<N: Net> {
    /// Training hyper-parameters.
    pub config: DeepConfig,
    net: N,
    graph: Graph,
    normalizer: Option<Normalizer>,
    last_window: Vec<f64>,
    param_count: usize,
}

impl<N: Net> DeepModel<N> {
    /// Builds a model from a constructor that registers the net's parameters
    /// on the provided graph.
    pub fn new(
        config: DeepConfig,
        build: impl FnOnce(&mut Graph, &DeepConfig, &mut StdRng) -> N,
    ) -> Self {
        let mut graph = Graph::new(config.seed);
        let mut rng = StdRng::seed_from_u64(config.seed);
        let net = build(&mut graph, &config, &mut rng);
        graph.freeze();
        let param_count = graph.params().iter().map(|&p| graph.value(p).numel()).sum();
        Self {
            config,
            net,
            graph,
            normalizer: None,
            last_window: Vec::new(),
            param_count,
        }
    }

    /// Number of trainable parameters.
    pub fn param_count(&self) -> usize {
        self.param_count
    }

    fn batch_tensors(
        &self,
        pairs: &[ip_timeseries::windowing::WindowPair],
        idx: &[usize],
        nz: &Normalizer,
    ) -> (Tensor, Tensor) {
        let w = self.config.window;
        let h = self.config.horizon;
        let mut xs = Vec::with_capacity(idx.len() * w);
        let mut ys = Vec::with_capacity(idx.len() * h);
        for &i in idx {
            xs.extend(nz.transform(&pairs[i].input).iter().map(|&v| v as f32));
            ys.extend(nz.transform(&pairs[i].target).iter().map(|&v| v as f32));
        }
        (
            Tensor::new(&[idx.len(), w], xs).expect("window batch"),
            Tensor::new(&[idx.len(), h], ys).expect("horizon batch"),
        )
    }

    fn eval_loss(
        &mut self,
        pairs: &[ip_timeseries::windowing::WindowPair],
        idx: &[usize],
        nz: &Normalizer,
    ) -> f64 {
        if idx.is_empty() {
            return 0.0;
        }
        let (x, y) = self.batch_tensors(pairs, idx, nz);
        self.graph.reset();
        let xb = self.graph.constant(x);
        let yb = self.graph.constant(y);
        let pred = self.net.forward(&mut self.graph, xb, idx.len(), false);
        let loss = asymmetric(&mut self.graph, pred, yb, self.config.alpha_prime);
        f64::from(self.graph.value(loss).item().expect("scalar loss"))
    }
}

impl<N: Net> Forecaster for DeepModel<N> {
    fn name(&self) -> &'static str {
        self.net.name()
    }

    fn fit(&mut self, train: &TimeSeries) -> Result<FitReport> {
        let start = Instant::now();
        let cfg = self.config.clone();
        let needed = cfg.window + cfg.horizon + 1;
        if train.len() < needed {
            return Err(ModelError::SeriesTooShort {
                needed,
                got: train.len(),
            });
        }
        let nz =
            Normalizer::fit(train.values()).map_err(|e| ModelError::Internal(e.to_string()))?;
        let pairs = sliding_windows(train, cfg.window, cfg.horizon, cfg.stride)
            .map_err(|e| ModelError::Internal(e.to_string()))?;
        // Chronological train/val split of the windows (paper: 90-10).
        let cut = ((pairs.len() as f64) * cfg.train_fraction).round() as usize;
        let cut = cut.clamp(1, pairs.len());
        let train_idx: Vec<usize> = (0..cut).collect();
        let val_idx: Vec<usize> = (cut..pairs.len()).collect();

        let mut rng = StdRng::seed_from_u64(cfg.seed.wrapping_add(1));
        let sampler = BatchSampler::new(train_idx.len(), cfg.batch_size);
        let mut adam = ip_nn::optim::Adam::new(cfg.lr);
        let mut stopper = EarlyStopping::new(cfg.patience, 1e-5);
        let mut final_loss = f64::NAN;
        let mut epochs_run = 0;

        for _epoch in 0..cfg.epochs {
            epochs_run += 1;
            let mut epoch_loss = 0.0;
            let mut batches = 0usize;
            for batch in sampler.epoch(&mut rng) {
                let idx: Vec<usize> = batch.iter().map(|&b| train_idx[b]).collect();
                let (x, y) = self.batch_tensors(&pairs, &idx, &nz);
                self.graph.reset();
                let xb = self.graph.constant(x);
                let yb = self.graph.constant(y);
                let pred = self.net.forward(&mut self.graph, xb, idx.len(), true);
                let loss = asymmetric(&mut self.graph, pred, yb, cfg.alpha_prime);
                epoch_loss += f64::from(self.graph.value(loss).item().expect("scalar"));
                batches += 1;
                self.graph.backward(loss);
                adam.step(&mut self.graph);
            }
            final_loss = epoch_loss / batches.max(1) as f64;
            let val_loss = if val_idx.is_empty() {
                final_loss
            } else {
                self.eval_loss(&pairs, &val_idx, &nz)
            };
            if stopper.update(val_loss) {
                break;
            }
        }

        self.last_window = train.values()[train.len() - cfg.window..].to_vec();
        self.normalizer = Some(nz);
        Ok(FitReport {
            fit_time: start.elapsed(),
            epochs_run,
            final_loss,
            parameters: self.param_count,
        })
    }

    /// Predicts `horizon` values, tiling autoregressively past the trained
    /// horizon: each forward pass emits `config.horizon` values which are
    /// fed back as the next window.
    fn predict(&mut self, horizon: usize) -> Result<Vec<f64>> {
        let nz = *self.normalizer.as_ref().ok_or(ModelError::NotFitted)?;
        let w = self.config.window;
        let h = self.config.horizon;
        let mut window = self.last_window.clone();
        let mut out: Vec<f64> = Vec::with_capacity(horizon);
        while out.len() < horizon {
            let xin: Vec<f32> = nz.transform(&window).iter().map(|&v| v as f32).collect();
            let x = Tensor::new(&[1, w], xin).expect("window tensor");
            self.graph.reset();
            let xb = self.graph.constant(x);
            let pred = self.net.forward(&mut self.graph, xb, 1, false);
            let raw: Vec<f64> = self
                .graph
                .value(pred)
                .data()
                .iter()
                .map(|&v| f64::from(v))
                .collect();
            let denorm = nz.inverse(&raw);
            for v in &denorm {
                out.push(v.max(0.0));
            }
            // Slide the window forward over the new predictions.
            window.extend_from_slice(&denorm);
            window.drain(..window.len() - w);
            debug_assert_eq!(window.len(), w);
            if denorm.len() < h {
                break;
            }
        }
        out.truncate(horizon);
        Ok(out)
    }
}
