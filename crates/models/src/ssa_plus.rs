//! SSA+ — the paper's hybrid model (§5.3): an SSA forecaster followed by a
//! shallow two-layer ReLU error predictor (~30 parameters) trained with the
//! asymmetric loss of Eq. 12.
//!
//! SSA alone cannot be told to overshoot demand; the deep models can (via
//! the loss) but are ~200× slower to train (Fig. 6). SSA+ gets both: the
//! error head learns the *systematic* over/undershoot needed to hit a target
//! wait time, while SSA carries the signal. Training the head on a held-out
//! calibration slice of the history keeps it honest about SSA's true
//! out-of-sample error.

use crate::{FitReport, Forecaster, ModelError, Result};
use ip_nn::graph::{Graph, NodeId};
use ip_nn::layers::Linear;
use ip_nn::loss::asymmetric;
use ip_nn::optim::Adam;
use ip_nn::tensor::Tensor;
use ip_ssa::{RankSelection, SsaConfig, SsaForecaster};
use ip_timeseries::TimeSeries;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::time::Instant;

/// Configuration for [`SsaPlus`].
#[derive(Debug, Clone)]
pub struct SsaPlusConfig {
    /// SSA embedding window.
    pub window: usize,
    /// SSA component selection.
    pub rank: RankSelection,
    /// Hidden width of the error head (default 5 → 31 parameters total).
    pub hidden: usize,
    /// Asymmetric-loss α' — the overshoot knob. Values near 1 teach the
    /// head to overshoot (low wait time), near 0 to undershoot (low idle).
    pub alpha_prime: f32,
    /// Error-head training epochs (full-batch Adam; the head is tiny).
    pub epochs: usize,
    /// Adam learning rate.
    pub lr: f32,
    /// Fraction of the history used to fit SSA before calibrating the head
    /// on the remainder. The calibration slice should span at least one full
    /// day so the head's time-of-day features see every regime; 0.5 on a
    /// two-day history achieves that.
    pub calibration_split: f64,
    /// Rolling-origin chunk length for calibration: the head is trained on
    /// forecasts of this horizon issued from successive origins across the
    /// calibration slice (matching how the deployed pipeline issues
    /// short-horizon forecasts right after each fit). Default: 120 intervals
    /// = one production hour.
    pub calibration_chunk: usize,
    /// RNG seed for head initialization.
    pub seed: u64,
}

impl Default for SsaPlusConfig {
    fn default() -> Self {
        Self {
            window: 150,
            rank: RankSelection::EnergyThreshold(0.90),
            hidden: 5,
            alpha_prime: 0.5,
            epochs: 300,
            lr: 0.02,
            calibration_split: 0.5,
            calibration_chunk: 120,
            seed: 0,
        }
    }
}

/// Number of input features to the error head: normalized SSA prediction,
/// sin/cos time-of-day, and normalized step-ahead index.
const FEATURES: usize = 4;

/// The hybrid SSA+ forecaster.
pub struct SsaPlus {
    config: SsaPlusConfig,
    ssa: SsaForecaster,
    graph: Graph,
    l1: Linear,
    l2: Linear,
    scale: f64,
    interval_secs: u64,
    train_len: usize,
    fitted: bool,
    param_count: usize,
}

impl SsaPlus {
    /// Creates an unfitted SSA+ model.
    pub fn new(config: SsaPlusConfig) -> Self {
        let mut graph = Graph::new(config.seed);
        let mut rng = StdRng::seed_from_u64(config.seed);
        let l1 = Linear::new(&mut graph, FEATURES, config.hidden, &mut rng);
        let l2 = Linear::new(&mut graph, config.hidden, 1, &mut rng);
        graph.freeze();
        let param_count = graph.params().iter().map(|&p| graph.value(p).numel()).sum();
        Self {
            ssa: SsaForecaster::new(SsaConfig {
                window: config.window,
                rank: config.rank,
            }),
            config,
            graph,
            l1,
            l2,
            scale: 1.0,
            interval_secs: 30,
            train_len: 0,
            fitted: false,
            param_count,
        }
    }

    /// Paper-scale default configuration.
    pub fn paper_default() -> Self {
        Self::new(SsaPlusConfig::default())
    }

    /// Paper-default but with an explicit overshoot knob (the Fig. 5 sweep).
    pub fn with_alpha(alpha_prime: f32) -> Self {
        Self::new(SsaPlusConfig {
            alpha_prime,
            ..SsaPlusConfig::default()
        })
    }

    /// Number of trainable parameters in the error head (≈30, per §5.3).
    pub fn head_param_count(&self) -> usize {
        self.param_count
    }

    fn features(&self, ssa_pred: f64, abs_index: usize, step_ahead: usize) -> [f32; FEATURES] {
        let second_of_day = (abs_index as u64 * self.interval_secs) % 86_400;
        let phase = 2.0 * std::f64::consts::PI * second_of_day as f64 / 86_400.0;
        // The step-ahead feature uses a *fixed* normalization (the paper's
        // 1200-step production horizon) so that training-time and
        // prediction-time horizons need not match.
        const STEP_SCALE: f64 = 1200.0;
        [
            (ssa_pred / self.scale) as f32,
            phase.sin() as f32,
            phase.cos() as f32,
            (step_ahead as f64 / STEP_SCALE).min(2.0) as f32,
        ]
    }

    fn head_forward(&mut self, x: Tensor) -> NodeId {
        let n = x.shape()[0];
        self.graph.reset();
        let xb = self.graph.constant(x);
        let h = self.l1.forward(&mut self.graph, xb);
        let h = self.graph.relu(h);
        let out = self.l2.forward(&mut self.graph, h);
        self.graph.reshape(out, &[n, 1])
    }
}

impl Forecaster for SsaPlus {
    fn name(&self) -> &'static str {
        "SSA+"
    }

    fn fit(&mut self, train: &TimeSeries) -> Result<FitReport> {
        let start = Instant::now();
        let needed = self.config.window * 3;
        if train.len() < needed {
            return Err(ModelError::SeriesTooShort {
                needed,
                got: train.len(),
            });
        }
        self.interval_secs = train.interval_secs();
        self.scale = train.std_dev().unwrap_or(1.0).max(1e-6);

        // 1. Fit SSA on the earlier portion, then produce *rolling-origin*
        //    forecasts across the calibration slice: from each successive
        //    origin, the fitted recurrence extends the actual history by one
        //    chunk (= one production hour). This matches the deployment
        //    distribution — the worker forecasts a short horizon right after
        //    fitting — so the head learns a correction that transfers,
        //    instead of compensating a single long-horizon drift.
        let cut = ((train.len() as f64) * self.config.calibration_split).round() as usize;
        let cut = cut.clamp(self.config.window * 2, train.len().saturating_sub(8));
        let head_series = train
            .slice(0, cut)
            .map_err(|e| ModelError::Internal(e.to_string()))?;
        let calib_len = train.len() - cut;
        self.ssa
            .fit(&head_series)
            .map_err(|e| ModelError::Internal(e.to_string()))?;
        let chunk = self.config.calibration_chunk.max(1);
        let values = train.values();
        let mut ssa_calib = Vec::with_capacity(calib_len);
        let mut origin = cut;
        while origin < train.len() {
            let h = chunk.min(train.len() - origin);
            let fc = self
                .ssa
                .forecast_from(&values[..origin], h)
                .map_err(|e| ModelError::Internal(e.to_string()))?;
            ssa_calib.extend(fc);
            origin += h;
        }
        debug_assert_eq!(ssa_calib.len(), calib_len);

        // 2. Train the error head: corrected = ssa_pred + scale · head(x).
        let mut xs = Vec::with_capacity(calib_len * FEATURES);
        let mut preds = Vec::with_capacity(calib_len);
        let mut targets = Vec::with_capacity(calib_len);
        for (i, &p) in ssa_calib.iter().enumerate() {
            xs.extend(self.features(p, cut + i, i % chunk));
            preds.push((p / self.scale) as f32);
            targets.push((train.get(cut + i) / self.scale) as f32);
        }
        let x_tensor = Tensor::new(&[calib_len, FEATURES], xs)
            .map_err(|e| ModelError::Internal(e.to_string()))?;
        let pred_tensor =
            Tensor::new(&[calib_len, 1], preds).map_err(|e| ModelError::Internal(e.to_string()))?;
        let target_tensor = Tensor::new(&[calib_len, 1], targets)
            .map_err(|e| ModelError::Internal(e.to_string()))?;

        let mut adam = Adam::new(self.config.lr);
        let mut final_loss = f64::NAN;
        for _ in 0..self.config.epochs {
            let correction = self.head_forward(x_tensor.clone());
            let base = self.graph.constant(pred_tensor.clone());
            let target = self.graph.constant(target_tensor.clone());
            let corrected = self.graph.add(base, correction);
            let loss = asymmetric(&mut self.graph, corrected, target, self.config.alpha_prime);
            final_loss = f64::from(self.graph.value(loss).item().expect("scalar"));
            self.graph.backward(loss);
            adam.step(&mut self.graph);
        }

        // 3. Refit SSA on the full history so forecasts start at its end.
        self.ssa
            .fit(train)
            .map_err(|e| ModelError::Internal(e.to_string()))?;
        self.train_len = train.len();
        self.fitted = true;
        Ok(FitReport {
            fit_time: start.elapsed(),
            epochs_run: self.config.epochs,
            final_loss,
            parameters: self.param_count,
        })
    }

    fn predict(&mut self, horizon: usize) -> Result<Vec<f64>> {
        if !self.fitted {
            return Err(ModelError::NotFitted);
        }
        if horizon == 0 {
            return Ok(Vec::new());
        }
        let ssa_pred = self
            .ssa
            .predict(horizon)
            .map_err(|e| ModelError::Internal(e.to_string()))?;
        let mut xs = Vec::with_capacity(horizon * FEATURES);
        for (i, &p) in ssa_pred.iter().enumerate() {
            xs.extend(self.features(p, self.train_len + i, i));
        }
        let x = Tensor::new(&[horizon, FEATURES], xs)
            .map_err(|e| ModelError::Internal(e.to_string()))?;
        let out = self.head_forward(x);
        let corrections: Vec<f64> = self
            .graph
            .value(out)
            .data()
            .iter()
            .map(|&c| f64::from(c) * self.scale)
            .collect();
        Ok(ssa_pred
            .iter()
            .zip(&corrections)
            .map(|(p, c)| (p + c).max(0.0))
            .collect())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn periodic_series(n: usize) -> TimeSeries {
        let vals: Vec<f64> = (0..n)
            .map(|t| 10.0 + 5.0 * (2.0 * std::f64::consts::PI * t as f64 / 48.0).sin())
            .collect();
        TimeSeries::new(30, vals).unwrap()
    }

    fn small_config() -> SsaPlusConfig {
        SsaPlusConfig {
            window: 48,
            rank: RankSelection::Fixed(3),
            epochs: 150,
            ..Default::default()
        }
    }

    #[test]
    fn head_has_about_thirty_parameters() {
        let m = SsaPlus::new(SsaPlusConfig::default());
        // 4·5 + 5 (layer 1) + 5·1 + 1 (layer 2) = 31 — the "≈30 parameters"
        // of §5.3.
        assert_eq!(m.head_param_count(), 31);
    }

    #[test]
    fn fits_and_predicts() {
        let ts = periodic_series(400);
        let mut m = SsaPlus::new(small_config());
        let report = m.fit(&ts).unwrap();
        assert_eq!(report.parameters, 31);
        let pred = m.predict(48).unwrap();
        assert_eq!(pred.len(), 48);
        assert!(pred.iter().all(|v| v.is_finite() && *v >= 0.0));
        // Forecast should stay near the periodic signal's band.
        let mean: f64 = pred.iter().sum::<f64>() / 48.0;
        assert!((mean - 10.0).abs() < 4.0, "mean {mean}");
    }

    #[test]
    fn high_alpha_overshoots_low_alpha() {
        // The overshoot knob: α' → 1 must yield predictions at least as high
        // on average as α' → 0 (this is exactly the control SSA lacks).
        let ts = periodic_series(400);
        let mut hi = SsaPlus::new(SsaPlusConfig {
            alpha_prime: 0.95,
            ..small_config()
        });
        let mut lo = SsaPlus::new(SsaPlusConfig {
            alpha_prime: 0.05,
            ..small_config()
        });
        hi.fit(&ts).unwrap();
        lo.fit(&ts).unwrap();
        let mean_hi: f64 = hi.predict(48).unwrap().iter().sum::<f64>() / 48.0;
        let mean_lo: f64 = lo.predict(48).unwrap().iter().sum::<f64>() / 48.0;
        assert!(
            mean_hi > mean_lo,
            "alpha'=0.95 mean {mean_hi} should exceed alpha'=0.05 mean {mean_lo}"
        );
    }

    #[test]
    fn unfitted_and_short_rejected() {
        let mut m = SsaPlus::new(small_config());
        assert!(matches!(m.predict(5), Err(ModelError::NotFitted)));
        let short = TimeSeries::new(30, vec![1.0; 50]).unwrap();
        assert!(matches!(
            m.fit(&short),
            Err(ModelError::SeriesTooShort { .. })
        ));
    }

    #[test]
    fn zero_horizon_ok() {
        let ts = periodic_series(400);
        let mut m = SsaPlus::new(small_config());
        m.fit(&ts).unwrap();
        assert!(m.predict(0).unwrap().is_empty());
    }
}
