//! Classical forecasting baselines: seasonal naive and Holt–Winters.
//!
//! These are not in the paper's Table 1 lineup, but the related-work
//! section (§8) frames the problem space as "enumerat[ing] over a set of
//! time-series forecasting algorithms, selecting the most appropriate one"
//! (Herbst et al.) — so the library ships the canonical classical members
//! of that set. They also power [`crate::selector::AutoSelector`].

use crate::{FitReport, Forecaster, ModelError, Result};
use ip_timeseries::TimeSeries;
use std::time::Instant;

/// Seasonal-naive forecasting: `ŷ_{t} = y_{t − m}` for season length `m`.
///
/// For pool demand the natural season is one day; with 30-second intervals
/// that is `m = 2880`. Strong diurnal workloads make this an embarrassingly
/// effective baseline.
#[derive(Debug, Clone)]
pub struct SeasonalNaive {
    /// Season length in intervals.
    pub season: usize,
    last_season: Vec<f64>,
}

impl SeasonalNaive {
    /// Creates the forecaster for a season of `season` intervals.
    pub fn new(season: usize) -> Self {
        Self {
            season,
            last_season: Vec::new(),
        }
    }

    /// Convenience: one-day season for a series at `interval_secs`.
    pub fn daily(interval_secs: u64) -> Self {
        Self::new((86_400 / interval_secs.max(1)) as usize)
    }
}

impl Forecaster for SeasonalNaive {
    fn name(&self) -> &'static str {
        "seasonal-naive"
    }

    fn fit(&mut self, train: &TimeSeries) -> Result<FitReport> {
        let start = Instant::now();
        if self.season == 0 {
            return Err(ModelError::InvalidConfig("season must be > 0".into()));
        }
        if train.len() < self.season {
            return Err(ModelError::SeriesTooShort {
                needed: self.season,
                got: train.len(),
            });
        }
        self.last_season = train.values()[train.len() - self.season..].to_vec();
        Ok(FitReport {
            fit_time: start.elapsed(),
            epochs_run: 1,
            final_loss: 0.0,
            parameters: 0,
        })
    }

    fn predict(&mut self, horizon: usize) -> Result<Vec<f64>> {
        if self.last_season.is_empty() {
            return Err(ModelError::NotFitted);
        }
        Ok((0..horizon)
            .map(|i| self.last_season[i % self.season].max(0.0))
            .collect())
    }
}

/// Additive Holt–Winters (triple exponential smoothing): level, trend and
/// additive seasonality with smoothing factors `alpha`, `beta`, `gamma`.
#[derive(Debug, Clone)]
pub struct HoltWinters {
    /// Level smoothing ∈ (0, 1).
    pub alpha: f64,
    /// Trend smoothing ∈ [0, 1).
    pub beta: f64,
    /// Seasonal smoothing ∈ [0, 1).
    pub gamma: f64,
    /// Season length in intervals.
    pub season: usize,
    state: Option<HwState>,
}

#[derive(Debug, Clone)]
struct HwState {
    level: f64,
    trend: f64,
    seasonal: Vec<f64>,
    /// Season phase of the next forecast step.
    phase: usize,
}

impl HoltWinters {
    /// Creates the model; parameters are validated at fit time.
    pub fn new(alpha: f64, beta: f64, gamma: f64, season: usize) -> Self {
        Self {
            alpha,
            beta,
            gamma,
            season,
            state: None,
        }
    }

    /// Reasonable defaults for demand traces with a daily season.
    pub fn daily(interval_secs: u64) -> Self {
        Self::new(0.3, 0.02, 0.15, (86_400 / interval_secs.max(1)) as usize)
    }
}

impl Forecaster for HoltWinters {
    fn name(&self) -> &'static str {
        "holt-winters"
    }

    fn fit(&mut self, train: &TimeSeries) -> Result<FitReport> {
        let start = Instant::now();
        let m = self.season;
        if m == 0 {
            return Err(ModelError::InvalidConfig("season must be > 0".into()));
        }
        for (name, v, lo) in [
            ("alpha", self.alpha, f64::EPSILON),
            ("beta", self.beta, 0.0),
            ("gamma", self.gamma, 0.0),
        ] {
            if !(lo..1.0).contains(&v) {
                return Err(ModelError::InvalidConfig(format!(
                    "{name} = {v} out of range"
                )));
            }
        }
        if train.len() < 2 * m {
            return Err(ModelError::SeriesTooShort {
                needed: 2 * m,
                got: train.len(),
            });
        }
        let y = train.values();

        // Classical initialization: level = mean of season 1, trend = mean
        // per-step change between seasons 1 and 2, seasonal = deviations.
        let s1_mean: f64 = y[..m].iter().sum::<f64>() / m as f64;
        let s2_mean: f64 = y[m..2 * m].iter().sum::<f64>() / m as f64;
        let mut level = s1_mean;
        let mut trend = (s2_mean - s1_mean) / m as f64;
        let mut seasonal: Vec<f64> = (0..m).map(|i| y[i] - s1_mean).collect();
        let mut sse = 0.0;

        for (t, &obs) in y.iter().enumerate().skip(m) {
            let phase = t % m;
            let forecast = level + trend + seasonal[phase];
            sse += (obs - forecast).powi(2);
            let prev_level = level;
            level = self.alpha * (obs - seasonal[phase]) + (1.0 - self.alpha) * (level + trend);
            trend = self.beta * (level - prev_level) + (1.0 - self.beta) * trend;
            seasonal[phase] = self.gamma * (obs - level) + (1.0 - self.gamma) * seasonal[phase];
        }
        self.state = Some(HwState {
            level,
            trend,
            seasonal,
            phase: train.len() % m,
        });
        Ok(FitReport {
            fit_time: start.elapsed(),
            epochs_run: 1,
            final_loss: (sse / (train.len() - m) as f64).sqrt(),
            parameters: 0,
        })
    }

    fn predict(&mut self, horizon: usize) -> Result<Vec<f64>> {
        let state = self.state.as_ref().ok_or(ModelError::NotFitted)?;
        let m = self.season;
        Ok((0..horizon)
            .map(|h| {
                let phase = (state.phase + h) % m;
                (state.level + (h + 1) as f64 * state.trend + state.seasonal[phase]).max(0.0)
            })
            .collect())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn seasonal_series(periods: usize, m: usize) -> TimeSeries {
        // Pattern [1, 5, 3, 9, ...] repeated, plus a slight trend.
        let vals: Vec<f64> = (0..periods * m)
            .map(|t| {
                let base = [1.0, 5.0, 3.0, 9.0, 2.0, 7.0][t % m.min(6)];
                base + 0.01 * t as f64
            })
            .collect();
        TimeSeries::new(30, vals).unwrap()
    }

    #[test]
    fn seasonal_naive_repeats_last_season() {
        let ts = TimeSeries::new(30, vec![1.0, 2.0, 3.0, 10.0, 20.0, 30.0]).unwrap();
        let mut m = SeasonalNaive::new(3);
        m.fit(&ts).unwrap();
        assert_eq!(
            m.predict(6).unwrap(),
            vec![10.0, 20.0, 30.0, 10.0, 20.0, 30.0]
        );
    }

    #[test]
    fn seasonal_naive_validation() {
        let ts = TimeSeries::new(30, vec![1.0; 5]).unwrap();
        assert!(SeasonalNaive::new(0).fit(&ts).is_err());
        assert!(SeasonalNaive::new(10).fit(&ts).is_err());
        let mut unfitted = SeasonalNaive::new(2);
        assert!(matches!(unfitted.predict(1), Err(ModelError::NotFitted)));
        assert_eq!(SeasonalNaive::daily(30).season, 2880);
    }

    #[test]
    fn holt_winters_tracks_seasonal_pattern() {
        let m = 6;
        let ts = seasonal_series(20, m);
        let mut hw = HoltWinters::new(0.3, 0.05, 0.2, m);
        let report = hw.fit(&ts).unwrap();
        assert!(
            report.final_loss < 1.0,
            "in-sample RMSE {}",
            report.final_loss
        );
        let pred = hw.predict(m).unwrap();
        // The next season should look like the pattern (peaks at phases of
        // 9.0 and troughs at phases of 1.0, up to the trend).
        let truth: Vec<f64> = (0..m)
            .map(|i| [1.0, 5.0, 3.0, 9.0, 2.0, 7.0][i] + 0.01 * (120 + i) as f64)
            .collect();
        for (p, t) in pred.iter().zip(&truth) {
            assert!((p - t).abs() < 1.0, "{p} vs {t}");
        }
    }

    #[test]
    fn holt_winters_validation() {
        let ts = seasonal_series(3, 6);
        assert!(HoltWinters::new(0.0, 0.1, 0.1, 6).fit(&ts.clone()).is_err()); // alpha = 0
        assert!(HoltWinters::new(0.3, 1.0, 0.1, 6).fit(&ts.clone()).is_err()); // beta = 1
        assert!(HoltWinters::new(0.3, 0.1, 0.1, 0).fit(&ts.clone()).is_err()); // season 0
        let short = TimeSeries::new(30, vec![1.0; 8]).unwrap();
        assert!(HoltWinters::new(0.3, 0.1, 0.1, 6).fit(&short).is_err());
        let mut unfitted = HoltWinters::new(0.3, 0.1, 0.1, 6);
        assert!(matches!(unfitted.predict(1), Err(ModelError::NotFitted)));
    }

    #[test]
    fn predictions_non_negative() {
        // A decaying series would drive the trend negative; forecasts clamp.
        let vals: Vec<f64> = (0..60).map(|t| (30.0 - t as f64).max(0.0)).collect();
        let ts = TimeSeries::new(30, vals).unwrap();
        let mut hw = HoltWinters::new(0.5, 0.3, 0.1, 6);
        hw.fit(&ts).unwrap();
        assert!(hw.predict(40).unwrap().iter().all(|&v| v >= 0.0));
    }
}
