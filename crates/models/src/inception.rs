//! InceptionTime (Ismail Fawaz et al., DMKD'20) — the 1-D convolution model
//! of the paper's comparison.
//!
//! Each inception module runs parallel convolutions with long kernels over a
//! bottlenecked input plus a max-pool branch, concatenates the branches, and
//! applies batch norm + ReLU; a residual connection bridges the stack. The
//! paper finds its single-scale 1-D convolutions "may not be sufficiently
//! powerful to capture the diverse patterns" of pool demand — a property
//! that shows up here too on the spiky presets.

use crate::deep::{DeepConfig, DeepModel, Net};
use ip_nn::graph::{Graph, NodeId};
use ip_nn::layers::{BatchNorm1d, Conv1d, Linear};
use rand::rngs::StdRng;

/// Architecture hyper-parameters.
#[derive(Debug, Clone)]
pub struct InceptionConfig {
    /// Parallel kernel sizes (must be odd for same-length padding).
    pub kernels: Vec<usize>,
    /// Filters per branch.
    pub filters: usize,
    /// Number of inception modules.
    pub depth: usize,
    /// Bottleneck width applied when the input has more than one channel.
    pub bottleneck: usize,
}

impl Default for InceptionConfig {
    fn default() -> Self {
        // A faithful scale-down of the original {10, 20, 40} × 32 × 6.
        Self {
            kernels: vec![9, 19, 39],
            filters: 8,
            depth: 3,
            bottleneck: 8,
        }
    }
}

struct InceptionModule {
    bottleneck: Option<Conv1d>,
    branches: Vec<Conv1d>,
    pool_conv: Conv1d,
    bn: BatchNorm1d,
}

impl InceptionModule {
    fn new(g: &mut Graph, in_channels: usize, arch: &InceptionConfig, rng: &mut StdRng) -> Self {
        let (bottleneck, branch_in) = if in_channels > 1 {
            (
                Some(Conv1d::new(g, in_channels, arch.bottleneck, 1, 0, 1, rng)),
                arch.bottleneck,
            )
        } else {
            (None, in_channels)
        };
        let branches = arch
            .kernels
            .iter()
            .map(|&k| {
                assert!(
                    k % 2 == 1,
                    "inception kernels must be odd for same-length padding"
                );
                Conv1d::new(g, branch_in, arch.filters, k, k / 2, 1, rng)
            })
            .collect();
        let pool_conv = Conv1d::new(g, in_channels, arch.filters, 1, 0, 1, rng);
        let out_channels = (arch.kernels.len() + 1) * arch.filters;
        let bn = BatchNorm1d::new(g, out_channels);
        Self {
            bottleneck,
            branches,
            pool_conv,
            bn,
        }
    }

    fn forward(&mut self, g: &mut Graph, x: NodeId, train: bool) -> NodeId {
        let trunk = match &self.bottleneck {
            Some(b) => b.forward(g, x),
            None => x,
        };
        let mut outs: Vec<NodeId> = self.branches.iter().map(|c| c.forward(g, trunk)).collect();
        // Max-pool branch: same-length pooling then 1×1 conv.
        let pooled = g.max_pool1d_padded(x, 3, 1, 1);
        outs.push(self.pool_conv.forward(g, pooled));
        let cat = g.concat_channels(&outs);
        let normed = self.bn.forward(g, cat, train);
        g.relu(normed)
    }
}

/// The InceptionTime network; construct via [`InceptionTime::model`].
pub struct InceptionNet {
    modules: Vec<InceptionModule>,
    shortcut: Conv1d,
    shortcut_bn: BatchNorm1d,
    head: Linear,
    window: usize,
    out_channels: usize,
}

/// Builder type for the InceptionTime deep model.
pub struct InceptionTime;

impl InceptionTime {
    /// Creates an InceptionTime forecaster.
    pub fn model(config: DeepConfig, arch: InceptionConfig) -> DeepModel<InceptionNet> {
        DeepModel::new(config, move |g, cfg, rng| {
            let out_channels = (arch.kernels.len() + 1) * arch.filters;
            let mut modules = Vec::with_capacity(arch.depth);
            let mut in_ch = 1;
            for _ in 0..arch.depth {
                modules.push(InceptionModule::new(g, in_ch, &arch, rng));
                in_ch = out_channels;
            }
            // Residual shortcut from the raw input to the stack output.
            let shortcut = Conv1d::new(g, 1, out_channels, 1, 0, 1, rng);
            let shortcut_bn = BatchNorm1d::new(g, out_channels);
            let head = Linear::new(g, out_channels, cfg.horizon, rng);
            InceptionNet {
                modules,
                shortcut,
                shortcut_bn,
                head,
                window: cfg.window,
                out_channels,
            }
        })
    }
}

impl Net for InceptionNet {
    fn name(&self) -> &'static str {
        "InceptionTime"
    }

    fn forward(&mut self, g: &mut Graph, x: NodeId, batch: usize, train: bool) -> NodeId {
        let x3 = g.reshape(x, &[batch, 1, self.window]);
        let mut h = x3;
        for module in &mut self.modules {
            h = module.forward(g, h, train);
        }
        // Residual add (shapes match: same length, same channel count).
        let sc = self.shortcut.forward(g, x3);
        let sc = self.shortcut_bn.forward(g, sc, train);
        let merged = g.add(h, sc);
        let act = g.relu(merged);
        let pooled = g.avg_pool_global(act); // [B, C]
        let _ = self.out_channels;
        self.head.forward(g, pooled)
    }

    // Batch-norm state hooks for the data-parallel trainer. Order matters
    // and must match between export and import: module norms first, then the
    // shortcut norm.

    fn running_state(&self) -> Vec<f32> {
        let mut out = Vec::new();
        for m in &self.modules {
            m.bn.export_running(&mut out);
        }
        self.shortcut_bn.export_running(&mut out);
        out
    }

    fn set_running_state(&mut self, state: &[f32]) {
        let mut off = 0;
        for m in &mut self.modules {
            off += m.bn.import_running(&state[off..]);
        }
        self.shortcut_bn.import_running(&state[off..]);
    }

    fn batch_stats(&self) -> Vec<f32> {
        let mut out = Vec::new();
        for m in &self.modules {
            m.bn.export_batch_stats(&mut out);
        }
        self.shortcut_bn.export_batch_stats(&mut out);
        out
    }

    fn fold_batch_stats(&mut self, stats: &[f32]) {
        let mut off = 0;
        for m in &mut self.modules {
            off += m.bn.fold_batch_stats(&stats[off..]);
        }
        self.shortcut_bn.fold_batch_stats(&stats[off..]);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Forecaster;
    use ip_timeseries::TimeSeries;

    fn tiny() -> (DeepConfig, InceptionConfig) {
        (
            DeepConfig {
                window: 32,
                horizon: 8,
                epochs: 3,
                batch_size: 8,
                stride: 4,
                ..Default::default()
            },
            InceptionConfig {
                kernels: vec![3, 5, 9],
                filters: 4,
                depth: 2,
                bottleneck: 4,
            },
        )
    }

    #[test]
    fn fit_predict_roundtrip() {
        let vals: Vec<f64> = (0..200)
            .map(|t| 6.0 + 2.0 * (2.0 * std::f64::consts::PI * t as f64 / 16.0).cos())
            .collect();
        let ts = TimeSeries::new(30, vals).unwrap();
        let (dc, ic) = tiny();
        let mut m = InceptionTime::model(dc, ic);
        let report = m.fit(&ts).unwrap();
        assert!(report.parameters > 100);
        let pred = m.predict(8).unwrap();
        assert_eq!(pred.len(), 8);
        assert!(pred.iter().all(|v| v.is_finite() && *v >= 0.0));
    }

    #[test]
    fn training_reduces_loss() {
        let vals: Vec<f64> = (0..250)
            .map(|t| 8.0 + 4.0 * (2.0 * std::f64::consts::PI * t as f64 / 20.0).sin())
            .collect();
        let ts = TimeSeries::new(30, vals).unwrap();
        let (dc, ic) = tiny();
        let mut one = InceptionTime::model(
            DeepConfig {
                epochs: 1,
                ..dc.clone()
            },
            ic.clone(),
        );
        let l1 = one.fit(&ts).unwrap().final_loss;
        let mut many = InceptionTime::model(DeepConfig { epochs: 8, ..dc }, ic);
        let l8 = many.fit(&ts).unwrap().final_loss;
        assert!(l8 < l1, "8-epoch {l8} !< 1-epoch {l1}");
    }

    #[test]
    #[should_panic(expected = "must be odd")]
    fn even_kernels_rejected() {
        let (dc, mut ic) = tiny();
        ic.kernels = vec![4];
        let _ = InceptionTime::model(dc, ic);
    }
}
