//! The no-intelligence baseline of Eq. 17: `ŷ = γ · max(y_train)`.

use crate::{FitReport, Forecaster, ModelError, Result};
use ip_timeseries::TimeSeries;
use std::time::Instant;

/// Constant forecaster pinned to a fraction of the historical peak.
///
/// This is the static over-provisioning strategy the paper benchmarks
/// against: pick `γ` large and the pool always covers demand (huge idle
/// cost); shrink `γ` and wait time appears. Sweeping `γ` traces the
/// baseline's Pareto curve in Fig. 5.
#[derive(Debug, Clone)]
pub struct BaselineForecaster {
    /// The fraction of the training peak to predict.
    pub gamma: f64,
    level: Option<f64>,
}

impl BaselineForecaster {
    /// Creates a baseline with the given `γ`.
    pub fn new(gamma: f64) -> Self {
        Self { gamma, level: None }
    }
}

impl Forecaster for BaselineForecaster {
    fn name(&self) -> &'static str {
        "baseline"
    }

    fn fit(&mut self, train: &TimeSeries) -> Result<FitReport> {
        let start = Instant::now();
        let peak = train
            .max()
            .ok_or(ModelError::SeriesTooShort { needed: 1, got: 0 })?;
        self.level = Some((self.gamma * peak).max(0.0));
        Ok(FitReport {
            fit_time: start.elapsed(),
            epochs_run: 1,
            final_loss: 0.0,
            parameters: 0,
        })
    }

    fn predict(&mut self, horizon: usize) -> Result<Vec<f64>> {
        let level = self.level.ok_or(ModelError::NotFitted)?;
        Ok(vec![level; horizon])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn predicts_fraction_of_peak() {
        let ts = TimeSeries::new(30, vec![1.0, 7.0, 3.0]).unwrap();
        let mut b = BaselineForecaster::new(0.5);
        b.fit(&ts).unwrap();
        assert_eq!(b.predict(3).unwrap(), vec![3.5; 3]);
    }

    #[test]
    fn gamma_one_covers_training_peak() {
        let ts = TimeSeries::new(30, vec![2.0, 9.0, 4.0]).unwrap();
        let mut b = BaselineForecaster::new(1.0);
        b.fit(&ts).unwrap();
        let p = b.predict(1).unwrap();
        assert!(ts.values().iter().all(|&v| v <= p[0]));
    }

    #[test]
    fn unfitted_and_empty_rejected() {
        let mut b = BaselineForecaster::new(1.0);
        assert!(matches!(b.predict(1), Err(ModelError::NotFitted)));
        let mut b = BaselineForecaster::new(1.0);
        let empty = TimeSeries::zeros(30, 0);
        assert!(b.fit(&empty).is_err());
    }

    #[test]
    fn negative_levels_clamped() {
        let ts = TimeSeries::new(30, vec![-5.0, -2.0]).unwrap();
        let mut b = BaselineForecaster::new(1.0);
        b.fit(&ts).unwrap();
        assert_eq!(b.predict(1).unwrap(), vec![0.0]);
    }
}
