//! [`Forecaster`] adapter around the `ip-ssa` Singular Spectrum Analysis.

use crate::{FitReport, Forecaster, ModelError, Result};
use ip_ssa::{RankSelection, SsaConfig, SsaForecaster};
use ip_timeseries::TimeSeries;
use std::time::Instant;

/// Plain SSA forecasting — fast to train but with no way to bias toward
/// over-prediction, which is exactly the limitation §5.3 identifies ("there
/// is no way to specify and control how much the predicted request rate must
/// overshoot the ground truth").
#[derive(Debug, Clone)]
pub struct SsaModel {
    inner: SsaForecaster,
    window: usize,
}

impl SsaModel {
    /// Creates the model with an explicit embedding window and component
    /// selection.
    pub fn new(window: usize, rank: RankSelection) -> Self {
        Self {
            inner: SsaForecaster::new(SsaConfig { window, rank }),
            window,
        }
    }

    /// Paper-like defaults: window 150, 90% energy.
    pub fn paper_default() -> Self {
        Self::new(150, RankSelection::EnergyThreshold(0.90))
    }
}

impl Forecaster for SsaModel {
    fn name(&self) -> &'static str {
        "SSA"
    }

    fn fit(&mut self, train: &TimeSeries) -> Result<FitReport> {
        let start = Instant::now();
        if train.len() < self.window * 2 {
            return Err(ModelError::SeriesTooShort {
                needed: self.window * 2,
                got: train.len(),
            });
        }
        self.inner
            .fit(train)
            .map_err(|e| ModelError::Internal(e.to_string()))?;
        Ok(FitReport {
            fit_time: start.elapsed(),
            epochs_run: 1,
            final_loss: 0.0,
            parameters: 0,
        })
    }

    fn predict(&mut self, horizon: usize) -> Result<Vec<f64>> {
        let raw = self.inner.predict(horizon).map_err(|e| match e {
            ip_ssa::SsaError::NotFitted => ModelError::NotFitted,
            other => ModelError::Internal(other.to_string()),
        })?;
        Ok(raw.into_iter().map(|v| v.max(0.0)).collect())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fits_and_predicts_periodic_demand() {
        let n = 400;
        let vals: Vec<f64> = (0..n)
            .map(|t| 10.0 + 5.0 * (2.0 * std::f64::consts::PI * t as f64 / 48.0).sin())
            .collect();
        let ts = TimeSeries::new(30, vals.clone()).unwrap();
        let mut m = SsaModel::new(96, RankSelection::Fixed(3));
        m.fit(&ts).unwrap();
        let pred = m.predict(48).unwrap();
        let truth: Vec<f64> = (n..n + 48)
            .map(|t| 10.0 + 5.0 * (2.0 * std::f64::consts::PI * t as f64 / 48.0).sin())
            .collect();
        let mae: f64 = pred
            .iter()
            .zip(&truth)
            .map(|(a, b)| (a - b).abs())
            .sum::<f64>()
            / 48.0;
        assert!(mae < 0.5, "MAE {mae}");
    }

    #[test]
    fn too_short_rejected() {
        let ts = TimeSeries::new(30, vec![1.0; 100]).unwrap();
        let mut m = SsaModel::new(96, RankSelection::Fixed(2));
        assert!(matches!(m.fit(&ts), Err(ModelError::SeriesTooShort { .. })));
    }

    #[test]
    fn predictions_non_negative() {
        let vals: Vec<f64> = (0..200).map(|t| (t as f64 * 0.3).sin()).collect();
        let ts = TimeSeries::new(30, vals).unwrap();
        let mut m = SsaModel::new(40, RankSelection::Fixed(2));
        m.fit(&ts).unwrap();
        assert!(m.predict(100).unwrap().iter().all(|&v| v >= 0.0));
    }
}
