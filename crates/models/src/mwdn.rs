//! mWDN — multilevel Wavelet Decomposition Network (Wang et al., KDD'18),
//! the best-MAE deep model in the paper's Table 1.
//!
//! The defining component is a *trainable* discrete wavelet decomposition:
//! each level applies a learnable low-pass/high-pass filter pair —
//! initialized from Daubechies D4 coefficients — with stride 2 (filter +
//! decimate, exactly the DWT structure), splitting the signal into an
//! approximation and a detail sub-series. The detail series from every level
//! plus the final approximation each feed a feature head whose outputs are
//! concatenated into a linear forecast head. Two head variants are offered:
//! the default two-layer convolutional stack ([`Mwdn::model`], fast) and the
//! cited architecture's per-level LSTM ([`Mwdn::model_lstm`], faithful but
//! slow — its sequential dependency is why mWDN sits deep in the slow band
//! of Fig. 6).

use crate::deep::{DeepConfig, DeepModel, Net};
use ip_nn::graph::{Graph, NodeId};
use ip_nn::layers::Conv1d;
use ip_nn::tensor::Tensor;
use rand::Rng;

/// Daubechies D4 low-pass filter taps.
const D4_LOW: [f32; 4] = [0.482_962_9, 0.836_516_3, 0.224_143_87, -0.129_409_52];
/// Matching high-pass (quadrature mirror) taps.
const D4_HIGH: [f32; 4] = [-0.129_409_52, -0.224_143_87, 0.836_516_3, -0.482_962_9];

/// One decomposition level: learnable low/high-pass filters with stride 2.
struct WaveletLevel {
    low: NodeId,
    high: NodeId,
}

/// Per-sub-series feature extractor.
enum Head {
    /// Two-layer convolutional stack (fast default).
    Conv(Conv1d, Conv1d),
    /// The cited architecture's recurrent extractor (slow, faithful).
    Lstm(ip_nn::rnn::LstmHead),
}

/// The mWDN network; construct via [`Mwdn::model`] (conv heads) or
/// [`Mwdn::model_lstm`] (the original per-level LSTMs).
pub struct MwdnNet {
    levels: Vec<WaveletLevel>,
    heads: Vec<Head>,
    head_channels: usize,
    output: ip_nn::layers::Linear,
    window: usize,
}

/// Builder type for the mWDN deep model.
pub struct Mwdn;

impl Mwdn {
    /// Creates an mWDN forecaster with `levels` decomposition levels and
    /// `head_channels` convolutional features per sub-series.
    pub fn model(config: DeepConfig, levels: usize, head_channels: usize) -> DeepModel<MwdnNet> {
        DeepModel::new(config, move |g, cfg, rng| {
            assert!(levels >= 1, "mWDN needs at least one level");
            assert!(
                cfg.window >> levels >= 4,
                "window {} too short for {} wavelet levels",
                cfg.window,
                levels
            );
            let mut lvl = Vec::with_capacity(levels);
            for _ in 0..levels {
                // D4 taps plus a small random perturbation (the mWDN paper
                // initializes with the exact wavelet filters and lets
                // training fine-tune them).
                let jitter = 0.01;
                let low: Vec<f32> = D4_LOW
                    .iter()
                    .map(|&c| c + rng.gen_range(-jitter..jitter))
                    .collect();
                let high: Vec<f32> = D4_HIGH
                    .iter()
                    .map(|&c| c + rng.gen_range(-jitter..jitter))
                    .collect();
                lvl.push(WaveletLevel {
                    low: g.param(Tensor::new(&[1, 1, 4], low).expect("4-tap filter")),
                    high: g.param(Tensor::new(&[1, 1, 4], high).expect("4-tap filter")),
                });
            }
            // One feature head per sub-series: `levels` detail series + the
            // final approximation. Each head is a two-layer conv stack — the
            // sequence-feature extractor the cited architecture implements
            // with LSTMs (see `model_lstm` for the faithful variant).
            let heads: Vec<Head> = (0..=levels)
                .map(|_| {
                    Head::Conv(
                        Conv1d::new(g, 1, head_channels, 5, 2, 1, rng),
                        Conv1d::new(g, head_channels, head_channels, 5, 2, 1, rng),
                    )
                })
                .collect();
            let feat_dim = (levels + 1) * head_channels;
            let output = ip_nn::layers::Linear::new(g, feat_dim, cfg.horizon, rng);
            MwdnNet {
                levels: lvl,
                heads,
                head_channels,
                output,
                window: cfg.window,
            }
        })
    }

    /// Creates the faithful variant with an LSTM per sub-series (Wang et
    /// al.'s original design). `hidden` LSTM units per level; markedly
    /// slower than the conv heads because of the sequential dependency.
    pub fn model_lstm(config: DeepConfig, levels: usize, hidden: usize) -> DeepModel<MwdnNet> {
        DeepModel::new(config, move |g, cfg, rng| {
            assert!(levels >= 1, "mWDN needs at least one level");
            assert!(
                cfg.window >> levels >= 4,
                "window {} too short for {} wavelet levels",
                cfg.window,
                levels
            );
            let mut lvl = Vec::with_capacity(levels);
            for _ in 0..levels {
                let jitter = 0.01;
                let low: Vec<f32> = D4_LOW
                    .iter()
                    .map(|&c| c + rng.gen_range(-jitter..jitter))
                    .collect();
                let high: Vec<f32> = D4_HIGH
                    .iter()
                    .map(|&c| c + rng.gen_range(-jitter..jitter))
                    .collect();
                lvl.push(WaveletLevel {
                    low: g.param(Tensor::new(&[1, 1, 4], low).expect("4-tap filter")),
                    high: g.param(Tensor::new(&[1, 1, 4], high).expect("4-tap filter")),
                });
            }
            let heads: Vec<Head> = (0..=levels)
                .map(|_| Head::Lstm(ip_nn::rnn::LstmHead::new(g, hidden, hidden, rng)))
                .collect();
            let feat_dim = (levels + 1) * hidden;
            let output = ip_nn::layers::Linear::new(g, feat_dim, cfg.horizon, rng);
            MwdnNet {
                levels: lvl,
                heads,
                head_channels: hidden,
                output,
                window: cfg.window,
            }
        })
    }
}

impl Net for MwdnNet {
    fn name(&self) -> &'static str {
        "mWDN"
    }

    fn forward(&mut self, g: &mut Graph, x: NodeId, batch: usize, _train: bool) -> NodeId {
        // [B, W] → [B, 1, W]
        let mut approx = g.reshape(x, &[batch, 1, self.window]);
        let mut sub_series = Vec::with_capacity(self.levels.len() + 1);
        for level in &self.levels {
            // Filter + decimate: stride-2 convs with padding 1 halve length.
            let detail = g.conv1d(approx, level.high, 1, 2);
            let next = g.conv1d(approx, level.low, 1, 2);
            sub_series.push(detail);
            approx = next;
        }
        sub_series.push(approx);

        let mut features = Vec::with_capacity(sub_series.len());
        for (head, series) in self.heads.iter().zip(&sub_series) {
            let pooled = match head {
                Head::Conv(conv1, conv2) => {
                    let h = conv1.forward(g, *series);
                    let h = g.relu(h);
                    let h = conv2.forward(g, h);
                    let h = g.relu(h);
                    g.avg_pool_global(h) // [B, head_channels]
                }
                Head::Lstm(lstm) => {
                    let len = g.value(*series).shape()[2];
                    let seq = g.reshape(*series, &[batch, len]);
                    lstm.forward(g, seq) // [B, hidden]
                }
            };
            features.push(g.reshape(pooled, &[batch, self.head_channels, 1]));
        }
        let cat = g.concat_channels(&features); // [B, feat_dim, 1]
        let flat = g.reshape(cat, &[batch, features.len() * self.head_channels]);
        self.output.forward(g, flat)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Forecaster;
    use ip_timeseries::TimeSeries;

    fn tiny_config() -> DeepConfig {
        DeepConfig {
            window: 32,
            horizon: 8,
            epochs: 4,
            batch_size: 8,
            stride: 2,
            ..Default::default()
        }
    }

    #[test]
    fn shapes_and_fit() {
        let vals: Vec<f64> = (0..200)
            .map(|t| 5.0 + 3.0 * (2.0 * std::f64::consts::PI * t as f64 / 16.0).sin())
            .collect();
        let ts = TimeSeries::new(30, vals).unwrap();
        let mut m = Mwdn::model(tiny_config(), 2, 4);
        let report = m.fit(&ts).unwrap();
        assert!(report.parameters > 0);
        assert!(report.epochs_run >= 1);
        let pred = m.predict(8).unwrap();
        assert_eq!(pred.len(), 8);
        assert!(pred.iter().all(|v| v.is_finite() && *v >= 0.0));
    }

    #[test]
    fn training_reduces_loss() {
        let vals: Vec<f64> = (0..300)
            .map(|t| 10.0 + 4.0 * (2.0 * std::f64::consts::PI * t as f64 / 32.0).sin())
            .collect();
        let ts = TimeSeries::new(30, vals).unwrap();
        let mut short = Mwdn::model(
            DeepConfig {
                epochs: 1,
                ..tiny_config()
            },
            2,
            4,
        );
        let loss_1 = short.fit(&ts).unwrap().final_loss;
        let mut long = Mwdn::model(
            DeepConfig {
                epochs: 10,
                ..tiny_config()
            },
            2,
            4,
        );
        let loss_10 = long.fit(&ts).unwrap().final_loss;
        assert!(
            loss_10 < loss_1,
            "10-epoch loss {loss_10} !< 1-epoch loss {loss_1}"
        );
    }

    #[test]
    fn autoregressive_tiling_extends_horizon() {
        let vals: Vec<f64> = (0..150).map(|t| (t % 7) as f64).collect();
        let ts = TimeSeries::new(30, vals).unwrap();
        let mut m = Mwdn::model(tiny_config(), 2, 4);
        m.fit(&ts).unwrap();
        // 20 > trained horizon of 8 → requires tiling.
        assert_eq!(m.predict(20).unwrap().len(), 20);
    }

    #[test]
    fn too_short_series_rejected() {
        let ts = TimeSeries::new(30, vec![1.0; 30]).unwrap();
        let mut m = Mwdn::model(tiny_config(), 2, 4);
        assert!(m.fit(&ts).is_err());
    }

    #[test]
    #[should_panic(expected = "too short")]
    fn window_vs_levels_validated() {
        let cfg = DeepConfig {
            window: 16,
            ..tiny_config()
        };
        let _ = Mwdn::model(cfg, 3, 4);
    }
}

#[cfg(test)]
mod lstm_head_tests {
    use super::*;
    use crate::Forecaster;
    use ip_timeseries::TimeSeries;

    #[test]
    fn lstm_variant_fits_and_predicts() {
        let cfg = DeepConfig {
            window: 32,
            horizon: 8,
            epochs: 2,
            batch_size: 8,
            stride: 8,
            ..Default::default()
        };
        let vals: Vec<f64> = (0..160)
            .map(|t| 5.0 + 2.0 * (2.0 * std::f64::consts::PI * t as f64 / 16.0).sin())
            .collect();
        let ts = TimeSeries::new(30, vals).unwrap();
        let mut m = Mwdn::model_lstm(cfg, 2, 6);
        let report = m.fit(&ts).unwrap();
        assert!(report.parameters > 0);
        let pred = m.predict(8).unwrap();
        assert_eq!(pred.len(), 8);
        assert!(pred.iter().all(|v| v.is_finite() && *v >= 0.0));
    }
}
