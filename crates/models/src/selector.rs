//! Backtest-driven model selection.
//!
//! The related work (§8, Herbst et al.) selects "the most appropriate"
//! forecaster per workload by enumeration; production Intelligent Pooling
//! keeps a guardrail backtest anyway (§7.5), so the marginal cost of
//! selecting among several cheap candidates is small. [`AutoSelector`]
//! backtests every registered candidate on a trailing holdout and fits the
//! winner on the full history.

use crate::{FitReport, Forecaster, ModelError, Result};
use ip_timeseries::{mae, TimeSeries};
use std::time::Instant;

/// A forecaster that picks the best of its candidates by holdout MAE.
pub struct AutoSelector {
    candidates: Vec<Box<dyn Forecaster>>,
    holdout: usize,
    chosen: Option<usize>,
    /// Backtest MAE per candidate from the last fit (NaN = failed).
    pub backtest_mae: Vec<f64>,
}

impl AutoSelector {
    /// Creates a selector over `candidates`, backtesting on the trailing
    /// `holdout` intervals (clamped to a quarter of the history).
    pub fn new(candidates: Vec<Box<dyn Forecaster>>, holdout: usize) -> Result<Self> {
        if candidates.is_empty() {
            return Err(ModelError::InvalidConfig(
                "need at least one candidate".into(),
            ));
        }
        if holdout == 0 {
            return Err(ModelError::InvalidConfig("holdout must be > 0".into()));
        }
        Ok(Self {
            backtest_mae: vec![f64::NAN; candidates.len()],
            candidates,
            holdout,
            chosen: None,
        })
    }

    /// Name of the winning candidate after `fit`.
    pub fn chosen_name(&self) -> Option<&'static str> {
        self.chosen.map(|i| self.candidates[i].name())
    }
}

impl Forecaster for AutoSelector {
    fn name(&self) -> &'static str {
        "auto-selector"
    }

    fn fit(&mut self, train: &TimeSeries) -> Result<FitReport> {
        let start = Instant::now();
        let holdout = self.holdout.min(train.len() / 4);
        if holdout == 0 {
            return Err(ModelError::SeriesTooShort {
                needed: 4,
                got: train.len(),
            });
        }
        let cut = train.len() - holdout;
        let head = train
            .slice(0, cut)
            .map_err(|e| ModelError::Internal(e.to_string()))?;
        let truth = &train.values()[cut..];

        let mut best: Option<(usize, f64)> = None;
        for (i, candidate) in self.candidates.iter_mut().enumerate() {
            let score = candidate
                .fit(&head)
                .and_then(|_| candidate.predict(holdout))
                .ok()
                .and_then(|pred| mae(truth, &pred).ok());
            self.backtest_mae[i] = score.unwrap_or(f64::NAN);
            if let Some(s) = score {
                if best.is_none_or(|(_, b)| s < b) {
                    best = Some((i, s));
                }
            }
        }
        let (winner, score) =
            best.ok_or_else(|| ModelError::Internal("every candidate failed backtest".into()))?;
        self.chosen = Some(winner);
        // Refit the winner on the full history so forecasts start at its end.
        let inner_report = self.candidates[winner].fit(train)?;
        Ok(FitReport {
            fit_time: start.elapsed(),
            epochs_run: inner_report.epochs_run,
            final_loss: score,
            parameters: inner_report.parameters,
        })
    }

    fn predict(&mut self, horizon: usize) -> Result<Vec<f64>> {
        let chosen = self.chosen.ok_or(ModelError::NotFitted)?;
        self.candidates[chosen].predict(horizon)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::classical::SeasonalNaive;
    use crate::BaselineForecaster;

    fn seasonal_series() -> TimeSeries {
        let vals: Vec<f64> = (0..240).map(|t| [1.0, 8.0, 2.0, 6.0][t % 4]).collect();
        TimeSeries::new(30, vals).unwrap()
    }

    #[test]
    fn picks_the_better_candidate() {
        // On a perfectly seasonal series, seasonal-naive crushes the
        // peak-pinned baseline.
        let mut sel = AutoSelector::new(
            vec![
                Box::new(BaselineForecaster::new(1.0)),
                Box::new(SeasonalNaive::new(4)),
            ],
            40,
        )
        .unwrap();
        let report = sel.fit(&seasonal_series()).unwrap();
        assert_eq!(sel.chosen_name(), Some("seasonal-naive"));
        assert!(
            report.final_loss < 1e-9,
            "winner backtest MAE {}",
            report.final_loss
        );
        let pred = sel.predict(8).unwrap();
        assert_eq!(pred, vec![1.0, 8.0, 2.0, 6.0, 1.0, 8.0, 2.0, 6.0]);
        // Both scores recorded, winner strictly better.
        assert!(sel.backtest_mae[1] < sel.backtest_mae[0]);
    }

    #[test]
    fn failing_candidates_are_skipped() {
        // SeasonalNaive with an oversized season fails to fit on the
        // backtest head; the baseline must win by default.
        let mut sel = AutoSelector::new(
            vec![
                Box::new(SeasonalNaive::new(100_000)),
                Box::new(BaselineForecaster::new(1.0)),
            ],
            40,
        )
        .unwrap();
        sel.fit(&seasonal_series()).unwrap();
        assert_eq!(sel.chosen_name(), Some("baseline"));
        assert!(sel.backtest_mae[0].is_nan());
    }

    #[test]
    fn construction_and_state_validated() {
        assert!(AutoSelector::new(vec![], 10).is_err());
        assert!(AutoSelector::new(vec![Box::new(BaselineForecaster::new(1.0))], 0).is_err());
        let mut sel = AutoSelector::new(vec![Box::new(BaselineForecaster::new(1.0))], 10).unwrap();
        assert!(matches!(sel.predict(5), Err(ModelError::NotFitted)));
    }
}
