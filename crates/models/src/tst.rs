//! TST — Time Series Transformer (Zerveas et al., KDD'21).
//!
//! Each timestep of the input window is projected into a `d_model`-wide
//! embedding, summed with a fixed sinusoidal positional encoding, passed
//! through a stack of transformer encoder blocks (multi-head self-attention
//! plus GELU feed-forward, pre/post LayerNorm as in the cited work), then
//! flattened into a linear multi-horizon head. The paper notes TST "requires
//! a longer period of input data due to their increased parameters" and has
//! the longest latency of the lineup (Fig. 6) — both properties hold here.

use crate::deep::{DeepConfig, DeepModel, Net};
use ip_nn::graph::{Graph, NodeId};
use ip_nn::layers::{Linear, TransformerEncoderBlock};
use ip_nn::tensor::Tensor;

/// Architecture hyper-parameters for TST.
#[derive(Debug, Clone, Copy)]
pub struct TstConfig {
    /// Embedding width.
    pub d_model: usize,
    /// Attention heads (must divide `d_model`).
    pub heads: usize,
    /// Encoder blocks.
    pub blocks: usize,
    /// Feed-forward expansion width.
    pub ff_dim: usize,
    /// Dropout probability inside encoder blocks.
    pub dropout: f32,
}

impl Default for TstConfig {
    fn default() -> Self {
        Self {
            d_model: 32,
            heads: 4,
            blocks: 2,
            ff_dim: 64,
            dropout: 0.1,
        }
    }
}

/// The TST network; construct via [`Tst::model`].
pub struct TstNet {
    embed: Linear,
    blocks: Vec<TransformerEncoderBlock>,
    head: Linear,
    pos_encoding: Vec<f32>,
    window: usize,
    d_model: usize,
}

/// Builder type for the TST deep model.
pub struct Tst;

impl Tst {
    /// Creates a TST forecaster.
    pub fn model(config: DeepConfig, arch: TstConfig) -> DeepModel<TstNet> {
        DeepModel::new(config, move |g, cfg, rng| {
            let embed = Linear::new(g, 1, arch.d_model, rng);
            let blocks = (0..arch.blocks)
                .map(|_| {
                    TransformerEncoderBlock::new(
                        g,
                        arch.d_model,
                        arch.heads,
                        arch.ff_dim,
                        arch.dropout,
                        rng,
                    )
                })
                .collect();
            let head = Linear::new(g, cfg.window * arch.d_model, cfg.horizon, rng);
            let pos_encoding = sinusoidal_encoding(cfg.window, arch.d_model);
            TstNet {
                embed,
                blocks,
                head,
                pos_encoding,
                window: cfg.window,
                d_model: arch.d_model,
            }
        })
    }
}

/// The standard fixed sinusoidal positional encoding, flattened `[T·D]`.
fn sinusoidal_encoding(t_len: usize, d_model: usize) -> Vec<f32> {
    let mut pe = vec![0.0f32; t_len * d_model];
    for t in 0..t_len {
        for i in 0..d_model {
            let angle = t as f64 / 10_000f64.powf((2 * (i / 2)) as f64 / d_model as f64);
            pe[t * d_model + i] = if i % 2 == 0 { angle.sin() } else { angle.cos() } as f32;
        }
    }
    pe
}

impl Net for TstNet {
    fn name(&self) -> &'static str {
        "TST"
    }

    fn forward(&mut self, g: &mut Graph, x: NodeId, batch: usize, train: bool) -> NodeId {
        let (w, d) = (self.window, self.d_model);
        // [B, W] → [B·W, 1] → embed → [B, W, D]
        let flat = g.reshape(x, &[batch * w, 1]);
        let emb = self.embed.forward(g, flat);
        let emb3 = g.reshape(emb, &[batch, w, d]);
        // Add the positional encoding, tiled across the batch.
        let pe_tiled: Vec<f32> = self
            .pos_encoding
            .iter()
            .cycle()
            .take(batch * w * d)
            .copied()
            .collect();
        let pe = g.constant(Tensor::new(&[batch, w, d], pe_tiled).expect("PE tile"));
        let mut h = g.add(emb3, pe);
        for block in &self.blocks {
            h = block.forward(g, h, train);
        }
        let flat_out = g.reshape(h, &[batch, w * d]);
        self.head.forward(g, flat_out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Forecaster;
    use ip_timeseries::TimeSeries;

    fn tiny() -> (DeepConfig, TstConfig) {
        (
            DeepConfig {
                window: 16,
                horizon: 8,
                epochs: 3,
                batch_size: 8,
                stride: 4,
                ..Default::default()
            },
            TstConfig {
                d_model: 8,
                heads: 2,
                blocks: 1,
                ff_dim: 16,
                dropout: 0.0,
            },
        )
    }

    #[test]
    fn positional_encoding_shape_and_range() {
        let pe = sinusoidal_encoding(10, 8);
        assert_eq!(pe.len(), 80);
        assert!(pe.iter().all(|v| v.abs() <= 1.0 + 1e-6));
        // Position 0: sin(0)=0, cos(0)=1 alternating.
        assert_eq!(pe[0], 0.0);
        assert_eq!(pe[1], 1.0);
    }

    #[test]
    fn fit_predict_roundtrip() {
        let vals: Vec<f64> = (0..160)
            .map(|t| 4.0 + 2.0 * (2.0 * std::f64::consts::PI * t as f64 / 8.0).sin())
            .collect();
        let ts = TimeSeries::new(30, vals).unwrap();
        let (dc, tc) = tiny();
        let mut m = Tst::model(dc, tc);
        let report = m.fit(&ts).unwrap();
        assert!(report.parameters > 500, "TST should be parameter-heavy");
        let pred = m.predict(8).unwrap();
        assert_eq!(pred.len(), 8);
        assert!(pred.iter().all(|v| v.is_finite() && *v >= 0.0));
    }

    #[test]
    fn training_reduces_loss() {
        let vals: Vec<f64> = (0..200)
            .map(|t| 10.0 + 5.0 * (2.0 * std::f64::consts::PI * t as f64 / 16.0).sin())
            .collect();
        let ts = TimeSeries::new(30, vals).unwrap();
        let (dc, tc) = tiny();
        let mut one = Tst::model(
            DeepConfig {
                epochs: 1,
                ..dc.clone()
            },
            tc,
        );
        let l1 = one.fit(&ts).unwrap().final_loss;
        let mut many = Tst::model(DeepConfig { epochs: 10, ..dc }, tc);
        let l10 = many.fit(&ts).unwrap().final_loss;
        assert!(l10 < l1, "10-epoch {l10} !< 1-epoch {l1}");
    }
}
