#![warn(missing_docs)]
//! The forecasting models of the Intelligent Pooling paper (§5).
//!
//! Every model implements [`Forecaster`]: fit on a historical request-rate
//! series, then predict a horizon of future rates. The lineup matches the
//! paper's §5.1/§5.3 comparison exactly:
//!
//! | Model | Paper role | Module |
//! |---|---|---|
//! | No-intelligence baseline (Eq. 17) | static over-provisioning reference | [`baseline`] |
//! | SSA | fast traditional ML, no loss-shaping knob | [`ssa_model`] |
//! | **SSA+** | the paper's hybrid: SSA + ~30-parameter error net with asymmetric loss | [`ssa_plus`] |
//! | mWDN | wavelet-decomposition deep model (best Table 1 MAE) | [`mwdn`] |
//! | TST | transformer encoder | [`tst`] |
//! | InceptionTime | 1-D convolution model | [`inception`] |
//!
//! The deep models share the training plumbing in [`deep`]: sliding-window
//! supervision, z-normalization, Adam, the asymmetric loss of Eq. 12 and
//! validation-based early stopping (90-10 split, §5.1).
//!
//! ### Faithfulness notes
//! * mWDN keeps the paper-cited architecture's core — learnable low/high-pass
//!   filter pairs initialized from Daubechies-4 coefficients, with ×2
//!   downsampling per level. Sub-series features come from two-layer conv
//!   heads by default ([`Mwdn::model`]) or from the cited per-level LSTMs
//!   ([`Mwdn::model_lstm`]) when fidelity matters more than speed.
//! * InceptionTime uses 3 inception modules with kernel set {9, 19, 39} and
//!   a residual connection, a faithful scale-down of the 6-module original.
//!
//! ```
//! use ip_models::{Forecaster, SeasonalNaive};
//! use ip_timeseries::TimeSeries;
//!
//! // A perfectly seasonal trace is nailed by the seasonal-naive baseline.
//! let values: Vec<f64> = (0..120).map(|t| [1.0, 5.0, 3.0][t % 3]).collect();
//! let series = TimeSeries::new(30, values).unwrap();
//! let mut model = SeasonalNaive::new(3);
//! model.fit(&series).unwrap();
//! assert_eq!(model.predict(4).unwrap(), vec![1.0, 5.0, 3.0, 1.0]);
//! ```

pub mod baseline;
pub mod classical;
pub mod deep;
pub mod inception;
pub mod mwdn;
pub mod selector;
pub mod ssa_model;
pub mod ssa_plus;
pub mod tst;

pub use baseline::BaselineForecaster;
pub use classical::{HoltWinters, SeasonalNaive};
pub use deep::{DeepConfig, DeepModel};
pub use inception::InceptionTime;
pub use mwdn::Mwdn;
pub use selector::AutoSelector;
pub use ssa_model::SsaModel;
pub use ssa_plus::SsaPlus;
pub use tst::Tst;

use ip_timeseries::TimeSeries;
use std::time::Duration;

/// Errors from model fitting/prediction.
#[derive(Debug, Clone, PartialEq)]
pub enum ModelError {
    /// The training series is too short for the model's window/horizon.
    SeriesTooShort {
        /// Required minimum length.
        needed: usize,
        /// Actual length.
        got: usize,
    },
    /// Invalid hyper-parameter combination.
    InvalidConfig(String),
    /// Prediction requested before fitting.
    NotFitted,
    /// Failure inside a substrate (SSA, linalg, …).
    Internal(String),
}

impl std::fmt::Display for ModelError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ModelError::SeriesTooShort { needed, got } => {
                write!(f, "series too short: need {needed}, got {got}")
            }
            ModelError::InvalidConfig(msg) => write!(f, "invalid config: {msg}"),
            ModelError::NotFitted => write!(f, "model not fitted"),
            ModelError::Internal(msg) => write!(f, "internal error: {msg}"),
        }
    }
}

impl std::error::Error for ModelError {}

/// Result alias for this crate.
pub type Result<T> = std::result::Result<T, ModelError>;

/// Outcome of a fit: wall-clock cost and training diagnostics (the Fig. 6
/// data scaling study is built on `fit_time`).
#[derive(Debug, Clone)]
pub struct FitReport {
    /// Wall-clock training time.
    pub fit_time: Duration,
    /// Epochs actually run (1 for non-iterative models).
    pub epochs_run: usize,
    /// Final training-loss value (model-specific scale).
    pub final_loss: f64,
    /// Number of trainable parameters (0 for non-parametric models).
    pub parameters: usize,
}

/// A demand forecaster: fit on history, predict future request rates.
pub trait Forecaster {
    /// Short display name ("SSA+", "mWDN", …) used in reports.
    fn name(&self) -> &'static str;

    /// Fits the model on a training series.
    fn fit(&mut self, train: &TimeSeries) -> Result<FitReport>;

    /// Predicts `horizon` future values (same interval as the training
    /// series), continuing immediately after the end of the training data.
    /// Values are clamped to be non-negative (they are request rates).
    ///
    /// Takes `&mut self` because the graph-based models replay their forward
    /// pass on an internal tape; non-parametric models simply read state.
    fn predict(&mut self, horizon: usize) -> Result<Vec<f64>>;
}
