//! Property-based tests for the linear algebra kernels.

use ip_linalg::{
    householder_qr, least_squares, symmetric_eigen, thin_svd, LuDecomposition, Matrix,
};
use proptest::prelude::*;

fn matrix_strategy(max_dim: usize) -> impl Strategy<Value = Matrix> {
    (1..=max_dim, 1..=max_dim).prop_flat_map(|(m, n)| {
        proptest::collection::vec(-10.0f64..10.0, m * n)
            .prop_map(move |data| Matrix::from_vec(m, n, data).unwrap())
    })
}

fn square_matrix_strategy(max_dim: usize) -> impl Strategy<Value = Matrix> {
    (1..=max_dim).prop_flat_map(|n| {
        proptest::collection::vec(-10.0f64..10.0, n * n)
            .prop_map(move |data| Matrix::from_vec(n, n, data).unwrap())
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn matmul_parallel_bit_identical_to_serial(
        dims in (1usize..=20, 1usize..=20, 1usize..=20),
        seed in 0u64..1000,
        threads in 2usize..9,
    ) {
        let (m, k, n) = dims;
        let a = Matrix::from_fn(m, k, |i, j| (((i * 31 + j * 17 + seed as usize) % 97) as f64 - 48.0) / 7.0);
        let b = Matrix::from_fn(k, n, |i, j| (((i * 13 + j * 29 + seed as usize) % 89) as f64 - 44.0) / 5.0);
        let serial = a.matmul_with_threads(1, &b).unwrap();
        let par = a.matmul_with_threads(threads, &b).unwrap();
        prop_assert!(
            serial.as_slice().iter().zip(par.as_slice()).all(|(x, y)| x.to_bits() == y.to_bits()),
            "thread count {} changed bits for {}x{}x{}", threads, m, k, n
        );
    }

    #[test]
    fn a_transpose_a_parallel_bit_identical(a in matrix_strategy(10), threads in 2usize..9) {
        let serial = a.a_transpose_a_with_threads(1);
        let par = a.a_transpose_a_with_threads(threads);
        prop_assert!(
            serial.as_slice().iter().zip(par.as_slice()).all(|(x, y)| x.to_bits() == y.to_bits())
        );
    }

    #[test]
    fn svd_reconstructs_any_matrix(a in matrix_strategy(8)) {
        let svd = thin_svd(&a).unwrap();
        let rec = svd.truncated_reconstruction(svd.singular_values.len());
        let err = rec.sub(&a).unwrap().frobenius_norm();
        let scale = a.frobenius_norm().max(1.0);
        prop_assert!(err < 1e-8 * scale, "reconstruction error {} for {:?}", err, a.shape());
    }

    #[test]
    fn svd_values_nonnegative_descending(a in matrix_strategy(8)) {
        let svd = thin_svd(&a).unwrap();
        prop_assert!(svd.singular_values.iter().all(|&s| s >= 0.0));
        prop_assert!(svd.singular_values.windows(2).all(|w| w[0] >= w[1] - 1e-12));
    }

    #[test]
    fn svd_largest_value_bounds_frobenius(a in matrix_strategy(8)) {
        // ‖A‖_F² = Σ σᵢ² exactly.
        let svd = thin_svd(&a).unwrap();
        let sum_sq: f64 = svd.singular_values.iter().map(|s| s * s).sum();
        let fro2 = a.frobenius_norm().powi(2);
        prop_assert!((sum_sq - fro2).abs() < 1e-7 * fro2.max(1.0));
    }

    #[test]
    fn eigen_reconstructs_symmetrized(b in square_matrix_strategy(7)) {
        let a = b.add(&b.transpose()).unwrap().scale(0.5);
        let e = symmetric_eigen(&a).unwrap();
        let n = a.rows();
        let lambda = Matrix::from_fn(n, n, |i, j| if i == j { e.values[i] } else { 0.0 });
        let rec = e.vectors.matmul(&lambda).unwrap().matmul(&e.vectors.transpose()).unwrap();
        let err = rec.sub(&a).unwrap().frobenius_norm();
        prop_assert!(err < 1e-8 * a.frobenius_norm().max(1.0));
    }

    #[test]
    fn eigen_trace_preserved(b in square_matrix_strategy(7)) {
        let a = b.add(&b.transpose()).unwrap().scale(0.5);
        let e = symmetric_eigen(&a).unwrap();
        let trace: f64 = (0..a.rows()).map(|i| a.get(i, i)).sum();
        let sum: f64 = e.values.iter().sum();
        prop_assert!((trace - sum).abs() < 1e-8 * trace.abs().max(1.0));
    }

    #[test]
    fn qr_reconstructs(a in matrix_strategy(8)) {
        prop_assume!(a.rows() >= a.cols());
        let qr = householder_qr(&a).unwrap();
        let err = qr.q.matmul(&qr.r).unwrap().sub(&a).unwrap().frobenius_norm();
        prop_assert!(err < 1e-8 * a.frobenius_norm().max(1.0));
    }

    #[test]
    fn lu_solve_roundtrip(b in square_matrix_strategy(6), xs in proptest::collection::vec(-5.0f64..5.0, 1..=6)) {
        let n = b.rows();
        prop_assume!(xs.len() >= n);
        // Make the matrix diagonally dominant so it is nonsingular.
        let mut a = b.clone();
        for i in 0..n {
            let row_sum: f64 = a.row(i).iter().map(|x| x.abs()).sum();
            a.set(i, i, a.get(i, i) + row_sum + 1.0);
        }
        let x_true = &xs[..n];
        let rhs = a.matvec(x_true).unwrap();
        let x = LuDecomposition::new(&a).unwrap().solve(&rhs).unwrap();
        for (xi, ti) in x.iter().zip(x_true) {
            prop_assert!((xi - ti).abs() < 1e-7, "{} vs {}", xi, ti);
        }
    }

    #[test]
    fn least_squares_never_beaten_by_perturbation(
        a in matrix_strategy(6),
        perturb in proptest::collection::vec(-0.5f64..0.5, 6),
        b in proptest::collection::vec(-5.0f64..5.0, 1..=6),
    ) {
        prop_assume!(a.rows() >= a.cols() && b.len() >= a.rows());
        let rhs = &b[..a.rows()];
        if let Ok(x) = least_squares(&a, rhs) {
            let res_opt: f64 = a.matvec(&x).unwrap().iter().zip(rhs).map(|(p, q)| (p - q).powi(2)).sum();
            // Any perturbed candidate must do no better.
            let x2: Vec<f64> = x.iter().zip(perturb.iter().chain(std::iter::repeat(&0.0)))
                .map(|(xi, d)| xi + d).collect();
            let res_alt: f64 = a.matvec(&x2).unwrap().iter().zip(rhs).map(|(p, q)| (p - q).powi(2)).sum();
            prop_assert!(res_opt <= res_alt + 1e-7);
        }
    }
}
