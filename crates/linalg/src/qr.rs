//! Householder QR decomposition and least squares.

use crate::{LinalgError, Matrix, Result};

/// QR decomposition `A = Q R` with `Q: m×n` (orthonormal columns) and
/// `R: n×n` upper triangular, for `m ≥ n`.
#[derive(Debug, Clone)]
pub struct QrDecomposition {
    /// Orthonormal factor (thin, m×n).
    pub q: Matrix,
    /// Upper-triangular factor (n×n).
    pub r: Matrix,
}

/// Computes the thin Householder QR of `a` (requires `rows ≥ cols`).
pub fn householder_qr(a: &Matrix) -> Result<QrDecomposition> {
    let m = a.rows();
    let n = a.cols();
    if m == 0 || n == 0 {
        return Err(LinalgError::Empty);
    }
    if m < n {
        return Err(LinalgError::DimensionMismatch {
            expected: "rows >= cols".to_string(),
            found: format!("{m}x{n}"),
        });
    }

    let mut r = a.clone();
    // Householder vectors, stored per column.
    let mut vs: Vec<Vec<f64>> = Vec::with_capacity(n);

    for k in 0..n {
        // Build the Householder vector for column k below the diagonal.
        let mut v: Vec<f64> = (k..m).map(|i| r.get(i, k)).collect();
        let alpha = -v[0].signum() * v.iter().map(|x| x * x).sum::<f64>().sqrt();
        if alpha == 0.0 {
            // Column already zero below (and at) the diagonal; identity reflector.
            vs.push(vec![0.0; m - k]);
            continue;
        }
        v[0] -= alpha;
        let vnorm2: f64 = v.iter().map(|x| x * x).sum();
        if vnorm2 == 0.0 {
            vs.push(vec![0.0; m - k]);
            continue;
        }
        // Apply the reflector H = I - 2 v vᵀ / (vᵀv) to R[k.., k..].
        for j in k..n {
            let dot: f64 = (k..m).map(|i| v[i - k] * r.get(i, j)).sum();
            let coeff = 2.0 * dot / vnorm2;
            for i in k..m {
                r.set(i, j, r.get(i, j) - coeff * v[i - k]);
            }
        }
        vs.push(v);
    }

    // Accumulate thin Q by applying the reflectors to the first n columns of I.
    let mut q = Matrix::from_fn(m, n, |i, j| if i == j { 1.0 } else { 0.0 });
    for k in (0..n).rev() {
        let v = &vs[k];
        let vnorm2: f64 = v.iter().map(|x| x * x).sum();
        if vnorm2 == 0.0 {
            continue;
        }
        for j in 0..n {
            let dot: f64 = (k..m).map(|i| v[i - k] * q.get(i, j)).sum();
            let coeff = 2.0 * dot / vnorm2;
            for i in k..m {
                q.set(i, j, q.get(i, j) - coeff * v[i - k]);
            }
        }
    }

    // Zero strictly-lower part of R and truncate to n×n.
    let r_thin = Matrix::from_fn(n, n, |i, j| if j >= i { r.get(i, j) } else { 0.0 });
    Ok(QrDecomposition { q, r: r_thin })
}

/// Solves the least-squares problem `min ‖A x − b‖₂` via QR.
///
/// Returns [`LinalgError::Singular`] when `A` is (numerically) column-rank
/// deficient.
pub fn least_squares(a: &Matrix, b: &[f64]) -> Result<Vec<f64>> {
    if a.rows() != b.len() {
        return Err(LinalgError::DimensionMismatch {
            expected: format!("b of length {}", a.rows()),
            found: format!("length {}", b.len()),
        });
    }
    let qr = householder_qr(a)?;
    let n = a.cols();
    // x solves R x = Qᵀ b.
    let qtb = qr.q.transpose_matvec(b)?;
    let mut x = vec![0.0; n];
    let scale = qr.r.max_abs().max(f64::MIN_POSITIVE);
    for i in (0..n).rev() {
        let mut s = qtb[i];
        for (rij, xj) in qr.r.row(i)[i + 1..].iter().zip(&x[i + 1..]) {
            s -= rij * xj;
        }
        let d = qr.r.get(i, i);
        if d.abs() < 1e-12 * scale {
            return Err(LinalgError::Singular);
        }
        x[i] = s / d;
    }
    Ok(x)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pseudo_random_matrix(m: usize, n: usize, mut seed: u64) -> Matrix {
        Matrix::from_fn(m, n, |_, _| {
            seed = seed
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            ((seed >> 33) as f64 / (1u64 << 31) as f64) - 1.0
        })
    }

    #[test]
    fn qr_reconstructs() {
        let a = pseudo_random_matrix(9, 4, 3);
        let qr = householder_qr(&a).unwrap();
        let err =
            qr.q.matmul(&qr.r)
                .unwrap()
                .sub(&a)
                .unwrap()
                .frobenius_norm();
        assert!(err < 1e-10, "QR reconstruction error {err}");
        // Q orthonormal columns.
        let qtq = qr.q.a_transpose_a();
        assert!(qtq.sub(&Matrix::identity(4)).unwrap().frobenius_norm() < 1e-10);
        // R upper triangular.
        for i in 0..4 {
            for j in 0..i {
                assert_eq!(qr.r.get(i, j), 0.0);
            }
        }
    }

    #[test]
    fn least_squares_exact_system() {
        // Square well-conditioned system has the exact solution.
        let a = Matrix::from_vec(2, 2, vec![2.0, 1.0, 1.0, 3.0]).unwrap();
        let x_true = [1.0, -2.0];
        let b = a.matvec(&x_true).unwrap();
        let x = least_squares(&a, &b).unwrap();
        assert!((x[0] - 1.0).abs() < 1e-10);
        assert!((x[1] + 2.0).abs() < 1e-10);
    }

    #[test]
    fn least_squares_overdetermined_linear_fit() {
        // Fit y = 2 + 3 t through noise-free samples: recover exactly.
        let ts: Vec<f64> = (0..10).map(|t| t as f64).collect();
        let a = Matrix::from_fn(10, 2, |i, j| if j == 0 { 1.0 } else { ts[i] });
        let b: Vec<f64> = ts.iter().map(|t| 2.0 + 3.0 * t).collect();
        let x = least_squares(&a, &b).unwrap();
        assert!((x[0] - 2.0).abs() < 1e-9);
        assert!((x[1] - 3.0).abs() < 1e-9);
    }

    #[test]
    fn least_squares_residual_orthogonal_to_columns() {
        let a = pseudo_random_matrix(12, 3, 17);
        let b: Vec<f64> = (0..12).map(|i| (i as f64).sin()).collect();
        let x = least_squares(&a, &b).unwrap();
        let ax = a.matvec(&x).unwrap();
        let residual: Vec<f64> = b.iter().zip(&ax).map(|(bi, ai)| bi - ai).collect();
        // Normal equations: Aᵀ r = 0 at the optimum.
        let at_r = a.transpose_matvec(&residual).unwrap();
        for v in at_r {
            assert!(v.abs() < 1e-9, "normal-equation residual {v}");
        }
    }

    #[test]
    fn rank_deficient_detected() {
        // Two identical columns.
        let a = Matrix::from_fn(5, 2, |i, _| i as f64 + 1.0);
        let b = vec![1.0; 5];
        assert!(matches!(least_squares(&a, &b), Err(LinalgError::Singular)));
    }

    #[test]
    fn wide_rejected() {
        assert!(householder_qr(&Matrix::zeros(2, 3)).is_err());
    }
}
