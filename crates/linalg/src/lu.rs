//! LU decomposition with partial pivoting, for square linear solves.

use crate::{LinalgError, Matrix, Result};

/// LU decomposition with partial pivoting: `P A = L U`.
///
/// `L` (unit lower) and `U` (upper) are packed into a single matrix; the
/// permutation is stored as a row-index map.
#[derive(Debug, Clone)]
pub struct LuDecomposition {
    lu: Matrix,
    /// `perm[i]` is the original row now living at position `i`.
    perm: Vec<usize>,
    /// Sign of the permutation, for determinants.
    sign: f64,
}

impl LuDecomposition {
    /// Factorizes a square matrix. Returns [`LinalgError::Singular`] when a
    /// pivot underflows the numerical tolerance.
    pub fn new(a: &Matrix) -> Result<Self> {
        if !a.is_square() {
            return Err(LinalgError::DimensionMismatch {
                expected: "square matrix".to_string(),
                found: format!("{}x{}", a.rows(), a.cols()),
            });
        }
        let n = a.rows();
        if n == 0 {
            return Err(LinalgError::Empty);
        }
        let mut lu = a.clone();
        let mut perm: Vec<usize> = (0..n).collect();
        let mut sign = 1.0;
        let scale = a.max_abs().max(f64::MIN_POSITIVE);

        for k in 0..n {
            // Partial pivot: largest |entry| in column k at or below row k.
            let (pivot_row, pivot_val) = (k..n)
                .map(|i| (i, lu.get(i, k).abs()))
                .max_by(|a, b| a.1.partial_cmp(&b.1).unwrap())
                .unwrap();
            if pivot_val < 1e-13 * scale {
                return Err(LinalgError::Singular);
            }
            if pivot_row != k {
                lu.swap_rows(pivot_row, k);
                perm.swap(pivot_row, k);
                sign = -sign;
            }
            let pivot = lu.get(k, k);
            for i in (k + 1)..n {
                let factor = lu.get(i, k) / pivot;
                lu.set(i, k, factor);
                for j in (k + 1)..n {
                    lu.set(i, j, lu.get(i, j) - factor * lu.get(k, j));
                }
            }
        }
        Ok(Self { lu, perm, sign })
    }

    /// Solves `A x = b`.
    pub fn solve(&self, b: &[f64]) -> Result<Vec<f64>> {
        let n = self.lu.rows();
        if b.len() != n {
            return Err(LinalgError::DimensionMismatch {
                expected: format!("b of length {n}"),
                found: format!("length {}", b.len()),
            });
        }
        // Forward substitution with permutation applied.
        let mut y = vec![0.0; n];
        for i in 0..n {
            let mut s = b[self.perm[i]];
            for (lij, yj) in self.lu.row(i)[..i].iter().zip(&y[..i]) {
                s -= lij * yj;
            }
            y[i] = s;
        }
        // Back substitution.
        let mut x = vec![0.0; n];
        for i in (0..n).rev() {
            let mut s = y[i];
            for (lij, xj) in self.lu.row(i)[i + 1..].iter().zip(&x[i + 1..]) {
                s -= lij * xj;
            }
            x[i] = s / self.lu.get(i, i);
        }
        Ok(x)
    }

    /// Determinant of the factorized matrix.
    pub fn determinant(&self) -> f64 {
        let n = self.lu.rows();
        (0..n).fold(self.sign, |acc, i| acc * self.lu.get(i, i))
    }
}

/// One-shot solve of `A x = b`.
pub fn solve(a: &Matrix, b: &[f64]) -> Result<Vec<f64>> {
    LuDecomposition::new(a)?.solve(b)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn solves_known_system() {
        // x + 2y = 5; 3x + 4y = 11  =>  x=1, y=2.
        let a = Matrix::from_vec(2, 2, vec![1.0, 2.0, 3.0, 4.0]).unwrap();
        let x = solve(&a, &[5.0, 11.0]).unwrap();
        assert!((x[0] - 1.0).abs() < 1e-12);
        assert!((x[1] - 2.0).abs() < 1e-12);
    }

    #[test]
    fn solves_with_pivoting_needed() {
        // Leading zero forces a row swap.
        let a = Matrix::from_vec(2, 2, vec![0.0, 1.0, 1.0, 0.0]).unwrap();
        let x = solve(&a, &[3.0, 7.0]).unwrap();
        assert_eq!(x, vec![7.0, 3.0]);
    }

    #[test]
    fn singular_detected() {
        let a = Matrix::from_vec(2, 2, vec![1.0, 2.0, 2.0, 4.0]).unwrap();
        assert!(matches!(
            LuDecomposition::new(&a),
            Err(LinalgError::Singular)
        ));
    }

    #[test]
    fn determinant_known() {
        let a = Matrix::from_vec(2, 2, vec![3.0, 1.0, 4.0, 2.0]).unwrap();
        let lu = LuDecomposition::new(&a).unwrap();
        assert!((lu.determinant() - 2.0).abs() < 1e-12);
        // Determinant with a pivot swap keeps its sign correct.
        let b = Matrix::from_vec(2, 2, vec![0.0, 1.0, 1.0, 0.0]).unwrap();
        assert!((LuDecomposition::new(&b).unwrap().determinant() + 1.0).abs() < 1e-12);
    }

    #[test]
    fn random_roundtrip() {
        let mut seed = 123u64;
        let mut rnd = || {
            seed = seed
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            ((seed >> 33) as f64 / (1u64 << 31) as f64) - 1.0
        };
        let n = 7;
        // Diagonally dominant matrix is guaranteed nonsingular.
        let mut a = Matrix::from_fn(n, n, |_, _| rnd());
        for i in 0..n {
            a.set(i, i, a.get(i, i) + n as f64);
        }
        let x_true: Vec<f64> = (0..n).map(|i| i as f64 - 2.5).collect();
        let b = a.matvec(&x_true).unwrap();
        let x = solve(&a, &b).unwrap();
        for (xi, ti) in x.iter().zip(&x_true) {
            assert!((xi - ti).abs() < 1e-9);
        }
    }

    #[test]
    fn shape_errors() {
        assert!(LuDecomposition::new(&Matrix::zeros(2, 3)).is_err());
        let lu = LuDecomposition::new(&Matrix::identity(2)).unwrap();
        assert!(lu.solve(&[1.0]).is_err());
    }
}
