#![warn(missing_docs)]
//! Dense linear algebra kernels used by the Intelligent Pooling reproduction.
//!
//! The Singular Spectrum Analysis forecaster ([`ip-ssa`]) needs a singular
//! value decomposition of tall Hankel trajectory matrices, and the shallow
//! neural components occasionally need least-squares solves. This crate
//! provides the minimal, dependency-free kernels for that:
//!
//! * [`Matrix`] — a row-major dense `f64` matrix with the usual algebra.
//! * [`eigen::symmetric_eigen`] — cyclic Jacobi eigendecomposition for
//!   symmetric matrices.
//! * [`svd::thin_svd`] — thin SVD via one-sided Jacobi rotations (robust for
//!   the ill-conditioned trajectory matrices SSA produces).
//! * [`qr::householder_qr`] / [`qr::least_squares`] — Householder QR and a
//!   least-squares solver built on it.
//! * [`lu::LuDecomposition`] — LU with partial pivoting for square solves.
//!
//! Everything is exact-size checked and returns [`LinalgError`] rather than
//! panicking on dimension mismatches, singularity, or non-convergence.
//!
//! ```
//! use ip_linalg::{thin_svd, Matrix};
//!
//! // A rank-1 matrix has exactly one nonzero singular value.
//! let a = Matrix::from_fn(4, 3, |i, j| (i + 1) as f64 * (j + 1) as f64);
//! let svd = thin_svd(&a).unwrap();
//! assert_eq!(svd.rank(1e-9), 1);
//! let err = svd.truncated_reconstruction(1).sub(&a).unwrap().frobenius_norm();
//! assert!(err < 1e-9);
//! ```

pub mod eigen;
pub mod lu;
pub mod matrix;
pub mod qr;
pub mod svd;

pub use eigen::{symmetric_eigen, EigenDecomposition};
pub use lu::LuDecomposition;
pub use matrix::{dot, norm2, Matrix};
pub use qr::{householder_qr, least_squares, QrDecomposition};
pub use svd::{thin_svd, Svd};

/// Errors produced by the linear algebra kernels.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum LinalgError {
    /// Operand shapes are incompatible for the requested operation.
    DimensionMismatch {
        /// Human-readable description of the expected shape relation.
        expected: String,
        /// Human-readable description of what was supplied.
        found: String,
    },
    /// The matrix is singular (or numerically singular) where a nonsingular
    /// one is required.
    Singular,
    /// An iterative method failed to converge within its sweep budget.
    NonConvergence {
        /// Number of sweeps/iterations performed before giving up.
        iterations: usize,
    },
    /// The input is empty where a nonempty matrix/vector is required.
    Empty,
}

impl std::fmt::Display for LinalgError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            LinalgError::DimensionMismatch { expected, found } => {
                write!(f, "dimension mismatch: expected {expected}, found {found}")
            }
            LinalgError::Singular => write!(f, "matrix is singular"),
            LinalgError::NonConvergence { iterations } => {
                write!(
                    f,
                    "iterative method failed to converge after {iterations} iterations"
                )
            }
            LinalgError::Empty => write!(f, "empty input"),
        }
    }
}

impl std::error::Error for LinalgError {}

/// Convenience alias for results in this crate.
pub type Result<T> = std::result::Result<T, LinalgError>;
