//! Symmetric eigendecomposition via the cyclic Jacobi method.
//!
//! The Jacobi method is slower asymptotically than Householder
//! tridiagonalization + QL, but it is simple, numerically excellent, and more
//! than fast enough for the lag-covariance matrices SSA builds (window sizes
//! of a few hundred).

use crate::{LinalgError, Matrix, Result};

/// Result of a symmetric eigendecomposition `A = V diag(λ) Vᵀ`.
#[derive(Debug, Clone)]
pub struct EigenDecomposition {
    /// Eigenvalues sorted in descending order.
    pub values: Vec<f64>,
    /// Orthonormal eigenvectors as the *columns* of this matrix, ordered to
    /// match `values`.
    pub vectors: Matrix,
}

/// Maximum number of full Jacobi sweeps before reporting non-convergence.
const MAX_SWEEPS: usize = 64;

/// Computes the eigendecomposition of a symmetric matrix.
///
/// `a` must be square and symmetric within `1e-8` relative tolerance;
/// violations return [`LinalgError::DimensionMismatch`].
pub fn symmetric_eigen(a: &Matrix) -> Result<EigenDecomposition> {
    if !a.is_square() {
        return Err(LinalgError::DimensionMismatch {
            expected: "square matrix".to_string(),
            found: format!("{}x{}", a.rows(), a.cols()),
        });
    }
    let n = a.rows();
    if n == 0 {
        return Err(LinalgError::Empty);
    }
    let scale = a.max_abs().max(1.0);
    if !a.is_symmetric(1e-8 * scale) {
        return Err(LinalgError::DimensionMismatch {
            expected: "symmetric matrix".to_string(),
            found: "asymmetric entries beyond tolerance".to_string(),
        });
    }

    let mut m = a.clone();
    let mut v = Matrix::identity(n);

    for _sweep in 0..MAX_SWEEPS {
        let off = off_diagonal_norm(&m);
        if off <= 1e-14 * scale * n as f64 {
            return Ok(finish(m, v));
        }
        for p in 0..n {
            for q in (p + 1)..n {
                let apq = m.get(p, q);
                if apq.abs() <= 1e-300 {
                    continue;
                }
                let app = m.get(p, p);
                let aqq = m.get(q, q);
                // Standard Jacobi rotation angle selection (Golub & Van Loan).
                let theta = (aqq - app) / (2.0 * apq);
                let t = if theta >= 0.0 {
                    1.0 / (theta + (1.0 + theta * theta).sqrt())
                } else {
                    1.0 / (theta - (1.0 + theta * theta).sqrt())
                };
                let c = 1.0 / (1.0 + t * t).sqrt();
                let s = t * c;

                apply_rotation(&mut m, p, q, c, s);
                rotate_columns(&mut v, p, q, c, s);
            }
        }
    }
    Err(LinalgError::NonConvergence {
        iterations: MAX_SWEEPS,
    })
}

fn off_diagonal_norm(m: &Matrix) -> f64 {
    let n = m.rows();
    let mut sum = 0.0;
    for i in 0..n {
        for j in (i + 1)..n {
            sum += 2.0 * m.get(i, j) * m.get(i, j);
        }
    }
    sum.sqrt()
}

/// Applies the two-sided rotation `Jᵀ M J` updating only the affected rows
/// and columns of the symmetric matrix `m`.
fn apply_rotation(m: &mut Matrix, p: usize, q: usize, c: f64, s: f64) {
    let n = m.rows();
    let app = m.get(p, p);
    let aqq = m.get(q, q);
    let apq = m.get(p, q);

    let new_pp = c * c * app - 2.0 * s * c * apq + s * s * aqq;
    let new_qq = s * s * app + 2.0 * s * c * apq + c * c * aqq;
    m.set(p, p, new_pp);
    m.set(q, q, new_qq);
    m.set(p, q, 0.0);
    m.set(q, p, 0.0);

    for k in 0..n {
        if k == p || k == q {
            continue;
        }
        let akp = m.get(k, p);
        let akq = m.get(k, q);
        let new_kp = c * akp - s * akq;
        let new_kq = s * akp + c * akq;
        m.set(k, p, new_kp);
        m.set(p, k, new_kp);
        m.set(k, q, new_kq);
        m.set(q, k, new_kq);
    }
}

/// Applies the rotation to the accumulated eigenvector matrix (columns p, q).
fn rotate_columns(v: &mut Matrix, p: usize, q: usize, c: f64, s: f64) {
    for k in 0..v.rows() {
        let vkp = v.get(k, p);
        let vkq = v.get(k, q);
        v.set(k, p, c * vkp - s * vkq);
        v.set(k, q, s * vkp + c * vkq);
    }
}

fn finish(m: Matrix, v: Matrix) -> EigenDecomposition {
    let n = m.rows();
    let mut order: Vec<usize> = (0..n).collect();
    let values_raw: Vec<f64> = (0..n).map(|i| m.get(i, i)).collect();
    order.sort_by(|&a, &b| values_raw[b].partial_cmp(&values_raw[a]).unwrap());

    let values: Vec<f64> = order.iter().map(|&i| values_raw[i]).collect();
    let vectors = Matrix::from_fn(n, n, |i, j| v.get(i, order[j]));
    EigenDecomposition { values, vectors }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn reconstruct(e: &EigenDecomposition) -> Matrix {
        let n = e.values.len();
        let lambda = Matrix::from_fn(n, n, |i, j| if i == j { e.values[i] } else { 0.0 });
        e.vectors
            .matmul(&lambda)
            .unwrap()
            .matmul(&e.vectors.transpose())
            .unwrap()
    }

    #[test]
    fn diagonal_matrix_eigen() {
        let a = Matrix::from_vec(3, 3, vec![3.0, 0.0, 0.0, 0.0, 1.0, 0.0, 0.0, 0.0, 2.0]).unwrap();
        let e = symmetric_eigen(&a).unwrap();
        assert_eq!(e.values, vec![3.0, 2.0, 1.0]);
    }

    #[test]
    fn known_2x2() {
        // Eigenvalues of [[2,1],[1,2]] are 3 and 1.
        let a = Matrix::from_vec(2, 2, vec![2.0, 1.0, 1.0, 2.0]).unwrap();
        let e = symmetric_eigen(&a).unwrap();
        assert!((e.values[0] - 3.0).abs() < 1e-10);
        assert!((e.values[1] - 1.0).abs() < 1e-10);
    }

    #[test]
    fn reconstruction_and_orthogonality() {
        // A fixed pseudo-random symmetric matrix.
        let n = 8;
        let mut seed = 42u64;
        let mut rnd = || {
            seed = seed
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            ((seed >> 33) as f64 / (1u64 << 31) as f64) - 1.0
        };
        let b = Matrix::from_fn(n, n, |_, _| rnd());
        let a = b.add(&b.transpose()).unwrap().scale(0.5);

        let e = symmetric_eigen(&a).unwrap();
        let err = reconstruct(&e).sub(&a).unwrap().frobenius_norm();
        assert!(err < 1e-9, "reconstruction error {err}");

        let vtv = e.vectors.a_transpose_a();
        let orth_err = vtv.sub(&Matrix::identity(n)).unwrap().frobenius_norm();
        assert!(orth_err < 1e-9, "orthogonality error {orth_err}");
    }

    #[test]
    fn values_sorted_descending() {
        let a = Matrix::from_vec(3, 3, vec![1.0, 0.5, 0.0, 0.5, 2.0, 0.3, 0.0, 0.3, 0.7]).unwrap();
        let e = symmetric_eigen(&a).unwrap();
        assert!(e.values.windows(2).all(|w| w[0] >= w[1]));
    }

    #[test]
    fn rejects_asymmetric() {
        let a = Matrix::from_vec(2, 2, vec![1.0, 5.0, 0.0, 1.0]).unwrap();
        assert!(symmetric_eigen(&a).is_err());
    }

    #[test]
    fn rejects_non_square_and_empty() {
        assert!(symmetric_eigen(&Matrix::zeros(2, 3)).is_err());
        assert!(matches!(
            symmetric_eigen(&Matrix::zeros(0, 0)),
            Err(LinalgError::Empty)
        ));
    }
}
