//! Thin singular value decomposition via one-sided Jacobi rotations.
//!
//! For a matrix `A` (m ≥ n), one-sided Jacobi orthogonalizes the columns of a
//! working copy `U ← A J₁ J₂ …`; at convergence the column norms are the
//! singular values and the accumulated rotations form `V`. This is the
//! classic Hestenes method: it avoids forming `AᵀA` explicitly (which squares
//! the condition number) and is well suited to the SSA trajectory matrices.

use crate::matrix::dot;
use crate::{LinalgError, Matrix, Result};

/// Thin SVD `A = U diag(σ) Vᵀ` with `U: m×n`, `σ: n`, `V: n×n` (for m ≥ n).
#[derive(Debug, Clone)]
pub struct Svd {
    /// Left singular vectors (columns, m×r).
    pub u: Matrix,
    /// Singular values in descending order (length r = min(m, n)).
    pub singular_values: Vec<f64>,
    /// Right singular vectors (columns, n×r).
    pub v: Matrix,
}

impl Svd {
    /// Effective numerical rank at relative tolerance `rtol`.
    pub fn rank(&self, rtol: f64) -> usize {
        let smax = self.singular_values.first().copied().unwrap_or(0.0);
        self.singular_values
            .iter()
            .filter(|&&s| s > rtol * smax)
            .count()
    }

    /// Reconstructs the rank-`k` truncation `Σᵢ σᵢ uᵢ vᵢᵀ` for `i < k`.
    pub fn truncated_reconstruction(&self, k: usize) -> Matrix {
        let m = self.u.rows();
        let n = self.v.rows();
        let k = k.min(self.singular_values.len());
        let mut out = Matrix::zeros(m, n);
        for idx in 0..k {
            let s = self.singular_values[idx];
            for i in 0..m {
                let ui = self.u.get(i, idx) * s;
                for j in 0..n {
                    out.set(i, j, out.get(i, j) + ui * self.v.get(j, idx));
                }
            }
        }
        out
    }
}

const MAX_SWEEPS: usize = 60;

/// Computes the thin SVD of `a` using one-sided Jacobi.
///
/// Handles both portrait (m ≥ n) and landscape (m < n) shapes; landscape
/// inputs are transposed internally. Zero matrices yield all-zero singular
/// values with identity-padded singular vectors.
pub fn thin_svd(a: &Matrix) -> Result<Svd> {
    if a.rows() == 0 || a.cols() == 0 {
        return Err(LinalgError::Empty);
    }
    if a.rows() >= a.cols() {
        thin_svd_portrait(a)
    } else {
        // A = U S Vᵀ  ⇔  Aᵀ = V S Uᵀ.
        let svd_t = thin_svd_portrait(&a.transpose())?;
        Ok(Svd {
            u: svd_t.v,
            singular_values: svd_t.singular_values,
            v: svd_t.u,
        })
    }
}

fn thin_svd_portrait(a: &Matrix) -> Result<Svd> {
    let m = a.rows();
    let n = a.cols();
    // Column-major working copy of A: cols[j] is column j.
    let mut cols: Vec<Vec<f64>> = (0..n).map(|j| a.col(j)).collect();
    let mut v = Matrix::identity(n);
    let scale = a.max_abs().max(f64::MIN_POSITIVE);
    let tol = 1e-15 * scale * scale * m as f64;

    let mut converged = false;
    for _sweep in 0..MAX_SWEEPS {
        let mut off = 0.0f64;
        for p in 0..n {
            for q in (p + 1)..n {
                let alpha = dot(&cols[p], &cols[p]);
                let beta = dot(&cols[q], &cols[q]);
                let gamma = dot(&cols[p], &cols[q]);
                off = off.max(gamma.abs());
                if gamma.abs() <= tol || alpha == 0.0 || beta == 0.0 {
                    continue;
                }
                // Rotation zeroing the (p,q) entry of the implicit Gram matrix.
                let zeta = (beta - alpha) / (2.0 * gamma);
                let t = zeta.signum() / (zeta.abs() + (1.0 + zeta * zeta).sqrt());
                let c = 1.0 / (1.0 + t * t).sqrt();
                let s = c * t;

                // p < q by loop construction, so the split borrow is safe.
                let (head, tail) = cols.split_at_mut(q);
                for (up, uq) in head[p].iter_mut().zip(tail[0].iter_mut()) {
                    let (u0, u1) = (*up, *uq);
                    *up = c * u0 - s * u1;
                    *uq = s * u0 + c * u1;
                }
                for i in 0..n {
                    let vp = v.get(i, p);
                    let vq = v.get(i, q);
                    v.set(i, p, c * vp - s * vq);
                    v.set(i, q, s * vp + c * vq);
                }
            }
        }
        if off <= tol {
            converged = true;
            break;
        }
    }
    if !converged {
        return Err(LinalgError::NonConvergence {
            iterations: MAX_SWEEPS,
        });
    }

    // Singular values are the column norms; normalize U's columns.
    let mut sigma: Vec<f64> = cols.iter().map(|c| dot(c, c).sqrt()).collect();
    let mut order: Vec<usize> = (0..n).collect();
    order.sort_by(|&x, &y| sigma[y].partial_cmp(&sigma[x]).unwrap());

    let mut u = Matrix::zeros(m, n);
    let mut v_sorted = Matrix::zeros(n, n);
    let mut sigma_sorted = Vec::with_capacity(n);
    for (new_j, &old_j) in order.iter().enumerate() {
        let s = sigma[old_j];
        sigma_sorted.push(s);
        if s > 0.0 {
            for (i, &cv) in cols[old_j].iter().enumerate() {
                u.set(i, new_j, cv / s);
            }
        } else {
            // Zero singular value: the left vector is arbitrary; keep zeros so
            // reconstruction is still exact.
        }
        for i in 0..n {
            v_sorted.set(i, new_j, v.get(i, old_j));
        }
    }
    sigma.clear();

    Ok(Svd {
        u,
        singular_values: sigma_sorted,
        v: v_sorted,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn reconstruct(svd: &Svd) -> Matrix {
        svd.truncated_reconstruction(svd.singular_values.len())
    }

    fn pseudo_random_matrix(m: usize, n: usize, mut seed: u64) -> Matrix {
        Matrix::from_fn(m, n, |_, _| {
            seed = seed
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            ((seed >> 33) as f64 / (1u64 << 31) as f64) - 1.0
        })
    }

    #[test]
    fn identity_svd() {
        let svd = thin_svd(&Matrix::identity(4)).unwrap();
        for s in &svd.singular_values {
            assert!((s - 1.0).abs() < 1e-12);
        }
    }

    #[test]
    fn known_diagonal() {
        let a = Matrix::from_vec(3, 2, vec![3.0, 0.0, 0.0, -2.0, 0.0, 0.0]).unwrap();
        let svd = thin_svd(&a).unwrap();
        assert!((svd.singular_values[0] - 3.0).abs() < 1e-10);
        assert!((svd.singular_values[1] - 2.0).abs() < 1e-10);
        let err = reconstruct(&svd).sub(&a).unwrap().frobenius_norm();
        assert!(err < 1e-10);
    }

    #[test]
    fn reconstruction_tall() {
        let a = pseudo_random_matrix(12, 5, 7);
        let svd = thin_svd(&a).unwrap();
        let err = reconstruct(&svd).sub(&a).unwrap().frobenius_norm();
        assert!(err < 1e-9, "reconstruction error {err}");
        // U has orthonormal columns.
        let utu = svd.u.a_transpose_a();
        assert!(utu.sub(&Matrix::identity(5)).unwrap().frobenius_norm() < 1e-9);
        // V orthogonal.
        let vtv = svd.v.a_transpose_a();
        assert!(vtv.sub(&Matrix::identity(5)).unwrap().frobenius_norm() < 1e-9);
    }

    #[test]
    fn reconstruction_wide() {
        let a = pseudo_random_matrix(4, 9, 11);
        let svd = thin_svd(&a).unwrap();
        let err = reconstruct(&svd).sub(&a).unwrap().frobenius_norm();
        assert!(err < 1e-9, "reconstruction error {err}");
    }

    #[test]
    fn rank_deficient() {
        // Rank-1 matrix: outer product.
        let u = [1.0, 2.0, 3.0, 4.0];
        let v = [2.0, -1.0, 0.5];
        let a = Matrix::from_fn(4, 3, |i, j| u[i] * v[j]);
        let svd = thin_svd(&a).unwrap();
        assert_eq!(svd.rank(1e-10), 1);
        let err = svd
            .truncated_reconstruction(1)
            .sub(&a)
            .unwrap()
            .frobenius_norm();
        assert!(err < 1e-9);
    }

    #[test]
    fn zero_matrix() {
        let a = Matrix::zeros(3, 2);
        let svd = thin_svd(&a).unwrap();
        assert!(svd.singular_values.iter().all(|&s| s == 0.0));
        assert_eq!(svd.rank(1e-10), 0);
    }

    #[test]
    fn singular_values_descending() {
        let a = pseudo_random_matrix(10, 6, 99);
        let svd = thin_svd(&a).unwrap();
        assert!(svd.singular_values.windows(2).all(|w| w[0] >= w[1]));
        assert!(svd.singular_values.iter().all(|&s| s >= 0.0));
    }

    #[test]
    fn empty_errors() {
        assert!(matches!(
            thin_svd(&Matrix::zeros(0, 3)),
            Err(LinalgError::Empty)
        ));
    }

    #[test]
    fn matches_eigen_of_gram() {
        // σᵢ² must equal eigenvalues of AᵀA.
        let a = pseudo_random_matrix(8, 4, 5);
        let svd = thin_svd(&a).unwrap();
        let gram = a.a_transpose_a();
        let eig = crate::eigen::symmetric_eigen(&gram).unwrap();
        for (s, l) in svd.singular_values.iter().zip(eig.values.iter()) {
            assert!(
                (s * s - l).abs() < 1e-8,
                "sigma^2 {} vs lambda {}",
                s * s,
                l
            );
        }
    }
}
