//! Row-major dense matrix with the algebra the rest of the workspace needs.

use crate::{LinalgError, Result};

/// A dense, row-major `f64` matrix.
///
/// Storage is a single `Vec<f64>` of length `rows * cols`; element `(i, j)`
/// lives at index `i * cols + j`. The type is deliberately simple: the
/// workloads in this workspace (SSA trajectory matrices, shallow regression
/// problems, LP tableaus) are dense and of modest size.
#[derive(Debug, Clone, PartialEq)]
pub struct Matrix {
    rows: usize,
    cols: usize,
    data: Vec<f64>,
}

impl Matrix {
    /// Creates a matrix from row-major data.
    ///
    /// Returns [`LinalgError::DimensionMismatch`] when `data.len() != rows * cols`.
    pub fn from_vec(rows: usize, cols: usize, data: Vec<f64>) -> Result<Self> {
        if data.len() != rows * cols {
            return Err(LinalgError::DimensionMismatch {
                expected: format!("{rows}x{cols} = {} elements", rows * cols),
                found: format!("{} elements", data.len()),
            });
        }
        Ok(Self { rows, cols, data })
    }

    /// Creates a zero matrix.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Self { rows, cols, data: vec![0.0; rows * cols] }
    }

    /// Creates the identity matrix of size `n`.
    pub fn identity(n: usize) -> Self {
        let mut m = Self::zeros(n, n);
        for i in 0..n {
            m.set(i, i, 1.0);
        }
        m
    }

    /// Builds a matrix by evaluating `f(i, j)` at every position.
    pub fn from_fn(rows: usize, cols: usize, mut f: impl FnMut(usize, usize) -> f64) -> Self {
        let mut data = Vec::with_capacity(rows * cols);
        for i in 0..rows {
            for j in 0..cols {
                data.push(f(i, j));
            }
        }
        Self { rows, cols, data }
    }

    /// Builds a single-column matrix from a slice.
    pub fn column_vector(v: &[f64]) -> Self {
        Self { rows: v.len(), cols: 1, data: v.to_vec() }
    }

    /// Number of rows.
    #[inline]
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    #[inline]
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// `(rows, cols)` pair.
    #[inline]
    pub fn shape(&self) -> (usize, usize) {
        (self.rows, self.cols)
    }

    /// Immutable access to the underlying row-major buffer.
    #[inline]
    pub fn as_slice(&self) -> &[f64] {
        &self.data
    }

    /// Mutable access to the underlying row-major buffer.
    #[inline]
    pub fn as_mut_slice(&mut self) -> &mut [f64] {
        &mut self.data
    }

    /// Element access. Panics on out-of-range indices (debug-friendly; all
    /// internal callers iterate within `self.shape()`).
    #[inline]
    pub fn get(&self, i: usize, j: usize) -> f64 {
        debug_assert!(i < self.rows && j < self.cols);
        self.data[i * self.cols + j]
    }

    /// Element assignment.
    #[inline]
    pub fn set(&mut self, i: usize, j: usize, v: f64) {
        debug_assert!(i < self.rows && j < self.cols);
        self.data[i * self.cols + j] = v;
    }

    /// A view of row `i` as a slice.
    #[inline]
    pub fn row(&self, i: usize) -> &[f64] {
        &self.data[i * self.cols..(i + 1) * self.cols]
    }

    /// Copies column `j` into a new vector.
    pub fn col(&self, j: usize) -> Vec<f64> {
        (0..self.rows).map(|i| self.get(i, j)).collect()
    }

    /// Matrix transpose.
    pub fn transpose(&self) -> Matrix {
        Matrix::from_fn(self.cols, self.rows, |i, j| self.get(j, i))
    }

    /// Matrix product `self * rhs`.
    pub fn matmul(&self, rhs: &Matrix) -> Result<Matrix> {
        if self.cols != rhs.rows {
            return Err(LinalgError::DimensionMismatch {
                expected: format!("lhs cols == rhs rows ({})", self.cols),
                found: format!("rhs has {} rows", rhs.rows),
            });
        }
        let mut out = Matrix::zeros(self.rows, rhs.cols);
        // i-k-j loop order keeps the inner loop contiguous in both `rhs` and
        // `out`, which matters for the larger SSA trajectory products.
        for i in 0..self.rows {
            for k in 0..self.cols {
                let a = self.get(i, k);
                if a == 0.0 {
                    continue;
                }
                let rhs_row = rhs.row(k);
                let out_row = &mut out.data[i * rhs.cols..(i + 1) * rhs.cols];
                for (o, &r) in out_row.iter_mut().zip(rhs_row.iter()) {
                    *o += a * r;
                }
            }
        }
        Ok(out)
    }

    /// Matrix-vector product `self * v`.
    pub fn matvec(&self, v: &[f64]) -> Result<Vec<f64>> {
        if self.cols != v.len() {
            return Err(LinalgError::DimensionMismatch {
                expected: format!("vector of length {}", self.cols),
                found: format!("length {}", v.len()),
            });
        }
        Ok((0..self.rows)
            .map(|i| self.row(i).iter().zip(v).map(|(a, b)| a * b).sum())
            .collect())
    }

    /// Element-wise sum.
    pub fn add(&self, rhs: &Matrix) -> Result<Matrix> {
        self.zip_with(rhs, |a, b| a + b)
    }

    /// Element-wise difference.
    pub fn sub(&self, rhs: &Matrix) -> Result<Matrix> {
        self.zip_with(rhs, |a, b| a - b)
    }

    /// Scales every element by `s`.
    pub fn scale(&self, s: f64) -> Matrix {
        Matrix {
            rows: self.rows,
            cols: self.cols,
            data: self.data.iter().map(|x| x * s).collect(),
        }
    }

    fn zip_with(&self, rhs: &Matrix, f: impl Fn(f64, f64) -> f64) -> Result<Matrix> {
        if self.shape() != rhs.shape() {
            return Err(LinalgError::DimensionMismatch {
                expected: format!("{}x{}", self.rows, self.cols),
                found: format!("{}x{}", rhs.rows, rhs.cols),
            });
        }
        Ok(Matrix {
            rows: self.rows,
            cols: self.cols,
            data: self.data.iter().zip(&rhs.data).map(|(&a, &b)| f(a, b)).collect(),
        })
    }

    /// Frobenius norm.
    pub fn frobenius_norm(&self) -> f64 {
        self.data.iter().map(|x| x * x).sum::<f64>().sqrt()
    }

    /// Maximum absolute element.
    pub fn max_abs(&self) -> f64 {
        self.data.iter().fold(0.0f64, |m, x| m.max(x.abs()))
    }

    /// `true` when the matrix is square.
    #[inline]
    pub fn is_square(&self) -> bool {
        self.rows == self.cols
    }

    /// Checks symmetry within tolerance `tol`.
    pub fn is_symmetric(&self, tol: f64) -> bool {
        if !self.is_square() {
            return false;
        }
        for i in 0..self.rows {
            for j in (i + 1)..self.cols {
                if (self.get(i, j) - self.get(j, i)).abs() > tol {
                    return false;
                }
            }
        }
        true
    }

    /// Swaps rows `a` and `b` in place.
    pub fn swap_rows(&mut self, a: usize, b: usize) {
        if a == b {
            return;
        }
        let cols = self.cols;
        let (lo, hi) = if a < b { (a, b) } else { (b, a) };
        let (head, tail) = self.data.split_at_mut(hi * cols);
        head[lo * cols..(lo + 1) * cols].swap_with_slice(&mut tail[..cols]);
    }
}

/// Dot product of two equally sized slices.
pub fn dot(a: &[f64], b: &[f64]) -> f64 {
    debug_assert_eq!(a.len(), b.len());
    a.iter().zip(b).map(|(x, y)| x * y).sum()
}

/// Euclidean norm of a slice.
pub fn norm2(v: &[f64]) -> f64 {
    dot(v, v).sqrt()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn from_vec_checks_length() {
        assert!(Matrix::from_vec(2, 2, vec![1.0, 2.0, 3.0]).is_err());
        assert!(Matrix::from_vec(2, 2, vec![1.0, 2.0, 3.0, 4.0]).is_ok());
    }

    #[test]
    fn identity_matmul_is_noop() {
        let a = Matrix::from_fn(3, 3, |i, j| (i * 3 + j) as f64);
        let i = Matrix::identity(3);
        assert_eq!(a.matmul(&i).unwrap(), a);
        assert_eq!(i.matmul(&a).unwrap(), a);
    }

    #[test]
    fn matmul_known_product() {
        let a = Matrix::from_vec(2, 3, vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0]).unwrap();
        let b = Matrix::from_vec(3, 2, vec![7.0, 8.0, 9.0, 10.0, 11.0, 12.0]).unwrap();
        let c = a.matmul(&b).unwrap();
        assert_eq!(c, Matrix::from_vec(2, 2, vec![58.0, 64.0, 139.0, 154.0]).unwrap());
    }

    #[test]
    fn matmul_shape_mismatch_errors() {
        let a = Matrix::zeros(2, 3);
        let b = Matrix::zeros(2, 3);
        assert!(matches!(a.matmul(&b), Err(LinalgError::DimensionMismatch { .. })));
    }

    #[test]
    fn transpose_involution() {
        let a = Matrix::from_fn(3, 5, |i, j| (i as f64) * 10.0 + j as f64);
        assert_eq!(a.transpose().transpose(), a);
    }

    #[test]
    fn matvec_matches_matmul() {
        let a = Matrix::from_fn(3, 4, |i, j| (i + j) as f64);
        let v = vec![1.0, -1.0, 2.0, 0.5];
        let via_matmul = a.matmul(&Matrix::column_vector(&v)).unwrap();
        let direct = a.matvec(&v).unwrap();
        assert_eq!(via_matmul.col(0), direct);
    }

    #[test]
    fn swap_rows_swaps() {
        let mut a = Matrix::from_vec(3, 2, vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0]).unwrap();
        a.swap_rows(0, 2);
        assert_eq!(a.row(0), &[5.0, 6.0]);
        assert_eq!(a.row(2), &[1.0, 2.0]);
        // Swapping a row with itself must be a no-op.
        a.swap_rows(1, 1);
        assert_eq!(a.row(1), &[3.0, 4.0]);
    }

    #[test]
    fn symmetry_check() {
        let s = Matrix::from_vec(2, 2, vec![1.0, 2.0, 2.0, 5.0]).unwrap();
        assert!(s.is_symmetric(1e-12));
        let ns = Matrix::from_vec(2, 2, vec![1.0, 2.0, 2.1, 5.0]).unwrap();
        assert!(!ns.is_symmetric(1e-3));
        assert!(!Matrix::zeros(2, 3).is_symmetric(1.0));
    }

    #[test]
    fn norms() {
        let a = Matrix::from_vec(2, 2, vec![3.0, 0.0, 0.0, 4.0]).unwrap();
        assert!((a.frobenius_norm() - 5.0).abs() < 1e-12);
        assert_eq!(a.max_abs(), 4.0);
    }
}
