//! Row-major dense matrix with the algebra the rest of the workspace needs.

use crate::{LinalgError, Result};

/// A dense, row-major `f64` matrix.
///
/// Storage is a single `Vec<f64>` of length `rows * cols`; element `(i, j)`
/// lives at index `i * cols + j`. The type is deliberately simple: the
/// workloads in this workspace (SSA trajectory matrices, shallow regression
/// problems, LP tableaus) are dense and of modest size.
#[derive(Debug, Clone, PartialEq)]
pub struct Matrix {
    rows: usize,
    cols: usize,
    data: Vec<f64>,
}

impl Matrix {
    /// Creates a matrix from row-major data.
    ///
    /// Returns [`LinalgError::DimensionMismatch`] when `data.len() != rows * cols`.
    pub fn from_vec(rows: usize, cols: usize, data: Vec<f64>) -> Result<Self> {
        if data.len() != rows * cols {
            return Err(LinalgError::DimensionMismatch {
                expected: format!("{rows}x{cols} = {} elements", rows * cols),
                found: format!("{} elements", data.len()),
            });
        }
        Ok(Self { rows, cols, data })
    }

    /// Creates a zero matrix.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Self {
            rows,
            cols,
            data: vec![0.0; rows * cols],
        }
    }

    /// Creates the identity matrix of size `n`.
    pub fn identity(n: usize) -> Self {
        let mut m = Self::zeros(n, n);
        for i in 0..n {
            m.set(i, i, 1.0);
        }
        m
    }

    /// Builds a matrix by evaluating `f(i, j)` at every position.
    pub fn from_fn(rows: usize, cols: usize, mut f: impl FnMut(usize, usize) -> f64) -> Self {
        let mut data = Vec::with_capacity(rows * cols);
        for i in 0..rows {
            for j in 0..cols {
                data.push(f(i, j));
            }
        }
        Self { rows, cols, data }
    }

    /// Builds a single-column matrix from a slice.
    pub fn column_vector(v: &[f64]) -> Self {
        Self {
            rows: v.len(),
            cols: 1,
            data: v.to_vec(),
        }
    }

    /// Number of rows.
    #[inline]
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    #[inline]
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// `(rows, cols)` pair.
    #[inline]
    pub fn shape(&self) -> (usize, usize) {
        (self.rows, self.cols)
    }

    /// Immutable access to the underlying row-major buffer.
    #[inline]
    pub fn as_slice(&self) -> &[f64] {
        &self.data
    }

    /// Mutable access to the underlying row-major buffer.
    #[inline]
    pub fn as_mut_slice(&mut self) -> &mut [f64] {
        &mut self.data
    }

    /// Element access. Panics on out-of-range indices (debug-friendly; all
    /// internal callers iterate within `self.shape()`).
    #[inline]
    pub fn get(&self, i: usize, j: usize) -> f64 {
        debug_assert!(i < self.rows && j < self.cols);
        self.data[i * self.cols + j]
    }

    /// Element assignment.
    #[inline]
    pub fn set(&mut self, i: usize, j: usize, v: f64) {
        debug_assert!(i < self.rows && j < self.cols);
        self.data[i * self.cols + j] = v;
    }

    /// A view of row `i` as a slice.
    #[inline]
    pub fn row(&self, i: usize) -> &[f64] {
        &self.data[i * self.cols..(i + 1) * self.cols]
    }

    /// Copies column `j` into a new vector.
    pub fn col(&self, j: usize) -> Vec<f64> {
        (0..self.rows).map(|i| self.get(i, j)).collect()
    }

    /// Matrix transpose.
    pub fn transpose(&self) -> Matrix {
        Matrix::from_fn(self.cols, self.rows, |i, j| self.get(j, i))
    }

    /// Matrix product `self * rhs`.
    ///
    /// Cache-blocked kernel: `rhs` is transposed once into a contiguous
    /// panel so every output element is a unit-stride dot product, and the
    /// output is tiled `MATMUL_BLOCK × MATMUL_BLOCK` so the `rhs` panel rows
    /// of a tile stay cache-resident across the tile's `lhs` rows. Row
    /// blocks are computed in parallel (see [`ip-par`'s determinism
    /// contract](../../par)): each output element is one full-length dot
    /// accumulated in ascending `k`, so results are bit-identical for any
    /// thread count, including the serial path.
    pub fn matmul(&self, rhs: &Matrix) -> Result<Matrix> {
        self.matmul_with_threads(ip_par::num_threads(), rhs)
    }

    /// [`Matrix::matmul`] with an explicit thread count (scaling benches and
    /// bit-identity tests).
    pub fn matmul_with_threads(&self, threads: usize, rhs: &Matrix) -> Result<Matrix> {
        if self.cols != rhs.rows {
            return Err(LinalgError::DimensionMismatch {
                expected: format!("lhs cols == rhs rows ({})", self.cols),
                found: format!("rhs has {} rows", rhs.rows),
            });
        }
        let (m, n) = (self.rows, rhs.cols);
        let bt = rhs.transpose();
        let mut out = Matrix::zeros(m, n);
        ip_par::par_chunks_mut_with(threads, &mut out.data, MATMUL_BLOCK * n, |bi, rows| {
            let i0 = bi * MATMUL_BLOCK;
            block_matmul_panel(self, &bt, i0, rows, n);
        });
        Ok(out)
    }

    /// Fused Gram product `selfᵀ * self` without materializing the general
    /// product: one transpose panel, dot products over its rows, and the
    /// strict upper triangle mirrored from the (parallel-computed) lower
    /// work. Exactly symmetric by construction — `out[i][j]` and `out[j][i]`
    /// are the same dot product — which the Jacobi eigensolver's symmetry
    /// check would otherwise only get within rounding.
    pub fn a_transpose_a(&self) -> Matrix {
        self.a_transpose_a_with_threads(ip_par::num_threads())
    }

    /// [`Matrix::a_transpose_a`] with an explicit thread count.
    pub fn a_transpose_a_with_threads(&self, threads: usize) -> Matrix {
        let n = self.cols;
        let at = self.transpose();
        // Row i's tail (j ≥ i): each task owns whole rows of the triangle,
        // so ordering is deterministic and no element is computed twice.
        let rows: Vec<usize> = (0..n).collect();
        let tails: Vec<Vec<f64>> = ip_par::par_map_with(threads, &rows, |&i| {
            let ai = at.row(i);
            (i..n).map(|j| dot(ai, at.row(j))).collect()
        });
        let mut out = Matrix::zeros(n, n);
        for (i, tail) in tails.iter().enumerate() {
            for (dj, &v) in tail.iter().enumerate() {
                let j = i + dj;
                out.set(i, j, v);
                out.set(j, i, v);
            }
        }
        out
    }

    /// Fused `selfᵀ * v` — equivalent to `self.transpose().matvec(v)` with
    /// no transpose allocation. Accumulates `v[i] * row(i)` in ascending
    /// `i`, keeping every pass unit-stride.
    pub fn transpose_matvec(&self, v: &[f64]) -> Result<Vec<f64>> {
        if self.rows != v.len() {
            return Err(LinalgError::DimensionMismatch {
                expected: format!("vector of length {}", self.rows),
                found: format!("length {}", v.len()),
            });
        }
        let mut out = vec![0.0; self.cols];
        for (i, &vi) in v.iter().enumerate() {
            for (o, &a) in out.iter_mut().zip(self.row(i)) {
                *o += vi * a;
            }
        }
        Ok(out)
    }

    /// Matrix-vector product `self * v`.
    pub fn matvec(&self, v: &[f64]) -> Result<Vec<f64>> {
        if self.cols != v.len() {
            return Err(LinalgError::DimensionMismatch {
                expected: format!("vector of length {}", self.cols),
                found: format!("length {}", v.len()),
            });
        }
        Ok((0..self.rows)
            .map(|i| self.row(i).iter().zip(v).map(|(a, b)| a * b).sum())
            .collect())
    }

    /// Element-wise sum.
    pub fn add(&self, rhs: &Matrix) -> Result<Matrix> {
        self.zip_with(rhs, |a, b| a + b)
    }

    /// Element-wise difference.
    pub fn sub(&self, rhs: &Matrix) -> Result<Matrix> {
        self.zip_with(rhs, |a, b| a - b)
    }

    /// Scales every element by `s`.
    pub fn scale(&self, s: f64) -> Matrix {
        Matrix {
            rows: self.rows,
            cols: self.cols,
            data: self.data.iter().map(|x| x * s).collect(),
        }
    }

    fn zip_with(&self, rhs: &Matrix, f: impl Fn(f64, f64) -> f64) -> Result<Matrix> {
        if self.shape() != rhs.shape() {
            return Err(LinalgError::DimensionMismatch {
                expected: format!("{}x{}", self.rows, self.cols),
                found: format!("{}x{}", rhs.rows, rhs.cols),
            });
        }
        Ok(Matrix {
            rows: self.rows,
            cols: self.cols,
            data: self
                .data
                .iter()
                .zip(&rhs.data)
                .map(|(&a, &b)| f(a, b))
                .collect(),
        })
    }

    /// Frobenius norm.
    pub fn frobenius_norm(&self) -> f64 {
        self.data.iter().map(|x| x * x).sum::<f64>().sqrt()
    }

    /// Maximum absolute element.
    pub fn max_abs(&self) -> f64 {
        self.data.iter().fold(0.0f64, |m, x| m.max(x.abs()))
    }

    /// `true` when the matrix is square.
    #[inline]
    pub fn is_square(&self) -> bool {
        self.rows == self.cols
    }

    /// Checks symmetry within tolerance `tol`.
    pub fn is_symmetric(&self, tol: f64) -> bool {
        if !self.is_square() {
            return false;
        }
        for i in 0..self.rows {
            for j in (i + 1)..self.cols {
                if (self.get(i, j) - self.get(j, i)).abs() > tol {
                    return false;
                }
            }
        }
        true
    }

    /// Swaps rows `a` and `b` in place.
    pub fn swap_rows(&mut self, a: usize, b: usize) {
        if a == b {
            return;
        }
        let cols = self.cols;
        let (lo, hi) = if a < b { (a, b) } else { (b, a) };
        let (head, tail) = self.data.split_at_mut(hi * cols);
        head[lo * cols..(lo + 1) * cols].swap_with_slice(&mut tail[..cols]);
    }
}

/// Output tile edge for the blocked matmul: 64×64 `f64` tiles keep one
/// tile's worth of transposed-`rhs` panel rows (64 × K doubles for the K
/// this workspace sees) inside L2 while the `lhs` row streams through L1.
const MATMUL_BLOCK: usize = 64;

/// Computes output rows `[i0, i0 + rows/n)` of `a * btᵀ` into `rows`
/// (a borrow of those output rows), tiled over `bt`'s rows.
fn block_matmul_panel(a: &Matrix, bt: &Matrix, i0: usize, rows: &mut [f64], n: usize) {
    let block_rows = rows.len().checked_div(n).unwrap_or(0);
    for j0 in (0..n).step_by(MATMUL_BLOCK) {
        let j1 = (j0 + MATMUL_BLOCK).min(n);
        for di in 0..block_rows {
            let ai = a.row(i0 + di);
            let kk = ai.len();
            let out_row = &mut rows[di * n..(di + 1) * n];
            // Register-block 4 output columns: four independent ascending-k
            // accumulators break the single-dot dependence chain and reuse
            // each `ai[k]` load four times.
            let mut j = j0;
            while j + 4 <= j1 {
                let b0 = &bt.row(j)[..kk];
                let b1 = &bt.row(j + 1)[..kk];
                let b2 = &bt.row(j + 2)[..kk];
                let b3 = &bt.row(j + 3)[..kk];
                let (mut s0, mut s1, mut s2, mut s3) = (0.0, 0.0, 0.0, 0.0);
                for (k, &av) in ai.iter().enumerate() {
                    s0 += av * b0[k];
                    s1 += av * b1[k];
                    s2 += av * b2[k];
                    s3 += av * b3[k];
                }
                out_row[j] = s0;
                out_row[j + 1] = s1;
                out_row[j + 2] = s2;
                out_row[j + 3] = s3;
                j += 4;
            }
            while j < j1 {
                out_row[j] = dot(ai, bt.row(j));
                j += 1;
            }
        }
    }
}

/// Dot product of two equally sized slices.
pub fn dot(a: &[f64], b: &[f64]) -> f64 {
    debug_assert_eq!(a.len(), b.len());
    a.iter().zip(b).map(|(x, y)| x * y).sum()
}

/// Euclidean norm of a slice.
pub fn norm2(v: &[f64]) -> f64 {
    dot(v, v).sqrt()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn from_vec_checks_length() {
        assert!(Matrix::from_vec(2, 2, vec![1.0, 2.0, 3.0]).is_err());
        assert!(Matrix::from_vec(2, 2, vec![1.0, 2.0, 3.0, 4.0]).is_ok());
    }

    #[test]
    fn identity_matmul_is_noop() {
        let a = Matrix::from_fn(3, 3, |i, j| (i * 3 + j) as f64);
        let i = Matrix::identity(3);
        assert_eq!(a.matmul(&i).unwrap(), a);
        assert_eq!(i.matmul(&a).unwrap(), a);
    }

    #[test]
    fn matmul_known_product() {
        let a = Matrix::from_vec(2, 3, vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0]).unwrap();
        let b = Matrix::from_vec(3, 2, vec![7.0, 8.0, 9.0, 10.0, 11.0, 12.0]).unwrap();
        let c = a.matmul(&b).unwrap();
        assert_eq!(
            c,
            Matrix::from_vec(2, 2, vec![58.0, 64.0, 139.0, 154.0]).unwrap()
        );
    }

    #[test]
    fn matmul_shape_mismatch_errors() {
        let a = Matrix::zeros(2, 3);
        let b = Matrix::zeros(2, 3);
        assert!(matches!(
            a.matmul(&b),
            Err(LinalgError::DimensionMismatch { .. })
        ));
    }

    #[test]
    fn transpose_involution() {
        let a = Matrix::from_fn(3, 5, |i, j| (i as f64) * 10.0 + j as f64);
        assert_eq!(a.transpose().transpose(), a);
    }

    #[test]
    fn matvec_matches_matmul() {
        let a = Matrix::from_fn(3, 4, |i, j| (i + j) as f64);
        let v = vec![1.0, -1.0, 2.0, 0.5];
        let via_matmul = a.matmul(&Matrix::column_vector(&v)).unwrap();
        let direct = a.matvec(&v).unwrap();
        assert_eq!(via_matmul.col(0), direct);
    }

    #[test]
    fn swap_rows_swaps() {
        let mut a = Matrix::from_vec(3, 2, vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0]).unwrap();
        a.swap_rows(0, 2);
        assert_eq!(a.row(0), &[5.0, 6.0]);
        assert_eq!(a.row(2), &[1.0, 2.0]);
        // Swapping a row with itself must be a no-op.
        a.swap_rows(1, 1);
        assert_eq!(a.row(1), &[3.0, 4.0]);
    }

    #[test]
    fn symmetry_check() {
        let s = Matrix::from_vec(2, 2, vec![1.0, 2.0, 2.0, 5.0]).unwrap();
        assert!(s.is_symmetric(1e-12));
        let ns = Matrix::from_vec(2, 2, vec![1.0, 2.0, 2.1, 5.0]).unwrap();
        assert!(!ns.is_symmetric(1e-3));
        assert!(!Matrix::zeros(2, 3).is_symmetric(1.0));
    }

    /// Reference textbook triple loop for validating the blocked kernel.
    fn naive_matmul(a: &Matrix, b: &Matrix) -> Matrix {
        Matrix::from_fn(a.rows(), b.cols(), |i, j| {
            (0..a.cols()).map(|k| a.get(i, k) * b.get(k, j)).sum()
        })
    }

    #[test]
    fn blocked_matmul_matches_naive_across_block_boundaries() {
        // Sizes straddling the 64-wide tile: below, at, and just above.
        for (m, k, n) in [
            (1, 1, 1),
            (3, 5, 2),
            (63, 64, 65),
            (64, 64, 64),
            (70, 33, 67),
        ] {
            let a = Matrix::from_fn(m, k, |i, j| ((i * 7 + j * 3) % 11) as f64 - 5.0);
            let b = Matrix::from_fn(k, n, |i, j| ((i * 5 + j * 2) % 13) as f64 - 6.0);
            let got = a.matmul(&b).unwrap();
            let want = naive_matmul(&a, &b);
            assert!(
                got.sub(&want).unwrap().max_abs() < 1e-9,
                "mismatch at {m}x{k}x{n}"
            );
        }
    }

    #[test]
    fn matmul_bit_identical_across_thread_counts() {
        let a = Matrix::from_fn(97, 41, |i, j| ((i * j) as f64).sin());
        let b = Matrix::from_fn(41, 73, |i, j| ((i + 2 * j) as f64).cos());
        let serial = a.matmul_with_threads(1, &b).unwrap();
        for threads in [2, 3, 4, 8] {
            let par = a.matmul_with_threads(threads, &b).unwrap();
            assert!(
                serial
                    .as_slice()
                    .iter()
                    .zip(par.as_slice())
                    .all(|(x, y)| x.to_bits() == y.to_bits()),
                "thread count {threads} changed bits"
            );
        }
    }

    #[test]
    fn a_transpose_a_matches_explicit_product() {
        let a = Matrix::from_fn(29, 13, |i, j| ((i * 3 + j) as f64).sin());
        let fused = a.a_transpose_a();
        let explicit = naive_matmul(&a.transpose(), &a);
        assert!(fused.sub(&explicit).unwrap().max_abs() < 1e-9);
        // Exactly symmetric by construction, and thread-count independent.
        for i in 0..fused.rows() {
            for j in 0..fused.cols() {
                assert_eq!(fused.get(i, j).to_bits(), fused.get(j, i).to_bits());
            }
        }
        let serial = a.a_transpose_a_with_threads(1);
        assert_eq!(serial, fused.clone());
        assert_eq!(a.a_transpose_a_with_threads(4), serial);
    }

    #[test]
    fn transpose_matvec_matches_explicit() {
        let a = Matrix::from_fn(17, 9, |i, j| ((i + j * j) as f64).cos());
        let v: Vec<f64> = (0..17).map(|i| (i as f64) * 0.25 - 2.0).collect();
        let fused = a.transpose_matvec(&v).unwrap();
        let explicit = a.transpose().matvec(&v).unwrap();
        assert!(fused
            .iter()
            .zip(&explicit)
            .all(|(x, y)| (x - y).abs() < 1e-12));
        assert!(a.transpose_matvec(&[1.0]).is_err());
    }

    #[test]
    fn norms() {
        let a = Matrix::from_vec(2, 2, vec![3.0, 0.0, 0.0, 4.0]).unwrap();
        assert!((a.frobenius_norm() - 5.0).abs() < 1e-12);
        assert_eq!(a.max_abs(), 4.0);
    }
}
