//! Scenario/fault specs: the `(name, seed, params, faults)` quadruple a
//! run is reproduced from, and its JSON form.

use crate::catalog;
use crate::scenario::Scenario;
use crate::{ChaosError, Result};
use serde::Content;
use std::collections::BTreeMap;

/// The six injectable fault kinds, as spec strings (matching
/// [`ip_sim::FaultKind::name`]).
pub(crate) const FAULT_KINDS: &[&str] = &[
    "worker_lease_expiry",
    "arbitrator_partition",
    "config_corruption",
    "config_stale",
    "telemetry_lag",
    "telemetry_dropout",
];

/// One fault in a spec's schedule, before compilation: absolute logical
/// seconds, a kind string, and the kind's window/lag arguments.
#[derive(Debug, Clone, PartialEq)]
pub struct FaultSpec {
    /// Logical time (seconds) the fault fires.
    pub at: u64,
    /// Fault kind (one of [`ip_sim::FaultKind::name`]'s values).
    pub kind: String,
    /// Target pool name; `None` lets the scenario's seeded RNG pick one.
    pub pool: Option<String>,
    /// Window end for `arbitrator_partition` / `telemetry_lag` /
    /// `telemetry_dropout`.
    pub until_secs: Option<u64>,
    /// Telemetry lag depth for `telemetry_lag`.
    pub lag_secs: Option<u64>,
}

/// A scenario spec: everything needed to reproduce a chaos run
/// bit-for-bit. Build one from a catalog name ([`ScenarioSpec::by_name`])
/// or a JSON document ([`ScenarioSpec::from_json`]), then
/// [`compile`](ScenarioSpec::compile) it.
#[derive(Debug, Clone, PartialEq)]
pub struct ScenarioSpec {
    /// Catalog scenario name.
    pub name: String,
    /// Seed for every random choice the scenario makes (pool selection,
    /// per-pool jitter, default fault placement).
    pub seed: u64,
    /// Parameter overrides; unset parameters take catalog defaults.
    pub params: BTreeMap<String, f64>,
    /// Explicit fault schedule. `None` = the scenario's default schedule;
    /// `Some(vec![])` = run the demand transform with no faults at all.
    pub faults: Option<Vec<FaultSpec>>,
}

fn spec_err(msg: impl Into<String>) -> ChaosError {
    ChaosError::BadSpec(msg.into())
}

fn expect_u64(doc: &Content, key: &str, ctx: &str) -> Result<Option<u64>> {
    match doc.field(key) {
        None | Some(Content::Null) => Ok(None),
        Some(v) => v
            .as_u64()
            .map(Some)
            .ok_or_else(|| spec_err(format!("{ctx}: {key:?} must be a non-negative integer"))),
    }
}

fn expect_str(doc: &Content, key: &str, ctx: &str) -> Result<Option<String>> {
    match doc.field(key) {
        None | Some(Content::Null) => Ok(None),
        Some(Content::Str(s)) => Ok(Some(s.clone())),
        Some(_) => Err(spec_err(format!("{ctx}: {key:?} must be a string"))),
    }
}

fn reject_unknown_keys(doc: &Content, allowed: &[&str], ctx: &str) -> Result<()> {
    if let Content::Map(entries) = doc {
        for (key, _) in entries {
            if !allowed.contains(&key.as_str()) {
                return Err(spec_err(format!(
                    "{ctx}: unknown key {key:?} (allowed: {})",
                    allowed.join(", ")
                )));
            }
        }
    }
    Ok(())
}

impl ScenarioSpec {
    /// A spec for catalog scenario `name` — or a `+`-joined compound like
    /// `diurnal-ramp+flash-crowd` — with default parameters and the
    /// scenario's default fault schedule. Unknown component names fail
    /// with a near-miss suggestion.
    pub fn by_name(name: &str, seed: u64) -> Result<Self> {
        validate_name(name)?;
        Ok(Self {
            name: name.to_string(),
            seed,
            params: BTreeMap::new(),
            faults: None,
        })
    }

    /// Parses the JSON spec form (see the crate docs for the shape).
    /// Unknown keys, unknown fault kinds, and malformed windows are
    /// rejected here so typos fail loudly before anything runs.
    pub fn from_json(text: &str) -> Result<Self> {
        let doc: Content =
            serde_json::from_str(text).map_err(|e| spec_err(format!("not valid JSON: {e}")))?;
        if !matches!(doc, Content::Map(_)) {
            return Err(spec_err("top level must be a JSON object"));
        }
        reject_unknown_keys(&doc, &["name", "seed", "params", "faults"], "spec")?;
        let name =
            expect_str(&doc, "name", "spec")?.ok_or_else(|| spec_err("spec: missing \"name\""))?;
        validate_name(&name)?;
        let seed = expect_u64(&doc, "seed", "spec")?.unwrap_or(0);

        let mut params = BTreeMap::new();
        match doc.field("params") {
            None | Some(Content::Null) => {}
            Some(Content::Map(entries)) => {
                for (key, value) in entries {
                    let v = value
                        .as_f64()
                        .ok_or_else(|| spec_err(format!("params: {key:?} must be a number")))?;
                    params.insert(key.clone(), v);
                }
            }
            Some(_) => return Err(spec_err("spec: \"params\" must be an object")),
        }

        let faults = match doc.field("faults") {
            None | Some(Content::Null) => None,
            Some(Content::Seq(items)) => {
                let mut out = Vec::with_capacity(items.len());
                for (i, entry) in items.iter().enumerate() {
                    out.push(parse_fault(entry, &format!("faults[{i}]"))?);
                }
                Some(out)
            }
            Some(_) => return Err(spec_err("spec: \"faults\" must be an array")),
        };

        Ok(Self {
            name,
            seed,
            params,
            faults,
        })
    }

    /// Validates the spec against the catalog (parameter names, fault
    /// windows) and produces a runnable [`Scenario`].
    pub fn compile(self) -> Result<Scenario> {
        Scenario::from_spec(self)
    }
}

/// Every `+`-separated component must be a catalog scenario.
fn validate_name(name: &str) -> Result<()> {
    for component in name.split('+') {
        let component = component.trim();
        if component.is_empty() {
            return Err(spec_err(format!(
                "compound scenario {name:?} has an empty component"
            )));
        }
        if catalog::find(component).is_none() {
            return Err(ChaosError::UnknownScenario {
                suggestion: catalog::suggest(component).map(str::to_string),
                name: component.to_string(),
            });
        }
    }
    Ok(())
}

fn parse_fault(doc: &Content, ctx: &str) -> Result<FaultSpec> {
    if !matches!(doc, Content::Map(_)) {
        return Err(spec_err(format!("{ctx}: must be a JSON object")));
    }
    reject_unknown_keys(doc, &["at", "kind", "pool", "until_secs", "lag_secs"], ctx)?;
    let at =
        expect_u64(doc, "at", ctx)?.ok_or_else(|| spec_err(format!("{ctx}: missing \"at\"")))?;
    let kind = expect_str(doc, "kind", ctx)?
        .ok_or_else(|| spec_err(format!("{ctx}: missing \"kind\"")))?;
    if !FAULT_KINDS.contains(&kind.as_str()) {
        let near = FAULT_KINDS
            .iter()
            .map(|k| (crate::catalog::levenshtein(&kind, k), *k))
            .min()
            .filter(|&(d, _)| d <= 3)
            .map(|(_, k)| format!(" (did you mean {k:?}?)"))
            .unwrap_or_default();
        return Err(spec_err(format!(
            "{ctx}: unknown fault kind {kind:?}{near}"
        )));
    }
    Ok(FaultSpec {
        at,
        kind,
        pool: expect_str(doc, "pool", ctx)?,
        until_secs: expect_u64(doc, "until_secs", ctx)?,
        lag_secs: expect_u64(doc, "lag_secs", ctx)?,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn by_name_rejects_unknowns_with_a_suggestion() {
        assert!(ScenarioSpec::by_name("flash-crowd", 1).is_ok());
        let err = ScenarioSpec::by_name("flash-crwd", 1).unwrap_err();
        assert_eq!(
            err,
            ChaosError::UnknownScenario {
                name: "flash-crwd".into(),
                suggestion: Some("flash-crowd".into()),
            }
        );
        assert!(err.to_string().contains("did you mean \"flash-crowd\"?"));
        let err = ScenarioSpec::by_name("nope", 1).unwrap_err();
        assert!(err.to_string().contains("--list-scenarios"), "{err}");
    }

    #[test]
    fn json_spec_round_trips_params_and_faults() {
        let spec = ScenarioSpec::from_json(
            r#"{
              "name": "regional-failover", "seed": 9,
              "params": {"drain_frac": 0.5},
              "faults": [
                {"at": 600, "kind": "arbitrator_partition", "until_secs": 1800},
                {"at": 900, "kind": "telemetry_lag", "until_secs": 2400,
                 "lag_secs": 600, "pool": "east"}
              ]
            }"#,
        )
        .unwrap();
        assert_eq!(spec.name, "regional-failover");
        assert_eq!(spec.seed, 9);
        assert_eq!(spec.params.get("drain_frac"), Some(&0.5));
        let faults = spec.faults.as_ref().unwrap();
        assert_eq!(faults.len(), 2);
        assert_eq!(faults[0].kind, "arbitrator_partition");
        assert_eq!(faults[0].until_secs, Some(1800));
        assert_eq!(faults[1].pool.as_deref(), Some("east"));
        // Minimal form: defaults kick in, no fault override.
        let min = ScenarioSpec::from_json(r#"{"name": "diurnal-ramp"}"#).unwrap();
        assert_eq!(min.seed, 0);
        assert!(min.params.is_empty());
        assert!(min.faults.is_none());
    }

    #[test]
    fn json_spec_structural_errors() {
        let cases: &[(&str, &str)] = &[
            ("[1]", "top level"),
            ("{}", "missing \"name\""),
            (r#"{"name": "flash-crowd", "sed": 1}"#, "unknown key"),
            (
                r#"{"name": "flash-crowd", "params": {"magnitude": "big"}}"#,
                "must be a number",
            ),
            (
                r#"{"name": "flash-crowd", "faults": [{"kind": "config_stale"}]}"#,
                "missing \"at\"",
            ),
            (
                r#"{"name": "flash-crowd", "faults": [{"at": 1}]}"#,
                "missing \"kind\"",
            ),
            (
                r#"{"name": "flash-crowd", "faults": [{"at": 1, "kind": "telemetry_lagg"}]}"#,
                "did you mean \"telemetry_lag\"?",
            ),
            (
                r#"{"name": "flash-crowd", "faults": [{"at": 1, "kind": "meteor_strike"}]}"#,
                "unknown fault kind",
            ),
            (
                r#"{"name": "flash-crowd", "faults": 3}"#,
                "must be an array",
            ),
        ];
        for (text, needle) in cases {
            let err = ScenarioSpec::from_json(text).unwrap_err();
            let msg = err.to_string();
            assert!(
                matches!(err, ChaosError::BadSpec(_)) && msg.contains(needle),
                "spec {text:?}: expected {needle:?} in {msg:?}"
            );
        }
        // Unknown scenario names go through the near-miss path instead.
        let err = ScenarioSpec::from_json(r#"{"name": "cold-start-strom"}"#).unwrap_err();
        assert!(matches!(err, ChaosError::UnknownScenario { .. }));
        assert!(err.to_string().contains("cold-start-storm"), "{err}");
    }
}
