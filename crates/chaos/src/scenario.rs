//! Scenario compilation and application: a validated spec becomes one
//! deterministic transform over per-pool demand plus per-pool
//! [`FaultEntry`] schedules.
//!
//! Every random choice — which pool a flash crowd hits, per-pool spike
//! jitter, which pool each default fault lands on — is drawn from a
//! single [`StdRng`] seeded from `(scenario name, spec seed)`, in a fixed
//! order, at *apply* time. Nothing here touches the simulator's own RNG
//! stream, so the same spec over the same fleet reproduces the same bytes
//! under any execution strategy.
//!
//! Scenarios **compose**: a `+`-joined name like
//! `diurnal-ramp+flash-crowd` stacks the named transforms left to right
//! over the same fleet, drawing from the one shared RNG, and concatenates
//! their default fault schedules in part order. A single-part name is the
//! degenerate compound — same seed recipe, same bytes as before
//! composition existed.

use crate::catalog::{self, ScenarioInfo};
use crate::spec::{FaultSpec, ScenarioSpec};
use crate::{ChaosError, Result};
use ip_sim::{FaultEntry, FaultKind};
use ip_timeseries::TimeSeries;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::collections::BTreeMap;

/// One component of a (possibly compound) scenario: a catalog entry plus
/// its resolved parameters.
#[derive(Debug, Clone)]
struct Part {
    info: &'static ScenarioInfo,
    params: BTreeMap<&'static str, f64>,
}

impl Part {
    fn param(&self, key: &str) -> f64 {
        *self
            .params
            .get(key)
            .unwrap_or_else(|| panic!("scenario {:?} has no param {key:?}", self.info.name))
    }
}

/// A compiled, runnable scenario: one or more catalog entries (stacked
/// left to right when compound) + resolved parameters + (optional)
/// explicit fault schedule.
#[derive(Debug, Clone)]
pub struct Scenario {
    parts: Vec<Part>,
    seed: u64,
    faults: Option<Vec<FaultSpec>>,
}

/// What [`Scenario::apply`] produces: the transformed demand, one fault
/// schedule per pool (same order, possibly empty), and a one-line human
/// summary for CLI output.
#[derive(Debug, Clone, PartialEq)]
pub struct ChaosPlan {
    /// `(pool, demand)` pairs after the scenario transform, in input order.
    pub demand: Vec<(String, TimeSeries)>,
    /// Per-pool fault schedules, aligned with `demand` (sorted by fire
    /// time within each pool; empty for unaffected pools).
    pub faults: Vec<(String, Vec<FaultEntry>)>,
    /// One-line description of what was done (scenario, seed, fault count).
    pub summary: String,
}

impl ChaosPlan {
    /// Total scheduled faults across pools.
    pub fn fault_count(&self) -> usize {
        self.faults.iter().map(|(_, f)| f.len()).sum()
    }

    /// The fault schedule for `pool` (empty when none were assigned).
    pub fn faults_for(&self, pool: &str) -> &[FaultEntry] {
        self.faults
            .iter()
            .find(|(p, _)| p == pool)
            .map(|(_, f)| f.as_slice())
            .unwrap_or(&[])
    }
}

/// FNV-1a over the scenario name, mixed with the spec seed — the apply-time
/// RNG seed. Stable across platforms (same recipe as the workload crate's
/// per-pool seeds).
fn mix_seed(seed: u64, name: &str) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in name.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h ^ seed.wrapping_mul(0x9e37_79b9_7f4a_7c15)
}

impl Scenario {
    /// Validates a spec against the catalog: the name must exist (with a
    /// near-miss suggestion otherwise), every parameter must be one the
    /// scenario declares, and explicit fault entries must have coherent
    /// windows (`until_secs > at`, `lag_secs ≥ 1` where required).
    pub(crate) fn from_spec(spec: ScenarioSpec) -> Result<Self> {
        let mut parts = Vec::new();
        for component in spec.name.split('+') {
            let component = component.trim();
            if component.is_empty() {
                return Err(ChaosError::BadSpec(format!(
                    "compound scenario {:?} has an empty component",
                    spec.name
                )));
            }
            let info = catalog::find(component).ok_or_else(|| ChaosError::UnknownScenario {
                suggestion: catalog::suggest(component).map(str::to_string),
                name: component.to_string(),
            })?;
            parts.push(Part {
                info,
                params: info.params.iter().copied().collect(),
            });
        }
        // A spec parameter must be declared by at least one part; it is
        // applied to *every* part that declares it (e.g. "magnitude" set
        // once drives both flash-crowd and cold-start-storm in a stack).
        for (key, value) in &spec.params {
            if !value.is_finite() || *value < 0.0 {
                return Err(ChaosError::BadSpec(format!(
                    "parameter {key:?} must be finite and non-negative, got {value}"
                )));
            }
            let mut declared = false;
            for part in &mut parts {
                if let Some(&(slot, _)) = part.info.params.iter().find(|(name, _)| name == key) {
                    part.params.insert(slot, *value);
                    declared = true;
                }
            }
            if !declared {
                let mut has: Vec<&str> = parts
                    .iter()
                    .flat_map(|p| p.info.params.iter().map(|(n, _)| *n))
                    .collect();
                has.sort_unstable();
                has.dedup();
                return Err(ChaosError::BadSpec(format!(
                    "scenario {:?} has no parameter {key:?} (has: {})",
                    spec.name,
                    has.join(", ")
                )));
            }
        }
        if let Some(faults) = &spec.faults {
            for (i, f) in faults.iter().enumerate() {
                validate_fault(f, &format!("faults[{i}]"))?;
            }
        }
        Ok(Self {
            parts,
            seed: spec.seed,
            faults: spec.faults,
        })
    }

    /// The scenario name — catalog name for a single part, `+`-joined
    /// part names for a compound.
    pub fn name(&self) -> String {
        self.parts
            .iter()
            .map(|p| p.info.name)
            .collect::<Vec<_>>()
            .join("+")
    }

    /// The spec seed.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// A resolved parameter (spec override or catalog default), from the
    /// first part declaring it.
    ///
    /// # Panics
    /// On a parameter name no part declares — catalog parameter lists are
    /// static, so that is a programming error.
    pub fn param(&self, key: &str) -> f64 {
        self.parts
            .iter()
            .find_map(|p| p.params.get(key).copied())
            .unwrap_or_else(|| panic!("scenario {:?} has no param {key:?}", self.name()))
    }

    /// Transforms `pools` demand in place and compiles the fault schedule.
    ///
    /// Errors when `pools` is empty, when the scenario needs a fleet shape
    /// this isn't (regional failover with one pool), or when an explicit
    /// fault names a pool that does not exist.
    pub fn apply(&self, mut pools: Vec<(String, TimeSeries)>) -> Result<ChaosPlan> {
        if pools.is_empty() {
            return Err(ChaosError::Unsupported("no pools to run over".into()));
        }
        if pools.len() < 2
            && self
                .parts
                .iter()
                .any(|p| p.info.name == "regional-failover")
        {
            return Err(ChaosError::Unsupported(
                "regional-failover needs at least 2 pools (one drains into a sibling)".into(),
            ));
        }
        let name = self.name();
        let mut rng = StdRng::seed_from_u64(mix_seed(self.seed, &name));
        let shaped = self
            .parts
            .iter()
            .map(|part| transform(part, &mut pools, &mut rng))
            .collect::<Vec<_>>()
            .join("; ");
        let duration = pools
            .iter()
            .map(|(_, ts)| ts.duration_secs())
            .max()
            .unwrap_or(0);
        let specs = match &self.faults {
            Some(explicit) => explicit.clone(),
            None => self
                .parts
                .iter()
                .flat_map(|p| default_faults(p.info.name, duration))
                .collect(),
        };
        let mut faults: Vec<(String, Vec<FaultEntry>)> = pools
            .iter()
            .map(|(name, _)| (name.clone(), Vec::new()))
            .collect();
        let mut placed = Vec::with_capacity(specs.len());
        for (i, f) in specs.iter().enumerate() {
            validate_fault(f, &format!("faults[{i}]"))?;
            // Draw for every entry, pinned or not, so pinning one fault
            // never shifts where the unpinned ones land.
            let drawn = rng.gen_range(0..pools.len());
            let idx = match &f.pool {
                Some(name) => pools.iter().position(|(p, _)| p == name).ok_or_else(|| {
                    ChaosError::BadSpec(format!(
                        "faults[{i}]: no pool named {name:?} in this fleet"
                    ))
                })?,
                None => drawn,
            };
            faults[idx].1.push(compile_fault(f));
            placed.push(format!("{}@{}s->{}", f.kind, f.at, faults[idx].0));
        }
        for (_, schedule) in &mut faults {
            schedule.sort_by_key(|f| f.at);
        }
        let summary = format!(
            "scenario {} (seed {}): {}; {} fault(s){}",
            name,
            self.seed,
            shaped,
            placed.len(),
            if placed.is_empty() {
                String::new()
            } else {
                format!(" [{}]", placed.join(", "))
            }
        );
        Ok(ChaosPlan {
            demand: pools,
            faults,
            summary,
        })
    }

    /// `(name, params)` pairs for every part, for introspection/display.
    pub fn part_names(&self) -> Vec<&'static str> {
        self.parts.iter().map(|p| p.info.name).collect()
    }
}

/// One part's demand transform. Returns a short human description of the
/// shaping applied (for the plan summary). Draws from the compound's
/// shared RNG, so stacking order is part of the reproduction key.
fn transform(part: &Part, pools: &mut [(String, TimeSeries)], rng: &mut StdRng) -> String {
    match part.info.name {
        "flash-crowd" => {
            let target = rng.gen_range(0..pools.len());
            let (name, ts) = &mut pools[target];
            let n = ts.len();
            let start = frac_index(part.param("start_frac"), n);
            let width = frac_width(part.param("width_frac"), n);
            let surge = (part.param("magnitude") * ts.mean().unwrap_or(0.0).max(1.0)).round();
            for v in &mut ts.values_mut()[start..(start + width).min(n)] {
                *v += surge;
            }
            format!(
                "pool {name:?} +{surge}/interval over [{start}, {})",
                (start + width).min(n)
            )
        }
        "regional-failover" => {
            let from = rng.gen_range(0..pools.len());
            let into = (from + 1 + rng.gen_range(0..pools.len() - 1)) % pools.len();
            let n = pools[from].1.len().min(pools[into].1.len());
            let start = frac_index(part.param("drain_frac"), n);
            let ramp = frac_width(part.param("ramp_frac"), n);
            for t in start..n {
                // Linear ramp from 0 to full drain over `ramp` intervals.
                let progress = (((t - start + 1) as f64) / ramp as f64).min(1.0);
                let moved = (pools[from].1.get(t) * progress).round();
                *pools[from].1.values_mut().get_mut(t).unwrap() -= moved;
                *pools[into].1.values_mut().get_mut(t).unwrap() += moved;
            }
            format!(
                "pool {:?} drains into {:?} from interval {start} (ramp {ramp})",
                pools[from].0, pools[into].0
            )
        }
        "correlated-spike" => {
            let magnitude = part.param("magnitude");
            let mut factors = Vec::with_capacity(pools.len());
            for (_, ts) in pools.iter_mut() {
                let jitter = 0.8 + 0.4 * rng.gen::<f64>();
                let factor = magnitude * jitter;
                factors.push(factor);
                let n = ts.len();
                let start = frac_index(part.param("start_frac"), n);
                let width = frac_width(part.param("width_frac"), n);
                for v in &mut ts.values_mut()[start..(start + width).min(n)] {
                    *v = (*v * factor).round();
                }
            }
            format!(
                "all {} pools x{magnitude} (jittered {:.2}..{:.2}) in one window",
                pools.len(),
                factors.iter().cloned().fold(f64::INFINITY, f64::min),
                factors.iter().cloned().fold(0.0f64, f64::max)
            )
        }
        "cold-start-storm" => {
            let k = (part.param("burst_intervals").round() as usize).max(1);
            for (_, ts) in pools.iter_mut() {
                let burst = (part.param("magnitude") * ts.mean().unwrap_or(0.0).max(1.0)).round();
                let n = ts.len();
                for v in &mut ts.values_mut()[..k.min(n)] {
                    *v += burst;
                }
            }
            format!("every pool stormed for the first {k} interval(s)")
        }
        "diurnal-ramp" => {
            let peak = part.param("peak");
            let cycles = part.param("cycles").max(1.0 / 64.0);
            for (_, ts) in pools.iter_mut() {
                let n = ts.len();
                for (i, v) in ts.values_mut().iter_mut().enumerate() {
                    let x = i as f64 / n.max(1) as f64;
                    let factor = 1.0
                        + (peak - 1.0)
                            * 0.5
                            * (1.0 - (2.0 * std::f64::consts::PI * cycles * x).cos());
                    *v = (*v * factor).round();
                }
            }
            format!("all pools ramped to x{peak} over {cycles} cycle(s)")
        }
        "flapping-demand" => {
            let high = part.param("high");
            let low = part.param("low");
            for (_, ts) in pools.iter_mut() {
                let n = ts.len();
                let period = frac_width(part.param("period_frac"), n);
                for (i, v) in ts.values_mut().iter_mut().enumerate() {
                    let factor = if (i / period).is_multiple_of(2) {
                        high
                    } else {
                        low
                    };
                    *v = (*v * factor).round();
                }
            }
            format!("all pools flapping x{high}/x{low}")
        }
        other => unreachable!("scenario {other:?} is in the catalog but has no transform"),
    }
}

/// Each catalog scenario's default fault schedule, as fractions of the
/// trace duration `d`. Pools are left unpinned (`pool: None`) so the
/// apply-time RNG spreads them across the fleet. Together the catalog
/// exercises all six fault kinds.
fn default_faults(name: &str, d: u64) -> Vec<FaultSpec> {
    let at = |frac: f64| -> u64 { (d as f64 * frac) as u64 };
    let f = |frac: f64, kind: &str, until: Option<f64>, lag: Option<f64>| FaultSpec {
        at: at(frac),
        kind: kind.to_string(),
        pool: None,
        until_secs: until.map(at),
        lag_secs: lag.map(at),
    };
    if d < 60 {
        // Degenerate traces (a few intervals) get no default faults;
        // windows would collapse to zero width.
        return Vec::new();
    }
    match name {
        "flash-crowd" => vec![
            f(0.30, "telemetry_lag", Some(0.60), Some(0.10)),
            f(0.35, "worker_lease_expiry", None, None),
        ],
        "regional-failover" => vec![
            f(0.40, "worker_lease_expiry", None, None),
            f(0.40, "arbitrator_partition", Some(0.60), None),
        ],
        "correlated-spike" => vec![
            f(0.45, "config_corruption", None, None),
            f(0.50, "telemetry_dropout", Some(0.70), None),
        ],
        "cold-start-storm" => vec![
            f(0.05, "config_stale", None, None),
            f(0.10, "worker_lease_expiry", None, None),
        ],
        "diurnal-ramp" => vec![f(0.25, "telemetry_lag", Some(0.75), Some(0.05))],
        "flapping-demand" => vec![
            f(0.30, "config_corruption", None, None),
            f(0.60, "config_stale", None, None),
            f(0.70, "telemetry_dropout", Some(0.85), None),
        ],
        other => unreachable!("scenario {other:?} has no default fault schedule"),
    }
}

/// `frac` of `n` as a start index, clamped into range.
fn frac_index(frac: f64, n: usize) -> usize {
    ((frac * n as f64) as usize).min(n.saturating_sub(1))
}

/// `frac` of `n` as a width, at least 1.
fn frac_width(frac: f64, n: usize) -> usize {
    ((frac * n as f64).ceil() as usize).max(1)
}

fn validate_fault(f: &FaultSpec, ctx: &str) -> Result<()> {
    let needs_window = matches!(
        f.kind.as_str(),
        "arbitrator_partition" | "telemetry_lag" | "telemetry_dropout"
    );
    if needs_window {
        match f.until_secs {
            Some(until) if until > f.at => {}
            Some(until) => {
                return Err(ChaosError::BadSpec(format!(
                    "{ctx}: \"until_secs\" ({until}) must be after \"at\" ({})",
                    f.at
                )))
            }
            None => {
                return Err(ChaosError::BadSpec(format!(
                    "{ctx}: {:?} needs \"until_secs\"",
                    f.kind
                )))
            }
        }
    }
    if f.kind == "telemetry_lag" && f.lag_secs.is_none_or(|l| l < 1) {
        return Err(ChaosError::BadSpec(format!(
            "{ctx}: \"telemetry_lag\" needs \"lag_secs\" >= 1"
        )));
    }
    Ok(())
}

/// A validated [`FaultSpec`] as the engine's [`FaultEntry`].
fn compile_fault(f: &FaultSpec) -> FaultEntry {
    let kind = match f.kind.as_str() {
        "worker_lease_expiry" => FaultKind::WorkerLeaseExpiry,
        "arbitrator_partition" => FaultKind::ArbitratorPartition {
            until_secs: f.until_secs.expect("validated"),
        },
        "config_corruption" => FaultKind::ConfigCorruption,
        "config_stale" => FaultKind::ConfigStale,
        "telemetry_lag" => FaultKind::TelemetryLag {
            until_secs: f.until_secs.expect("validated"),
            lag_secs: f.lag_secs.expect("validated"),
        },
        "telemetry_dropout" => FaultKind::TelemetryDropout {
            until_secs: f.until_secs.expect("validated"),
        },
        other => unreachable!("fault kind {other:?} passed validation"),
    };
    FaultEntry { at: f.at, kind }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fleet(pools: usize, len: usize) -> Vec<(String, TimeSeries)> {
        (0..pools)
            .map(|i| {
                (
                    format!("pool-{i}"),
                    TimeSeries::new(30, vec![(i + 2) as f64; len]).unwrap(),
                )
            })
            .collect()
    }

    fn plan(name: &str, seed: u64, pools: usize) -> ChaosPlan {
        ScenarioSpec::by_name(name, seed)
            .unwrap()
            .compile()
            .unwrap()
            .apply(fleet(pools, 200))
            .unwrap()
    }

    #[test]
    fn every_catalog_scenario_applies_and_reproduces_bit_for_bit() {
        for info in catalog::catalog() {
            let a = plan(info.name, 42, 3);
            let b = plan(info.name, 42, 3);
            assert_eq!(a.demand, b.demand, "{} demand not reproducible", info.name);
            assert_eq!(a.faults, b.faults, "{} faults not reproducible", info.name);
            assert_eq!(a.summary, b.summary);
            // The transform actually changed something.
            assert_ne!(
                a.demand,
                fleet(3, 200),
                "{} left demand untouched",
                info.name
            );
            // Default schedules are non-empty and sorted by fire time.
            assert!(a.fault_count() >= 1, "{} schedules no faults", info.name);
            for (_, schedule) in &a.faults {
                assert!(schedule.windows(2).all(|w| w[0].at <= w[1].at));
            }
        }
    }

    #[test]
    fn compound_scenarios_stack_and_reproduce_bit_for_bit() {
        let a = plan("diurnal-ramp+flash-crowd", 42, 3);
        let b = plan("diurnal-ramp+flash-crowd", 42, 3);
        assert_eq!(a.demand, b.demand);
        assert_eq!(a.faults, b.faults);
        assert_eq!(a.summary, b.summary);
        assert!(
            a.summary.contains("diurnal-ramp+flash-crowd"),
            "{}",
            a.summary
        );

        // Default faults are the concatenation of the parts' schedules:
        // diurnal-ramp contributes 1, flash-crowd contributes 2.
        assert_eq!(a.fault_count(), 3);

        // The stack differs from either part alone — both transforms ran.
        let ramp_only = plan("diurnal-ramp", 42, 3);
        let crowd_only = plan("flash-crowd", 42, 3);
        assert_ne!(a.demand, ramp_only.demand);
        assert_ne!(a.demand, crowd_only.demand);

        // Stacking order is part of the reproduction key.
        let swapped = plan("flash-crowd+diurnal-ramp", 42, 3);
        assert_ne!(a.demand, swapped.demand);
    }

    #[test]
    fn compound_params_reach_every_declaring_part() {
        // "magnitude" is declared by both flash-crowd and cold-start-storm.
        let mut spec = ScenarioSpec::by_name("flash-crowd+cold-start-storm", 5).unwrap();
        spec.params.insert("magnitude".into(), 25.0);
        let big = spec.compile().unwrap().apply(fleet(1, 100)).unwrap();
        let default = plan("flash-crowd+cold-start-storm", 5, 1);
        assert!(big.demand[0].1.sum() > default.demand[0].1.sum());

        // A key no part declares is rejected with the compound name.
        let mut spec = ScenarioSpec::by_name("diurnal-ramp+flash-crowd", 5).unwrap();
        spec.params.insert("period_frac".into(), 0.2);
        let err = spec.compile().unwrap_err();
        assert!(err.to_string().contains("no parameter"), "{err}");
        assert!(
            err.to_string().contains("diurnal-ramp+flash-crowd"),
            "{err}"
        );

        // Unknown component names fail with a near-miss suggestion, and
        // empty components fail loudly.
        let err = ScenarioSpec::by_name("diurnal-ramp+flash-crwd", 1).unwrap_err();
        assert!(err.to_string().contains("flash-crowd"), "{err}");
        let err = ScenarioSpec::by_name("diurnal-ramp+", 1).unwrap_err();
        assert!(err.to_string().contains("empty component"), "{err}");

        // A compound containing regional-failover still needs 2+ pools.
        let err = ScenarioSpec::by_name("diurnal-ramp+regional-failover", 1)
            .unwrap()
            .compile()
            .unwrap()
            .apply(fleet(1, 100))
            .unwrap_err();
        assert!(matches!(err, ChaosError::Unsupported(_)), "{err}");
    }

    #[test]
    fn different_seeds_move_the_flash_crowd() {
        // Across enough seeds the crowd must hit more than one pool.
        let mut hit: std::collections::BTreeSet<usize> = std::collections::BTreeSet::new();
        for seed in 0..16 {
            let p = plan("flash-crowd", seed, 4);
            let baseline = fleet(4, 200);
            for (i, ((_, shaped), (_, flat))) in p.demand.iter().zip(&baseline).enumerate() {
                if shaped != flat {
                    hit.insert(i);
                }
            }
        }
        assert!(hit.len() > 1, "flash crowd pinned to one pool: {hit:?}");
    }

    #[test]
    fn regional_failover_conserves_total_demand() {
        let before: f64 = fleet(3, 200).iter().map(|(_, ts)| ts.sum()).sum();
        let p = plan("regional-failover", 7, 3);
        let after: f64 = p.demand.iter().map(|(_, ts)| ts.sum()).sum();
        assert_eq!(before, after, "failover must move demand, not create it");
        // Exactly one pool lost demand and exactly one gained.
        let deltas: Vec<f64> = p
            .demand
            .iter()
            .zip(fleet(3, 200))
            .map(|((_, shaped), (_, flat))| shaped.sum() - flat.sum())
            .collect();
        assert_eq!(deltas.iter().filter(|d| **d < 0.0).count(), 1);
        assert_eq!(deltas.iter().filter(|d| **d > 0.0).count(), 1);
        // No pool ever goes negative.
        for (_, ts) in &p.demand {
            assert!(ts.values().iter().all(|v| *v >= 0.0));
        }
    }

    #[test]
    fn regional_failover_rejects_a_lone_pool() {
        let err = ScenarioSpec::by_name("regional-failover", 1)
            .unwrap()
            .compile()
            .unwrap()
            .apply(fleet(1, 100))
            .unwrap_err();
        assert!(matches!(err, ChaosError::Unsupported(_)), "{err}");
    }

    #[test]
    fn unknown_params_and_bad_windows_rejected() {
        let mut spec = ScenarioSpec::by_name("diurnal-ramp", 1).unwrap();
        spec.params.insert("magnitude".into(), 2.0); // not a diurnal param
        let err = spec.compile().unwrap_err();
        assert!(err.to_string().contains("no parameter"), "{err}");

        let mut spec = ScenarioSpec::by_name("flash-crowd", 1).unwrap();
        spec.faults = Some(vec![FaultSpec {
            at: 600,
            kind: "telemetry_dropout".into(),
            pool: None,
            until_secs: Some(500),
            lag_secs: None,
        }]);
        let err = spec.compile().unwrap_err();
        assert!(err.to_string().contains("must be after"), "{err}");

        let mut spec = ScenarioSpec::by_name("flash-crowd", 1).unwrap();
        spec.faults = Some(vec![FaultSpec {
            at: 600,
            kind: "telemetry_lag".into(),
            pool: None,
            until_secs: Some(900),
            lag_secs: None,
        }]);
        assert!(spec.compile().is_err(), "lag without lag_secs");
    }

    #[test]
    fn explicit_faults_override_defaults_and_pin_pools() {
        let mut spec = ScenarioSpec::by_name("diurnal-ramp", 3).unwrap();
        spec.faults = Some(vec![
            FaultSpec {
                at: 900,
                kind: "config_stale".into(),
                pool: Some("pool-1".into()),
                until_secs: None,
                lag_secs: None,
            },
            FaultSpec {
                at: 300,
                kind: "worker_lease_expiry".into(),
                pool: Some("pool-1".into()),
                until_secs: None,
                lag_secs: None,
            },
        ]);
        let p = spec.compile().unwrap().apply(fleet(2, 200)).unwrap();
        assert_eq!(p.fault_count(), 2);
        assert!(p.faults_for("pool-0").is_empty());
        let schedule = p.faults_for("pool-1");
        // Sorted by fire time regardless of spec order.
        assert_eq!(schedule[0].at, 300);
        assert_eq!(schedule[0].kind, FaultKind::WorkerLeaseExpiry);
        assert_eq!(schedule[1].at, 900);
        assert_eq!(schedule[1].kind, FaultKind::ConfigStale);
        // Naming a pool outside the fleet fails loudly.
        let mut spec = ScenarioSpec::by_name("diurnal-ramp", 3).unwrap();
        spec.faults = Some(vec![FaultSpec {
            at: 1,
            kind: "config_stale".into(),
            pool: Some("nope".into()),
            until_secs: None,
            lag_secs: None,
        }]);
        let err = spec.compile().unwrap().apply(fleet(2, 200)).unwrap_err();
        assert!(err.to_string().contains("no pool named"), "{err}");
        // `Some(vec![])` disables the scenario's default schedule.
        let mut spec = ScenarioSpec::by_name("diurnal-ramp", 3).unwrap();
        spec.faults = Some(Vec::new());
        let p = spec.compile().unwrap().apply(fleet(2, 200)).unwrap();
        assert_eq!(p.fault_count(), 0);
    }

    #[test]
    fn param_overrides_change_the_transform() {
        let mut spec = ScenarioSpec::by_name("cold-start-storm", 5).unwrap();
        spec.params.insert("magnitude".into(), 20.0);
        let big = spec.compile().unwrap().apply(fleet(1, 100)).unwrap();
        let default = plan("cold-start-storm", 5, 1);
        assert!(big.demand[0].1.get(0) > default.demand[0].1.get(0));
    }

    #[test]
    fn short_traces_get_no_default_faults() {
        let p = ScenarioSpec::by_name("flash-crowd", 1)
            .unwrap()
            .compile()
            .unwrap()
            .apply(vec![(
                "tiny".to_string(),
                TimeSeries::new(30, vec![1.0]).unwrap(),
            )])
            .unwrap();
        assert_eq!(p.fault_count(), 0);
    }
}
