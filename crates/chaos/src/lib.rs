#![warn(missing_docs)]
//! Chaos engineering for the pooling stack: a deterministic scenario
//! catalog plus a seeded fault-injection plane (DESIGN.md §16).
//!
//! The paper's §7.5–7.6 hardening — worker-lease expiry, Arbitrator
//! partitions, stale or corrupt recommendation versions, telemetry lag —
//! describes failure modes the simulator's happy-path traces never
//! exercise. This crate closes that gap with two halves:
//!
//! * **Scenario catalog** ([`catalog`]) — six named demand scenarios
//!   (flash crowd, regional-failover drain, correlated cross-pool spike,
//!   cold-start storm, diurnal ramp, flapping demand), each compiled into
//!   a deterministic transform over a fleet's demand traces. A scenario is
//!   reproducible bit-for-bit from `(name, seed, params)`: all randomness
//!   is drawn from one seeded [`rand::rngs::StdRng`] at *compile time*,
//!   never inside the simulator's event loop, so the chaos plane cannot
//!   perturb the engine's own RNG stream.
//! * **Fault schedules** — each scenario carries a default logical-clock
//!   fault schedule (overridable per spec) compiled into
//!   [`ip_sim::FaultEntry`] lists that ride into each pool's
//!   [`SimConfig::faults`](ip_sim::SimConfig) and fire as ordinary
//!   `(time, seq)`-ordered events. An empty schedule leaves runs
//!   bit-identical to a chaos-free build.
//!
//! The JSON spec form mirrors the CLI's fleet-spec idiom:
//!
//! ```json
//! {
//!   "name": "regional-failover", "seed": 7,
//!   "params": {"drain_frac": 0.5},
//!   "faults": [
//!     {"at": 600, "kind": "arbitrator_partition", "until_secs": 1800},
//!     {"at": 900, "kind": "telemetry_lag", "until_secs": 2400,
//!      "lag_secs": 600, "pool": "east"}
//!   ]
//! }
//! ```
//!
//! ```
//! use ip_chaos::ScenarioSpec;
//! use ip_timeseries::TimeSeries;
//!
//! let demand = vec![
//!     ("east".to_string(), TimeSeries::new(30, vec![4.0; 100]).unwrap()),
//!     ("west".to_string(), TimeSeries::new(30, vec![2.0; 100]).unwrap()),
//! ];
//! let plan = ScenarioSpec::by_name("flash-crowd", 7)
//!     .unwrap()
//!     .compile()
//!     .unwrap()
//!     .apply(demand.clone())
//!     .unwrap();
//! // Same (name, seed, params) -> bit-identical transform and schedule.
//! let again = ScenarioSpec::by_name("flash-crowd", 7)
//!     .unwrap()
//!     .compile()
//!     .unwrap()
//!     .apply(demand)
//!     .unwrap();
//! assert_eq!(plan.demand, again.demand);
//! assert_eq!(plan.faults, again.faults);
//! ```

pub mod catalog;
pub mod scenario;
pub mod spec;

pub use catalog::{catalog, find, suggest, ScenarioInfo};
pub use scenario::{ChaosPlan, Scenario};
pub use spec::{FaultSpec, ScenarioSpec};

/// Errors from scenario lookup, spec parsing, and compilation.
#[derive(Debug, Clone, PartialEq)]
pub enum ChaosError {
    /// `--scenario` named something outside the catalog; carries the
    /// closest catalog entry when one is plausibly a typo away.
    UnknownScenario {
        /// The name as given.
        name: String,
        /// Closest catalog name by edit distance, if close enough.
        suggestion: Option<String>,
    },
    /// A malformed scenario/fault spec (bad JSON, unknown key, bad type,
    /// invalid fault window, unknown pool, …).
    BadSpec(String),
    /// The scenario cannot run over this fleet shape (e.g. a regional
    /// failover needs a sibling pool to drain into).
    Unsupported(String),
}

impl std::fmt::Display for ChaosError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ChaosError::UnknownScenario { name, suggestion } => {
                write!(f, "unknown scenario {name:?}")?;
                match suggestion {
                    Some(s) => write!(f, " (did you mean {s:?}?)"),
                    None => write!(f, " (see `ip-pool simulate --list-scenarios 1`)"),
                }
            }
            ChaosError::BadSpec(msg) => write!(f, "bad scenario spec: {msg}"),
            ChaosError::Unsupported(msg) => write!(f, "scenario not applicable: {msg}"),
        }
    }
}

impl std::error::Error for ChaosError {}

/// Result alias for this crate.
pub type Result<T> = std::result::Result<T, ChaosError>;
