//! The named scenario catalog: six demand shapes, their tunable
//! parameters with defaults, and near-miss lookup for CLI ergonomics.

/// One catalog entry: a scenario's identity, a one-line description (the
/// `--list-scenarios` text), and its parameters with default values.
///
/// Time-like parameters are *fractions of the trace length* rather than
/// absolute seconds, so the same spec scales to any trace duration.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ScenarioInfo {
    /// Catalog name (the `--scenario` argument).
    pub name: &'static str,
    /// One-line description for `--list-scenarios`.
    pub description: &'static str,
    /// `(param, default)` pairs; specs may override any subset and
    /// unknown parameter names are rejected.
    pub params: &'static [(&'static str, f64)],
}

const CATALOG: &[ScenarioInfo] = &[
    ScenarioInfo {
        name: "flash-crowd",
        description: "one pool's demand surges by `magnitude`x its mean for a short window",
        params: &[
            ("start_frac", 0.35),
            ("width_frac", 0.05),
            ("magnitude", 6.0),
        ],
    },
    ScenarioInfo {
        name: "regional-failover",
        description: "one pool drains to zero over a ramp and its demand lands on a sibling",
        params: &[("drain_frac", 0.4), ("ramp_frac", 0.05)],
    },
    ScenarioInfo {
        name: "correlated-spike",
        description: "every pool spikes in the same window (magnitude jittered +/-20% per pool)",
        params: &[
            ("start_frac", 0.5),
            ("width_frac", 0.08),
            ("magnitude", 4.0),
        ],
    },
    ScenarioInfo {
        name: "cold-start-storm",
        description:
            "a burst of `magnitude`x mean demand hammers every pool from the first interval",
        params: &[("burst_intervals", 4.0), ("magnitude", 10.0)],
    },
    ScenarioInfo {
        name: "diurnal-ramp",
        description: "demand swells smoothly to `peak`x and back, `cycles` times over the trace",
        params: &[("peak", 3.0), ("cycles", 1.0)],
    },
    ScenarioInfo {
        name: "flapping-demand",
        description: "a square wave alternates demand between `high`x and `low`x every period",
        params: &[("period_frac", 0.1), ("high", 4.0), ("low", 0.25)],
    },
];

/// The full catalog, in presentation order.
pub fn catalog() -> &'static [ScenarioInfo] {
    CATALOG
}

/// Looks up a scenario by exact name.
pub fn find(name: &str) -> Option<&'static ScenarioInfo> {
    CATALOG.iter().find(|s| s.name == name)
}

/// The closest catalog name to `name` by edit distance, when close enough
/// to plausibly be a typo (distance ≤ 3 and under half the name's length).
pub fn suggest(name: &str) -> Option<&'static str> {
    CATALOG
        .iter()
        .map(|s| (levenshtein(name, s.name), s.name))
        .min()
        .filter(|&(d, best)| d <= 3.min(best.len() / 2))
        .map(|(_, best)| best)
}

/// Classic two-row Levenshtein distance, case-sensitive (catalog names are
/// all lower-kebab already).
pub(crate) fn levenshtein(a: &str, b: &str) -> usize {
    let a: Vec<char> = a.chars().collect();
    let b: Vec<char> = b.chars().collect();
    let mut prev: Vec<usize> = (0..=b.len()).collect();
    let mut cur = vec![0usize; b.len() + 1];
    for (i, &ca) in a.iter().enumerate() {
        cur[0] = i + 1;
        for (j, &cb) in b.iter().enumerate() {
            let sub = prev[j] + usize::from(ca != cb);
            cur[j + 1] = sub.min(prev[j + 1] + 1).min(cur[j] + 1);
        }
        std::mem::swap(&mut prev, &mut cur);
    }
    prev[b.len()]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn catalog_has_six_distinct_documented_entries() {
        assert_eq!(catalog().len(), 6);
        for (i, s) in catalog().iter().enumerate() {
            assert!(!s.description.is_empty(), "{} lacks a description", s.name);
            assert!(!s.params.is_empty(), "{} lacks parameters", s.name);
            for other in &catalog()[i + 1..] {
                assert_ne!(s.name, other.name);
            }
        }
        assert!(find("regional-failover").is_some());
        assert!(find("Regional-Failover").is_none(), "lookup is exact");
    }

    #[test]
    fn suggestions_catch_typos_but_not_nonsense() {
        assert_eq!(suggest("flash-crwd"), Some("flash-crowd"));
        assert_eq!(suggest("diurnal-lamp"), Some("diurnal-ramp"));
        assert_eq!(suggest("regional-failovr"), Some("regional-failover"));
        assert_eq!(suggest("kubernetes"), None);
        assert_eq!(suggest(""), None);
    }

    #[test]
    fn levenshtein_basics() {
        assert_eq!(levenshtein("", ""), 0);
        assert_eq!(levenshtein("abc", "abc"), 0);
        assert_eq!(levenshtein("abc", "abd"), 1);
        assert_eq!(levenshtein("abc", ""), 3);
        assert_eq!(levenshtein("kitten", "sitting"), 3);
    }
}
