//! Satellite (c): any scenario/fault spec replayed with the same seed
//! yields **byte-identical** reports and `ip-obs` event streams whether
//! the fleet runs serially (`IP_THREADS=1`) or on 4 worker threads.
//!
//! These tests mutate the process-wide obs registry/trace, so they
//! serialize behind one mutex (this file is its own test binary,
//! isolating it from every other suite's process).

use ip_chaos::{catalog, ScenarioSpec};
use ip_sim::{FaultEntry, FleetPool, FleetSim, FleetStrategy, SimConfig};
use ip_timeseries::TimeSeries;
use proptest::prelude::*;
use std::sync::Mutex;

static GATE: Mutex<()> = Mutex::new(());

/// A deterministic pseudo-random demand trace (no process RNG).
fn demand(seed: u64, n: usize) -> TimeSeries {
    let vals: Vec<f64> = (0..n)
        .map(|i| {
            let x = (i as u64).wrapping_mul(2654435761).wrapping_add(seed * 131);
            f64::from((x % 6) as u32) + if i % 13 == 0 { 3.0 } else { 0.0 }
        })
        .collect();
    TimeSeries::new(30, vals).unwrap()
}

/// Compiles `spec` against a small fleet and returns the per-pool
/// `(demand, faults)` assignments the engine will run.
fn planned_pools(
    spec: ScenarioSpec,
    pool_count: usize,
) -> Vec<(String, TimeSeries, Vec<FaultEntry>)> {
    let scenario = spec.compile().expect("catalog spec compiles");
    let pools: Vec<(String, TimeSeries)> = (0..pool_count)
        .map(|k| (format!("pool-{k}"), demand(11 + k as u64, 96)))
        .collect();
    let plan = scenario.apply(pools).expect("apply succeeds");
    plan.demand
        .iter()
        .map(|(id, d)| (id.clone(), d.clone(), plan.faults_for(id).to_vec()))
        .collect()
}

/// One full fleet run with obs recording on: returns the rendered
/// Prometheus bytes, the logical-clock event stream, and the finalized
/// per-pool reports rendered to text.
fn observed_run(
    pools: &[(String, TimeSeries, Vec<FaultEntry>)],
    strategy: FleetStrategy,
) -> (String, Vec<ip_obs::EventRecord>, String) {
    ip_obs::set_enabled(true);
    ip_obs::reset();
    let members = pools
        .iter()
        .map(|(id, d, faults)| {
            let cfg = SimConfig {
                default_pool_target: 2,
                cluster_lifespan_secs: Some(1800),
                seed: 5,
                faults: faults.clone(),
                ..Default::default()
            };
            FleetPool::new(id.clone(), cfg, d.clone())
        })
        .collect();
    let mut fleet = FleetSim::new(members).unwrap().with_strategy(strategy);
    fleet.run_to_end();
    let report = fleet.finalize();
    let prometheus = ip_obs::export::render_prometheus(ip_obs::global());
    let trace = ip_obs::take_trace();
    ip_obs::set_enabled(false);
    ip_obs::reset();
    let reports: Vec<String> = pools
        .iter()
        .map(|(id, _, _)| format!("{id}: {:?}", report.get(id).expect("pool report")))
        .collect();
    (prometheus, trace.events, reports.join("\n"))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// Every catalog scenario, under random seeds and fleet sizes:
    /// serial and 4-thread runs export identical bytes, and a second
    /// replay of the same spec is identical to the first.
    #[test]
    fn scenario_replay_is_byte_identical_across_threads(
        which in 0usize..6,
        seed in 0u64..1_000,
        pool_count in 2usize..4,
    ) {
        let _g = GATE.lock().unwrap();
        let name = catalog()[which].name;
        let pools = planned_pools(ScenarioSpec::by_name(name, seed).unwrap(), pool_count);
        let replay = planned_pools(ScenarioSpec::by_name(name, seed).unwrap(), pool_count);
        prop_assert_eq!(&pools, &replay, "{} seed {}: plan replay", name, seed);

        let serial = observed_run(&pools, FleetStrategy::Serial);
        let par = observed_run(&pools, FleetStrategy::Parallel(4));
        prop_assert_eq!(&serial.0, &par.0, "{} seed {}: prometheus bytes", name, seed);
        prop_assert_eq!(&serial.1, &par.1, "{} seed {}: event stream", name, seed);
        prop_assert_eq!(&serial.2, &par.2, "{} seed {}: reports", name, seed);

        let again = observed_run(&pools, FleetStrategy::Serial);
        prop_assert_eq!(&serial.0, &again.0, "{} seed {}: replayed metrics", name, seed);
        prop_assert_eq!(&serial.1, &again.1, "{} seed {}: replayed events", name, seed);
        prop_assert_eq!(&serial.2, &again.2, "{} seed {}: replayed reports", name, seed);
    }

    /// Explicit JSON fault specs (pinned and unpinned, every kind) are
    /// just as reproducible as catalog defaults.
    #[test]
    fn explicit_fault_specs_replay_identically(
        seed in 0u64..1_000,
        at_frac in 0.1f64..0.8,
    ) {
        let _g = GATE.lock().unwrap();
        let d = demand(7, 96).duration_secs();
        let at = (d as f64 * at_frac) as u64;
        let spec_json = format!(
            r#"{{"name": "flash-crowd", "seed": {seed}, "params": {{}}, "faults": [
                {{"at": {at}, "kind": "worker_lease_expiry", "pool": "pool-0"}},
                {{"at": {}, "kind": "arbitrator_partition", "until_secs": {}}},
                {{"at": {}, "kind": "telemetry_lag", "until_secs": {}, "lag_secs": 120}},
                {{"at": {}, "kind": "config_corruption"}}
            ]}}"#,
            at / 2, at / 2 + 600,
            at / 3, at / 3 + 900,
            at + 60,
        );
        let pools = planned_pools(ScenarioSpec::from_json(&spec_json).unwrap(), 2);
        let replay = planned_pools(ScenarioSpec::from_json(&spec_json).unwrap(), 2);
        prop_assert_eq!(&pools, &replay, "seed {}: plan replay", seed);
        prop_assert_eq!(
            pools.iter().map(|(_, _, f)| f.len()).sum::<usize>(),
            4,
            "all four faults scheduled"
        );

        let serial = observed_run(&pools, FleetStrategy::Serial);
        let par = observed_run(&pools, FleetStrategy::Parallel(4));
        prop_assert_eq!(&serial.0, &par.0, "seed {}: prometheus bytes", seed);
        prop_assert_eq!(&serial.1, &par.1, "seed {}: event stream", seed);
        prop_assert_eq!(&serial.2, &par.2, "seed {}: reports", seed);
    }
}
