#![warn(missing_docs)]
//! The Sample Average Approximation (SAA) optimizer of §4: given a demand
//! trace, choose the pool-size schedule `N(t)` minimizing the weighted sum
//! of cluster idle time and customer wait time.
//!
//! * [`mechanism`] — the live-pool accounting of Fig. 3: cumulative demand
//!   `D(t)`, re-hydration requests `A(t) = D(t) + N(t)`, ready clusters
//!   `A'(t) = A(t−τ)`, and the idle (`Δ⁺`) / wait (`Δ⁻`) areas, plus
//!   per-request FCFS wait times and the pool hit rate.
//! * [`lp_model`] — the linear program of Eq. 1–11 with the single-knob
//!   objective of Eq. 16, solved by the `ip-lp` simplex.
//! * [`dp`] — an exact integer dynamic program over STABLENESS blocks
//!   (the schedule production would round the LP to), cross-checked against
//!   the LP in tests.
//! * [`static_pool`] — the static-pool baseline (fixed `N`) the paper's
//!   headline 43% idle-time reduction is measured against.
//! * [`pareto`] — `α'` sweeps tracing the wait-vs-idle Pareto frontier.
//! * [`robustness`] — the §7.5 hardening strategies: max-filter demand
//!   smoothing (Eq. 18), extended stability, and max-filtered output with
//!   `SF = τ`.
//! * [`periodic`] — the §4.2 simplified policy: one time-of-day profile
//!   shared by every day.
//!
//! ```
//! use ip_saa::{evaluate_schedule, optimize_dp, SaaConfig};
//! use ip_timeseries::TimeSeries;
//!
//! // Steady demand of 2 requests/interval with tau = 2 intervals: the
//! // optimizer sizes the pool near rate x tau and the evaluation confirms
//! // a high hit rate.
//! let demand = TimeSeries::new(30, vec![2.0; 48]).unwrap();
//! let config = SaaConfig {
//!     tau_intervals: 2,
//!     stableness: 4,
//!     alpha_prime: 0.2, // wait-averse
//!     ..Default::default()
//! };
//! let plan = optimize_dp(&demand, &config).unwrap();
//! let outcome = evaluate_schedule(&demand, &plan.schedule, 2).unwrap();
//! assert!(outcome.hit_rate > 0.9);
//! ```

pub mod dp;
pub mod lp_model;
pub mod mechanism;
pub mod pareto;
pub mod periodic;
pub mod robustness;
pub mod static_pool;

pub use dp::{optimize_dp, SweepCache};
pub use lp_model::optimize_lp;
pub use mechanism::{evaluate_schedule, PoolMechanics};
pub use pareto::{pareto_sweep, pareto_sweep_with_threads, ParetoPoint};
pub use periodic::optimize_periodic_profile;
pub use robustness::{robust_optimize, RobustnessStrategies};
pub use static_pool::{optimal_static_for_hit_rate, static_schedule};

/// Errors from the optimizer.
#[derive(Debug, Clone, PartialEq)]
pub enum SaaError {
    /// Demand series is empty or shorter than required.
    InvalidDemand(String),
    /// Invalid configuration (zero stableness, min > max pool, …).
    InvalidConfig(String),
    /// The LP solver failed (should not happen for well-formed instances).
    Solver(String),
}

impl std::fmt::Display for SaaError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SaaError::InvalidDemand(msg) => write!(f, "invalid demand: {msg}"),
            SaaError::InvalidConfig(msg) => write!(f, "invalid config: {msg}"),
            SaaError::Solver(msg) => write!(f, "solver failure: {msg}"),
        }
    }
}

impl std::error::Error for SaaError {}

/// Result alias for this crate.
pub type Result<T> = std::result::Result<T, SaaError>;

/// Configuration of the SAA optimizer, mirroring the paper's constraints.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SaaConfig {
    /// Cluster creation latency `τ`, in demand intervals (paper: 60–120 s of
    /// creation on 30 s intervals → 2–4).
    pub tau_intervals: usize,
    /// STABLENESS: the pool size is constant within blocks of this many
    /// intervals (paper: 5 min = 10 intervals; extended to 10 min in the
    /// hardened §7.5 deployment).
    pub stableness: usize,
    /// MIN POOL SIZE (Eq. 10), set by regional capacity in production.
    pub min_pool: u32,
    /// MAX POOL SIZE (Eq. 10).
    pub max_pool: u32,
    /// MAX NEW REQUEST (Eq. 9): the largest allowed pool-size increase
    /// between consecutive stableness blocks.
    pub max_new_per_block: u32,
    /// `α'` of Eq. 16: weight on idle time; `1 − α'` weighs wait time.
    pub alpha_prime: f64,
}

impl Default for SaaConfig {
    fn default() -> Self {
        Self {
            tau_intervals: 3, // 90 s on 30 s intervals
            stableness: 10,   // 5 minutes
            min_pool: 0,
            max_pool: 500,
            max_new_per_block: 50,
            alpha_prime: 0.5,
        }
    }
}

impl SaaConfig {
    /// Validates the configuration.
    pub fn validate(&self) -> Result<()> {
        if self.stableness == 0 {
            return Err(SaaError::InvalidConfig("stableness must be > 0".into()));
        }
        if self.min_pool > self.max_pool {
            return Err(SaaError::InvalidConfig(format!(
                "min_pool {} > max_pool {}",
                self.min_pool, self.max_pool
            )));
        }
        if !(0.0..=1.0).contains(&self.alpha_prime) {
            return Err(SaaError::InvalidConfig(format!(
                "alpha_prime must be in [0,1], got {}",
                self.alpha_prime
            )));
        }
        Ok(())
    }

    /// Number of stableness blocks covering `t_len` intervals.
    pub fn num_blocks(&self, t_len: usize) -> usize {
        t_len.div_ceil(self.stableness)
    }

    /// Block index owning interval `t`.
    pub fn block_of(&self, t: usize) -> usize {
        t / self.stableness
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_config_valid() {
        assert!(SaaConfig::default().validate().is_ok());
    }

    #[test]
    fn invalid_configs_rejected() {
        let c = SaaConfig {
            stableness: 0,
            ..Default::default()
        };
        assert!(c.validate().is_err());
        let c = SaaConfig {
            min_pool: 10,
            max_pool: 5,
            ..Default::default()
        };
        assert!(c.validate().is_err());
        let c = SaaConfig {
            alpha_prime: 1.5,
            ..Default::default()
        };
        assert!(c.validate().is_err());
    }

    #[test]
    fn block_arithmetic() {
        let c = SaaConfig {
            stableness: 10,
            ..Default::default()
        };
        assert_eq!(c.num_blocks(100), 10);
        assert_eq!(c.num_blocks(101), 11);
        assert_eq!(c.block_of(0), 0);
        assert_eq!(c.block_of(9), 0);
        assert_eq!(c.block_of(10), 1);
    }
}
