//! α' sweeps tracing the wait-vs-idle Pareto frontier (§7.1, Fig. 5).

use crate::dp::optimize_dp;
use crate::mechanism::evaluate_schedule;
use crate::{Result, SaaConfig};
use ip_timeseries::TimeSeries;

/// One point of the trade-off curve.
#[derive(Debug, Clone)]
pub struct ParetoPoint {
    /// The α' that produced this point.
    pub alpha_prime: f64,
    /// Idle cluster-seconds (COGS proxy) measured on the *evaluation*
    /// demand.
    pub idle_cluster_seconds: f64,
    /// Total customer wait seconds.
    pub wait_seconds: f64,
    /// Mean wait per request in seconds.
    pub mean_wait_secs: f64,
    /// Pool hit rate.
    pub hit_rate: f64,
}

/// Optimizes the schedule on `plan_demand` for each α' and evaluates it on
/// `eval_demand`.
///
/// With `plan_demand == eval_demand` this is the pure SAA-on-history curve
/// of §7.1; in the 2-step pipeline `plan_demand` is the ML forecast and
/// `eval_demand` the realized demand.
pub fn pareto_sweep(
    plan_demand: &TimeSeries,
    eval_demand: &TimeSeries,
    base_config: &SaaConfig,
    alphas: &[f64],
) -> Result<Vec<ParetoPoint>> {
    let mut out = Vec::with_capacity(alphas.len());
    for &alpha in alphas {
        let config = SaaConfig { alpha_prime: alpha, ..*base_config };
        let opt = optimize_dp(plan_demand, &config)?;
        // The planned schedule may be shorter than the evaluation trace if
        // forecasts cover less; extend with the last block value.
        let mut schedule = opt.schedule.clone();
        if schedule.len() < eval_demand.len() {
            let last = schedule.last().copied().unwrap_or(0.0);
            schedule.resize(eval_demand.len(), last);
        }
        let m = evaluate_schedule(eval_demand, &schedule, config.tau_intervals)?;
        out.push(ParetoPoint {
            alpha_prime: alpha,
            idle_cluster_seconds: m.idle_cluster_seconds,
            wait_seconds: m.wait_seconds,
            mean_wait_secs: m.mean_wait_per_request_secs,
            hit_rate: m.hit_rate,
        });
    }
    Ok(out)
}

/// Default α' grid used by the figure harnesses: dense near 1 (the
/// idle-dominant end) because the Pareto curve bends sharply there.
pub fn default_alpha_grid() -> Vec<f64> {
    vec![0.02, 0.05, 0.1, 0.2, 0.3, 0.5, 0.7, 0.8, 0.9, 0.95, 0.99]
}

/// Returns `true` when point `a` weakly dominates point `b` (no worse on
/// both axes).
pub fn dominates(a: &ParetoPoint, b: &ParetoPoint) -> bool {
    a.idle_cluster_seconds <= b.idle_cluster_seconds && a.wait_seconds <= b.wait_seconds
}

/// Filters a point set down to its non-dominated frontier.
pub fn frontier(points: &[ParetoPoint]) -> Vec<ParetoPoint> {
    points
        .iter()
        .filter(|p| {
            !points
                .iter()
                .any(|q| dominates(q, p) && (q.idle_cluster_seconds, q.wait_seconds) != (p.idle_cluster_seconds, p.wait_seconds))
        })
        .cloned()
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn demand() -> TimeSeries {
        let vals: Vec<f64> =
            (0..60).map(|t| if t % 12 < 2 { 5.0 } else { 1.0 }).collect();
        TimeSeries::new(30, vals).unwrap()
    }

    fn cfg() -> SaaConfig {
        SaaConfig {
            tau_intervals: 2,
            stableness: 6,
            min_pool: 0,
            max_pool: 40,
            max_new_per_block: 40,
            alpha_prime: 0.5,
        }
    }

    #[test]
    fn sweep_monotone_trade_off() {
        let d = demand();
        let points = pareto_sweep(&d, &d, &cfg(), &[0.05, 0.5, 0.95]).unwrap();
        // Raising α' (more idle-averse) must not increase idle time and must
        // not decrease wait time — on the SAA-on-history curve this is exact.
        for w in points.windows(2) {
            assert!(
                w[1].idle_cluster_seconds <= w[0].idle_cluster_seconds + 1e-9,
                "idle not monotone: {w:?}"
            );
            assert!(w[1].wait_seconds >= w[0].wait_seconds - 1e-9, "wait not monotone: {w:?}");
        }
    }

    #[test]
    fn frontier_removes_dominated() {
        let mk = |idle, wait| ParetoPoint {
            alpha_prime: 0.5,
            idle_cluster_seconds: idle,
            wait_seconds: wait,
            mean_wait_secs: 0.0,
            hit_rate: 1.0,
        };
        let points = vec![mk(10.0, 1.0), mk(5.0, 2.0), mk(12.0, 3.0)];
        let f = frontier(&points);
        // (12, 3) is dominated by (10, 1); the others are incomparable.
        assert_eq!(f.len(), 2);
        assert!(f.iter().all(|p| p.idle_cluster_seconds < 12.0));
    }

    #[test]
    fn plan_eval_split_extends_schedule() {
        // Plan on a prefix, evaluate on the longer trace: should not error.
        let d = demand();
        let plan = d.slice(0, 30).unwrap();
        let points = pareto_sweep(&plan, &d, &cfg(), &[0.5]).unwrap();
        assert_eq!(points.len(), 1);
        assert!(points[0].hit_rate >= 0.0);
    }
}
