//! α' sweeps tracing the wait-vs-idle Pareto frontier (§7.1, Fig. 5).

use crate::dp::SweepCache;
use crate::lp_model::OptimizedSchedule;
use crate::mechanism::evaluate_schedule;
use crate::{Result, SaaConfig};
use ip_timeseries::TimeSeries;

/// One point of the trade-off curve.
#[derive(Debug, Clone)]
pub struct ParetoPoint {
    /// The α' that produced this point.
    pub alpha_prime: f64,
    /// Idle cluster-seconds (COGS proxy) measured on the *evaluation*
    /// demand.
    pub idle_cluster_seconds: f64,
    /// Total customer wait seconds.
    pub wait_seconds: f64,
    /// Mean wait per request in seconds.
    pub mean_wait_secs: f64,
    /// Pool hit rate.
    pub hit_rate: f64,
}

/// Optimizes the schedule on `plan_demand` for each α' and evaluates it on
/// `eval_demand`.
///
/// With `plan_demand == eval_demand` this is the pure SAA-on-history curve
/// of §7.1; in the 2-step pipeline `plan_demand` is the ML forecast and
/// `eval_demand` the realized demand.
pub fn pareto_sweep(
    plan_demand: &TimeSeries,
    eval_demand: &TimeSeries,
    base_config: &SaaConfig,
    alphas: &[f64],
) -> Result<Vec<ParetoPoint>> {
    pareto_sweep_with_threads(
        ip_par::num_threads(),
        plan_demand,
        eval_demand,
        base_config,
        alphas,
    )
}

/// [`pareto_sweep`] with an explicit thread count (scaling benches and
/// bit-identity tests).
///
/// The α-independent DP sums are computed once ([`SweepCache`]) and shared
/// by reference across the α' tasks; each task runs only the cheap per-α DP
/// plus its evaluation, and [`ip_par::par_map_with`] preserves the `alphas`
/// ordering, so the result is identical — bit for bit — to the serial loop.
pub fn pareto_sweep_with_threads(
    threads: usize,
    plan_demand: &TimeSeries,
    eval_demand: &TimeSeries,
    base_config: &SaaConfig,
    alphas: &[f64],
) -> Result<Vec<ParetoPoint>> {
    let _span = ip_obs::span("saa.pareto_sweep");
    let cache = SweepCache::build(plan_demand, base_config)?;
    let points = ip_par::par_map_with(threads, alphas, |&alpha| -> Result<ParetoPoint> {
        let _span = ip_obs::span("saa.alpha_solve");
        let opt = cache.solve(alpha);
        let schedule = extend_schedule(&opt, eval_demand.len(), base_config);
        let m = evaluate_schedule(eval_demand, &schedule, base_config.tau_intervals)?;
        Ok(ParetoPoint {
            alpha_prime: alpha,
            idle_cluster_seconds: m.idle_cluster_seconds,
            wait_seconds: m.wait_seconds,
            mean_wait_secs: m.mean_wait_per_request_secs,
            hit_rate: m.hit_rate,
        })
    });
    points.into_iter().collect()
}

/// Regenerates a planned schedule on the evaluation grid of `eval_len`
/// intervals.
///
/// The planned schedule may be shorter than the evaluation trace when
/// forecasts cover less. Extension happens at the *per-block* level: every
/// evaluation interval looks up its own stableness block, unplanned blocks
/// inherit the last planned block's value, and the fill value is clamped to
/// `[min_pool, max_pool]`. Resizing the flat schedule with its last element
/// (the previous behaviour) bypassed both invariants — an empty plan padded
/// with `0.0` below `min_pool`, and a plan ending mid-block glued the tail
/// onto the wrong block boundary.
fn extend_schedule(opt: &OptimizedSchedule, eval_len: usize, config: &SaaConfig) -> Vec<f64> {
    let fill = opt
        .per_block
        .last()
        .copied()
        .unwrap_or(f64::from(config.min_pool))
        .clamp(f64::from(config.min_pool), f64::from(config.max_pool));
    (0..eval_len)
        .map(|t| {
            opt.per_block
                .get(config.block_of(t))
                .copied()
                .unwrap_or(fill)
        })
        .collect()
}

/// Default α' grid used by the figure harnesses: dense near 1 (the
/// idle-dominant end) because the Pareto curve bends sharply there.
pub fn default_alpha_grid() -> Vec<f64> {
    vec![0.02, 0.05, 0.1, 0.2, 0.3, 0.5, 0.7, 0.8, 0.9, 0.95, 0.99]
}

/// Returns `true` when point `a` weakly dominates point `b` (no worse on
/// both axes).
pub fn dominates(a: &ParetoPoint, b: &ParetoPoint) -> bool {
    a.idle_cluster_seconds <= b.idle_cluster_seconds && a.wait_seconds <= b.wait_seconds
}

/// Filters a point set down to its non-dominated frontier.
pub fn frontier(points: &[ParetoPoint]) -> Vec<ParetoPoint> {
    points
        .iter()
        .filter(|p| {
            !points.iter().any(|q| {
                dominates(q, p)
                    && (q.idle_cluster_seconds, q.wait_seconds)
                        != (p.idle_cluster_seconds, p.wait_seconds)
            })
        })
        .cloned()
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn demand() -> TimeSeries {
        let vals: Vec<f64> = (0..60)
            .map(|t| if t % 12 < 2 { 5.0 } else { 1.0 })
            .collect();
        TimeSeries::new(30, vals).unwrap()
    }

    fn cfg() -> SaaConfig {
        SaaConfig {
            tau_intervals: 2,
            stableness: 6,
            min_pool: 0,
            max_pool: 40,
            max_new_per_block: 40,
            alpha_prime: 0.5,
        }
    }

    #[test]
    fn sweep_monotone_trade_off() {
        let d = demand();
        let points = pareto_sweep(&d, &d, &cfg(), &[0.05, 0.5, 0.95]).unwrap();
        // Raising α' (more idle-averse) must not increase idle time and must
        // not decrease wait time — on the SAA-on-history curve this is exact.
        for w in points.windows(2) {
            assert!(
                w[1].idle_cluster_seconds <= w[0].idle_cluster_seconds + 1e-9,
                "idle not monotone: {w:?}"
            );
            assert!(
                w[1].wait_seconds >= w[0].wait_seconds - 1e-9,
                "wait not monotone: {w:?}"
            );
        }
    }

    #[test]
    fn frontier_removes_dominated() {
        let mk = |idle, wait| ParetoPoint {
            alpha_prime: 0.5,
            idle_cluster_seconds: idle,
            wait_seconds: wait,
            mean_wait_secs: 0.0,
            hit_rate: 1.0,
        };
        let points = vec![mk(10.0, 1.0), mk(5.0, 2.0), mk(12.0, 3.0)];
        let f = frontier(&points);
        // (12, 3) is dominated by (10, 1); the others are incomparable.
        assert_eq!(f.len(), 2);
        assert!(f.iter().all(|p| p.idle_cluster_seconds < 12.0));
    }

    #[test]
    fn plan_eval_split_extends_schedule() {
        // Plan on a prefix, evaluate on the longer trace: should not error.
        let d = demand();
        let plan = d.slice(0, 30).unwrap();
        let points = pareto_sweep(&plan, &d, &cfg(), &[0.5]).unwrap();
        assert_eq!(points.len(), 1);
        assert!(points[0].hit_rate >= 0.0);
    }

    #[test]
    fn extension_respects_min_pool_and_block_grid() {
        // A plan ending mid-block, extended onto a longer eval trace with a
        // floor: the tail must sit on stableness-block boundaries and never
        // dip below min_pool.
        let c = SaaConfig {
            min_pool: 3,
            stableness: 6,
            ..cfg()
        };
        let d = demand();
        let plan = d.slice(0, 27).unwrap(); // 27 = 4.5 blocks of 6
        let opt = crate::dp::optimize_dp(&plan, &c).unwrap();
        let schedule = extend_schedule(&opt, d.len(), &c);
        assert_eq!(schedule.len(), d.len());
        for (t, &v) in schedule.iter().enumerate() {
            assert!(v >= 3.0, "t={t}: {v} below min_pool");
            // Block-constant on the eval grid.
            assert_eq!(v, schedule[(t / 6) * 6], "t={t} off its block value");
        }
        // Planned prefix is untouched.
        assert_eq!(&schedule[..27], &opt.schedule[..]);
        // The whole sweep still works on the same split.
        let points = pareto_sweep(&plan, &d, &c, &default_alpha_grid()).unwrap();
        assert_eq!(points.len(), default_alpha_grid().len());
    }

    #[test]
    fn extension_clamps_fill_to_pool_bounds() {
        let c = SaaConfig {
            min_pool: 2,
            max_pool: 10,
            ..cfg()
        };
        // An empty plan must fall back to min_pool, not 0.
        let opt = crate::lp_model::OptimizedSchedule {
            schedule: vec![],
            objective: 0.0,
            per_block: vec![],
        };
        let schedule = extend_schedule(&opt, 8, &c);
        assert!(schedule.iter().all(|&v| v == 2.0), "{schedule:?}");
    }

    #[test]
    fn parallel_sweep_bit_identical_to_serial() {
        let d = demand();
        let plan = d.slice(0, 48).unwrap();
        let grid = default_alpha_grid();
        let serial = pareto_sweep_with_threads(1, &plan, &d, &cfg(), &grid).unwrap();
        for threads in [2, 4, 8] {
            let par = pareto_sweep_with_threads(threads, &plan, &d, &cfg(), &grid).unwrap();
            assert_eq!(par.len(), serial.len());
            for (a, b) in serial.iter().zip(&par) {
                assert_eq!(a.alpha_prime.to_bits(), b.alpha_prime.to_bits());
                assert_eq!(
                    a.idle_cluster_seconds.to_bits(),
                    b.idle_cluster_seconds.to_bits()
                );
                assert_eq!(a.wait_seconds.to_bits(), b.wait_seconds.to_bits());
                assert_eq!(a.mean_wait_secs.to_bits(), b.mean_wait_secs.to_bits());
                assert_eq!(a.hit_rate.to_bits(), b.hit_rate.to_bits());
            }
        }
    }
}
