//! The simplified time-of-day policy of §4.2: "one can also add constraints
//! to ensure that the pool size for the same day of week or time of day is
//! the same as for a more static controlling policy."
//!
//! Tying every block at the same time-of-day to one decision variable keeps
//! the problem linear (and here, exactly solvable): the cost of a tied
//! variable is the *sum* of its blocks' costs across days, and the ramp
//! constraint chains consecutive profile slots (cyclically, since the end
//! of one day abuts the start of the next).

use crate::lp_model::OptimizedSchedule;
use crate::{Result, SaaConfig, SaaError};
use ip_timeseries::TimeSeries;

/// Optimizes one pool-size *profile* of `period_blocks` stableness blocks
/// (e.g. one day) that repeats across the whole trace.
///
/// Solved exactly: block costs are aggregated per profile slot, then a DP
/// over the slots enforces the ramp constraint; the cyclic wrap (last slot →
/// first slot of the next day) is handled by trying every feasible first
/// slot value... pragmatically, by enumerating the first slot's value and
/// constraining the chain — exact because the pool sizes are small integers.
pub fn optimize_periodic_profile(
    demand: &TimeSeries,
    config: &SaaConfig,
    period_blocks: usize,
) -> Result<OptimizedSchedule> {
    config.validate()?;
    if period_blocks == 0 {
        return Err(SaaError::InvalidConfig("period_blocks must be > 0".into()));
    }
    let t_len = demand.len();
    if t_len == 0 {
        return Err(SaaError::InvalidDemand("empty demand".into()));
    }
    let d_cum = demand.cumulative();
    let tau = config.tau_intervals;
    let alpha = config.alpha_prime;
    let lo = config.min_pool as usize;
    let hi = config.max_pool as usize;
    let sizes = hi - lo + 1;
    let ramp = config.max_new_per_block as i64;

    // Aggregate the per-interval cost into profile slots: interval t is
    // governed by N at block(t−τ) (warm-up by slot 0), and that block maps
    // to slot `block mod period`.
    let mut cost = vec![vec![0.0f64; sizes]; period_blocks];
    for t in 0..t_len {
        let slot = if t < tau {
            0
        } else {
            config.block_of(t - tau) % period_blocks
        };
        let base = if t < tau { 0.0 } else { d_cum.get(t - tau) };
        for (ni, c) in cost[slot].iter_mut().enumerate() {
            let diff = base + (lo + ni) as f64 - d_cum.get(t);
            *c += alpha * diff.max(0.0) + (1.0 - alpha) * (-diff).max(0.0);
        }
    }

    // Cyclic-chain DP: fix the first slot's value, run the ramp-constrained
    // chain, and check the wrap-around ramp (slot 0 follows the last slot of
    // the previous day). Exact but O(sizes² · period) in the worst case;
    // pool sizes are bounded by config so this stays cheap.
    let mut best_total = f64::INFINITY;
    let mut best_profile: Vec<usize> = vec![0; period_blocks];
    for first in 0..sizes {
        // dp over slots 1..P with predecessor constraint n − n_prev ≤ ramp.
        let mut dp = vec![f64::INFINITY; sizes];
        let mut choice: Vec<Vec<usize>> = Vec::with_capacity(period_blocks);
        dp[first] = cost[0][first];
        choice.push((0..sizes).collect());
        for slot_cost in cost.iter().take(period_blocks).skip(1) {
            let mut suffix_min = vec![(f64::INFINITY, 0usize); sizes + 1];
            for i in (0..sizes).rev() {
                suffix_min[i] = if dp[i] <= suffix_min[i + 1].0 {
                    (dp[i], i)
                } else {
                    suffix_min[i + 1]
                };
            }
            let mut next = vec![f64::INFINITY; sizes];
            let mut pick = vec![0usize; sizes];
            for n in 0..sizes {
                let from = (n as i64 - ramp).max(0) as usize;
                let (best, arg) = suffix_min[from];
                if best.is_finite() {
                    next[n] = slot_cost[n] + best;
                    pick[n] = arg;
                }
            }
            dp = next;
            choice.push(pick);
        }
        // Wrap constraint: first − last ≤ ramp.
        for (last, &dp_last) in dp.iter().enumerate().take(sizes) {
            if !dp_last.is_finite() || first as i64 - last as i64 > ramp {
                continue;
            }
            if dp_last < best_total {
                best_total = dp_last;
                // Trace back.
                let mut profile = vec![0usize; period_blocks];
                let mut n = last;
                for slot in (1..period_blocks).rev() {
                    profile[slot] = n;
                    n = choice[slot][n];
                }
                profile[0] = first;
                best_profile = profile;
            }
        }
    }
    if !best_total.is_finite() {
        return Err(SaaError::InvalidConfig(
            "no feasible periodic profile under the ramp constraint".into(),
        ));
    }

    let per_block: Vec<f64> = (0..config.num_blocks(t_len))
        .map(|b| (lo + best_profile[b % period_blocks]) as f64)
        .collect();
    let schedule: Vec<f64> = (0..t_len).map(|t| per_block[config.block_of(t)]).collect();
    Ok(OptimizedSchedule {
        schedule,
        objective: best_total,
        per_block,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dp::optimize_dp;
    use crate::mechanism::evaluate_schedule;

    fn cfg() -> SaaConfig {
        SaaConfig {
            tau_intervals: 1,
            stableness: 4,
            min_pool: 0,
            max_pool: 12,
            max_new_per_block: 12,
            alpha_prime: 0.4,
        }
    }

    /// Two identical "days" of 16 intervals (4 blocks each).
    fn two_day_demand() -> TimeSeries {
        let day: Vec<f64> = vec![
            3.0, 1.0, 0.0, 0.0, 5.0, 2.0, 0.0, 0.0, 1.0, 1.0, 1.0, 1.0, 0.0, 0.0, 4.0, 2.0,
        ];
        let mut vals = day.clone();
        vals.extend(day);
        TimeSeries::new(30, vals).unwrap()
    }

    #[test]
    fn profile_repeats_across_days() {
        let demand = two_day_demand();
        let opt = optimize_periodic_profile(&demand, &cfg(), 4).unwrap();
        // Blocks 0..4 equal blocks 4..8.
        assert_eq!(&opt.per_block[..4], &opt.per_block[4..8]);
    }

    #[test]
    fn periodic_between_free_dp_and_static() {
        // Free DP ≤ periodic profile ≤ best static pool (a static pool is a
        // period-1 profile; a free schedule has no tying constraint).
        let demand = two_day_demand();
        let c = cfg();
        let free = optimize_dp(&demand, &c).unwrap();
        let periodic = optimize_periodic_profile(&demand, &c, 4).unwrap();
        let static_like = optimize_periodic_profile(&demand, &c, 1).unwrap();
        assert!(free.objective <= periodic.objective + 1e-9);
        assert!(periodic.objective <= static_like.objective + 1e-9);
    }

    #[test]
    fn objective_matches_mechanism() {
        let demand = two_day_demand();
        let c = cfg();
        let opt = optimize_periodic_profile(&demand, &c, 4).unwrap();
        let m = evaluate_schedule(&demand, &opt.schedule, c.tau_intervals).unwrap();
        let mech = m.objective(c.alpha_prime, demand.interval_secs());
        assert!((mech - opt.objective).abs() < 1e-9 * mech.max(1.0));
    }

    #[test]
    fn full_period_tying_is_vacuous() {
        // With the period spanning the whole trace (and the ramp slack),
        // nothing is tied and the profile must match the free DP optimum.
        let demand = two_day_demand();
        let c = cfg();
        let blocks = c.num_blocks(demand.len());
        let free = optimize_dp(&demand, &c).unwrap();
        let periodic = optimize_periodic_profile(&demand, &c, blocks).unwrap();
        assert!(
            (free.objective - periodic.objective).abs() < 1e-9,
            "free {} vs vacuous-periodic {}",
            free.objective,
            periodic.objective
        );
    }

    #[test]
    fn identical_days_keep_tying_cost_small() {
        // With perfectly repeating demand, tying days together only costs
        // the boundary effects (the τ warm-up on day 1 and the uncovered
        // tail), which are small relative to the total objective.
        let demand = two_day_demand();
        let c = cfg();
        let free = optimize_dp(&demand, &c).unwrap();
        let periodic = optimize_periodic_profile(&demand, &c, 4).unwrap();
        let gap = periodic.objective - free.objective;
        assert!(gap >= -1e-9);
        assert!(
            gap <= 0.25 * free.objective.max(1.0),
            "tying cost {} too large vs free {}",
            gap,
            free.objective
        );
    }

    #[test]
    fn validation() {
        let demand = two_day_demand();
        assert!(optimize_periodic_profile(&demand, &cfg(), 0).is_err());
        let empty = TimeSeries::zeros(30, 0);
        assert!(optimize_periodic_profile(&empty, &cfg(), 4).is_err());
    }
}
