//! The live-pool mechanism of Fig. 3: cumulative accounting and FCFS
//! per-request wait times for a given pool-size schedule.

use crate::{Result, SaaError};
use ip_timeseries::TimeSeries;

/// Evaluation of a pool-size schedule against a demand trace.
#[derive(Debug, Clone)]
pub struct PoolMechanics {
    /// Idle cluster-seconds: `Σ_t Δ⁺(t) · interval` (the grey area of
    /// Fig. 3) — this is the COGS proxy.
    pub idle_cluster_seconds: f64,
    /// Customer wait seconds: `Σ_t Δ⁻(t) · interval` (the red area).
    pub wait_seconds: f64,
    /// Requests served with zero wait divided by total requests. 1.0 when
    /// there are no requests.
    pub hit_rate: f64,
    /// Total number of requests in the trace.
    pub total_requests: u64,
    /// Mean wait per request, in seconds (0 when no requests).
    pub mean_wait_per_request_secs: f64,
    /// Per-interval idle cluster count `Δ⁺(t)`.
    pub idle_per_interval: Vec<f64>,
    /// Per-interval queued demand `Δ⁻(t)`.
    pub queued_per_interval: Vec<f64>,
}

impl PoolMechanics {
    /// Weighted objective of Eq. 16 in *cluster-intervals* (the unit the
    /// LP/DP optimize), for cross-checking optimizer outputs.
    pub fn objective(&self, alpha_prime: f64, interval_secs: u64) -> f64 {
        let idle_intervals = self.idle_cluster_seconds / interval_secs as f64;
        let wait_intervals = self.wait_seconds / interval_secs as f64;
        alpha_prime * idle_intervals + (1.0 - alpha_prime) * wait_intervals
    }
}

/// Evaluates a pool schedule against demand under the paper's mechanism.
///
/// `schedule[t]` is the target pool size during interval `t` and must cover
/// the full demand length. `tau_intervals` is the cluster creation latency.
///
/// Semantics (Eq. 1–3): `A(t) = D(t) + N(t)`; `A'(t) = A(t−τ)` for `t ≥ τ`
/// and `N(0)` before that (the initial pool is created ready at `t = 0`).
pub fn evaluate_schedule(
    demand: &TimeSeries,
    schedule: &[f64],
    tau_intervals: usize,
) -> Result<PoolMechanics> {
    let t_len = demand.len();
    if t_len == 0 {
        return Err(SaaError::InvalidDemand("empty demand".into()));
    }
    if schedule.len() < t_len {
        return Err(SaaError::InvalidDemand(format!(
            "schedule covers {} of {} intervals",
            schedule.len(),
            t_len
        )));
    }
    let interval = demand.interval_secs() as f64;
    let d_cum = demand.cumulative();

    // Ready-cluster curve A'(t).
    let a_ready: Vec<f64> = (0..t_len)
        .map(|t| {
            if t < tau_intervals {
                schedule[0]
            } else {
                d_cum.get(t - tau_intervals) + schedule[t - tau_intervals]
            }
        })
        .collect();

    let mut idle_per_interval = Vec::with_capacity(t_len);
    let mut queued_per_interval = Vec::with_capacity(t_len);
    let mut idle_sum = 0.0;
    let mut wait_sum = 0.0;
    for (t, &ready) in a_ready.iter().enumerate() {
        let diff = ready - d_cum.get(t);
        let idle = diff.max(0.0);
        let queued = (-diff).max(0.0);
        idle_per_interval.push(idle);
        queued_per_interval.push(queued);
        idle_sum += idle;
        wait_sum += queued;
    }

    // Per-request FCFS hits: request k (1-based) arrives at the first
    // interval where D ≥ k and is servable at the first interval where
    // A' ≥ k. Zero wait ⇔ servable at (or before) arrival.
    let total_requests = d_cum.get(t_len - 1).round().max(0.0) as u64;
    let mut hits = 0u64;
    let mut ready_ptr = 0usize;
    let mut arrive_ptr = 0usize;
    for k in 1..=total_requests {
        let kf = k as f64;
        while arrive_ptr < t_len && d_cum.get(arrive_ptr) < kf {
            arrive_ptr += 1;
        }
        while ready_ptr < t_len && a_ready[ready_ptr] < kf {
            ready_ptr += 1;
        }
        // A request beyond the ready curve within the trace counts as a miss.
        if ready_ptr <= arrive_ptr && ready_ptr < t_len {
            hits += 1;
        }
    }
    let hit_rate = if total_requests == 0 {
        1.0
    } else {
        hits as f64 / total_requests as f64
    };
    let wait_seconds = wait_sum * interval;

    Ok(PoolMechanics {
        idle_cluster_seconds: idle_sum * interval,
        wait_seconds,
        hit_rate,
        total_requests,
        mean_wait_per_request_secs: if total_requests == 0 {
            0.0
        } else {
            wait_seconds / total_requests as f64
        },
        idle_per_interval,
        queued_per_interval,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ts(vals: &[f64]) -> TimeSeries {
        TimeSeries::new(30, vals.to_vec()).unwrap()
    }

    #[test]
    fn no_demand_all_idle() {
        let demand = ts(&[0.0; 10]);
        let m = evaluate_schedule(&demand, &[4.0; 10], 2).unwrap();
        // Pool of 4 idles for all 10 intervals.
        assert_eq!(m.idle_cluster_seconds, 4.0 * 10.0 * 30.0);
        assert_eq!(m.wait_seconds, 0.0);
        assert_eq!(m.hit_rate, 1.0);
        assert_eq!(m.total_requests, 0);
    }

    #[test]
    fn zero_pool_all_requests_wait() {
        // One request per interval, empty pool: every request waits ~τ.
        let demand = ts(&[1.0; 10]);
        let m = evaluate_schedule(&demand, &[0.0; 10], 3).unwrap();
        assert_eq!(m.total_requests, 10);
        assert!(m.hit_rate < 0.05, "hit rate {}", m.hit_rate);
        assert!(m.wait_seconds > 0.0);
    }

    #[test]
    fn adequate_pool_absorbs_burst() {
        // Burst of 5 at t=0 with pool 5: all hits, pool re-hydrates.
        let mut vals = vec![0.0; 12];
        vals[0] = 5.0;
        let demand = ts(&vals);
        let m = evaluate_schedule(&demand, &[5.0; 12], 3).unwrap();
        assert_eq!(m.hit_rate, 1.0);
        assert_eq!(m.wait_seconds, 0.0);
    }

    #[test]
    fn pool_smaller_than_burst_causes_waits() {
        let mut vals = vec![0.0; 12];
        vals[0] = 5.0;
        let demand = ts(&vals);
        let m = evaluate_schedule(&demand, &[2.0; 12], 3).unwrap();
        // 2 hits out of 5; the other 3 wait for re-hydration.
        assert!((m.hit_rate - 0.4).abs() < 1e-9, "hit rate {}", m.hit_rate);
        assert!(m.wait_seconds > 0.0);
        // Queued demand of 3 for τ=3 intervals → 3·3·30 s of wait.
        assert_eq!(m.wait_seconds, 3.0 * 3.0 * 30.0);
    }

    #[test]
    fn wait_area_matches_per_request_sum() {
        // Constructed trace; check Σ Δ⁻ equals the per-request wait total.
        let demand = ts(&[2.0, 0.0, 3.0, 1.0, 0.0, 0.0, 4.0, 0.0]);
        let schedule = vec![1.0; 8];
        let m = evaluate_schedule(&demand, &schedule, 2).unwrap();
        assert_eq!(
            m.mean_wait_per_request_secs * m.total_requests as f64,
            m.wait_seconds
        );
    }

    #[test]
    fn idle_scales_with_pool_size() {
        let demand = ts(&[1.0; 20]);
        let small = evaluate_schedule(&demand, &[2.0; 20], 2).unwrap();
        let large = evaluate_schedule(&demand, &[8.0; 20], 2).unwrap();
        assert!(large.idle_cluster_seconds > small.idle_cluster_seconds);
        assert!(large.wait_seconds <= small.wait_seconds);
        assert!(large.hit_rate >= small.hit_rate);
    }

    #[test]
    fn complementary_slackness_per_interval() {
        // Δ⁺(t)·Δ⁻(t) = 0 pointwise: a pool cannot be simultaneously idle
        // and drained.
        let demand = ts(&[3.0, 0.0, 5.0, 2.0, 0.0, 1.0]);
        let m = evaluate_schedule(&demand, &[2.0; 6], 1).unwrap();
        for (i, q) in m.idle_per_interval.iter().zip(&m.queued_per_interval) {
            assert_eq!(i * q, 0.0);
        }
    }

    #[test]
    fn errors_on_bad_inputs() {
        let demand = ts(&[1.0; 5]);
        assert!(evaluate_schedule(&demand, &[1.0; 3], 2).is_err());
        let empty = TimeSeries::zeros(30, 0);
        assert!(evaluate_schedule(&empty, &[], 2).is_err());
    }

    #[test]
    fn objective_unit_conversion() {
        let demand = ts(&[0.0; 4]);
        let m = evaluate_schedule(&demand, &[2.0; 4], 1).unwrap();
        // 8 idle cluster-intervals, zero wait.
        assert_eq!(m.objective(1.0, 30), 8.0);
        assert_eq!(m.objective(0.0, 30), 0.0);
    }
}
