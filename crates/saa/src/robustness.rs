//! The §7.5 production-hardening strategies for spiky regions.
//!
//! Deployed after one region showed sporadic ~3-hour spikes the forecaster
//! could not time precisely, these three strategies lifted COGS savings from
//! 18% to 64% while holding the hit rate at 100%:
//!
//! 1. **Demand smoothing** — a max filter (Eq. 18) applied before
//!    optimization/training makes spikes "fatter" so a spike predicted a few
//!    minutes off still lands inside the provisioned window.
//! 2. **Extended stability** — a longer STABLENESS period forces the pool
//!    to rise ahead of a spike and stay up through it.
//! 3. **Output max filter** — the recommended pool size itself is
//!    max-filtered with `SF = τ`, guaranteeing the raised pool persists long
//!    enough for re-hydration to catch up.

use crate::dp::optimize_dp;
use crate::lp_model::OptimizedSchedule;
use crate::{Result, SaaConfig};
use ip_timeseries::{max_filter, TimeSeries};

/// Which hardening strategies to apply around the optimizer.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RobustnessStrategies {
    /// Max-filter the demand with this smoothing factor before optimizing
    /// (0 disables — Eq. 18's `SF`).
    pub demand_smoothing_factor: usize,
    /// Override the configuration's stableness with a longer period
    /// (`None` keeps the base value; the paper extends 5 min → 10 min).
    pub extended_stableness: Option<usize>,
    /// Max-filter the output schedule with `SF = τ`.
    pub output_max_filter: bool,
}

impl RobustnessStrategies {
    /// No hardening (the pre-§7.5 deployment).
    pub fn none() -> Self {
        Self {
            demand_smoothing_factor: 0,
            extended_stableness: None,
            output_max_filter: false,
        }
    }

    /// Everything on, with the paper's choices relative to `config`:
    /// smoothing `SF = 2τ`, stableness doubled, output filter on.
    pub fn all(config: &SaaConfig) -> Self {
        Self {
            demand_smoothing_factor: 2 * config.tau_intervals,
            extended_stableness: Some(config.stableness * 2),
            output_max_filter: true,
        }
    }
}

/// Runs the DP optimizer with the selected hardening strategies applied.
pub fn robust_optimize(
    demand: &TimeSeries,
    config: &SaaConfig,
    strategies: &RobustnessStrategies,
) -> Result<OptimizedSchedule> {
    let smoothed;
    let demand_ref = if strategies.demand_smoothing_factor > 0 {
        smoothed = max_filter(demand, strategies.demand_smoothing_factor);
        &smoothed
    } else {
        demand
    };
    let mut cfg = *config;
    if let Some(s) = strategies.extended_stableness {
        cfg.stableness = s;
    }
    let mut opt = optimize_dp(demand_ref, &cfg)?;
    if strategies.output_max_filter {
        let as_series = TimeSeries::new(demand.interval_secs(), opt.schedule.clone())
            .expect("interval preserved");
        opt.schedule = max_filter(&as_series, cfg.tau_intervals).into_values();
    }
    Ok(opt)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mechanism::evaluate_schedule;

    /// A near-idle trace with one sharp spike — the §7.5 failure mode in
    /// miniature.
    fn spiky() -> TimeSeries {
        let mut vals = vec![0.0; 60];
        vals[30] = 8.0;
        TimeSeries::new(30, vals).unwrap()
    }

    fn cfg() -> SaaConfig {
        SaaConfig {
            tau_intervals: 3,
            stableness: 5,
            min_pool: 0,
            max_pool: 20,
            max_new_per_block: 20,
            alpha_prime: 0.6,
        }
    }

    #[test]
    fn none_is_plain_dp() {
        let d = spiky();
        let plain = optimize_dp(&d, &cfg()).unwrap();
        let robust = robust_optimize(&d, &cfg(), &RobustnessStrategies::none()).unwrap();
        assert_eq!(plain.schedule, robust.schedule);
    }

    #[test]
    fn output_filter_dominates_raw_schedule() {
        let d = spiky();
        let strategies = RobustnessStrategies {
            demand_smoothing_factor: 0,
            extended_stableness: None,
            output_max_filter: true,
        };
        let plain = optimize_dp(&d, &cfg()).unwrap();
        let robust = robust_optimize(&d, &cfg(), &strategies).unwrap();
        for (r, p) in robust.schedule.iter().zip(&plain.schedule) {
            assert!(r >= p, "output filter must only raise the schedule");
        }
    }

    #[test]
    fn hardening_helps_mistimed_spikes() {
        // Plan on a trace whose spike is 4 intervals earlier than reality —
        // the imprecisely-timed spike of §7.5. Hardened planning must give a
        // better hit rate than naive planning.
        let mut plan_vals = vec![0.0; 60];
        plan_vals[26] = 8.0;
        let plan = TimeSeries::new(30, plan_vals).unwrap();
        let actual = spiky();
        let c = cfg();

        let naive = optimize_dp(&plan, &c).unwrap();
        let hardened = robust_optimize(&plan, &c, &RobustnessStrategies::all(&c)).unwrap();
        let m_naive = evaluate_schedule(&actual, &naive.schedule, c.tau_intervals).unwrap();
        let m_hard = evaluate_schedule(&actual, &hardened.schedule, c.tau_intervals).unwrap();
        assert!(
            m_hard.hit_rate > m_naive.hit_rate,
            "hardened {} !> naive {}",
            m_hard.hit_rate,
            m_naive.hit_rate
        );
    }

    #[test]
    fn smoothing_widens_provisioned_window() {
        let d = spiky();
        let c = cfg();
        let strategies = RobustnessStrategies {
            demand_smoothing_factor: 8,
            extended_stableness: None,
            output_max_filter: false,
        };
        let plain = optimize_dp(&d, &c).unwrap();
        let smooth = robust_optimize(&d, &c, &strategies).unwrap();
        // The smoothed plan provisions at least as much total capacity.
        let total_plain: f64 = plain.schedule.iter().sum();
        let total_smooth: f64 = smooth.schedule.iter().sum();
        assert!(total_smooth >= total_plain);
    }
}
