//! Exact integer dynamic program over stableness blocks.
//!
//! The LP of Eq. 8/16 relaxes pool sizes to reals; production rounds them.
//! Because the objective decomposes over blocks once the `τ` shift is
//! accounted for — the value `N_b` only affects intervals `t` with
//! `t − τ ∈ block b` (plus the warm-up `t < τ` for `N_0`) — and the only
//! coupling is the ramp constraint between consecutive blocks, the *integer*
//! problem is solvable exactly by DP in `O(blocks · max_pool)` with suffix
//! minima. Tests cross-check: `LP optimum ≤ DP optimum ≤ LP + rounding gap`.

use crate::lp_model::OptimizedSchedule;
use crate::{Result, SaaConfig, SaaError};
use ip_timeseries::TimeSeries;

/// Solves the SAA problem exactly over integer pool sizes.
pub fn optimize_dp(demand: &TimeSeries, config: &SaaConfig) -> Result<OptimizedSchedule> {
    let _span = ip_obs::span("saa.optimize_dp");
    Ok(SweepCache::build(demand, config)?.solve(config.alpha_prime))
}

/// The α-independent part of the DP, precomputed once per `(demand, config)`
/// and reused across an α' sweep.
///
/// The interval cost of Eq. 16 is *linear* in α':
///
/// ```text
/// cost(t, n) = α·Δ⁺(t, n) + (1 − α)·Δ⁻(t, n)
/// ```
///
/// so the O(T·S) scan that accumulates the per-(block, size) cost matrix —
/// the dominant term for production-length traces — only needs to compute
/// the idle (`Δ⁺`) and wait (`Δ⁻`) sums once. Each subsequent α' resolves
/// its cost matrix by a single fused multiply-add over S·B entries and pays
/// only the O(B·S) suffix-minima DP. An 11-point sweep thus costs roughly
/// one `optimize_dp` plus noise instead of eleven.
///
/// [`SweepCache::solve`] takes `&self`, so one cache can serve many threads
/// concurrently (the parallel sweep in [`crate::pareto::pareto_sweep`]).
#[derive(Debug, Clone)]
pub struct SweepCache {
    config: SaaConfig,
    t_len: usize,
    blocks: usize,
    sizes: usize,
    lo: usize,
    ramp: i64,
    /// Row-major `blocks × sizes`: Σ over owned intervals of `Δ⁺(t, lo+n)`.
    idle_sums: Vec<f64>,
    /// Row-major `blocks × sizes`: Σ over owned intervals of `Δ⁻(t, lo+n)`.
    wait_sums: Vec<f64>,
}

impl SweepCache {
    /// Scans the demand trace once, accumulating the α-independent idle and
    /// wait sums per (stableness block, pool size).
    pub fn build(demand: &TimeSeries, config: &SaaConfig) -> Result<Self> {
        let _span = ip_obs::span("saa.sweep_cache.build");
        config.validate()?;
        let t_len = demand.len();
        if t_len == 0 {
            return Err(SaaError::InvalidDemand("empty demand".into()));
        }
        let d_cum = demand.cumulative();
        let blocks = config.num_blocks(t_len);
        let tau = config.tau_intervals;
        let lo = config.min_pool as usize;
        let hi = config.max_pool as usize;
        let sizes = hi - lo + 1;

        // The value N_b governs A'(t) for t with t−τ ∈ block b; N_0
        // additionally covers the warm-up t < τ where A'(t) = N_0.
        let mut idle_sums = vec![0.0f64; blocks * sizes];
        let mut wait_sums = vec![0.0f64; blocks * sizes];
        for t in 0..t_len {
            let owner = if t < tau { 0 } else { config.block_of(t - tau) };
            let base = if t < tau { 0.0 } else { d_cum.get(t - tau) };
            let shift = base - d_cum.get(t);
            let idle_row = &mut idle_sums[owner * sizes..(owner + 1) * sizes];
            let wait_row = &mut wait_sums[owner * sizes..(owner + 1) * sizes];
            for ni in 0..sizes {
                let diff = shift + (lo + ni) as f64;
                idle_row[ni] += diff.max(0.0);
                wait_row[ni] += (-diff).max(0.0);
            }
        }
        Ok(Self {
            config: *config,
            t_len,
            blocks,
            sizes,
            lo,
            ramp: config.max_new_per_block as i64,
            idle_sums,
            wait_sums,
        })
    }

    /// The demand length this cache was built for.
    pub fn len(&self) -> usize {
        self.t_len
    }

    /// `true` when the cached trace is empty (never: `build` rejects it).
    pub fn is_empty(&self) -> bool {
        self.t_len == 0
    }

    /// Runs the ramp-coupled DP for one α', reusing the cached sums.
    pub fn solve(&self, alpha: f64) -> OptimizedSchedule {
        let sizes = self.sizes;
        let cost_row = |b: usize| -> Vec<f64> {
            let idle = &self.idle_sums[b * sizes..(b + 1) * sizes];
            let wait = &self.wait_sums[b * sizes..(b + 1) * sizes];
            idle.iter()
                .zip(wait)
                .map(|(&i, &w)| alpha * i + (1.0 - alpha) * w)
                .collect()
        };
        let (per_block_idx, objective) = self.run_dp(&cost_row);
        self.assemble(per_block_idx, objective)
    }

    /// The λ-penalized solve behind the fleet budget constraint
    /// (DESIGN.md §17): every block's cost gains
    /// `λ · (lo + n) · |block b|` — a price per cluster·interval of
    /// capacity — so raising λ trades quality for lower fleet-wide usage.
    /// `λ = 0` delegates to [`solve`](SweepCache::solve) (bit-identical).
    /// The returned `objective` is the **unpenalized** Eq. 16 cost of the
    /// chosen schedule, so solutions at different λ are comparable.
    pub fn solve_penalized(&self, alpha: f64, lambda: f64) -> OptimizedSchedule {
        if lambda == 0.0 {
            return self.solve(alpha);
        }
        let sizes = self.sizes;
        let st = self.config.stableness;
        let base_row = |b: usize| -> Vec<f64> {
            let idle = &self.idle_sums[b * sizes..(b + 1) * sizes];
            let wait = &self.wait_sums[b * sizes..(b + 1) * sizes];
            idle.iter()
                .zip(wait)
                .map(|(&i, &w)| alpha * i + (1.0 - alpha) * w)
                .collect()
        };
        let width = |b: usize| -> f64 { (((b + 1) * st).min(self.t_len) - b * st) as f64 };
        let cost_row = |b: usize| -> Vec<f64> {
            let w = width(b);
            base_row(b)
                .into_iter()
                .enumerate()
                .map(|(ni, c)| c + lambda * w * (self.lo + ni) as f64)
                .collect()
        };
        let (per_block_idx, _) = self.run_dp(&cost_row);
        let objective = per_block_idx
            .iter()
            .enumerate()
            .map(|(b, &n)| base_row(b)[n])
            .sum();
        self.assemble(per_block_idx, objective)
    }

    /// The DP core: per-block size indices of the optimal ramp-coupled
    /// chain under `cost_row`, plus its DP objective. Ties break toward
    /// the smaller size index (the suffix scan and the final argmin both
    /// keep the first minimum), so the result is deterministic.
    fn run_dp(&self, cost_row: &dyn Fn(usize) -> Vec<f64>) -> (Vec<usize>, f64) {
        let (blocks, sizes) = (self.blocks, self.sizes);
        // DP with ramp coupling: dp[b][n] = cost[b][n] + min_{n' ≥ n − ramp} dp[b−1][n'].
        let mut dp = cost_row(0);
        let mut choice: Vec<Vec<usize>> = Vec::with_capacity(blocks);
        choice.push((0..sizes).collect()); // block 0 has no predecessor
        for b in 1..blocks {
            // Suffix minima of dp: suffix_min[i] = argmin/min over n' ≥ i.
            let mut suffix_min = vec![(f64::INFINITY, 0usize); sizes + 1];
            for i in (0..sizes).rev() {
                suffix_min[i] = if dp[i] <= suffix_min[i + 1].0 {
                    (dp[i], i)
                } else {
                    suffix_min[i + 1]
                };
            }
            let cost = cost_row(b);
            let mut next = vec![0.0f64; sizes];
            let mut pick = vec![0usize; sizes];
            for n in 0..sizes {
                // n' must satisfy (lo+n) − (lo+n') ≤ ramp  ⇔  n' ≥ n − ramp.
                let from = (n as i64 - self.ramp).max(0) as usize;
                let (best, arg) = suffix_min[from];
                next[n] = cost[n] + best;
                pick[n] = arg;
            }
            dp = next;
            choice.push(pick);
        }

        // Trace back the optimal chain.
        let (mut best_n, best_obj) = dp
            .iter()
            .enumerate()
            .map(|(n, &v)| (n, v))
            .min_by(|a, b| a.1.partial_cmp(&b.1).unwrap())
            .expect("sizes >= 1");
        let mut per_block_rev = vec![best_n];
        for b in (1..blocks).rev() {
            best_n = choice[b][best_n];
            per_block_rev.push(best_n);
        }
        per_block_rev.reverse();
        (per_block_rev, best_obj)
    }

    /// Expands per-block size indices into the interval schedule.
    fn assemble(&self, per_block_idx: Vec<usize>, objective: f64) -> OptimizedSchedule {
        let per_block: Vec<f64> = per_block_idx
            .iter()
            .map(|&n| (self.lo + n) as f64)
            .collect();
        let schedule: Vec<f64> = (0..self.t_len)
            .map(|t| per_block[self.config.block_of(t)])
            .collect();
        OptimizedSchedule {
            schedule,
            objective,
            per_block,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lp_model::optimize_lp;
    use crate::mechanism::evaluate_schedule;

    fn ts(vals: &[f64]) -> TimeSeries {
        TimeSeries::new(30, vals.to_vec()).unwrap()
    }

    fn cfg() -> SaaConfig {
        SaaConfig {
            tau_intervals: 2,
            stableness: 4,
            min_pool: 0,
            max_pool: 30,
            max_new_per_block: 30,
            alpha_prime: 0.5,
        }
    }

    #[test]
    fn zero_demand_zero_pool() {
        let demand = ts(&[0.0; 16]);
        let opt = optimize_dp(&demand, &cfg()).unwrap();
        assert!(opt.per_block.iter().all(|&n| n == 0.0));
        assert_eq!(opt.objective, 0.0);
    }

    #[test]
    fn dp_objective_matches_mechanism() {
        let vals: Vec<f64> = (0..32).map(|t| ((t * 3) % 7) as f64).collect();
        let demand = ts(&vals);
        let c = cfg();
        let opt = optimize_dp(&demand, &c).unwrap();
        let m = evaluate_schedule(&demand, &opt.schedule, c.tau_intervals).unwrap();
        let mech_obj = m.objective(c.alpha_prime, demand.interval_secs());
        assert!(
            (mech_obj - opt.objective).abs() < 1e-9 * mech_obj.max(1.0),
            "DP {} vs mechanism {}",
            opt.objective,
            mech_obj
        );
    }

    #[test]
    fn lp_lower_bounds_dp_within_rounding() {
        // LP relaxation ≤ integer DP optimum, and the gap is small.
        let vals: Vec<f64> = (0..40).map(|t| (t % 9) as f64 * 1.3).collect();
        let demand = ts(&vals);
        let c = cfg();
        let lp = optimize_lp(&demand, &c).unwrap();
        let dp = optimize_dp(&demand, &c).unwrap();
        assert!(
            lp.objective <= dp.objective + 1e-6,
            "LP {} must lower-bound DP {}",
            lp.objective,
            dp.objective
        );
        // Rounding gap per block is at most 1 cluster over the block span.
        let blocks = c.num_blocks(demand.len()) as f64;
        let gap_bound = blocks * c.stableness as f64;
        assert!(dp.objective - lp.objective <= gap_bound, "gap too large");
    }

    #[test]
    fn dp_beats_any_rounding_of_lp() {
        let vals: Vec<f64> = (0..40)
            .map(|t| if t % 10 < 2 { 8.0 } else { 1.0 })
            .collect();
        let demand = ts(&vals);
        let c = cfg();
        let lp = optimize_lp(&demand, &c).unwrap();
        let dp = optimize_dp(&demand, &c).unwrap();
        // Round the LP solution up and down; DP must be at least as good as
        // the better of the two (it is the exact integer optimum).
        for round in [f64::floor, f64::ceil] {
            let rounded: Vec<f64> = lp.schedule.iter().map(|&v| round(v)).collect();
            let m = evaluate_schedule(&demand, &rounded, c.tau_intervals).unwrap();
            let obj = m.objective(c.alpha_prime, demand.interval_secs());
            assert!(
                dp.objective <= obj + 1e-6,
                "DP {} beaten by rounded LP {}",
                dp.objective,
                obj
            );
        }
    }

    #[test]
    fn dp_integer_outputs() {
        let vals: Vec<f64> = (0..24).map(|t| (t % 5) as f64).collect();
        let opt = optimize_dp(&ts(&vals), &cfg()).unwrap();
        for &n in &opt.per_block {
            assert_eq!(n, n.round());
        }
    }

    #[test]
    fn ramp_respected_by_dp() {
        let mut vals = vec![0.0; 32];
        for v in vals.iter_mut().skip(16) {
            *v = 20.0;
        }
        let mut c = cfg();
        c.max_new_per_block = 2;
        c.alpha_prime = 0.05;
        let opt = optimize_dp(&ts(&vals), &c).unwrap();
        for w in opt.per_block.windows(2) {
            assert!(w[1] - w[0] <= 2.0 + 1e-9, "{:?}", opt.per_block);
        }
    }

    #[test]
    fn sweep_cache_matches_fresh_optimize_per_alpha() {
        // One cache must reproduce optimize_dp exactly for every α' — the
        // warm-started sweep is only a win if it changes nothing.
        let vals: Vec<f64> = (0..48).map(|t| ((t * 5) % 11) as f64).collect();
        let demand = ts(&vals);
        let base = cfg();
        let cache = SweepCache::build(&demand, &base).unwrap();
        for alpha in [0.02, 0.3, 0.5, 0.77, 0.99] {
            let from_cache = cache.solve(alpha);
            let fresh = optimize_dp(
                &demand,
                &SaaConfig {
                    alpha_prime: alpha,
                    ..base
                },
            )
            .unwrap();
            assert_eq!(from_cache.per_block, fresh.per_block, "alpha {alpha}");
            assert_eq!(from_cache.schedule, fresh.schedule, "alpha {alpha}");
            assert_eq!(
                from_cache.objective.to_bits(),
                fresh.objective.to_bits(),
                "alpha {alpha}"
            );
        }
    }

    #[test]
    fn penalized_solve_prices_capacity_down() {
        let vals: Vec<f64> = (0..48).map(|t| ((t * 5) % 11) as f64).collect();
        let demand = ts(&vals);
        let cache = SweepCache::build(&demand, &cfg()).unwrap();
        // λ = 0 is bit-identical to the plain solve.
        let plain = cache.solve(0.5);
        let zero = cache.solve_penalized(0.5, 0.0);
        assert_eq!(plain.schedule, zero.schedule);
        assert_eq!(plain.objective.to_bits(), zero.objective.to_bits());
        // Usage (cluster·intervals) is non-increasing in λ; the reported
        // objective stays the unpenalized cost of the chosen schedule.
        let usage = |o: &OptimizedSchedule| o.schedule.iter().sum::<f64>();
        let mut prev = usage(&plain);
        for lambda in [0.1, 0.5, 2.0, 10.0] {
            let opt = cache.solve_penalized(0.5, lambda);
            let u = usage(&opt);
            assert!(u <= prev + 1e-9, "usage rose at lambda {lambda}");
            assert!(
                opt.objective >= plain.objective - 1e-9,
                "penalized pick cannot beat the unconstrained optimum"
            );
            let m = evaluate_schedule(&demand, &opt.schedule, cfg().tau_intervals).unwrap();
            let true_obj = m.objective(0.5, demand.interval_secs());
            assert!(
                (true_obj - opt.objective).abs() < 1e-9 * true_obj.max(1.0),
                "objective must be the unpenalized cost"
            );
            prev = u;
        }
        // A large enough λ squeezes the pool to the floor.
        let crushed = cache.solve_penalized(0.5, 1e6);
        assert!(crushed.per_block.iter().all(|&n| n == 0.0));
    }

    #[test]
    fn brute_force_agreement_small_instance() {
        // Exhaustive check on a tiny instance: 2 blocks, pool sizes 0..=4.
        let vals = [3.0, 0.0, 1.0, 4.0, 0.0, 2.0, 1.0, 0.0];
        let demand = ts(&vals);
        let c = SaaConfig {
            tau_intervals: 1,
            stableness: 4,
            min_pool: 0,
            max_pool: 4,
            max_new_per_block: 4,
            alpha_prime: 0.4,
        };
        let dp = optimize_dp(&demand, &c).unwrap();
        let mut best = f64::INFINITY;
        for n0 in 0..=4u32 {
            for n1 in 0..=4u32 {
                if n1 as i64 - n0 as i64 > 4 {
                    continue;
                }
                let schedule: Vec<f64> = (0..8)
                    .map(|t| if t < 4 { f64::from(n0) } else { f64::from(n1) })
                    .collect();
                let m = evaluate_schedule(&demand, &schedule, 1).unwrap();
                best = best.min(m.objective(0.4, 30));
            }
        }
        assert!(
            (dp.objective - best).abs() < 1e-9,
            "DP {} vs brute force {}",
            dp.objective,
            best
        );
    }
}
