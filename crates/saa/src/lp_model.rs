//! The linear program of Eq. 1–11 / Eq. 16, built on the `ip-lp` simplex.

use crate::{Result, SaaConfig, SaaError};
use ip_lp::{Problem, Sense};
use ip_timeseries::TimeSeries;

/// Result of an LP (or DP) pool-size optimization.
#[derive(Debug, Clone)]
pub struct OptimizedSchedule {
    /// Pool size per interval (piecewise constant over stableness blocks).
    pub schedule: Vec<f64>,
    /// Optimal objective value in cluster-intervals
    /// (`α'·ΣΔ⁺ + (1−α')·ΣΔ⁻`).
    pub objective: f64,
    /// Pool size per stableness block (the decision variables).
    pub per_block: Vec<f64>,
}

/// Solves the SAA linear program for the given demand trace.
///
/// Variables: one pool size `N_b` per stableness block plus `Δ⁺(t), Δ⁻(t)`
/// per interval. Constraints follow Eq. 1–11 with the Eq. 16 objective; the
/// ready-cluster curve is `A'(t) = D(t−τ) + N_{block(t−τ)}` for `t ≥ τ` and
/// `N_0` before that.
pub fn optimize_lp(demand: &TimeSeries, config: &SaaConfig) -> Result<OptimizedSchedule> {
    config.validate()?;
    let t_len = demand.len();
    if t_len == 0 {
        return Err(SaaError::InvalidDemand("empty demand".into()));
    }
    let d_cum = demand.cumulative();
    let blocks = config.num_blocks(t_len);
    let tau = config.tau_intervals;
    let alpha = config.alpha_prime;

    let mut p = Problem::minimize();
    let n_vars: Vec<_> = (0..blocks)
        .map(|b| {
            p.add_var(
                format!("N{b}"),
                f64::from(config.min_pool),
                f64::from(config.max_pool),
            )
        })
        .collect();
    let plus: Vec<_> = (0..t_len)
        .map(|t| p.add_var(format!("dp{t}"), 0.0, f64::INFINITY))
        .collect();
    let minus: Vec<_> = (0..t_len)
        .map(|t| p.add_var(format!("dm{t}"), 0.0, f64::INFINITY))
        .collect();

    for t in 0..t_len {
        p.set_objective_coeff(plus[t], alpha);
        p.set_objective_coeff(minus[t], 1.0 - alpha);
    }

    // Eq. 4–7 with A'(t) substituted (Eq. 1–3).
    for t in 0..t_len {
        let (n_block, base) = if t < tau {
            (n_vars[0], 0.0)
        } else {
            (n_vars[config.block_of(t - tau)], d_cum.get(t - tau))
        };
        // Δ⁺(t) ≥ A'(t) − D(t)  ⇔  Δ⁺(t) − N_b ≥ base − D(t)
        p.add_constraint(
            vec![(plus[t], 1.0), (n_block, -1.0)],
            Sense::Ge,
            base - d_cum.get(t),
        );
        // Δ⁻(t) ≥ D(t) − A'(t)  ⇔  Δ⁻(t) + N_b ≥ D(t) − base
        p.add_constraint(
            vec![(minus[t], 1.0), (n_block, 1.0)],
            Sense::Ge,
            d_cum.get(t) - base,
        );
    }

    // Eq. 9: ramp-up limit between consecutive blocks.
    for b in 1..blocks {
        p.add_constraint(
            vec![(n_vars[b], 1.0), (n_vars[b - 1], -1.0)],
            Sense::Le,
            f64::from(config.max_new_per_block),
        );
    }

    let sol = ip_lp::solve(&p).map_err(|e| SaaError::Solver(e.to_string()))?;
    let per_block: Vec<f64> = n_vars.iter().map(|&v| sol.value(v)).collect();
    let schedule: Vec<f64> = (0..t_len).map(|t| per_block[config.block_of(t)]).collect();
    Ok(OptimizedSchedule {
        schedule,
        objective: sol.objective,
        per_block,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mechanism::evaluate_schedule;

    fn ts(vals: &[f64]) -> TimeSeries {
        TimeSeries::new(30, vals.to_vec()).unwrap()
    }

    fn cfg() -> SaaConfig {
        SaaConfig {
            tau_intervals: 2,
            stableness: 4,
            min_pool: 0,
            max_pool: 50,
            max_new_per_block: 50,
            alpha_prime: 0.5,
        }
    }

    #[test]
    fn zero_demand_gives_zero_pool() {
        let demand = ts(&[0.0; 16]);
        let opt = optimize_lp(&demand, &cfg()).unwrap();
        assert!(
            opt.per_block.iter().all(|&n| n.abs() < 1e-7),
            "{:?}",
            opt.per_block
        );
        assert!(opt.objective.abs() < 1e-7);
    }

    #[test]
    fn constant_demand_sizes_pool_to_rate() {
        // 2 requests every interval, τ=2: the pool must buffer 2·τ = 4
        // requests to give zero wait; idle-leaning α' shrinks it below that.
        let demand = ts(&[2.0; 24]);
        let mut c = cfg();
        c.alpha_prime = 0.1; // wait-averse
        let opt = optimize_lp(&demand, &c).unwrap();
        let m = evaluate_schedule(&demand, &opt.schedule, c.tau_intervals).unwrap();
        assert!(m.hit_rate > 0.9, "hit rate {}", m.hit_rate);
        // Pool size should be about rate·τ = 4 in steady state.
        let steady = opt.per_block[opt.per_block.len() / 2];
        assert!((3.0..=6.0).contains(&steady), "steady pool {steady}");
    }

    #[test]
    fn alpha_extremes_trade_idle_for_wait() {
        let vals: Vec<f64> = (0..32)
            .map(|t| if t % 8 == 0 { 6.0 } else { 1.0 })
            .collect();
        let demand = ts(&vals);
        let mut idle_cfg = cfg();
        idle_cfg.alpha_prime = 0.95; // idle-averse → small pool
        let mut wait_cfg = cfg();
        wait_cfg.alpha_prime = 0.05; // wait-averse → big pool
        let lean = optimize_lp(&demand, &idle_cfg).unwrap();
        let rich = optimize_lp(&demand, &wait_cfg).unwrap();
        let m_lean = evaluate_schedule(&demand, &lean.schedule, 2).unwrap();
        let m_rich = evaluate_schedule(&demand, &rich.schedule, 2).unwrap();
        assert!(m_lean.idle_cluster_seconds <= m_rich.idle_cluster_seconds);
        assert!(m_lean.wait_seconds >= m_rich.wait_seconds);
    }

    #[test]
    fn objective_matches_mechanism_evaluation() {
        let vals: Vec<f64> = (0..24).map(|t| ((t * 7) % 5) as f64).collect();
        let demand = ts(&vals);
        let c = cfg();
        let opt = optimize_lp(&demand, &c).unwrap();
        let m = evaluate_schedule(&demand, &opt.schedule, c.tau_intervals).unwrap();
        let mech_obj = m.objective(c.alpha_prime, demand.interval_secs());
        assert!(
            (mech_obj - opt.objective).abs() < 1e-5 * mech_obj.max(1.0),
            "LP objective {} vs mechanism {}",
            opt.objective,
            mech_obj
        );
    }

    #[test]
    fn ramp_constraint_respected() {
        // A huge step in demand with a tight ramp: blocks can only grow by 1.
        let mut vals = vec![0.0; 24];
        for v in vals.iter_mut().skip(12) {
            *v = 10.0;
        }
        let demand = ts(&vals);
        let mut c = cfg();
        c.max_new_per_block = 1;
        c.alpha_prime = 0.05;
        let opt = optimize_lp(&demand, &c).unwrap();
        for w in opt.per_block.windows(2) {
            assert!(
                w[1] - w[0] <= 1.0 + 1e-7,
                "ramp violated: {:?}",
                opt.per_block
            );
        }
    }

    #[test]
    fn pool_bounds_respected() {
        let demand = ts(&[50.0; 16]);
        let mut c = cfg();
        c.max_pool = 7;
        c.min_pool = 2;
        c.alpha_prime = 0.05;
        let opt = optimize_lp(&demand, &c).unwrap();
        for &n in &opt.per_block {
            assert!(
                (2.0 - 1e-7..=7.0 + 1e-7).contains(&n),
                "bounds violated: {n}"
            );
        }
    }

    #[test]
    fn schedule_piecewise_constant() {
        let vals: Vec<f64> = (0..20).map(|t| (t % 4) as f64).collect();
        let demand = ts(&vals);
        let c = cfg();
        let opt = optimize_lp(&demand, &c).unwrap();
        for (t, &v) in opt.schedule.iter().enumerate() {
            assert_eq!(v, opt.per_block[c.block_of(t)]);
        }
    }

    #[test]
    fn empty_demand_rejected() {
        let empty = TimeSeries::zeros(30, 0);
        assert!(optimize_lp(&empty, &cfg()).is_err());
    }
}
