//! The static-pool baseline: one fixed pool size for the whole horizon.
//!
//! This is the pre-existing production strategy the paper's savings are
//! measured against ("compared to traditional pre-provisioned pools").

use crate::mechanism::{evaluate_schedule, PoolMechanics};
use crate::{Result, SaaError};
use ip_timeseries::TimeSeries;

/// Builds a constant schedule of size `n` covering the demand.
pub fn static_schedule(demand_len: usize, n: u32) -> Vec<f64> {
    vec![f64::from(n); demand_len]
}

/// Finds the smallest static pool size achieving at least `target_hit_rate`
/// on the demand trace, by binary search (the hit rate is monotone in the
/// pool size). Returns the size and its mechanics, or an error when even
/// `max_pool` cannot reach the target.
pub fn optimal_static_for_hit_rate(
    demand: &TimeSeries,
    tau_intervals: usize,
    target_hit_rate: f64,
    max_pool: u32,
) -> Result<(u32, PoolMechanics)> {
    if !(0.0..=1.0).contains(&target_hit_rate) {
        return Err(SaaError::InvalidConfig(format!(
            "target hit rate must be in [0,1], got {target_hit_rate}"
        )));
    }
    let reaches = |n: u32| -> Result<PoolMechanics> {
        evaluate_schedule(demand, &static_schedule(demand.len(), n), tau_intervals)
    };
    if reaches(max_pool)?.hit_rate < target_hit_rate {
        return Err(SaaError::InvalidConfig(format!(
            "even max_pool {max_pool} cannot reach hit rate {target_hit_rate}"
        )));
    }
    let (mut lo, mut hi) = (0u32, max_pool);
    while lo < hi {
        let mid = lo + (hi - lo) / 2;
        if reaches(mid)?.hit_rate >= target_hit_rate {
            hi = mid;
        } else {
            lo = mid + 1;
        }
    }
    let mech = reaches(lo)?;
    Ok((lo, mech))
}

/// Sweeps static pool sizes, returning `(n, mechanics)` per size — the
/// static baseline curve of Fig. 5.
pub fn static_sweep(
    demand: &TimeSeries,
    tau_intervals: usize,
    sizes: impl IntoIterator<Item = u32>,
) -> Result<Vec<(u32, PoolMechanics)>> {
    sizes
        .into_iter()
        .map(|n| {
            evaluate_schedule(demand, &static_schedule(demand.len(), n), tau_intervals)
                .map(|m| (n, m))
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn bursty_demand() -> TimeSeries {
        let vals: Vec<f64> = (0..64)
            .map(|t| if t % 16 == 0 { 6.0 } else { 1.0 })
            .collect();
        TimeSeries::new(30, vals).unwrap()
    }

    #[test]
    fn hit_rate_monotone_in_pool_size() {
        let d = bursty_demand();
        let sweep = static_sweep(&d, 3, 0..=12).unwrap();
        for w in sweep.windows(2) {
            assert!(w[1].1.hit_rate >= w[0].1.hit_rate - 1e-12);
            assert!(w[1].1.idle_cluster_seconds >= w[0].1.idle_cluster_seconds);
        }
    }

    #[test]
    fn binary_search_finds_minimal_size() {
        let d = bursty_demand();
        let (n, mech) = optimal_static_for_hit_rate(&d, 3, 0.99, 100).unwrap();
        assert!(mech.hit_rate >= 0.99);
        if n > 0 {
            // One cluster fewer must miss the target (minimality).
            let smaller = evaluate_schedule(&d, &static_schedule(d.len(), n - 1), 3).unwrap();
            assert!(smaller.hit_rate < 0.99, "size {} not minimal", n);
        }
    }

    #[test]
    fn unreachable_target_errors() {
        let d = bursty_demand();
        assert!(optimal_static_for_hit_rate(&d, 3, 0.999, 0).is_err());
        assert!(optimal_static_for_hit_rate(&d, 3, 1.5, 10).is_err());
    }

    #[test]
    fn zero_target_is_zero_pool() {
        let d = bursty_demand();
        let (n, _) = optimal_static_for_hit_rate(&d, 3, 0.0, 10).unwrap();
        assert_eq!(n, 0);
    }
}
