//! Property-based invariants of the pool mechanism and the optimizers.

use ip_saa::{evaluate_schedule, optimize_dp, optimize_lp, pareto_sweep_with_threads, SaaConfig};
use ip_timeseries::TimeSeries;
use proptest::prelude::*;

fn demand_strategy() -> impl Strategy<Value = TimeSeries> {
    proptest::collection::vec(0.0f64..6.0, 12..48).prop_map(|vals| {
        let vals: Vec<f64> = vals.into_iter().map(|v| v.floor()).collect();
        TimeSeries::new(30, vals).unwrap()
    })
}

fn small_config() -> SaaConfig {
    SaaConfig {
        tau_intervals: 2,
        stableness: 4,
        min_pool: 0,
        max_pool: 25,
        max_new_per_block: 25,
        alpha_prime: 0.5,
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn pareto_sweep_parallel_bit_identical_to_serial(
        demand in demand_strategy(),
        threads in 2usize..9,
    ) {
        let c = small_config();
        let grid = [0.05, 0.2, 0.5, 0.8, 0.95];
        let serial = pareto_sweep_with_threads(1, &demand, &demand, &c, &grid).unwrap();
        let par = pareto_sweep_with_threads(threads, &demand, &demand, &c, &grid).unwrap();
        prop_assert_eq!(serial.len(), par.len());
        for (a, b) in serial.iter().zip(&par) {
            prop_assert_eq!(a.idle_cluster_seconds.to_bits(), b.idle_cluster_seconds.to_bits());
            prop_assert_eq!(a.wait_seconds.to_bits(), b.wait_seconds.to_bits());
            prop_assert_eq!(a.mean_wait_secs.to_bits(), b.mean_wait_secs.to_bits());
            prop_assert_eq!(a.hit_rate.to_bits(), b.hit_rate.to_bits());
        }
    }

    #[test]
    fn mechanism_complementary_slackness(demand in demand_strategy(), pool in 0u32..8) {
        let schedule = vec![f64::from(pool); demand.len()];
        let m = evaluate_schedule(&demand, &schedule, 2).unwrap();
        for (i, q) in m.idle_per_interval.iter().zip(&m.queued_per_interval) {
            prop_assert!(i * q == 0.0, "idle {i} and queued {q} both nonzero");
        }
        prop_assert!(m.hit_rate >= 0.0 && m.hit_rate <= 1.0);
        prop_assert!(m.idle_cluster_seconds >= 0.0 && m.wait_seconds >= 0.0);
    }

    #[test]
    fn bigger_pool_never_hurts_service(demand in demand_strategy(), pool in 0u32..6) {
        let small = evaluate_schedule(&demand, &vec![f64::from(pool); demand.len()], 2).unwrap();
        let large = evaluate_schedule(&demand, &vec![f64::from(pool + 2); demand.len()], 2).unwrap();
        prop_assert!(large.hit_rate >= small.hit_rate - 1e-12);
        prop_assert!(large.wait_seconds <= small.wait_seconds + 1e-9);
        prop_assert!(large.idle_cluster_seconds >= small.idle_cluster_seconds - 1e-9);
    }

    #[test]
    fn dp_no_worse_than_any_static_pool(demand in demand_strategy(), static_n in 0u32..10) {
        let c = small_config();
        let dp = optimize_dp(&demand, &c).unwrap();
        let static_m = evaluate_schedule(&demand, &vec![f64::from(static_n); demand.len()], c.tau_intervals).unwrap();
        let static_obj = static_m.objective(c.alpha_prime, demand.interval_secs());
        prop_assert!(dp.objective <= static_obj + 1e-6,
            "DP {} beaten by static pool {} ({})", dp.objective, static_n, static_obj);
    }

    #[test]
    fn lp_lower_bounds_dp(demand in demand_strategy()) {
        let c = small_config();
        let lp = optimize_lp(&demand, &c).unwrap();
        let dp = optimize_dp(&demand, &c).unwrap();
        prop_assert!(lp.objective <= dp.objective + 1e-6,
            "LP {} above DP {}", lp.objective, dp.objective);
    }

    #[test]
    fn dp_objective_equals_mechanism(demand in demand_strategy(), alpha in 0.05f64..0.95) {
        let c = SaaConfig { alpha_prime: alpha, ..small_config() };
        let dp = optimize_dp(&demand, &c).unwrap();
        let m = evaluate_schedule(&demand, &dp.schedule, c.tau_intervals).unwrap();
        let mech = m.objective(alpha, demand.interval_secs());
        prop_assert!((mech - dp.objective).abs() < 1e-6 * mech.max(1.0),
            "DP {} vs mechanism {}", dp.objective, mech);
    }

    #[test]
    fn schedules_respect_bounds_and_ramp(demand in demand_strategy()) {
        let c = SaaConfig { min_pool: 1, max_pool: 6, max_new_per_block: 2, ..small_config() };
        let dp = optimize_dp(&demand, &c).unwrap();
        for &n in &dp.per_block {
            prop_assert!((1.0..=6.0).contains(&n));
        }
        for w in dp.per_block.windows(2) {
            prop_assert!(w[1] - w[0] <= 2.0 + 1e-9);
        }
    }
}
