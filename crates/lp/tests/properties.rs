//! Property-based tests for the simplex solver.
//!
//! Strategy: generate random LPs that are feasible *by construction* (the
//! constraints are sampled around a known interior point), solve them, and
//! check (a) the returned point is feasible, (b) no random feasible candidate
//! beats the reported optimum, and (c) the objective matches the point.

use ip_lp::{solve, LpError, Problem, Sense, Var};
use proptest::prelude::*;

#[derive(Debug, Clone)]
struct RandomLp {
    problem: Problem,
    vars: Vec<Var>,
    /// Interior point used to construct the instance (guaranteed feasible).
    witness: Vec<f64>,
}

fn random_feasible_lp() -> impl Strategy<Value = RandomLp> {
    (2usize..=5, 1usize..=6).prop_flat_map(|(n, m)| {
        let coeffs = proptest::collection::vec(-3.0f64..3.0, n * m);
        let witness = proptest::collection::vec(0.5f64..4.0, n);
        let costs = proptest::collection::vec(-2.0f64..2.0, n);
        let slacks = proptest::collection::vec(0.1f64..5.0, m);
        (coeffs, witness, costs, slacks).prop_map(move |(coeffs, witness, costs, slacks)| {
            let mut p = Problem::minimize();
            let vars: Vec<_> = (0..n)
                .map(|i| p.add_var(format!("x{i}"), 0.0, 10.0))
                .collect();
            for (i, &c) in costs.iter().enumerate() {
                p.set_objective_coeff(vars[i], c);
            }
            for r in 0..m {
                let row: Vec<f64> = coeffs[r * n..(r + 1) * n].to_vec();
                let lhs_at_witness: f64 = row.iter().zip(&witness).map(|(a, w)| a * w).sum();
                // The witness satisfies each row strictly, so the LP is
                // feasible; the box bounds keep it bounded.
                let terms: Vec<_> = vars.iter().zip(&row).map(|(&v, &a)| (v, a)).collect();
                p.add_constraint(terms, Sense::Le, lhs_at_witness + slacks[r]);
            }
            RandomLp {
                problem: p,
                vars,
                witness,
            }
        })
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn solution_feasible_and_optimal_vs_witness(lp in random_feasible_lp()) {
        let sol = solve(&lp.problem).expect("constructed LP must be solvable");
        prop_assert!(lp.problem.is_feasible(&sol.values, 1e-6),
            "solver returned infeasible point {:?}", sol.values);
        // Objective value consistent with the point.
        let obj_at = lp.problem.objective_at(&sol.values);
        prop_assert!((obj_at - sol.objective).abs() < 1e-6);
        // The known witness cannot beat the optimum.
        let witness_obj = lp.problem.objective_at(&lp.witness);
        prop_assert!(sol.objective <= witness_obj + 1e-6,
            "optimum {} beaten by witness {}", sol.objective, witness_obj);
    }

    #[test]
    fn optimum_not_beaten_by_random_candidates(
        lp in random_feasible_lp(),
        candidates in proptest::collection::vec(proptest::collection::vec(0.0f64..10.0, 5), 20),
    ) {
        let sol = solve(&lp.problem).unwrap();
        for cand in &candidates {
            let x = &cand[..lp.problem.num_vars()];
            if lp.problem.is_feasible(x, 0.0) {
                let obj = lp.problem.objective_at(x);
                prop_assert!(sol.objective <= obj + 1e-6,
                    "optimum {} beaten by random candidate {}", sol.objective, obj);
            }
        }
    }

    #[test]
    fn extra_constraint_never_improves(lp in random_feasible_lp()) {
        // Adding a constraint that the old optimum satisfies with equality
        // shrinks the feasible region; the optimum cannot improve.
        let base = solve(&lp.problem).unwrap();
        let sum_at_opt: f64 = base.values.iter().sum();
        let mut tightened = lp.problem.clone();
        tightened.add_constraint(
            lp.vars.iter().map(|&v| (v, 1.0)).collect(),
            Sense::Le,
            sum_at_opt + 1e-9,
        );
        match solve(&tightened) {
            Ok(s2) => prop_assert!(s2.objective >= base.objective - 1e-6,
                "tightened optimum {} better than base {}", s2.objective, base.objective),
            Err(LpError::Infeasible) => {}
            Err(e) => prop_assert!(false, "unexpected error {e}"),
        }
    }
}
