//! LP model builder: variables, bounds, constraints, objective.

use crate::{LpError, Result};

/// Handle to a decision variable within a [`Problem`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Var(pub(crate) usize);

impl Var {
    /// Index of this variable within its problem.
    pub fn index(&self) -> usize {
        self.0
    }
}

/// Constraint sense.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Sense {
    /// `expr ≤ rhs`
    Le,
    /// `expr = rhs`
    Eq,
    /// `expr ≥ rhs`
    Ge,
}

/// A single linear constraint `Σ coeffᵢ·xᵢ  sense  rhs`.
#[derive(Debug, Clone)]
pub struct Constraint {
    /// Sparse expression terms as `(variable, coefficient)` pairs.
    pub terms: Vec<(Var, f64)>,
    /// Constraint sense.
    pub sense: Sense,
    /// Right-hand side.
    pub rhs: f64,
}

#[derive(Debug, Clone)]
pub(crate) struct VarDef {
    pub name: String,
    pub lower: f64,
    pub upper: f64,
    pub objective: f64,
}

/// A linear program in minimization form.
///
/// Variables carry finite or infinite bounds; the objective is a linear
/// function of the variables (minimized). Build with [`Problem::minimize`],
/// then [`add_var`](Problem::add_var), [`set_objective_coeff`]
/// (Problem::set_objective_coeff) and [`add_constraint`]
/// (Problem::add_constraint), and pass to [`crate::solve`].
#[derive(Debug, Clone, Default)]
pub struct Problem {
    pub(crate) vars: Vec<VarDef>,
    pub(crate) constraints: Vec<Constraint>,
}

impl Problem {
    /// Creates an empty minimization problem.
    pub fn minimize() -> Self {
        Self::default()
    }

    /// Adds a variable with bounds `[lower, upper]` (either may be infinite;
    /// use `f64::NEG_INFINITY` / `f64::INFINITY`). Returns its handle.
    pub fn add_var(&mut self, name: impl Into<String>, lower: f64, upper: f64) -> Var {
        self.vars.push(VarDef {
            name: name.into(),
            lower,
            upper,
            objective: 0.0,
        });
        Var(self.vars.len() - 1)
    }

    /// Sets the objective coefficient of `var` (default 0).
    pub fn set_objective_coeff(&mut self, var: Var, coeff: f64) {
        self.vars[var.0].objective = coeff;
    }

    /// Adds the constraint `Σ terms  sense  rhs`.
    pub fn add_constraint(&mut self, terms: Vec<(Var, f64)>, sense: Sense, rhs: f64) {
        self.constraints.push(Constraint { terms, sense, rhs });
    }

    /// Number of variables.
    pub fn num_vars(&self) -> usize {
        self.vars.len()
    }

    /// Number of constraints.
    pub fn num_constraints(&self) -> usize {
        self.constraints.len()
    }

    /// Name of a variable (for diagnostics).
    pub fn var_name(&self, var: Var) -> &str {
        &self.vars[var.0].name
    }

    /// Validates bounds, coefficients and constraint indices.
    pub fn validate(&self) -> Result<()> {
        for (i, v) in self.vars.iter().enumerate() {
            if v.lower > v.upper {
                return Err(LpError::InvalidModel(format!(
                    "variable {} ({}) has lower {} > upper {}",
                    i, v.name, v.lower, v.upper
                )));
            }
            if v.lower.is_nan() || v.upper.is_nan() || v.objective.is_nan() {
                return Err(LpError::InvalidModel(format!(
                    "variable {} ({}) has NaN",
                    i, v.name
                )));
            }
        }
        for (ci, c) in self.constraints.iter().enumerate() {
            if c.rhs.is_nan() {
                return Err(LpError::InvalidModel(format!(
                    "constraint {ci} has NaN rhs"
                )));
            }
            for &(var, coeff) in &c.terms {
                if var.0 >= self.vars.len() {
                    return Err(LpError::InvalidModel(format!(
                        "constraint {ci} references unknown variable {}",
                        var.0
                    )));
                }
                if coeff.is_nan() || coeff.is_infinite() {
                    return Err(LpError::InvalidModel(format!(
                        "constraint {ci} has non-finite coefficient"
                    )));
                }
            }
        }
        Ok(())
    }

    /// Evaluates the objective at a candidate point (for tests/diagnostics).
    pub fn objective_at(&self, x: &[f64]) -> f64 {
        self.vars
            .iter()
            .zip(x)
            .map(|(v, xi)| v.objective * xi)
            .sum()
    }

    /// Checks whether `x` satisfies every bound and constraint within `tol`.
    pub fn is_feasible(&self, x: &[f64], tol: f64) -> bool {
        if x.len() != self.vars.len() {
            return false;
        }
        for (v, &xi) in self.vars.iter().zip(x) {
            if xi < v.lower - tol || xi > v.upper + tol {
                return false;
            }
        }
        for c in &self.constraints {
            let lhs: f64 = c.terms.iter().map(|&(var, coeff)| coeff * x[var.0]).sum();
            let ok = match c.sense {
                Sense::Le => lhs <= c.rhs + tol,
                Sense::Ge => lhs >= c.rhs - tol,
                Sense::Eq => (lhs - c.rhs).abs() <= tol,
            };
            if !ok {
                return false;
            }
        }
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_accumulates() {
        let mut p = Problem::minimize();
        let x = p.add_var("x", 0.0, 10.0);
        let y = p.add_var("y", -1.0, f64::INFINITY);
        p.set_objective_coeff(x, 2.0);
        p.add_constraint(vec![(x, 1.0), (y, -1.0)], Sense::Le, 4.0);
        assert_eq!(p.num_vars(), 2);
        assert_eq!(p.num_constraints(), 1);
        assert_eq!(p.var_name(x), "x");
        assert_eq!(p.var_name(y), "y");
        assert!(p.validate().is_ok());
    }

    #[test]
    fn validate_rejects_bad_bounds() {
        let mut p = Problem::minimize();
        p.add_var("x", 5.0, 1.0);
        assert!(matches!(p.validate(), Err(LpError::InvalidModel(_))));
    }

    #[test]
    fn validate_rejects_unknown_var() {
        let mut p = Problem::minimize();
        let _x = p.add_var("x", 0.0, 1.0);
        p.add_constraint(vec![(Var(7), 1.0)], Sense::Le, 1.0);
        assert!(matches!(p.validate(), Err(LpError::InvalidModel(_))));
    }

    #[test]
    fn feasibility_check() {
        let mut p = Problem::minimize();
        let x = p.add_var("x", 0.0, 10.0);
        p.add_constraint(vec![(x, 2.0)], Sense::Ge, 4.0);
        assert!(p.is_feasible(&[2.0], 1e-9));
        assert!(p.is_feasible(&[5.0], 1e-9));
        assert!(!p.is_feasible(&[1.0], 1e-9)); // violates Ge
        assert!(!p.is_feasible(&[11.0], 1e-9)); // violates upper bound
        assert!(!p.is_feasible(&[], 1e-9)); // wrong arity
    }

    #[test]
    fn objective_eval() {
        let mut p = Problem::minimize();
        let x = p.add_var("x", 0.0, 1.0);
        let y = p.add_var("y", 0.0, 1.0);
        p.set_objective_coeff(x, 3.0);
        p.set_objective_coeff(y, -1.0);
        assert_eq!(p.objective_at(&[2.0, 4.0]), 2.0);
    }
}
