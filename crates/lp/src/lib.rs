#![warn(missing_docs)]
//! Linear programming for the Intelligent Pooling SAA optimizer.
//!
//! The paper (§4) formulates pool sizing as a linear program and notes it is
//! "solved by commercial solvers with low latency". This crate replaces the
//! commercial solver with a from-scratch implementation:
//!
//! * [`Problem`] — a small modeling API: variables with bounds, linear
//!   expressions, `≤ / = / ≥` constraints, and a minimization objective.
//! * [`solve`] — a dense two-phase primal simplex with Bland's rule for
//!   anti-cycling and explicit infeasible/unbounded detection.
//!
//! The pooling LPs are modest (a few hundred variables for a one-hour
//! horizon at 30-second intervals), well within dense-tableau territory.
//! For multi-day Sample Average Approximation runs, `ip-saa` also provides
//! an exact dynamic-programming solver that is cross-checked against this
//! simplex in tests.
//!
//! ```
//! use ip_lp::{Problem, Sense};
//!
//! // minimize x + 2y  s.t.  x + y >= 3, x <= 2, x,y >= 0
//! let mut p = Problem::minimize();
//! let x = p.add_var("x", 0.0, f64::INFINITY);
//! let y = p.add_var("y", 0.0, f64::INFINITY);
//! p.set_objective_coeff(x, 1.0);
//! p.set_objective_coeff(y, 2.0);
//! p.add_constraint(vec![(x, 1.0), (y, 1.0)], Sense::Ge, 3.0);
//! p.add_constraint(vec![(x, 1.0)], Sense::Le, 2.0);
//! let sol = ip_lp::solve(&p).unwrap();
//! assert!((sol.value(x) - 2.0).abs() < 1e-9);
//! assert!((sol.value(y) - 1.0).abs() < 1e-9);
//! assert!((sol.objective - 4.0).abs() < 1e-9);
//! ```

mod model;
mod simplex;

pub use model::{Constraint, Problem, Sense, Var};
pub use simplex::{solve, Solution};

/// Errors reported by the solver.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum LpError {
    /// No point satisfies all constraints and bounds.
    Infeasible,
    /// The objective can be driven to −∞ within the feasible region.
    Unbounded,
    /// The pivot budget was exhausted (should not happen with Bland's rule;
    /// kept as a defensive backstop).
    IterationLimit,
    /// The model itself is malformed (e.g. a variable with `lower > upper`).
    InvalidModel(String),
}

impl std::fmt::Display for LpError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            LpError::Infeasible => write!(f, "LP is infeasible"),
            LpError::Unbounded => write!(f, "LP is unbounded"),
            LpError::IterationLimit => write!(f, "simplex iteration limit reached"),
            LpError::InvalidModel(msg) => write!(f, "invalid model: {msg}"),
        }
    }
}

impl std::error::Error for LpError {}

/// Result alias for this crate.
pub type Result<T> = std::result::Result<T, LpError>;
