//! Dense two-phase primal simplex.
//!
//! The implementation follows the classic full-tableau method:
//!
//! 1. The model is rewritten in standard form — variables shifted so every
//!    bound is `x ≥ 0` (free variables are split into positive/negative
//!    parts, finite upper bounds become rows), rows normalized to a
//!    non-negative right-hand side, then slack/surplus/artificial columns are
//!    appended.
//! 2. Phase 1 minimizes the sum of artificials; a positive optimum proves
//!    infeasibility, and lingering zero-level artificial rows are pivoted out
//!    or dropped as redundant.
//! 3. Phase 2 minimizes the true objective with artificials barred from
//!    re-entering.
//!
//! Pivot selection is Dantzig's rule with an automatic switch to Bland's rule
//! after a run of degenerate pivots, which guarantees termination.

use crate::model::{Problem, Sense, Var};
use crate::{LpError, Result};

/// A primal solution returned by [`solve`].
#[derive(Debug, Clone)]
pub struct Solution {
    /// Optimal objective value.
    pub objective: f64,
    /// Value per original model variable, indexed by [`Var::index`].
    pub values: Vec<f64>,
    /// Number of simplex pivots performed across both phases.
    pub pivots: usize,
}

impl Solution {
    /// Value of a variable.
    pub fn value(&self, var: Var) -> f64 {
        self.values[var.index()]
    }
}

/// How an original variable maps onto standard-form columns.
#[derive(Debug, Clone, Copy)]
enum VarMap {
    /// `x = lower + col`
    Shifted { col: usize, lower: f64 },
    /// `x = pos - neg` (free variable split)
    Split { pos: usize, neg: usize },
    /// `x = upper - col` (only an upper bound is finite)
    Mirrored { col: usize, upper: f64 },
}

struct Standard {
    /// Row-major constraint matrix over structural columns (before slacks).
    rows: Vec<Vec<f64>>,
    rhs: Vec<f64>,
    senses: Vec<Sense>,
    /// Objective over structural columns.
    costs: Vec<f64>,
    /// Constant objective offset introduced by variable shifting.
    offset: f64,
    /// Mapping back to original variables.
    maps: Vec<VarMap>,
    n_struct: usize,
}

fn to_standard(p: &Problem) -> Result<Standard> {
    p.validate()?;
    let mut maps = Vec::with_capacity(p.vars.len());
    let mut n_struct = 0usize;
    // Extra rows introduced by finite upper bounds on shifted/split vars.
    type ExtraRow = (Vec<(usize, f64)>, Sense, f64);
    let mut extra_rows: Vec<ExtraRow> = Vec::new();

    for v in &p.vars {
        if v.lower.is_finite() {
            let col = n_struct;
            n_struct += 1;
            maps.push(VarMap::Shifted {
                col,
                lower: v.lower,
            });
            if v.upper.is_finite() {
                extra_rows.push((vec![(col, 1.0)], Sense::Le, v.upper - v.lower));
            }
        } else if v.upper.is_finite() {
            // Only an upper bound: mirror the variable (x = u − y, y ≥ 0).
            let col = n_struct;
            n_struct += 1;
            maps.push(VarMap::Mirrored {
                col,
                upper: v.upper,
            });
        } else {
            let pos = n_struct;
            let neg = n_struct + 1;
            n_struct += 2;
            maps.push(VarMap::Split { pos, neg });
        }
    }

    let mut costs = vec![0.0; n_struct];
    let mut offset = 0.0;
    for (v, map) in p.vars.iter().zip(&maps) {
        match *map {
            VarMap::Shifted { col, lower } => {
                costs[col] += v.objective;
                offset += v.objective * lower;
            }
            VarMap::Mirrored { col, upper } => {
                costs[col] -= v.objective;
                offset += v.objective * upper;
            }
            VarMap::Split { pos, neg } => {
                costs[pos] += v.objective;
                costs[neg] -= v.objective;
            }
        }
    }

    let mut rows = Vec::new();
    let mut rhs = Vec::new();
    let mut senses = Vec::new();
    for c in &p.constraints {
        let mut row = vec![0.0; n_struct];
        let mut b = c.rhs;
        for &(var, coeff) in &c.terms {
            match maps[var.index()] {
                VarMap::Shifted { col, lower } => {
                    row[col] += coeff;
                    b -= coeff * lower;
                }
                VarMap::Mirrored { col, upper } => {
                    row[col] -= coeff;
                    b -= coeff * upper;
                }
                VarMap::Split { pos, neg } => {
                    row[pos] += coeff;
                    row[neg] -= coeff;
                }
            }
        }
        rows.push(row);
        rhs.push(b);
        senses.push(c.sense);
    }
    for (terms, sense, b) in extra_rows {
        let mut row = vec![0.0; n_struct];
        for (col, coeff) in terms {
            row[col] += coeff;
        }
        rows.push(row);
        rhs.push(b);
        senses.push(sense);
    }

    Ok(Standard {
        rows,
        rhs,
        senses,
        costs,
        offset,
        maps,
        n_struct,
    })
}

/// Pivot budget multiplier; the backstop for [`LpError::IterationLimit`].
const MAX_PIVOTS_BASE: usize = 20_000;
const TOL: f64 = 1e-9;

/// Solves a [`Problem`] with the two-phase primal simplex.
pub fn solve(p: &Problem) -> Result<Solution> {
    let std_form = to_standard(p)?;
    let m = std_form.rows.len();
    let n_struct = std_form.n_struct;

    // Column layout: [structural | slack/surplus | artificial], plus rhs kept
    // separately.
    let mut n_slack = 0usize;
    let mut n_art = 0usize;
    for (i, s) in std_form.senses.iter().enumerate() {
        let b_nonneg = std_form.rhs[i] >= 0.0;
        match (s, b_nonneg) {
            (Sense::Le, true) | (Sense::Ge, false) => n_slack += 1,
            (Sense::Le, false) | (Sense::Ge, true) => {
                n_slack += 1;
                n_art += 1;
            }
            (Sense::Eq, _) => n_art += 1,
        }
    }
    let n_total = n_struct + n_slack + n_art;

    // Build tableau rows: each row has n_total coefficients + rhs.
    let mut t: Vec<Vec<f64>> = Vec::with_capacity(m);
    let mut basis: Vec<usize> = Vec::with_capacity(m);
    let mut slack_cursor = n_struct;
    let mut art_cursor = n_struct + n_slack;
    let art_start = n_struct + n_slack;

    for i in 0..m {
        let mut row = vec![0.0; n_total + 1];
        let flip = std_form.rhs[i] < 0.0;
        let sign = if flip { -1.0 } else { 1.0 };
        for (rj, &sj) in row[..n_struct].iter_mut().zip(&std_form.rows[i]) {
            *rj = sign * sj;
        }
        row[n_total] = sign * std_form.rhs[i];
        let sense = match (std_form.senses[i], flip) {
            (Sense::Le, false) | (Sense::Ge, true) => Sense::Le,
            (Sense::Ge, false) | (Sense::Le, true) => Sense::Ge,
            (Sense::Eq, _) => Sense::Eq,
        };
        match sense {
            Sense::Le => {
                row[slack_cursor] = 1.0;
                basis.push(slack_cursor);
                slack_cursor += 1;
            }
            Sense::Ge => {
                row[slack_cursor] = -1.0;
                slack_cursor += 1;
                row[art_cursor] = 1.0;
                basis.push(art_cursor);
                art_cursor += 1;
            }
            Sense::Eq => {
                row[art_cursor] = 1.0;
                basis.push(art_cursor);
                art_cursor += 1;
            }
        }
        t.push(row);
    }

    let max_pivots = MAX_PIVOTS_BASE + 60 * (m + n_total);
    let mut pivots = 0usize;

    // ---- Phase 1: minimize sum of artificials. ----
    if n_art > 0 {
        let mut phase1_costs = vec![0.0; n_total];
        for c in phase1_costs.iter_mut().skip(art_start) {
            *c = 1.0;
        }
        let obj = run_simplex(
            &mut t,
            &mut basis,
            &phase1_costs,
            n_total,
            &mut pivots,
            max_pivots,
            None,
        )?;
        if obj > 1e-7 {
            return Err(LpError::Infeasible);
        }
        // Drive out remaining zero-level artificial basics.
        let mut r = 0;
        while r < t.len() {
            if basis[r] >= art_start {
                // Find a non-artificial column with a nonzero entry to pivot in.
                let piv_col = (0..art_start).find(|&j| t[r][j].abs() > TOL);
                match piv_col {
                    Some(j) => {
                        pivot(&mut t, &mut basis, r, j, n_total);
                        pivots += 1;
                        r += 1;
                    }
                    None => {
                        // Redundant row: remove it.
                        t.remove(r);
                        basis.remove(r);
                    }
                }
            } else {
                r += 1;
            }
        }
    }

    // ---- Phase 2: minimize the true objective, artificials barred. ----
    let mut phase2_costs = vec![0.0; n_total];
    phase2_costs[..n_struct].copy_from_slice(&std_form.costs);
    let obj = run_simplex(
        &mut t,
        &mut basis,
        &phase2_costs,
        n_total,
        &mut pivots,
        max_pivots,
        Some(art_start),
    )?;

    // Extract structural values.
    let mut x_std = vec![0.0; n_total];
    for (r, &b) in basis.iter().enumerate() {
        x_std[b] = t[r][n_total];
    }
    let values = std_form
        .maps
        .iter()
        .map(|map| match *map {
            VarMap::Shifted { col, lower } => lower + x_std[col],
            VarMap::Mirrored { col, upper } => upper - x_std[col],
            VarMap::Split { pos, neg } => x_std[pos] - x_std[neg],
        })
        .collect();

    Ok(Solution {
        objective: obj + std_form.offset,
        values,
        pivots,
    })
}

/// Runs the simplex loop on the tableau with the given cost vector.
/// Returns the optimal objective (without offset).
fn run_simplex(
    t: &mut [Vec<f64>],
    basis: &mut [usize],
    costs: &[f64],
    n_total: usize,
    pivots: &mut usize,
    max_pivots: usize,
    barred_from: Option<usize>,
) -> Result<f64> {
    let m = t.len();
    // Reduced cost row: z_j = c_j − c_B·(tableau col j); objective = c_B·rhs.
    let mut zrow = vec![0.0; n_total + 1];
    zrow[..n_total].copy_from_slice(costs);
    for r in 0..m {
        let cb = costs[basis[r]];
        if cb != 0.0 {
            for j in 0..=n_total {
                zrow[j] -= cb * t[r][j];
            }
        }
    }

    let barred = barred_from.unwrap_or(n_total);
    let mut degenerate_streak = 0usize;

    loop {
        if *pivots >= max_pivots {
            return Err(LpError::IterationLimit);
        }
        let use_bland = degenerate_streak > 40;

        // Entering column.
        let entering = if use_bland {
            (0..n_total).find(|&j| j < barred && zrow[j] < -TOL)
        } else {
            let mut best: Option<(usize, f64)> = None;
            for (j, &z) in zrow.iter().enumerate().take(n_total.min(barred)) {
                if z < -TOL && best.is_none_or(|(_, bz)| z < bz) {
                    best = Some((j, z));
                }
            }
            best.map(|(j, _)| j)
        };
        let Some(e) = entering else {
            // Optimal. Objective = −zrow[rhs] because zrow tracks c_B·rhs negated.
            return Ok(-zrow[n_total]);
        };

        // Leaving row: minimum ratio test, Bland tie-break on basis index.
        let mut leave: Option<(usize, f64)> = None;
        for (r, row) in t.iter().enumerate() {
            let a = row[e];
            if a > TOL {
                let ratio = row[n_total] / a;
                match leave {
                    None => leave = Some((r, ratio)),
                    Some((lr, lratio)) => {
                        if ratio < lratio - TOL
                            || ((ratio - lratio).abs() <= TOL && basis[r] < basis[lr])
                        {
                            leave = Some((r, ratio));
                        }
                    }
                }
            }
        }
        let Some((r, ratio)) = leave else {
            return Err(LpError::Unbounded);
        };
        if ratio.abs() <= TOL {
            degenerate_streak += 1;
        } else {
            degenerate_streak = 0;
        }

        pivot_with_zrow(t, basis, &mut zrow, r, e, n_total);
        *pivots += 1;
    }
}

/// Performs a pivot on (row, col), updating the tableau and basis.
fn pivot(t: &mut [Vec<f64>], basis: &mut [usize], r: usize, c: usize, n_total: usize) {
    let piv = t[r][c];
    for v in t[r].iter_mut() {
        *v /= piv;
    }
    for rr in 0..t.len() {
        if rr == r {
            continue;
        }
        let factor = t[rr][c];
        if factor == 0.0 {
            continue;
        }
        // rr != r, so splitting at the larger index borrows both rows safely.
        let (pivot_row, target_row) = if r < rr {
            let (a, b) = t.split_at_mut(rr);
            (&a[r], &mut b[0])
        } else {
            let (a, b) = t.split_at_mut(r);
            (&b[0], &mut a[rr])
        };
        for (tv, &pv) in target_row.iter_mut().zip(pivot_row).take(n_total + 1) {
            *tv -= factor * pv;
        }
    }
    basis[r] = c;
}

fn pivot_with_zrow(
    t: &mut [Vec<f64>],
    basis: &mut [usize],
    zrow: &mut [f64],
    r: usize,
    c: usize,
    n_total: usize,
) {
    pivot(t, basis, r, c, n_total);
    let factor = zrow[c];
    if factor != 0.0 {
        for j in 0..=n_total {
            zrow[j] -= factor * t[r][j];
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::{Problem, Sense};

    fn inf() -> f64 {
        f64::INFINITY
    }

    #[test]
    fn simple_bounded_minimum() {
        // min x subject to x >= 3.
        let mut p = Problem::minimize();
        let x = p.add_var("x", 0.0, inf());
        p.set_objective_coeff(x, 1.0);
        p.add_constraint(vec![(x, 1.0)], Sense::Ge, 3.0);
        let s = solve(&p).unwrap();
        assert!((s.value(x) - 3.0).abs() < 1e-9);
        assert!((s.objective - 3.0).abs() < 1e-9);
    }

    #[test]
    fn classic_two_var() {
        // max 3x + 5y s.t. x<=4, 2y<=12, 3x+2y<=18 (Dantzig's example).
        // As minimization of -(3x+5y); optimum x=2, y=6, obj=36.
        let mut p = Problem::minimize();
        let x = p.add_var("x", 0.0, inf());
        let y = p.add_var("y", 0.0, inf());
        p.set_objective_coeff(x, -3.0);
        p.set_objective_coeff(y, -5.0);
        p.add_constraint(vec![(x, 1.0)], Sense::Le, 4.0);
        p.add_constraint(vec![(y, 2.0)], Sense::Le, 12.0);
        p.add_constraint(vec![(x, 3.0), (y, 2.0)], Sense::Le, 18.0);
        let s = solve(&p).unwrap();
        assert!((s.value(x) - 2.0).abs() < 1e-8);
        assert!((s.value(y) - 6.0).abs() < 1e-8);
        assert!((s.objective + 36.0).abs() < 1e-8);
    }

    #[test]
    fn equality_constraints() {
        // min x + y s.t. x + y = 5, x - y = 1  =>  x=3, y=2.
        let mut p = Problem::minimize();
        let x = p.add_var("x", 0.0, inf());
        let y = p.add_var("y", 0.0, inf());
        p.set_objective_coeff(x, 1.0);
        p.set_objective_coeff(y, 1.0);
        p.add_constraint(vec![(x, 1.0), (y, 1.0)], Sense::Eq, 5.0);
        p.add_constraint(vec![(x, 1.0), (y, -1.0)], Sense::Eq, 1.0);
        let s = solve(&p).unwrap();
        assert!((s.value(x) - 3.0).abs() < 1e-8);
        assert!((s.value(y) - 2.0).abs() < 1e-8);
    }

    #[test]
    fn infeasible_detected() {
        let mut p = Problem::minimize();
        let x = p.add_var("x", 0.0, 1.0);
        p.add_constraint(vec![(x, 1.0)], Sense::Ge, 5.0);
        assert_eq!(solve(&p).unwrap_err(), LpError::Infeasible);
    }

    #[test]
    fn unbounded_detected() {
        let mut p = Problem::minimize();
        let x = p.add_var("x", 0.0, inf());
        p.set_objective_coeff(x, -1.0);
        assert_eq!(solve(&p).unwrap_err(), LpError::Unbounded);
    }

    #[test]
    fn free_variable_split() {
        // min |proxy|: x free, min x s.t. x >= -7 handled via constraint.
        let mut p = Problem::minimize();
        let x = p.add_var("x", f64::NEG_INFINITY, inf());
        p.set_objective_coeff(x, 1.0);
        p.add_constraint(vec![(x, 1.0)], Sense::Ge, -7.0);
        let s = solve(&p).unwrap();
        assert!((s.value(x) + 7.0).abs() < 1e-8);
    }

    #[test]
    fn negative_lower_bound_shift() {
        // min x with x in [-5, 5]: optimum -5.
        let mut p = Problem::minimize();
        let x = p.add_var("x", -5.0, 5.0);
        p.set_objective_coeff(x, 1.0);
        let s = solve(&p).unwrap();
        assert!((s.value(x) + 5.0).abs() < 1e-8);
        // And maximize via negation: hits +5.
        let mut p2 = Problem::minimize();
        let x2 = p2.add_var("x", -5.0, 5.0);
        p2.set_objective_coeff(x2, -1.0);
        let s2 = solve(&p2).unwrap();
        assert!((s2.value(x2) - 5.0).abs() < 1e-8);
    }

    #[test]
    fn upper_bound_only_variable() {
        // x ≤ 3 with no lower bound, min −x → x = 3.
        let mut p = Problem::minimize();
        let x = p.add_var("x", f64::NEG_INFINITY, 3.0);
        p.set_objective_coeff(x, -1.0);
        let s = solve(&p).unwrap();
        assert!((s.value(x) - 3.0).abs() < 1e-8);
    }

    #[test]
    fn negative_rhs_row_normalization() {
        // −x ≤ −2  ⇔  x ≥ 2.
        let mut p = Problem::minimize();
        let x = p.add_var("x", 0.0, inf());
        p.set_objective_coeff(x, 1.0);
        p.add_constraint(vec![(x, -1.0)], Sense::Le, -2.0);
        let s = solve(&p).unwrap();
        assert!((s.value(x) - 2.0).abs() < 1e-8);
    }

    #[test]
    fn degenerate_lp_terminates() {
        // The classic Beale cycling example (degenerate); must terminate via
        // the Bland switch.
        let mut p = Problem::minimize();
        let x1 = p.add_var("x1", 0.0, inf());
        let x2 = p.add_var("x2", 0.0, inf());
        let x3 = p.add_var("x3", 0.0, inf());
        let x4 = p.add_var("x4", 0.0, inf());
        p.set_objective_coeff(x1, -0.75);
        p.set_objective_coeff(x2, 150.0);
        p.set_objective_coeff(x3, -0.02);
        p.set_objective_coeff(x4, 6.0);
        p.add_constraint(
            vec![(x1, 0.25), (x2, -60.0), (x3, -0.04), (x4, 9.0)],
            Sense::Le,
            0.0,
        );
        p.add_constraint(
            vec![(x1, 0.5), (x2, -90.0), (x3, -0.02), (x4, 3.0)],
            Sense::Le,
            0.0,
        );
        p.add_constraint(vec![(x3, 1.0)], Sense::Le, 1.0);
        let s = solve(&p).unwrap();
        assert!(
            (s.objective + 0.05).abs() < 1e-7,
            "objective {}",
            s.objective
        );
    }

    #[test]
    fn redundant_equality_rows_handled() {
        // Duplicate equality rows leave a zero-level artificial that must be
        // pivoted out or dropped.
        let mut p = Problem::minimize();
        let x = p.add_var("x", 0.0, inf());
        let y = p.add_var("y", 0.0, inf());
        p.set_objective_coeff(x, 1.0);
        p.set_objective_coeff(y, 2.0);
        p.add_constraint(vec![(x, 1.0), (y, 1.0)], Sense::Eq, 4.0);
        p.add_constraint(vec![(x, 2.0), (y, 2.0)], Sense::Eq, 8.0);
        let s = solve(&p).unwrap();
        assert!((s.value(x) - 4.0).abs() < 1e-8);
        assert!(s.value(y).abs() < 1e-8);
    }

    #[test]
    fn solution_feasible_for_model() {
        let mut p = Problem::minimize();
        let x = p.add_var("x", 0.0, 10.0);
        let y = p.add_var("y", 1.0, 8.0);
        p.set_objective_coeff(x, 1.5);
        p.set_objective_coeff(y, 0.5);
        p.add_constraint(vec![(x, 1.0), (y, 2.0)], Sense::Ge, 6.0);
        p.add_constraint(vec![(x, 3.0), (y, -1.0)], Sense::Le, 12.0);
        let s = solve(&p).unwrap();
        assert!(p.is_feasible(&s.values, 1e-7));
        assert!((p.objective_at(&s.values) - s.objective).abs() < 1e-7);
    }
}
