//! Property-based determinism contract of the parallel combinators: for any
//! input and any thread count, the result is bit-identical to the serial
//! path.

use ip_par::{par_chunks_mut_with, par_map_with};
use proptest::prelude::*;

/// Bitwise equality for float vectors (`==` would conflate -0.0 with 0.0
/// and reject NaN; the contract is *bit* identity).
fn bits(v: &[f64]) -> Vec<u64> {
    v.iter().map(|x| x.to_bits()).collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn par_map_equals_serial_map(
        xs in proptest::collection::vec(-1e6f64..1e6, 0..200),
        threads in 1usize..9,
    ) {
        // A chained non-associative float computation: any reordering of
        // per-element work would show up in the bits.
        let f = |x: &f64| (x * 1.5 - 2.0).sin() + x / 3.0;
        let serial: Vec<f64> = xs.iter().map(f).collect();
        let par = par_map_with(threads, &xs, f);
        prop_assert_eq!(bits(&serial), bits(&par));
    }

    #[test]
    fn par_map_preserves_order_exactly(
        xs in proptest::collection::vec(0usize..10_000, 0..300),
        threads in 1usize..9,
    ) {
        let par = par_map_with(threads, &xs, |&x| x);
        prop_assert_eq!(&par, &xs);
    }

    #[test]
    fn par_chunks_mut_equals_serial(
        xs in proptest::collection::vec(-100.0f64..100.0, 1..200),
        chunk in 1usize..40,
        threads in 1usize..9,
    ) {
        let run = |t: usize| {
            let mut data = xs.clone();
            par_chunks_mut_with(t, &mut data, chunk, |ci, c| {
                for (k, v) in c.iter_mut().enumerate() {
                    *v = v.cos() * (ci as f64 + 1.0) + k as f64;
                }
            });
            data
        };
        prop_assert_eq!(bits(&run(1)), bits(&run(threads)));
    }
}
