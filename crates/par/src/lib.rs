//! Scoped, deterministic parallel execution for the workspace's hot loops.
//!
//! Everything here runs on `std::thread::scope` — threads are spawned per
//! call, borrow their inputs, and are joined before the call returns, so no
//! `'static` bounds, no thread pool to shut down, and no work escapes the
//! caller's stack frame.
//!
//! # Thread count
//!
//! [`num_threads`] reads the `IP_THREADS` environment variable; absent or
//! unparseable, it falls back to [`std::thread::available_parallelism`]. A
//! value of `1` (either way) makes every combinator run serially inline —
//! the degenerate path has zero spawn overhead, which keeps single-core
//! containers and `IP_THREADS=1` debugging honest. Batches smaller than
//! [`spawn_min_items`] (default 2, `IP_PAR_MIN_ITEMS` to raise) also run
//! inline: spawning threads for a handful of cheap items is exactly the
//! overhead-at-parity the PR-5 bench exposed on a single-core host.
//!
//! # Determinism
//!
//! Every combinator partitions its *output* into disjoint contiguous regions,
//! one region per task, and each output element is computed by exactly one
//! task with exactly the per-element operation order of the serial code. No
//! atomics, no reduction trees, no work stealing: results are bit-identical
//! to the serial path for any thread count. The workspace's property tests
//! assert `par_map(xs, f) == xs.iter().map(f).collect()` with `==`, not
//! approximate equality.

use std::num::NonZeroUsize;

/// Number of worker threads parallel combinators will use.
///
/// `IP_THREADS` wins when set to a positive integer; otherwise
/// [`std::thread::available_parallelism`] (1 if even that is unavailable).
pub fn num_threads() -> usize {
    match std::env::var("IP_THREADS") {
        Ok(v) => match v.trim().parse::<usize>() {
            Ok(n) if n >= 1 => n,
            _ => available(),
        },
        Err(_) => available(),
    }
}

/// Minimum number of work items below which every combinator runs inline
/// on the caller's thread, regardless of the thread count. `IP_PAR_MIN_ITEMS`
/// overrides (values < 2 clamp to 2); the default of 2 spawns for any
/// divisible batch. Raising it trades parallelism on small batches for zero
/// spawn/handoff overhead — the right call when per-item work is cheap or
/// the host has fewer cores than `IP_THREADS` claims.
pub fn spawn_min_items() -> usize {
    match std::env::var("IP_PAR_MIN_ITEMS") {
        Ok(v) => match v.trim().parse::<usize>() {
            Ok(n) => n.max(2),
            _ => 2,
        },
        Err(_) => 2,
    }
}

fn available() -> usize {
    std::thread::available_parallelism()
        .map(NonZeroUsize::get)
        .unwrap_or(1)
}

/// Splits `len` items into at most `threads` contiguous ranges of
/// near-equal size (the first `len % threads` ranges are one longer).
/// Empty ranges are never produced.
fn partition(len: usize, threads: usize) -> Vec<std::ops::Range<usize>> {
    let threads = threads.min(len).max(1);
    let base = len / threads;
    let extra = len % threads;
    let mut ranges = Vec::with_capacity(threads);
    let mut start = 0;
    for i in 0..threads {
        let size = base + usize::from(i < extra);
        if size == 0 {
            break;
        }
        ranges.push(start..start + size);
        start += size;
    }
    ranges
}

/// Maps `f` over `items`, preserving order. Equivalent to
/// `items.iter().map(f).collect()` — bit-identically, for any thread count.
pub fn par_map<T, R, F>(items: &[T], f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(&T) -> R + Sync,
{
    par_map_with(num_threads(), items, f)
}

/// [`par_map`] with an explicit thread count (used by the scaling bench).
pub fn par_map_with<T, R, F>(threads: usize, items: &[T], f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(&T) -> R + Sync,
{
    if threads <= 1 || items.len() < spawn_min_items() {
        return items.iter().map(f).collect();
    }
    let ranges = partition(items.len(), threads);
    let mut chunks: Vec<Vec<R>> = std::thread::scope(|scope| {
        let handles: Vec<_> = ranges
            .iter()
            .map(|r| {
                let slice = &items[r.clone()];
                let f = &f;
                scope.spawn(move || slice.iter().map(f).collect::<Vec<R>>())
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("ip-par worker panicked"))
            .collect()
    });
    let mut out = Vec::with_capacity(items.len());
    for chunk in &mut chunks {
        out.append(chunk);
    }
    out
}

/// Maps `f(index, &mut item)` over `items`, preserving index order in the
/// results. This is the indexed fan-out over *stateful* items the fleet
/// simulator uses: each item is mutated in place by exactly one invocation,
/// results come back in item order without any intermediate `(index, R)`
/// re-sorting, and the per-item operation order is exactly the serial
/// `iter_mut().enumerate()` order — bit-identical for any thread count.
pub fn par_map_mut<T, R, F>(items: &mut [T], f: F) -> Vec<R>
where
    T: Send,
    R: Send,
    F: Fn(usize, &mut T) -> R + Sync,
{
    par_map_mut_with(num_threads(), items, f)
}

/// [`par_map_mut`] with an explicit thread count.
///
/// With `threads <= 1`, a single item, or fewer than [`spawn_min_items`]
/// items, everything runs inline on the caller's thread — no scope, no
/// spawn, no handoff.
pub fn par_map_mut_with<T, R, F>(threads: usize, items: &mut [T], f: F) -> Vec<R>
where
    T: Send,
    R: Send,
    F: Fn(usize, &mut T) -> R + Sync,
{
    if threads <= 1 || items.len() < spawn_min_items() {
        return items
            .iter_mut()
            .enumerate()
            .map(|(i, item)| f(i, item))
            .collect();
    }
    let ranges = partition(items.len(), threads);
    let mut chunks: Vec<Vec<R>> = std::thread::scope(|scope| {
        // Peel each thread's contiguous sub-slice off the front so every
        // item is exclusively owned by one worker, with its global index.
        let mut rest = &mut *items;
        let mut handles = Vec::with_capacity(ranges.len());
        for r in &ranges {
            let (head, tail) = rest.split_at_mut(r.len());
            rest = tail;
            let base = r.start;
            let f = &f;
            handles.push(scope.spawn(move || {
                head.iter_mut()
                    .enumerate()
                    .map(|(k, item)| f(base + k, item))
                    .collect::<Vec<R>>()
            }));
        }
        handles
            .into_iter()
            .map(|h| h.join().expect("ip-par worker panicked"))
            .collect()
    });
    let mut out = Vec::with_capacity(items.len());
    for chunk in &mut chunks {
        out.append(chunk);
    }
    out
}

/// Runs `f(i)` for each index in `0..len` for its side effects, partitioned
/// across threads. `f` must only touch state disjoint per index (e.g. via
/// interior slices handed out by the caller); this crate's other combinators
/// are usually the better fit.
pub fn par_for<F>(len: usize, f: F)
where
    F: Fn(usize) + Sync,
{
    par_for_with(num_threads(), len, f)
}

/// [`par_for`] with an explicit thread count.
pub fn par_for_with<F>(threads: usize, len: usize, f: F)
where
    F: Fn(usize) + Sync,
{
    if threads <= 1 || len < spawn_min_items() {
        for i in 0..len {
            f(i);
        }
        return;
    }
    let ranges = partition(len, threads);
    std::thread::scope(|scope| {
        for r in ranges {
            let f = &f;
            scope.spawn(move || {
                for i in r {
                    f(i);
                }
            });
        }
    });
}

/// Splits `data` into contiguous chunks of `chunk_len` elements (last one
/// possibly shorter) and runs `f(chunk_index, chunk)` on each, in parallel.
/// The chunk partitioning — and therefore which elements each invocation
/// sees — is independent of the thread count.
pub fn par_chunks_mut<T, F>(data: &mut [T], chunk_len: usize, f: F)
where
    T: Send,
    F: Fn(usize, &mut [T]) + Sync,
{
    par_chunks_mut_with(num_threads(), data, chunk_len, f)
}

/// [`par_chunks_mut`] with an explicit thread count.
pub fn par_chunks_mut_with<T, F>(threads: usize, data: &mut [T], chunk_len: usize, f: F)
where
    T: Send,
    F: Fn(usize, &mut [T]) + Sync,
{
    assert!(chunk_len > 0, "chunk_len must be positive");
    if threads <= 1 || data.len() <= chunk_len {
        for (i, chunk) in data.chunks_mut(chunk_len).enumerate() {
            f(i, chunk);
        }
        return;
    }
    let chunks: Vec<(usize, &mut [T])> = data.chunks_mut(chunk_len).enumerate().collect();
    let ranges = partition(chunks.len(), threads);
    let mut chunks = chunks;
    std::thread::scope(|scope| {
        // Peel off each thread's set of chunks from the back so ownership
        // moves into the worker without unsafe splitting.
        let mut rest = chunks.as_mut_slice();
        let mut taken = Vec::with_capacity(ranges.len());
        for r in &ranges {
            let (head, tail) = rest.split_at_mut(r.len());
            taken.push(head);
            rest = tail;
        }
        for group in taken {
            let f = &f;
            scope.spawn(move || {
                for (i, chunk) in group.iter_mut() {
                    f(*i, chunk);
                }
            });
        }
    });
}

/// Distributes `items` across stateful `workers`, preserving item order in
/// the results.
///
/// Each worker is handed one contiguous range of items (via [`partition`]
/// over `workers.len()`), processes them in order with exclusive access to
/// its own state, and the per-item results come back in item order. Which
/// worker handles which item is a function of the lengths alone — *not* of
/// timing — so a computation whose per-item result depends only on
/// `(worker state, item)` is deterministic as long as all workers start in
/// equivalent states (the data-parallel trainer synchronizes replica
/// parameters before every call).
///
/// With a single worker (or one item) everything runs inline on the caller's
/// stack.
pub fn par_map_workers<W, T, R, F>(workers: &mut [W], items: &[T], f: F) -> Vec<R>
where
    W: Send,
    T: Sync,
    R: Send,
    F: Fn(&mut W, &T) -> R + Sync,
{
    assert!(!workers.is_empty(), "par_map_workers: no workers");
    if workers.len() == 1 || items.len() <= 1 {
        let w = &mut workers[0];
        return items.iter().map(|it| f(w, it)).collect();
    }
    let ranges = partition(items.len(), workers.len());
    let mut chunks: Vec<Vec<R>> = std::thread::scope(|scope| {
        let mut rest = workers;
        let mut handles = Vec::with_capacity(ranges.len());
        for r in &ranges {
            let (w, tail) = rest.split_first_mut().expect("more ranges than workers");
            rest = tail;
            let slice = &items[r.clone()];
            let f = &f;
            handles.push(scope.spawn(move || slice.iter().map(|it| f(w, it)).collect::<Vec<R>>()));
        }
        handles
            .into_iter()
            .map(|h| h.join().expect("ip-par worker panicked"))
            .collect()
    });
    let mut out = Vec::with_capacity(items.len());
    for chunk in &mut chunks {
        out.append(chunk);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn partition_covers_exactly() {
        for len in [0usize, 1, 2, 7, 8, 100] {
            for threads in [1usize, 2, 3, 8, 200] {
                let ranges = partition(len, threads);
                let mut next = 0;
                for r in &ranges {
                    assert_eq!(r.start, next);
                    assert!(!r.is_empty());
                    next = r.end;
                }
                assert_eq!(next, len);
            }
        }
    }

    #[test]
    fn par_map_matches_serial_any_thread_count() {
        let items: Vec<i64> = (0..103).collect();
        let serial: Vec<i64> = items.iter().map(|x| x * x - 3).collect();
        for threads in [1, 2, 3, 4, 8, 64] {
            assert_eq!(par_map_with(threads, &items, |x| x * x - 3), serial);
        }
    }

    #[test]
    fn par_map_float_sums_bit_identical() {
        // Per-element op order is what matters for float bit-identity.
        let items: Vec<f64> = (0..97).map(|i| (i as f64).sin()).collect();
        let f = |x: &f64| (0..50).fold(*x, |acc, k| acc + (k as f64).sqrt() * acc.cos());
        let serial: Vec<f64> = items.iter().map(f).collect();
        for threads in [2, 5, 16] {
            let par = par_map_with(threads, &items, f);
            assert!(serial
                .iter()
                .zip(&par)
                .all(|(a, b)| a.to_bits() == b.to_bits()));
        }
    }

    #[test]
    fn par_for_touches_every_index_once() {
        use std::sync::Mutex;
        let hits = Mutex::new(vec![0u32; 57]);
        par_for_with(4, 57, |i| hits.lock().unwrap()[i] += 1);
        assert!(hits.into_inner().unwrap().iter().all(|&h| h == 1));
    }

    #[test]
    fn par_chunks_mut_partitioning_is_thread_count_independent() {
        let make = |threads| {
            let mut data = vec![0usize; 23];
            par_chunks_mut_with(threads, &mut data, 5, |ci, chunk| {
                for (k, v) in chunk.iter_mut().enumerate() {
                    *v = ci * 100 + k;
                }
            });
            data
        };
        let serial = make(1);
        for threads in [2, 3, 8] {
            assert_eq!(make(threads), serial);
        }
        // Chunk 4 is the short tail (3 elements).
        assert_eq!(serial[20..], [400, 401, 402]);
    }

    #[test]
    fn num_threads_is_positive() {
        assert!(num_threads() >= 1);
    }

    #[test]
    fn par_map_mut_matches_serial_any_thread_count() {
        let serial = {
            let mut items: Vec<i64> = (0..57).collect();
            let out = par_map_mut_with(1, &mut items, |i, x| {
                *x += i as i64;
                *x * 2
            });
            (items, out)
        };
        for threads in [2, 3, 4, 8, 64] {
            let mut items: Vec<i64> = (0..57).collect();
            let out = par_map_mut_with(threads, &mut items, |i, x| {
                *x += i as i64;
                *x * 2
            });
            assert_eq!((items, out), serial, "threads {threads}");
        }
    }

    #[test]
    fn par_map_mut_indices_are_global() {
        let mut items = vec![0usize; 23];
        par_map_mut_with(4, &mut items, |i, x| *x = i);
        assert_eq!(items, (0..23).collect::<Vec<_>>());
    }

    /// The overhead-at-parity fix: with one thread, one item, or an item
    /// count below the spawn threshold, no worker machinery may exist —
    /// every invocation must run on the caller's own thread.
    #[test]
    fn single_thread_and_small_batches_run_on_the_caller_thread() {
        let caller = std::thread::current().id();
        let on_caller = |tag: &str, ids: Vec<std::thread::ThreadId>| {
            assert!(
                ids.iter().all(|&id| id == caller),
                "{tag}: work left the caller thread"
            );
        };

        // threads == 1, many items.
        let items: Vec<u32> = (0..16).collect();
        on_caller(
            "par_map threads=1",
            par_map_with(1, &items, |_| std::thread::current().id()),
        );
        // Many threads, one item.
        on_caller(
            "par_map one item",
            par_map_with(8, &items[..1], |_| std::thread::current().id()),
        );
        let mut one = [0u8];
        on_caller(
            "par_map_mut one item",
            par_map_mut_with(8, &mut one, |_, _| std::thread::current().id()),
        );
        let mut many = [0u8; 16];
        on_caller(
            "par_map_mut threads=1",
            par_map_mut_with(1, &mut many, |_, _| std::thread::current().id()),
        );
        // par_for: record the executing thread per index.
        use std::sync::Mutex;
        let ids = Mutex::new(Vec::new());
        par_for_with(1, 9, |_| {
            ids.lock().unwrap().push(std::thread::current().id())
        });
        on_caller("par_for threads=1", ids.into_inner().unwrap());

        // Below the spawn threshold (env-raised), even many threads and
        // several items stay inline. Results are bit-identical either way —
        // the threshold only moves work onto the caller's stack.
        std::env::set_var("IP_PAR_MIN_ITEMS", "64");
        on_caller(
            "par_map below threshold",
            par_map_with(8, &items, |_| std::thread::current().id()),
        );
        let mut many = [0u8; 16];
        on_caller(
            "par_map_mut below threshold",
            par_map_mut_with(8, &mut many, |_, _| std::thread::current().id()),
        );
        std::env::remove_var("IP_PAR_MIN_ITEMS");
        assert_eq!(spawn_min_items(), 2, "default threshold");
    }

    #[test]
    fn par_map_workers_preserves_item_order() {
        let items: Vec<i64> = (0..29).collect();
        for n_workers in [1usize, 2, 3, 7] {
            let mut workers: Vec<u64> = vec![0; n_workers];
            let out = par_map_workers(&mut workers, &items, |_w, &x| x * 10);
            assert_eq!(out, items.iter().map(|x| x * 10).collect::<Vec<_>>());
        }
    }

    #[test]
    fn par_map_workers_gives_each_worker_a_contiguous_run() {
        let items: Vec<usize> = (0..10).collect();
        let mut workers: Vec<Vec<usize>> = vec![Vec::new(); 3];
        par_map_workers(&mut workers, &items, |w, &i| w.push(i));
        // partition(10, 3) → 4 + 3 + 3.
        assert_eq!(workers[0], [0, 1, 2, 3]);
        assert_eq!(workers[1], [4, 5, 6]);
        assert_eq!(workers[2], [7, 8, 9]);
    }

    #[test]
    fn par_map_workers_single_worker_runs_inline() {
        let mut workers = [0u32];
        let out = par_map_workers(&mut workers, &[1, 2, 3], |w, &x| {
            *w += 1;
            x + 1
        });
        assert_eq!(out, [2, 3, 4]);
        assert_eq!(workers[0], 3);
    }

    #[test]
    fn empty_inputs_are_fine() {
        assert_eq!(par_map_with(4, &[] as &[i32], |x| *x), Vec::<i32>::new());
        par_for_with(4, 0, |_| unreachable!());
        par_chunks_mut_with(4, &mut [] as &mut [i32], 3, |_, _| unreachable!());
    }
}
