//! Recurrent SSA forecasting (R-forecasting).
//!
//! If the signal lives in the span of the selected left singular vectors,
//! it satisfies a linear recurrence of order `L−1`:
//! `x_t = Σ_{j=1}^{L−1} a_j · x_{t−j}`. The coefficients come from the
//! last coordinates of the selected vectors (Golyandina & Korobeynikov,
//! "Basic Singular Spectrum Analysis and forecasting with R", §3.2).

use crate::decomp::SsaDecomposition;
use crate::{Result, SsaError};

/// Linear recurrence relation of order `L−1`.
#[derive(Debug, Clone)]
pub struct LinearRecurrence {
    /// `coeffs[j]` multiplies `x_{t−1−j}` (most recent lag first).
    coeffs: Vec<f64>,
    /// Verticality coefficient ν² of the fit; kept for diagnostics.
    pub nu_squared: f64,
}

impl LinearRecurrence {
    /// Derives the LRR from the leading `rank` components of a decomposition.
    ///
    /// With `πᵢ` the last coordinate of the `i`-th selected vector and `uᵢ▽`
    /// its first `L−1` coordinates:
    /// `R = (Σ πᵢ uᵢ▽) / (1 − ν²)`, `ν² = Σ πᵢ²`.
    /// Returns [`SsaError::DegenerateRecurrence`] when `ν² ≥ 1 − 1e-9`.
    pub fn from_decomposition(decomp: &SsaDecomposition, rank: usize) -> Result<Self> {
        let l = decomp.window();
        if rank == 0 || rank > l {
            return Err(SsaError::InvalidRank { rank, window: l });
        }
        let mut nu_squared = 0.0;
        let mut r = vec![0.0; l - 1];
        for comp in 0..rank {
            let u = decomp.left_vector(comp);
            let pi = u[l - 1];
            nu_squared += pi * pi;
            for j in 0..l - 1 {
                r[j] += pi * u[j];
            }
        }
        if nu_squared >= 1.0 - 1e-9 {
            return Err(SsaError::DegenerateRecurrence);
        }
        let scale = 1.0 / (1.0 - nu_squared);
        for c in r.iter_mut() {
            *c *= scale;
        }
        // Reverse so coeffs[0] multiplies the most recent value.
        r.reverse();
        Ok(Self {
            coeffs: r,
            nu_squared,
        })
    }

    /// Builds an LRR directly from coefficients (`coeffs[0]` = most recent
    /// lag). Mostly for tests.
    pub fn from_coefficients(coeffs: Vec<f64>) -> Self {
        Self {
            coeffs,
            nu_squared: f64::NAN,
        }
    }

    /// Recurrence order (`L−1`).
    pub fn order(&self) -> usize {
        self.coeffs.len()
    }

    /// Extends `history` by `horizon` forecast steps; returns only the new
    /// values. When `history` is shorter than the order, missing lags are
    /// treated as zero.
    pub fn extend(&self, history: &[f64], horizon: usize) -> Vec<f64> {
        let order = self.coeffs.len();
        // Rolling buffer of the most recent `order` values, newest first.
        let mut recent: Vec<f64> = history.iter().rev().take(order).copied().collect();
        recent.resize(order, 0.0);
        let mut out = Vec::with_capacity(horizon);
        for _ in 0..horizon {
            let next: f64 = self.coeffs.iter().zip(&recent).map(|(c, v)| c * v).sum();
            out.push(next);
            recent.rotate_right(1);
            recent[0] = next;
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fibonacci_recurrence() {
        // x_t = x_{t−1} + x_{t−2}.
        let lrr = LinearRecurrence::from_coefficients(vec![1.0, 1.0]);
        let ext = lrr.extend(&[1.0, 1.0], 5);
        assert_eq!(ext, vec![2.0, 3.0, 5.0, 8.0, 13.0]);
    }

    #[test]
    fn order_and_short_history() {
        let lrr = LinearRecurrence::from_coefficients(vec![1.0, 0.0, 2.0]);
        assert_eq!(lrr.order(), 3);
        // history shorter than order: missing lags are zero.
        let ext = lrr.extend(&[5.0], 1);
        assert_eq!(ext, vec![5.0]);
    }

    #[test]
    fn geometric_series_recurrence_from_decomposition() {
        // x_t = 2^t satisfies x_t = 2·x_{t−1}; SSA rank 1 must recover it.
        let x: Vec<f64> = (0..20).map(|t| 1.02f64.powi(t)).collect();
        let d = SsaDecomposition::compute(&x, 5).unwrap();
        let lrr = LinearRecurrence::from_decomposition(&d, 1).unwrap();
        let ext = lrr.extend(&x, 4);
        for (i, v) in ext.iter().enumerate() {
            let expected = 1.02f64.powi(20 + i as i32);
            assert!((v - expected).abs() < 1e-6, "step {i}: {v} vs {expected}");
        }
    }

    #[test]
    fn rank_bounds_checked() {
        let x: Vec<f64> = (0..20).map(|t| t as f64).collect();
        let d = SsaDecomposition::compute(&x, 5).unwrap();
        assert!(LinearRecurrence::from_decomposition(&d, 0).is_err());
        assert!(LinearRecurrence::from_decomposition(&d, 6).is_err());
    }

    #[test]
    fn nu_squared_below_one_for_smooth_signal() {
        let x: Vec<f64> = (0..60).map(|t| (t as f64 * 0.2).sin()).collect();
        let d = SsaDecomposition::compute(&x, 12).unwrap();
        let lrr = LinearRecurrence::from_decomposition(&d, 2).unwrap();
        assert!(lrr.nu_squared < 1.0);
        assert!(lrr.nu_squared >= 0.0);
    }
}
