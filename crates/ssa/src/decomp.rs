//! Embedding, decomposition and diagonal-averaging reconstruction.

use crate::{Result, SsaError};
use ip_linalg::{symmetric_eigen, Matrix};

/// Builds the `L×L` lag-covariance matrix `S = X Xᵀ` of the Hankel
/// trajectory matrix without materializing `X` (`K = N−L+1` columns).
///
/// `S[i][j] = Σ_{k=0}^{K−1} x[i+k]·x[j+k]`.
///
/// Runs in O(L·N) rather than the naive O(L²·K): row 0 is computed with
/// direct dot products (in parallel — each entry is an independent dot),
/// and every remaining entry follows from the sliding window recurrence
///
/// ```text
/// S[i+1][j+1] = S[i][j] − x[i]·x[j] + x[i+K]·x[j+K]
/// ```
///
/// since the `(i+1, j+1)` window is the `(i, j)` window shifted one step:
/// it drops the leading product and gains one past the old end. The
/// recurrence walks each diagonal from its row-0 head, so each entry costs
/// O(1) and the result stays exactly symmetric.
pub fn lag_covariance(values: &[f64], window: usize) -> Result<Matrix> {
    let _span = ip_obs::span("ssa.lag_covariance");
    let n = values.len();
    if window < 2 || window > n / 2 {
        return Err(SsaError::InvalidWindow {
            window,
            series_len: n,
        });
    }
    let k = n - window + 1;
    let mut s = Matrix::zeros(window, window);
    let lags: Vec<usize> = (0..window).collect();
    let row0 = ip_par::par_map(&lags, |&j| ip_linalg::dot(&values[..k], &values[j..j + k]));
    for (j, &v) in row0.iter().enumerate() {
        s.set(0, j, v);
        s.set(j, 0, v);
    }
    for d in 0..window {
        for i in 1..window - d {
            let j = i + d;
            let v = s.get(i - 1, j - 1) - values[i - 1] * values[j - 1]
                + values[i - 1 + k] * values[j - 1 + k];
            s.set(i, j, v);
            s.set(j, i, v);
        }
    }
    Ok(s)
}

/// The decomposition of a series: eigenpairs of the lag-covariance matrix
/// plus the per-component factor rows `wᵢ = uᵢᵀ X` needed for reconstruction.
#[derive(Debug, Clone)]
pub struct SsaDecomposition {
    window: usize,
    series_len: usize,
    /// Eigenvalues of `XXᵀ` (σᵢ², descending, clipped at zero).
    eigenvalues: Vec<f64>,
    /// Left singular vectors as columns (L × L).
    u: Matrix,
    /// `wᵢ[j] = Σ_l uᵢ[l]·x[l+j]`, one row per component (L rows of length K).
    factor_rows: Vec<Vec<f64>>,
}

impl SsaDecomposition {
    /// Decomposes `values` with embedding window `window`.
    pub fn compute(values: &[f64], window: usize) -> Result<Self> {
        let s = lag_covariance(values, window)?;
        let eig = {
            let _span = ip_obs::span("ssa.eigen");
            symmetric_eigen(&s).map_err(|e| SsaError::Linalg(e.to_string()))?
        };
        let n = values.len();
        let k = n - window + 1;
        // Factor rows for every component (cheap: L·K per component, and we
        // compute lazily only up to what callers ask for — here eagerly for
        // simplicity since L is modest).
        let mut factor_rows = Vec::with_capacity(window);
        for comp in 0..window {
            let mut w = vec![0.0; k];
            for (l, wv) in (0..window).map(|l| (l, eig.vectors.get(l, comp))) {
                if wv == 0.0 {
                    continue;
                }
                for (j, out) in w.iter_mut().enumerate() {
                    *out += wv * values[l + j];
                }
            }
            factor_rows.push(w);
        }
        let eigenvalues = eig.values.iter().map(|&v| v.max(0.0)).collect();
        Ok(Self {
            window,
            series_len: n,
            eigenvalues,
            u: eig.vectors,
            factor_rows,
        })
    }

    /// Number of available components (= window).
    pub fn num_components(&self) -> usize {
        self.window
    }

    /// Eigenvalue spectrum (descending).
    pub fn eigenvalues(&self) -> &[f64] {
        &self.eigenvalues
    }

    /// Embedding window `L`.
    pub fn window(&self) -> usize {
        self.window
    }

    /// `i`-th left singular vector (length L).
    pub fn left_vector(&self, i: usize) -> Vec<f64> {
        self.u.col(i)
    }

    /// Smallest prefix of components whose eigenvalue mass reaches
    /// `fraction` of the total; always at least 1.
    pub fn rank_for_energy(&self, fraction: f64) -> usize {
        let total: f64 = self.eigenvalues.iter().sum();
        if total <= 0.0 {
            return 1;
        }
        let target = fraction.clamp(0.0, 1.0) * total;
        let mut acc = 0.0;
        for (i, &v) in self.eigenvalues.iter().enumerate() {
            acc += v;
            if acc >= target {
                return i + 1;
            }
        }
        self.window
    }

    /// Reconstructs the series from the leading `rank` components via
    /// diagonal averaging (Hankelization).
    ///
    /// Entry `(l, j)` of the rank-`r` matrix is `Σᵢ uᵢ[l]·wᵢ[j]`; the value at
    /// time `t` is the average over all `(l, j)` with `l + j = t`.
    pub fn reconstruct(&self, rank: usize) -> Vec<f64> {
        let _span = ip_obs::span("ssa.reconstruct");
        let rank = rank.min(self.window).max(1);
        let n = self.series_len;
        let k = n - self.window + 1;
        let mut sums = vec![0.0; n];
        let mut counts = vec![0u32; n];
        for l in 0..self.window {
            for j in 0..k {
                let mut v = 0.0;
                for comp in 0..rank {
                    v += self.u.get(l, comp) * self.factor_rows[comp][j];
                }
                sums[l + j] += v;
                counts[l + j] += 1;
            }
        }
        sums.iter()
            .zip(&counts)
            .map(|(s, &c)| s / c as f64)
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lag_covariance_matches_explicit_hankel() {
        let x = [1.0, 2.0, 3.0, 4.0, 5.0, 6.0];
        let l = 3;
        let k = x.len() - l + 1;
        let hankel = Matrix::from_fn(l, k, |i, j| x[i + j]);
        let explicit = hankel.matmul(&hankel.transpose()).unwrap();
        let fast = lag_covariance(&x, l).unwrap();
        assert!(explicit.sub(&fast).unwrap().frobenius_norm() < 1e-12);
    }

    #[test]
    fn recurrence_matches_direct_sums_at_scale() {
        // Exercises many diagonal steps so drift in the sliding recurrence
        // would surface; compares against the naive O(L²·K) sums.
        let x: Vec<f64> = (0..400)
            .map(|t| (t as f64 * 0.17).sin() * (1.0 + 0.01 * t as f64))
            .collect();
        let l = 60;
        let k = x.len() - l + 1;
        let fast = lag_covariance(&x, l).unwrap();
        for i in 0..l {
            for j in i..l {
                let direct: f64 = (0..k).map(|t| x[i + t] * x[j + t]).sum();
                let got = fast.get(i, j);
                assert!(
                    (got - direct).abs() <= 1e-9 * direct.abs().max(1.0),
                    "S[{i}][{j}]: {got} vs {direct}"
                );
                assert_eq!(
                    got.to_bits(),
                    fast.get(j, i).to_bits(),
                    "asymmetry at {i},{j}"
                );
            }
        }
    }

    #[test]
    fn invalid_windows_rejected() {
        let x = [1.0; 10];
        assert!(lag_covariance(&x, 1).is_err());
        assert!(lag_covariance(&x, 6).is_err()); // > N/2
        assert!(lag_covariance(&x, 5).is_ok());
    }

    #[test]
    fn full_rank_reconstruction_is_exact() {
        // With all L components the reconstruction equals the input exactly.
        let x: Vec<f64> = (0..40)
            .map(|t| (t as f64 * 0.3).sin() + 0.1 * t as f64)
            .collect();
        let d = SsaDecomposition::compute(&x, 10).unwrap();
        let rec = d.reconstruct(10);
        for (a, b) in rec.iter().zip(&x) {
            assert!((a - b).abs() < 1e-8, "{a} vs {b}");
        }
    }

    #[test]
    fn constant_series_rank_one() {
        let x = vec![4.0; 30];
        let d = SsaDecomposition::compute(&x, 8).unwrap();
        assert_eq!(d.rank_for_energy(0.99), 1);
        let rec = d.reconstruct(1);
        for v in rec {
            assert!((v - 4.0).abs() < 1e-9);
        }
    }

    #[test]
    fn eigenvalue_mass_equals_signal_energy() {
        // trace(XXᵀ) = Σ eigenvalues = Σ over Hankel entries squared.
        let x: Vec<f64> = (0..24).map(|t| (t as f64 * 0.7).cos()).collect();
        let l = 6;
        let d = SsaDecomposition::compute(&x, l).unwrap();
        let k = x.len() - l + 1;
        let mut energy = 0.0;
        for i in 0..l {
            for j in 0..k {
                energy += x[i + j] * x[i + j];
            }
        }
        let mass: f64 = d.eigenvalues().iter().sum();
        assert!((energy - mass).abs() < 1e-8 * energy.max(1.0));
    }

    #[test]
    fn rank_for_energy_monotone() {
        let x: Vec<f64> = (0..50)
            .map(|t| (t as f64 * 0.3).sin() + 0.05 * t as f64)
            .collect();
        let d = SsaDecomposition::compute(&x, 12).unwrap();
        let r50 = d.rank_for_energy(0.5);
        let r90 = d.rank_for_energy(0.9);
        let r100 = d.rank_for_energy(1.0);
        assert!(r50 <= r90 && r90 <= r100);
        assert!(r50 >= 1);
        assert!(r100 <= 12);
    }
}
