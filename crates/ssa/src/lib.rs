#![warn(missing_docs)]
//! Singular Spectrum Analysis (SSA) forecasting.
//!
//! SSA is the classical-ML forecaster the paper starts from (§5.1, citing
//! Golyandina & Korobeynikov) and the base of the hybrid **SSA+** model
//! (§5.3). The pipeline implemented here is the textbook one:
//!
//! 1. **Embedding** — the series `x₀…x_{N−1}` becomes an `L×K` Hankel
//!    trajectory matrix (`K = N−L+1`).
//! 2. **Decomposition** — eigendecomposition of the lag-covariance matrix
//!    `S = XXᵀ` (equivalent to the SVD of `X`, but `S` is only `L×L`, which
//!    keeps multi-day series cheap).
//! 3. **Grouping** — the leading `r` eigentriples are kept, `r` chosen
//!    explicitly or by cumulative-energy threshold.
//! 4. **Reconstruction** — diagonal averaging (Hankelization) of the rank-`r`
//!    approximation yields the signal estimate.
//! 5. **Forecasting** — the linear recurrence relation (LRR) derived from the
//!    selected left singular vectors extends the signal `h` steps ahead
//!    (R-forecasting).
//!
//! ```
//! use ip_ssa::{RankSelection, SsaConfig, SsaForecaster};
//! use ip_timeseries::TimeSeries;
//!
//! // A clean periodic signal: SSA nails the continuation.
//! let values: Vec<f64> = (0..200)
//!     .map(|t| 10.0 + 3.0 * (t as f64 * std::f64::consts::PI / 12.0).sin())
//!     .collect();
//! let series = TimeSeries::new(30, values).unwrap();
//! let mut ssa = SsaForecaster::new(SsaConfig { window: 48, rank: RankSelection::Fixed(3) });
//! ssa.fit(&series).unwrap();
//! let forecast = ssa.predict(24).unwrap();
//! let truth = 10.0 + 3.0 * (200f64 * std::f64::consts::PI / 12.0).sin();
//! assert!((forecast[0] - truth).abs() < 0.1);
//! ```

mod decomp;
mod forecast;

pub use decomp::{lag_covariance, SsaDecomposition};
pub use forecast::LinearRecurrence;

use ip_timeseries::TimeSeries;

/// Errors from SSA fitting/forecasting.
#[derive(Debug, Clone, PartialEq)]
pub enum SsaError {
    /// The window length must satisfy `2 ≤ L ≤ N/2` (the latter is the usual
    /// SSA guidance and keeps `K ≥ L`).
    InvalidWindow {
        /// Requested window.
        window: usize,
        /// Series length.
        series_len: usize,
    },
    /// The requested rank exceeds the window length.
    InvalidRank {
        /// Requested rank.
        rank: usize,
        /// Window (maximum possible rank).
        window: usize,
    },
    /// The linear recurrence is degenerate (verticality coefficient ≈ 1),
    /// which happens when the selected space contains the last-coordinate
    /// axis; reduce the rank.
    DegenerateRecurrence,
    /// Underlying linear algebra failure.
    Linalg(String),
    /// Forecast requested before `fit`.
    NotFitted,
}

impl std::fmt::Display for SsaError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SsaError::InvalidWindow { window, series_len } => {
                write!(
                    f,
                    "invalid SSA window {window} for series of length {series_len}"
                )
            }
            SsaError::InvalidRank { rank, window } => {
                write!(f, "invalid SSA rank {rank} for window {window}")
            }
            SsaError::DegenerateRecurrence => write!(f, "degenerate linear recurrence (nu^2 ~ 1)"),
            SsaError::Linalg(msg) => write!(f, "linear algebra error: {msg}"),
            SsaError::NotFitted => write!(f, "forecaster not fitted"),
        }
    }
}

impl std::error::Error for SsaError {}

/// Result alias for this crate.
pub type Result<T> = std::result::Result<T, SsaError>;

/// How many eigentriples to keep.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum RankSelection {
    /// Keep exactly this many leading components.
    Fixed(usize),
    /// Keep the smallest prefix whose eigenvalue mass reaches this fraction
    /// of the total (e.g. `0.95`).
    EnergyThreshold(f64),
}

/// Configuration for [`SsaForecaster`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SsaConfig {
    /// Embedding window `L`.
    pub window: usize,
    /// Component selection rule.
    pub rank: RankSelection,
}

impl Default for SsaConfig {
    fn default() -> Self {
        // Window 150 mirrors the paper's hyper-parameter table (§7.2).
        Self {
            window: 150,
            rank: RankSelection::EnergyThreshold(0.90),
        }
    }
}

/// A fitted SSA model able to reconstruct its training signal and forecast.
#[derive(Debug, Clone)]
pub struct SsaForecaster {
    config: SsaConfig,
    fitted: Option<Fitted>,
}

#[derive(Debug, Clone)]
struct Fitted {
    reconstruction: Vec<f64>,
    recurrence: LinearRecurrence,
    rank_used: usize,
    eigenvalues: Vec<f64>,
}

impl SsaForecaster {
    /// Creates an unfitted forecaster.
    pub fn new(config: SsaConfig) -> Self {
        Self {
            config,
            fitted: None,
        }
    }

    /// Fits on a series: decomposition, grouping, reconstruction and LRR.
    pub fn fit(&mut self, series: &TimeSeries) -> Result<()> {
        let _span = ip_obs::span("ssa.fit");
        let values = series.values();
        let decomp = SsaDecomposition::compute(values, self.config.window)?;
        let rank = match self.config.rank {
            RankSelection::Fixed(r) => {
                if r == 0 || r > self.config.window {
                    return Err(SsaError::InvalidRank {
                        rank: r,
                        window: self.config.window,
                    });
                }
                r.min(decomp.num_components())
            }
            RankSelection::EnergyThreshold(frac) => decomp.rank_for_energy(frac),
        };
        // The LRR degenerates when the selected subspace includes the last
        // coordinate direction (ν² → 1), and high-rank recurrences fitted to
        // noise routinely have characteristic roots outside the unit circle,
        // which makes long-horizon forecasts explode. Back the rank off
        // until the recurrence is both well-defined and stable over a probe
        // horizon of 8·L steps (comfortably past the production 1200-step
        // forecast for the paper's window of 150).
        let bound = 5.0 * values.iter().fold(1.0f64, |m, v| m.max(v.abs()));
        let mut rank_used = rank.max(1);
        let recurrence = loop {
            match LinearRecurrence::from_decomposition(&decomp, rank_used) {
                Ok(r) => {
                    let probe = r.extend(values, 8 * self.config.window);
                    let stable = probe.iter().all(|v| v.is_finite() && v.abs() <= bound);
                    if stable || rank_used == 1 {
                        break r;
                    }
                    rank_used = (rank_used * 3 / 4).min(rank_used - 1).max(1);
                }
                Err(SsaError::DegenerateRecurrence) if rank_used > 1 => rank_used -= 1,
                Err(e) => return Err(e),
            }
        };
        let reconstruction = decomp.reconstruct(rank_used);
        self.fitted = Some(Fitted {
            reconstruction,
            recurrence,
            rank_used,
            eigenvalues: decomp.eigenvalues().to_vec(),
        });
        Ok(())
    }

    /// Forecasts `horizon` values past the end of the training series.
    pub fn predict(&self, horizon: usize) -> Result<Vec<f64>> {
        let _span = ip_obs::span("ssa.forecast");
        let fitted = self.fitted.as_ref().ok_or(SsaError::NotFitted)?;
        Ok(fitted.recurrence.extend(&fitted.reconstruction, horizon))
    }

    /// Forecasts `horizon` values continuing an arbitrary `history` using
    /// the *fitted* linear recurrence (rolling-origin forecasting: fit once,
    /// then forecast from many origins without refitting — used by SSA+ to
    /// calibrate its error head on deployment-like short-horizon forecasts).
    pub fn forecast_from(&self, history: &[f64], horizon: usize) -> Result<Vec<f64>> {
        let fitted = self.fitted.as_ref().ok_or(SsaError::NotFitted)?;
        Ok(fitted.recurrence.extend(history, horizon))
    }

    /// The smoothed (reconstructed) training signal.
    pub fn reconstruction(&self) -> Result<&[f64]> {
        Ok(&self
            .fitted
            .as_ref()
            .ok_or(SsaError::NotFitted)?
            .reconstruction)
    }

    /// Number of eigentriples actually used after degeneracy back-off.
    pub fn rank_used(&self) -> Result<usize> {
        Ok(self.fitted.as_ref().ok_or(SsaError::NotFitted)?.rank_used)
    }

    /// Eigenvalue spectrum of the fit (descending).
    pub fn eigenvalues(&self) -> Result<&[f64]> {
        Ok(&self.fitted.as_ref().ok_or(SsaError::NotFitted)?.eigenvalues)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn series(values: Vec<f64>) -> TimeSeries {
        TimeSeries::new(30, values).unwrap()
    }

    fn sine(n: usize, period: f64, amplitude: f64, offset: f64) -> Vec<f64> {
        (0..n)
            .map(|t| offset + amplitude * (2.0 * std::f64::consts::PI * t as f64 / period).sin())
            .collect()
    }

    #[test]
    fn not_fitted_errors() {
        let f = SsaForecaster::new(SsaConfig {
            window: 10,
            rank: RankSelection::Fixed(2),
        });
        assert!(matches!(f.predict(5), Err(SsaError::NotFitted)));
        assert!(matches!(f.reconstruction(), Err(SsaError::NotFitted)));
    }

    #[test]
    fn reconstructs_pure_sine() {
        let vals = sine(200, 25.0, 3.0, 0.0);
        let mut f = SsaForecaster::new(SsaConfig {
            window: 50,
            rank: RankSelection::Fixed(2),
        });
        f.fit(&series(vals.clone())).unwrap();
        let rec = f.reconstruction().unwrap();
        let err: f64 = rec
            .iter()
            .zip(&vals)
            .map(|(a, b)| (a - b).abs())
            .sum::<f64>()
            / vals.len() as f64;
        assert!(err < 1e-6, "reconstruction MAE {err}");
    }

    #[test]
    fn forecasts_sine_accurately() {
        let total = sine(260, 25.0, 3.0, 5.0);
        let train = &total[..200];
        let future = &total[200..];
        // Sine + constant offset needs 3 components (2 for the harmonic, 1
        // for the constant).
        let mut f = SsaForecaster::new(SsaConfig {
            window: 50,
            rank: RankSelection::Fixed(3),
        });
        f.fit(&series(train.to_vec())).unwrap();
        let pred = f.predict(60).unwrap();
        let mae: f64 = pred
            .iter()
            .zip(future)
            .map(|(a, b)| (a - b).abs())
            .sum::<f64>()
            / 60.0;
        assert!(mae < 0.05, "forecast MAE {mae}");
    }

    #[test]
    fn forecasts_linear_trend() {
        let vals: Vec<f64> = (0..120).map(|t| 2.0 + 0.5 * t as f64).collect();
        let mut f = SsaForecaster::new(SsaConfig {
            window: 30,
            rank: RankSelection::Fixed(2),
        });
        f.fit(&series(vals)).unwrap();
        let pred = f.predict(10).unwrap();
        for (i, p) in pred.iter().enumerate() {
            let expected = 2.0 + 0.5 * (120 + i) as f64;
            assert!((p - expected).abs() < 0.5, "step {i}: {p} vs {expected}");
        }
    }

    #[test]
    fn energy_threshold_selects_small_rank_for_sine() {
        let vals = sine(200, 25.0, 3.0, 0.0);
        let mut f = SsaForecaster::new(SsaConfig {
            window: 40,
            rank: RankSelection::EnergyThreshold(0.95),
        });
        f.fit(&series(vals)).unwrap();
        // A pure sine concentrates energy in 2 components.
        assert!(
            f.rank_used().unwrap() <= 3,
            "rank {}",
            f.rank_used().unwrap()
        );
    }

    #[test]
    fn invalid_rank_rejected() {
        let vals = sine(100, 10.0, 1.0, 0.0);
        let mut f = SsaForecaster::new(SsaConfig {
            window: 20,
            rank: RankSelection::Fixed(0),
        });
        assert!(f.fit(&series(vals.clone())).is_err());
        let mut f2 = SsaForecaster::new(SsaConfig {
            window: 20,
            rank: RankSelection::Fixed(21),
        });
        assert!(f2.fit(&series(vals)).is_err());
    }

    #[test]
    fn predict_zero_horizon_is_empty() {
        let vals = sine(100, 10.0, 1.0, 0.0);
        let mut f = SsaForecaster::new(SsaConfig {
            window: 20,
            rank: RankSelection::Fixed(2),
        });
        f.fit(&series(vals)).unwrap();
        assert!(f.predict(0).unwrap().is_empty());
    }

    #[test]
    fn eigenvalues_descending_nonnegative() {
        let vals = sine(150, 12.0, 2.0, 1.0);
        let mut f = SsaForecaster::new(SsaConfig {
            window: 25,
            rank: RankSelection::Fixed(4),
        });
        f.fit(&series(vals)).unwrap();
        let ev = f.eigenvalues().unwrap();
        assert!(ev.windows(2).all(|w| w[0] >= w[1] - 1e-9));
        assert!(ev.iter().all(|&v| v >= -1e-9));
    }
}
