//! Named workload presets mirroring the paper's evaluation datasets.

use crate::generator::{DemandModel, HourlySpikes, SporadicSpikes, WeeklyProfile};

/// The six Table 1 datasets: two regions × three node sizes.
///
/// The paper's MAE table shows demand volume (and hence absolute error)
/// decreasing from Small to Large pools and West US 2 being noisier than
/// East US 2 at Small. The presets scale base rate, amplitude and surge
/// magnitude to reproduce that ordering.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum PresetId {
    /// West US 2, small nodes — highest volume, noisiest.
    WestUs2Small,
    /// East US 2, small nodes.
    EastUs2Small,
    /// West US 2, medium nodes.
    WestUs2Medium,
    /// East US 2, medium nodes — low volume, very regular.
    EastUs2Medium,
    /// West US 2, large nodes.
    WestUs2Large,
    /// East US 2, large nodes.
    EastUs2Large,
}

impl PresetId {
    /// Parses the kebab-case preset name used by the CLI and fleet spec
    /// files (e.g. `east-us-2-medium`).
    pub fn from_name(name: &str) -> Option<Self> {
        Some(match name {
            "west-us-2-small" => PresetId::WestUs2Small,
            "east-us-2-small" => PresetId::EastUs2Small,
            "west-us-2-medium" => PresetId::WestUs2Medium,
            "east-us-2-medium" => PresetId::EastUs2Medium,
            "west-us-2-large" => PresetId::WestUs2Large,
            "east-us-2-large" => PresetId::EastUs2Large,
            _ => return None,
        })
    }

    /// The kebab-case name [`PresetId::from_name`] accepts.
    pub fn name(&self) -> &'static str {
        match self {
            PresetId::WestUs2Small => "west-us-2-small",
            PresetId::EastUs2Small => "east-us-2-small",
            PresetId::WestUs2Medium => "west-us-2-medium",
            PresetId::EastUs2Medium => "east-us-2-medium",
            PresetId::WestUs2Large => "west-us-2-large",
            PresetId::EastUs2Large => "east-us-2-large",
        }
    }

    /// Human-readable label matching the Table 1 row.
    pub fn label(&self) -> &'static str {
        match self {
            PresetId::WestUs2Small => "West US 2 / Small",
            PresetId::EastUs2Small => "East US 2 / Small",
            PresetId::WestUs2Medium => "West US 2 / Medium",
            PresetId::EastUs2Medium => "East US 2 / Medium",
            PresetId::WestUs2Large => "West US 2 / Large",
            PresetId::EastUs2Large => "East US 2 / Large",
        }
    }
}

/// Builds the demand model for a Table 1 preset with the paper's 14-day
/// history length and 30-second intervals.
pub fn preset(id: PresetId, seed: u64) -> DemandModel {
    let (base, amp, surge, surge_hours): (f64, f64, f64, Vec<u8>) = match id {
        PresetId::WestUs2Small => (12.0, 30.0, 45.0, vec![]),
        PresetId::EastUs2Small => (10.0, 25.0, 30.0, vec![6, 7, 8, 9, 12, 18]),
        PresetId::WestUs2Medium => (5.0, 12.0, 18.0, vec![6, 7, 8, 12]),
        PresetId::EastUs2Medium => (1.0, 3.0, 4.0, vec![6, 12]),
        PresetId::WestUs2Large => (3.0, 8.0, 10.0, vec![6, 7, 12]),
        PresetId::EastUs2Large => (1.5, 5.0, 6.0, vec![6, 12]),
    };
    DemandModel {
        interval_secs: 30,
        days: 14,
        base_rate: base,
        diurnal_amplitude: amp,
        weekly: WeeklyProfile::business(),
        hourly_spikes: Some(HourlySpikes {
            magnitude: surge,
            duration_secs: 300,
            hours: surge_hours,
        }),
        sporadic_spikes: None,
        poisson_noise: true,
        seed,
    }
}

/// All six Table 1 presets, in the table's row order.
pub fn table1_presets() -> Vec<PresetId> {
    vec![
        PresetId::WestUs2Small,
        PresetId::EastUs2Small,
        PresetId::WestUs2Medium,
        PresetId::EastUs2Medium,
        PresetId::WestUs2Large,
        PresetId::EastUs2Large,
    ]
}

/// The hard production region of §7.5: near-zero baseline demand with
/// sporadic spikes roughly every 3 hours, imprecisely timed.
pub fn spiky_region(seed: u64) -> DemandModel {
    DemandModel {
        interval_secs: 30,
        days: 14,
        base_rate: 0.2,
        diurnal_amplitude: 0.3,
        weekly: WeeklyProfile::flat(),
        hourly_spikes: None,
        sporadic_spikes: Some(SporadicSpikes {
            mean_period_secs: 3 * 3600,
            jitter_secs: 1200,
            magnitude: 20.0,
            duration_secs: 240,
        }),
        poisson_noise: true,
        seed,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_presets_generate() {
        for id in table1_presets() {
            let mut m = preset(id, 1);
            m.days = 1; // keep the test fast
            let ts = m.generate();
            assert!(!ts.is_empty(), "{} produced empty series", id.label());
            assert!(ts.sum() > 0.0, "{} produced zero demand", id.label());
        }
    }

    #[test]
    fn volume_ordering_small_over_large() {
        let mut small = preset(PresetId::WestUs2Small, 1);
        let mut large = preset(PresetId::WestUs2Large, 1);
        small.days = 2;
        large.days = 2;
        assert!(small.generate().sum() > large.generate().sum());
    }

    #[test]
    fn east_us2_medium_is_quietest() {
        let sums: Vec<f64> = table1_presets()
            .into_iter()
            .map(|id| {
                let mut m = preset(id, 1);
                m.days = 2;
                m.generate().sum()
            })
            .collect();
        let east_medium = sums[3];
        assert!(sums
            .iter()
            .enumerate()
            .all(|(i, &s)| i == 3 || s >= east_medium));
    }

    #[test]
    fn spiky_region_is_mostly_idle() {
        let mut m = spiky_region(5);
        m.days = 2;
        let ts = m.generate();
        let idle = ts.values().iter().filter(|&&v| v <= 1.0).count();
        assert!(idle as f64 / ts.len() as f64 > 0.8, "idle fraction too low");
        // But spikes exist.
        assert!(ts.max().unwrap() >= 10.0);
    }

    #[test]
    fn labels_unique() {
        let labels: Vec<_> = table1_presets().iter().map(|p| p.label()).collect();
        let mut dedup = labels.clone();
        dedup.dedup();
        assert_eq!(labels.len(), 6);
        assert_eq!(dedup.len(), 6);
    }
}
