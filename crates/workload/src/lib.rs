#![warn(missing_docs)]
//! Synthetic cluster-demand workloads for the Intelligent Pooling
//! reproduction.
//!
//! The paper evaluates on proprietary Azure Synapse / Fabric telemetry. This
//! crate generates the closest public stand-in: per-interval cluster-request
//! counts with every structural feature the paper's analysis depends on —
//!
//! * **diurnal + weekly seasonality** (§7.1 estimates pool size "by time of
//!   day and type of day"),
//! * **top-of-hour scheduled-job surges** (Fig. 4: "many jobs are scheduled
//!   at 6AM, 7AM, etc."),
//! * **Poisson arrival noise** around the rate profile,
//! * **sporadic ~3-hour spikes with jitter** (the hard region of §7.5), and
//! * six named presets mirroring the Table 1 datasets (West US 2 / East US 2
//!   × Small / Medium / Large) with scales chosen so the relative forecast
//!   difficulty matches the table's ordering.
//!
//! All generation is deterministic given a seed.
//!
//! ```
//! use ip_workload::{preset, PresetId};
//!
//! let mut model = preset(PresetId::EastUs2Medium, 42);
//! model.days = 1;
//! let demand = model.generate();
//! assert_eq!(demand.len(), 2880); // one day of 30-second intervals
//! assert!(demand.sum() > 0.0);
//! // Deterministic per seed.
//! assert_eq!(demand, model.generate());
//! ```

pub mod fleet;
mod generator;
mod presets;
pub mod stats;

pub use fleet::{pool_seed, FleetPoolPreset, FleetTrace};
pub use generator::{DemandModel, HourlySpikes, SporadicSpikes, WeeklyProfile};
pub use presets::{preset, spiky_region, table1_presets, PresetId};
pub use stats::{autocorrelation, trace_stats, TraceStats};

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Samples a Poisson random variate with mean `lambda`.
///
/// Uses Knuth's product-of-uniforms method for small means and a normal
/// approximation (rounded, clamped at zero) for large means.
pub fn sample_poisson(rng: &mut StdRng, lambda: f64) -> u64 {
    if lambda <= 0.0 {
        return 0;
    }
    if lambda < 30.0 {
        let limit = (-lambda).exp();
        let mut product: f64 = rng.gen();
        let mut count = 0u64;
        while product > limit {
            product *= rng.gen::<f64>();
            count += 1;
        }
        count
    } else {
        // Box–Muller standard normal.
        let u1: f64 = rng.gen::<f64>().max(f64::MIN_POSITIVE);
        let u2: f64 = rng.gen();
        let z = (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos();
        let sample = lambda + lambda.sqrt() * z;
        sample.round().max(0.0) as u64
    }
}

/// Convenience: a seeded RNG for deterministic workload generation.
pub fn seeded_rng(seed: u64) -> StdRng {
    StdRng::seed_from_u64(seed)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn poisson_zero_lambda() {
        let mut rng = seeded_rng(1);
        assert_eq!(sample_poisson(&mut rng, 0.0), 0);
        assert_eq!(sample_poisson(&mut rng, -1.0), 0);
    }

    #[test]
    fn poisson_small_mean_statistics() {
        let mut rng = seeded_rng(2);
        let lambda = 3.0;
        let n = 20_000;
        let sum: u64 = (0..n).map(|_| sample_poisson(&mut rng, lambda)).sum();
        let mean = sum as f64 / n as f64;
        assert!((mean - lambda).abs() < 0.1, "mean {mean}");
    }

    #[test]
    fn poisson_large_mean_statistics() {
        let mut rng = seeded_rng(3);
        let lambda = 200.0;
        let n = 5_000;
        let samples: Vec<u64> = (0..n).map(|_| sample_poisson(&mut rng, lambda)).collect();
        let mean = samples.iter().sum::<u64>() as f64 / n as f64;
        assert!((mean - lambda).abs() < 2.0, "mean {mean}");
        let var = samples
            .iter()
            .map(|&s| (s as f64 - mean).powi(2))
            .sum::<f64>()
            / n as f64;
        // Poisson variance ≈ mean.
        assert!((var - lambda).abs() < 20.0, "var {var}");
    }

    #[test]
    fn deterministic_given_seed() {
        let mut a = seeded_rng(7);
        let mut b = seeded_rng(7);
        for _ in 0..100 {
            assert_eq!(sample_poisson(&mut a, 5.0), sample_poisson(&mut b, 5.0));
        }
    }
}
