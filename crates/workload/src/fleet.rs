//! Fleet demand traces: one named demand series per pool, generated from
//! Table-1 presets with shared seasonality and per-pool noise.
//!
//! The fleet refactor needs N demand traces that are *correlated the way
//! real regions are* — pools in the same fleet see the same calendar
//! (diurnal/weekly shape, scheduled-job surge hours come from the shared
//! preset profiles, optionally overridden fleet-wide) — while each pool's
//! arrival noise is independent. That split is achieved by construction:
//! the deterministic rate profile of a [`PresetId`] is seed-independent,
//! and only the Poisson sampling consumes the per-pool RNG stream.
//!
//! Per-pool seeds are derived deterministically from the fleet seed and
//! the pool *name* (FNV-1a), so adding or reordering pools never perturbs
//! the other pools' traces.

use crate::generator::{DemandModel, WeeklyProfile};
use crate::presets::{preset, PresetId};
use ip_timeseries::TimeSeries;

/// Derives a pool's RNG seed from the fleet seed and its name (FNV-1a
/// over the name, folded with the fleet seed). Stable across runs,
/// platforms, and pool ordering.
pub fn pool_seed(fleet_seed: u64, name: &str) -> u64 {
    const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
    const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;
    let mut hash = FNV_OFFSET ^ fleet_seed.wrapping_mul(0x9e37_79b9_7f4a_7c15);
    for byte in name.as_bytes() {
        hash ^= u64::from(*byte);
        hash = hash.wrapping_mul(FNV_PRIME);
    }
    hash
}

/// One pool's entry in a [`FleetTrace`].
#[derive(Debug, Clone)]
pub struct FleetPoolPreset {
    /// Pool name (also the metric `pool` label downstream).
    pub name: String,
    /// Which Table-1 preset shapes this pool's rate profile.
    pub preset: PresetId,
    /// Explicit RNG seed; `None` derives one from the fleet seed and the
    /// pool name via [`pool_seed`].
    pub seed: Option<u64>,
}

impl FleetPoolPreset {
    /// A pool with a derived seed.
    pub fn new(name: impl Into<String>, preset: PresetId) -> Self {
        Self {
            name: name.into(),
            preset,
            seed: None,
        }
    }
}

/// Generator of one demand trace per pool.
#[derive(Debug, Clone)]
pub struct FleetTrace {
    /// Interval width applied to every pool (paper: 30 s).
    pub interval_secs: u64,
    /// Days of demand per pool.
    pub days: u32,
    /// Fleet seed; per-pool seeds derive from it unless given explicitly.
    pub seed: u64,
    /// Fleet-wide weekly-profile override: `Some` pins every pool to the
    /// same calendar (shared seasonality made explicit); `None` keeps each
    /// preset's own profile.
    pub shared_weekly: Option<WeeklyProfile>,
    /// The pools.
    pub pools: Vec<FleetPoolPreset>,
}

impl FleetTrace {
    /// A fleet over `pools` with one day of 30-second intervals.
    pub fn new(seed: u64, pools: Vec<FleetPoolPreset>) -> Self {
        Self {
            interval_secs: 30,
            days: 1,
            seed,
            shared_weekly: None,
            pools,
        }
    }

    /// The effective seed of `pool`.
    pub fn seed_of(&self, pool: &FleetPoolPreset) -> u64 {
        pool.seed
            .unwrap_or_else(|| pool_seed(self.seed, &pool.name))
    }

    /// The fully-configured [`DemandModel`] per pool, in fleet order —
    /// exposed so callers (and tests) can tweak a model before sampling.
    pub fn models(&self) -> Vec<(String, DemandModel)> {
        self.pools
            .iter()
            .map(|p| {
                let mut model = preset(p.preset, self.seed_of(p));
                model.interval_secs = self.interval_secs;
                model.days = self.days;
                if let Some(weekly) = &self.shared_weekly {
                    model.weekly = weekly.clone();
                }
                (p.name.clone(), model)
            })
            .collect()
    }

    /// Generates every pool's demand trace, in fleet order.
    pub fn generate(&self) -> Vec<(String, TimeSeries)> {
        self.models()
            .into_iter()
            .map(|(name, model)| {
                let trace = model.generate();
                (name, trace)
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_fleet(seed: u64) -> FleetTrace {
        FleetTrace {
            days: 1,
            ..FleetTrace::new(
                seed,
                vec![
                    FleetPoolPreset::new("east/medium", PresetId::EastUs2Medium),
                    FleetPoolPreset::new("west/medium", PresetId::WestUs2Medium),
                    FleetPoolPreset::new("east/large", PresetId::EastUs2Large),
                ],
            )
        }
    }

    #[test]
    fn deterministic_and_name_keyed() {
        let a = small_fleet(7).generate();
        let b = small_fleet(7).generate();
        assert_eq!(a.len(), 3);
        for ((na, ta), (nb, tb)) in a.iter().zip(b.iter()) {
            assert_eq!(na, nb);
            assert_eq!(ta, tb, "pool {na} not deterministic");
        }
        // A different fleet seed moves every derived trace.
        let c = small_fleet(8).generate();
        assert_ne!(a[0].1, c[0].1);
    }

    #[test]
    fn reordering_pools_does_not_perturb_their_traces() {
        // Seeds key off the pool *name*, so a pool's trace is independent
        // of its position and of which other pools exist.
        let fleet = small_fleet(7);
        let mut reversed = fleet.clone();
        reversed.pools.reverse();
        let forward = fleet.generate();
        let backward = reversed.generate();
        for (name, trace) in &forward {
            let (_, other) = backward.iter().find(|(n, _)| n == name).unwrap();
            assert_eq!(trace, other, "pool {name} changed with ordering");
        }
    }

    #[test]
    fn same_preset_pools_share_seasonality_but_not_noise() {
        // Two pools on the same preset: identical deterministic rate
        // profile (disable noise → identical traces), but with Poisson
        // noise their samples differ because the per-pool seeds differ.
        let fleet = FleetTrace::new(
            3,
            vec![
                FleetPoolPreset::new("a", PresetId::EastUs2Medium),
                FleetPoolPreset::new("b", PresetId::EastUs2Medium),
            ],
        );
        let mut quiet = fleet.models();
        for (_, model) in &mut quiet {
            model.poisson_noise = false;
        }
        assert_eq!(quiet[0].1.generate(), quiet[1].1.generate());

        let noisy = fleet.generate();
        assert_ne!(noisy[0].1, noisy[1].1);
    }

    #[test]
    fn explicit_seed_wins_over_derivation() {
        let mut fleet = small_fleet(7);
        fleet.pools[0].seed = Some(1234);
        assert_eq!(fleet.seed_of(&fleet.pools[0]), 1234);
        assert_eq!(fleet.seed_of(&fleet.pools[1]), pool_seed(7, "west/medium"));
    }

    #[test]
    fn shared_weekly_override_applies_to_every_pool() {
        let mut fleet = small_fleet(7);
        fleet.shared_weekly = Some(WeeklyProfile::flat());
        for (_, model) in fleet.models() {
            assert_eq!(model.weekly.multipliers, [1.0; 7]);
        }
    }
}
