//! Parametric demand model: rate profile → Poisson-sampled request counts.

use crate::{sample_poisson, seeded_rng};
use ip_timeseries::TimeSeries;
use rand::Rng;

/// Scaling of demand by day of week (index 0 = Monday).
#[derive(Debug, Clone)]
pub struct WeeklyProfile {
    /// Multiplier per weekday, Monday-first.
    pub multipliers: [f64; 7],
}

impl WeeklyProfile {
    /// Typical enterprise analytics shape: strong weekdays, weak weekends.
    pub fn business() -> Self {
        Self {
            multipliers: [1.0, 1.05, 1.1, 1.05, 0.95, 0.35, 0.3],
        }
    }

    /// Flat profile (no weekly seasonality).
    pub fn flat() -> Self {
        Self {
            multipliers: [1.0; 7],
        }
    }
}

/// Scheduled-job surges at the top of each hour (the Fig. 4 phenomenon:
/// "many jobs are scheduled at 6AM, 7AM, etc.").
#[derive(Debug, Clone)]
pub struct HourlySpikes {
    /// Extra expected requests per interval during the surge window.
    pub magnitude: f64,
    /// Surge duration in seconds starting at the top of the hour.
    pub duration_secs: u64,
    /// Hours of day (0–23) that surge; empty means every hour.
    pub hours: Vec<u8>,
}

impl HourlySpikes {
    fn rate_boost(&self, second_of_day: u64) -> f64 {
        let hour = (second_of_day / 3600) % 24;
        if !self.hours.is_empty() && !self.hours.contains(&(hour as u8)) {
            return 0.0;
        }
        let second_of_hour = second_of_day % 3600;
        if second_of_hour < self.duration_secs {
            self.magnitude
        } else {
            0.0
        }
    }
}

/// Sporadic spikes "approximately every 3 hours (albeit not precisely
/// timed)" — the hard production region of §7.5.
#[derive(Debug, Clone)]
pub struct SporadicSpikes {
    /// Mean period between spikes in seconds (paper: ~3 h).
    pub mean_period_secs: u64,
    /// Uniform jitter applied to each spike time, in seconds.
    pub jitter_secs: u64,
    /// Expected extra requests per interval while a spike is active.
    pub magnitude: f64,
    /// Spike duration in seconds.
    pub duration_secs: u64,
}

/// A full demand model: deterministic rate profile plus Poisson sampling.
#[derive(Debug, Clone)]
pub struct DemandModel {
    /// Interval width in seconds (paper consolidates to 30 s).
    pub interval_secs: u64,
    /// Number of days to generate.
    pub days: u32,
    /// Baseline expected requests per interval at the diurnal trough.
    pub base_rate: f64,
    /// Peak-over-trough amplitude of the diurnal sinusoid, as extra expected
    /// requests per interval at the daily peak (14:00 local).
    pub diurnal_amplitude: f64,
    /// Weekly scaling.
    pub weekly: WeeklyProfile,
    /// Optional top-of-hour surges.
    pub hourly_spikes: Option<HourlySpikes>,
    /// Optional sporadic spikes.
    pub sporadic_spikes: Option<SporadicSpikes>,
    /// Poisson noise on/off; when off the expected rate itself is emitted
    /// (useful for analytic tests).
    pub poisson_noise: bool,
    /// RNG seed for reproducibility.
    pub seed: u64,
}

impl Default for DemandModel {
    fn default() -> Self {
        Self {
            interval_secs: 30,
            days: 14,
            base_rate: 1.0,
            diurnal_amplitude: 4.0,
            weekly: WeeklyProfile::business(),
            hourly_spikes: None,
            sporadic_spikes: None,
            poisson_noise: true,
            seed: 0,
        }
    }
}

impl DemandModel {
    /// Expected request rate (per interval) at a given absolute second.
    ///
    /// The diurnal term peaks at 14:00 and troughs at 02:00 using a raised
    /// cosine; the weekly multiplier keys off the day index (day 0 =
    /// Monday); surge terms add on top.
    pub fn expected_rate(&self, second: u64, sporadic_times: &[u64]) -> f64 {
        let second_of_day = second % 86_400;
        let day_index = ((second / 86_400) % 7) as usize;
        // Raised cosine peaking at 14:00 (50_400 s).
        let phase = 2.0 * std::f64::consts::PI * (second_of_day as f64 - 50_400.0) / 86_400.0;
        let diurnal = 0.5 * (1.0 + phase.cos()) * self.diurnal_amplitude;
        let mut rate = (self.base_rate + diurnal) * self.weekly.multipliers[day_index];
        if let Some(h) = &self.hourly_spikes {
            rate += h.rate_boost(second_of_day);
        }
        if let Some(s) = &self.sporadic_spikes {
            for &t in sporadic_times {
                if second >= t && second < t + s.duration_secs {
                    rate += s.magnitude;
                }
            }
        }
        rate.max(0.0)
    }

    /// Pre-computes jittered sporadic spike start times over the horizon.
    fn sporadic_schedule(&self, total_secs: u64) -> Vec<u64> {
        let Some(s) = &self.sporadic_spikes else {
            return Vec::new();
        };
        let mut rng = seeded_rng(self.seed.wrapping_add(0x5143));
        let mut times = Vec::new();
        let mut t = s.mean_period_secs / 2;
        while t < total_secs {
            let jitter = if s.jitter_secs > 0 {
                rng.gen_range(0..=2 * s.jitter_secs) as i64 - s.jitter_secs as i64
            } else {
                0
            };
            let jittered = (t as i64 + jitter).max(0) as u64;
            if jittered < total_secs {
                times.push(jittered);
            }
            t += s.mean_period_secs;
        }
        times
    }

    /// Generates the demand trace: request counts per interval.
    pub fn generate(&self) -> TimeSeries {
        let total_secs = self.days as u64 * 86_400;
        let n = (total_secs / self.interval_secs) as usize;
        let sporadic = self.sporadic_schedule(total_secs);
        let mut rng = seeded_rng(self.seed);
        let values: Vec<f64> = (0..n)
            .map(|i| {
                let second = i as u64 * self.interval_secs;
                let rate = self.expected_rate(second, &sporadic);
                if self.poisson_noise {
                    sample_poisson(&mut rng, rate) as f64
                } else {
                    rate
                }
            })
            .collect();
        TimeSeries::new(self.interval_secs, values).expect("interval_secs > 0")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generates_expected_length() {
        let m = DemandModel {
            days: 2,
            interval_secs: 30,
            ..Default::default()
        };
        let ts = m.generate();
        assert_eq!(ts.len(), 2 * 86_400 / 30);
        assert_eq!(ts.interval_secs(), 30);
    }

    #[test]
    fn deterministic_per_seed() {
        let m = DemandModel {
            days: 1,
            seed: 42,
            ..Default::default()
        };
        assert_eq!(m.generate(), m.generate());
        let m2 = DemandModel {
            days: 1,
            seed: 43,
            ..Default::default()
        };
        assert_ne!(m.generate(), m2.generate());
    }

    #[test]
    fn diurnal_peak_exceeds_trough() {
        let m = DemandModel {
            days: 1,
            poisson_noise: false,
            ..Default::default()
        };
        let ts = m.generate();
        // 14:00 vs 02:00 on day 0 (Monday).
        let idx_peak = (14 * 3600 / 30) as usize;
        let idx_trough = (2 * 3600 / 30) as usize;
        assert!(ts.get(idx_peak) > ts.get(idx_trough) + 3.0);
    }

    #[test]
    fn weekend_lower_than_weekday() {
        let m = DemandModel {
            days: 7,
            poisson_noise: false,
            ..Default::default()
        };
        let ts = m.generate();
        let per_day = 86_400 / 30;
        let monday: f64 = ts.slice(0, per_day as usize).unwrap().sum();
        let sunday: f64 = ts
            .slice(6 * per_day as usize, 7 * per_day as usize)
            .unwrap()
            .sum();
        assert!(sunday < monday * 0.5);
    }

    #[test]
    fn hourly_spikes_hit_top_of_hour() {
        let m = DemandModel {
            days: 1,
            poisson_noise: false,
            base_rate: 0.0,
            diurnal_amplitude: 0.0,
            weekly: WeeklyProfile::flat(),
            hourly_spikes: Some(HourlySpikes {
                magnitude: 50.0,
                duration_secs: 120,
                hours: vec![6],
            }),
            ..Default::default()
        };
        let ts = m.generate();
        let idx_6am = (6 * 3600 / 30) as usize;
        assert_eq!(ts.get(idx_6am), 50.0);
        assert_eq!(ts.get(idx_6am + 1), 50.0);
        assert_eq!(ts.get(idx_6am + 4), 0.0); // after the 120 s window
        let idx_7am = (7 * 3600 / 30) as usize;
        assert_eq!(ts.get(idx_7am), 0.0); // hour 7 not in the list
    }

    #[test]
    fn sporadic_spikes_present_and_jittered() {
        let m = DemandModel {
            days: 1,
            poisson_noise: false,
            base_rate: 0.0,
            diurnal_amplitude: 0.0,
            weekly: WeeklyProfile::flat(),
            sporadic_spikes: Some(SporadicSpikes {
                mean_period_secs: 3 * 3600,
                jitter_secs: 600,
                magnitude: 30.0,
                duration_secs: 300,
            }),
            ..Default::default()
        };
        let ts = m.generate();
        let active = ts.values().iter().filter(|&&v| v > 0.0).count();
        // Roughly 8 spikes/day × 10 intervals each.
        assert!((40..=120).contains(&active), "active intervals {active}");
        // All activity is at the spike magnitude.
        assert!(ts.values().iter().all(|&v| v == 0.0 || v == 30.0));
    }

    #[test]
    fn rate_never_negative() {
        let m = DemandModel {
            days: 1,
            poisson_noise: false,
            base_rate: 0.0,
            diurnal_amplitude: 0.0,
            ..Default::default()
        };
        assert!(m.generate().values().iter().all(|&v| v >= 0.0));
    }
}
