//! Trace characterization: the statistics the paper uses informally when
//! describing datasets ("regions with larger and stable patterns, such as
//! West US2", "sporadic spikes … albeit not precisely timed").

use ip_timeseries::TimeSeries;

/// Summary statistics of a demand trace.
#[derive(Debug, Clone, PartialEq)]
pub struct TraceStats {
    /// Mean requests per interval.
    pub mean: f64,
    /// Peak requests in any interval.
    pub peak: f64,
    /// Peak-to-mean ratio (burstiness; ∞-free: 0 when the trace is empty).
    pub peak_to_mean: f64,
    /// Coefficient of variation (std/mean; 0 for constant or empty traces).
    pub coefficient_of_variation: f64,
    /// Autocorrelation at the daily lag (predictability of the diurnal
    /// pattern; `None` when the trace is shorter than two days).
    pub daily_autocorrelation: Option<f64>,
    /// Fraction of intervals with zero requests.
    pub idle_fraction: f64,
}

/// Computes [`TraceStats`] for a demand trace.
pub fn trace_stats(series: &TimeSeries) -> TraceStats {
    let n = series.len();
    if n == 0 {
        return TraceStats {
            mean: 0.0,
            peak: 0.0,
            peak_to_mean: 0.0,
            coefficient_of_variation: 0.0,
            daily_autocorrelation: None,
            idle_fraction: 0.0,
        };
    }
    let mean = series.mean().unwrap_or(0.0);
    let peak = series.max().unwrap_or(0.0);
    let std = series.std_dev().unwrap_or(0.0);
    let daily_lag = (86_400 / series.interval_secs().max(1)) as usize;
    TraceStats {
        mean,
        peak,
        peak_to_mean: if mean > 0.0 { peak / mean } else { 0.0 },
        coefficient_of_variation: if mean > 0.0 { std / mean } else { 0.0 },
        daily_autocorrelation: autocorrelation(series.values(), daily_lag),
        idle_fraction: series.values().iter().filter(|&&v| v == 0.0).count() as f64 / n as f64,
    }
}

/// Sample autocorrelation at `lag`; `None` when there are not at least two
/// full lags of data or the series is constant.
pub fn autocorrelation(values: &[f64], lag: usize) -> Option<f64> {
    if lag == 0 || values.len() < 2 * lag {
        return None;
    }
    let n = values.len();
    let mean = values.iter().sum::<f64>() / n as f64;
    let var: f64 = values.iter().map(|v| (v - mean).powi(2)).sum();
    if var < 1e-12 {
        return None;
    }
    let cov: f64 = (0..n - lag)
        .map(|t| (values[t] - mean) * (values[t + lag] - mean))
        .sum();
    Some(cov / var)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{preset, spiky_region, PresetId};

    #[test]
    fn constant_trace_stats() {
        let ts = TimeSeries::new(30, vec![4.0; 100]).unwrap();
        let s = trace_stats(&ts);
        assert_eq!(s.mean, 4.0);
        assert_eq!(s.peak_to_mean, 1.0);
        assert_eq!(s.coefficient_of_variation, 0.0);
        assert_eq!(s.idle_fraction, 0.0);
        // Constant series has undefined autocorrelation.
        assert_eq!(s.daily_autocorrelation, None);
    }

    #[test]
    fn empty_trace_safe() {
        let s = trace_stats(&TimeSeries::zeros(30, 0));
        assert_eq!(s.peak_to_mean, 0.0);
    }

    #[test]
    fn periodic_signal_high_autocorrelation() {
        // Period exactly one "day" at a coarse interval.
        let day = 86_400 / 3600; // 24 intervals of 1 h
        let vals: Vec<f64> = (0..24 * 5)
            .map(|t| [1.0, 9.0, 3.0][t % 3] + (t % day) as f64)
            .collect();
        let ac = autocorrelation(&vals, day).unwrap();
        assert!(ac > 0.8, "daily autocorrelation {ac}");
    }

    #[test]
    fn spiky_region_is_bursty_and_idle() {
        let mut m = spiky_region(3);
        m.days = 2;
        let spiky = trace_stats(&m.generate());
        let mut m2 = preset(PresetId::WestUs2Small, 3);
        m2.days = 2;
        let steady = trace_stats(&m2.generate());
        // The §7.5 hard region: burstier and mostly idle compared to the
        // large stable region.
        assert!(spiky.peak_to_mean > 3.0 * steady.peak_to_mean);
        assert!(spiky.idle_fraction > steady.idle_fraction);
        assert!(spiky.coefficient_of_variation > steady.coefficient_of_variation);
    }

    #[test]
    fn diurnal_presets_have_daily_structure() {
        let mut m = preset(PresetId::EastUs2Small, 7);
        m.days = 3;
        let s = trace_stats(&m.generate());
        let ac = s.daily_autocorrelation.expect("3 days of data");
        assert!(ac > 0.5, "daily autocorrelation {ac}");
    }

    #[test]
    fn autocorrelation_edge_cases() {
        assert_eq!(autocorrelation(&[1.0, 2.0], 0), None);
        assert_eq!(autocorrelation(&[1.0, 2.0, 3.0], 2), None); // < 2 lags
        assert_eq!(autocorrelation(&[5.0; 10], 2), None); // constant
    }
}
