//! Behavioral inertness of the observability layer: turning `IP_OBS` on
//! must never change a single bit of any numeric result — simulation
//! reports, interval telemetry, or trained network parameters at any worker
//! count. Recording reads clocks and writes metrics, but never touches RNG
//! streams or numeric state.
//!
//! These tests share the process-global obs gate, so they serialize on a
//! mutex (this binary is its own process; other test binaries are
//! unaffected).

use ip_models::deep::DeepConfig;
use ip_models::mwdn::Mwdn;
use ip_models::Forecaster;
use ip_sim::{IpWorkerConfig, SimConfig, SimReport, Simulation, StaticProvider};
use ip_timeseries::TimeSeries;
use std::sync::Mutex;

static GATE: Mutex<()> = Mutex::new(());

fn run_sim() -> SimReport {
    let vals: Vec<f64> = (0..240)
        .map(|t| (4.0 + 3.0 * (2.0 * std::f64::consts::PI * t as f64 / 48.0).sin()).max(0.0))
        .collect();
    let demand = TimeSeries::new(30, vals).unwrap();
    let cfg = SimConfig {
        tau_secs: 90,
        tau_jitter_secs: 15,
        cluster_lifespan_secs: Some(1800),
        cluster_failure_prob_per_hour: 0.05,
        default_pool_target: 4,
        ip_worker: Some(IpWorkerConfig::default()),
        seed: 7,
        ..Default::default()
    };
    let mut provider = StaticProvider(5);
    Simulation::new(cfg, Some(&mut provider))
        .run(&demand)
        .unwrap()
}

#[test]
fn simulation_reports_bit_identical_with_obs_on_and_off() {
    let _g = GATE.lock().unwrap();
    ip_obs::set_enabled(false);
    let off = run_sim();
    ip_obs::set_enabled(true);
    ip_obs::reset();
    let on = run_sim();
    ip_obs::set_enabled(false);
    ip_obs::reset();

    assert_eq!(off.total_requests, on.total_requests);
    assert_eq!(off.hits, on.hits);
    assert_eq!(off.misses, on.misses);
    assert_eq!(off.total_wait_secs.to_bits(), on.total_wait_secs.to_bits());
    assert_eq!(
        off.idle_cluster_seconds.to_bits(),
        on.idle_cluster_seconds.to_bits()
    );
    assert_eq!(off.clusters_created, on.clusters_created);
    assert_eq!(off.expired, on.expired);
    assert_eq!(off.worker_replacements, on.worker_replacements);
    assert_eq!(off.applied_target_timeline, on.applied_target_timeline);
    // The per-interval stream itself is part of the report and must match
    // record for record (it is always collected, obs on or off).
    assert_eq!(off.interval_stats, on.interval_stats);
}

fn train_params(threads: usize) -> Vec<f32> {
    let vals: Vec<f64> = (0..260)
        .map(|t| {
            8.0 + 4.0 * (2.0 * std::f64::consts::PI * t as f64 / 24.0).sin()
                + 1.5 * (2.0 * std::f64::consts::PI * t as f64 / 7.0).cos()
        })
        .collect();
    let ts = TimeSeries::new(30, vals).unwrap();
    let cfg = DeepConfig {
        window: 32,
        horizon: 8,
        epochs: 2,
        batch_size: 16,
        microbatch: 4,
        stride: 2,
        threads: Some(threads),
        ..Default::default()
    };
    let mut m = Mwdn::model(cfg, 2, 4);
    m.fit(&ts).unwrap();
    m.param_values()
}

#[test]
fn nn_training_bit_identical_with_obs_on_and_off_across_threads() {
    let _g = GATE.lock().unwrap();
    for threads in [1usize, 4] {
        ip_obs::set_enabled(false);
        let off = train_params(threads);
        ip_obs::set_enabled(true);
        ip_obs::reset();
        let on = train_params(threads);
        ip_obs::set_enabled(false);
        ip_obs::reset();
        assert_eq!(off.len(), on.len(), "threads={threads}");
        for (i, (a, b)) in off.iter().zip(&on).enumerate() {
            assert_eq!(
                a.to_bits(),
                b.to_bits(),
                "threads={threads}: parameter {i} differs ({a} vs {b})"
            );
        }
    }
}
