//! End-to-end monitoring: the full system inside the simulator, distilled
//! through the §7.5 dashboard, with alert rules firing on injected faults.

use intelligent_pooling::core::replay::{replay_pipeline, ReplayConfig};
use intelligent_pooling::prelude::*;
use intelligent_pooling::sim::ArbitratorConfig;

#[test]
fn dashboard_reflects_faulty_run_and_alerts_fire() {
    // A run with injected pipeline failures and a worker outage.
    let demand = TimeSeries::new(30, vec![1.0; 240]).unwrap();
    let cfg = SimConfig {
        interval_secs: 30,
        tau_secs: 90,
        tau_jitter_secs: 0,
        default_pool_target: 2,
        ip_worker: Some(IpWorkerConfig {
            run_every_secs: 600,
            horizon_secs: 900,
            failing_runs: vec![2, 3, 4, 5, 6, 7],
        }),
        arbitrator: ArbitratorConfig {
            lease_secs: 120,
            check_every_secs: 60,
        },
        pooling_worker_outages: vec![(1800, u64::MAX)],
        ..Default::default()
    };
    let mut provider = StaticProvider(6);
    let report = Simulation::new(cfg, Some(&mut provider))
        .run(&demand)
        .unwrap();

    let dashboard = Dashboard::new(CostModel::default());
    let snapshot = dashboard.snapshot(&report, demand.duration_secs() as f64);

    // The §7.5 metric set is populated coherently.
    assert_eq!(snapshot.hit_count + snapshot.miss_count, 240);
    assert!(snapshot.ip_failures >= 6);
    assert!(
        snapshot.fallback_intervals > 0,
        "stale files must trigger fallback"
    );
    assert_eq!(snapshot.worker_replacements, 1);
    assert!(snapshot.idle_cost_dollars > 0.0);
    assert!(snapshot.demand_rate_per_interval > 0.99 && snapshot.demand_rate_per_interval < 1.01);

    // Alerting: failure-rate and worker-replacement rules fire; an absurdly
    // loose hit-rate rule does not.
    let alerts = evaluate_alerts(
        &snapshot,
        &[
            AlertRule::PipelineFailureRateAbove(0.3),
            AlertRule::WorkerReplaced,
            AlertRule::HitRateBelow(1.0),
            AlertRule::FallbackIntervalsAbove(1_000_000),
        ],
    );
    let fired: Vec<_> = alerts.iter().map(|a| &a.rule).collect();
    assert!(fired.contains(&&AlertRule::PipelineFailureRateAbove(0.3)));
    assert!(fired.contains(&&AlertRule::WorkerReplaced));
    assert!(!fired.contains(&&AlertRule::FallbackIntervalsAbove(1_000_000)));
}

#[test]
fn replay_feeds_cogs_savings_metric() {
    // Replay a cheap engine over a seasonal trace, then express the result
    // as the dashboard's "COGS saved vs static reference" figure.
    let day: Vec<f64> = (0..96)
        .map(|t| {
            if (24..48).contains(&(t % 96)) {
                4.0
            } else {
                0.0
            }
        })
        .collect();
    let mut vals = Vec::new();
    for _ in 0..6 {
        vals.extend(day.clone());
    }
    let demand = TimeSeries::new(30, vals).unwrap();

    let saa = SaaConfig {
        tau_intervals: 2,
        stableness: 4,
        max_pool: 40,
        max_new_per_block: 40,
        alpha_prime: 0.2,
        ..Default::default()
    };
    let mut engine = TwoStepEngine::new(SeasonalNaive::new(96), saa);
    let replay_cfg = ReplayConfig {
        warmup: 96,
        cadence: 24,
        horizon: 48,
        default_target: 2,
        tau_intervals: saa.tau_intervals,
    };
    let out = replay_pipeline(&mut engine, &demand, &replay_cfg).unwrap();
    assert!(
        out.mechanics.hit_rate > 0.9,
        "hit rate {}",
        out.mechanics.hit_rate
    );

    // Static reference: the best fixed pool for the same hit rate.
    let eval = demand.slice(96, demand.len()).unwrap();
    let (_, static_mech) =
        optimal_static_for_hit_rate(&eval, saa.tau_intervals, out.mechanics.hit_rate, 100).unwrap();
    let cost = CostModel::default();
    let saved = cost.cost_of_idle(static_mech.idle_cluster_seconds)
        - cost.cost_of_idle(out.mechanics.idle_cluster_seconds);
    assert!(
        saved > 0.0,
        "replayed dynamic policy must undercut the matched static pool ({} vs {})",
        out.mechanics.idle_cluster_seconds,
        static_mech.idle_cluster_seconds
    );
}
