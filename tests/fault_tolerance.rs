//! §7.6 fault tolerance, end to end: pipeline failures degrade through the
//! stale-recommendation → default chain; dead pooling workers are replaced
//! by the Arbitrator; and the system keeps serving throughout.

use intelligent_pooling::prelude::*;

fn steady_demand(intervals: usize) -> TimeSeries {
    TimeSeries::new(30, vec![1.0; intervals]).unwrap()
}

#[test]
fn consecutive_pipeline_failures_degrade_to_defaults() {
    // Runs every 5 min, each covering only 10 min; runs 2..5 fail. After
    // the run-1 file ages out (10 min past its generation), the default
    // target must take over until run 6 succeeds.
    let demand = steady_demand(120); // 1 hour
    let cfg = SimConfig {
        interval_secs: 30,
        tau_secs: 90,
        tau_jitter_secs: 0,
        default_pool_target: 2,
        ip_worker: Some(IpWorkerConfig {
            run_every_secs: 300,
            horizon_secs: 600,
            failing_runs: vec![2, 3, 4, 5],
        }),
        ..Default::default()
    };
    let mut provider = StaticProvider(7);
    let report = Simulation::new(cfg, Some(&mut provider))
        .run(&demand)
        .unwrap();

    assert_eq!(report.ip_failures, 4);
    let timeline = &report.applied_target_timeline;
    // Runs 0 and 1 cover minutes 0–15 → target 7.
    assert!(timeline[2..20].iter().all(|&t| t == 7), "{timeline:?}");
    // Run 1 (at 5 min) covers through minute 15; then failures leave the
    // system stale → default 2 somewhere in minutes 15–30.
    assert!(timeline[31..58].iter().all(|&t| t == 2), "{timeline:?}");
    // Run 6 at minute 30 succeeds → back to 7.
    assert!(timeline[62..80].iter().all(|&t| t == 7), "{timeline:?}");
    assert!(report.fallback_intervals > 0);
}

#[test]
fn single_failure_keeps_previous_recommendation() {
    // Horizon (1 h) far exceeds the run cadence (5 min): one failed run is
    // invisible because the previous file still covers the gap — exactly
    // the "safeguards against a single run failure" design.
    let demand = steady_demand(120);
    let cfg = SimConfig {
        interval_secs: 30,
        tau_secs: 90,
        tau_jitter_secs: 0,
        default_pool_target: 1,
        ip_worker: Some(IpWorkerConfig {
            run_every_secs: 300,
            horizon_secs: 3600,
            failing_runs: vec![3],
        }),
        ..Default::default()
    };
    let mut provider = StaticProvider(5);
    let report = Simulation::new(cfg, Some(&mut provider))
        .run(&demand)
        .unwrap();
    assert_eq!(report.ip_failures, 1);
    assert_eq!(report.fallback_intervals, 1); // only the very first interval
    assert!(report.applied_target_timeline[1..].iter().all(|&t| t == 5));
}

#[test]
fn arbitrator_replaces_dead_worker_and_pool_recovers() {
    // The pooling worker dies at t=600 s and never recovers on its own; the
    // Arbitrator's lease machinery must replace it, after which re-hydration
    // resumes and the pool refills.
    let mut vals = vec![0.0; 120];
    // A burst right after the failure drains the pool.
    vals[21] = 4.0;
    let demand = TimeSeries::new(30, vals).unwrap();
    let cfg = SimConfig {
        interval_secs: 30,
        tau_secs: 90,
        tau_jitter_secs: 0,
        default_pool_target: 4,
        arbitrator: ip_sim::ArbitratorConfig {
            lease_secs: 180,
            check_every_secs: 60,
        },
        pooling_worker_outages: vec![(600, u64::MAX)],
        ..Default::default()
    };
    let report = Simulation::new(cfg, None).run(&demand).unwrap();
    assert_eq!(report.worker_replacements, 1);
    // The burst consumed the pre-drain pool instantly.
    assert_eq!(report.hits, 4);
    // Re-hydration resumed after replacement: the pool idles again at the
    // end, so idle time must exceed what the pre-outage window alone yields.
    let pre_outage_idle = 4.0 * 600.0;
    assert!(
        report.idle_cluster_seconds > pre_outage_idle + 4.0 * 600.0,
        "idle {} suggests the pool never refilled",
        report.idle_cluster_seconds
    );
}

#[test]
fn guardrail_fallback_still_yields_service() {
    // An engine whose guardrail always rejects must still produce a usable
    // (static-like) recommendation through the SAA fallback, and the
    // simulator must keep serving with it.
    use intelligent_pooling::models::SsaModel;
    let saa = SaaConfig {
        tau_intervals: 3,
        stableness: 10,
        max_pool: 50,
        ..Default::default()
    };
    let pipeline = TwoStepEngine::new(SsaModel::new(60, RankSelection::Fixed(3)), saa);
    let mut engine = IntelligentPooling::new(
        pipeline,
        || SsaModel::new(60, RankSelection::Fixed(3)),
        EngineConfig {
            saa,
            guardrail: Some(Guardrail {
                holdout: 40,
                max_relative_mae: 0.0,
            }), // rejects all
            min_history: 120,
            ..Default::default()
        },
    );
    let demand = steady_demand(480);
    let cfg = SimConfig {
        interval_secs: 30,
        tau_secs: 90,
        tau_jitter_secs: 0,
        default_pool_target: 2,
        ip_worker: Some(IpWorkerConfig {
            run_every_secs: 1800,
            horizon_secs: 3600,
            failing_runs: vec![],
        }),
        ..Default::default()
    };
    let report = Simulation::new(cfg, Some(&mut engine))
        .run(&demand)
        .unwrap();
    // Recommendations kept flowing (fallback path), and the pool served.
    assert!(report.ip_runs >= 4);
    assert!(report.hit_rate > 0.3, "hit rate {}", report.hit_rate);
    assert_eq!(
        engine.last_outcome,
        Some(intelligent_pooling::core::RecommendationOutcome::GuardrailFallback)
    );
}
