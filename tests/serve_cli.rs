//! Integration tests for `ip-pool serve`, driven through the real binary:
//! boot the daemon on an ephemeral port, talk to it over a raw socket,
//! shut it down over HTTP, and check the summary plus the observability
//! artifacts it leaves behind (Prometheus metrics and a Chrome trace).

use std::io::{Read, Write};
use std::net::TcpStream;
use std::path::Path;
use std::process::{Child, Command, Stdio};
use std::time::{Duration, Instant};

fn ip_pool() -> Command {
    Command::new(env!("CARGO_BIN_EXE_ip-pool"))
}

fn http(port: u16, method: &str, path: &str, body: &str) -> std::io::Result<(u16, String)> {
    let mut stream = TcpStream::connect(("127.0.0.1", port))?;
    stream.set_read_timeout(Some(Duration::from_secs(10)))?;
    // `Connection: close` so `read_to_string` sees EOF right after the
    // response instead of waiting out the server's keep-alive idle timeout.
    let request = format!(
        "{method} {path} HTTP/1.1\r\nHost: localhost\r\nConnection: close\r\nContent-Length: {}\r\n\r\n{body}",
        body.len()
    );
    stream.write_all(request.as_bytes())?;
    let mut raw = String::new();
    stream.read_to_string(&mut raw)?;
    let status = raw
        .split_whitespace()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(0);
    let payload = raw
        .split_once("\r\n\r\n")
        .map(|(_, b)| b.to_string())
        .unwrap_or_default();
    Ok((status, payload))
}

/// Polls the port file the daemon writes on startup.
fn wait_for_port(path: &Path, child: &mut Child) -> u16 {
    let deadline = Instant::now() + Duration::from_secs(60);
    loop {
        if let Ok(text) = std::fs::read_to_string(path) {
            if let Ok(port) = text.trim().parse() {
                return port;
            }
        }
        if let Some(status) = child.try_wait().unwrap() {
            panic!("daemon exited early with {status}");
        }
        assert!(Instant::now() < deadline, "daemon never wrote {path:?}");
        std::thread::sleep(Duration::from_millis(20));
    }
}

#[test]
fn serve_daemon_over_the_binary_with_artifacts() {
    let dir = std::env::temp_dir().join(format!("ip-pool-serve-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let demand = dir.join("demand.txt");
    let port_file = dir.join("port");
    let metrics_file = dir.join("metrics.prom");
    let trace_file = dir.join("trace.json");
    std::fs::write(&demand, "3\n".repeat(120)).unwrap();

    let mut child = ip_pool()
        .args([
            "serve",
            demand.to_str().unwrap(),
            "--port",
            "0",
            "--speedup",
            "600",
            "--model",
            "baseline",
            "--autotune",
            "true",
            "--port-file",
            port_file.to_str().unwrap(),
            "--metrics-out",
            metrics_file.to_str().unwrap(),
            "--trace-out",
            trace_file.to_str().unwrap(),
            "--trace-format",
            "chrome",
        ])
        .stdout(Stdio::piped())
        .stderr(Stdio::piped())
        .spawn()
        .expect("spawn ip-pool serve");
    let port = wait_for_port(&port_file, &mut child);

    let (code, body) = http(port, "GET", "/healthz", "").unwrap();
    assert_eq!((code, body.as_str()), (200, "ok\n"));
    let (code, _) = http(port, "GET", "/readyz", "").unwrap();
    assert_eq!(code, 200);
    let (code, body) = http(port, "POST", "/requests", "{\"count\":4,\"interval\":100}").unwrap();
    assert_eq!(code, 200, "injection failed: {body}");

    // Wait for the replay to finish (120 intervals at 20/s ≈ 6 s).
    let deadline = Instant::now() + Duration::from_secs(60);
    loop {
        let (code, body) = http(port, "GET", "/status", "").unwrap();
        assert_eq!(code, 200);
        if body.contains("\"state\":\"completed\"") {
            break;
        }
        assert!(Instant::now() < deadline, "never completed; last: {body}");
        std::thread::sleep(Duration::from_millis(50));
    }

    let (code, live_metrics) = http(port, "GET", "/metrics", "").unwrap();
    assert_eq!(code, 200);
    assert!(
        live_metrics.contains("ip_sim_pool_hits_total"),
        "{live_metrics}"
    );
    assert!(
        live_metrics.contains("# HELP ip_serve_ticks_total"),
        "{live_metrics}"
    );

    let (code, _) = http(port, "POST", "/shutdown", "").unwrap();
    assert_eq!(code, 200);
    let out = child.wait_with_output().expect("daemon exits");
    assert!(
        out.status.success(),
        "stderr: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(
        stdout.contains("listening on http://127.0.0.1:"),
        "{stdout}"
    );
    assert!(stdout.contains("4 injected"), "{stdout}");
    assert!(stdout.contains("hit rate"), "{stdout}");

    // The exit-time artifacts: Prometheus text and a Chrome trace_event
    // JSON array (structural spot checks; schema validation proper lives
    // in the ip-obs test suite).
    let metrics = std::fs::read_to_string(&metrics_file).unwrap();
    assert!(
        metrics.contains("ip_serve_http_requests_total"),
        "{metrics}"
    );
    let trace = std::fs::read_to_string(&trace_file).unwrap();
    let trimmed = trace.trim();
    assert!(
        trimmed.starts_with('[') && trimmed.ends_with(']'),
        "not a JSON array"
    );
    assert!(
        trace.contains("\"ph\":\"X\""),
        "no complete events in chrome trace"
    );
    assert!(trace.contains("serve.tick"), "controller spans missing");

    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn serve_rejects_bad_flags() {
    let out = ip_pool()
        .args(["serve", "/nonexistent/demand.txt"])
        .output()
        .unwrap();
    assert!(!out.status.success());

    let dir = std::env::temp_dir().join(format!("ip-pool-serve-bad-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let demand = dir.join("demand.txt");
    std::fs::write(&demand, "1\n1\n1\n1\n").unwrap();

    let out = ip_pool()
        .args(["serve", demand.to_str().unwrap(), "--speedup", "-2"])
        .output()
        .unwrap();
    assert!(!out.status.success());
    let err = String::from_utf8_lossy(&out.stderr);
    assert!(err.contains("speedup"), "{err}");

    let out = ip_pool()
        .args([
            "serve",
            demand.to_str().unwrap(),
            "--trace-format",
            "protobuf",
        ])
        .output()
        .unwrap();
    assert!(!out.status.success());

    std::fs::remove_dir_all(&dir).ok();
}
