//! Cross-checks between the three independent implementations of the pool
//! mechanism: the analytic accounting (`ip-saa`), the LP/DP optimizers, and
//! the discrete-event simulator (`ip-sim`).

use intelligent_pooling::prelude::*;
use intelligent_pooling::saa::static_pool::static_schedule;

fn bursty_demand(days: u32, seed: u64) -> TimeSeries {
    let mut model = DemandModel {
        days,
        base_rate: 1.0,
        diurnal_amplitude: 3.0,
        seed,
        ..Default::default()
    };
    model.interval_secs = 30;
    model.generate()
}

/// The DES with a constant pool and deterministic τ must reproduce the
/// analytic Fig. 3 accounting wherever the paper's FCFS approximation is
/// exact — i.e. when the pool is rarely drained. When the pool *is* in
/// deficit the two models legitimately diverge (the §4 footnote: real
/// execution violates cumulative FCFS matching, and the analytic model is a
/// pessimistic approximation), so there the test pins the documented
/// direction: the simulator never serves fewer requests instantly than the
/// planning model predicts.
#[test]
fn simulator_matches_analytic_accounting_for_static_pool() {
    let demand = bursty_demand(1, 3);
    let tau_intervals = 3usize;
    for target in [0u32, 2, 5, 10, 20] {
        let analytic = evaluate_schedule(
            &demand,
            &static_schedule(demand.len(), target),
            tau_intervals,
        )
        .unwrap();
        let cfg = SimConfig {
            interval_secs: 30,
            tau_secs: 90,
            tau_jitter_secs: 0,
            default_pool_target: target,
            ..Default::default()
        };
        let sim = Simulation::new(cfg, None).run(&demand).unwrap();

        assert_eq!(
            sim.total_requests, analytic.total_requests,
            "target {target}"
        );
        if analytic.hit_rate >= 0.95 {
            // Well-provisioned regime: the models must coincide closely.
            let hit_diff = (sim.hit_rate - analytic.hit_rate).abs();
            assert!(
                hit_diff < 0.03,
                "target {target}: sim hit {} vs analytic {}",
                sim.hit_rate,
                analytic.hit_rate
            );
            let denom = analytic.idle_cluster_seconds.max(1.0);
            let idle_diff =
                (sim.idle_cluster_seconds - analytic.idle_cluster_seconds).abs() / denom;
            assert!(
                idle_diff < 0.10,
                "target {target}: sim idle {} vs analytic {}",
                sim.idle_cluster_seconds,
                analytic.idle_cluster_seconds
            );
        } else {
            // Deficit regime: the analytic FCFS matching is pessimistic.
            assert!(
                sim.hit_rate >= analytic.hit_rate - 0.02,
                "target {target}: sim hit {} below analytic lower bound {}",
                sim.hit_rate,
                analytic.hit_rate
            );
        }
    }
}

/// DP and LP agree on the optimum within integer-rounding, and both beat
/// every static pool on the combined objective.
#[test]
fn optimizers_dominate_static_pools_on_objective() {
    let demand = bursty_demand(1, 9).aggregate(4).unwrap(); // 2-minute buckets, fast
    let config = SaaConfig {
        tau_intervals: 1,
        stableness: 5,
        min_pool: 0,
        max_pool: 60,
        max_new_per_block: 60,
        alpha_prime: 0.5,
    };
    let lp = optimize_lp(&demand, &config).unwrap();
    let dp = optimize_dp(&demand, &config).unwrap();
    assert!(lp.objective <= dp.objective + 1e-6);

    for static_n in (0..=30).step_by(5) {
        let m = evaluate_schedule(
            &demand,
            &static_schedule(demand.len(), static_n),
            config.tau_intervals,
        )
        .unwrap();
        let obj = m.objective(config.alpha_prime, demand.interval_secs());
        assert!(
            dp.objective <= obj + 1e-6,
            "static pool {static_n} (obj {obj}) beats DP ({})",
            dp.objective
        );
    }
}

/// The headline claim's shape: at a matched high hit rate, the dynamic
/// schedule spends meaningfully less idle time than the best static pool.
#[test]
fn dynamic_pooling_cuts_idle_at_matched_hit_rate() {
    let demand = bursty_demand(2, 17);
    let config = SaaConfig {
        tau_intervals: 3,
        stableness: 10,
        min_pool: 0,
        max_pool: 200,
        max_new_per_block: 200,
        alpha_prime: 0.5,
    };

    // Find the dynamic schedule whose hit rate clears 99% by sweeping α'.
    let mut dynamic: Option<ip_saa::PoolMechanics> = None;
    for alpha in [0.5, 0.3, 0.2, 0.1, 0.05, 0.02, 0.01] {
        let c = SaaConfig {
            alpha_prime: alpha,
            ..config
        };
        let opt = optimize_dp(&demand, &c).unwrap();
        let m = evaluate_schedule(&demand, &opt.schedule, c.tau_intervals).unwrap();
        if m.hit_rate >= 0.99 {
            dynamic = Some(m);
            break;
        }
    }
    let dynamic = dynamic.expect("some alpha reaches a 99% hit rate");

    let (_, static_mech) = optimal_static_for_hit_rate(&demand, 3, 0.99, 500).unwrap();
    assert!(
        dynamic.idle_cluster_seconds < static_mech.idle_cluster_seconds,
        "dynamic idle {} not below static idle {}",
        dynamic.idle_cluster_seconds,
        static_mech.idle_cluster_seconds
    );
    let reduction = 1.0 - dynamic.idle_cluster_seconds / static_mech.idle_cluster_seconds;
    // The paper reports up to 43%; demand shape dictates the exact figure —
    // requiring a clearly material reduction keeps the test robust.
    assert!(
        reduction > 0.10,
        "idle reduction only {:.1}%",
        reduction * 100.0
    );
}

/// Fig. 4's phenomenon: with top-of-hour surges, the optimal pool size rises
/// *before* the surge arrives (by about τ).
#[test]
fn optimal_pool_rises_ahead_of_scheduled_surges() {
    use intelligent_pooling::workload::{HourlySpikes, WeeklyProfile};
    let model = DemandModel {
        days: 1,
        base_rate: 0.5,
        diurnal_amplitude: 0.0,
        weekly: WeeklyProfile::flat(),
        hourly_spikes: Some(HourlySpikes {
            magnitude: 20.0,
            duration_secs: 120,
            hours: vec![],
        }),
        poisson_noise: false,
        seed: 0,
        ..Default::default()
    };
    let demand = model.generate();
    let config = SaaConfig {
        tau_intervals: 4, // 2 minutes of creation latency
        stableness: 4,    // 2-minute blocks so the anticipation is visible
        min_pool: 0,
        max_pool: 200,
        max_new_per_block: 200,
        alpha_prime: 0.3,
    };
    let opt = optimize_dp(&demand, &config).unwrap();

    // At each top of hour (interval 120·k), the pool during the preceding
    // block must exceed the quiet-period level.
    let per_hour = 120usize;
    let quiet_level = opt.schedule[per_hour / 2]; // mid-hour, far from surges
    let mut anticipations = 0;
    let mut surges = 0;
    for k in 1..24 {
        let surge_start = k * per_hour;
        if surge_start >= opt.schedule.len() {
            break;
        }
        surges += 1;
        let before = opt.schedule[surge_start - config.tau_intervals];
        if before > quiet_level {
            anticipations += 1;
        }
    }
    assert!(
        anticipations * 2 >= surges,
        "pool anticipated only {anticipations}/{surges} surges"
    );
}
