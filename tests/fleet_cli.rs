//! Integration tests for the `--pools` fleet front end, driven through the
//! real `ip-pool` binary: offline fleet simulation, the fleet daemon with
//! per-pool routing and labeled metrics, and spec validation errors.

use std::io::{Read, Write};
use std::net::TcpStream;
use std::path::{Path, PathBuf};
use std::process::{Child, Command, Stdio};
use std::time::{Duration, Instant};

fn ip_pool() -> Command {
    Command::new(env!("CARGO_BIN_EXE_ip-pool"))
}

fn http(port: u16, method: &str, path: &str, body: &str) -> std::io::Result<(u16, String)> {
    let mut stream = TcpStream::connect(("127.0.0.1", port))?;
    stream.set_read_timeout(Some(Duration::from_secs(10)))?;
    let request = format!(
        "{method} {path} HTTP/1.1\r\nHost: localhost\r\nConnection: close\r\nContent-Length: {}\r\n\r\n{body}",
        body.len()
    );
    stream.write_all(request.as_bytes())?;
    let mut raw = String::new();
    stream.read_to_string(&mut raw)?;
    let status = raw
        .split_whitespace()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(0);
    let payload = raw
        .split_once("\r\n\r\n")
        .map(|(_, b)| b.to_string())
        .unwrap_or_default();
    Ok((status, payload))
}

fn wait_for_port(path: &Path, child: &mut Child) -> u16 {
    let deadline = Instant::now() + Duration::from_secs(60);
    loop {
        if let Ok(text) = std::fs::read_to_string(path) {
            if let Ok(port) = text.trim().parse() {
                return port;
            }
        }
        if let Some(status) = child.try_wait().unwrap() {
            panic!("daemon exited early with {status}");
        }
        assert!(Instant::now() < deadline, "daemon never wrote {path:?}");
        std::thread::sleep(Duration::from_millis(20));
    }
}

/// A scratch dir with three tiny demand files and a spec referencing them
/// by name. File-sourced pools keep the test fast and deterministic.
fn fleet_fixture(tag: &str) -> (PathBuf, PathBuf) {
    let dir = std::env::temp_dir().join(format!("ip-pool-fleet-{tag}-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    for (name, line) in [("east", "3\n"), ("west", "5\n"), ("spare", "1\n")] {
        std::fs::write(dir.join(format!("{name}.txt")), line.repeat(120)).unwrap();
    }
    let spec = dir.join("fleet.json");
    let body = format!(
        r#"{{
          "pools": [
            {{"name": "east",  "demand": "{d}/east.txt",  "model": "baseline", "target": 3}},
            {{"name": "west",  "demand": "{d}/west.txt",  "target": 6, "sim_seed": 2}},
            {{"name": "spare", "demand": "{d}/spare.txt", "target": 1}}
          ]
        }}"#,
        d = dir.display()
    );
    std::fs::write(&spec, body).unwrap();
    (dir, spec)
}

#[test]
fn simulate_pools_reports_per_pool_and_aggregate() {
    let (dir, spec) = fleet_fixture("sim");
    let out = ip_pool()
        .args(["simulate", "--pools", spec.to_str().unwrap()])
        .output()
        .unwrap();
    assert!(
        out.status.success(),
        "stderr: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    let stdout = String::from_utf8_lossy(&out.stdout);
    for pool in ["east", "west", "spare"] {
        assert!(stdout.contains(pool), "missing {pool} row in:\n{stdout}");
    }
    assert!(stdout.contains("fleet (aggregate)"), "{stdout}");
    // The model-driven pool ran its pipeline.
    assert!(stdout.contains("pipeline runs"), "{stdout}");
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn serve_pools_daemon_routes_by_name_over_the_binary() {
    let (dir, spec) = fleet_fixture("serve");
    let port_file = dir.join("port");
    let mut child = ip_pool()
        .args([
            "serve",
            "--pools",
            spec.to_str().unwrap(),
            "--port",
            "0",
            "--speedup",
            "600",
            "--port-file",
            port_file.to_str().unwrap(),
        ])
        .env("IP_OBS", "1")
        .stdout(Stdio::piped())
        .stderr(Stdio::piped())
        .spawn()
        .expect("spawn ip-pool serve --pools");
    let port = wait_for_port(&port_file, &mut child);

    // The fleet surface: /pools lists every pool in spec order.
    let (code, body) = http(port, "GET", "/pools", "").unwrap();
    assert_eq!(code, 200, "{body}");
    let east = body.find("\"east\"").unwrap();
    let west = body.find("\"west\"").unwrap();
    let spare = body.find("\"spare\"").unwrap();
    assert!(east < west && west < spare, "{body}");

    // Injection routes by name; a pool-less body is ambiguous (400), an
    // unknown pool is 404.
    let (code, body) = http(port, "POST", "/requests", "{\"count\":4,\"pool\":\"west\"}").unwrap();
    assert_eq!(code, 200, "{body}");
    assert!(body.contains("\"pool\":\"west\""), "{body}");
    let (code, _) = http(port, "POST", "/requests", "{\"count\":1}").unwrap();
    assert_eq!(code, 400);
    let (code, _) = http(port, "POST", "/requests", "{\"count\":1,\"pool\":\"nope\"}").unwrap();
    assert_eq!(code, 404);

    // Every pool's series carries its own label on the live exposition.
    let (code, metrics) = http(port, "GET", "/metrics", "").unwrap();
    assert_eq!(code, 200);
    for pool in ["east", "west", "spare"] {
        assert!(
            metrics.contains(&format!("pool=\"{pool}\"")),
            "no pool={pool} series in:\n{metrics}"
        );
    }

    let (code, _) = http(port, "POST", "/shutdown", "").unwrap();
    assert_eq!(code, 200);
    let out = child.wait_with_output().expect("daemon exits");
    assert!(
        out.status.success(),
        "stderr: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("4 injected"), "{stdout}");
    // The drain summary prints one row per pool.
    for pool in ["east", "west", "spare"] {
        assert!(stdout.contains(pool), "missing {pool} row in:\n{stdout}");
    }
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn bad_fleet_specs_are_rejected() {
    let dir = std::env::temp_dir().join(format!("ip-pool-fleet-bad-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let cases = [
        ("{\"pools\": []}", "at least one pool"),
        (
            "{\"pools\": [{\"name\": \"a\", \"preset\": \"spiky\", \"typo_key\": 1}]}",
            "unknown key",
        ),
        (
            "{\"pools\": [{\"name\": \"a\", \"preset\": \"no-such-preset\"}]}",
            "unknown preset",
        ),
    ];
    for (i, (body, needle)) in cases.iter().enumerate() {
        let spec = dir.join(format!("bad-{i}.json"));
        std::fs::write(&spec, body).unwrap();
        for command in ["simulate", "serve"] {
            let out = ip_pool()
                .args([command, "--pools", spec.to_str().unwrap()])
                .output()
                .unwrap();
            assert!(!out.status.success(), "{command} accepted {body:?}");
            let err = String::from_utf8_lossy(&out.stderr);
            assert!(
                err.contains(needle),
                "{command} on {body:?}: expected {needle:?} in {err:?}"
            );
        }
    }
    std::fs::remove_dir_all(&dir).ok();
}
