//! Integration tests for the `ip-pool` binary, driven through the real
//! executable (Cargo exposes its path via `CARGO_BIN_EXE_*`).

use std::process::Command;

fn ip_pool() -> Command {
    Command::new(env!("CARGO_BIN_EXE_ip-pool"))
}

#[test]
fn generate_then_evaluate_roundtrip() {
    let dir = std::env::temp_dir().join(format!("ip-pool-test-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let trace = dir.join("demand.txt");

    let out = ip_pool()
        .args([
            "generate",
            "--preset",
            "east-us-2-medium",
            "--days",
            "1",
            "--seed",
            "5",
        ])
        .output()
        .expect("run generate");
    assert!(
        out.status.success(),
        "stderr: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    let text = String::from_utf8(out.stdout).unwrap();
    assert!(text.lines().filter(|l| !l.starts_with('#')).count() >= 2880);
    std::fs::write(&trace, &text).unwrap();

    let out = ip_pool()
        .args(["evaluate", trace.to_str().unwrap(), "--pool", "6"])
        .output()
        .expect("run evaluate");
    assert!(out.status.success());
    let report = String::from_utf8(out.stdout).unwrap();
    assert!(report.contains("hit rate"), "{report}");
    assert!(report.contains("idle cost"), "{report}");

    let out = ip_pool()
        .args(["simulate", trace.to_str().unwrap(), "--target", "6"])
        .output()
        .expect("run simulate");
    assert!(out.status.success());
    let report = String::from_utf8(out.stdout).unwrap();
    assert!(report.contains("clusters created"), "{report}");

    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn recommend_baseline_outputs_targets() {
    let dir = std::env::temp_dir().join(format!("ip-pool-rec-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let trace = dir.join("demand.txt");
    // A small constant trace is enough for the baseline model.
    let body: String = "2\n".repeat(600);
    std::fs::write(&trace, body).unwrap();

    let out = ip_pool()
        .args([
            "recommend",
            trace.to_str().unwrap(),
            "--model",
            "baseline",
            "--horizon",
            "12",
        ])
        .output()
        .expect("run recommend");
    assert!(
        out.status.success(),
        "stderr: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    let text = String::from_utf8(out.stdout).unwrap();
    let targets: Vec<&str> = text
        .lines()
        .filter(|l| !l.starts_with('#') && !l.is_empty())
        .collect();
    assert_eq!(targets.len(), 12);
    assert!(targets.iter().all(|t| t.parse::<u32>().is_ok()));

    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn bad_usage_fails_with_help() {
    let out = ip_pool().args(["frobnicate"]).output().expect("run");
    assert!(!out.status.success());
    let err = String::from_utf8(out.stderr).unwrap();
    assert!(err.contains("usage:"), "{err}");

    let out = ip_pool().output().expect("run");
    assert!(!out.status.success());

    let out = ip_pool()
        .args(["evaluate", "/nonexistent/file.txt"])
        .output()
        .expect("run");
    assert!(!out.status.success());
}
