//! Exporter contracts: the Prometheus text rendering survives a round trip
//! through the in-repo parser (the same parser CI's smoke step uses), and
//! the JSONL trace stream deserializes into typed records with the vendored
//! `serde_json` — pinning the schema that external consumers would script
//! against.

use ip_obs::export::{parse_prometheus, render_prometheus, ParsedSample};
use ip_obs::{Registry, DEFAULT_BUCKETS};
use serde::Deserialize;
use std::collections::BTreeMap;

fn sample<'a>(samples: &'a [ParsedSample], name: &str) -> &'a ParsedSample {
    samples
        .iter()
        .find(|s| s.name == name)
        .unwrap_or_else(|| panic!("sample {name} missing"))
}

#[test]
fn prometheus_round_trip_preserves_every_series() {
    let reg = Registry::new();
    reg.counter_add("ip_pool_hits_total", &[("pool", "east-us-2")], 41.0);
    reg.counter_add("ip_pool_hits_total", &[("pool", "west-us-2")], 7.0);
    reg.gauge_set("ip_pool_size", &[], 12.0);
    reg.gauge_set("ip_weird_gauge", &[("q", "a\"b\\c\nd")], -2.5);
    for v in [0.004, 0.03, 2.0, 250.0] {
        reg.observe_with("ip_wait_seconds", &[], &DEFAULT_BUCKETS, v);
    }
    let text = render_prometheus(&reg);
    let samples = parse_prometheus(&text).expect("rendered text must parse");

    assert_eq!(
        sample(&samples, "ip_pool_size").value,
        12.0,
        "gauge value survives"
    );
    let east = samples
        .iter()
        .find(|s| {
            s.name == "ip_pool_hits_total"
                && s.labels == vec![("pool".to_string(), "east-us-2".to_string())]
        })
        .expect("labelled counter");
    assert_eq!(east.value, 41.0);
    // Label escaping round-trips exactly.
    let weird = sample(&samples, "ip_weird_gauge");
    assert_eq!(weird.labels[0].1, "a\"b\\c\nd");
    assert_eq!(weird.value, -2.5);
    // Histogram exposition: cumulative buckets, +Inf, _sum, _count.
    let inf_bucket = samples
        .iter()
        .find(|s| {
            s.name == "ip_wait_seconds_bucket"
                && s.labels.iter().any(|(k, v)| k == "le" && v == "+Inf")
        })
        .expect("+Inf bucket");
    assert_eq!(inf_bucket.value, 4.0);
    assert_eq!(sample(&samples, "ip_wait_seconds_count").value, 4.0);
    assert!((sample(&samples, "ip_wait_seconds_sum").value - 252.034).abs() < 1e-9);
    let buckets: Vec<f64> = samples
        .iter()
        .filter(|s| s.name == "ip_wait_seconds_bucket")
        .map(|s| s.value)
        .collect();
    assert_eq!(buckets.len(), DEFAULT_BUCKETS.len() + 1);
    assert!(
        buckets.windows(2).all(|w| w[0] <= w[1]),
        "bucket counts must be cumulative: {buckets:?}"
    );
}

#[test]
fn merged_registries_render_identically_to_single_writer() {
    // A sharded deployment merging per-worker registries must expose the
    // same text as one registry that saw every observation.
    let combined = Registry::new();
    let a = Registry::new();
    let b = Registry::new();
    for (i, v) in [0.01, 0.2, 3.0, 40.0].iter().enumerate() {
        combined.observe_with("h_seconds", &[], &DEFAULT_BUCKETS, *v);
        combined.counter_add("c_total", &[], 1.0);
        let shard = if i % 2 == 0 { &a } else { &b };
        shard.observe_with("h_seconds", &[], &DEFAULT_BUCKETS, *v);
        shard.counter_add("c_total", &[], 1.0);
    }
    assert_eq!(a.merge_from(&b.snapshot()), 0);
    assert_eq!(render_prometheus(&a), render_prometheus(&combined));
}

#[derive(Deserialize)]
struct SpanLine {
    id: u64,
    parent: Option<u64>,
    name: String,
    thread: String,
    start_us: u64,
    dur_us: u64,
}

#[derive(Deserialize)]
struct EventLine {
    name: String,
    t: u64,
    fields: BTreeMap<String, f64>,
}

#[derive(Deserialize)]
struct SummaryLine {
    spans: u64,
    events: u64,
    dropped: u64,
}

#[test]
fn jsonl_trace_deserializes_with_vendored_serde_json() {
    // This test binary owns the process-global obs state; the registry
    // round-trip tests above use local registries so they cannot interfere.
    ip_obs::set_enabled(true);
    ip_obs::reset();
    {
        let _outer = ip_obs::span("optimizer");
        let _inner = ip_obs::span("dp_solve");
        ip_obs::event("sim.interval", 60, &[("hits", 3.0), ("misses", 1.0)]);
    }
    let jsonl = ip_obs::take_trace().to_jsonl();
    ip_obs::set_enabled(false);

    let mut spans = Vec::new();
    let mut events = Vec::new();
    let mut summaries = Vec::new();
    for line in jsonl.lines() {
        if line.contains("\"type\":\"span\"") {
            spans.push(serde_json::from_str::<SpanLine>(line).expect("span line schema"));
        } else if line.contains("\"type\":\"event\"") {
            events.push(serde_json::from_str::<EventLine>(line).expect("event line schema"));
        } else if line.contains("\"type\":\"summary\"") {
            summaries.push(serde_json::from_str::<SummaryLine>(line).expect("summary schema"));
        } else {
            panic!("unrecognized JSONL line: {line}");
        }
    }
    assert_eq!(spans.len(), 2);
    assert_eq!(events.len(), 1);
    assert_eq!(summaries.len(), 1);

    let outer = spans.iter().find(|s| s.name == "optimizer").unwrap();
    let inner = spans.iter().find(|s| s.name == "dp_solve").unwrap();
    assert_eq!(inner.parent, Some(outer.id), "nesting survives the export");
    assert_eq!(outer.parent, None);
    // Both spans ran on this test's thread (the harness names it after the
    // test, so only sameness is stable to assert).
    assert!(!outer.thread.is_empty());
    assert_eq!(outer.thread, inner.thread);
    assert!(inner.start_us >= outer.start_us);
    assert!(inner.dur_us <= outer.dur_us);

    let ev = &events[0];
    assert_eq!(ev.name, "sim.interval");
    assert_eq!(ev.t, 60);
    assert_eq!(ev.fields.get("hits"), Some(&3.0));
    assert_eq!(ev.fields.get("misses"), Some(&1.0));

    let sum = &summaries[0];
    assert_eq!((sum.spans, sum.events, sum.dropped), (2, 1, 0));
}
