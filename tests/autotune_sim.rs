//! The §6 feedback loop closed around the *simulated platform*: the tuner
//! reads pool telemetry (mean wait) from live runs and steers the knob
//! toward the wait SLA — the full production control loop.
//!
//! The knob here is the forecast *overshoot* (what α' controls through the
//! SSA+ loss in §5.3): an exact forecaster + SAA sits on the knife edge
//! where the pool exactly matches `rate·τ`, and there real-world
//! discretization causes misses no optimizer weight can remove — only
//! overshoot can. `α'` maps to the overshoot factor exactly as in the
//! paper: α' near 1 = no overshoot (idle-averse), α' near 0 = strong
//! overshoot (wait-averse).

use intelligent_pooling::prelude::*;

/// One "epoch": run the platform with a seasonal forecast overshot by
/// `1 + 2·(1 − α')`, and return the measured mean wait.
fn run_epoch(alpha: f64, demand: &TimeSeries) -> f64 {
    let saa = SaaConfig {
        tau_intervals: 3,
        stableness: 10,
        max_pool: 60,
        max_new_per_block: 60,
        alpha_prime: 0.3,
        ..Default::default()
    };
    let overshoot = 1.0 + 2.0 * (1.0 - alpha);
    let mut provider = move |_now: u64, observed: &TimeSeries, horizon: usize| {
        if observed.len() < 192 {
            return None; // §7.6: cold start runs on defaults
        }
        let mut naive = SeasonalNaive::new(96);
        naive.fit(observed).ok()?;
        let pred = naive.predict(horizon).ok()?;
        let scaled: Vec<f64> = pred.iter().map(|v| v * overshoot).collect();
        let series = TimeSeries::new(observed.interval_secs(), scaled).ok()?;
        let opt = optimize_dp(&series, &saa).ok()?;
        Some(
            opt.schedule
                .iter()
                .map(|&n| n.round().max(0.0) as u32)
                .collect(),
        )
    };
    let cfg = SimConfig {
        interval_secs: 30,
        tau_secs: 90,
        tau_jitter_secs: 0,
        default_pool_target: 2,
        ip_worker: Some(IpWorkerConfig {
            run_every_secs: 1800,
            horizon_secs: 3600,
            failing_runs: vec![],
        }),
        seed: 2,
        ..Default::default()
    };
    let report = Simulation::new(cfg, Some(&mut provider))
        .run(demand)
        .expect("simulation");
    report.mean_wait_secs
}

#[test]
fn tuner_steers_simulated_platform_toward_wait_sla() {
    // A repeating 96-interval pattern so the seasonal forecast is exact
    // after warm-up; measured waits then depend only on the knob.
    let day: Vec<f64> = (0..96)
        .map(|t| {
            if (16..32).contains(&(t % 96)) {
                3.0
            } else {
                1.0
            }
        })
        .collect();
    let mut vals = Vec::new();
    for _ in 0..15 {
        vals.extend(day.clone());
    }
    let demand = TimeSeries::new(30, vals).unwrap();

    let target_wait = 8.0;
    let mut tuner = AlphaTuner::new(target_wait, 0.98).unwrap();
    let mut waits = Vec::new();
    for _ in 0..10 {
        let wait = run_epoch(tuner.alpha(), &demand);
        waits.push(wait);
        tuner.observe(wait);
    }
    let first = waits[0];
    let last = *waits.last().unwrap();
    // Starting from the idle-averse extreme (α' ≈ 1 → no overshoot) the
    // platform waits far above the SLA; the closed loop must pull the
    // measured wait down toward the target.
    assert!(first > target_wait, "start should violate the SLA: {first}");
    assert!(
        last <= target_wait * 1.6,
        "loop failed to approach the SLA: waits {waits:?}"
    );
    assert!(last < 0.6 * first, "no meaningful improvement: {waits:?}");
}
