//! End-to-end pipeline comparisons over multi-day synthetic workloads:
//! the 2-step vs E2E shapes of §5.4 and the SSA+ overshoot knob of §5.3,
//! evaluated out of sample.

use intelligent_pooling::prelude::*;

/// Three days of the medium East-US-2 preset; the first two train, the
/// following two hours evaluate (production recommendations cover an hour,
/// §7.4 — no single forecast is asked to cover a day).
fn history_and_future() -> (TimeSeries, TimeSeries) {
    let mut model = preset(PresetId::EastUs2Medium, 77);
    model.days = 3;
    let full = model.generate();
    let cut = full.len() * 2 / 3;
    (
        full.slice(0, cut).unwrap(),
        full.slice(cut, cut + 240).unwrap(),
    )
}

fn saa() -> SaaConfig {
    SaaConfig {
        tau_intervals: 3,
        stableness: 10,
        min_pool: 0,
        max_pool: 200,
        max_new_per_block: 200,
        alpha_prime: 0.3,
    }
}

fn evaluate(targets: &[u32], future: &TimeSeries) -> PoolMechanics {
    let mut schedule: Vec<f64> = targets.iter().map(|&n| f64::from(n)).collect();
    if schedule.len() < future.len() {
        let last = schedule.last().copied().unwrap_or(0.0);
        schedule.resize(future.len(), last);
    }
    evaluate_schedule(future, &schedule, 3).unwrap()
}

#[test]
fn two_step_and_e2e_both_beat_nothing_and_stay_bounded() {
    let (history, future) = history_and_future();
    let horizon = future.len();

    let mut two_step = TwoStepEngine::new(SsaModel::new(150, RankSelection::Fixed(4)), saa());
    let mut e2e = EndToEndEngine::new(SsaModel::new(150, RankSelection::Fixed(4)), saa());

    for engine in [&mut two_step as &mut dyn RecommendationEngine, &mut e2e] {
        let rec = engine.recommend(&history, horizon).unwrap();
        assert_eq!(rec.len(), horizon);
        assert!(rec.iter().all(|&n| n <= 200));
        let mech = evaluate(&rec, &future);
        // No pool at all would miss everything; both pipelines must do
        // clearly better out of sample.
        assert!(
            mech.hit_rate > 0.25,
            "{} hit rate {} too low",
            engine.name(),
            mech.hit_rate
        );
    }
}

#[test]
fn ssa_plus_overshoot_knob_controls_out_of_sample_trade_off() {
    let (history, future) = history_and_future();
    let horizon = future.len();

    let evaluate_alpha = |alpha: f32| {
        let mut engine = TwoStepEngine::new(SsaPlus::with_alpha(alpha), saa());
        let rec = engine.recommend(&history, horizon).unwrap();
        evaluate(&rec, &future)
    };
    let aggressive = evaluate_alpha(0.95); // overshoot hard → low wait
    let lean = evaluate_alpha(0.05); // undershoot → low idle

    assert!(
        aggressive.hit_rate >= lean.hit_rate,
        "overshooting SSA+ ({}) should not lose to undershooting ({})",
        aggressive.hit_rate,
        lean.hit_rate
    );
    assert!(
        aggressive.idle_cluster_seconds >= lean.idle_cluster_seconds,
        "overshoot must cost idle time"
    );
}

#[test]
fn dynamic_two_step_beats_history_sized_static_out_of_sample() {
    // The Fig. 1 story out of sample. The realistic static strategy sizes
    // its pool for a high hit rate *on history* (it cannot see the future
    // either); the evaluation window is a quiet overnight stretch where the
    // dynamic schedule can shrink. Dynamic must idle far less while serving
    // no worse than a few points below the static pool.
    let (history, future) = history_and_future();
    let horizon = future.len();

    let mut engine = TwoStepEngine::new(SsaPlus::with_alpha(0.8), saa());
    let rec = engine.recommend(&history, horizon).unwrap();
    let dynamic = evaluate(&rec, &future);

    let (static_n, _) = optimal_static_for_hit_rate(&history, 3, 0.99, 500).unwrap();
    let static_mech = evaluate(&vec![static_n; horizon], &future);

    assert!(
        dynamic.idle_cluster_seconds < 0.7 * static_mech.idle_cluster_seconds,
        "dynamic idle {} vs static(n={static_n}) idle {}",
        dynamic.idle_cluster_seconds,
        static_mech.idle_cluster_seconds
    );
    assert!(
        dynamic.hit_rate >= static_mech.hit_rate - 0.10,
        "dynamic hit {} collapsed vs static {}",
        dynamic.hit_rate,
        static_mech.hit_rate
    );
}

#[test]
fn autotuner_closes_loop_around_real_optimizer() {
    // The §6 loop against the real optimizer + mechanism: steer mean wait
    // toward 10 s on a day of demand.
    let mut model = preset(PresetId::EastUs2Medium, 5);
    model.days = 1;
    let demand = model.generate();
    let mut cfg = saa();
    let mut tuner = AlphaTuner::new(10.0, 0.95).unwrap();
    let mut last_wait = f64::INFINITY;
    for _ in 0..10 {
        cfg.alpha_prime = tuner.alpha();
        let opt = optimize_dp(&demand, &cfg).unwrap();
        let mech = evaluate_schedule(&demand, &opt.schedule, cfg.tau_intervals).unwrap();
        last_wait = mech.mean_wait_per_request_secs;
        tuner.observe(last_wait);
    }
    assert!(
        last_wait <= 20.0,
        "tuner failed to pull mean wait toward the 10 s target: {last_wait}"
    );
}

#[test]
fn table1_presets_rank_models_consistently() {
    // A scaled-down Table 1 sanity check on one dataset: SSA+ must beat the
    // no-intelligence baseline on MAE, and every model must produce finite
    // forecasts on all six presets' training shapes.
    use intelligent_pooling::timeseries::mae;
    let mut model = preset(PresetId::EastUs2Medium, 13);
    model.days = 2;
    let full = model.generate();
    let cut = full.len() * 4 / 5;
    let (train, test) = (
        full.slice(0, cut).unwrap(),
        full.slice(cut, full.len()).unwrap(),
    );
    let horizon = test.len();

    let mut ssa_plus = SsaPlus::with_alpha(0.5);
    ssa_plus.fit(&train).unwrap();
    let pred_plus = ssa_plus.predict(horizon).unwrap();
    let mae_plus = mae(test.values(), &pred_plus).unwrap();

    let mut baseline = BaselineForecaster::new(1.0);
    baseline.fit(&train).unwrap();
    let pred_base = baseline.predict(horizon).unwrap();
    let mae_base = mae(test.values(), &pred_base).unwrap();

    assert!(
        mae_plus < mae_base,
        "SSA+ MAE {mae_plus} should beat the peak-pinned baseline {mae_base}"
    );
}
