//! Support code for the `ip-pool` command-line tool: flag parsing, the
//! newline-delimited demand format, and the `--pools` fleet spec file.
//!
//! The demand format is deliberately trivial — one request count per line,
//! `#`-prefixed comments and blank lines ignored — so any telemetry export
//! can be piped in with standard tools. Fleet specs are JSON (parsed with
//! the vendored serde stand-in): fleet-wide generation defaults plus one
//! entry per pool naming either a Table-1 preset or a demand file.

use crate::timeseries::TimeSeries;
use serde::Content;
use std::collections::BTreeMap;
use std::collections::BTreeSet;

/// Parsed command line: a subcommand, positional arguments, and `--key
/// value` flags.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CliArgs {
    /// First non-flag token.
    pub command: String,
    /// Remaining non-flag tokens.
    pub positionals: Vec<String>,
    /// `--key value` pairs.
    pub flags: BTreeMap<String, String>,
}

/// Errors from CLI parsing and IO.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CliError {
    /// No subcommand given.
    MissingCommand,
    /// A `--flag` without a value.
    MissingValue(String),
    /// A flag value failed to parse.
    InvalidValue {
        /// Flag name.
        flag: String,
        /// Offending text.
        value: String,
    },
    /// Demand file problems.
    BadDemand(String),
    /// `--pools` fleet-spec problems.
    BadSpec(String),
}

impl std::fmt::Display for CliError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CliError::MissingCommand => write!(f, "missing subcommand"),
            CliError::MissingValue(flag) => write!(f, "flag --{flag} needs a value"),
            CliError::InvalidValue { flag, value } => {
                write!(f, "flag --{flag}: cannot parse {value:?}")
            }
            CliError::BadDemand(msg) => write!(f, "bad demand input: {msg}"),
            CliError::BadSpec(msg) => write!(f, "bad fleet spec: {msg}"),
        }
    }
}

impl std::error::Error for CliError {}

/// Flags that are meaningful bare (`--list-scenarios`): they take no
/// value and parse as `"1"`, so `flag_str`/`flag_or` see a truthy value.
const BARE_FLAGS: &[&str] = &["list-scenarios"];

impl CliArgs {
    /// Parses raw arguments (without the program name).
    pub fn parse(args: impl IntoIterator<Item = String>) -> Result<Self, CliError> {
        let mut command = None;
        let mut positionals = Vec::new();
        let mut flags = BTreeMap::new();
        let mut iter = args.into_iter().peekable();
        while let Some(arg) = iter.next() {
            if let Some(name) = arg.strip_prefix("--") {
                if BARE_FLAGS.contains(&name) {
                    flags.insert(name.to_string(), "1".to_string());
                    continue;
                }
                let value = iter
                    .next()
                    .ok_or_else(|| CliError::MissingValue(name.to_string()))?;
                flags.insert(name.to_string(), value);
            } else if command.is_none() {
                command = Some(arg);
            } else {
                positionals.push(arg);
            }
        }
        Ok(Self {
            command: command.ok_or(CliError::MissingCommand)?,
            positionals,
            flags,
        })
    }

    /// A flag parsed to any `FromStr` type, with a default.
    pub fn flag_or<T: std::str::FromStr>(&self, name: &str, default: T) -> Result<T, CliError> {
        match self.flags.get(name) {
            None => Ok(default),
            Some(v) => v.parse().map_err(|_| CliError::InvalidValue {
                flag: name.to_string(),
                value: v.clone(),
            }),
        }
    }

    /// A required string flag.
    pub fn flag_str(&self, name: &str) -> Option<&str> {
        self.flags.get(name).map(String::as_str)
    }
}

/// Parses newline-delimited demand counts into a [`TimeSeries`].
pub fn parse_demand(text: &str, interval_secs: u64) -> Result<TimeSeries, CliError> {
    let mut values = Vec::new();
    for (lineno, line) in text.lines().enumerate() {
        let trimmed = line.trim();
        if trimmed.is_empty() || trimmed.starts_with('#') {
            continue;
        }
        // Accept an optional leading "timestamp," column.
        let cell = trimmed.rsplit(',').next().unwrap_or(trimmed).trim();
        let v: f64 = cell.parse().map_err(|_| {
            CliError::BadDemand(format!("line {}: cannot parse {cell:?}", lineno + 1))
        })?;
        if v < 0.0 || !v.is_finite() {
            return Err(CliError::BadDemand(format!(
                "line {}: counts must be finite and non-negative",
                lineno + 1
            )));
        }
        values.push(v);
    }
    if values.is_empty() {
        return Err(CliError::BadDemand("no data lines".into()));
    }
    TimeSeries::new(interval_secs, values).map_err(|e| CliError::BadDemand(e.to_string()))
}

/// Renders a series as the newline-delimited format.
pub fn format_demand(series: &TimeSeries) -> String {
    let mut out = String::with_capacity(series.len() * 4);
    out.push_str(&format!("# interval_secs={}\n", series.interval_secs()));
    for v in series.values() {
        out.push_str(&format!("{v}\n"));
    }
    out
}

/// One pool's entry in a `--pools` fleet spec: its identity, demand
/// source, and per-pool simulation/provider settings.
#[derive(Debug, Clone, PartialEq)]
pub struct FleetPoolEntry {
    /// Pool name — becomes the [`ip_sim::PoolId`] and the metric `pool`
    /// label everywhere downstream.
    pub name: String,
    /// Demand source A: a workload preset name (`east-us-2-medium`, …,
    /// or `spiky`). Mutually exclusive with `demand_file`.
    pub preset: Option<String>,
    /// Demand source B: path to a newline-delimited demand file,
    /// resolved relative to the working directory.
    pub demand_file: Option<String>,
    /// Workload-RNG seed override; `None` derives one from the fleet
    /// seed and the pool name (so pools stay independent but stable).
    pub seed: Option<u64>,
    /// Static / fallback pool target.
    pub target: u32,
    /// Cluster creation latency, seconds.
    pub tau_secs: u64,
    /// Platform-simulation seed (arrival jitter etc.).
    pub sim_seed: u64,
    /// Recommendation pipeline (`ssa`, `ssa+`, `baseline`, `e2e-ssa`,
    /// `e2e-baseline`); `None` = static pooling.
    pub model: Option<String>,
    /// Seed `α'` for the pool's optimizer.
    pub alpha: f64,
    /// Wrap the pipeline in the §6 α′ feedback loop.
    pub autotune: bool,
    /// Wait SLA the tuner steers toward, seconds.
    pub target_wait_secs: f64,
}

/// One borrow edge in a fleet spec's `matrix` block: `to` may borrow a
/// warm cluster from `from`, paying `latency_secs` of transfer time.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FleetMatrixEdge {
    /// Donor pool name.
    pub from: String,
    /// Requesting pool name.
    pub to: String,
    /// Transfer latency charged to a borrowed request, seconds.
    pub latency_secs: u64,
}

/// The optional `matrix` block of a fleet spec: which pool pairs may
/// borrow from each other, plus fleet-wide guardrails.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct FleetMatrixSpec {
    /// Directed borrow edges, in file order.
    pub edges: Vec<FleetMatrixEdge>,
    /// Max borrows in flight at once across the fleet (0 = unlimited).
    pub max_concurrent_borrows: u64,
    /// Per-pool donation floors: a pool refuses to donate below this
    /// many ready clusters.
    pub donation_floors: BTreeMap<String, u64>,
}

/// A parsed `--pools` fleet spec file.
#[derive(Debug, Clone, PartialEq)]
pub struct FleetSpec {
    /// Interval width for generated demand, seconds.
    pub interval_secs: u64,
    /// Days of generated demand per preset-sourced pool.
    pub days: u32,
    /// Fleet workload seed; per-pool seeds derive from it.
    pub seed: u64,
    /// The pools, in file order.
    pub pools: Vec<FleetPoolEntry>,
    /// Cross-pool borrowing matrix; `None` = isolated pools.
    pub matrix: Option<FleetMatrixSpec>,
}

fn spec_err(msg: impl Into<String>) -> CliError {
    CliError::BadSpec(msg.into())
}

fn expect_str(doc: &Content, key: &str, ctx: &str) -> Result<Option<String>, CliError> {
    match doc.field(key) {
        None | Some(Content::Null) => Ok(None),
        Some(Content::Str(s)) => Ok(Some(s.clone())),
        Some(_) => Err(spec_err(format!("{ctx}: {key:?} must be a string"))),
    }
}

fn expect_u64(doc: &Content, key: &str, ctx: &str) -> Result<Option<u64>, CliError> {
    match doc.field(key) {
        None | Some(Content::Null) => Ok(None),
        Some(v) => v
            .as_u64()
            .map(Some)
            .ok_or_else(|| spec_err(format!("{ctx}: {key:?} must be a non-negative integer"))),
    }
}

fn expect_f64(doc: &Content, key: &str, ctx: &str) -> Result<Option<f64>, CliError> {
    match doc.field(key) {
        None | Some(Content::Null) => Ok(None),
        Some(v) => v
            .as_f64()
            .map(Some)
            .ok_or_else(|| spec_err(format!("{ctx}: {key:?} must be a number"))),
    }
}

fn expect_bool(doc: &Content, key: &str, ctx: &str) -> Result<Option<bool>, CliError> {
    match doc.field(key) {
        None | Some(Content::Null) => Ok(None),
        Some(Content::Bool(b)) => Ok(Some(*b)),
        Some(_) => Err(spec_err(format!("{ctx}: {key:?} must be a boolean"))),
    }
}

fn reject_unknown_keys(doc: &Content, allowed: &[&str], ctx: &str) -> Result<(), CliError> {
    if let Content::Map(entries) = doc {
        for (key, _) in entries {
            if !allowed.contains(&key.as_str()) {
                return Err(spec_err(format!(
                    "{ctx}: unknown key {key:?} (allowed: {})",
                    allowed.join(", ")
                )));
            }
        }
    }
    Ok(())
}

/// Parses a `--pools` fleet spec. The shape:
///
/// ```json
/// {
///   "interval_secs": 30, "days": 1, "seed": 7,
///   "pools": [
///     {"name": "east",  "preset": "east-us-2-medium", "model": "ssa+",
///      "alpha": 0.3, "autotune": true, "target_wait_secs": 30.0},
///     {"name": "west",  "preset": "west-us-2-small", "target": 8},
///     {"name": "batch", "demand": "batch.txt", "tau_secs": 120}
///   ]
/// }
/// ```
///
/// Every pool needs a unique non-empty `name` and exactly one demand
/// source (`preset` or `demand`). Unknown keys are rejected so typos
/// fail loudly instead of silently falling back to defaults.
pub fn parse_fleet_spec(text: &str) -> Result<FleetSpec, CliError> {
    let doc: Content =
        serde_json::from_str(text).map_err(|e| spec_err(format!("not valid JSON: {e}")))?;
    if !matches!(doc, Content::Map(_)) {
        return Err(spec_err("top level must be a JSON object"));
    }
    reject_unknown_keys(
        &doc,
        &["interval_secs", "days", "seed", "pools", "matrix"],
        "spec",
    )?;
    let interval_secs = expect_u64(&doc, "interval_secs", "spec")?.unwrap_or(30);
    if interval_secs == 0 {
        return Err(spec_err("spec: \"interval_secs\" must be positive"));
    }
    let days = u32::try_from(expect_u64(&doc, "days", "spec")?.unwrap_or(1))
        .map_err(|_| spec_err("spec: \"days\" out of range"))?;
    let seed = expect_u64(&doc, "seed", "spec")?.unwrap_or(0);

    let pools_doc = match doc.field("pools") {
        Some(Content::Seq(items)) => items,
        Some(_) => return Err(spec_err("spec: \"pools\" must be an array")),
        None => return Err(spec_err("spec: missing \"pools\" array")),
    };
    if pools_doc.is_empty() {
        return Err(spec_err(
            "spec: \"pools\" is empty — a fleet needs at least one pool",
        ));
    }

    let mut seen = BTreeSet::new();
    let mut pools = Vec::with_capacity(pools_doc.len());
    for (i, entry) in pools_doc.iter().enumerate() {
        let ctx = format!("pools[{i}]");
        if !matches!(entry, Content::Map(_)) {
            return Err(spec_err(format!("{ctx}: must be a JSON object")));
        }
        reject_unknown_keys(
            entry,
            &[
                "name",
                "preset",
                "demand",
                "seed",
                "target",
                "tau_secs",
                "sim_seed",
                "model",
                "alpha",
                "autotune",
                "target_wait_secs",
            ],
            &ctx,
        )?;
        let name = expect_str(entry, "name", &ctx)?
            .ok_or_else(|| spec_err(format!("{ctx}: missing \"name\"")))?;
        if name.is_empty() {
            return Err(spec_err(format!("{ctx}: \"name\" must be non-empty")));
        }
        if !seen.insert(name.clone()) {
            return Err(spec_err(format!("{ctx}: duplicate pool name {name:?}")));
        }
        let preset = expect_str(entry, "preset", &ctx)?;
        let demand_file = expect_str(entry, "demand", &ctx)?;
        match (&preset, &demand_file) {
            (None, None) => {
                return Err(spec_err(format!(
                    "{ctx} ({name}): needs a demand source — \"preset\" or \"demand\""
                )))
            }
            (Some(_), Some(_)) => {
                return Err(spec_err(format!(
                    "{ctx} ({name}): \"preset\" and \"demand\" are mutually exclusive"
                )))
            }
            _ => {}
        }
        let target = u32::try_from(expect_u64(entry, "target", &ctx)?.unwrap_or(4))
            .map_err(|_| spec_err(format!("{ctx}: \"target\" out of range")))?;
        let tau_secs = expect_u64(entry, "tau_secs", &ctx)?.unwrap_or(90);
        let sim_seed = expect_u64(entry, "sim_seed", &ctx)?.unwrap_or(0);
        let model = expect_str(entry, "model", &ctx)?;
        let alpha = expect_f64(entry, "alpha", &ctx)?.unwrap_or(0.3);
        let autotune = expect_bool(entry, "autotune", &ctx)?.unwrap_or(false);
        let target_wait_secs = expect_f64(entry, "target_wait_secs", &ctx)?.unwrap_or(30.0);
        pools.push(FleetPoolEntry {
            name,
            preset,
            demand_file,
            seed: expect_u64(entry, "seed", &ctx)?,
            target,
            tau_secs,
            sim_seed,
            model,
            alpha,
            autotune,
            target_wait_secs,
        });
    }
    let matrix = parse_fleet_matrix(&doc, &seen)?;
    Ok(FleetSpec {
        interval_secs,
        days,
        seed,
        pools,
        matrix,
    })
}

/// Parses the optional top-level `matrix` block. Every edge endpoint and
/// donation-floor key is cross-checked against the fleet's pool names, so
/// a typo'd edge fails loudly naming both of its columns.
fn parse_fleet_matrix(
    doc: &Content,
    pool_names: &BTreeSet<String>,
) -> Result<Option<FleetMatrixSpec>, CliError> {
    let matrix_doc = match doc.field("matrix") {
        None | Some(Content::Null) => return Ok(None),
        Some(m @ Content::Map(_)) => m,
        Some(_) => return Err(spec_err("spec: \"matrix\" must be an object")),
    };
    reject_unknown_keys(
        matrix_doc,
        &["edges", "max_concurrent_borrows", "donation_floors"],
        "matrix",
    )?;
    let edges_doc = match matrix_doc.field("edges") {
        None | Some(Content::Null) => &[][..],
        Some(Content::Seq(items)) => items.as_slice(),
        Some(_) => return Err(spec_err("matrix: \"edges\" must be an array")),
    };
    let mut edges = Vec::with_capacity(edges_doc.len());
    for (i, entry) in edges_doc.iter().enumerate() {
        let ctx = format!("matrix.edges[{i}]");
        if !matches!(entry, Content::Map(_)) {
            return Err(spec_err(format!("{ctx}: must be a JSON object")));
        }
        reject_unknown_keys(entry, &["from", "to", "latency_secs"], &ctx)?;
        let from = expect_str(entry, "from", &ctx)?
            .ok_or_else(|| spec_err(format!("{ctx}: missing \"from\"")))?;
        let to = expect_str(entry, "to", &ctx)?
            .ok_or_else(|| spec_err(format!("{ctx}: missing \"to\"")))?;
        for pool in [&from, &to] {
            if !pool_names.contains(pool) {
                return Err(spec_err(format!(
                    "{ctx}: unknown pool {pool:?} (edge {from:?} -> {to:?})"
                )));
            }
        }
        let latency_secs = expect_u64(entry, "latency_secs", &ctx)?
            .ok_or_else(|| spec_err(format!("{ctx}: missing \"latency_secs\"")))?;
        if latency_secs == 0 {
            return Err(spec_err(format!(
                "{ctx}: \"latency_secs\" must be positive"
            )));
        }
        edges.push(FleetMatrixEdge {
            from,
            to,
            latency_secs,
        });
    }
    let max_concurrent_borrows =
        expect_u64(matrix_doc, "max_concurrent_borrows", "matrix")?.unwrap_or(0);
    let mut donation_floors = BTreeMap::new();
    match matrix_doc.field("donation_floors") {
        None | Some(Content::Null) => {}
        Some(Content::Map(entries)) => {
            for (pool, value) in entries {
                if !pool_names.contains(pool) {
                    return Err(spec_err(format!(
                        "matrix.donation_floors: unknown pool {pool:?}"
                    )));
                }
                let floor = value.as_u64().ok_or_else(|| {
                    spec_err(format!(
                        "matrix.donation_floors: {pool:?} must be a non-negative integer"
                    ))
                })?;
                donation_floors.insert(pool.clone(), floor);
            }
        }
        Some(_) => return Err(spec_err("matrix: \"donation_floors\" must be an object")),
    }
    Ok(Some(FleetMatrixSpec {
        edges,
        max_concurrent_borrows,
        donation_floors,
    }))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_command_flags_positionals() {
        let args = CliArgs::parse(
            [
                "recommend",
                "--interval",
                "30",
                "trace.txt",
                "--alpha",
                "0.3",
            ]
            .into_iter()
            .map(String::from),
        )
        .unwrap();
        assert_eq!(args.command, "recommend");
        assert_eq!(args.positionals, vec!["trace.txt"]);
        assert_eq!(args.flag_or("interval", 0u64).unwrap(), 30);
        assert_eq!(args.flag_or("alpha", 0.0f64).unwrap(), 0.3);
        // Defaults apply for absent flags.
        assert_eq!(args.flag_or("horizon", 120usize).unwrap(), 120);
    }

    #[test]
    fn missing_command_and_values_rejected() {
        assert_eq!(
            CliArgs::parse(Vec::<String>::new()),
            Err(CliError::MissingCommand)
        );
        let err = CliArgs::parse(["x", "--flag"].into_iter().map(String::from)).unwrap_err();
        assert_eq!(err, CliError::MissingValue("flag".into()));
    }

    #[test]
    fn bare_flags_take_no_value() {
        // `--list-scenarios` alone parses as "1"...
        let args = CliArgs::parse(
            ["simulate", "--list-scenarios"]
                .into_iter()
                .map(String::from),
        )
        .unwrap();
        assert_eq!(args.flag_str("list-scenarios"), Some("1"));
        // ...and does not swallow the token after it.
        let args = CliArgs::parse(
            ["simulate", "--list-scenarios", "--seed", "7"]
                .into_iter()
                .map(String::from),
        )
        .unwrap();
        assert_eq!(args.flag_str("list-scenarios"), Some("1"));
        assert_eq!(args.flag_or("seed", 0u64).unwrap(), 7);
    }

    #[test]
    fn invalid_flag_value_reported() {
        let args = CliArgs::parse(["x", "--n", "abc"].into_iter().map(String::from)).unwrap();
        assert!(matches!(
            args.flag_or::<u32>("n", 1),
            Err(CliError::InvalidValue { .. })
        ));
    }

    #[test]
    fn demand_roundtrip() {
        let text = "# comment\n1\n2.5\n\n0\n";
        let ts = parse_demand(text, 30).unwrap();
        assert_eq!(ts.values(), &[1.0, 2.5, 0.0]);
        let rendered = format_demand(&ts);
        let back = parse_demand(&rendered, 30).unwrap();
        assert_eq!(back, ts);
    }

    #[test]
    fn demand_with_timestamp_column() {
        let text = "2024-01-01T00:00:00,3\n2024-01-01T00:00:30,1\n";
        let ts = parse_demand(text, 30).unwrap();
        assert_eq!(ts.values(), &[3.0, 1.0]);
    }

    #[test]
    fn bad_demand_rejected() {
        assert!(parse_demand("", 30).is_err());
        assert!(parse_demand("abc\n", 30).is_err());
        assert!(parse_demand("-1\n", 30).is_err());
        assert!(parse_demand("inf\n", 30).is_err());
    }

    #[test]
    fn fleet_spec_defaults_and_overrides() {
        let spec = parse_fleet_spec(
            r#"{
              "seed": 7,
              "pools": [
                {"name": "east", "preset": "east-us-2-medium", "model": "ssa+",
                 "autotune": true, "target_wait_secs": 12.5},
                {"name": "west", "preset": "west-us-2-small", "target": 8,
                 "seed": 99, "sim_seed": 3},
                {"name": "batch", "demand": "batch.txt", "tau_secs": 120}
              ]
            }"#,
        )
        .unwrap();
        assert_eq!(spec.interval_secs, 30);
        assert_eq!(spec.days, 1);
        assert_eq!(spec.seed, 7);
        assert_eq!(spec.pools.len(), 3);
        let east = &spec.pools[0];
        assert_eq!(east.name, "east");
        assert_eq!(east.preset.as_deref(), Some("east-us-2-medium"));
        assert_eq!(east.model.as_deref(), Some("ssa+"));
        assert!(east.autotune);
        assert_eq!(east.target_wait_secs, 12.5);
        assert_eq!(east.target, 4);
        assert_eq!(east.tau_secs, 90);
        assert_eq!(east.alpha, 0.3);
        assert_eq!(east.seed, None);
        let west = &spec.pools[1];
        assert_eq!(west.target, 8);
        assert_eq!(west.seed, Some(99));
        assert_eq!(west.sim_seed, 3);
        let batch = &spec.pools[2];
        assert_eq!(batch.demand_file.as_deref(), Some("batch.txt"));
        assert_eq!(batch.preset, None);
        assert_eq!(batch.tau_secs, 120);
    }

    #[test]
    fn fleet_spec_matrix_parses_and_cross_checks_pools() {
        let spec = parse_fleet_spec(
            r#"{
              "pools": [
                {"name": "east", "preset": "spiky"},
                {"name": "west", "preset": "spiky"}
              ],
              "matrix": {
                "edges": [
                  {"from": "west", "to": "east", "latency_secs": 20},
                  {"from": "east", "to": "west", "latency_secs": 25}
                ],
                "max_concurrent_borrows": 3,
                "donation_floors": {"west": 2}
              }
            }"#,
        )
        .unwrap();
        let m = spec.matrix.unwrap();
        assert_eq!(m.edges.len(), 2);
        assert_eq!(m.edges[0].from, "west");
        assert_eq!(m.edges[0].to, "east");
        assert_eq!(m.edges[0].latency_secs, 20);
        assert_eq!(m.max_concurrent_borrows, 3);
        assert_eq!(m.donation_floors.get("west"), Some(&2));
        // No matrix block at all is fine — isolated pools.
        let spec = parse_fleet_spec(r#"{"pools": [{"name": "a", "preset": "spiky"}]}"#).unwrap();
        assert_eq!(spec.matrix, None);

        // An edge naming a pool outside the fleet is rejected, naming
        // both columns of the offending edge.
        let err = parse_fleet_spec(
            r#"{
              "pools": [
                {"name": "east", "preset": "spiky"},
                {"name": "west", "preset": "spiky"}
              ],
              "matrix": {"edges": [
                {"from": "west", "to": "east", "latency_secs": 20},
                {"from": "east", "to": "weast", "latency_secs": 20}
              ]}
            }"#,
        )
        .unwrap_err();
        let msg = err.to_string();
        assert!(
            msg.contains(r#"matrix.edges[1]: unknown pool "weast" (edge "east" -> "weast")"#),
            "{msg}"
        );

        for (text, needle) in [
            (
                r#"{"pools": [{"name": "a", "preset": "spiky"}],
                    "matrix": {"edges": [{"from": "a", "to": "a"}]}}"#,
                "missing \"latency_secs\"",
            ),
            (
                r#"{"pools": [{"name": "a", "preset": "spiky"}],
                    "matrix": {"edges": [{"from": "a", "to": "a", "latency_secs": 0}]}}"#,
                "must be positive",
            ),
            (
                r#"{"pools": [{"name": "a", "preset": "spiky"}],
                    "matrix": {"donation_floors": {"b": 1}}}"#,
                r#"donation_floors: unknown pool "b""#,
            ),
            (
                r#"{"pools": [{"name": "a", "preset": "spiky"}],
                    "matrix": {"edgs": []}}"#,
                "unknown key",
            ),
        ] {
            let err = parse_fleet_spec(text).unwrap_err();
            assert!(err.to_string().contains(needle), "{err}");
        }
    }

    #[test]
    fn fleet_spec_structural_errors() {
        let cases: &[(&str, &str)] = &[
            ("[1,2]", "top level"),
            ("{\"pools\": []}", "at least one pool"),
            ("{}", "missing \"pools\""),
            ("{\"pools\": [{\"preset\": \"spiky\"}]}", "missing \"name\""),
            ("{\"pools\": [{\"name\": \"a\"}]}", "needs a demand source"),
            (
                "{\"pools\": [{\"name\": \"a\", \"preset\": \"spiky\", \"demand\": \"d.txt\"}]}",
                "mutually exclusive",
            ),
            (
                "{\"pools\": [{\"name\": \"a\", \"preset\": \"spiky\"},
                              {\"name\": \"a\", \"preset\": \"spiky\"}]}",
                "duplicate pool name",
            ),
            (
                "{\"pools\": [{\"name\": \"a\", \"preset\": \"spiky\", \"tua_secs\": 3}]}",
                "unknown key",
            ),
            (
                "{\"pools\": [{\"name\": \"a\", \"preset\": \"spiky\", \"alpha\": \"hi\"}]}",
                "must be a number",
            ),
            (
                "{\"interval_secs\": 0, \"pools\": [{\"name\": \"a\", \"preset\": \"spiky\"}]}",
                "must be positive",
            ),
        ];
        for (text, needle) in cases {
            let err = parse_fleet_spec(text).unwrap_err();
            let msg = err.to_string();
            assert!(
                matches!(err, CliError::BadSpec(_)) && msg.contains(needle),
                "spec {text:?}: expected {needle:?} in {msg:?}"
            );
        }
    }
}
