//! Support code for the `ip-pool` command-line tool: flag parsing and the
//! newline-delimited demand format.
//!
//! The demand format is deliberately trivial — one request count per line,
//! `#`-prefixed comments and blank lines ignored — so any telemetry export
//! can be piped in with standard tools.

use crate::timeseries::TimeSeries;
use std::collections::BTreeMap;

/// Parsed command line: a subcommand, positional arguments, and `--key
/// value` flags.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CliArgs {
    /// First non-flag token.
    pub command: String,
    /// Remaining non-flag tokens.
    pub positionals: Vec<String>,
    /// `--key value` pairs.
    pub flags: BTreeMap<String, String>,
}

/// Errors from CLI parsing and IO.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CliError {
    /// No subcommand given.
    MissingCommand,
    /// A `--flag` without a value.
    MissingValue(String),
    /// A flag value failed to parse.
    InvalidValue {
        /// Flag name.
        flag: String,
        /// Offending text.
        value: String,
    },
    /// Demand file problems.
    BadDemand(String),
}

impl std::fmt::Display for CliError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CliError::MissingCommand => write!(f, "missing subcommand"),
            CliError::MissingValue(flag) => write!(f, "flag --{flag} needs a value"),
            CliError::InvalidValue { flag, value } => {
                write!(f, "flag --{flag}: cannot parse {value:?}")
            }
            CliError::BadDemand(msg) => write!(f, "bad demand input: {msg}"),
        }
    }
}

impl std::error::Error for CliError {}

impl CliArgs {
    /// Parses raw arguments (without the program name).
    pub fn parse(args: impl IntoIterator<Item = String>) -> Result<Self, CliError> {
        let mut command = None;
        let mut positionals = Vec::new();
        let mut flags = BTreeMap::new();
        let mut iter = args.into_iter().peekable();
        while let Some(arg) = iter.next() {
            if let Some(name) = arg.strip_prefix("--") {
                let value = iter
                    .next()
                    .ok_or_else(|| CliError::MissingValue(name.to_string()))?;
                flags.insert(name.to_string(), value);
            } else if command.is_none() {
                command = Some(arg);
            } else {
                positionals.push(arg);
            }
        }
        Ok(Self {
            command: command.ok_or(CliError::MissingCommand)?,
            positionals,
            flags,
        })
    }

    /// A flag parsed to any `FromStr` type, with a default.
    pub fn flag_or<T: std::str::FromStr>(&self, name: &str, default: T) -> Result<T, CliError> {
        match self.flags.get(name) {
            None => Ok(default),
            Some(v) => v.parse().map_err(|_| CliError::InvalidValue {
                flag: name.to_string(),
                value: v.clone(),
            }),
        }
    }

    /// A required string flag.
    pub fn flag_str(&self, name: &str) -> Option<&str> {
        self.flags.get(name).map(String::as_str)
    }
}

/// Parses newline-delimited demand counts into a [`TimeSeries`].
pub fn parse_demand(text: &str, interval_secs: u64) -> Result<TimeSeries, CliError> {
    let mut values = Vec::new();
    for (lineno, line) in text.lines().enumerate() {
        let trimmed = line.trim();
        if trimmed.is_empty() || trimmed.starts_with('#') {
            continue;
        }
        // Accept an optional leading "timestamp," column.
        let cell = trimmed.rsplit(',').next().unwrap_or(trimmed).trim();
        let v: f64 = cell.parse().map_err(|_| {
            CliError::BadDemand(format!("line {}: cannot parse {cell:?}", lineno + 1))
        })?;
        if v < 0.0 || !v.is_finite() {
            return Err(CliError::BadDemand(format!(
                "line {}: counts must be finite and non-negative",
                lineno + 1
            )));
        }
        values.push(v);
    }
    if values.is_empty() {
        return Err(CliError::BadDemand("no data lines".into()));
    }
    TimeSeries::new(interval_secs, values).map_err(|e| CliError::BadDemand(e.to_string()))
}

/// Renders a series as the newline-delimited format.
pub fn format_demand(series: &TimeSeries) -> String {
    let mut out = String::with_capacity(series.len() * 4);
    out.push_str(&format!("# interval_secs={}\n", series.interval_secs()));
    for v in series.values() {
        out.push_str(&format!("{v}\n"));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_command_flags_positionals() {
        let args = CliArgs::parse(
            [
                "recommend",
                "--interval",
                "30",
                "trace.txt",
                "--alpha",
                "0.3",
            ]
            .into_iter()
            .map(String::from),
        )
        .unwrap();
        assert_eq!(args.command, "recommend");
        assert_eq!(args.positionals, vec!["trace.txt"]);
        assert_eq!(args.flag_or("interval", 0u64).unwrap(), 30);
        assert_eq!(args.flag_or("alpha", 0.0f64).unwrap(), 0.3);
        // Defaults apply for absent flags.
        assert_eq!(args.flag_or("horizon", 120usize).unwrap(), 120);
    }

    #[test]
    fn missing_command_and_values_rejected() {
        assert_eq!(
            CliArgs::parse(Vec::<String>::new()),
            Err(CliError::MissingCommand)
        );
        let err = CliArgs::parse(["x", "--flag"].into_iter().map(String::from)).unwrap_err();
        assert_eq!(err, CliError::MissingValue("flag".into()));
    }

    #[test]
    fn invalid_flag_value_reported() {
        let args = CliArgs::parse(["x", "--n", "abc"].into_iter().map(String::from)).unwrap();
        assert!(matches!(
            args.flag_or::<u32>("n", 1),
            Err(CliError::InvalidValue { .. })
        ));
    }

    #[test]
    fn demand_roundtrip() {
        let text = "# comment\n1\n2.5\n\n0\n";
        let ts = parse_demand(text, 30).unwrap();
        assert_eq!(ts.values(), &[1.0, 2.5, 0.0]);
        let rendered = format_demand(&ts);
        let back = parse_demand(&rendered, 30).unwrap();
        assert_eq!(back, ts);
    }

    #[test]
    fn demand_with_timestamp_column() {
        let text = "2024-01-01T00:00:00,3\n2024-01-01T00:00:30,1\n";
        let ts = parse_demand(text, 30).unwrap();
        assert_eq!(ts.values(), &[3.0, 1.0]);
    }

    #[test]
    fn bad_demand_rejected() {
        assert!(parse_demand("", 30).is_err());
        assert!(parse_demand("abc\n", 30).is_err());
        assert!(parse_demand("-1\n", 30).is_err());
        assert!(parse_demand("inf\n", 30).is_err());
    }
}
