//! `ip-pool` — command-line front end to the Intelligent Pooling library.
//!
//! ```text
//! ip-pool generate  --preset east-us-2-medium --days 2 > demand.txt
//! ip-pool recommend demand.txt --model ssa+ --alpha 0.3 --horizon 120
//! ip-pool evaluate  demand.txt --pool 8 --tau 3
//! ip-pool simulate  demand.txt --target 8
//! ip-pool simulate  --pools fleet.json
//! ip-pool serve     demand.txt --port 8080 --speedup 100 --model ssa+
//! ip-pool serve     --pools fleet.json --port 8080 --speedup 100
//! ```
//!
//! Demand files are newline-delimited request counts (optionally prefixed by
//! a timestamp column); `#` comments are ignored. Fleet spec files are JSON —
//! see [`intelligent_pooling::cli::parse_fleet_spec`].

use intelligent_pooling::cli::{
    format_demand, parse_demand, parse_fleet_spec, CliArgs, FleetMatrixSpec, FleetPoolEntry,
    FleetSpec,
};
use intelligent_pooling::prelude::*;
use std::process::ExitCode;

const USAGE: &str = "\
usage: ip-pool <command> [args]

commands:
  generate   emit a synthetic demand trace to stdout
             --preset <west-us-2-small|east-us-2-small|west-us-2-medium|
                       east-us-2-medium|west-us-2-large|east-us-2-large|spiky>
             --days N (default 2)  --seed N (default 0)
  recommend  pool-size targets for the next horizon from a demand file
             <file>  --model <ssa|ssa+|baseline> (default ssa+)
             --alpha A' (default 0.3)  --horizon N (default 120)
             --tau N (default 3)  --stableness N (default 10)
             --interval SECS (default 30)
  evaluate   mechanism accounting for a fixed pool size on a demand file
             <file>  --pool N  --tau N (default 3)  --interval SECS
  simulate   discrete-event simulation with a static target, or with the
             full Intelligent Pooling worker loop driving the pool
             <file>  --target N (default 4)  --tau-secs N (default 90)
             --interval SECS (default 30)  --seed N
             --ip <ssa|ssa+|baseline|e2e-ssa|e2e-baseline>  run the
             recommendation pipeline in-loop (targets come from the
             model, --target is the fallback default)
             --alpha A' (default 0.3)
             --pools SPEC.json  simulate a whole fleet instead: one
             pool per spec entry, interleaved in logical-time order,
             per-pool and aggregate results (replaces <file> and the
             per-pool flags above)
             --scenario <name|spec.json>  shape the demand with a chaos
             scenario and inject its fault schedule (worker-lease
             expiry, Arbitrator partitions, config corruption,
             telemetry lag/dropout); deterministic per seed; compose
             scenarios with '+' (e.g. diurnal-ramp+flash-crowd)
             --scenario-seed N  scenario randomness seed (default 0,
             or the spec file's \"seed\")
             --list-scenarios   print the scenario catalog and exit
  serve      long-running pool-controller daemon: replays the demand file
             at wall-clock (or accelerated) speed and exposes an HTTP
             control plane on 127.0.0.1 (GET /metrics /healthz /readyz
             /status /pools, POST /requests /reload /shutdown)
             <file>  --port N (default 0 = ephemeral)
             --speedup K (logical seconds per wall second, default 1)
             --model <ssa|ssa+|baseline|e2e-ssa|e2e-baseline> (optional;
             omitted = static pool at --target)  --alpha A' (default 0.3)
             --autotune <true|false> (the §6 alpha feedback loop)
             --target-wait SECS (tuner target, default 30)
             --target N  --tau-secs N  --seed N  --interval SECS
             --port-file FILE (write the bound port for scripts)
             --workers N (HTTP worker threads / queue shards;
             default 0 = auto from IP_THREADS, clamped 2-4)
             --keep-alive <true|false> (default true; false forces
             Connection: close on every response)
             --flight-out FILE  write the flight-recorder dump
             (ip-flight/1 JSON) when the daemon drains
             --slow-us N  slow-request threshold in microseconds for
             GET /debug/requests (default 1000; 0 records everything)
             --slo-hit F  hit-rate objective for GET /slo burn rates
             (default 0.90)  --slo-wait SECS  per-request wait
             objective (default 60)
             --pools SPEC.json  serve a whole fleet instead: every
             metric series gains a pool label, POST bodies name their
             pool, GET /pools lists per-pool state (replaces <file>
             and the per-pool flags above)
             --scenario <name|spec.json>  --scenario-seed N  run the
             daemon under a chaos scenario (as in simulate); injected
             faults surface in /metrics, /debug/flight, and the
             flight dump's \"faults\" section

fleet specs (--pools) are JSON: {\"interval_secs\":30, \"days\":1, \"seed\":7,
  \"pools\":[{\"name\":\"east\", \"preset\":\"east-us-2-medium\"|\"demand\":\"f.txt\",
             \"target\":4, \"tau_secs\":90, \"sim_seed\":0, \"seed\":N,
             \"model\":\"ssa+\", \"alpha\":0.3, \"autotune\":false,
             \"target_wait_secs\":30.0}, ...],
  \"matrix\":{\"edges\":[{\"from\":\"west\", \"to\":\"east\", \"latency_secs\":20},
             ...], \"max_concurrent_borrows\":0,
             \"donation_floors\":{\"west\":2}}}
  the optional matrix turns isolated pools into one resource cluster:
  on a pool miss the requester may take a warm idle cluster from a
  donor pool along a matrix edge, paying the edge latency instead of
  the full creation latency tau (metrics: ip_sim_borrows_total,
  ip_sim_borrow_latency_seconds; fleet roll-ups: GET /fleet)

global flags (any command):
  --metrics-out FILE  write Prometheus text metrics on exit
  --trace-out FILE    write the span/event trace on exit
  --trace-format <jsonl|chrome>  trace file format (default jsonl;
                      chrome emits a trace_event JSON array for
                      chrome://tracing / Perfetto)
  (either -out flag enables recording; IP_OBS=1 enables it without writing)
  --log-out FILE      append structured JSONL logs to FILE
  --log-level <debug|info|warn|error|off>  log threshold (default
                      warn; overrides the IP_LOG environment variable)
";

fn main() -> ExitCode {
    match run() {
        Ok(()) => ExitCode::SUCCESS,
        Err(msg) => {
            eprintln!("ip-pool: {msg}");
            eprintln!();
            eprintln!("{USAGE}");
            ExitCode::FAILURE
        }
    }
}

fn run() -> Result<(), String> {
    let args = CliArgs::parse(std::env::args().skip(1)).map_err(|e| e.to_string())?;
    let metrics_out = args.flag_str("metrics-out").map(str::to_owned);
    let trace_out = args.flag_str("trace-out").map(str::to_owned);
    if metrics_out.is_some() || trace_out.is_some() {
        intelligent_pooling::obs::set_enabled(true);
    }
    let trace_format = args.flag_str("trace-format").unwrap_or("jsonl");
    if !matches!(trace_format, "jsonl" | "chrome") {
        return Err(format!(
            "unknown --trace-format {trace_format:?} (expected jsonl or chrome)"
        ));
    }
    if let Some(level) = args.flag_str("log-level") {
        use intelligent_pooling::obs::log::Level;
        let threshold = match level.trim().to_ascii_lowercase().as_str() {
            "off" | "none" => None,
            other => Some(Level::parse(other).ok_or_else(|| {
                format!("unknown --log-level {level:?} (expected debug|info|warn|error|off)")
            })?),
        };
        intelligent_pooling::obs::log::set_threshold(threshold);
    }
    if let Some(path) = args.flag_str("log-out") {
        intelligent_pooling::obs::log::set_output(path).map_err(|e| format!("{path}: {e}"))?;
    }
    let result = match args.command.as_str() {
        "generate" => generate(&args),
        "recommend" => recommend(&args),
        "evaluate" => evaluate(&args),
        "simulate" => simulate(&args),
        "serve" => serve(&args),
        other => Err(format!("unknown command {other:?}")),
    };
    // Exports are written even when the command failed: a partial trace is
    // exactly what you want when diagnosing the failure.
    if let Some(path) = &metrics_out {
        let text =
            intelligent_pooling::obs::export::render_prometheus(intelligent_pooling::obs::global());
        std::fs::write(path, text).map_err(|e| format!("{path}: {e}"))?;
    }
    if let Some(path) = &trace_out {
        let trace = intelligent_pooling::obs::take_trace();
        let text = match trace_format {
            "chrome" => trace.to_chrome(),
            _ => trace.to_jsonl(),
        };
        std::fs::write(path, text).map_err(|e| format!("{path}: {e}"))?;
    }
    result
}

/// Resolves a preset name (Table-1 kebab-case names or `spiky`) to its
/// demand model.
fn demand_model(name: &str, seed: u64) -> Result<DemandModel, String> {
    match name {
        "spiky" => Ok(spiky_region(seed)),
        other => PresetId::from_name(other)
            .map(|id| preset(id, seed))
            .ok_or_else(|| format!("unknown preset {other:?}")),
    }
}

/// Materializes every pool's demand trace for a `--pools` spec: preset
/// pools are generated (per-pool seeds derived from the fleet seed, as
/// [`FleetTrace`] does), file pools are read and parsed.
fn resolve_fleet_demands(spec: &FleetSpec) -> Result<Vec<(FleetPoolEntry, TimeSeries)>, String> {
    spec.pools
        .iter()
        .map(|p| {
            let demand = if let Some(path) = &p.demand_file {
                let text = std::fs::read_to_string(path)
                    .map_err(|e| format!("pool {:?}: {path}: {e}", p.name))?;
                parse_demand(&text, spec.interval_secs)
                    .map_err(|e| format!("pool {:?}: {e}", p.name))?
            } else {
                let preset_name = p.preset.as_deref().unwrap_or_default();
                let seed = p.seed.unwrap_or_else(|| {
                    intelligent_pooling::workload::pool_seed(spec.seed, &p.name)
                });
                let mut model = demand_model(preset_name, seed)
                    .map_err(|e| format!("pool {:?}: {e}", p.name))?;
                model.interval_secs = spec.interval_secs;
                model.days = spec.days;
                model.generate()
            };
            Ok((p.clone(), demand))
        })
        .collect()
}

/// The per-pool [`SimConfig`] for a fleet-spec entry. `ip_worker` is
/// scheduled whenever the pool names a model — same rule the daemon and
/// the single-pool `simulate --ip` path apply.
fn fleet_sim_config(p: &FleetPoolEntry, demand: &TimeSeries) -> SimConfig {
    let mut cfg = SimConfig {
        interval_secs: demand.interval_secs(),
        tau_secs: p.tau_secs,
        default_pool_target: p.target,
        seed: p.sim_seed,
        ..Default::default()
    };
    if p.model.is_some() {
        cfg.ip_worker = Some(IpWorkerConfig::default());
    }
    cfg
}

/// The fleet spec's `matrix` block as the simulator's
/// [`CompatibilityMatrix`].
fn build_matrix(spec: &FleetMatrixSpec) -> CompatibilityMatrix {
    let mut matrix =
        CompatibilityMatrix::new().max_concurrent(spec.max_concurrent_borrows as usize);
    for e in &spec.edges {
        matrix = matrix.edge(e.from.as_str(), e.to.as_str(), e.latency_secs);
    }
    for (pool, floor) in &spec.donation_floors {
        matrix = matrix.donation_floor(pool.as_str(), *floor as usize);
    }
    matrix
}

/// `--list-scenarios`: the chaos catalog, one line per scenario.
fn list_scenarios() -> Result<(), String> {
    println!("{:<20} {:<50} description", "scenario", "params (defaults)");
    for info in intelligent_pooling::chaos::catalog() {
        let params = info
            .params
            .iter()
            .map(|(name, default)| format!("{name}={default}"))
            .collect::<Vec<_>>()
            .join(" ");
        println!("{:<20} {:<50} {}", info.name, params, info.description);
    }
    println!();
    println!("run one with: ip-pool simulate <file> --scenario <name> [--scenario-seed N]");
    println!("or a JSON spec: ip-pool simulate <file> --scenario spec.json");
    Ok(())
}

/// Resolves `--scenario <name|spec.json>` (+ `--scenario-seed`) into a
/// compiled scenario; `None` when the flag is absent. A value naming an
/// existing file (or ending in `.json`) is parsed as a spec document;
/// anything else is a catalog name, failing with a near-miss suggestion.
fn resolve_scenario(args: &CliArgs) -> Result<Option<Scenario>, String> {
    let Some(value) = args.flag_str("scenario") else {
        return Ok(None);
    };
    let mut spec = if value.ends_with(".json") || std::path::Path::new(value).is_file() {
        let text = std::fs::read_to_string(value).map_err(|e| format!("{value}: {e}"))?;
        ScenarioSpec::from_json(&text).map_err(|e| e.to_string())?
    } else {
        ScenarioSpec::by_name(value, 0).map_err(|e| e.to_string())?
    };
    spec.seed = args
        .flag_or("scenario-seed", spec.seed)
        .map_err(|e| e.to_string())?;
    spec.compile().map(Some).map_err(|e| e.to_string())
}

/// Applies a scenario to a single-pool run: the demand is transformed and
/// the pool's fault schedule lands in `SimConfig::faults`. Prints the
/// plan summary (only scenario runs emit this line, so scenario-free
/// output stays byte-identical).
fn apply_scenario_single(
    scenario: &Scenario,
    demand: TimeSeries,
    cfg: &mut SimConfig,
) -> Result<TimeSeries, String> {
    let plan = scenario
        .apply(vec![("default".to_string(), demand)])
        .map_err(|e| e.to_string())?;
    println!("{}", plan.summary);
    cfg.faults = plan.faults_for("default").to_vec();
    let ChaosPlan { mut demand, .. } = plan;
    Ok(demand.remove(0).1)
}

/// Applies a scenario across a resolved fleet: demand transformed pool by
/// pool, per-pool fault schedules returned alongside (aligned with the
/// input order).
fn apply_scenario_fleet(
    scenario: &Scenario,
    pools: Vec<(FleetPoolEntry, TimeSeries)>,
) -> Result<Vec<(FleetPoolEntry, TimeSeries, Vec<ip_sim::FaultEntry>)>, String> {
    let entries: Vec<FleetPoolEntry> = pools.iter().map(|(p, _)| p.clone()).collect();
    let named: Vec<(String, TimeSeries)> = pools
        .into_iter()
        .map(|(p, demand)| (p.name.clone(), demand))
        .collect();
    let plan = scenario.apply(named).map_err(|e| e.to_string())?;
    println!("{}", plan.summary);
    Ok(entries
        .into_iter()
        .zip(plan.demand)
        .zip(plan.faults)
        .map(|((entry, (_, demand)), (_, faults))| (entry, demand, faults))
        .collect())
}

fn load_demand(args: &CliArgs) -> Result<TimeSeries, String> {
    let path = args
        .positionals
        .first()
        .ok_or_else(|| "expected a demand file argument".to_string())?;
    let text = std::fs::read_to_string(path).map_err(|e| format!("{path}: {e}"))?;
    let interval = args.flag_or("interval", 30u64).map_err(|e| e.to_string())?;
    parse_demand(&text, interval).map_err(|e| e.to_string())
}

fn generate(args: &CliArgs) -> Result<(), String> {
    let days = args.flag_or("days", 2u32).map_err(|e| e.to_string())?;
    let seed = args.flag_or("seed", 0u64).map_err(|e| e.to_string())?;
    let preset_name = args.flag_str("preset").unwrap_or("east-us-2-medium");
    let mut model = demand_model(preset_name, seed)?;
    model.days = days;
    print!("{}", format_demand(&model.generate()));
    Ok(())
}

fn recommend(args: &CliArgs) -> Result<(), String> {
    let demand = load_demand(args)?;
    let alpha = args.flag_or("alpha", 0.3f64).map_err(|e| e.to_string())?;
    let horizon = args
        .flag_or("horizon", 120usize)
        .map_err(|e| e.to_string())?;
    let tau = args.flag_or("tau", 3usize).map_err(|e| e.to_string())?;
    let stableness = args
        .flag_or("stableness", 10usize)
        .map_err(|e| e.to_string())?;
    let saa = SaaConfig {
        tau_intervals: tau,
        stableness,
        alpha_prime: alpha,
        ..Default::default()
    };
    let model_name = args.flag_str("model").unwrap_or("ssa+");
    let targets = match model_name {
        "ssa" => {
            let mut engine =
                TwoStepEngine::new(SsaModel::new(150, RankSelection::EnergyThreshold(0.9)), saa);
            engine.recommend(&demand, horizon)
        }
        "ssa+" => {
            let mut engine = TwoStepEngine::new(SsaPlus::with_alpha(1.0 - alpha as f32), saa);
            engine.recommend(&demand, horizon)
        }
        "baseline" => {
            let mut engine = TwoStepEngine::new(BaselineForecaster::new(1.0), saa);
            engine.recommend(&demand, horizon)
        }
        other => return Err(format!("unknown model {other:?}")),
    }
    .map_err(|e| e.to_string())?;

    // Write via the raw handle so a closed pipe (e.g. `| head`) ends the
    // program quietly instead of panicking.
    use std::io::Write;
    let stdout = std::io::stdout();
    let mut out = stdout.lock();
    let _ = writeln!(
        out,
        "# pool-size targets, one per {}s interval",
        demand.interval_secs()
    );
    for t in targets {
        if writeln!(out, "{t}").is_err() {
            break;
        }
    }
    Ok(())
}

fn evaluate(args: &CliArgs) -> Result<(), String> {
    let demand = load_demand(args)?;
    let pool = args.flag_or("pool", 4u32).map_err(|e| e.to_string())?;
    let tau = args.flag_or("tau", 3usize).map_err(|e| e.to_string())?;
    let schedule = vec![f64::from(pool); demand.len()];
    let mech = evaluate_schedule(&demand, &schedule, tau).map_err(|e| e.to_string())?;
    println!("requests        : {}", mech.total_requests);
    println!("hit rate        : {:.2}%", mech.hit_rate * 100.0);
    println!(
        "mean wait       : {:.2} s/request",
        mech.mean_wait_per_request_secs
    );
    println!("total wait      : {:.0} s", mech.wait_seconds);
    println!(
        "idle time       : {:.0} cluster-seconds",
        mech.idle_cluster_seconds
    );
    let cost = CostModel::default();
    println!(
        "idle cost       : ${:.2} over the trace (${:.0}/yr extrapolated)",
        cost.cost_of_idle(mech.idle_cluster_seconds),
        cost.annualize(mech.idle_cluster_seconds, demand.duration_secs() as f64)
            .map_err(|e| e.to_string())?
    );
    Ok(())
}

fn simulate(args: &CliArgs) -> Result<(), String> {
    if args.flag_str("list-scenarios").is_some() {
        return list_scenarios();
    }
    if let Some(spec_path) = args.flag_str("pools") {
        return simulate_fleet(args, spec_path);
    }
    let mut demand = load_demand(args)?;
    let target = args.flag_or("target", 4u32).map_err(|e| e.to_string())?;
    let tau_secs = args.flag_or("tau-secs", 90u64).map_err(|e| e.to_string())?;
    let seed = args.flag_or("seed", 0u64).map_err(|e| e.to_string())?;
    let alpha = args.flag_or("alpha", 0.3f64).map_err(|e| e.to_string())?;
    let ip_model = args.flag_str("ip");
    let mut cfg = SimConfig {
        interval_secs: demand.interval_secs(),
        tau_secs,
        default_pool_target: target,
        seed,
        ..Default::default()
    };
    if let Some(scenario) = resolve_scenario(args)? {
        demand = apply_scenario_single(&scenario, demand, &mut cfg)?;
    }
    let saa = SaaConfig {
        alpha_prime: alpha,
        ..Default::default()
    };
    // With --ip, the simulated Intelligent Pooling Worker periodically runs
    // the recommendation pipeline on the demand observed so far; early runs
    // fail (not enough history to fit) and exercise the §7.6 fallback chain.
    let mut provider = match ip_model {
        None => None,
        Some(name) => {
            cfg.ip_worker = Some(IpWorkerConfig::default());
            Some(
                intelligent_pooling::core::named_provider(name, alpha, saa)
                    .map_err(|e| e.to_string())?,
            )
        }
    };
    let report = Simulation::new(
        cfg,
        provider
            .as_mut()
            .map(|p| p.as_mut() as &mut dyn ip_sim::RecommendationProvider),
    )
    .run(&demand)
    .map_err(|e| e.to_string())?;
    println!("requests        : {}", report.total_requests);
    println!("hits / misses   : {} / {}", report.hits, report.misses);
    println!("hit rate        : {:.2}%", report.hit_rate * 100.0);
    println!("mean wait       : {:.2} s/request", report.mean_wait_secs);
    println!(
        "idle time       : {:.0} cluster-seconds",
        report.idle_cluster_seconds
    );
    println!(
        "clusters created: {} ({} on-demand)",
        report.clusters_created, report.on_demand_created
    );
    if ip_model.is_some() {
        println!(
            "pipeline runs   : {} ({} failed, {} fallback intervals)",
            report.ip_runs, report.ip_failures, report.fallback_intervals
        );
    }
    Ok(())
}

/// `simulate --pools`: the whole fleet in one `FleetSim`, every pool's
/// events interleaved in logical-time order, then per-pool results plus
/// the fleet aggregate.
fn simulate_fleet(args: &CliArgs, spec_path: &str) -> Result<(), String> {
    let text = std::fs::read_to_string(spec_path).map_err(|e| format!("{spec_path}: {e}"))?;
    let spec = parse_fleet_spec(&text).map_err(|e| e.to_string())?;
    let resolved = resolve_fleet_demands(&spec)?;
    let resolved = match resolve_scenario(args)? {
        Some(scenario) => apply_scenario_fleet(&scenario, resolved)?,
        None => resolved
            .into_iter()
            .map(|(p, d)| (p, d, Vec::new()))
            .collect(),
    };
    let mut members = Vec::with_capacity(spec.pools.len());
    for (p, demand, faults) in resolved {
        let mut cfg = fleet_sim_config(&p, &demand);
        cfg.faults = faults;
        let mut pool = FleetPool::new(p.name.as_str(), cfg, demand);
        if let Some(model) = &p.model {
            let provider = intelligent_pooling::serve::build_provider(
                model,
                p.alpha,
                p.autotune,
                p.target_wait_secs,
            )
            .map_err(|e| format!("pool {:?}: {e}", p.name))?;
            pool = pool.with_provider(provider);
        }
        members.push(pool);
    }
    let mut sim = FleetSim::new(members).map_err(|e| e.to_string())?;
    let borrowing = match &spec.matrix {
        Some(m) => {
            sim.set_matrix(build_matrix(m)).map_err(|e| e.to_string())?;
            sim.borrowing_enabled()
        }
        None => false,
    };
    sim.run_to_end();
    let report = sim.finalize();

    println!(
        "{:<18} {:>10} {:>9} {:>11} {:>12} {:>9}",
        "pool", "requests", "hit rate", "mean wait", "idle c-sec", "created"
    );
    for (pool, r) in &report.pools {
        println!(
            "{:<18} {:>10} {:>8.2}% {:>10.2}s {:>12.0} {:>9}",
            pool.as_str(),
            r.total_requests,
            r.hit_rate * 100.0,
            r.mean_wait_secs,
            r.idle_cluster_seconds,
            r.clusters_created
        );
    }
    let agg = report.aggregate();
    println!(
        "{:<18} {:>10} {:>8.2}% {:>10.2}s {:>12.0} {:>9}",
        "fleet (aggregate)",
        agg.total_requests,
        agg.hit_rate * 100.0,
        agg.mean_wait_secs,
        agg.idle_cluster_seconds,
        agg.clusters_created
    );
    if agg.ip_runs > 0 {
        println!(
            "pipeline runs   : {} ({} failed, {} fallback intervals)",
            agg.ip_runs, agg.ip_failures, agg.fallback_intervals
        );
    }
    if borrowing {
        println!(
            "borrows         : {} warm transfer(s) across pools ({} donated)",
            agg.borrowed_in, agg.borrowed_out
        );
        for (pool, r) in &report.pools {
            for rec in &r.borrow_records {
                println!(
                    "  {}s  {} <- {} ({}s transfer)",
                    rec.t,
                    pool.as_str(),
                    rec.from,
                    rec.latency_secs
                );
            }
        }
    }
    Ok(())
}

/// `serve --pools`: every spec entry becomes one named pool in the fleet
/// daemon, plus the spec's borrow matrix (if any).
fn fleet_serve_pools(
    args: &CliArgs,
    spec_path: &str,
) -> Result<
    (
        Vec<intelligent_pooling::serve::PoolServeConfig>,
        Option<CompatibilityMatrix>,
    ),
    String,
> {
    use intelligent_pooling::serve::PoolServeConfig;
    let text = std::fs::read_to_string(spec_path).map_err(|e| format!("{spec_path}: {e}"))?;
    let spec = parse_fleet_spec(&text).map_err(|e| e.to_string())?;
    let resolved = resolve_fleet_demands(&spec)?;
    let resolved = match resolve_scenario(args)? {
        Some(scenario) => apply_scenario_fleet(&scenario, resolved)?,
        None => resolved
            .into_iter()
            .map(|(p, d)| (p, d, Vec::new()))
            .collect(),
    };
    let pools = resolved
        .into_iter()
        .map(|(p, demand, faults)| {
            let mut sim = fleet_sim_config(&p, &demand);
            sim.faults = faults;
            PoolServeConfig {
                sim,
                model: p.model,
                alpha: p.alpha,
                autotune: p.autotune,
                target_wait_secs: p.target_wait_secs,
                ..PoolServeConfig::named(p.name, demand)
            }
        })
        .collect();
    Ok((pools, spec.matrix.as_ref().map(build_matrix)))
}

/// Applies the PR 8 observability flags (`--flight-out`, `--slow-us`,
/// `--slo-hit`, `--slo-wait`) shared by the single-pool and fleet serve
/// paths.
fn apply_serve_obs_flags(
    args: &CliArgs,
    config: &mut intelligent_pooling::serve::ServeConfig,
) -> Result<(), String> {
    config.flight_out = args.flag_str("flight-out").map(str::to_owned);
    config.slow_request_micros = args
        .flag_or("slow-us", config.slow_request_micros)
        .map_err(|e| e.to_string())?;
    config.slo.hit_rate_objective = args
        .flag_or("slo-hit", config.slo.hit_rate_objective)
        .map_err(|e| e.to_string())?;
    config.slo.wait_objective_secs = args
        .flag_or("slo-wait", config.slo.wait_objective_secs)
        .map_err(|e| e.to_string())?;
    if !(0.0..=1.0).contains(&config.slo.hit_rate_objective) {
        return Err(format!(
            "--slo-hit {} out of range (expected 0..=1)",
            config.slo.hit_rate_objective
        ));
    }
    Ok(())
}

fn serve(args: &CliArgs) -> Result<(), String> {
    use intelligent_pooling::serve::{Daemon, ServeConfig};
    if let Some(spec_path) = args.flag_str("pools") {
        let port = args.flag_or("port", 0u16).map_err(|e| e.to_string())?;
        let speedup = args.flag_or("speedup", 1.0f64).map_err(|e| e.to_string())?;
        let workers = args.flag_or("workers", 0usize).map_err(|e| e.to_string())?;
        let keep_alive = args
            .flag_or("keep-alive", true)
            .map_err(|e| e.to_string())?;
        let (pools, matrix) = fleet_serve_pools(args, spec_path)?;
        let mut config = ServeConfig::fleet(pools)?;
        config.matrix = matrix;
        config.speedup = speedup;
        config.port = port;
        config.workers = workers;
        config.keep_alive = keep_alive;
        apply_serve_obs_flags(args, &mut config)?;

        let daemon = Daemon::start(config)?;
        let addr = daemon.addr();
        println!("ip-pool serve: listening on http://{addr}");
        println!("ip-pool serve: POST /shutdown to drain and exit");
        if let Some(path) = args.flag_str("port-file") {
            std::fs::write(path, format!("{}\n", addr.port()))
                .map_err(|e| format!("{path}: {e}"))?;
        }
        let outcome = daemon.join();
        println!(
            "ip-pool serve: drained ({} injected, {} reloads, {} lease lapses)",
            outcome.injected, outcome.reloads, outcome.lapsed_leases
        );
        println!(
            "{:<18} {:>10} {:>9} {:>11} {:>10}",
            "pool", "requests", "hit rate", "mean wait", "intervals"
        );
        for (pool, report) in &outcome.pool_reports {
            println!(
                "{:<18} {:>10} {:>8.2}% {:>10.2}s {:>10}",
                pool,
                report.total_requests,
                report.hit_rate * 100.0,
                report.mean_wait_secs,
                report.interval_stats.len()
            );
        }
        return Ok(());
    }
    let mut demand = load_demand(args)?;
    let target = args.flag_or("target", 4u32).map_err(|e| e.to_string())?;
    let tau_secs = args.flag_or("tau-secs", 90u64).map_err(|e| e.to_string())?;
    let seed = args.flag_or("seed", 0u64).map_err(|e| e.to_string())?;
    let alpha = args.flag_or("alpha", 0.3f64).map_err(|e| e.to_string())?;
    let port = args.flag_or("port", 0u16).map_err(|e| e.to_string())?;
    let speedup = args.flag_or("speedup", 1.0f64).map_err(|e| e.to_string())?;
    let target_wait = args
        .flag_or("target-wait", 30.0f64)
        .map_err(|e| e.to_string())?;
    let autotune = args.flag_or("autotune", false).map_err(|e| e.to_string())?;
    let workers = args.flag_or("workers", 0usize).map_err(|e| e.to_string())?;
    let keep_alive = args
        .flag_or("keep-alive", true)
        .map_err(|e| e.to_string())?;

    let mut sim = SimConfig {
        interval_secs: demand.interval_secs(),
        tau_secs,
        default_pool_target: target,
        seed,
        ..Default::default()
    };
    if let Some(scenario) = resolve_scenario(args)? {
        demand = apply_scenario_single(&scenario, demand, &mut sim)?;
    }
    let mut config = ServeConfig::new(demand);
    config.sim = sim;
    config.model = args.flag_str("model").map(str::to_owned);
    config.alpha = alpha;
    config.autotune = autotune;
    config.target_wait_secs = target_wait;
    config.speedup = speedup;
    config.port = port;
    config.workers = workers;
    config.keep_alive = keep_alive;
    apply_serve_obs_flags(args, &mut config)?;

    let daemon = Daemon::start(config)?;
    let addr = daemon.addr();
    println!("ip-pool serve: listening on http://{addr}");
    println!("ip-pool serve: POST /shutdown to drain and exit");
    if let Some(path) = args.flag_str("port-file") {
        std::fs::write(path, format!("{}\n", addr.port())).map_err(|e| format!("{path}: {e}"))?;
    }
    let outcome = daemon.join();
    println!(
        "ip-pool serve: drained ({} injected, {} reloads, {} lease lapses)",
        outcome.injected, outcome.reloads, outcome.lapsed_leases
    );
    if let Some(report) = outcome.report {
        println!("requests        : {}", report.total_requests);
        println!("hits / misses   : {} / {}", report.hits, report.misses);
        println!("hit rate        : {:.2}%", report.hit_rate * 100.0);
        println!("mean wait       : {:.2} s/request", report.mean_wait_secs);
        println!(
            "intervals       : {} processed",
            report.interval_stats.len()
        );
    }
    Ok(())
}
