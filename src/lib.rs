#![warn(missing_docs)]
//! **intelligent-pooling** — a Rust reproduction of *"Intelligent Pooling:
//! Proactive Resource Provisioning in Large-scale Cloud Service"* (PVLDB
//! 17(7), 2024).
//!
//! Cloud Spark offerings pay 60–120 s of cluster creation latency on every
//! job. The paper eliminates it by keeping a **live pool** of pre-created
//! clusters and sizing that pool with a feedback loop of time-series
//! forecasting (the hybrid **SSA+** model) and linear programming (the
//! **SAA optimizer**), reporting up to 43% idle-time reduction at a 99%
//! pool hit rate versus static pooling.
//!
//! This crate is a facade over the workspace:
//!
//! | Module | Crate | Contents |
//! |---|---|---|
//! | [`saa`] | `ip-saa` | pool mechanism accounting, LP/DP optimizers, Pareto sweeps, §7.5 robustness |
//! | [`models`] | `ip-models` | Baseline, SSA, SSA+, mWDN, TST, InceptionTime forecasters |
//! | [`core`] | `ip-core` | 2-step / E2E pipelines, `α'` auto-tuner, guardrails, COGS model, fleet |
//! | [`sim`] | `ip-sim` | discrete-event platform simulator (clusters, workers, leases, stores) |
//! | [`chaos`] | `ip-chaos` | deterministic demand-scenario catalog + fault-injection plane |
//! | [`workload`] | `ip-workload` | synthetic demand traces standing in for production telemetry |
//! | [`timeseries`] | `ip-timeseries` | series type, metrics, max-filter smoothing, splits |
//! | [`ssa`] | `ip-ssa` | Singular Spectrum Analysis from scratch |
//! | [`nn`] | `ip-nn` | tensors + tape autograd + layers/optimizers for the deep models |
//! | [`lp`] | `ip-lp` | two-phase primal simplex |
//! | [`linalg`] | `ip-linalg` | Jacobi eigen/SVD, QR, LU |
//!
//! # Quickstart
//!
//! Size a pool for tomorrow from two weeks of (synthetic) demand history:
//!
//! ```
//! use intelligent_pooling::prelude::*;
//!
//! // 1. Demand history (stand-in for production telemetry).
//! let mut model = ip_workload::preset(ip_workload::PresetId::EastUs2Medium, 42);
//! model.days = 2; // keep the doctest fast
//! let history = model.generate();
//!
//! // 2. A 2-step engine: SSA forecast → SAA optimization.
//! let saa = SaaConfig { tau_intervals: 3, stableness: 10, ..Default::default() };
//! let forecaster = SsaModel::new(150, RankSelection::EnergyThreshold(0.9));
//! let mut engine = TwoStepEngine::new(forecaster, saa);
//!
//! // 3. Pool sizes for the next hour (120 × 30 s intervals).
//! let targets = engine.recommend(&history, 120).unwrap();
//! assert_eq!(targets.len(), 120);
//! ```

pub mod cli;

pub use ip_chaos as chaos;
pub use ip_core as core;
pub use ip_linalg as linalg;
pub use ip_lp as lp;
pub use ip_models as models;
pub use ip_nn as nn;
pub use ip_obs as obs;
pub use ip_saa as saa;
pub use ip_serve as serve;
pub use ip_sim as sim;
pub use ip_ssa as ssa;
pub use ip_timeseries as timeseries;
pub use ip_workload as workload;

/// The commonly used types, one `use` away.
pub mod prelude {
    pub use ip_chaos::{ChaosPlan, Scenario, ScenarioSpec};
    pub use ip_core::{
        evaluate_alerts, merge_snapshots, Alert, AlertRule, AlphaTuner, CostModel, Dashboard,
        EndToEndEngine, EngineConfig, Fleet, Guardrail, IntelligentPooling, MetricsSnapshot,
        NodeSize, PoolId, PoolRecommendation, PoolSpec, RecommendationEngine, SavingsReport,
        TwoStepEngine,
    };
    pub use ip_core::{BudgetedOutcome, FleetBudget};
    pub use ip_models::{
        AutoSelector, BaselineForecaster, DeepConfig, Forecaster, HoltWinters, InceptionTime, Mwdn,
        SeasonalNaive, SsaModel, SsaPlus, Tst,
    };
    pub use ip_saa::{
        evaluate_schedule, optimal_static_for_hit_rate, optimize_dp, optimize_lp,
        optimize_periodic_profile, pareto_sweep, robust_optimize, PoolMechanics,
        RobustnessStrategies, SaaConfig,
    };
    pub use ip_sim::{
        run_region, CompatibilityMatrix, FleetPool, FleetReport, FleetSim, IpWorkerConfig,
        PoolKind, RegionPool, SimConfig, Simulation, StaticProvider,
    };
    pub use ip_ssa::RankSelection;
    pub use ip_timeseries::TimeSeries;
    pub use ip_workload::{
        preset, spiky_region, table1_presets, DemandModel, FleetPoolPreset, FleetTrace, PresetId,
    };
}
